type target =
  | Checker_register of { reg : int; bit : int }
  | Checker_memory_page of { page_index : int; bit : int }
  | Main_register of { reg : int; bit : int }
  | Main_memory_page of { page_index : int; bit : int }
  | Runtime_fault of runtime_kind

and runtime_kind =
  | Kill
  | Stall

type plan = {
  segment : int;
  delay_instructions : int;
  target : target;
  repeat : bool;
}

let checker_register ~segment ~delay_instructions ~reg ~bit =
  { segment; delay_instructions; target = Checker_register { reg; bit };
    repeat = false }

let targets_checker p =
  match p.target with
  | Checker_register _ | Checker_memory_page _ | Runtime_fault _ -> true
  | Main_register _ | Main_memory_page _ -> false

let targets_main p = not (targets_checker p)

let target_kind_to_string = function
  | Checker_register _ -> "checker-reg"
  | Checker_memory_page _ -> "checker-mem"
  | Main_register _ -> "main-reg"
  | Main_memory_page _ -> "main-mem"
  | Runtime_fault Kill -> "runtime-kill"
  | Runtime_fault Stall -> "runtime-stall"

let target_kind_of_string = function
  | "checker-reg" -> Ok (fun reg bit -> Checker_register { reg; bit })
  | "checker-mem" ->
    Ok (fun page_index bit -> Checker_memory_page { page_index; bit })
  | "main-reg" -> Ok (fun reg bit -> Main_register { reg; bit })
  | "main-mem" ->
    Ok (fun page_index bit -> Main_memory_page { page_index; bit })
  | "runtime-kill" -> Ok (fun _ _ -> Runtime_fault Kill)
  | "runtime-stall" -> Ok (fun _ _ -> Runtime_fault Stall)
  | s -> Error s

let all_target_kinds =
  [ "checker-reg"; "checker-mem"; "main-reg"; "main-mem";
    "runtime-kill"; "runtime-stall" ]

let target_to_string = function
  | Checker_register { reg; bit } | Main_register { reg; bit } ->
    Printf.sprintf "r%d bit %d" reg bit
  | Checker_memory_page { page_index; bit }
  | Main_memory_page { page_index; bit } ->
    Printf.sprintf "page %d bit %d" page_index bit
  | Runtime_fault Kill -> "kill checker"
  | Runtime_fault Stall -> "stall checker"

let to_string p =
  Printf.sprintf "%s@seg%d+%d (%s%s)"
    (target_kind_to_string p.target)
    p.segment p.delay_instructions (target_to_string p.target)
    (if p.repeat then ", persistent" else "")

let validate p =
  let check_bit bit =
    if bit < 0 || bit > 63 then Error (Printf.sprintf "bit %d out of [0, 63]" bit)
    else Ok ()
  in
  let check_reg reg =
    if reg < 0 || reg >= Isa.Insn.num_regs then
      Error (Printf.sprintf "register %d out of [0, %d)" reg Isa.Insn.num_regs)
    else Ok ()
  in
  if p.segment < 0 then Error "negative segment index"
  else if p.delay_instructions < 0 then Error "negative instruction delay"
  else
    match p.target with
    | Checker_register { reg; bit } | Main_register { reg; bit } -> (
      match check_reg reg with Ok () -> check_bit bit | e -> e)
    | Checker_memory_page { page_index; bit }
    | Main_memory_page { page_index; bit } ->
      if page_index < 0 then Error "negative page index" else check_bit bit
    | Runtime_fault (Kill | Stall) -> Ok ()
