(** The fault model (DESIGN.md §13): a typed taxonomy of injectable
    faults, generalizing the original checker-register-only plan of
    §5.6.

    A {!plan} names one fault: {e where} it strikes (the {!target}),
    {e when} (segment index + retired-instruction delay), and whether it
    is transient (one-shot) or persistent ([repeat]). The runtime owns
    the arming paths — register and memory faults go through the
    {!Machine.Cpu} injection port of the targeted process, runtime
    faults through a {!Sim_os.Engine} tick that kills or stalls the
    checker mid-check — this module only describes faults and knows how
    to draw, parse and print them. *)

(** What the fault corrupts.

    Register and memory faults model a flipped bit in the core: a wrong
    value in the register file, or a wrong value carried by a store
    (the flip goes through the normal store path, so dirty tracking
    sees the page — a DRAM cell flipping {e at rest} is ECC territory
    and outside the runtime's threat model, see DESIGN.md §13).
    Runtime faults strike the fault-tolerance machinery itself: the
    checker process is killed outright, or stops making progress. *)
type target =
  | Checker_register of { reg : int; bit : int }
      (** flip [bit] (0-63) of checker register [reg] *)
  | Checker_memory_page of { page_index : int; bit : int }
      (** flip [bit] (0-63) of the first word of the [page_index]-th
          mapped page (mod the mapped count) of the checker *)
  | Main_register of { reg : int; bit : int }
  | Main_memory_page of { page_index : int; bit : int }
  | Runtime_fault of runtime_kind
      (** the checker of the targeted segment is killed or stalled
          mid-check — a fault in the runtime's own mechanism, which the
          watchdog must survive *)

and runtime_kind =
  | Kill  (** the checker process dies (SIGKILL analogue) *)
  | Stall  (** the checker stops making progress but stays alive *)

type plan = {
  segment : int;  (** 0-based segment index the fault arms in *)
  delay_instructions : int;
      (** retired instructions (of the targeted process) past the
          arming point before the fault fires; runtime faults fire at
          the first engine tick after the checker launches *)
  target : target;
  repeat : bool;
      (** [false] (transient): arm once, in segment [segment] only.
          [true] (persistent/stuck-at): re-arm in every segment with id
          [>= segment], including the checkers re-dispatched by a
          re-check and the segments re-recorded after a rollback — the
          shape the Hard_fault classifier exists for. *)
}

val checker_register :
  segment:int -> delay_instructions:int -> reg:int -> bit:int -> plan
(** The original §5.6 plan shape (transient checker-register flip). *)

val targets_checker : plan -> bool
(** True for [Checker_register], [Checker_memory_page] and
    [Runtime_fault] — plans armed on the replay side. *)

val targets_main : plan -> bool

val target_kind_to_string : target -> string
(** The CLI keyword for the target's class:
    [checker-reg], [checker-mem], [main-reg], [main-mem],
    [runtime-kill] or [runtime-stall]. *)

val target_kind_of_string : string -> (int -> int -> target, string) result
(** Parse a CLI keyword into a target builder taking the two numeric
    plan fields (reg/page index, then bit; ignored by runtime
    targets). [Error] names the unknown keyword. *)

val all_target_kinds : string list
(** Every keyword {!target_kind_of_string} accepts, CLI-doc order. *)

val to_string : plan -> string

val validate : plan -> (unit, string) result
(** Range-check the plan: register in [0, num_regs), bit in [0, 63],
    page index and delay non-negative. *)
