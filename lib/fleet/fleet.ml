(* Multi-tenant fleet mode (DESIGN.md §16): N concurrent guest
   programs on one simulated machine, each protected by its own
   Coordinator pipeline, all checkers scheduled over one shared
   big/little pool (Core_pool) via per-core work-stealing deques.

   Admission control caps the live tenant count; arrivals beyond the
   cap either wait (closed-loop) or are rejected (open-loop overload).
   Each tenant derives its runtime rng and its main process's private
   OS-entropy stream from the root seed and its tenant id alone
   (Util.Rng.stream), so a tenant's run is reproducible regardless of
   how other tenants' admissions interleave with it.

   Fault blast-radius stays per-tenant: one tenant's rollback,
   watchdog kill or hard-fault abort tears down only its own segments
   and returns only its own cores to the pool. *)

module E = Sim_os.Engine
module Config = Parallaft.Config
module Stats = Parallaft.Stats
module Coordinator = Parallaft.Coordinator
module Core_pool = Parallaft.Core_pool

type admission =
  | Queue_arrivals
  | Reject_arrivals

type arrival =
  | Batch
  | Staggered of int

type outcome =
  | Completed
  | Aborted
  | Rejected
  | Unfinished

type tenant_report = {
  tid : int;
  stats : Stats.t option;  (* None when the tenant never admitted *)
  outcome : outcome;
  exit_status : int option;
  final_state_hash : int64 option;
  admitted_ns : int option;
  completed_ns : int option;
}

type report = {
  tenants : tenant_report list;
  admitted : int;
  rejected : int;
  steals : int;
  migrations : int;
  segments_verified : int;
  wall_ns : int;
  energy_j : float;
  throughput_segments_per_s : float;
  live_at_end : int;
}

type state =
  | Waiting
  | Running of Coordinator.t
  | Finished of Coordinator.t
  | Rejected_slot

type slot = {
  tid : int;
  program : Isa.Program.t;
  mutable state : state;
  mutable admitted_ns : int option;
  mutable completed_ns : int option;
  mutable exit_status : int option;
}

let max_sim_ns = 2_000_000_000 (* same hang bound as Runtime *)

(* Per-tenant entropy: two independent streams (runtime emulation rng,
   main-process OS entropy) keyed by (root seed, tid) only — never by
   global draw order — so admission interleaving cannot perturb a
   tenant's run. *)
let tenant_rngs ~seed ~tid =
  let troot = Util.Rng.stream ~root:seed ~index:tid in
  let rng = Util.Rng.split troot in
  let prng = Util.Rng.split troot in
  (rng, prng)

let run ?(seed = 42L) ?(max_tenants = 4) ?(admission = Queue_arrivals)
    ?(arrival = Batch) ?configure ~platform ~config ~programs () =
  let n = List.length programs in
  if n = 0 then invalid_arg "Fleet.run: no programs";
  if max_tenants <= 0 then invalid_arg "Fleet.run: max_tenants <= 0";
  let eng =
    E.create ~block_cache:config.Config.block_cache ~platform ~seed ()
  in
  (match config.Config.obs with
  | Some sink -> E.set_obs eng sink
  | None -> ());
  let pool = Core_pool.create eng config in
  let bigs = Array.of_list (E.big_cores eng) in
  if Array.length bigs = 0 then invalid_arg "Fleet.run: no big cores";
  let slots =
    List.mapi
      (fun tid program ->
        {
          tid;
          program;
          state = Waiting;
          admitted_ns = None;
          completed_ns = None;
          exit_status = None;
        })
      programs
  in
  let emit_tenant tid ?args name =
    match config.Config.obs with
    | None -> ()
    | Some s ->
      Obs.Sink.emit s ~ts_ns:(E.time_ns eng) ~track:(Obs.Trace.Tenant tid)
        ~phase:Obs.Trace.Instant ?args name
  in
  let live_tenants () =
    List.length
      (List.filter (fun s -> match s.state with Running _ -> true | _ -> false)
         slots)
  in
  let admit slot =
    let rng, prng = tenant_rngs ~seed ~tid:slot.tid in
    (* Each tenant's main process gets its own (possibly shared when
       tenants outnumber big cores) reserved big core. *)
    let main_core = bigs.(slot.tid mod Array.length bigs) in
    let cfg = { config with Config.main_core } in
    (* Per-tenant overrides (e.g. a fault plan injected into exactly one
       tenant for the blast-radius tests). *)
    let cfg = match configure with Some f -> f slot.tid cfg | None -> cfg in
    let coord =
      Coordinator.create ~rng ~prng ~fleet:(pool, slot.tid) eng cfg
        ~program:slot.program
    in
    slot.state <- Running coord;
    slot.admitted_ns <- Some (E.now_ns eng);
    emit_tenant slot.tid
      ~args:[ ("main_core", Obs.Trace.Int main_core) ]
      "tenant.admit";
    (match config.Config.obs with
    | None -> ()
    | Some s -> Obs.Sink.incr s "fleet.admissions")
  in
  let arrival_due slot =
    match arrival with
    | Batch -> true
    | Staggered gap_ns -> E.now_ns eng >= slot.tid * gap_ns
  in
  let rejected = ref 0 in
  let poll () =
    (* Completions first: a retiring tenant frees its slot and its
       reserved main core before this round's admissions. *)
    List.iter
      (fun slot ->
        match slot.state with
        | Running coord when Coordinator.drained coord ->
          slot.exit_status <-
            (match E.state eng (Coordinator.main_pid coord) with
            | E.Exited s -> Some s
            | E.Runnable | E.Stopped -> None);
          (* Recovery snapshots outlive the drain point; releasing them
             here is what lets the engine reach zero live processes. *)
          Coordinator.release_recovery_state coord;
          Core_pool.retire_tenant pool ~tid:slot.tid;
          slot.completed_ns <- Some (E.now_ns eng);
          slot.state <- Finished coord;
          emit_tenant slot.tid
            (if Coordinator.aborted coord then "tenant.aborted"
             else "tenant.complete")
        | Waiting | Running _ | Finished _ | Rejected_slot -> ())
      slots;
    List.iter
      (fun slot ->
        match slot.state with
        | Waiting when arrival_due slot ->
          if live_tenants () < max_tenants then admit slot
          else (
            match admission with
            | Queue_arrivals -> ()
            | Reject_arrivals ->
              slot.state <- Rejected_slot;
              incr rejected;
              emit_tenant slot.tid "tenant.reject";
              (match config.Config.obs with
              | None -> ()
              | Some s -> Obs.Sink.incr s "fleet.rejections"))
        | Waiting | Running _ | Finished _ | Rejected_slot -> ())
      slots
  in
  E.add_tick eng ~every_ns:config.Config.pacer_tick_ns (fun _ ->
      Core_pool.pacer_tick pool);
  E.add_tick eng ~every_ns:config.Config.pacer_tick_ns (fun _ -> poll ());
  poll ();
  let settled slot =
    match slot.state with
    | Finished _ | Rejected_slot -> true
    | Waiting | Running _ -> false
  in
  (* E.run returns whenever no live process remains, which in fleet
     mode is not the end: a staggered arrival may still be due. Step
     through the idle gap (ticks keep firing) and re-enter. *)
  while (not (List.for_all settled slots)) && E.now_ns eng < max_sim_ns do
    if E.live_processes eng > 0 then E.run ~max_ns:max_sim_ns eng
    else E.step_quantum eng;
    poll ()
  done;
  let wall_ns = E.now_ns eng in
  let tenants =
    List.map
      (fun slot ->
        let finish coord outcome =
          let stats = Coordinator.stats coord in
          (* Per-tenant wall: admission to completion (or the bound). *)
          stats.Stats.all_wall_ns <-
            float_of_int
              (Option.value ~default:wall_ns slot.completed_ns
              - Option.value ~default:0 slot.admitted_ns);
          {
            tid = slot.tid;
            stats = Some stats;
            outcome;
            exit_status = slot.exit_status;
            final_state_hash = Stats.final_state_hash stats;
            admitted_ns = slot.admitted_ns;
            completed_ns = slot.completed_ns;
          }
        in
        match slot.state with
        | Finished coord ->
          finish coord
            (if Coordinator.aborted coord then Aborted else Completed)
        | Running coord -> finish coord Unfinished
        | Waiting | Rejected_slot ->
          {
            tid = slot.tid;
            stats = None;
            outcome =
              (if slot.state = Rejected_slot then Rejected else Unfinished);
            exit_status = None;
            final_state_hash = None;
            admitted_ns = None;
            completed_ns = None;
          })
      slots
  in
  let segments_verified =
    List.fold_left
      (fun acc t ->
        match t.stats with
        | Some st -> acc + st.Stats.segments_compared
        | None -> acc)
      0 tenants
  in
  (match config.Config.obs with
  | None -> ()
  | Some s ->
    Obs.Sink.observe s "fleet.segments_verified" (float_of_int segments_verified);
    Obs.Sink.observe s "fleet.wall_ns" (float_of_int wall_ns));
  {
    tenants;
    admitted =
      List.length
        (List.filter (fun (r : tenant_report) -> r.admitted_ns <> None) tenants);
    rejected = !rejected;
    steals = Core_pool.steals pool;
    migrations = Core_pool.migrations pool;
    segments_verified;
    wall_ns;
    energy_j = E.energy_j eng;
    throughput_segments_per_s =
      (if wall_ns <= 0 then 0.0
       else float_of_int segments_verified /. float_of_int wall_ns *. 1e9);
    live_at_end = E.live_processes eng;
  }
