(** Multi-tenant fleet mode (DESIGN.md §16): N concurrent guest
    programs on one simulated machine, each protected by its own
    {!Coordinator} pipeline, all ready checkers scheduled over one
    shared big/little pool ({!Core_pool}) with per-core work-stealing
    deques (owner pops LIFO, thieves steal FIFO).

    Determinism: each tenant's runtime rng and OS-entropy stream derive
    from the root seed and its tenant id alone ({!Util.Rng.stream}), so
    a tenant's architectural outcome (final state hash, exit status) is
    reproducible regardless of admission interleaving.

    Isolation: rollback, watchdog kill and hard-fault abort in one
    tenant never touch another tenant's segments or cores. *)

type admission =
  | Queue_arrivals
      (** arrivals beyond [max_tenants] wait for a free slot *)
  | Reject_arrivals  (** arrivals beyond [max_tenants] are turned away *)

type arrival =
  | Batch  (** all tenants arrive at t = 0 (closed loop) *)
  | Staggered of int
      (** open loop: tenant [i] arrives at [i * gap_ns] *)

type outcome =
  | Completed
  | Aborted  (** detection/hard fault cut the tenant's run short *)
  | Rejected
  | Unfinished  (** still waiting or running at the simulation bound *)

type tenant_report = {
  tid : int;
  stats : Parallaft.Stats.t option;
      (** [None] when the tenant never admitted *)
  outcome : outcome;
  exit_status : int option;
  final_state_hash : int64 option;
  admitted_ns : int option;
  completed_ns : int option;
}

type report = {
  tenants : tenant_report list;  (** in tenant-id order *)
  admitted : int;
  rejected : int;
  steals : int;  (** pool-wide off-home dispatches *)
  migrations : int;
  segments_verified : int;  (** summed [segments_compared] *)
  wall_ns : int;
  energy_j : float;
  throughput_segments_per_s : float;
  live_at_end : int;
      (** simulated processes still live when the fleet returned — 0
          unless a tenant was cut off at the simulation bound (the pid
          teardown invariant the tests pin) *)
}

val tenant_rngs : seed:int64 -> tid:int -> Util.Rng.t * Util.Rng.t
(** [(runtime rng, main-process OS-entropy rng)] for a tenant, keyed by
    [(seed, tid)] only. Exposed for the determinism tests. *)

val run :
  ?seed:int64 ->
  ?max_tenants:int ->
  ?admission:admission ->
  ?arrival:arrival ->
  ?configure:(int -> Parallaft.Config.t -> Parallaft.Config.t) ->
  platform:Platform.t ->
  config:Parallaft.Config.t ->
  programs:Isa.Program.t list ->
  unit ->
  report
(** Run one fleet: tenant [i] protects [List.nth programs i] under
    [config] with its main core reassigned round-robin over the big
    cores ([config.main_core] is ignored); [config]'s [obs] sink and
    policy knobs also steer the shared pool. [configure] maps each
    tenant's final config (after main-core assignment) — the hook the
    isolation tests use to arm a fault plan in exactly one tenant.
    Returns when every tenant settled (completed, aborted or rejected)
    or at the 2-simulated-second hang bound. *)
