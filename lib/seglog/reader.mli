(** Validating deserialization of parallaft-seglog v1 files.

    Every entry point returns [Error] with a typed {!Codec.error} on
    any invalid input — flipping any single byte of a valid file yields
    a typed rejection, never a crash or a silently different decode
    (the corruption property in [test_seglog] pins this).

    Validation order: magic, then format/ISA version (so an honest
    version mismatch is reported as such, not masked as corruption),
    then the whole-file checksum, then the config fingerprint, then the
    structural parse with per-record checksums. *)

val manifest : Bytes.t -> (Record.manifest, Codec.error) result

val validate_fingerprint : Record.manifest -> (unit, Codec.error) result
(** Recompute {!Record.config_digest} from the manifest's own fields
    and compare with the stored digest — catches a manifest whose
    config was edited after recording. *)

(** Segment-file reader for one run; mirrors the {!Writer}'s
    parent-frame state, so segments must be read in write order. *)
type t

val create : config_digest:int64 -> t
(** [config_digest] is the manifest's digest; segment files recorded
    under any other config are refused ([Fingerprint_mismatch]). *)

val segment : t -> Bytes.t -> (Record.segment, Codec.error) result
