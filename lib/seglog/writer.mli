(** Serialization of parallaft-seglog v1 manifest and segment files.

    A writer is stateful across the segments of one run: it keeps the
    last raw payload written per vpn (the "parent frame") so later
    segments can xor-delta against it, and it accumulates size /
    compression statistics for the obs layer. The {!Reader} mirrors the
    parent-frame state, so segment files must be read in write order. *)

type stats = {
  mutable segments : int;
  mutable bytes_written : int;  (** total segment-file bytes *)
  mutable raw_page_bytes : int;
  mutable stored_page_bytes : int;  (** post-compression payload bytes *)
}

type t

val create : header:Record.header -> t
val stats : t -> stats

val segment : t -> Record.segment -> Bytes.t
(** Encode one segment file ([seg-NNNNNN.plog] content), updating the
    parent-frame map and stats. *)

val manifest : Record.manifest -> Bytes.t
(** Encode the run manifest ([manifest.plog] content). Stateless. *)
