(** The parallaft-seglog v1 record types (DESIGN.md §17).

    Canonical shapes for everything a checker needs to replay and
    verify a segment. The core runtime's [Exec_point.t] and [Rr_log]
    event types are type-equal re-exports of the types here, so the
    live in-memory replay path and the persisted format share one
    definition and cannot drift apart.

    All structures are plain immutable data; OCaml structural equality
    ([=]) is the round-trip criterion used by the property tests. *)

val format_version : int
val isa_version : int
val manifest_magic : string
val segment_magic : string

type exec_point = {
  branches : int;  (** retired-branch count (segment-relative) *)
  pc : int;
}

type mem_effect = {
  addr : int;
  data : Bytes.t;
}

type sys_record = {
  call : Sim_os.Syscall.call;
  in_data : Bytes.t option;
  result : int;
  effects : mem_effect list;
}

type event =
  | Sys of sys_record
  | Nondet of {
      insn : Isa.Insn.t;
      value : int;
    }
  | Ext_signal of {
      at : exec_point;
      signum : Sim_os.Sig_num.t;
    }

(** One fully recorded segment: everything the live checker consumes,
    plus the end-of-segment register snapshot and raw dirty-page
    payloads the comparison needs. [preamble] holds the boundary
    syscalls (file-backed mmaps) that split segments and execute
    between the previous segment's end and this one's first
    instruction. *)
type segment = {
  id : int;
  preamble : sys_record list;
  events : event list;
  end_point : exec_point;
  insn_delta : int;
  end_regs : int array;
  pages : (int * Bytes.t) array;  (** (vpn, raw page bytes), vpn-sorted *)
}

type fault_spec = {
  kind : string;  (** {!Fault.target_kind_to_string} *)
  fault_segment : int;
  delay : int;
  arg_a : int;  (** register index / page index *)
  arg_b : int;  (** bit *)
  repeat : bool;
}

type run_config = {
  mode_raft : bool;
  slice_period : int;
  timeout_scale : float;
  compare_states : bool;
  dirty_backend : string;
  hasher : string;
  seed : int64;
  fault : fault_spec option;
}

type header = {
  config_digest : int64;
  platform : string;
  page_size : int;
  workload : string;
}

type program = {
  pname : string;
  entry : int;
  initial_brk : int;
  code : int array;  (** {!Isa.Insn.encode} words *)
  data : (int * Bytes.t) list;
}

type manifest = {
  header : header;
  program : program;
  config : run_config;
  segments : int list;  (** segment ids in replay order *)
  truncated_at : int option;
      (** last replayable segment id if a rollback cut the linear
          history short (recovery re-executes from a checkpoint, so
          post-rollback segments are not a continuation) *)
  final_state_hash : int64 option;
      (** the live run's {!Stats.final_state_hash}, when main exited *)
}

val config_digest :
  platform:string -> page_size:int -> workload:string -> run_config -> int64
(** Fingerprint over everything that shapes the recorded byte stream:
    format/ISA versions, platform identity, workload name and the
    {!run_config} fields. Stored in every file header; readers refuse
    mismatches ([Fingerprint_mismatch]) instead of producing bogus
    divergences. *)

(** Field codecs (framing/checksums live in {!Writer}/{!Reader}; the
    in-memory [Rr_log] uses the event codec directly). Readers raise
    {!Codec.Error} on malformed input. *)

val put_sys : Codec.wbuf -> sys_record -> unit
val get_sys : Codec.rbuf -> sys_record
val put_event : Codec.wbuf -> event -> unit
val get_event : Codec.rbuf -> event
val put_point : Codec.wbuf -> exec_point -> unit
val get_point : Codec.rbuf -> exec_point
val put_program : Codec.wbuf -> program -> unit
val get_program : Codec.rbuf -> program
val put_config : Codec.wbuf -> run_config -> unit
val get_config : Codec.rbuf -> run_config
