(** Byte-level primitives for the parallaft-seglog format.

    A growable little-endian write buffer and a bounds-checked reader.
    Every decoding failure raises {!Error} with a typed {!error} — the
    single-byte-corruption property relies on this: no input can crash
    the reader or silently decode to something else. *)

type error =
  | Truncated of string  (** ran off the end of the file/section *)
  | Bad_magic of {
      found : string;
      expected : string;
    }
  | Bad_version of {
      found : int;
      expected : int;
    }
  | Bad_isa_version of {
      found : int;
      expected : int;
    }
  | Checksum_mismatch of { what : string }
  | Fingerprint_mismatch of {
      found : int64;
      expected : int64;
    }
  | Malformed of string

exception Error of error

val error_to_string : error -> string
val fail : error -> 'a
val malformed : ('a, unit, string, 'b) format4 -> 'a

(** Growable write buffer. *)
type wbuf

val wbuf : unit -> wbuf
val wlen : wbuf -> int

val wdata : wbuf -> Bytes.t
(** The live backing store (capacity [>= wlen]); valid bytes are
    [0, wlen). Lets a reader decode in place without copying. *)

val contents : wbuf -> Bytes.t
(** Copy of the valid prefix. *)

val u8 : wbuf -> int -> unit

val u32 : wbuf -> int -> unit
(** Fixed-width LE (version fields). *)

val i64 : wbuf -> int64 -> unit
(** Fixed-width LE (checksums, seeds). *)

val uvarint : wbuf -> int -> unit
(** LEB128; argument must be [>= 0]. *)

val varint : wbuf -> int -> unit
(** Zigzag LEB128, any native int. *)

val raw : wbuf -> Bytes.t -> pos:int -> len:int -> unit

val bytes_ : wbuf -> Bytes.t -> unit
(** Length-prefixed. *)

val str : wbuf -> string -> unit

val xxh64_sub : wbuf -> pos:int -> int64
(** Hash of the written bytes from [pos] to the current length. *)

(** Bounds-checked reader over an immutable byte range. *)
type rbuf

val rbuf : ?pos:int -> ?limit:int -> Bytes.t -> rbuf
val rpos : rbuf -> int
val remaining : rbuf -> int
val r_u8 : rbuf -> int
val r_u32 : rbuf -> int
val r_i64 : rbuf -> int64
val r_uvarint : rbuf -> int
val r_varint : rbuf -> int

val r_bytes : rbuf -> Bytes.t
(** Length is validated against the remaining range before allocating. *)

val r_str : rbuf -> string

(** [r_blit r ~len dst ~dst_pos] copies the next [len] bytes into [dst]
    at [dst_pos]. *)
val r_blit : rbuf -> len:int -> Bytes.t -> dst_pos:int -> unit
val r_xxh64_sub : rbuf -> pos:int -> len:int -> int64
