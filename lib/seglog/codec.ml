(* Byte-level primitives for the parallaft-seglog format: a growable
   write buffer and a bounds-checked reader, plus the typed validation
   error every decoding failure maps to. No external deps. *)

type error =
  | Truncated of string
  | Bad_magic of { found : string; expected : string }
  | Bad_version of { found : int; expected : int }
  | Bad_isa_version of { found : int; expected : int }
  | Checksum_mismatch of { what : string }
  | Fingerprint_mismatch of { found : int64; expected : int64 }
  | Malformed of string

exception Error of error

let error_to_string = function
  | Truncated what -> Printf.sprintf "truncated file: %s" what
  | Bad_magic { found; expected } ->
    Printf.sprintf "bad magic %S (expected %S): not a seglog file" found expected
  | Bad_version { found; expected } ->
    Printf.sprintf "unsupported format version %d (this build reads version %d)" found
      expected
  | Bad_isa_version { found; expected } ->
    Printf.sprintf "log was recorded under ISA version %d, this build is version %d" found
      expected
  | Checksum_mismatch { what } -> Printf.sprintf "checksum mismatch over %s" what
  | Fingerprint_mismatch { found; expected } ->
    Printf.sprintf "config fingerprint mismatch: log has %016Lx, expected %016Lx" found
      expected
  | Malformed what -> Printf.sprintf "malformed record: %s" what

let fail e = raise (Error e)
let malformed fmt = Printf.ksprintf (fun s -> fail (Malformed s)) fmt

(* ---------- write buffer ---------- *)

type wbuf = {
  mutable data : Bytes.t;
  mutable len : int;
}

let wbuf () = { data = Bytes.create 256; len = 0 }
let wlen w = w.len
let wdata w = w.data

let reserve w n =
  let need = w.len + n in
  if need > Bytes.length w.data then begin
    let cap = ref (Bytes.length w.data * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let d = Bytes.create !cap in
    Bytes.blit w.data 0 d 0 w.len;
    w.data <- d
  end

let contents w = Bytes.sub w.data 0 w.len

let u8 w v =
  reserve w 1;
  Bytes.unsafe_set w.data w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

(* Fixed-width little-endian 32-bit: used for the version fields so a
   corrupted version byte is still recognizably a version field. *)
let u32 w v =
  reserve w 4;
  Bytes.set_int32_le w.data w.len (Int32.of_int v);
  w.len <- w.len + 4

let i64 w v =
  reserve w 8;
  Bytes.set_int64_le w.data w.len v;
  w.len <- w.len + 8

(* LEB128 over the raw 63-bit pattern. Logical shifts, so it terminates
   (and round-trips) even when the pattern has the native sign bit set —
   zigzagging a magnitude >= 2^61 produces exactly such patterns. *)
let rec uvarint_bits w v =
  if v >= 0 && v < 0x80 then u8 w v
  else begin
    u8 w (0x80 lor (v land 0x7f));
    uvarint_bits w (v lsr 7)
  end

(* Unsigned LEB128. The argument must be non-negative (lengths, counts,
   tags); signed quantities go through the zigzag [varint]. *)
let uvarint w v =
  if v < 0 then invalid_arg "Codec.uvarint: negative";
  uvarint_bits w v

(* Zigzag-encoded signed varint (63-bit native int). *)
let varint w v = uvarint_bits w ((v lsl 1) lxor (v asr 62))

let raw w b ~pos ~len =
  reserve w len;
  Bytes.blit b pos w.data w.len len;
  w.len <- w.len + len

let bytes_ w b =
  uvarint w (Bytes.length b);
  raw w b ~pos:0 ~len:(Bytes.length b)

let str w s = bytes_ w (Bytes.unsafe_of_string s)

let xxh64_sub w ~pos = Ftr_hash.Xxh64.hash_sub w.data ~pos ~len:(w.len - pos)

(* ---------- bounds-checked reader ---------- *)

type rbuf = {
  rdata : Bytes.t;
  limit : int;
  mutable pos : int;
}

let rbuf ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> Bytes.length data in
  { rdata = data; limit; pos }

let rpos r = r.pos
let remaining r = r.limit - r.pos

let need r n what = if r.limit - r.pos < n then fail (Truncated what)

let r_u8 r =
  need r 1 "u8";
  let v = Char.code (Bytes.unsafe_get r.rdata r.pos) in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (Bytes.get_int32_le r.rdata r.pos) land 0xffffffff in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8 "i64";
  let v = Bytes.get_int64_le r.rdata r.pos in
  r.pos <- r.pos + 8;
  v

let r_uvarint r =
  let rec go shift acc =
    if shift > 63 then malformed "varint too long";
    let b = r_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let r_varint r =
  let v = r_uvarint r in
  (v lsr 1) lxor (-(v land 1))

let r_bytes r =
  let len = r_uvarint r in
  need r len "bytes payload";
  let b = Bytes.sub r.rdata r.pos len in
  r.pos <- r.pos + len;
  b

let r_str r = Bytes.unsafe_to_string (r_bytes r)

let r_blit r ~len dst ~dst_pos =
  need r len "raw payload";
  Bytes.blit r.rdata r.pos dst dst_pos len;
  r.pos <- r.pos + len

let r_xxh64_sub r ~pos ~len = Ftr_hash.Xxh64.hash_sub r.rdata ~pos ~len
