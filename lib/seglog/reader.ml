(* Validating deserialization of parallaft-seglog v1 files.

   Validation order is part of the format contract (and what the
   single-byte-corruption property pins down):

     1. magic            -> Bad_magic
     2. format version   -> Bad_version
     3. ISA version      -> Bad_isa_version
     4. whole-file xxh64 -> Checksum_mismatch "whole file"
     5. config digest    -> Fingerprint_mismatch (segment files, vs the
                            manifest's digest)
     6. structural parse with per-record checksums

   Steps 2-3 run before the checksum on purpose: a version mismatch is
   an honest, explainable condition and must not be masked as
   corruption. Everything after the header is covered by the file
   checksum, so a flipped body byte is always caught at step 4 even if
   it would still parse. *)

let header_len = 8 + 4 + 4 + 8
let trailer_len = 8

let wrap f =
  match f () with
  | v -> Ok v
  | exception Codec.Error e -> Error e
  | exception Invalid_argument m -> Error (Codec.Malformed m)
  | exception Failure m -> Error (Codec.Malformed m)

(* Checks steps 1-4 and returns the stored config digest plus a reader
   over the body (the trailer is outside its bounds). *)
let check_preamble ~magic data =
  let n = Bytes.length data in
  if n < header_len + trailer_len then
    Codec.fail (Codec.Truncated "file shorter than header + trailer");
  let found = Bytes.sub_string data 0 8 in
  if not (String.equal found magic) then
    Codec.fail (Codec.Bad_magic { found; expected = magic });
  let r = Codec.rbuf ~pos:8 data in
  let fv = Codec.r_u32 r in
  if fv <> Record.format_version then
    Codec.fail (Codec.Bad_version { found = fv; expected = Record.format_version });
  let iv = Codec.r_u32 r in
  if iv <> Record.isa_version then
    Codec.fail (Codec.Bad_isa_version { found = iv; expected = Record.isa_version });
  let stored = Bytes.get_int64_le data (n - trailer_len) in
  let actual = Ftr_hash.Xxh64.hash_sub data ~pos:0 ~len:(n - trailer_len) in
  if not (Int64.equal stored actual) then
    Codec.fail (Codec.Checksum_mismatch { what = "whole file" });
  let digest = Codec.r_i64 r in
  (digest, Codec.rbuf ~pos:header_len ~limit:(n - trailer_len) data)

let checksummed r ~what f =
  let pos = Codec.rpos r in
  let v = f r in
  let actual = Codec.r_xxh64_sub r ~pos ~len:(Codec.rpos r - pos) in
  let stored = Codec.r_i64 r in
  if not (Int64.equal stored actual) then Codec.fail (Codec.Checksum_mismatch { what });
  v

let expect_end r what = if Codec.remaining r <> 0 then Codec.malformed "%s" what

let manifest data =
  wrap @@ fun () ->
  let config_digest, r = check_preamble ~magic:Record.manifest_magic data in
  let platform = Codec.r_str r in
  let page_size = Codec.r_uvarint r in
  let workload = Codec.r_str r in
  let program = checksummed r ~what:"program section" Record.get_program in
  let config = checksummed r ~what:"config section" Record.get_config in
  let nseg = Codec.r_uvarint r in
  if nseg > Codec.remaining r then Codec.malformed "segment list longer than the file";
  let segments = List.init nseg (fun _ -> Codec.r_varint r) in
  let truncated_at =
    match Codec.r_u8 r with
    | 0 -> None
    | 1 -> Some (Codec.r_varint r)
    | t -> Codec.malformed "bad option tag %d" t
  in
  let final_state_hash =
    match Codec.r_u8 r with
    | 0 -> None
    | 1 -> Some (Codec.r_i64 r)
    | t -> Codec.malformed "bad option tag %d" t
  in
  expect_end r "trailing bytes after the manifest";
  { Record.header = { Record.config_digest; platform; page_size; workload };
    program;
    config;
    segments;
    truncated_at;
    final_state_hash
  }

let validate_fingerprint (m : Record.manifest) =
  let expected =
    Record.config_digest ~platform:m.header.platform ~page_size:m.header.page_size
      ~workload:m.header.workload m.config
  in
  if Int64.equal m.header.config_digest expected then Ok ()
  else
    Error
      (Codec.Fingerprint_mismatch { found = m.header.config_digest; expected })

type t = {
  expected_digest : int64;
  parents : (int, Bytes.t) Hashtbl.t;
}

let create ~config_digest = { expected_digest = config_digest; parents = Hashtbl.create 64 }

let segment t data =
  wrap @@ fun () ->
  let digest, r = check_preamble ~magic:Record.segment_magic data in
  if not (Int64.equal digest t.expected_digest) then
    Codec.fail (Codec.Fingerprint_mismatch { found = digest; expected = t.expected_digest });
  let id = Codec.r_uvarint r in
  let np = Codec.r_uvarint r in
  if np > Codec.remaining r then Codec.malformed "preamble list longer than the file";
  let preamble = List.init np (fun _ -> checksummed r ~what:"preamble record" Record.get_sys) in
  let ne = Codec.r_uvarint r in
  if ne > Codec.remaining r then Codec.malformed "event list longer than the file";
  let events = List.init ne (fun _ -> checksummed r ~what:"event record" Record.get_event) in
  let end_point = Record.get_point r in
  let insn_delta = Codec.r_varint r in
  let nregs = Codec.r_uvarint r in
  if nregs > Codec.remaining r then Codec.malformed "register file longer than the file";
  let end_regs = Array.init nregs (fun _ -> Codec.r_varint r) in
  let npages = Codec.r_uvarint r in
  if npages > Codec.remaining r then Codec.malformed "page list longer than the file";
  let pages =
    Array.init npages (fun _ ->
        checksummed r ~what:"page record" (fun r ->
            let vpn = Codec.r_uvarint r in
            let tag = Codec.r_u8 r in
            let raw_len = Codec.r_uvarint r in
            if raw_len > Codec.remaining r + (1 lsl 20) then
              Codec.malformed "implausible page length %d" raw_len;
            let payload = Codec.r_bytes r in
            let parent = Hashtbl.find_opt t.parents vpn in
            let page = Page_codec.decode ~parent ~tag ~raw_len payload in
            Hashtbl.replace t.parents vpn page;
            (vpn, page)))
  in
  expect_end r "trailing bytes after the segment";
  { Record.id; preamble; events; end_point; insn_delta; end_regs; pages }
