(* Serialization of the parallaft-seglog v1 files.

   File framing (shared by manifest and segment files):

     magic (8 raw bytes) | u32 format_version | u32 isa_version
     | i64 config_digest | body ... | i64 xxh64(whole file up to here)

   Inside the body, every variable-size record (preamble syscall,
   event, page, program/config section) is followed by an i64 xxh64
   over its own bytes, so a reader can name what was corrupted. *)

type stats = {
  mutable segments : int;
  mutable bytes_written : int;
  mutable raw_page_bytes : int;
  mutable stored_page_bytes : int;
}

type t = {
  header : Record.header;
  parents : (int, Bytes.t) Hashtbl.t;
  stats : stats;
}

let create ~header =
  { header;
    parents = Hashtbl.create 64;
    stats = { segments = 0; bytes_written = 0; raw_page_bytes = 0; stored_page_bytes = 0 }
  }

let stats t = t.stats

let put_preamble w ~magic ~digest =
  Codec.raw w (Bytes.unsafe_of_string magic) ~pos:0 ~len:(String.length magic);
  Codec.u32 w Record.format_version;
  Codec.u32 w Record.isa_version;
  Codec.i64 w digest

let checksummed w f =
  let pos = Codec.wlen w in
  f ();
  Codec.i64 w (Codec.xxh64_sub w ~pos)

let seal w =
  Codec.i64 w (Codec.xxh64_sub w ~pos:0);
  Codec.contents w

let segment t (s : Record.segment) =
  let w = Codec.wbuf () in
  put_preamble w ~magic:Record.segment_magic ~digest:t.header.config_digest;
  Codec.uvarint w s.id;
  Codec.uvarint w (List.length s.preamble);
  List.iter (fun r -> checksummed w (fun () -> Record.put_sys w r)) s.preamble;
  Codec.uvarint w (List.length s.events);
  List.iter (fun e -> checksummed w (fun () -> Record.put_event w e)) s.events;
  Record.put_point w s.end_point;
  Codec.varint w s.insn_delta;
  Codec.uvarint w (Array.length s.end_regs);
  Array.iter (Codec.varint w) s.end_regs;
  Codec.uvarint w (Array.length s.pages);
  Array.iter
    (fun (vpn, page) ->
      let parent = Hashtbl.find_opt t.parents vpn in
      let tag, payload = Page_codec.encode ~parent page in
      checksummed w (fun () ->
          Codec.uvarint w vpn;
          Codec.u8 w tag;
          Codec.uvarint w (Bytes.length page);
          Codec.bytes_ w payload);
      Hashtbl.replace t.parents vpn (Bytes.copy page);
      t.stats.raw_page_bytes <- t.stats.raw_page_bytes + Bytes.length page;
      t.stats.stored_page_bytes <- t.stats.stored_page_bytes + Bytes.length payload)
    s.pages;
  let file = seal w in
  t.stats.segments <- t.stats.segments + 1;
  t.stats.bytes_written <- t.stats.bytes_written + Bytes.length file;
  file

let manifest (m : Record.manifest) =
  let w = Codec.wbuf () in
  put_preamble w ~magic:Record.manifest_magic ~digest:m.header.config_digest;
  Codec.str w m.header.platform;
  Codec.uvarint w m.header.page_size;
  Codec.str w m.header.workload;
  checksummed w (fun () -> Record.put_program w m.program);
  checksummed w (fun () -> Record.put_config w m.config);
  Codec.uvarint w (List.length m.segments);
  List.iter (Codec.varint w) m.segments;
  (match m.truncated_at with
  | None -> Codec.u8 w 0
  | Some a ->
    Codec.u8 w 1;
    Codec.varint w a);
  (match m.final_state_hash with
  | None -> Codec.u8 w 0
  | Some h ->
    Codec.u8 w 1;
    Codec.i64 w h);
  seal w
