(** Per-page payload compression: raw (tag 0), zero-run RLE (tag 1), or
    xor-vs-parent-frame delta + RLE (tag 2). See DESIGN.md §17. *)

val encode : parent:Bytes.t option -> Bytes.t -> int * Bytes.t
(** [encode ~parent page] returns [(tag, payload)] for the smallest
    applicable scheme. [parent] is the raw payload previously written
    for the same vpn (same length), if any. *)

val decode : parent:Bytes.t option -> tag:int -> raw_len:int -> Bytes.t -> Bytes.t
(** Inverse of {!encode}; returns the raw page bytes.

    @raise Codec.Error on unknown tags, length mismatches, runs past
    the page end, or a missing parent for an xor-delta payload. *)
