(* Per-page payload compression (DESIGN.md §17).

   Dirty-page payloads dominate a segment log, and most dirty pages are
   sparse (stack/heap pages with a few live words) or near-identical to
   the same page in the parent frame (the previous segment that dirtied
   the same vpn). Two byte-exact schemes cover both without external
   deps:

     tag 0  raw        page bytes verbatim
     tag 1  zero-RLE   (zero-run, literal-run) pairs
     tag 2  xor-parent xor against the parent payload, then zero-RLE

   The writer encodes all applicable candidates and keeps the smallest;
   the reader is told the tag and the uncompressed length and must
   reproduce the page exactly (checksums pin it). *)

(* A literal run ends when [zero_cut] consecutive zeros begin: shorter
   zero gaps cost more to break out than to carry as literals (two
   varint headers vs <= 7 literal zero bytes). *)
let zero_cut = 8

let rle_encode page =
  let w = Codec.wbuf () in
  let n = Bytes.length page in
  let i = ref 0 in
  while !i < n do
    let z0 = !i in
    while !i < n && Bytes.get page !i = '\000' do
      incr i
    done;
    let zrun = !i - z0 in
    let l0 = !i in
    let j = ref !i and zeros = ref 0 and stop = ref false in
    while (not !stop) && !j < n do
      if Bytes.get page !j = '\000' then begin
        incr zeros;
        if !zeros >= zero_cut then stop := true
      end
      else zeros := 0;
      incr j
    done;
    let lend = if !stop then !j - zero_cut else !j in
    let litlen = lend - l0 in
    Codec.uvarint w zrun;
    Codec.uvarint w litlen;
    Codec.raw w page ~pos:l0 ~len:litlen;
    i := lend
  done;
  Codec.contents w

let rle_decode ~raw_len payload =
  let out = Bytes.make raw_len '\000' in
  let r = Codec.rbuf payload in
  let pos = ref 0 in
  while Codec.remaining r > 0 do
    let zrun = Codec.r_uvarint r in
    let litlen = Codec.r_uvarint r in
    if !pos + zrun + litlen > raw_len then
      Codec.malformed "RLE runs overflow the page (%d+%d past %d/%d)" zrun litlen !pos
        raw_len;
    pos := !pos + zrun;
    Codec.r_blit r ~len:litlen out ~dst_pos:!pos;
    pos := !pos + litlen
  done;
  out

let xor a b =
  let n = Bytes.length a in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a i) lxor Char.code (Bytes.unsafe_get b i)))
  done;
  out

let encode ~parent page =
  let raw_len = Bytes.length page in
  let rle = rle_encode page in
  let tag, best = if Bytes.length rle < raw_len then (1, rle) else (0, Bytes.copy page) in
  match parent with
  | Some p when Bytes.length p = raw_len ->
    let xr = rle_encode (xor page p) in
    if Bytes.length xr < Bytes.length best then (2, xr) else (tag, best)
  | _ -> (tag, best)

let decode ~parent ~tag ~raw_len payload =
  match tag with
  | 0 ->
    if Bytes.length payload <> raw_len then
      Codec.malformed "raw page payload is %d bytes, page is %d" (Bytes.length payload)
        raw_len;
    Bytes.copy payload
  | 1 -> rle_decode ~raw_len payload
  | 2 -> (
    match parent with
    | None -> Codec.malformed "xor-delta page without a parent frame"
    | Some p ->
      if Bytes.length p <> raw_len then
        Codec.malformed "xor-delta parent is %d bytes, page is %d" (Bytes.length p)
          raw_len;
      xor (rle_decode ~raw_len payload) p)
  | t -> Codec.malformed "unknown page compression tag %d" t
