(* The parallaft-seglog v1 record types and their field codecs.

   These are the canonical shapes of everything a checker needs
   (DESIGN.md §17): the core runtime's Rr_log / Exec_point types are
   re-exports of the types below, so the live replay path and the
   on-disk format cannot drift apart. Field codecs raise Codec.Error
   on any malformed input; framing, checksums and version checks live
   in Writer/Reader. *)

let format_version = 1

(* Bumped whenever Isa.Insn encodings or Sim_os.Syscall numbers change
   meaning: logs carry instruction words and syscall tags verbatim. *)
let isa_version = 1

let manifest_magic = "PSEGLOGM"
let segment_magic = "PSEGLOGS"

type exec_point = {
  branches : int;
  pc : int;
}

type mem_effect = {
  addr : int;
  data : Bytes.t;
}

type sys_record = {
  call : Sim_os.Syscall.call;
  in_data : Bytes.t option;
  result : int;
  effects : mem_effect list;
}

type event =
  | Sys of sys_record
  | Nondet of {
      insn : Isa.Insn.t;
      value : int;
    }
  | Ext_signal of {
      at : exec_point;
      signum : Sim_os.Sig_num.t;
    }

type segment = {
  id : int;
  preamble : sys_record list;
  events : event list;
  end_point : exec_point;
  insn_delta : int;
  end_regs : int array;
  pages : (int * Bytes.t) array;
}

type fault_spec = {
  kind : string;
  fault_segment : int;
  delay : int;
  arg_a : int;
  arg_b : int;
  repeat : bool;
}

type run_config = {
  mode_raft : bool;
  slice_period : int;
  timeout_scale : float;
  compare_states : bool;
  dirty_backend : string;
  hasher : string;
  seed : int64;
  fault : fault_spec option;
}

type header = {
  config_digest : int64;
  platform : string;
  page_size : int;
  workload : string;
}

type program = {
  pname : string;
  entry : int;
  initial_brk : int;
  code : int array;
  data : (int * Bytes.t) list;
}

type manifest = {
  header : header;
  program : program;
  config : run_config;
  segments : int list;
  truncated_at : int option;
  final_state_hash : int64 option;
}

(* ---------- config fingerprint ---------- *)

let fault_spec_to_string = function
  | None -> "none"
  | Some f ->
    Printf.sprintf "%s@%d+%d(%d,%d)%s" f.kind f.fault_segment f.delay f.arg_a f.arg_b
      (if f.repeat then "*" else "")

(* Everything that shapes the recorded byte stream or its
   interpretation, hashed over a canonical rendering. A replayer built
   from a different config would produce bogus divergences, so the
   reader refuses mismatches up front (Fingerprint_mismatch). *)
let config_digest ~platform ~page_size ~workload (c : run_config) =
  let canon =
    Printf.sprintf "parallaft-seglog:%d:%d|%s|%d|%s|%s|%d|%h|%b|%s|%s|%Ld|%s"
      format_version isa_version platform page_size workload
      (if c.mode_raft then "raft" else "parallaft")
      c.slice_period c.timeout_scale c.compare_states c.dirty_backend c.hasher c.seed
      (fault_spec_to_string c.fault)
  in
  Ftr_hash.Xxh64.hash (Bytes.unsafe_of_string canon)

(* ---------- field codecs ---------- *)

let put_call w (c : Sim_os.Syscall.call) =
  let u8 = Codec.u8 w and v = Codec.varint w in
  match c with
  | Exit code ->
    u8 0;
    v code
  | Write { fd; addr; len } ->
    u8 1;
    v fd;
    v addr;
    v len
  | Read { fd; addr; len } ->
    u8 2;
    v fd;
    v addr;
    v len
  | Open { path_addr; path_len; flags } ->
    u8 3;
    v path_addr;
    v path_len;
    v flags
  | Close { fd } ->
    u8 4;
    v fd
  | Brk { addr } ->
    u8 5;
    v addr
  | Mmap { addr; len; prot; flags; fd; off } ->
    u8 6;
    v addr;
    v len;
    v prot;
    v flags;
    v fd;
    v off
  | Munmap { addr; len } ->
    u8 7;
    v addr;
    v len
  | Mprotect { addr; len; prot } ->
    u8 8;
    v addr;
    v len;
    v prot
  | Getpid -> u8 9
  | Gettime -> u8 10
  | Sigaction { signum; handler_pc } ->
    u8 11;
    v signum;
    v handler_pc
  | Sigreturn -> u8 12
  | Getrandom { addr; len } ->
    u8 13;
    v addr;
    v len
  | Patch_code { pc; word } ->
    u8 14;
    v pc;
    v word
  | Unknown n ->
    u8 15;
    v n

let get_call r : Sim_os.Syscall.call =
  let v () = Codec.r_varint r in
  match Codec.r_u8 r with
  | 0 -> Exit (v ())
  | 1 ->
    let fd = v () in
    let addr = v () in
    let len = v () in
    Write { fd; addr; len }
  | 2 ->
    let fd = v () in
    let addr = v () in
    let len = v () in
    Read { fd; addr; len }
  | 3 ->
    let path_addr = v () in
    let path_len = v () in
    let flags = v () in
    Open { path_addr; path_len; flags }
  | 4 -> Close { fd = v () }
  | 5 -> Brk { addr = v () }
  | 6 ->
    let addr = v () in
    let len = v () in
    let prot = v () in
    let flags = v () in
    let fd = v () in
    let off = v () in
    Mmap { addr; len; prot; flags; fd; off }
  | 7 ->
    let addr = v () in
    let len = v () in
    Munmap { addr; len }
  | 8 ->
    let addr = v () in
    let len = v () in
    let prot = v () in
    Mprotect { addr; len; prot }
  | 9 -> Getpid
  | 10 -> Gettime
  | 11 ->
    let signum = v () in
    let handler_pc = v () in
    Sigaction { signum; handler_pc }
  | 12 -> Sigreturn
  | 13 ->
    let addr = v () in
    let len = v () in
    Getrandom { addr; len }
  | 14 ->
    let pc = v () in
    let word = v () in
    Patch_code { pc; word }
  | 15 -> Unknown (v ())
  | t -> Codec.malformed "unknown syscall tag %d" t

let put_opt_bytes w = function
  | None -> Codec.u8 w 0
  | Some b ->
    Codec.u8 w 1;
    Codec.bytes_ w b

let get_opt_bytes r =
  match Codec.r_u8 r with
  | 0 -> None
  | 1 -> Some (Codec.r_bytes r)
  | t -> Codec.malformed "bad option tag %d" t

let put_sys w s =
  put_call w s.call;
  put_opt_bytes w s.in_data;
  Codec.varint w s.result;
  Codec.uvarint w (List.length s.effects);
  List.iter
    (fun e ->
      Codec.varint w e.addr;
      Codec.bytes_ w e.data)
    s.effects

let get_sys r =
  let call = get_call r in
  let in_data = get_opt_bytes r in
  let result = Codec.r_varint r in
  let n = Codec.r_uvarint r in
  let effects =
    List.init n (fun _ ->
        let addr = Codec.r_varint r in
        let data = Codec.r_bytes r in
        { addr; data })
  in
  { call; in_data; result; effects }

let put_point w p =
  Codec.varint w p.branches;
  Codec.varint w p.pc

let get_point r =
  let branches = Codec.r_varint r in
  let pc = Codec.r_varint r in
  { branches; pc }

let put_event w = function
  | Sys s ->
    Codec.u8 w 0;
    put_sys w s
  | Nondet { insn; value } -> (
    match Isa.Insn.encode insn with
    | None ->
      (* Only trapped nondet instructions reach a log and they all
         encode; hitting this means the ISA grew an unencodable one and
         isa_version needs a bump. *)
      Codec.malformed "nondet instruction has no binary encoding"
    | Some word ->
      Codec.u8 w 1;
      Codec.varint w word;
      Codec.varint w value)
  | Ext_signal { at; signum } ->
    Codec.u8 w 2;
    put_point w at;
    Codec.varint w signum

let get_event r =
  match Codec.r_u8 r with
  | 0 -> Sys (get_sys r)
  | 1 -> (
    let word = Codec.r_varint r in
    let value = Codec.r_varint r in
    match Isa.Insn.decode word with
    | Some insn -> Nondet { insn; value }
    | None -> Codec.malformed "undecodable nondet instruction word %#x" word)
  | 2 ->
    let at = get_point r in
    let signum = Codec.r_varint r in
    Ext_signal { at; signum }
  | t -> Codec.malformed "unknown event tag %d" t

let put_program w p =
  Codec.str w p.pname;
  Codec.varint w p.entry;
  Codec.varint w p.initial_brk;
  Codec.uvarint w (Array.length p.code);
  Array.iter (Codec.varint w) p.code;
  Codec.uvarint w (List.length p.data);
  List.iter
    (fun (base, bytes) ->
      Codec.varint w base;
      Codec.bytes_ w bytes)
    p.data

let get_program r =
  let pname = Codec.r_str r in
  let entry = Codec.r_varint r in
  let initial_brk = Codec.r_varint r in
  let ncode = Codec.r_uvarint r in
  if ncode > Codec.remaining r then Codec.malformed "code section longer than the file";
  let code = Array.init ncode (fun _ -> Codec.r_varint r) in
  let ndata = Codec.r_uvarint r in
  let data =
    List.init ndata (fun _ ->
        let base = Codec.r_varint r in
        let bytes = Codec.r_bytes r in
        (base, bytes))
  in
  { pname; entry; initial_brk; code; data }

let put_config w c =
  Codec.u8 w (if c.mode_raft then 1 else 0);
  Codec.varint w c.slice_period;
  Codec.i64 w (Int64.bits_of_float c.timeout_scale);
  Codec.u8 w (if c.compare_states then 1 else 0);
  Codec.str w c.dirty_backend;
  Codec.str w c.hasher;
  Codec.i64 w c.seed;
  match c.fault with
  | None -> Codec.u8 w 0
  | Some f ->
    Codec.u8 w 1;
    Codec.str w f.kind;
    Codec.varint w f.fault_segment;
    Codec.varint w f.delay;
    Codec.varint w f.arg_a;
    Codec.varint w f.arg_b;
    Codec.u8 w (if f.repeat then 1 else 0)

let get_bool r =
  match Codec.r_u8 r with
  | 0 -> false
  | 1 -> true
  | t -> Codec.malformed "bad bool tag %d" t

let get_config r =
  let mode_raft = get_bool r in
  let slice_period = Codec.r_varint r in
  let timeout_scale = Int64.float_of_bits (Codec.r_i64 r) in
  let compare_states = get_bool r in
  let dirty_backend = Codec.r_str r in
  let hasher = Codec.r_str r in
  let seed = Codec.r_i64 r in
  let fault =
    match Codec.r_u8 r with
    | 0 -> None
    | 1 ->
      let kind = Codec.r_str r in
      let fault_segment = Codec.r_varint r in
      let delay = Codec.r_varint r in
      let arg_a = Codec.r_varint r in
      let arg_b = Codec.r_varint r in
      let repeat = get_bool r in
      Some { kind; fault_segment; delay; arg_a; arg_b; repeat }
    | t -> Codec.malformed "bad option tag %d" t
  in
  { mode_raft; slice_period; timeout_scale; compare_states; dirty_backend; hasher; seed;
    fault }
