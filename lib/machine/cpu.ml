type fault =
  | Segv of { addr : int; write : bool }
  | Div_by_zero
  | Bad_pc of int

type stop_reason =
  | Budget_exhausted
  | Halted
  | Syscall_stop
  | Nondet_stop of Isa.Insn.t
  | Breakpoint_stop
  | Counter_overflow_stop
  | Cycle_overflow_stop
  | Insn_overflow_stop
  | Fault_stop of fault

type run_result = {
  stop : stop_reason;
  user_cycles : int;
  sys_cycles : int;
  insns_retired : int;
  blocks_retired : int;
}

type env = {
  core_id : int;
  read_tsc : unit -> int;
  read_rand : unit -> int;
  mem_access : write:bool -> frame:int -> int;
  mem_access_cow : frame:int -> old_frame:int -> int;
  cow_extra_cycles : int;
  mul_cycles : int;
  div_cycles : int;
}

type t = {
  regs : int array;
  mutable pc : int;
  prog : Isa.Program.t;
  aspace : Mem.Address_space.t;
  rng : Util.Rng.t;
  max_skid : int;
  max_insn_overcount : int;
  (* performance counters *)
  mutable branches : int;
  mutable instructions : int;
  mutable user_cycles : int;
  mutable sys_cycles : int;
  (* branch-overflow interrupt *)
  mutable overflow_armed : bool;
  mutable overflow_trap_at : int; (* target + skid draw *)
  mutable cycle_overflow_at : int; (* max_int = disarmed *)
  mutable insn_overflow_at : int; (* max_int = disarmed *)
  (* breakpoints *)
  breakpoints : (int, unit) Hashtbl.t;
  mutable bp_resume_pc : int; (* suppress re-trap at this pc once *)
  (* tracing *)
  mutable nondet_trap : bool;
  (* fault injection *)
  mutable inject_countdown : int; (* -1 = disarmed *)
  mutable inject_target : inject_target;
  mutable injected : bool;
}

and inject_target =
  | Inject_reg of { reg : int; bit : int }
  | Inject_mem of { page_index : int; bit : int }

let create ?(max_skid = 6) ?(max_insn_overcount = 3) ~rng ~program ~aspace () =
  {
    regs = Array.make Isa.Insn.num_regs 0;
    pc = program.Isa.Program.entry;
    prog = program;
    aspace;
    rng;
    max_skid;
    max_insn_overcount;
    branches = 0;
    instructions = 0;
    user_cycles = 0;
    sys_cycles = 0;
    overflow_armed = false;
    overflow_trap_at = 0;
    cycle_overflow_at = max_int;
    insn_overflow_at = max_int;
    breakpoints = Hashtbl.create 4;
    bp_resume_pc = -1;
    nondet_trap = false;
    inject_countdown = -1;
    inject_target = Inject_reg { reg = 0; bit = 0 };
    injected = false;
  }

let fork t ~rng ~aspace =
  let child = create ~max_skid:t.max_skid ~max_insn_overcount:t.max_insn_overcount
      ~rng ~program:t.prog ~aspace ()
  in
  Array.blit t.regs 0 child.regs 0 (Array.length t.regs);
  child.pc <- t.pc;
  child

let program t = t.prog
let aspace t = t.aspace
let get_reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- v
let get_pc t = t.pc
let set_pc t pc = t.pc <- pc
let snapshot_regs t = Array.copy t.regs

let restore_regs t regs =
  if Array.length regs <> Array.length t.regs then
    invalid_arg "Cpu.restore_regs: wrong register count";
  Array.blit regs 0 t.regs 0 (Array.length regs)

let branches t = t.branches
let instructions t = t.instructions
let cycles t = t.user_cycles + t.sys_cycles
let user_cycles_total t = t.user_cycles
let sys_cycles_total t = t.sys_cycles

let arm_branch_overflow t ~target =
  t.overflow_armed <- true;
  t.overflow_trap_at <- target + Util.Rng.int t.rng (t.max_skid + 1)

let disarm_branch_overflow t = t.overflow_armed <- false

let max_skid t = t.max_skid

let arm_cycle_overflow t ~target = t.cycle_overflow_at <- target
let disarm_cycle_overflow t = t.cycle_overflow_at <- max_int
let arm_insn_overflow t ~target = t.insn_overflow_at <- target
let disarm_insn_overflow t = t.insn_overflow_at <- max_int

let set_breakpoint t pc = Hashtbl.replace t.breakpoints pc ()
let clear_breakpoint t pc = Hashtbl.remove t.breakpoints pc

let clear_all_breakpoints t =
  Hashtbl.reset t.breakpoints;
  t.bp_resume_pc <- -1

let set_nondet_trap t b = t.nondet_trap <- b

let arm_injection t ~after_instructions target =
  if after_instructions < 0 then
    invalid_arg "Cpu.arm_fault_injection: negative delay";
  t.inject_countdown <- after_instructions;
  t.inject_target <- target;
  t.injected <- false

let arm_fault_injection t ~after_instructions ~reg ~bit =
  if reg < 0 || reg >= Isa.Insn.num_regs then
    invalid_arg "Cpu.arm_fault_injection: bad register";
  if bit < 0 || bit > 63 then invalid_arg "Cpu.arm_fault_injection: bad bit";
  arm_injection t ~after_instructions (Inject_reg { reg; bit })

let arm_memory_fault_injection t ~after_instructions ~page_index ~bit =
  if page_index < 0 then
    invalid_arg "Cpu.arm_memory_fault_injection: negative page index";
  if bit < 0 || bit > 63 then
    invalid_arg "Cpu.arm_memory_fault_injection: bad bit";
  arm_injection t ~after_instructions (Inject_mem { page_index; bit })

let disarm_fault_injection t = t.inject_countdown <- -1
let fault_injected t = t.injected

(* Fire the armed injection. Registers are the ISA's 63-bit native ints
   (Shl zeroes shifts past 62), so bit 63 of a register does not exist
   architecturally: the flip is masked to a no-op but still counts as
   injected (the fault landed in a bit the core never reads). Memory
   flips go through the normal store path, so they break COW and mark
   the page dirty like any wrong-value store; a flip landing on a
   write-protected page is likewise masked. *)
let fire_injection t =
  (match t.inject_target with
  | Inject_reg { reg; bit } ->
    if bit <= 62 then t.regs.(reg) <- t.regs.(reg) lxor (1 lsl bit)
  | Inject_mem { page_index; bit } -> (
    let pt = Mem.Address_space.page_table t.aspace in
    let vpns = Mem.Page_table.mapped_vpns pt in
    let n = Array.length vpns in
    if n > 0 then
      let vpn = vpns.(page_index mod n) in
      let addr =
        (vpn * Mem.Address_space.page_size t.aspace) + (bit lsr 3)
      in
      try
        let b = Mem.Address_space.load8 t.aspace addr in
        Mem.Address_space.store8 t.aspace addr (b lxor (1 lsl (bit land 7)))
      with Mem.Address_space.Segfault _ -> ()));
  t.injected <- true

(* A trap perturbs the retired-instruction counter (interrupt-return
   overcounting, as on real hardware). *)
let trap_overcount t =
  if t.max_insn_overcount > 0 then
    t.instructions <- t.instructions + Util.Rng.int t.rng (t.max_insn_overcount + 1)

exception Stop of stop_reason

let run t ~env ~max_cycles =
  if max_cycles <= 0 then invalid_arg "Cpu.run: max_cycles <= 0";
  let code = t.prog.Isa.Program.code in
  let code_len = Array.length code in
  let aspace = t.aspace in
  let regs = t.regs in
  let user = ref 0 and sys = ref 0 in
  let base_cycles = t.user_cycles + t.sys_cycles in
  let insns0 = t.instructions and branches0 = t.branches in
  let is_trap_stop = function
    | Syscall_stop | Nondet_stop _ | Breakpoint_stop | Counter_overflow_stop
    | Cycle_overflow_stop | Insn_overflow_stop | Fault_stop _ ->
      true
    | Budget_exhausted | Halted -> false
  in
  let operand_value = function
    | Isa.Insn.Reg r -> regs.(r)
    | Isa.Insn.Imm i -> i
  in
  let mem_cost ~write =
    1 + env.mem_access ~write ~frame:(Mem.Address_space.last_frame aspace)
  in
  let store_cost () =
    if Mem.Address_space.last_cow aspace then begin
      sys := !sys + env.cow_extra_cycles;
      1
      + env.mem_access_cow
          ~frame:(Mem.Address_space.last_frame aspace)
          ~old_frame:(Mem.Address_space.last_cow_old_frame aspace)
    end
    else mem_cost ~write:true
  in
  let stop =
    try
      while true do
        (* Fetch. *)
        if t.pc < 0 || t.pc >= code_len then raise (Stop (Fault_stop (Bad_pc t.pc)));
        (* Hardware breakpoint check (suppressed once after resume). *)
        if Hashtbl.length t.breakpoints > 0
           && t.bp_resume_pc <> t.pc
           && Hashtbl.mem t.breakpoints t.pc
        then begin
          t.bp_resume_pc <- t.pc;
          raise (Stop Breakpoint_stop)
        end;
        let insn = Array.unsafe_get code t.pc in
        (match insn with
        | Isa.Insn.Syscall -> raise (Stop Syscall_stop)
        | Isa.Insn.Rdtsc _ | Isa.Insn.Rdcoreid _ | Isa.Insn.Rdrand _
          when t.nondet_trap ->
          raise (Stop (Nondet_stop insn))
        | Isa.Insn.Halt -> raise (Stop Halted)
        | Isa.Insn.Alu _ | Isa.Insn.Li _ | Isa.Insn.Mov _ | Isa.Insn.Load _
        | Isa.Insn.Store _ | Isa.Insn.Load8 _ | Isa.Insn.Store8 _
        | Isa.Insn.Branch _ | Isa.Insn.Jump _ | Isa.Insn.Jump_reg _
        | Isa.Insn.Rdtsc _ | Isa.Insn.Rdcoreid _ | Isa.Insn.Rdrand _
        | Isa.Insn.Nop ->
          ());
        t.bp_resume_pc <- -1;
        (* Execute. *)
        let next_pc = t.pc + 1 in
        (try
           match insn with
           | Isa.Insn.Alu (op, rd, rs1, op2) ->
             let a = regs.(rs1) and b = operand_value op2 in
             let v =
               match op with
               | Isa.Insn.Add ->
                 user := !user + 1;
                 a + b
               | Isa.Insn.Sub ->
                 user := !user + 1;
                 a - b
               | Isa.Insn.Mul ->
                 user := !user + env.mul_cycles;
                 a * b
               | Isa.Insn.Div ->
                 user := !user + env.div_cycles;
                 if b = 0 then raise (Stop (Fault_stop Div_by_zero)) else a / b
               | Isa.Insn.Rem ->
                 user := !user + env.div_cycles;
                 if b = 0 then raise (Stop (Fault_stop Div_by_zero)) else a mod b
               | Isa.Insn.And ->
                 user := !user + 1;
                 a land b
               | Isa.Insn.Or ->
                 user := !user + 1;
                 a lor b
               | Isa.Insn.Xor ->
                 user := !user + 1;
                 a lxor b
               | Isa.Insn.Shl ->
                 user := !user + 1;
                 let sh = b land 63 in
                 if sh > 62 then 0 else a lsl sh
               | Isa.Insn.Shr ->
                 user := !user + 1;
                 let sh = b land 63 in
                 if sh > 62 then 0 else a lsr sh
             in
             regs.(rd) <- v;
             t.pc <- next_pc
           | Isa.Insn.Li (rd, imm) ->
             user := !user + 1;
             regs.(rd) <- imm;
             t.pc <- next_pc
           | Isa.Insn.Mov (rd, rs) ->
             user := !user + 1;
             regs.(rd) <- regs.(rs);
             t.pc <- next_pc
           | Isa.Insn.Load (rd, rb, off) ->
             let v = Mem.Address_space.load64 aspace (regs.(rb) + off) in
             user := !user + mem_cost ~write:false;
             regs.(rd) <- v;
             t.pc <- next_pc
           | Isa.Insn.Store (rs, rb, off) ->
             Mem.Address_space.store64 aspace (regs.(rb) + off) regs.(rs);
             user := !user + store_cost ();
             t.pc <- next_pc
           | Isa.Insn.Load8 (rd, rb, off) ->
             let v = Mem.Address_space.load8 aspace (regs.(rb) + off) in
             user := !user + mem_cost ~write:false;
             regs.(rd) <- v;
             t.pc <- next_pc
           | Isa.Insn.Store8 (rs, rb, off) ->
             Mem.Address_space.store8 aspace (regs.(rb) + off) regs.(rs);
             user := !user + store_cost ();
             t.pc <- next_pc
           | Isa.Insn.Branch (cond, rs1, rs2, target) ->
             user := !user + 1;
             t.branches <- t.branches + 1;
             let a = regs.(rs1) and b = regs.(rs2) in
             let taken =
               match cond with
               | Isa.Insn.Eq -> a = b
               | Isa.Insn.Ne -> a <> b
               | Isa.Insn.Lt -> a < b
               | Isa.Insn.Ge -> a >= b
             in
             t.pc <- (if taken then target else next_pc)
           | Isa.Insn.Jump target ->
             user := !user + 1;
             t.branches <- t.branches + 1;
             t.pc <- target
           | Isa.Insn.Jump_reg rs ->
             user := !user + 1;
             t.branches <- t.branches + 1;
             t.pc <- regs.(rs)
           | Isa.Insn.Rdtsc rd ->
             user := !user + 2;
             regs.(rd) <- env.read_tsc ();
             t.pc <- next_pc
           | Isa.Insn.Rdcoreid rd ->
             user := !user + 2;
             regs.(rd) <- env.core_id;
             t.pc <- next_pc
           | Isa.Insn.Rdrand rd ->
             user := !user + 2;
             regs.(rd) <- env.read_rand ();
             t.pc <- next_pc
           | Isa.Insn.Nop ->
             user := !user + 1;
             t.pc <- next_pc
           | Isa.Insn.Syscall | Isa.Insn.Halt ->
             (* Unreachable: intercepted at fetch. *)
             assert false
         with Mem.Address_space.Segfault { addr; write } ->
           raise (Stop (Fault_stop (Segv { addr; write }))));
        (* Retire. *)
        t.instructions <- t.instructions + 1;
        if t.inject_countdown >= 0 then begin
          if t.inject_countdown = 0 then fire_injection t;
          t.inject_countdown <- t.inject_countdown - 1
        end;
        if t.overflow_armed && t.branches >= t.overflow_trap_at then begin
          t.overflow_armed <- false;
          raise (Stop Counter_overflow_stop)
        end;
        if t.instructions >= t.insn_overflow_at then begin
          t.insn_overflow_at <- max_int;
          raise (Stop Insn_overflow_stop)
        end;
        if base_cycles + !user + !sys >= t.cycle_overflow_at then begin
          t.cycle_overflow_at <- max_int;
          raise (Stop Cycle_overflow_stop)
        end;
        if !user + !sys >= max_cycles then raise (Stop Budget_exhausted)
      done;
      assert false
    with Stop reason -> reason
  in
  if is_trap_stop stop then trap_overcount t;
  t.user_cycles <- t.user_cycles + !user;
  t.sys_cycles <- t.sys_cycles + !sys;
  {
    stop;
    user_cycles = !user;
    sys_cycles = !sys;
    (* Deltas over this run call, as the counters report them — the
       insn delta includes the trap overcount noise, like the hardware
       counter the profiler would batch-read. *)
    insns_retired = t.instructions - insns0;
    blocks_retired = t.branches - branches0;
  }
