type fault =
  | Segv of { addr : int; write : bool }
  | Div_by_zero
  | Bad_pc of int

type stop_reason =
  | Budget_exhausted
  | Halted
  | Syscall_stop
  | Nondet_stop of Isa.Insn.t
  | Breakpoint_stop
  | Counter_overflow_stop
  | Cycle_overflow_stop
  | Insn_overflow_stop
  | Fault_stop of fault

type run_result = {
  stop : stop_reason;
  user_cycles : int;
  sys_cycles : int;
  insns_retired : int;
  blocks_retired : int;
  blocks_decoded : int;
}

type env = {
  core_id : int;
  read_tsc : unit -> int;
  read_rand : unit -> int;
  mem_access : write:bool -> frame:int -> int;
  mem_access_cow : frame:int -> old_frame:int -> int;
  cow_extra_cycles : int;
  mul_cycles : int;
  div_cycles : int;
}

(* Process-wide default capacity for the decoded-block cache, so every
   construction site (engine spawn, baseline runs, test CPUs) agrees
   without threading a parameter through each harness. [<= 0] disables.
   Overridable per CPU via [create ?block_cache] and globally via the
   PARALLAFT_BLOCK_CACHE environment variable. *)
let default_block_cache_v =
  let init =
    match Sys.getenv_opt "PARALLAFT_BLOCK_CACHE" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None -> 4096)
    | None -> 4096
  in
  Atomic.make init

let default_block_cache () = Atomic.get default_block_cache_v
let set_default_block_cache n = Atomic.set default_block_cache_v n

type t = {
  regs : int array;
  mutable pc : int;
  prog : Isa.Program.t;
  code : Isa.Insn.t array;
      (* this CPU's live instruction stream: a copy of the program's
         code that patch_code may rewrite (inherited across fork) *)
  code_gens : int array; (* per-code-page patch generations *)
  bcache : Block_cache.t option;
  block_cache_capacity : int;
  aspace : Mem.Address_space.t;
  rng : Util.Rng.t;
  max_skid : int;
  max_insn_overcount : int;
  (* performance counters *)
  mutable branches : int;
  mutable instructions : int;
  mutable user_cycles : int;
  mutable sys_cycles : int;
  (* branch-overflow interrupt *)
  mutable overflow_armed : bool;
  mutable overflow_trap_at : int; (* target + skid draw *)
  mutable cycle_overflow_at : int; (* max_int = disarmed *)
  mutable insn_overflow_at : int; (* max_int = disarmed *)
  (* breakpoints *)
  breakpoints : (int, unit) Hashtbl.t;
  mutable bp_resume_pc : int; (* suppress re-trap at this pc once *)
  (* tracing *)
  mutable nondet_trap : bool;
  (* fault injection *)
  mutable inject_countdown : int; (* -1 = disarmed *)
  mutable inject_target : inject_target;
  mutable injected : bool;
}

and inject_target =
  | Inject_reg of { reg : int; bit : int }
  | Inject_mem of { page_index : int; bit : int }

let create ?(max_skid = 6) ?(max_insn_overcount = 3) ?block_cache ~rng
    ~program ~aspace () =
  let code = Array.copy program.Isa.Program.code in
  let code_len = Array.length code in
  let cap =
    match block_cache with Some c -> c | None -> default_block_cache ()
  in
  {
    regs = Array.make Isa.Insn.num_regs 0;
    pc = program.Isa.Program.entry;
    prog = program;
    code;
    code_gens = Array.make (max 1 (Isa.Decoded.n_code_pages ~code_len)) 0;
    bcache =
      (if cap <= 0 then None
       else Some (Block_cache.create ~capacity:cap ~code_len));
    block_cache_capacity = cap;
    aspace;
    rng;
    max_skid;
    max_insn_overcount;
    branches = 0;
    instructions = 0;
    user_cycles = 0;
    sys_cycles = 0;
    overflow_armed = false;
    overflow_trap_at = 0;
    cycle_overflow_at = max_int;
    insn_overflow_at = max_int;
    breakpoints = Hashtbl.create 4;
    bp_resume_pc = -1;
    nondet_trap = false;
    inject_countdown = -1;
    inject_target = Inject_reg { reg = 0; bit = 0 };
    injected = false;
  }

let fork t ~rng ~aspace =
  let child = create ~max_skid:t.max_skid ~max_insn_overcount:t.max_insn_overcount
      ~block_cache:t.block_cache_capacity ~rng ~program:t.prog ~aspace ()
  in
  Array.blit t.regs 0 child.regs 0 (Array.length t.regs);
  (* The child executes the parent's *current* code image, patches
     included (its decoded-block cache starts cold). *)
  Array.blit t.code 0 child.code 0 (Array.length t.code);
  child.pc <- t.pc;
  child

let program t = t.prog
let aspace t = t.aspace
let get_reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- v
let get_pc t = t.pc
let set_pc t pc = t.pc <- pc
let snapshot_regs t = Array.copy t.regs

let restore_regs t regs =
  if Array.length regs <> Array.length t.regs then
    invalid_arg "Cpu.restore_regs: wrong register count";
  Array.blit regs 0 t.regs 0 (Array.length regs)

let branches t = t.branches
let instructions t = t.instructions
let cycles t = t.user_cycles + t.sys_cycles
let user_cycles_total t = t.user_cycles
let sys_cycles_total t = t.sys_cycles

let code_insn t pc =
  if pc < 0 || pc >= Array.length t.code then None else Some t.code.(pc)

let patch_code t ~pc insn =
  if pc < 0 || pc >= Array.length t.code then
    Error (Printf.sprintf "patch_code: pc %d out of range" pc)
  else
    match Isa.Insn.check insn with
    | Error e -> Error e
    | Ok () ->
      t.code.(pc) <- insn;
      let page = Isa.Decoded.code_page pc in
      t.code_gens.(page) <- t.code_gens.(page) + 1;
      Ok ()

let block_cache_enabled t = t.bcache <> None

let block_cache_stats t =
  match t.bcache with
  | None -> (0, 0, 0)
  | Some bc ->
    (Block_cache.hits bc, Block_cache.misses bc, Block_cache.invalidations bc)

let arm_branch_overflow t ~target =
  t.overflow_armed <- true;
  t.overflow_trap_at <- target + Util.Rng.int t.rng (t.max_skid + 1)

let disarm_branch_overflow t = t.overflow_armed <- false

let max_skid t = t.max_skid

let arm_cycle_overflow t ~target = t.cycle_overflow_at <- target
let disarm_cycle_overflow t = t.cycle_overflow_at <- max_int
let arm_insn_overflow t ~target = t.insn_overflow_at <- target
let disarm_insn_overflow t = t.insn_overflow_at <- max_int

let set_breakpoint t pc = Hashtbl.replace t.breakpoints pc ()
let clear_breakpoint t pc = Hashtbl.remove t.breakpoints pc

let clear_all_breakpoints t =
  Hashtbl.reset t.breakpoints;
  t.bp_resume_pc <- -1

let set_nondet_trap t b = t.nondet_trap <- b

let arm_injection t ~after_instructions target =
  if after_instructions < 0 then
    invalid_arg "Cpu.arm_fault_injection: negative delay";
  t.inject_countdown <- after_instructions;
  t.inject_target <- target;
  t.injected <- false

let arm_fault_injection t ~after_instructions ~reg ~bit =
  if reg < 0 || reg >= Isa.Insn.num_regs then
    invalid_arg "Cpu.arm_fault_injection: bad register";
  if bit < 0 || bit > 63 then invalid_arg "Cpu.arm_fault_injection: bad bit";
  arm_injection t ~after_instructions (Inject_reg { reg; bit })

let arm_memory_fault_injection t ~after_instructions ~page_index ~bit =
  if page_index < 0 then
    invalid_arg "Cpu.arm_memory_fault_injection: negative page index";
  if bit < 0 || bit > 63 then
    invalid_arg "Cpu.arm_memory_fault_injection: bad bit";
  arm_injection t ~after_instructions (Inject_mem { page_index; bit })

let disarm_fault_injection t = t.inject_countdown <- -1
let fault_injected t = t.injected

(* Fire the armed injection. Registers are the ISA's 63-bit native ints
   (Shl zeroes shifts past 62), so bit 63 of a register does not exist
   architecturally: the flip is masked to a no-op but still counts as
   injected (the fault landed in a bit the core never reads). Memory
   flips go through the normal store path, so they break COW and mark
   the page dirty like any wrong-value store; a flip landing on a
   write-protected page is likewise masked. *)
let fire_injection t =
  (match t.inject_target with
  | Inject_reg { reg; bit } ->
    if bit <= 62 then t.regs.(reg) <- t.regs.(reg) lxor (1 lsl bit)
  | Inject_mem { page_index; bit } -> (
    let pt = Mem.Address_space.page_table t.aspace in
    let vpns = Mem.Page_table.mapped_vpns pt in
    let n = Array.length vpns in
    if n > 0 then
      let vpn = vpns.(page_index mod n) in
      let addr =
        (vpn * Mem.Address_space.page_size t.aspace) + (bit lsr 3)
      in
      try
        let b = Mem.Address_space.load8 t.aspace addr in
        Mem.Address_space.store8 t.aspace addr (b lxor (1 lsl (bit land 7)))
      with Mem.Address_space.Segfault _ -> ()));
  t.injected <- true

(* A trap perturbs the retired-instruction counter (interrupt-return
   overcounting, as on real hardware). *)
let trap_overcount t =
  if t.max_insn_overcount > 0 then
    t.instructions <- t.instructions + Util.Rng.int t.rng (t.max_insn_overcount + 1)

exception Stop of stop_reason

(* Raised by the cached fast path's ALU helper so a mid-block
   divide-by-zero can be routed through the flush-then-stop path
   (a bare [Stop] there would skip the counter flush). *)
exception Op_fault of fault

let run t ~env ~max_cycles =
  if max_cycles <= 0 then invalid_arg "Cpu.run: max_cycles <= 0";
  let code = t.code in
  let code_len = Array.length code in
  let aspace = t.aspace in
  let regs = t.regs in
  let user = ref 0 and sys = ref 0 in
  let base_cycles = t.user_cycles + t.sys_cycles in
  let insns0 = t.instructions and branches0 = t.branches in
  let blocks_decoded = ref 0 in
  let is_trap_stop = function
    | Syscall_stop | Nondet_stop _ | Breakpoint_stop | Counter_overflow_stop
    | Cycle_overflow_stop | Insn_overflow_stop | Fault_stop _ ->
      true
    | Budget_exhausted | Halted -> false
  in
  let operand_value = function
    | Isa.Insn.Reg r -> regs.(r)
    | Isa.Insn.Imm i -> i
  in
  let mem_cost ~write =
    1 + env.mem_access ~write ~frame:(Mem.Address_space.last_frame aspace)
  in
  let store_cost () =
    if Mem.Address_space.last_cow aspace then begin
      sys := !sys + env.cow_extra_cycles;
      1
      + env.mem_access_cow
          ~frame:(Mem.Address_space.last_frame aspace)
          ~old_frame:(Mem.Address_space.last_cow_old_frame aspace)
    end
    else mem_cost ~write:true
  in
  (* One full fetch-decode-execute-retire iteration of the plain
     interpreter — the reference semantics. The cached path below must
     be observationally identical to a [step] loop; it falls back to
     [step] whenever a stop condition could fire mid-block. *)
  let step () =
    (* Fetch. *)
    if t.pc < 0 || t.pc >= code_len then raise (Stop (Fault_stop (Bad_pc t.pc)));
    (* Hardware breakpoint check (suppressed once after resume). *)
    if Hashtbl.length t.breakpoints > 0
       && t.bp_resume_pc <> t.pc
       && Hashtbl.mem t.breakpoints t.pc
    then begin
      t.bp_resume_pc <- t.pc;
      raise (Stop Breakpoint_stop)
    end;
    let insn = Array.unsafe_get code t.pc in
    (match insn with
    | Isa.Insn.Syscall -> raise (Stop Syscall_stop)
    | Isa.Insn.Rdtsc _ | Isa.Insn.Rdcoreid _ | Isa.Insn.Rdrand _
      when t.nondet_trap ->
      raise (Stop (Nondet_stop insn))
    | Isa.Insn.Halt -> raise (Stop Halted)
    | Isa.Insn.Alu _ | Isa.Insn.Li _ | Isa.Insn.Mov _ | Isa.Insn.Load _
    | Isa.Insn.Store _ | Isa.Insn.Load8 _ | Isa.Insn.Store8 _
    | Isa.Insn.Branch _ | Isa.Insn.Jump _ | Isa.Insn.Jump_reg _
    | Isa.Insn.Rdtsc _ | Isa.Insn.Rdcoreid _ | Isa.Insn.Rdrand _
    | Isa.Insn.Nop ->
      ());
    t.bp_resume_pc <- -1;
    (* Execute. *)
    let next_pc = t.pc + 1 in
    (try
       match insn with
       | Isa.Insn.Alu (op, rd, rs1, op2) ->
         let a = regs.(rs1) and b = operand_value op2 in
         let v =
           match op with
           | Isa.Insn.Add ->
             user := !user + 1;
             a + b
           | Isa.Insn.Sub ->
             user := !user + 1;
             a - b
           | Isa.Insn.Mul ->
             user := !user + env.mul_cycles;
             a * b
           | Isa.Insn.Div ->
             user := !user + env.div_cycles;
             if b = 0 then raise (Stop (Fault_stop Div_by_zero)) else a / b
           | Isa.Insn.Rem ->
             user := !user + env.div_cycles;
             if b = 0 then raise (Stop (Fault_stop Div_by_zero)) else a mod b
           | Isa.Insn.And ->
             user := !user + 1;
             a land b
           | Isa.Insn.Or ->
             user := !user + 1;
             a lor b
           | Isa.Insn.Xor ->
             user := !user + 1;
             a lxor b
           | Isa.Insn.Shl ->
             user := !user + 1;
             let sh = b land 63 in
             if sh > 62 then 0 else a lsl sh
           | Isa.Insn.Shr ->
             user := !user + 1;
             let sh = b land 63 in
             if sh > 62 then 0 else a lsr sh
         in
         regs.(rd) <- v;
         t.pc <- next_pc
       | Isa.Insn.Li (rd, imm) ->
         user := !user + 1;
         regs.(rd) <- imm;
         t.pc <- next_pc
       | Isa.Insn.Mov (rd, rs) ->
         user := !user + 1;
         regs.(rd) <- regs.(rs);
         t.pc <- next_pc
       | Isa.Insn.Load (rd, rb, off) ->
         let v = Mem.Address_space.load64 aspace (regs.(rb) + off) in
         user := !user + mem_cost ~write:false;
         regs.(rd) <- v;
         t.pc <- next_pc
       | Isa.Insn.Store (rs, rb, off) ->
         Mem.Address_space.store64 aspace (regs.(rb) + off) regs.(rs);
         user := !user + store_cost ();
         t.pc <- next_pc
       | Isa.Insn.Load8 (rd, rb, off) ->
         let v = Mem.Address_space.load8 aspace (regs.(rb) + off) in
         user := !user + mem_cost ~write:false;
         regs.(rd) <- v;
         t.pc <- next_pc
       | Isa.Insn.Store8 (rs, rb, off) ->
         Mem.Address_space.store8 aspace (regs.(rb) + off) regs.(rs);
         user := !user + store_cost ();
         t.pc <- next_pc
       | Isa.Insn.Branch (cond, rs1, rs2, target) ->
         user := !user + 1;
         t.branches <- t.branches + 1;
         let a = regs.(rs1) and b = regs.(rs2) in
         let taken =
           match cond with
           | Isa.Insn.Eq -> a = b
           | Isa.Insn.Ne -> a <> b
           | Isa.Insn.Lt -> a < b
           | Isa.Insn.Ge -> a >= b
         in
         t.pc <- (if taken then target else next_pc)
       | Isa.Insn.Jump target ->
         user := !user + 1;
         t.branches <- t.branches + 1;
         t.pc <- target
       | Isa.Insn.Jump_reg rs ->
         user := !user + 1;
         t.branches <- t.branches + 1;
         t.pc <- regs.(rs)
       | Isa.Insn.Rdtsc rd ->
         user := !user + 2;
         regs.(rd) <- env.read_tsc ();
         t.pc <- next_pc
       | Isa.Insn.Rdcoreid rd ->
         user := !user + 2;
         regs.(rd) <- env.core_id;
         t.pc <- next_pc
       | Isa.Insn.Rdrand rd ->
         user := !user + 2;
         regs.(rd) <- env.read_rand ();
         t.pc <- next_pc
       | Isa.Insn.Nop ->
         user := !user + 1;
         t.pc <- next_pc
       | Isa.Insn.Syscall | Isa.Insn.Halt ->
         (* Unreachable: intercepted at fetch. *)
         assert false
     with Mem.Address_space.Segfault { addr; write } ->
       raise (Stop (Fault_stop (Segv { addr; write }))));
    (* Retire. *)
    t.instructions <- t.instructions + 1;
    if t.inject_countdown >= 0 then begin
      if t.inject_countdown = 0 then fire_injection t;
      t.inject_countdown <- t.inject_countdown - 1
    end;
    if t.overflow_armed && t.branches >= t.overflow_trap_at then begin
      t.overflow_armed <- false;
      raise (Stop Counter_overflow_stop)
    end;
    if t.instructions >= t.insn_overflow_at then begin
      t.insn_overflow_at <- max_int;
      raise (Stop Insn_overflow_stop)
    end;
    if base_cycles + !user + !sys >= t.cycle_overflow_at then begin
      t.cycle_overflow_at <- max_int;
      raise (Stop Cycle_overflow_stop)
    end;
    if !user + !sys >= max_cycles then raise (Stop Budget_exhausted)
  in
  (* The cached fast path. Counter updates are batched per block, so
     every early exit must flush the locally retired count (and the
     matching injection-countdown decrements) before raising — the
     trap-overcount draw below reads [t.instructions]. *)
  let run_cached bc =
    (* Cycle stops can only *arm* between run calls, so the combined
       per-op threshold is a run constant: the earlier of the armed
       cycle-overflow point and the budget, in this-run cycles. *)
    let cyc_cap =
      let a = t.cycle_overflow_at - base_cycles in
      if a < max_cycles then a else max_cycles
    in
    (* The block-local mutable state and the helpers that close over it
       are hoisted out of [exec_block]: allocating them per block
       execution costs more than the batching saves on short blocks. *)
    let retired = ref 0 in
    let ip = ref 0 in
    let stop_mid reason =
      t.instructions <- t.instructions + !retired;
      if t.inject_countdown >= 0 then
        t.inject_countdown <- t.inject_countdown - !retired;
      t.pc <- !ip;
      raise (Stop reason)
    in
    let check_cycles () =
      if !user + !sys >= cyc_cap then begin
        if base_cycles + !user + !sys >= t.cycle_overflow_at then begin
          t.cycle_overflow_at <- max_int;
          stop_mid Cycle_overflow_stop
        end;
        if !user + !sys >= max_cycles then stop_mid Budget_exhausted
      end
    in
    let retire1 () =
      incr retired;
      incr ip;
      check_cycles ()
    in
    let alu_exec op a b =
      match op with
      | Isa.Insn.Add ->
        user := !user + 1;
        a + b
      | Isa.Insn.Sub ->
        user := !user + 1;
        a - b
      | Isa.Insn.Mul ->
        user := !user + env.mul_cycles;
        a * b
      | Isa.Insn.Div ->
        user := !user + env.div_cycles;
        if b = 0 then raise (Op_fault Div_by_zero) else a / b
      | Isa.Insn.Rem ->
        user := !user + env.div_cycles;
        if b = 0 then raise (Op_fault Div_by_zero) else a mod b
      | Isa.Insn.And ->
        user := !user + 1;
        a land b
      | Isa.Insn.Or ->
        user := !user + 1;
        a lor b
      | Isa.Insn.Xor ->
        user := !user + 1;
        a lxor b
      | Isa.Insn.Shl ->
        user := !user + 1;
        let sh = b land 63 in
        if sh > 62 then 0 else a lsl sh
      | Isa.Insn.Shr ->
        user := !user + 1;
        let sh = b land 63 in
        if sh > 62 then 0 else a lsr sh
    in
    let branch_retire () =
      incr retired;
      if t.overflow_armed && t.branches >= t.overflow_trap_at then begin
        t.overflow_armed <- false;
        stop_mid Counter_overflow_stop
      end;
      check_cycles ()
    in
    let again = ref false in
    let exec_block (blk : Isa.Decoded.block) =
      let entry = blk.Isa.Decoded.entry in
      let n_insns = blk.Isa.Decoded.n_insns in
      retired := 0;
      ip := entry;
      if blk.Isa.Decoded.resets_bp then t.bp_resume_pc <- -1;
      let ops = blk.Isa.Decoded.ops in
      let n_ops = Array.length ops in
      again := true;
      (try
        while !again do
          again := false;
          if n_ops > 0 then begin
            for i = 0 to n_ops - 1 do
              (match Array.unsafe_get ops i with
              | Isa.Decoded.O_alu_rr { op; rd; rs1; rs2 } ->
                let a = regs.(rs1) and b = regs.(rs2) in
                regs.(rd) <- alu_exec op a b
              | Isa.Decoded.O_alu_ri { op; rd; rs1; imm } ->
                regs.(rd) <- alu_exec op regs.(rs1) imm
              | Isa.Decoded.O_li { rd; imm } ->
                user := !user + 1;
                regs.(rd) <- imm
              | Isa.Decoded.O_mov { rd; rs } ->
                user := !user + 1;
                regs.(rd) <- regs.(rs)
              | Isa.Decoded.O_load { rd; rb; off } ->
                let v = Mem.Address_space.load64 aspace (regs.(rb) + off) in
                user := !user + mem_cost ~write:false;
                regs.(rd) <- v
              | Isa.Decoded.O_store { rs; rb; off } ->
                Mem.Address_space.store64 aspace (regs.(rb) + off) regs.(rs);
                user := !user + store_cost ()
              | Isa.Decoded.O_load8 { rd; rb; off } ->
                let v = Mem.Address_space.load8 aspace (regs.(rb) + off) in
                user := !user + mem_cost ~write:false;
                regs.(rd) <- v
              | Isa.Decoded.O_store8 { rs; rb; off } ->
                Mem.Address_space.store8 aspace (regs.(rb) + off) regs.(rs);
                user := !user + store_cost ()
              | Isa.Decoded.O_load_alu { ld_rd; rb; off; op; rd; rs1 } ->
                (* Two source instructions: the load retires (and the
                   cycle threshold is checked) before the ALU half runs,
                   so a stop between them lands on the ALU instruction. *)
                let v = Mem.Address_space.load64 aspace (regs.(rb) + off) in
                user := !user + mem_cost ~write:false;
                regs.(ld_rd) <- v;
                retire1 ();
                let a = regs.(rs1) and b = regs.(ld_rd) in
                regs.(rd) <- alu_exec op a b
              | Isa.Decoded.O_rdtsc { rd } ->
                user := !user + 2;
                regs.(rd) <- env.read_tsc ()
              | Isa.Decoded.O_rdcoreid { rd } ->
                user := !user + 2;
                regs.(rd) <- env.core_id
              | Isa.Decoded.O_rdrand { rd } ->
                user := !user + 2;
                regs.(rd) <- env.read_rand ()
              | Isa.Decoded.O_nop -> user := !user + 1);
              retire1 ()
            done
          end;
          (match blk.Isa.Decoded.term with
          | Isa.Decoded.T_fallthrough -> ()
          | Isa.Decoded.T_trap insn ->
            stop_mid
              (match insn with
              | Isa.Insn.Syscall -> Syscall_stop
              | Isa.Insn.Halt -> Halted
              | i -> Nondet_stop i)
          | Isa.Decoded.T_branch { cond; rs1; rs2; target } ->
            user := !user + 1;
            t.branches <- t.branches + 1;
            let a = regs.(rs1) and b = regs.(rs2) in
            let taken =
              match cond with
              | Isa.Insn.Eq -> a = b
              | Isa.Insn.Ne -> a <> b
              | Isa.Insn.Lt -> a < b
              | Isa.Insn.Ge -> a >= b
            in
            ip := (if taken then target else !ip + 1);
            branch_retire ()
          | Isa.Decoded.T_dec_branch { rd; dec; cond; rs2; target } ->
            user := !user + 1;
            regs.(rd) <- regs.(rd) - dec;
            retire1 ();
            user := !user + 1;
            t.branches <- t.branches + 1;
            let a = regs.(rd) and b = regs.(rs2) in
            let taken =
              match cond with
              | Isa.Insn.Eq -> a = b
              | Isa.Insn.Ne -> a <> b
              | Isa.Insn.Lt -> a < b
              | Isa.Insn.Ge -> a >= b
            in
            ip := (if taken then target else !ip + 1);
            branch_retire ()
          | Isa.Decoded.T_jump { target } ->
            user := !user + 1;
            t.branches <- t.branches + 1;
            ip := target;
            branch_retire ()
          | Isa.Decoded.T_jump_reg { rs } ->
            user := !user + 1;
            t.branches <- t.branches + 1;
            ip := regs.(rs);
            branch_retire ());
          (* Tight self-loop: the terminator came straight back to this
             block's entry, so skip the dispatch loop and the cache lookup
             and re-execute in place. The dispatch-time slow-path routing
             must be re-derived against the locally retired count: the
             injection arming point and the instruction-counter overflow
             are the only entry conditions that can move mid-run (the
             breakpoint table can't change between stops, and the live
             branch-overflow check just ran in [branch_retire]). *)
          if
            !ip = entry && n_insns > 0
            && (t.inject_countdown < 0
               || t.inject_countdown - !retired >= n_insns)
            && t.instructions + !retired + n_insns < t.insn_overflow_at
          then begin
            Block_cache.note_hit bc;
            again := true
          end
        done
      with
      | Op_fault f -> stop_mid (Fault_stop f)
      | Mem.Address_space.Segfault { addr; write } ->
        stop_mid (Fault_stop (Segv { addr; write })));
      (* Block completed: batch the counter updates. *)
      t.instructions <- t.instructions + !retired;
      if t.inject_countdown >= 0 then
        t.inject_countdown <- t.inject_countdown - !retired;
      t.pc <- !ip
    in
    while true do
      let pc = t.pc in
      if pc < 0 || pc >= code_len then raise (Stop (Fault_stop (Bad_pc pc)));
      begin
        let blk =
          match
            Block_cache.lookup bc ~gens:t.code_gens
              ~nondet_trap:t.nondet_trap ~entry:pc
          with
          | Some b -> b
          | None ->
            let b =
              Isa.Decoded.decode_block ~code ~nondet_trap:t.nondet_trap
                ~entry:pc
            in
            incr blocks_decoded;
            Block_cache.admit bc ~gens:t.code_gens b;
            b
        in
        (* Stop conditions that could fire mid-block (injection arming
           point, instruction-counter overflow) take the per-insn slow
           path for exactly as many instructions as they need. *)
        if
          (t.inject_countdown >= 0
          && t.inject_countdown < blk.Isa.Decoded.n_insns)
          || t.instructions + blk.Isa.Decoded.n_insns >= t.insn_overflow_at
        then step ()
        else exec_block blk
      end
    done
  in
  let stop =
    try
      (match t.bcache with
      (* Breakpoints cannot change mid-run, and an armed-and-already-past
         branch overflow fires at the very next [step] — so when either
         holds at run entry the cached loop would route every single
         instruction to [step] anyway. Decide once here and skip building
         the cached machinery: replay's arm-to-breakpoint runs are a few
         instructions each, and the setup would dominate them. A *live*
         overflow (armed, not yet reached) is fine for the fast path —
         the terminator's [branch_retire] checks it on every branch. *)
      | Some bc
        when Hashtbl.length t.breakpoints = 0
             && not (t.overflow_armed && t.branches >= t.overflow_trap_at) ->
        run_cached bc
      | Some _ | None ->
        while true do
          step ()
        done);
      assert false
    with Stop reason -> reason
  in
  if is_trap_stop stop then trap_overcount t;
  t.user_cycles <- t.user_cycles + !user;
  t.sys_cycles <- t.sys_cycles + !sys;
  {
    stop;
    user_cycles = !user;
    sys_cycles = !sys;
    (* Deltas over this run call, as the counters report them — the
       insn delta includes the trap overcount noise, like the hardware
       counter the profiler would batch-read. *)
    insns_retired = t.instructions - insns0;
    blocks_retired = t.branches - branches0;
    blocks_decoded = !blocks_decoded;
  }
