(** The simulated CPU: architectural state plus the monitoring hardware
    Parallaft depends on.

    One [Cpu.t] is the machine context of one simulated process (the OS
    layer pairs it with scheduling state). It executes {!Isa.Insn}
    programs against an {!Mem.Address_space} and exposes:

    - a {e deterministic} user-mode retired-branch counter with
      overflow interrupts subject to bounded {e skid} (§4.2.2 of the
      paper: the interrupt lands up to [max_skid] branches late);
    - a retired-instruction counter that {e overcounts
      nondeterministically} at every trap (the documented behaviour of
      commodity counters [Weaver et al.] that forces Parallaft to replay
      with branch counts + breakpoints rather than instruction counts);
    - hardware breakpoints;
    - trapping of nondeterministic instructions ([rdtsc], [rdcoreid],
      [rdrand]) when enabled by the tracer;
    - a fault-injection port that flips one register bit after a chosen
      number of retired instructions (§5.6).

    Cycle costs are charged per instruction through an {!env} the
    scheduler rebuilds whenever the process changes core or the
    contention picture changes. *)

type fault =
  | Segv of { addr : int; write : bool }
  | Div_by_zero
  | Bad_pc of int  (** control transferred outside the code array *)

type stop_reason =
  | Budget_exhausted  (** quantum used up; nothing notable happened *)
  | Halted  (** executed [halt]; pc rests on the halt instruction *)
  | Syscall_stop  (** pc rests {e on} the [syscall] instruction *)
  | Nondet_stop of Isa.Insn.t  (** pc rests on the trapped instruction *)
  | Breakpoint_stop  (** pc rests on the breakpointed instruction *)
  | Counter_overflow_stop
      (** branch counter passed its armed target (plus skid) *)
  | Cycle_overflow_stop
      (** total-cycle counter passed its armed target (the slicer's
          segment-boundary interrupt on the Apple platform) *)
  | Insn_overflow_stop
      (** instruction counter passed its armed target (the slicer's
          boundary on Intel, and the checker-timeout kill switch) *)
  | Fault_stop of fault

type run_result = {
  stop : stop_reason;
  user_cycles : int;  (** execution cycles consumed by this run call *)
  sys_cycles : int;  (** kernel-side cycles (COW page copies) consumed *)
  insns_retired : int;
      (** instruction-counter delta over this run call, trap overcount
          noise included — what a batched hot-path profiler read of the
          hardware counter would report *)
  blocks_retired : int;  (** branch (basic-block) counter delta *)
  blocks_decoded : int;
      (** basic blocks decoded (block-cache misses) during this run
          call; 0 when the cache is disabled *)
}

(** Per-run execution environment, supplied by the scheduler. *)
type env = {
  core_id : int;  (** value returned by an untrapped [rdcoreid] *)
  read_tsc : unit -> int;  (** value returned by an untrapped [rdtsc] *)
  read_rand : unit -> int;  (** value returned by an untrapped [rdrand] *)
  mem_access : write:bool -> frame:int -> int;
      (** extra cycles for a memory access to physical frame [frame]
          (cache hierarchy + DRAM contention), excluding the 1-cycle
          base cost *)
  mem_access_cow : frame:int -> old_frame:int -> int;
      (** cache cost of the store that just broke COW: the kernel's page
          copy leaves the fresh frame cache-warm, so this inserts the
          frame into the hierarchy at L2-hit cost instead of charging a
          cold DRAM miss (the copy's traffic is part of
          [cow_extra_cycles]); the retired [old_frame] is invalidated,
          as recency-based replacement would age it out *)
  cow_extra_cycles : int;  (** kernel cost of one COW page copy *)
  mul_cycles : int;
  div_cycles : int;
}

type t

val create :
  ?max_skid:int ->
  ?max_insn_overcount:int ->
  ?block_cache:int ->
  rng:Util.Rng.t ->
  program:Isa.Program.t ->
  aspace:Mem.Address_space.t ->
  unit ->
  t
(** [max_skid] (default 6) bounds counter-overflow skid in branches;
    [max_insn_overcount] (default 3) bounds the spurious increment the
    instruction counter suffers at each trap. [rng] drives both noise
    sources; give each CPU its own split stream. [block_cache] is the
    decoded-block cache capacity in blocks ([<= 0] disables; default
    {!default_block_cache}); the cache is an interpreter speedup with
    {e no} architectural effect (DESIGN.md §15). *)

val fork : t -> rng:Util.Rng.t -> aspace:Mem.Address_space.t -> t
(** Duplicate architectural state (registers, pc) onto a new address
    space. Counters, breakpoints and armed events are {e not} inherited
    (a fresh process starts with quiesced monitoring hardware), matching
    the runtime's behaviour of configuring each checker explicitly. The
    child inherits the parent's {e current} code image — patches
    included — with a cold block cache of the same capacity. *)

val default_block_cache : unit -> int
(** Process-wide default block-cache capacity used by {!create} when
    [?block_cache] is omitted: 4096 blocks, overridable by the
    [PARALLAFT_BLOCK_CACHE] environment variable and
    {!set_default_block_cache}. [<= 0] means disabled. *)

val set_default_block_cache : int -> unit
(** Override the process-wide default (e.g. the CLI's [--block-cache],
    or a differential harness flipping the cache off for a whole run).
    Affects CPUs created afterwards only. *)

val run : t -> env:env -> max_cycles:int -> run_result
(** Execute until the cycle budget is spent or a stop condition arises.
    [max_cycles] must be positive. *)

(** {2 Architectural state access (the ptrace register file)} *)

val program : t -> Isa.Program.t
(** The program this CPU was loaded from — its {e original} code image;
    see {!code_insn} for the live, possibly patched stream. *)

val code_insn : t -> int -> Isa.Insn.t option
(** The instruction this CPU would fetch at a pc, from its live code
    image (reflects {!patch_code}); [None] out of bounds. *)

val patch_code : t -> pc:int -> Isa.Insn.t -> (unit, string) result
(** Overwrite the instruction at [pc] in this CPU's code image (the
    [patch_code] syscall's backend — the Harvard-layout analogue of a
    store to a code page). Bumps the code page's generation so cached
    decoded blocks spanning it are invalidated on next lookup. Errors
    on an out-of-range pc or an instruction failing {!Isa.Insn.check};
    no effect on other CPUs (each has its own image), but a subsequent
    {!fork} inherits the patched stream. *)

val aspace : t -> Mem.Address_space.t
val get_reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val get_pc : t -> int
val set_pc : t -> int -> unit
val snapshot_regs : t -> int array
val restore_regs : t -> int array -> unit

(** {2 Performance counters} *)

val branches : t -> int
(** Retired user-mode branches — deterministic. *)

val instructions : t -> int
(** Retired instructions {e as the hardware counter reports them},
    including trap-overcount noise. *)

val cycles : t -> int
(** Total cycles this CPU has consumed (user + sys). *)

val user_cycles_total : t -> int
val sys_cycles_total : t -> int

val arm_branch_overflow : t -> target:int -> unit
(** Request a {!Counter_overflow_stop} once [branches t >= target + skid]
    with a fresh skid draw in [\[0, max_skid\]]. Re-arming replaces the
    previous target. *)

val disarm_branch_overflow : t -> unit

val max_skid : t -> int

val arm_cycle_overflow : t -> target:int -> unit
(** Request a {!Cycle_overflow_stop} once [cycles t >= target]. Imprecise
    interrupts are fine here: segment boundaries may fall anywhere. *)

val disarm_cycle_overflow : t -> unit

val arm_insn_overflow : t -> target:int -> unit
(** Request an {!Insn_overflow_stop} once [instructions t >= target]. *)

val disarm_insn_overflow : t -> unit

(** {2 Breakpoints} *)

val set_breakpoint : t -> int -> unit
val clear_breakpoint : t -> int -> unit
val clear_all_breakpoints : t -> unit

(** {2 Tracing controls} *)

val set_nondet_trap : t -> bool -> unit
(** When true (a traced process), [rdtsc]/[rdcoreid]/[rdrand] stop the
    CPU with {!Nondet_stop} instead of executing. *)

(** {2 Fault injection} *)

val arm_fault_injection : t -> after_instructions:int -> reg:int -> bit:int -> unit
(** Silently flip [bit] (0-63) of register [reg] after a further
    [after_instructions] retired instructions. Registers are the ISA's
    63-bit native ints, so a bit-63 flip is architecturally masked (a
    no-op that still counts as {!fault_injected} — the fault landed in
    a bit the core never reads).

    @raise Invalid_argument on an out-of-range register or bit. *)

val arm_memory_fault_injection :
  t -> after_instructions:int -> page_index:int -> bit:int -> unit
(** Like {!arm_fault_injection}, but the flip lands in memory: [bit]
    (0-63) of the first word of the [page_index]-th mapped page (mod
    the mapped-page count) of this CPU's address space. The flip goes
    through the normal store path, so it breaks COW and marks the page
    dirty like any wrong-value store; a flip landing on a
    write-protected page is masked. Re-arming replaces any armed
    injection (the port holds one fault at a time).

    @raise Invalid_argument on an out-of-range page index or bit. *)

val disarm_fault_injection : t -> unit

val fault_injected : t -> bool
(** Whether an armed injection has fired. *)

(** {2 Block-cache statistics} *)

val block_cache_enabled : t -> bool

val block_cache_stats : t -> int * int * int
(** [(hits, misses, invalidations)] of this CPU's decoded-block cache
    since creation; all zero when the cache is disabled. Invalidations
    (a subset of misses) count cached blocks dropped because
    {!patch_code} bumped a code page they span. *)
