(** Per-CPU decoded-block cache (DESIGN.md §15).

    Maps entry pc -> {!Isa.Decoded.block}, validated by code-page
    generation snapshots (the frame-generation idiom of
    {!Mem.Page_digest_cache}): a [patch_code] bumps the written page's
    generation, and the next lookup of any block spanning that page
    drops it and counts an {!invalidations}. Residency is bounded by a
    {!Mem.Fifo_cache}. Purely a performance structure: nothing
    architectural depends on what is resident. *)

type t

val create : capacity:int -> code_len:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val lookup :
  t -> gens:int array -> nondet_trap:bool -> entry:int -> Isa.Decoded.block option
(** [gens] is the CPU's live code-page generation array; a stale entry
    (any spanned page's generation moved) is dropped and counted as
    both a miss and an invalidation. A trap-mode mismatch ([nondet_trap]
    flipped since decode) is dropped as a plain miss. *)

val admit : t -> gens:int array -> Isa.Decoded.block -> unit
(** Insert a freshly decoded block, snapshotting the generations of the
    pages it spans; may evict a random resident to stay in capacity. *)

val note_hit : t -> unit
(** Credit a hit without a slot probe: the CPU's tight self-loop path
    re-executes a resident block in place, where a [lookup] would
    necessarily have succeeded (code cannot change mid-run). *)

val hits : t -> int
val misses : t -> int

val invalidations : t -> int
(** Stale entries dropped because a spanned code page was patched. *)
