(* Per-CPU decoded-block cache (DESIGN.md §15).

   Entries are keyed by entry pc; validity is generation-based, the
   same machinery Mem's page-digest cache uses for frames: each entry
   snapshots the generation counters of the code pages it decodes
   from, and a lookup that finds any of them bumped (a patch_code
   landed on the span) drops the entry and reports an invalidation.
   Capacity is bounded by a Mem.Fifo_cache of resident entry pcs whose
   eviction victims clear the direct-mapped slot table. *)

type entry = { block : Isa.Decoded.block; gens : int array }

type t = {
  slots : entry option array; (* indexed by entry pc *)
  resident : Mem.Fifo_cache.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ~capacity ~code_len =
  if capacity <= 0 then invalid_arg "Block_cache.create: capacity <= 0";
  (* Entries are keyed by entry pc, so at most [code_len] can ever be
     resident: clamping the FIFO to that changes no eviction decision
     (a FIFO at or above the distinct-key count never evicts) but keeps
     creation cost proportional to the program, not the configured
     capacity — CPUs are created per fork and per checker. *)
  let capacity = min capacity (max 1 code_len) in
  {
    slots = Array.make (max 1 code_len) None;
    resident = Mem.Fifo_cache.create ~capacity;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let stale e ~gens =
  let b = e.block in
  let n = b.Isa.Decoded.last_page - b.Isa.Decoded.first_page + 1 in
  let rec loop i =
    if i >= n then false
    else if e.gens.(i) <> gens.(b.Isa.Decoded.first_page + i) then true
    else loop (i + 1)
  in
  loop 0

let drop t pc =
  Mem.Fifo_cache.remove t.resident pc;
  t.slots.(pc) <- None

let lookup t ~gens ~nondet_trap ~entry =
  match t.slots.(entry) with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e ->
    if stale e ~gens then begin
      t.invalidations <- t.invalidations + 1;
      t.misses <- t.misses + 1;
      drop t entry;
      None
    end
    else if e.block.Isa.Decoded.nondet_trap <> nondet_trap then begin
      (* Not a code write — just a trap-mode flip; re-decode silently. *)
      t.misses <- t.misses + 1;
      drop t entry;
      None
    end
    else begin
      t.hits <- t.hits + 1;
      Some e.block
    end

let admit t ~gens (block : Isa.Decoded.block) =
  let pc = block.Isa.Decoded.entry in
  (match Mem.Fifo_cache.admit t.resident pc with
  | Some victim -> t.slots.(victim) <- None
  | None -> ());
  let n = block.Isa.Decoded.last_page - block.Isa.Decoded.first_page + 1 in
  let snap = Array.init n (fun i -> gens.(block.Isa.Decoded.first_page + i)) in
  t.slots.(pc) <- Some { block; gens = snap }

(* The CPU's in-place self-loop re-execution reuses a block without
   going back through [lookup]; it still counts as a hit — the entry
   would have been found valid, since code cannot change mid-run. *)
let note_hit t = t.hits <- t.hits + 1

let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
