type track =
  | Core of int
  | Proc of int
  | Tenant of int  (* fleet mode: one row per admitted guest program *)
  | Run

type phase =
  | Begin
  | End
  | Instant
  | Counter

type arg =
  | Int of int
  | Str of string

type event = {
  ts_ns : int;
  track : track;
  phase : phase;
  name : string;
  args : (string * arg) list;
}

type t = {
  buf : event array;
  capacity : int;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable dropped : int;
  mutable enabled : bool;
}

let dummy = { ts_ns = 0; track = Run; phase = Instant; name = ""; args = [] }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { buf = Array.make capacity dummy; capacity; head = 0; len = 0;
    dropped = 0; enabled = true }

let set_enabled t on = t.enabled <- on
let enabled t = t.enabled

let emit t ~ts_ns ~track ~phase ?(args = []) name =
  if t.enabled then begin
    t.buf.(t.head) <- { ts_ns; track; phase; name; args };
    t.head <- (t.head + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

let length t = t.len
let dropped t = t.dropped

let iter f t =
  let first = (t.head - t.len + t.capacity) mod t.capacity in
  for i = 0 to t.len - 1 do
    f t.buf.((first + i) mod t.capacity)
  done

let events t =
  let acc = ref [] in
  iter (fun ev -> acc := ev :: !acc) t;
  List.rev !acc

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let merge_into dst srcs =
  List.iter
    (fun src ->
      iter
        (fun ev ->
          emit dst ~ts_ns:ev.ts_ns ~track:ev.track ~phase:ev.phase ~args:ev.args
            ev.name)
        src)
    srcs
