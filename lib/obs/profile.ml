(* Phase-attribution profiler: where does a protected run's wall-clock
   go?  Scopes are nestable [enter]/[leave] pairs keyed by trace track,
   timestamped in *simulated* nanoseconds (same clock as Trace), so the
   breakdown is byte-deterministic for equal seeds and identical across
   -j widths.

   Two-level attribution model:

   - *Wall* phases are scopes that close on a [Trace.Core _] track (the
     main core's timeline): record, main_held, drain.  These are
     sequential on one timeline, so their self-times partition the main
     core's wall and the sum is <= run wall-time by construction.
   - *Work* phases are everything else: scopes on [Proc]/[Run] tracks
     (replay, checker_launch, rollback) and zero-width [add_ns] charges
     (compare, fork, record_io, dirty_scan, scheduler_idle).  They run
     concurrently with the main timeline and are reported as overlapping
     work rows, not as a wall partition.

   Self-time discipline: a scope's self = elapsed - child_ns, where
   every nested scope (and every [add_ns] charge attributed inside it)
   bumps child_ns on the enclosing frame.  [add_ns] acts as a zero-width
   child: the named phase gains the nanoseconds and the innermost open
   scope on the first candidate track loses them, keeping partitions
   exact.

   Aggregates are plain sums, so [merge_into] is order-independent,
   commutative and associative — the same determinism discipline as
   [Metrics]/[Trace] for Util.Pool fan-outs. *)

type frame = {
  name : string;
  start_ns : int;
  segment : int option;
  mutable child_ns : int;
}

type agg = {
  mutable count : int;
  mutable total_ns : int;
  mutable self_ns : int;
  mutable insns : int;
  mutable blocks : int;
  mutable decoded : int;
  mutable wall : bool;
}

type phase_summary = {
  count : int;
  total_ns : int;
  self_ns : int;
  insns : int;
  blocks : int;
  decoded : int;
  wall : bool;
}

type t = {
  stacks : (Trace.track, frame list ref) Hashtbl.t;
  sums : (string, agg) Hashtbl.t;
  per_seg : (int, (string, int ref) Hashtbl.t) Hashtbl.t;
  mutable enabled : bool;
}

let create () =
  {
    stacks = Hashtbl.create 8;
    sums = Hashtbl.create 16;
    per_seg = Hashtbl.create 16;
    enabled = false;
  }

let set_enabled t on = t.enabled <- on
let enabled t = t.enabled

let agg_for t name =
  match Hashtbl.find_opt t.sums name with
  | Some a -> a
  | None ->
    let a : agg =
      {
        count = 0;
        total_ns = 0;
        self_ns = 0;
        insns = 0;
        blocks = 0;
        decoded = 0;
        wall = false;
      }
    in
    Hashtbl.replace t.sums name a;
    a

let seg_add t seg name ns =
  let tbl =
    match Hashtbl.find_opt t.per_seg seg with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.per_seg seg tbl;
      tbl
  in
  match Hashtbl.find_opt tbl name with
  | Some r -> r := !r + ns
  | None -> Hashtbl.replace tbl name (ref ns)

let stack_for t track =
  match Hashtbl.find_opt t.stacks track with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace t.stacks track s;
    s

let enter t ~ts_ns ~track ?segment name =
  if t.enabled then begin
    let stack = stack_for t track in
    stack := { name; start_ns = ts_ns; segment; child_ns = 0 } :: !stack
  end

(* Close one frame and fold it into the aggregates.  The frame's full
   elapsed time becomes a child of whatever scope is now on top, so the
   parent's self-time excludes it. *)
let retire t ~ts_ns ~track frame rest =
  let elapsed = Stdlib.max 0 (ts_ns - frame.start_ns) in
  let self = Stdlib.max 0 (elapsed - frame.child_ns) in
  let a = agg_for t frame.name in
  a.count <- a.count + 1;
  a.total_ns <- a.total_ns + elapsed;
  a.self_ns <- a.self_ns + self;
  (match track with
  | Trace.Core _ -> a.wall <- true
  | Trace.Proc _ | Trace.Run | Trace.Tenant _ -> ());
  (match frame.segment with Some s -> seg_add t s frame.name self | None -> ());
  (match rest with
  | parent :: _ -> parent.child_ns <- parent.child_ns + elapsed
  | [] -> ());
  a.self_ns

let leave t ~ts_ns ~track name =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.stacks track with
    | None -> None
    | Some stack -> (
      (* Tolerant innermost-name-matched pop, same discipline as
         Export.summary: teardown paths may close an outer scope while
         an inner one is still being unwound elsewhere. *)
      let rec pop acc = function
        | [] -> None
        | f :: rest when f.name = name -> Some (f, List.rev_append acc rest)
        | f :: rest -> pop (f :: acc) rest
      in
      match pop [] !stack with
      | None -> None
      | Some (frame, rest) ->
        stack := rest;
        Some (retire t ~ts_ns ~track frame rest))

let innermost_open t tracks =
  List.find_map
    (fun track ->
      match Hashtbl.find_opt t.stacks track with
      | Some { contents = top :: _ } -> Some top
      | _ -> None)
    tracks

let add_ns t ~tracks ?segment name ns =
  if not t.enabled then None
  else begin
    let a = agg_for t name in
    a.count <- a.count + 1;
    a.total_ns <- a.total_ns + ns;
    a.self_ns <- a.self_ns + ns;
    (match segment with Some s -> seg_add t s name ns | None -> ());
    (* The charge is a zero-width child of the enclosing open scope, if
       any: that scope's self-time must exclude it. *)
    (match innermost_open t tracks with
    | Some top -> top.child_ns <- top.child_ns + ns
    | None -> ());
    Some a.self_ns
  end

let add_units t ~tracks ~decoded ~insns ~blocks =
  if t.enabled then
    match innermost_open t tracks with
    | Some top ->
      let a = agg_for t top.name in
      a.insns <- a.insns + insns;
      a.blocks <- a.blocks + blocks;
      a.decoded <- a.decoded + decoded
    | None -> ()

let close_all t ~ts_ns =
  if t.enabled then begin
    let tracks =
      Hashtbl.fold (fun track _ acc -> track :: acc) t.stacks []
      |> List.sort compare
    in
    List.iter
      (fun track ->
        let stack = stack_for t track in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | frame :: rest ->
            stack := rest;
            ignore (retire t ~ts_ns ~track frame rest)
        done)
      tracks
  end

let merge_into dst srcs =
  List.iter
    (fun src ->
      Hashtbl.iter
        (fun name (s : agg) ->
          let d = agg_for dst name in
          d.count <- d.count + s.count;
          d.total_ns <- d.total_ns + s.total_ns;
          d.self_ns <- d.self_ns + s.self_ns;
          d.insns <- d.insns + s.insns;
          d.blocks <- d.blocks + s.blocks;
          d.decoded <- d.decoded + s.decoded;
          d.wall <- d.wall || s.wall)
        src.sums;
      Hashtbl.iter
        (fun seg tbl ->
          Hashtbl.iter (fun name r -> seg_add dst seg name !r) tbl)
        src.per_seg)
    srcs

let phases t =
  Hashtbl.fold
    (fun name (a : agg) acc ->
      ( name,
        {
          count = a.count;
          total_ns = a.total_ns;
          self_ns = a.self_ns;
          insns = a.insns;
          blocks = a.blocks;
          decoded = a.decoded;
          wall = a.wall;
        } )
      :: acc)
    t.sums []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let per_segment t =
  Hashtbl.fold
    (fun seg tbl acc ->
      let rows =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      (seg, rows) :: acc)
    t.per_seg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let wall_attributed_ns t =
  Hashtbl.fold
    (fun _ (a : agg) acc -> if a.wall then acc + a.self_ns else acc)
    t.sums 0

let to_table t ~wall_ns =
  let b = Buffer.create 1024 in
  let all = phases t in
  let walls = List.filter (fun (_, s) -> s.wall) all in
  let works = List.filter (fun (_, s) -> not s.wall) all in
  let pct self =
    if wall_ns <= 0 then 0.0
    else 100.0 *. float_of_int self /. float_of_int wall_ns
  in
  let row (name, s) =
    Buffer.add_string b
      (Printf.sprintf "  %-18s %12d %12d %6d %5.1f%% %12d %10d %8d\n" name
         s.self_ns s.total_ns s.count (pct s.self_ns) s.insns s.blocks
         s.decoded)
  in
  Buffer.add_string b "phase self-time breakdown (simulated time):\n";
  Buffer.add_string b
    (Printf.sprintf "  %-18s %12s %12s %6s %6s %12s %10s %8s\n" "phase"
       "self_ns" "total_ns" "count" "%wall" "insns" "blocks" "decoded");
  if walls <> [] then begin
    Buffer.add_string b " main-core wall partition:\n";
    List.iter row walls
  end;
  if works <> [] then begin
    Buffer.add_string b " concurrent work (overlaps the wall rows):\n";
    List.iter row works
  end;
  let attributed = wall_attributed_ns t in
  Buffer.add_string b
    (Printf.sprintf "  wall attributed: %d / %d ns (%.1f%%)\n" attributed
       wall_ns (pct attributed));
  let segs = per_segment t in
  if segs <> [] then begin
    Buffer.add_string b " per-segment self-time:\n";
    List.iter
      (fun (seg, rows) ->
        Buffer.add_string b (Printf.sprintf "  seg %-4d" seg);
        List.iter
          (fun (name, ns) ->
            Buffer.add_string b (Printf.sprintf " %s=%d" name ns))
          rows;
        Buffer.add_char b '\n')
      segs
  end;
  Buffer.contents b
