(** Trace exporters.

    {!chrome_json} renders a trace as Chrome [trace_event] JSON (the
    "JSON Array Format" inside an object wrapper), loadable in Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or [chrome://tracing].
    Tracks map to rows: every {!Trace.Core} track renders under process
    "cores" (one thread per core), every {!Trace.Proc} track under
    process "checkers" (one thread per pid), and {!Trace.Run} under
    process "runtime". Output is a pure function of the trace contents:
    equal traces give byte-identical JSON.

    {!summary} is a flamegraph-style plain-text digest: span totals
    aggregated by event name (sorted by total time), instant/counter
    event counts, and the drop counter. *)

val chrome_json : Trace.t -> string

val summary : Trace.t -> string

val write_file : path:string -> string -> unit
(** Write [contents] to [path] (truncating). *)
