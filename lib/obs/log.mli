(** Progress logging for long-running harness code (experiment sweeps,
    fault-injection campaigns). A single global quiet flag replaces the
    ad-hoc [Printf.eprintf] scattered through the experiment suite, so
    test runs stay clean.

    Quiet defaults to the [PARALLAFT_QUIET] environment variable (set
    and non-["0"] means quiet); {!set_quiet} overrides it. The flag is
    an [Atomic.t] and each line is emitted with one [output_string], so
    {!progress} is safe to call from parallel experiment tasks
    ([Util.Pool]) without tearing lines. *)

val quiet : unit -> bool
val set_quiet : bool -> unit

val progress : ('a, unit, string, unit) format4 -> 'a
(** Like [Printf.eprintf] with an implicit trailing newline and flush;
    swallowed entirely when quiet. Each line is prefixed with the
    wall-time elapsed since process start ([\[   12.3s\] ...]) so long
    campaigns show drift at a glance. *)
