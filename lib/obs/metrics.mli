(** Per-run metric aggregation: named histograms and counters.

    Histograms retain every observation (growable, amortised O(1) add)
    and summarise on demand with exact percentiles — run lengths here
    are bounded by the simulation, so exactness is affordable and keeps
    summaries deterministic. Counters are plain named integers.

    All exports order series by name, so output is reproducible
    regardless of observation order. *)

module Hist : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val min : t -> float
  (** 0. when empty (as are [max], [mean] and [percentile]). *)

  val max : t -> float
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100]: linear interpolation between
      closest ranks — the index [p/100 * (n-1)] of the sorted data,
      interpolating between neighbours. [percentile h 50.] of
      [1..100] is [50.5]. *)
end

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

type t

val create : unit -> t

val set_enabled : t -> bool -> unit
(** Disabled metrics record nothing. *)

val enabled : t -> bool

val observe : t -> string -> float -> unit
(** Add one observation to the named histogram (created on first use). *)

val add : t -> string -> int -> unit
(** Bump the named counter by [n] (created on first use). *)

val incr : t -> string -> unit

val hist : t -> string -> Hist.t option
val counter : t -> string -> int

val histograms : t -> (string * summary) list
(** Sorted by name. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val merge_into : t -> t list -> unit
(** [merge_into dst srcs] adds every counter and every histogram
    observation of the sources into [dst] (observations kept in each
    source's insertion order). Since all exports are name-sorted and
    histogram summaries are order-insensitive, merging per-task metrics
    in task order yields output independent of domain scheduling. *)

val to_text : t -> string
(** Plain-text dump: one [counter NAME VALUE] line per counter, one
    [hist NAME count/min/mean/p50/p90/p99/p99.9/max/sum] line per
    histogram. *)
