type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  profile : Profile.t;
}

let create ?trace_capacity () =
  {
    trace = Trace.create ?capacity:trace_capacity ();
    metrics = Metrics.create ();
    profile = Profile.create ();
  }

let set_enabled t on =
  Trace.set_enabled t.trace on;
  Metrics.set_enabled t.metrics on;
  (* The profiler is opt-in on top of the sink: disabling the sink
     disables it, but re-enabling the sink never auto-enables it. *)
  if not on then Profile.set_enabled t.profile false

let enabled t = Trace.enabled t.trace

let emit t ~ts_ns ~track ~phase ?args name =
  Trace.emit t.trace ~ts_ns ~track ~phase ?args name

let merge_into dst srcs =
  Trace.merge_into dst.trace (List.map (fun s -> s.trace) srcs);
  Metrics.merge_into dst.metrics (List.map (fun s -> s.metrics) srcs);
  Profile.merge_into dst.profile (List.map (fun s -> s.profile) srcs)

let observe t name v = Metrics.observe t.metrics name v
let add t name n = Metrics.add t.metrics name n
let incr t name = add t name 1

(* Every phase transition also lands in the trace as a Perfetto counter
   track sample ("ph":"C") named "profile.<phase>" carrying the phase's
   cumulative self-time, so the breakdown can be eyeballed next to the
   spans.  Only when the profiler is on — with it off, the trace stays
   byte-identical to an unprofiled run. *)
let counter_emit t ~ts_ns name self =
  Trace.emit t.trace ~ts_ns ~track:Trace.Run ~phase:Trace.Counter
    ~args:[ ("self_ns", Trace.Int self) ]
    ("profile." ^ name)

let phase_enter t ~ts_ns ~track ?segment name =
  if Profile.enabled t.profile then
    Profile.enter t.profile ~ts_ns ~track ?segment name

let phase_leave t ~ts_ns ~track name =
  if Profile.enabled t.profile then
    match Profile.leave t.profile ~ts_ns ~track name with
    | Some self -> counter_emit t ~ts_ns name self
    | None -> ()

let phase_add t ~ts_ns ~tracks ?segment name ns =
  if Profile.enabled t.profile then
    match Profile.add_ns t.profile ~tracks ?segment name ns with
    | Some self -> counter_emit t ~ts_ns name self
    | None -> ()

let phase_units t ~tracks ~decoded ~insns ~blocks =
  if Profile.enabled t.profile then
    Profile.add_units t.profile ~tracks ~decoded ~insns ~blocks

let phase_close_all t ~ts_ns =
  if Profile.enabled t.profile then Profile.close_all t.profile ~ts_ns
