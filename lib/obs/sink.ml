type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

let create ?trace_capacity () =
  { trace = Trace.create ?capacity:trace_capacity (); metrics = Metrics.create () }

let set_enabled t on =
  Trace.set_enabled t.trace on;
  Metrics.set_enabled t.metrics on

let enabled t = Trace.enabled t.trace

let emit t ~ts_ns ~track ~phase ?args name =
  Trace.emit t.trace ~ts_ns ~track ~phase ?args name

let merge_into dst srcs =
  Trace.merge_into dst.trace (List.map (fun s -> s.trace) srcs);
  Metrics.merge_into dst.metrics (List.map (fun s -> s.metrics) srcs)

let observe t name v = Metrics.observe t.metrics name v
let add t name n = Metrics.add t.metrics name n
let incr t name = Metrics.incr t.metrics name
