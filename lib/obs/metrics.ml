module Hist = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

  let add t v =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let sum t =
    let s = ref 0.0 in
    for i = 0 to t.len - 1 do
      s := !s +. t.data.(i)
    done;
    !s

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.len in
      Array.sort compare live;
      Array.blit live 0 t.data 0 t.len;
      t.sorted <- true
    end

  let min t =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      t.data.(0)
    end

  let max t =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      t.data.(t.len - 1)
    end

  let mean t = if t.len = 0 then 0.0 else sum t /. float_of_int t.len

  let percentile t p =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      let p = Util.Stats.clampf ~lo:0.0 ~hi:100.0 p in
      let rank = p /. 100.0 *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
    end
end

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

type t = {
  hists : (string, Hist.t) Hashtbl.t;
  cntrs : (string, int ref) Hashtbl.t;
  mutable enabled : bool;
}

let create () =
  { hists = Hashtbl.create 16; cntrs = Hashtbl.create 16; enabled = true }

let set_enabled t on = t.enabled <- on
let enabled t = t.enabled

let observe t name v =
  if t.enabled then begin
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.replace t.hists name h;
        h
    in
    Hist.add h v
  end

let add t name n =
  if t.enabled then
    match Hashtbl.find_opt t.cntrs name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.cntrs name (ref n)

let incr t name = add t name 1

let hist t name = Hashtbl.find_opt t.hists name

let counter t name =
  match Hashtbl.find_opt t.cntrs name with
  | Some r -> !r
  | None -> 0

let summarize h =
  {
    count = Hist.count h;
    sum = Hist.sum h;
    min = Hist.min h;
    max = Hist.max h;
    mean = Hist.mean h;
    p50 = Hist.percentile h 50.0;
    p90 = Hist.percentile h 90.0;
    p99 = Hist.percentile h 99.0;
    p999 = Hist.percentile h 99.9;
  }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t = sorted_bindings t.hists summarize
let counters t = sorted_bindings t.cntrs ( ! )

let merge_into dst srcs =
  List.iter
    (fun src ->
      Hashtbl.iter (fun name r -> add dst name !r) src.cntrs;
      Hashtbl.iter
        (fun name h ->
          for i = 0 to h.Hist.len - 1 do
            observe dst name h.Hist.data.(i)
          done)
        src.hists)
    srcs

let to_text t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "counter %s %d\n" name v))
    (counters t);
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf
           "hist %s count=%d min=%.3f mean=%.3f p50=%.3f p90=%.3f p99=%.3f \
            p99.9=%.3f max=%.3f sum=%.3f\n"
           name s.count s.min s.mean s.p50 s.p90 s.p99 s.p999 s.max s.sum))
    (histograms t);
  Buffer.contents b
