(** The observability sink a run writes into: one trace ring plus one
    metrics registry. A [Config.t] carries an optional sink ([None] by
    default); every emit site in the runtime is a no-op when the config
    has no sink, and a load+branch when the sink is disabled — tracing
    costs nothing unless explicitly requested. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  profile : Profile.t;
}

val create : ?trace_capacity:int -> unit -> t

val set_enabled : t -> bool -> unit
(** Flip both the trace and the metrics registry. Disabling also
    disables the profiler; re-enabling does {e not} re-enable it (the
    profiler is opt-in via [Profile.set_enabled]). *)

val enabled : t -> bool

val emit :
  t ->
  ts_ns:int ->
  track:Trace.track ->
  phase:Trace.phase ->
  ?args:(string * Trace.arg) list ->
  string ->
  unit

val merge_into : t -> t list -> unit
(** Fold per-task sinks back into one after a parallel fan-out
    ([Util.Pool]): traces are appended in list (task) order, metric
    counters summed and histogram observations re-added. A sink is not
    domain-safe, so parallel tasks must each write to a private sink;
    callers merge after the join, passing sinks in task input order to
    keep the result independent of domain scheduling. *)

val observe : t -> string -> float -> unit
val add : t -> string -> int -> unit
val incr : t -> string -> unit

(** {2 Phase profiling}

    Thin glue over {!Profile} that additionally mirrors every phase
    transition into the trace as a ["profile.<name>"] counter-track
    sample ([Trace.Counter], exported as ["ph":"C"]) carrying the
    cumulative self-time. All of these are no-ops while the profiler is
    disabled, so traces and goldens are byte-identical unless profiling
    was explicitly requested. *)

val phase_enter :
  t -> ts_ns:int -> track:Trace.track -> ?segment:int -> string -> unit

val phase_leave : t -> ts_ns:int -> track:Trace.track -> string -> unit

val phase_add :
  t ->
  ts_ns:int ->
  tracks:Trace.track list ->
  ?segment:int ->
  string ->
  int ->
  unit

val phase_units :
  t -> tracks:Trace.track list -> decoded:int -> insns:int -> blocks:int -> unit
val phase_close_all : t -> ts_ns:int -> unit
