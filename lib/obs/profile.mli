(** Phase-attribution profiler: nestable monotonic phase scopes keyed
    by trace track, timestamped in simulated nanoseconds, with
    per-segment attribution and a deterministic, order-independent
    [merge_into] (same discipline as [Metrics]/[Trace]).

    Scopes that close on a [Trace.Core _] track are {e wall} phases:
    they are sequential on the main core's timeline, so their self-times
    partition the main wall-clock and sum to at most the run wall-time.
    Everything else ([Proc]/[Run] scopes and zero-width [add_ns]
    charges) is concurrent {e work}, reported alongside but not summed
    into the wall partition.

    A profiler is created {e disabled} and costs one load+branch per
    call until [set_enabled] turns it on — the same zero-cost-when-off
    contract as [Config.obs]. *)

type t

type phase_summary = {
  count : int;  (** scope closures (or [add_ns] charges) folded in *)
  total_ns : int;  (** inclusive elapsed time *)
  self_ns : int;  (** exclusive time: elapsed minus nested children *)
  insns : int;  (** instructions retired while this phase was innermost *)
  blocks : int;  (** basic blocks dispatched while innermost *)
  decoded : int;
      (** basic blocks decoded (block-cache misses) while innermost — the
          interpreter's decode work, charged like insns/blocks *)
  wall : bool;  (** closed on a [Core _] track: part of the wall partition *)
}

val create : unit -> t
val set_enabled : t -> bool -> unit
val enabled : t -> bool

val enter : t -> ts_ns:int -> track:Trace.track -> ?segment:int -> string -> unit
(** Open a scope on [track]. Scopes on one track nest. *)

val leave : t -> ts_ns:int -> track:Trace.track -> string -> int option
(** Close the innermost scope named [name] on [track] (tolerant pop, as
    in [Export.summary]); the elapsed time is charged as a child of the
    enclosing scope. Returns the phase's new cumulative self-time (for
    counter-track emission), or [None] if disabled / no matching scope. *)

val add_ns :
  t -> tracks:Trace.track list -> ?segment:int -> string -> int -> int option
(** Attribute a zero-width charge of [ns] to the named phase, debiting
    the innermost open scope on the first of [tracks] that has one (so
    that scope's self-time excludes the charge). Returns the phase's new
    cumulative self-time. *)

val add_units :
  t -> tracks:Trace.track list -> decoded:int -> insns:int -> blocks:int -> unit
(** Batched hot-path counters: credit instructions/blocks/decoded
    blocks to the phase of the innermost open scope on the first of
    [tracks] that has one. Silently dropped when no scope is open
    (e.g. baseline runs). *)

val close_all : t -> ts_ns:int -> unit
(** Close every in-flight scope at [ts_ns], innermost first, tracks in
    sorted order — used at teardown (abort/rollback/run end) so no
    elapsed time is lost. *)

val merge_into : t -> t list -> unit
(** Fold per-task profilers into one. All aggregates are plain sums, so
    the result is independent of source order (commutative and
    associative) — the Util.Pool merge contract. *)

val phases : t -> (string * phase_summary) list
(** Name-sorted aggregate summaries. *)

val per_segment : t -> (int * (string * int) list) list
(** Segment-sorted, name-sorted per-segment self-times for scopes and
    charges that carried [?segment]. *)

val wall_attributed_ns : t -> int
(** Sum of self-times over wall phases; <= run wall-time. *)

val to_table : t -> wall_ns:int -> string
(** Human-readable breakdown: wall partition, concurrent work rows,
    attribution footer, per-segment lines. Deterministic. *)
