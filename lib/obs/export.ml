let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Chrome groups rows as process/thread; we map track kinds to fixed
   process ids so cores, checker pids and run-global events each get
   their own group. *)
let pid_tid (track : Trace.track) =
  match track with
  | Trace.Core c -> (0, c)
  | Trace.Proc p -> (1, p)
  | Trace.Run -> (2, 0)
  | Trace.Tenant n -> (3, n)

let process_names =
  [ (0, "cores"); (1, "checkers"); (2, "runtime"); (3, "tenants") ]

let track_label (track : Trace.track) =
  match track with
  | Trace.Core c -> Printf.sprintf "core %d" c
  | Trace.Proc p -> Printf.sprintf "pid %d" p
  | Trace.Run -> "run"
  | Trace.Tenant n -> Printf.sprintf "tenant %d" n

(* Timestamps are microseconds in the trace_event format; print the
   simulated nanoseconds as a fixed-point "us.nnn" so the exporter is
   exact and byte-deterministic. The fraction is emitted digit by digit
   so sub-microsecond stamps (ts_ns < 1000) keep their three-digit
   alignment: 5 ns is "0.005", never "0.5". *)
let buf_add_ts b ts_ns =
  let us = ts_ns / 1000 and frac = ts_ns mod 1000 in
  Buffer.add_string b (string_of_int us);
  Buffer.add_char b '.';
  if frac < 100 then Buffer.add_char b '0';
  if frac < 10 then Buffer.add_char b '0';
  Buffer.add_string b (string_of_int frac)

let buf_add_args b (args : (string * Trace.arg) list) =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      match (v : Trace.arg) with
      | Trace.Int n -> Buffer.add_string b (string_of_int n)
      | Trace.Str s -> buf_add_json_string b s)
    args;
  Buffer.add_char b '}'

let chrome_json trace =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n"
  in
  (* Metadata: stable names for every process group and every track that
     appears in the trace, in deterministic (sorted) order. *)
  let tracks = Hashtbl.create 16 in
  Trace.iter (fun ev -> Hashtbl.replace tracks (pid_tid ev.Trace.track) ev.Trace.track) trace;
  let track_list =
    Hashtbl.fold (fun key track acc -> (key, track) :: acc) tracks []
    |> List.sort compare
  in
  List.iter
    (fun (pid, name) ->
      if List.exists (fun ((p, _), _) -> p = pid) track_list then begin
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
             pid name)
      end)
    process_names;
  List.iter
    (fun ((pid, tid), track) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           pid tid (track_label track)))
    track_list;
  Trace.iter
    (fun ev ->
      sep ();
      let pid, tid = pid_tid ev.Trace.track in
      let ph =
        match ev.Trace.phase with
        | Trace.Begin -> "B"
        | Trace.End -> "E"
        | Trace.Instant -> "i"
        | Trace.Counter -> "C"
      in
      Buffer.add_string b "{\"name\":";
      buf_add_json_string b ev.Trace.name;
      Buffer.add_string b (Printf.sprintf ",\"ph\":\"%s\",\"ts\":" ph);
      buf_add_ts b ev.Trace.ts_ns;
      Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid tid);
      (match ev.Trace.phase with
      | Trace.Instant -> Buffer.add_string b ",\"s\":\"t\""
      | Trace.Begin | Trace.End | Trace.Counter -> ());
      (match ev.Trace.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ",\"args\":";
        buf_add_args b args);
      Buffer.add_char b '}')
    trace;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

type span_tally = {
  mutable n : int;
  mutable total_ns : int;
}

let summary trace =
  let spans : (string, span_tally) Hashtbl.t = Hashtbl.create 16 in
  let instants : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  (* Per-track stacks of open Begin events; End closes the innermost
     span with the same name (emit sites nest properly). *)
  let stacks : (int * int, (string * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let t_min = ref max_int and t_max = ref 0 in
  Trace.iter
    (fun ev ->
      if ev.Trace.ts_ns < !t_min then t_min := ev.Trace.ts_ns;
      if ev.Trace.ts_ns > !t_max then t_max := ev.Trace.ts_ns;
      let key = pid_tid ev.Trace.track in
      match ev.Trace.phase with
      | Trace.Begin ->
        let stack =
          match Hashtbl.find_opt stacks key with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.replace stacks key s;
            s
        in
        stack := (ev.Trace.name, ev.Trace.ts_ns) :: !stack
      | Trace.End -> (
        match Hashtbl.find_opt stacks key with
        | None -> ()
        | Some stack -> (
          let rec pop acc = function
            | [] -> None
            | (name, ts) :: rest when name = ev.Trace.name ->
              Some ((name, ts), List.rev_append acc rest)
            | frame :: rest -> pop (frame :: acc) rest
          in
          match pop [] !stack with
          | None -> ()
          | Some ((name, ts), rest) ->
            stack := rest;
            let tally =
              match Hashtbl.find_opt spans name with
              | Some t -> t
              | None ->
                let t = { n = 0; total_ns = 0 } in
                Hashtbl.replace spans name t;
                t
            in
            tally.n <- tally.n + 1;
            tally.total_ns <- tally.total_ns + (ev.Trace.ts_ns - ts)))
      | Trace.Instant | Trace.Counter -> (
        match Hashtbl.find_opt instants ev.Trace.name with
        | Some r -> incr r
        | None -> Hashtbl.replace instants ev.Trace.name (ref 1)))
    trace;
  let b = Buffer.create 1024 in
  let run_ns = if !t_max > !t_min then !t_max - !t_min else 0 in
  Buffer.add_string b
    (Printf.sprintf "trace: %d events (%d dropped), %d ns spanned\n"
       (Trace.length trace) (Trace.dropped trace) run_ns);
  let span_rows =
    Hashtbl.fold (fun name t acc -> (name, t) :: acc) spans []
    |> List.sort (fun (na, a) (nb, bt) ->
           match compare bt.total_ns a.total_ns with
           | 0 -> String.compare na nb
           | c -> c)
  in
  if span_rows <> [] then begin
    Buffer.add_string b "spans (total time, aggregated by name):\n";
    List.iter
      (fun (name, t) ->
        let pct =
          if run_ns = 0 then 0.0
          else 100.0 *. float_of_int t.total_ns /. float_of_int run_ns
        in
        Buffer.add_string b
          (Printf.sprintf "  %-24s %8d ns  x%-6d %5.1f%%\n" name t.total_ns t.n pct))
      span_rows
  end;
  let instant_rows =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) instants []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if instant_rows <> [] then begin
    Buffer.add_string b "events:\n";
    List.iter
      (fun (name, n) -> Buffer.add_string b (Printf.sprintf "  %-24s x%d\n" name n))
      instant_rows
  end;
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc
