(* The quiet flag is read from every experiment task, and the parallel
   runner (Util.Pool) mutates/reads it from multiple domains — an
   Atomic.t makes that race-free. Lines are formatted to a string first
   and written with a single output_string so concurrent progress lines
   never interleave mid-line. *)

let quiet_flag =
  Atomic.make
    (match Sys.getenv_opt "PARALLAFT_QUIET" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let quiet () = Atomic.get quiet_flag
let set_quiet q = Atomic.set quiet_flag q

(* Long campaigns print hundreds of progress lines; prefixing each with
   the wall-time elapsed since startup makes throughput drift visible at
   a glance without a stopwatch. *)
let start_time = Unix.gettimeofday ()

let progress fmt =
  Printf.ksprintf
    (fun line ->
      if not (Atomic.get quiet_flag) then begin
        let elapsed = Unix.gettimeofday () -. start_time in
        output_string stderr (Printf.sprintf "[%7.1fs] %s\n" elapsed line);
        flush stderr
      end)
    fmt
