(* The quiet flag is read from every experiment task, and the parallel
   runner (Util.Pool) mutates/reads it from multiple domains — an
   Atomic.t makes that race-free. Lines are formatted to a string first
   and written with a single output_string so concurrent progress lines
   never interleave mid-line. *)

let quiet_flag =
  Atomic.make
    (match Sys.getenv_opt "PARALLAFT_QUIET" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let quiet () = Atomic.get quiet_flag
let set_quiet q = Atomic.set quiet_flag q

let progress fmt =
  Printf.ksprintf
    (fun line ->
      if not (Atomic.get quiet_flag) then begin
        output_string stderr (line ^ "\n");
        flush stderr
      end)
    fmt
