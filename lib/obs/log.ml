let quiet_flag =
  ref
    (match Sys.getenv_opt "PARALLAFT_QUIET" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let quiet () = !quiet_flag
let set_quiet q = quiet_flag := q

let progress fmt =
  if !quiet_flag then Printf.ifprintf stderr fmt
  else Printf.kfprintf
         (fun oc ->
           output_char oc '\n';
           flush oc)
         stderr fmt
