(** Low-overhead event tracing for the runtime.

    A trace is a preallocated ring buffer of typed events, each keyed on
    {e simulated} time (the engine's [now_ns]) — never wall clock — so
    two runs from the same seed produce bit-identical traces. When the
    buffer fills, the oldest events are overwritten and counted in
    {!dropped}; emitting never allocates beyond the event record itself.

    Events carry a {!track} (which Perfetto/Chrome row they render on),
    a {!phase} (span begin/end, instant, or counter sample) and a small
    list of primitive arguments. The event taxonomy itself is defined by
    the emit sites (coordinator, scheduler, engine); see DESIGN.md
    "Observability". *)

type track =
  | Core of int  (** a physical core's timeline (the main process) *)
  | Proc of int  (** a process timeline, keyed by pid (checkers) *)
  | Tenant of int
      (** fleet mode: one row per admitted guest program (admission,
          completion, steal/teardown instants) *)
  | Run  (** run-global instants: detections, recoveries, pacing *)

type phase =
  | Begin  (** opens a span on [track]; closed by a matching [End] *)
  | End
  | Instant
  | Counter  (** sampled value series; args are the sample values *)

type arg =
  | Int of int
  | Str of string

type event = {
  ts_ns : int;  (** simulated nanoseconds since run start *)
  track : track;
  phase : phase;
  name : string;
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the ring size in events (default 65536); the storage
    is allocated eagerly. *)

val set_enabled : t -> bool -> unit
(** A disabled trace records nothing; {!emit} is a single load+branch. *)

val enabled : t -> bool

val emit :
  t ->
  ts_ns:int ->
  track:track ->
  phase:phase ->
  ?args:(string * arg) list ->
  string ->
  unit

val length : t -> int
(** Events currently retained (at most [capacity]). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val events : t -> event list
(** Retained events, oldest first. *)

val iter : (event -> unit) -> t -> unit
(** Oldest first. *)

val clear : t -> unit

val merge_into : t -> t list -> unit
(** [merge_into dst srcs] appends every event of every source (oldest
    first, sources in list order) into [dst], subject to [dst]'s ring
    capacity and enabled flag. Used to fold the per-task traces of a
    parallel sweep back into one: callers pass sources in task (input)
    order, so the merged trace is independent of domain scheduling. *)
