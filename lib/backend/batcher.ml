(* FIFO launch queue for the [Deferred] backend: finished segments
   accumulate here and are launched [batch] at a time, so one wakeup
   amortizes the fork/cache-warmup cost over the whole batch. *)

type 'a t = {
  mutable items : 'a list;  (* oldest first *)
  batch : int;
}

let create ~batch =
  if batch <= 0 then invalid_arg "Batcher.create: batch must be positive";
  { items = []; batch }

let batch_size t = t.batch
let length t = List.length t.items
let is_empty t = t.items = []
let push t x = t.items <- t.items @ [ x ]
let ready t = length t >= t.batch

(* Dequeue up to one batch, oldest first. *)
let take_batch t =
  let rec split n = function
    | xs when n = 0 -> ([], xs)
    | [] -> ([], [])
    | x :: rest ->
      let taken, left = split (n - 1) rest in
      (x :: taken, left)
  in
  let taken, left = split t.batch t.items in
  t.items <- left;
  taken

(* Rollback/abort: drop everything queued, returning it for teardown. *)
let clear t =
  let dropped = t.items in
  t.items <- [];
  dropped
