(** FIFO launch queue for the [Deferred] backend. *)

type 'a t

val create : batch:int -> 'a t
(** @raise Invalid_argument if [batch <= 0]. *)

val batch_size : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val ready : 'a t -> bool
(** At least one full batch is queued. *)

val take_batch : 'a t -> 'a list
(** Dequeue up to one batch, oldest first. *)

val clear : 'a t -> 'a list
(** Drop (and return) everything queued. *)
