(* The simulated checker-node pool behind the [Remote_sim] backend: a
   fixed set of nodes that the chaos campaign can crash (dead until a
   reboot deadline) or stall (wedged until the deadline). Dispatch picks
   round-robin over healthy nodes; when chaos has downed every node the
   earliest-recovering one is force-rebooted so the run can always make
   progress (modelling a standby replacement). *)

type status =
  | Healthy
  | Crashed of int  (* healthy again at this sim time *)
  | Stalled of int

type t = {
  status : status array;
  mutable next : int;  (* round-robin cursor *)
  mutable reboots : int;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Node_pool.create: nodes must be positive";
  { status = Array.make nodes Healthy; next = 0; reboots = 0 }

let size t = Array.length t.status
let reboots t = t.reboots

let healthy t i = t.status.(i) = Healthy

let healthy_count t =
  Array.fold_left (fun n s -> if s = Healthy then n + 1 else n) 0 t.status

let crash t i ~until_ns = t.status.(i) <- Crashed until_ns
let stall t i ~until_ns = t.status.(i) <- Stalled until_ns

(* Reboot every node whose deadline passed. *)
let tick t ~now_ns =
  Array.iteri
    (fun i s ->
      match s with
      | Crashed until_ns | Stalled until_ns ->
        if now_ns >= until_ns then begin
          t.status.(i) <- Healthy;
          t.reboots <- t.reboots + 1
        end
      | Healthy -> ())
    t.status

let pick t ~now_ns =
  tick t ~now_ns;
  let n = size t in
  let rec scan k =
    if k = n then None
    else
      let i = (t.next + k) mod n in
      if t.status.(i) = Healthy then Some i else scan (k + 1)
  in
  match scan 0 with
  | Some i ->
    t.next <- (i + 1) mod n;
    i
  | None ->
    (* Whole pool down: force-reboot the node closest to recovery. *)
    let best = ref 0 and best_due = ref max_int in
    Array.iteri
      (fun i s ->
        let due =
          match s with Crashed d | Stalled d -> d | Healthy -> assert false
        in
        if due < !best_due then begin
          best := i;
          best_due := due
        end)
      t.status;
    t.status.(!best) <- Healthy;
    t.reboots <- t.reboots + 1;
    t.next <- (!best + 1) mod size t;
    !best
