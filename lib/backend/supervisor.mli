(** Exactly-once verification accounting for the checker backends
    (DESIGN.md §18).

    One entry per recorded segment, driven
    [Pending -> Leased -> Settled]. A lease names the node (or the
    in-process checker) currently entitled to produce the segment's
    verdict and the incarnation (redispatch count) it was granted at;
    re-dispatch re-grants the lease at a strictly higher incarnation, so
    a verdict arriving with an older incarnation is recognizably stale
    and discarded instead of double-counting. Structural violations
    (double settle, lease after settle, non-monotonic re-lease) raise
    {!Violation} unconditionally. *)

exception Violation of string

type t

val create : unit -> t

val note_recorded : t -> int -> unit
(** Register a freshly recorded segment as [Pending].
    @raise Violation if the id was already registered. *)

val lease :
  t -> id:int -> node:int -> incarnation:int -> now_ns:int -> insns:int -> unit
(** Grant (or re-grant) the verification lease. A re-grant must carry a
    strictly higher incarnation and counts as a re-dispatch; a first
    grant at incarnation > 0 (the checker was swapped in the pre-launch
    window) counts as one too. [node] is [-1] for in-process backends. *)

val heartbeat :
  t ->
  id:int ->
  now_ns:int ->
  insns:int ->
  excused:bool ->
  budget_ns:int ->
  [ `Ok | `Expired ]
(** Progress supervision (the unified watchdog path): progress or an
    excuse renews the lease; silence past [budget_ns] expires it. A
    segment with no current lease always answers [`Ok]. *)

val note_expired : t -> id:int -> unit
(** Count one lease expiry (the caller decided to kill/re-dispatch). *)

val settle : t -> id:int -> incarnation:int -> [ `Ok | `Stale ]
(** Retire the segment on a verdict from [incarnation]. [`Stale] means
    the lease moved on (re-dispatch) — the verdict must be discarded.
    An unknown id is registered-and-settled in one step (a RAFT
    streaming checker can retire before its segment finishes recording).
    @raise Violation on a second settle. *)

val note_stale : t -> unit
(** Count a stale verdict discarded before reaching {!settle} (e.g. a
    parked late verdict whose incarnation lapsed while parked). *)

val note_batch : t -> unit
val observe_lag : t -> unit
(** Sample the current verification lag into the high-water mark. *)

val cancel_unsettled : t -> int
(** Rollback/abort: drop every [Pending]/[Leased] entry (those segments
    were torn down, not verified) and return how many were dropped. *)

val current_incarnation : t -> id:int -> int option
val node_of : t -> id:int -> int option

val recorded : t -> int
val dispatched : t -> int
val redispatched : t -> int
val leases_expired : t -> int
val stale_verdicts : t -> int
val batches : t -> int
val max_lag : t -> int
val settled : t -> int
val unsettled : t -> int
val all_settled : t -> bool

val check_invariants : t -> unit
(** Cross-check the counters against the entry table.
    @raise Violation on disagreement. *)
