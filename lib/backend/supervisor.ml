(* Exactly-once verification accounting for the pluggable checker
   backends (DESIGN.md §18). The supervisor owns one entry per recorded
   segment and drives it Pending -> Leased -> Settled:

     - [note_recorded] registers the segment the moment recording ends;
     - [lease] grants (or re-grants, at a strictly higher incarnation)
       the right to produce the segment's verdict to one checker;
     - [heartbeat] is the unified stall-detection path: a lease whose
       checker makes no progress (and has no excuse) for longer than
       its budget expires, and the caller re-dispatches;
     - [settle] retires the segment on a verdict from the {e current}
       incarnation; a verdict carrying a stale incarnation (the lease
       was re-granted meanwhile) is reported [`Stale] and discarded by
       the caller, never double-counted.

   Settling twice, leasing after settlement, or re-leasing without
   raising the incarnation are structural bugs and raise [Violation]
   unconditionally — the invariant sweeps (PARALLAFT_INVARIANTS=1) add
   the cross-structure checks on top via [check_invariants]. *)

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

type lease = {
  node : int;  (* -1 for the in-process backends *)
  incarnation : int;  (* = the segment's redispatch count at lease time *)
  mutable last_insns : int;
  mutable since_ns : int;  (* time of the last renewing heartbeat *)
}

type entry =
  | Pending  (* recorded, waiting for dispatch (deferred queue / rpc) *)
  | Leased of lease
  | Settled of int  (* the incarnation whose verdict retired it *)

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable recorded : int;
  mutable dispatched : int;
  mutable redispatched : int;
  mutable leases_expired : int;
  mutable stale_verdicts : int;
  mutable batches : int;
  mutable max_lag : int;
  mutable settled : int;
}

let create () =
  {
    entries = Hashtbl.create 32;
    recorded = 0;
    dispatched = 0;
    redispatched = 0;
    leases_expired = 0;
    stale_verdicts = 0;
    batches = 0;
    max_lag = 0;
    settled = 0;
  }

let recorded t = t.recorded
let dispatched t = t.dispatched
let redispatched t = t.redispatched
let leases_expired t = t.leases_expired
let stale_verdicts t = t.stale_verdicts
let batches t = t.batches
let max_lag t = t.max_lag
let settled t = t.settled

(* Verification lag: segments recorded but not yet settled. *)
let lag t =
  Hashtbl.fold
    (fun _ e n -> match e with Settled _ -> n | Pending | Leased _ -> n + 1)
    t.entries 0

let observe_lag t =
  let l = lag t in
  if l > t.max_lag then t.max_lag <- l

let note_batch t = t.batches <- t.batches + 1
let note_stale t = t.stale_verdicts <- t.stale_verdicts + 1

let note_recorded t id =
  (match Hashtbl.find_opt t.entries id with
  | Some _ -> violation "supervisor: segment %d recorded twice" id
  | None -> ());
  Hashtbl.replace t.entries id Pending;
  t.recorded <- t.recorded + 1;
  observe_lag t

let lease t ~id ~node ~incarnation ~now_ns ~insns =
  let grant () =
    Hashtbl.replace t.entries id
      (Leased { node; incarnation; last_insns = insns; since_ns = now_ns });
    t.dispatched <- t.dispatched + 1
  in
  match Hashtbl.find_opt t.entries id with
  | Some (Settled _) -> violation "supervisor: segment %d leased after settling" id
  | Some Pending ->
    (* An incarnation > 0 on a first lease means the checker died in the
       pre-launch window and was swapped for the spare before ever
       holding a lease: still a re-dispatch. *)
    if incarnation > 0 then t.redispatched <- t.redispatched + 1;
    grant ()
  | Some (Leased l) ->
    if incarnation <= l.incarnation then
      violation "supervisor: segment %d re-leased at incarnation %d (current %d)"
        id incarnation l.incarnation;
    t.redispatched <- t.redispatched + 1;
    grant ()
  | None -> violation "supervisor: segment %d leased before it was recorded" id

(* The old watchdog ledger, verbatim: progress or a legitimate excuse
   (queued behind busy cores, waiting on a streaming log) renews the
   lease; otherwise it expires once the silence exceeds the budget.
   Unlike the ledger, the clock starts at dispatch — a checker that
   never produces a first heartbeat still expires. *)
let heartbeat t ~id ~now_ns ~insns ~excused ~budget_ns =
  match Hashtbl.find_opt t.entries id with
  | Some (Leased l) ->
    if insns > l.last_insns || excused then begin
      l.last_insns <- insns;
      l.since_ns <- now_ns;
      `Ok
    end
    else if budget_ns > 0 && now_ns - l.since_ns > budget_ns then `Expired
    else `Ok
  | Some Pending | Some (Settled _) | None -> `Ok

let note_expired t ~id =
  match Hashtbl.find_opt t.entries id with
  | Some (Leased _) -> t.leases_expired <- t.leases_expired + 1
  | Some Pending | Some (Settled _) | None -> ()

let current_incarnation t ~id =
  match Hashtbl.find_opt t.entries id with
  | Some (Leased l) -> Some l.incarnation
  | Some Pending | Some (Settled _) | None -> None

let node_of t ~id =
  match Hashtbl.find_opt t.entries id with
  | Some (Leased l) -> Some l.node
  | Some Pending | Some (Settled _) | None -> None

let settle t ~id ~incarnation =
  match Hashtbl.find_opt t.entries id with
  | Some (Settled _) -> violation "supervisor: segment %d settled twice" id
  | Some (Leased l) when l.incarnation = incarnation ->
    Hashtbl.replace t.entries id (Settled incarnation);
    t.settled <- t.settled + 1;
    `Ok
  | Some (Leased _) | Some Pending ->
    t.stale_verdicts <- t.stale_verdicts + 1;
    `Stale
  | None ->
    (* A RAFT streaming checker can die (and produce its verdict) while
       its segment is still recording — before [note_recorded] ever ran.
       Register and settle in one step — counting the implicit lease the
       streaming checker held — so the accounting still balances. *)
    t.recorded <- t.recorded + 1;
    t.dispatched <- t.dispatched + 1;
    Hashtbl.replace t.entries id (Settled incarnation);
    t.settled <- t.settled + 1;
    `Ok

(* Rollback/abort: segments torn down before verification leave the
   accounting entirely — they were re-executed (or the run is over), so
   "every recorded segment verified exactly once" quantifies over the
   segments that survive. *)
let cancel_unsettled t =
  let doomed =
    Hashtbl.fold
      (fun id e acc ->
        match e with Settled _ -> acc | Pending | Leased _ -> id :: acc)
      t.entries []
  in
  List.iter
    (fun id ->
      Hashtbl.remove t.entries id;
      t.recorded <- t.recorded - 1)
    doomed;
  List.length doomed

let unsettled t = lag t

let all_settled t = lag t = 0

let check_invariants t =
  let pending, leased, settled_n =
    Hashtbl.fold
      (fun _ e (p, l, s) ->
        match e with
        | Pending -> (p + 1, l, s)
        | Leased _ -> (p, l + 1, s)
        | Settled _ -> (p, l, s + 1))
      t.entries (0, 0, 0)
  in
  if settled_n <> t.settled then
    violation "supervisor: %d settled entries but settled counter is %d"
      settled_n t.settled;
  if pending + leased + settled_n <> t.recorded then
    violation
      "supervisor: %d entries (%d pending, %d leased, %d settled) but %d recorded"
      (pending + leased + settled_n)
      pending leased settled_n t.recorded;
  if t.dispatched < t.settled then
    violation "supervisor: settled %d segments but only dispatched %d leases"
      t.settled t.dispatched
