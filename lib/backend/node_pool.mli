(** Simulated checker-node pool for the [Remote_sim] backend: nodes the
    chaos campaign can crash or stall, each rebooting at a deadline.
    {!pick} dispatches round-robin over healthy nodes and force-reboots
    the earliest-recovering node when the whole pool is down, so
    dispatch always succeeds. *)

type t

val create : nodes:int -> t
(** @raise Invalid_argument if [nodes <= 0]. *)

val size : t -> int
val healthy : t -> int -> bool
val healthy_count : t -> int
val reboots : t -> int

val crash : t -> int -> until_ns:int -> unit
val stall : t -> int -> until_ns:int -> unit

val tick : t -> now_ns:int -> unit
(** Reboot every node whose deadline passed. *)

val pick : t -> now_ns:int -> int
(** Choose a node for a dispatch (ticks first). *)
