(* Canonical XXH64 (https://xxhash.com). All arithmetic is modulo 2^64 on
   Int64 values; OCaml's Int64 ops already wrap. *)

let p1 = 0x9E3779B185EBCA87L
let p2 = 0xC2B2AE3D27D4EB4FL
let p3 = 0x165667B19E3779F9L
let p4 = 0x85EBCA77C2B2AE63L
let p5 = 0x27D4EB2F165667C5L

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x r =
  Int64.logor (Int64.shift_left x r) (Int64.shift_right_logical x (64 - r))

let round acc lane = rotl (acc +% (lane *% p2)) 31 *% p1

let merge_round acc v = ((acc ^% round 0L v) *% p1) +% p4

let avalanche h =
  let h = h ^% Int64.shift_right_logical h 33 in
  let h = h *% p2 in
  let h = h ^% Int64.shift_right_logical h 29 in
  let h = h *% p3 in
  h ^% Int64.shift_right_logical h 32

let get64 b i = Bytes.get_int64_le b i
let get32 b i = Int64.of_int32 (Bytes.get_int32_le b i) |> Int64.logand 0xFFFFFFFFL
let get8 b i = Int64.of_int (Char.code (Bytes.unsafe_get b i))

(* Finish hashing [b.(pos .. pos+len)] given the accumulator [acc] (which
   already includes the total length). *)
let finalize acc b pos len =
  let acc = ref acc in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    acc := (rotl (!acc ^% round 0L (get64 b !i)) 27 *% p1) +% p4;
    i := !i + 8
  done;
  if stop - !i >= 4 then begin
    acc := (rotl (!acc ^% (get32 b !i *% p1)) 23 *% p2) +% p3;
    i := !i + 4
  end;
  while !i < stop do
    acc := rotl (!acc ^% (get8 b !i *% p5)) 11 *% p1;
    incr i
  done;
  avalanche !acc

let hash_sub ?(seed = 0L) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Xxh64.hash_sub";
  if len >= 32 then begin
    let v1 = ref (seed +% p1 +% p2)
    and v2 = ref (seed +% p2)
    and v3 = ref seed
    and v4 = ref (Int64.sub seed p1) in
    let i = ref pos in
    let limit = pos + len - 32 in
    while !i <= limit do
      v1 := round !v1 (get64 b !i);
      v2 := round !v2 (get64 b (!i + 8));
      v3 := round !v3 (get64 b (!i + 16));
      v4 := round !v4 (get64 b (!i + 24));
      i := !i + 32
    done;
    let acc = rotl !v1 1 +% rotl !v2 7 +% rotl !v3 12 +% rotl !v4 18 in
    let acc = merge_round acc !v1 in
    let acc = merge_round acc !v2 in
    let acc = merge_round acc !v3 in
    let acc = merge_round acc !v4 in
    let acc = acc +% Int64.of_int len in
    finalize acc b !i (pos + len - !i)
  end
  else
    let acc = seed +% p5 +% Int64.of_int len in
    finalize acc b pos len

let hash ?seed b = hash_sub ?seed b ~pos:0 ~len:(Bytes.length b)

type state = {
  seed : int64;
  mutable total : int;
  buf : Bytes.t; (* 32-byte stripe buffer *)
  scratch : Bytes.t; (* 8-byte staging for update_int64 *)
  mutable buf_len : int;
  mutable v1 : int64;
  mutable v2 : int64;
  mutable v3 : int64;
  mutable v4 : int64;
}

let init ?(seed = 0L) () =
  {
    seed;
    total = 0;
    buf = Bytes.create 32;
    scratch = Bytes.create 8;
    buf_len = 0;
    v1 = seed +% p1 +% p2;
    v2 = seed +% p2;
    v3 = seed;
    v4 = Int64.sub seed p1;
  }

let consume_stripe st b pos =
  st.v1 <- round st.v1 (get64 b pos);
  st.v2 <- round st.v2 (get64 b (pos + 8));
  st.v3 <- round st.v3 (get64 b (pos + 16));
  st.v4 <- round st.v4 (get64 b (pos + 24))

let update st b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Xxh64.update";
  st.total <- st.total + len;
  let pos = ref pos and len = ref len in
  if st.buf_len > 0 then begin
    let need = 32 - st.buf_len in
    let take = min need !len in
    Bytes.blit b !pos st.buf st.buf_len take;
    st.buf_len <- st.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if st.buf_len = 32 then begin
      consume_stripe st st.buf 0;
      st.buf_len <- 0
    end
  end;
  while !len >= 32 do
    consume_stripe st b !pos;
    pos := !pos + 32;
    len := !len - 32
  done;
  if !len > 0 then begin
    Bytes.blit b !pos st.buf 0 !len;
    st.buf_len <- !len
  end

(* The staging buffer lives in the state (not a module global) so
   concurrent hashers on different domains never share it — parallel
   experiment runs hash checkpoints simultaneously. *)
let update_int64 st v =
  Bytes.set_int64_le st.scratch 0 v;
  update st st.scratch ~pos:0 ~len:8

let digest st =
  let acc =
    if st.total >= 32 then
      let acc =
        rotl st.v1 1 +% rotl st.v2 7 +% rotl st.v3 12 +% rotl st.v4 18
      in
      let acc = merge_round acc st.v1 in
      let acc = merge_round acc st.v2 in
      let acc = merge_round acc st.v3 in
      merge_round acc st.v4
    else st.seed +% p5
  in
  let acc = acc +% Int64.of_int st.total in
  finalize acc st.buf 0 st.buf_len
