(** Measurement harness shared by every experiment.

    A benchmark is a list of inputs (programs); each input runs on a
    fresh engine and the metrics are summed — matching how SPEC reports
    a benchmark with several reference inputs as one bar. Measurement
    procedures follow §5.1: energy is integrated over the run;
    memory is the PSS of main + checkers + runtime, sampled on a
    periodic tick (scaled from the paper's 0.5 s), with checkpoint
    processes excluded. *)

type mode =
  | Baseline
  | Protected of Parallaft.Config.t

type metrics = {
  wall_ns : float;  (** total: includes last-checker sync when protected *)
  main_wall_ns : float;  (** main-process wall time only *)
  main_user_ns : float;
  main_sys_ns : float;
  energy_j : float;
  mean_pss_bytes : float;  (** time-average over samples *)
  detections : int;
  segments : int;
  migrations : int;
  big_core_work_fraction : float;
  cow_copies : int;
  runtime_work_ns : float;
  outputs_ok : bool;  (** every input exited 0 *)
}

val pss_sample_period_ns : int

val run_benchmark :
  ?seed:int64 ->
  ?obs:Obs.Sink.t ->
  platform:Platform.t ->
  mode:mode ->
  scale:float ->
  Workloads.Spec.t ->
  metrics
(** Run every input of the benchmark under [mode], summing metrics.
    [obs] attaches an observability sink to the run (the engine for
    baseline runs, the runtime config for protected ones). A sink is
    not domain-safe: parallel callers ([Suite.sweep]) give each task a
    private sink and merge after the join. *)

val run_program :
  ?seed:int64 ->
  ?obs:Obs.Sink.t ->
  platform:Platform.t ->
  mode:mode ->
  Isa.Program.t ->
  metrics
(** Single-program variant (microbenchmarks, sweeps). *)

val overhead_pct : baseline:metrics -> measured:metrics -> float
(** Percentage wall-time overhead; protected wall includes checker
    drain. *)

val scale_from_env : unit -> float
(** [PARALLAFT_SCALE] (default 1.0): multiplies workload sizes. *)

val quick_from_env : unit -> bool
(** [PARALLAFT_QUICK=1] trims benchmark sets for fast smoke runs. *)
