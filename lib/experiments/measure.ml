type mode =
  | Baseline
  | Protected of Parallaft.Config.t

type metrics = {
  wall_ns : float;
  main_wall_ns : float;
  main_user_ns : float;
  main_sys_ns : float;
  energy_j : float;
  mean_pss_bytes : float;
  detections : int;
  segments : int;
  migrations : int;
  big_core_work_fraction : float;
  cow_copies : int;
  runtime_work_ns : float;
  outputs_ok : bool;
}

(* The paper samples PSS every 0.5 s; at the 1e-4 cycle scale that is
   50 us of simulated time. *)
let pss_sample_period_ns = 50_000

let zero =
  {
    wall_ns = 0.0;
    main_wall_ns = 0.0;
    main_user_ns = 0.0;
    main_sys_ns = 0.0;
    energy_j = 0.0;
    mean_pss_bytes = 0.0;
    detections = 0;
    segments = 0;
    migrations = 0;
    big_core_work_fraction = 0.0;
    cow_copies = 0;
    runtime_work_ns = 0.0;
    outputs_ok = true;
  }

(* Weighted (by wall time) combination for multi-input benchmarks. *)
let combine a b =
  let total_wall = a.wall_ns +. b.wall_ns in
  let wavg va vb =
    if total_wall <= 0.0 then 0.0
    else ((va *. a.wall_ns) +. (vb *. b.wall_ns)) /. total_wall
  in
  {
    wall_ns = total_wall;
    main_wall_ns = a.main_wall_ns +. b.main_wall_ns;
    main_user_ns = a.main_user_ns +. b.main_user_ns;
    main_sys_ns = a.main_sys_ns +. b.main_sys_ns;
    energy_j = a.energy_j +. b.energy_j;
    mean_pss_bytes = wavg a.mean_pss_bytes b.mean_pss_bytes;
    detections = a.detections + b.detections;
    segments = a.segments + b.segments;
    migrations = a.migrations + b.migrations;
    big_core_work_fraction = wavg a.big_core_work_fraction b.big_core_work_fraction;
    cow_copies = a.cow_copies + b.cow_copies;
    runtime_work_ns = a.runtime_work_ns +. b.runtime_work_ns;
    outputs_ok = a.outputs_ok && b.outputs_ok;
  }

type sampler = {
  mutable sum : float;
  mutable n : int;
}

let mean_of s = if s.n = 0 then 0.0 else s.sum /. float_of_int s.n

let run_program ?(seed = 42L) ?obs ~platform ~mode program =
  match mode with
  | Baseline ->
    let sampler = { sum = 0.0; n = 0 } in
    let b =
      Parallaft.Runtime.run_baseline ~seed ~platform ~program
        ~before_run:(fun eng pid ->
          (match obs with Some s -> Sim_os.Engine.set_obs eng s | None -> ());
          Sim_os.Engine.add_tick eng ~every_ns:pss_sample_period_ns (fun eng ->
              match Sim_os.Engine.state eng pid with
              | Sim_os.Engine.Exited _ -> ()
              | Sim_os.Engine.Runnable | Sim_os.Engine.Stopped ->
                sampler.sum <-
                  sampler.sum +. float_of_int (Sim_os.Engine.pss_bytes eng [ pid ]);
                sampler.n <- sampler.n + 1))
        ()
    in
    {
      zero with
      wall_ns = float_of_int b.Parallaft.Runtime.wall_ns;
      main_wall_ns = float_of_int b.Parallaft.Runtime.wall_ns;
      main_user_ns = b.Parallaft.Runtime.user_ns;
      main_sys_ns = b.Parallaft.Runtime.sys_ns;
      energy_j = b.Parallaft.Runtime.energy_j;
      mean_pss_bytes = mean_of sampler;
      outputs_ok = b.Parallaft.Runtime.exit_status = Some 0;
    }
  | Protected config ->
    let sampler = { sum = 0.0; n = 0 } in
    let config =
      match obs with
      | Some s -> { config with Parallaft.Config.obs = Some s }
      | None -> config
    in
    let r =
      Parallaft.Runtime.run_protected ~seed ~platform ~config ~program
        ~before_run:(fun eng coord ->
          Sim_os.Engine.add_tick eng ~every_ns:pss_sample_period_ns (fun eng ->
              let pids = Parallaft.Coordinator.live_pids coord in
              let pss = Sim_os.Engine.pss_bytes eng pids in
              (* Zero PSS means everything has exited: the run is over. *)
              if pss > 0 then begin
                sampler.sum <- sampler.sum +. float_of_int pss;
                sampler.n <- sampler.n + 1
              end))
        ()
    in
    {
      wall_ns = float_of_int r.Parallaft.Runtime.wall_ns;
      main_wall_ns = r.Parallaft.Runtime.stats.Parallaft.Stats.main_wall_ns;
      main_user_ns = r.Parallaft.Runtime.stats.Parallaft.Stats.main_user_ns;
      main_sys_ns = r.Parallaft.Runtime.stats.Parallaft.Stats.main_sys_ns;
      energy_j = r.Parallaft.Runtime.energy_j;
      mean_pss_bytes = mean_of sampler;
      detections = List.length r.Parallaft.Runtime.detections;
      segments = r.Parallaft.Runtime.stats.Parallaft.Stats.segments_total;
      migrations = r.Parallaft.Runtime.stats.Parallaft.Stats.migrations;
      big_core_work_fraction =
        Parallaft.Stats.big_core_work_fraction r.Parallaft.Runtime.stats;
      cow_copies = r.Parallaft.Runtime.cow_copies;
      runtime_work_ns = r.Parallaft.Runtime.runtime_work_ns;
      outputs_ok = r.Parallaft.Runtime.exit_status = Some 0;
    }

let run_benchmark ?(seed = 42L) ?obs ~platform ~mode ~scale bench =
  let programs =
    Workloads.Spec.programs bench ~page_size:platform.Platform.page_size ~scale
  in
  List.fold_left
    (fun (i, acc) program ->
      let m =
        run_program ~seed:(Int64.add seed (Int64.of_int i)) ?obs ~platform ~mode
          program
      in
      (i + 1, combine acc m))
    (0, zero) programs
  |> snd

let overhead_pct ~baseline ~measured =
  Util.Stats.percentage_overhead ~baseline:baseline.wall_ns ~measured:measured.wall_ns

let scale_from_env () =
  match Sys.getenv_opt "PARALLAFT_SCALE" with
  | Some s -> (
    match float_of_string_opt s with
    | Some f when f > 0.0 -> f
    | Some _ | None -> 1.0)
  | None -> 1.0

let quick_from_env () =
  match Sys.getenv_opt "PARALLAFT_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false
