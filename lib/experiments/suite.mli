(** The shared benchmark sweep: every SPEC-like benchmark under baseline,
    Parallaft and RAFT. Figures 5-8 and Table 1 all read from one sweep,
    which is memoized per (platform, scale, quick) so "run everything"
    pays for it once. *)

type row = {
  bench : Workloads.Spec.t;
  baseline : Measure.metrics;
  parallaft : Measure.metrics;
  raft : Measure.metrics;
}

val benchmarks : quick:bool -> Workloads.Spec.t list
(** The full suite, or a 6-benchmark subset under [quick]. *)

val get : platform:Platform.t -> scale:float -> quick:bool -> row list
(** Runs (or returns the memoized) sweep. Prints one progress line per
    benchmark to stderr. The memo table is mutex-protected, so [get] is
    safe to call from parallel tasks. *)

val sweep :
  ?obs:Obs.Sink.t ->
  platform:Platform.t ->
  scale:float ->
  quick:bool ->
  unit ->
  row list
(** The un-memoized sweep behind {!get}, fanned out over [Util.Pool]
    (one task per benchmark). Exposed so the differential determinism
    suite can run it repeatedly at different pool widths; harness code
    should use {!get}. *)

val geomean_overhead_pct : (row -> float) -> row list -> float
(** Geometric-mean of per-benchmark normalized values, expressed as a
    percentage overhead. The projection maps a row to its normalized
    (measured/baseline) value. *)

val perf_norm_parallaft : row -> float
val perf_norm_raft : row -> float
val energy_norm_parallaft : row -> float
val energy_norm_raft : row -> float
val memory_norm_parallaft : row -> float
val memory_norm_raft : row -> float

val short_name : Workloads.Spec.t -> string
(** "429.mcf" -> "mcf". *)
