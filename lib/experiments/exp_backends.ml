(* Checker-backend evaluation (DESIGN.md §18), two questions:

   1. Staleness vs recovery cost. The deferred backend's max_lag budget
      bounds how many recorded-but-unverified segments may be
      outstanding — and therefore how stale the newest *verified*
      checkpoint can be when an error surfaces. A rollback lands on
      that checkpoint, so a larger budget buys launch amortization at
      the price of re-executing more segments per recovery. The table
      injects the same main-memory fault under each budget and reports
      the marginal wall-clock and re-executed-segment cost against the
      fault-free run at the same budget.

   2. The chaos campaign. The remote backend at three fixed
      crash/stall/late/pre-launch intensities, each asserted for
      exactly-once verification, zero silent corruption against the
      fault-free inline reference, at least one actual re-dispatch, and
      zero leaked simulated pids. Failures raise — the campaign is a
      correctness gate that happens to print a table, not a benchmark.

   Both legs run the deterministic chase program on the testing
   platform: the simulator is bit-reproducible there, so every row is a
   pure function of the printed configuration. *)

module P = Parallaft

let platform = Platform.testing

let program =
  Workloads.Codegen.generate ~name:"det" ~seed:21L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = 30;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 0;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let base_cfg () = P.Config.parallaft ~platform ~slice_period:20_000 ()

let run_probed config =
  let captured = ref None in
  let before_run eng coord = captured := Some (eng, coord) in
  let r = P.Runtime.run_protected ~platform ~config ~before_run ~program () in
  match !captured with
  | None -> failwith "exp_backends: before_run did not fire"
  | Some (eng, coord) -> (r, eng, coord)

let leaked_pids eng coord =
  P.Coordinator.release_recovery_state coord;
  Sim_os.Engine.live_processes eng

(* Program-derived observables only: segment counts legitimately shift
   with checker lifetime (CoW copy costs move the cycle-based slice
   boundaries), so they are asserted within-run, not across runs. *)
let signature (r : P.Runtime.report) =
  ( r.P.Runtime.exit_status,
    r.P.Runtime.output,
    P.Stats.final_state_hash r.P.Runtime.stats )

(* The recovery leg can't include raw output: a rollback re-executes
   segments whose writes were already externalized, so their bytes
   appear twice — I/O can't be retracted, only state can. That
   duplication is itself part of the staleness cost and gets its own
   table column; the SDC criterion is final state + exit, same as the
   fault-injection campaign's. *)
let sdc_signature (r : P.Runtime.report) =
  (r.P.Runtime.exit_status, P.Stats.final_state_hash r.P.Runtime.stats)

let staleness_table () =
  Printf.printf
    "Staleness vs recovery cost: deferred backend, batch 2, recovery on,\n\
     one main-memory fault at segment 6 (page 6 bit 6, +50 insns).\n\n";
  let fault =
    Some
      {
        Fault.segment = 6;
        delay_instructions = 50;
        target = Fault.Main_memory_page { page_index = 6; bit = 6 };
        repeat = false;
      }
  in
  let cfg ~max_lag ~fault_plan =
    {
      (base_cfg ()) with
      P.Config.backend = P.Config.deferred_backend ~batch:2 ~max_lag ();
      recovery = true;
      fault_plan;
    }
  in
  Util.Table.print
    ~header:
      [
        "max_lag";
        "clean wall";
        "faulted wall";
        "rollback cost";
        "re-executed";
        "dup output";
        "recoveries";
        "max lag seen";
      ]
    (List.map
       (fun max_lag ->
         let clean, _, _ = run_probed (cfg ~max_lag ~fault_plan:None) in
         let faulted, eng, coord = run_probed (cfg ~max_lag ~fault_plan:fault) in
         let cs = clean.P.Runtime.stats and fs = faulted.P.Runtime.stats in
         if sdc_signature faulted <> sdc_signature clean then
           failwith "exp_backends: recovery corrupted the program state";
         if faulted.P.Runtime.aborted || fs.P.Stats.recoveries < 1 then
           failwith "exp_backends: the staleness fault did not recover";
         if leaked_pids eng coord <> 0 then
           failwith "exp_backends: leaked simulated pids";
         [
           string_of_int max_lag;
           Printf.sprintf "%.3f ms"
             (float_of_int clean.P.Runtime.wall_ns /. 1e6);
           Printf.sprintf "%.3f ms"
             (float_of_int faulted.P.Runtime.wall_ns /. 1e6);
           Printf.sprintf "%.3f ms"
             (float_of_int
                (faulted.P.Runtime.wall_ns - clean.P.Runtime.wall_ns)
             /. 1e6);
           string_of_int
             (fs.P.Stats.segments_total - cs.P.Stats.segments_total);
           Printf.sprintf "%d B"
             (String.length faulted.P.Runtime.output
             - String.length clean.P.Runtime.output);
           string_of_int fs.P.Stats.recoveries;
           string_of_int fs.P.Stats.backend.P.Stats.b_max_lag;
         ])
       [ 1; 2; 4; 8 ])

let chaos_campaign () =
  Printf.printf
    "Chaos campaign: remote backend, 3 nodes, retry budget 6. Every row\n\
     is asserted exactly-once, sdc=0 vs the fault-free inline reference,\n\
     >=1 re-dispatch, and zero leaked pids — a failed assertion aborts\n\
     the experiment.\n\n";
  let inline, _, _ = run_probed (base_cfg ()) in
  if inline.P.Runtime.aborted || inline.P.Runtime.detections <> [] then
    failwith "exp_backends: the inline reference run was not clean";
  let ref_sig = signature inline in
  Util.Table.print
    ~header:
      [
        "intensity";
        "crash/stall/late/pre %";
        "verified";
        "redispatched";
        "expired";
        "stale";
        "wall";
      ]
    (List.map
       (fun (label, crash, stall, late, prelaunch, seed) ->
         let chaos =
           {
             P.Config.chaos_seed = seed;
             crash_pct = crash;
             stall_pct = stall;
             late_pct = late;
             prelaunch_pct = prelaunch;
             reboot_ns = 400_000;
             late_ns = 150_000;
           }
         in
         let config =
           {
             (base_cfg ()) with
             P.Config.backend =
               P.Config.remote_backend ~nodes:3 ~retries:6 ~chaos ();
             watchdog_stall_ns = 2_000_000;
           }
         in
         let r, eng, coord = run_probed config in
         let b = r.P.Runtime.stats.P.Stats.backend in
         let total = r.P.Runtime.stats.P.Stats.segments_total in
         if r.P.Runtime.aborted then
           failwith
             (Printf.sprintf
                "exp_backends: %s chaos exhausted the retry budget" label);
         if r.P.Runtime.detections <> [] || signature r <> ref_sig then
           failwith
             (Printf.sprintf "exp_backends: %s chaos corrupted the run" label);
         if b.P.Stats.b_verified <> total then
           failwith
             (Printf.sprintf "exp_backends: %s chaos lost a segment" label);
         if b.P.Stats.b_redispatched < 1 then
           failwith
             (Printf.sprintf
                "exp_backends: %s chaos never struck — tune the rates" label);
         if leaked_pids eng coord <> 0 then
           failwith
             (Printf.sprintf "exp_backends: %s chaos leaked pids" label);
         [
           label;
           Printf.sprintf "%d/%d/%d/%d" crash stall late prelaunch;
           Printf.sprintf "%d/%d" b.P.Stats.b_verified total;
           string_of_int b.P.Stats.b_redispatched;
           string_of_int b.P.Stats.b_leases_expired;
           string_of_int b.P.Stats.b_stale_verdicts;
           Printf.sprintf "%.3f ms" (float_of_int r.P.Runtime.wall_ns /. 1e6);
         ])
       [
         ("light", 10, 5, 5, 5, 0x51A07L);
         ("medium", 25, 10, 10, 10, 0x51A08L);
         ("heavy", 40, 15, 15, 15, 0x51A09L);
       ])

let run () =
  staleness_table ();
  print_newline ();
  chaos_campaign ()
