type t = {
  name : string;
  title : string;
  run : unit -> unit;
}

let env () =
  let scale = Measure.scale_from_env () in
  let quick = Measure.quick_from_env () in
  (scale, quick)

let all () =
  let scale, quick = env () in
  [
    {
      name = "table1";
      title = "Table 1: comparison among processor fault-tolerance techniques";
      run = (fun () -> Exp_tables.table1 ~platform:Platform.apple_m2 ~scale ~quick);
    };
    {
      name = "table2";
      title = "Table 2: error containment, detection and recovery";
      run = (fun () -> Exp_tables.table2 ());
    };
    {
      name = "fig5";
      title = "Figure 5: performance overhead of Parallaft and RAFT";
      run = (fun () -> Exp_overhead.run ~platform:Platform.apple_m2 ~scale ~quick);
    };
    {
      name = "fig6";
      title = "Figure 6: performance-overhead breakdown of Parallaft";
      run = (fun () -> Exp_breakdown.run ~platform:Platform.apple_m2 ~scale ~quick);
    };
    {
      name = "fig7";
      title = "Figure 7: energy overhead of Parallaft and RAFT";
      run = (fun () -> Exp_energy.run ~platform:Platform.apple_m2 ~scale ~quick);
    };
    {
      name = "fig8";
      title = "Figure 8: normalized memory usage";
      run = (fun () -> Exp_memory.run ~platform:Platform.apple_m2 ~scale ~quick);
    };
    {
      name = "fig9";
      title = "Figure 9: slicing-period performance tradeoffs";
      run = (fun () -> Exp_sweep.run ~platform:Platform.apple_m2 ~scale);
    };
    {
      name = "fig10";
      title = "Figure 10: error-injection results";
      run = (fun () -> Exp_fault_injection.run ~platform:Platform.apple_m2 ~scale ~quick);
    };
    {
      name = "stress";
      title = "Section 5.7: syscall and signal handling overhead";
      run = (fun () -> Exp_stress.run ());
    };
    {
      name = "intel";
      title = "Section 5.8: overhead on Intel x86_64";
      run = (fun () -> Exp_intel.run ~scale ~quick);
    };
    {
      name = "fleet";
      title =
        "Fleet mode: multi-tenant throughput/latency/energy vs tenant count \
         (DESIGN.md §16)";
      run = (fun () -> Exp_fleet.run ~platform:Platform.apple_m2 ~scale ~quick);
    };
    {
      name = "ablation";
      title = "Ablations: dirty tracking, scheduling, hash choice (DESIGN.md §5)";
      run = (fun () -> Exp_ablation.run ~scale);
    };
    {
      name = "backends";
      title =
        "Checker backends: staleness vs recovery cost, remote chaos campaign \
         (DESIGN.md §18)";
      run = (fun () -> Exp_backends.run ());
    };
    {
      name = "calibrate";
      title = "Calibration: per-benchmark little-core slowdowns";
      run =
        (fun () -> Exp_calibrate.run ~platform:Platform.apple_m2 ~scale);
    };
  ]

let names () = List.map (fun e -> e.name) (all ())

let find which =
  let exps = all () in
  match which with
  | "all" ->
    (* The paper's evaluation; our own extensions (calibration, ablations)
       are invoked by name. *)
    Some
      (List.filter
         (fun e ->
           e.name <> "calibrate" && e.name <> "ablation" && e.name <> "fleet"
           && e.name <> "backends")
         exps)
  | name -> (
    match List.find_opt (fun e -> e.name = name) exps with
    | Some e -> Some [ e ]
    | None -> None)

let run e =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" e.title;
  Printf.printf "==============================================================\n\n";
  e.run ();
  print_newline ()
