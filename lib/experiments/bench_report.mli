(** The versioned BENCH_*.json perf-trajectory artifact.

    A report is the durable record of one benchmark run: the Bechamel
    ns/run estimates (one per paper table/figure microbench), the phase
    self-time breakdown of one profiled protected run
    ([Obs.Profile]-attributed, simulated time, deterministic), and a
    free-form metadata block (git revision, PARALLAFT_QUICK/SCALE,
    host). Reports serialize to a schema-versioned JSON file named
    BENCH_v<version>_<rev>.json so a perf trajectory can be kept in
    version control and regressions gated in CI.

    The JSON layer is self-contained — emitted and parsed here with no
    external dependency — and the emitter is deterministic: equal
    reports produce byte-identical documents, which is what the
    parallel-sweep differential test pins (modulo [strip_meta]). *)

val schema_name : string
(** ["parallaft-bench"], pinned in the document's ["schema"] field. *)

val schema_version : int
(** Bumped on any incompatible artifact change; parsing rejects
    mismatches so a stale trajectory file fails loudly. *)

type entry = { name : string; ns_per_run : float }

type t = {
  meta : (string * string) list;  (** free-form, key-sorted on emit *)
  benches : entry list;
  profile : (string * int) list;
      (** (phase, self_ns) rows, as in [Stats.profile] *)
}

val to_json : ?strip_meta:bool -> t -> string
(** Deterministic pretty-printed document. [strip_meta] drops the
    metadata block (git rev, host, ...) so two artifacts from the same
    simulated run compare byte-identical regardless of where they were
    produced. *)

val of_json : string -> (t, string) result
(** Parse a document produced by {!to_json} (or hand-edited: any
    whitespace, any key order, escapes and exponents accepted). Fails on
    malformed JSON, a wrong ["schema"], or a version mismatch. *)

val check : t -> (unit, string) result
(** Semantic validation: at least one benchmark, unique non-empty names,
    finite non-negative estimates and self-times. *)

val delta_table : threshold_pct:float -> baseline:t -> current:t -> string * bool
(** Per-benchmark delta table between two reports, plus the gate
    verdict: [false] iff some benchmark slowed down by strictly more
    than [threshold_pct] percent. Benchmarks present on only one side
    are listed but never gate (names may evolve between revisions). *)
