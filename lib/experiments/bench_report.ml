(* The BENCH_*.json artifact: deterministic emitter, self-contained
   recursive-descent parser (the toolchain has no JSON library, and the
   document grammar is small enough that depending on one would cost
   more than these ~100 lines), semantic checks and the regression
   gate's delta table. Everything here is pure — file IO and metadata
   collection live with the bench executable. *)

let schema_name = "parallaft-bench"
let schema_version = 1

type entry = { name : string; ns_per_run : float }

type t = {
  meta : (string * string) list;
  benches : entry list;
  profile : (string * int) list;
}

(* --- emitter ---------------------------------------------------------- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_json ?(strip_meta = false) t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"schema\": \"%s\",\n  \"version\": %d,\n" schema_name
    schema_version;
  let meta = if strip_meta then [] else List.sort compare t.meta in
  Buffer.add_string b "  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b k;
      Buffer.add_string b ": ";
      buf_add_json_string b v)
    meta;
  if meta <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n  \"benches\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    { \"name\": ";
      buf_add_json_string b e.name;
      Printf.bprintf b ", \"ns_per_run\": %.6f }" e.ns_per_run)
    t.benches;
  if t.benches <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "],\n  \"profile\": [";
  List.iteri
    (fun i (phase, self_ns) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    { \"phase\": ";
      buf_add_json_string b phase;
      Printf.bprintf b ", \"self_ns\": %d }" self_ns)
    t.profile;
  if t.profile <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

(* --- parser ----------------------------------------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let len = String.length lit in
    if !pos + len <= n && String.sub s !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          (* Our emitter only writes \u for control characters; decode
             the ASCII range and flatten anything wider to '?'. *)
          if !pos + 4 >= n then fail "short \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          Buffer.add_char b (if code < 0x80 then Char.chr code else '?');
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        incr pos;
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d = ref 0 in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos;
        incr d
      done;
      !d
    in
    if digits () = 0 then fail "expected digits";
    if peek () = Some '.' then begin
      incr pos;
      if digits () = 0 then fail "expected fraction digits"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      if digits () = 0 then fail "expected exponent digits"
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Jobj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Jarr []
      end
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            Jarr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at %d" !pos)
    else Ok v
  with Parse_error m -> Error m

(* --- document extraction ---------------------------------------------- *)

let ( let* ) = Result.bind

let obj_field fields k =
  match List.assoc_opt k fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let as_str what = function
  | Jstr s -> Ok s
  | _ -> Error (what ^ " is not a string")

let as_num what = function
  | Jnum f -> Ok f
  | _ -> Error (what ^ " is not a number")

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let of_json doc =
  let* v = parse_json doc in
  let* fields =
    match v with Jobj f -> Ok f | _ -> Error "document is not an object"
  in
  let* schema =
    let* v = obj_field fields "schema" in
    as_str "schema" v
  in
  let* () =
    if schema = schema_name then Ok ()
    else Error (Printf.sprintf "schema is %S, want %S" schema schema_name)
  in
  let* version =
    let* v = obj_field fields "version" in
    as_num "version" v
  in
  let* () =
    if version = float_of_int schema_version then Ok ()
    else
      Error
        (Printf.sprintf "schema version %g, this reader wants %d" version
           schema_version)
  in
  let* meta =
    let* v = obj_field fields "meta" in
    match v with
    | Jobj kvs ->
      map_result
        (fun (k, v) ->
          let* s = as_str ("meta." ^ k) v in
          Ok (k, s))
        kvs
    | _ -> Error "meta is not an object"
  in
  let* benches =
    let* v = obj_field fields "benches" in
    match v with
    | Jarr items ->
      map_result
        (fun item ->
          match item with
          | Jobj f ->
            let* name =
              let* v = obj_field f "name" in
              as_str "bench name" v
            in
            let* ns_per_run =
              let* v = obj_field f "ns_per_run" in
              as_num ("ns_per_run of " ^ name) v
            in
            Ok { name; ns_per_run }
          | _ -> Error "benches entry is not an object")
        items
    | _ -> Error "benches is not an array"
  in
  let* profile =
    let* v = obj_field fields "profile" in
    match v with
    | Jarr items ->
      map_result
        (fun item ->
          match item with
          | Jobj f ->
            let* phase =
              let* v = obj_field f "phase" in
              as_str "profile phase" v
            in
            let* self_ns =
              let* v = obj_field f "self_ns" in
              as_num ("self_ns of " ^ phase) v
            in
            Ok (phase, int_of_float self_ns)
          | _ -> Error "profile entry is not an object")
        items
    | _ -> Error "profile is not an array"
  in
  Ok { meta; benches; profile }

(* --- semantic checks -------------------------------------------------- *)

let check t =
  let* () = if t.benches = [] then Error "no benchmarks in report" else Ok () in
  let* () =
    match List.find_opt (fun e -> e.name = "") t.benches with
    | Some _ -> Error "empty benchmark name"
    | None -> Ok ()
  in
  let names = List.map (fun e -> e.name) t.benches in
  let* () =
    if List.length (List.sort_uniq String.compare names) = List.length names
    then Ok ()
    else Error "duplicate benchmark name"
  in
  let* () =
    match
      List.find_opt
        (fun e ->
          (not (Float.is_finite e.ns_per_run)) || e.ns_per_run < 0.0)
        t.benches
    with
    | Some e -> Error (Printf.sprintf "bad estimate for %s" e.name)
    | None -> Ok ()
  in
  match List.find_opt (fun (_, self) -> self < 0) t.profile with
  | Some (phase, _) -> Error (Printf.sprintf "negative self_ns for %s" phase)
  | None -> Ok ()

(* --- regression gate -------------------------------------------------- *)

let meta_rev t =
  match List.assoc_opt "git_rev" t.meta with Some r -> r | None -> "?"

(* A benchmark only gates when both sides carry it with a positive
   baseline: names may come and go between revisions, and a zero
   baseline makes the relative delta meaningless. *)
let delta_table ~threshold_pct ~baseline ~current =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "bench-delta: baseline %s -> current %s (gate: +%.1f%%)\n"
    (meta_rev baseline) (meta_rev current) threshold_pct;
  Printf.bprintf b "  %-36s %14s %14s %9s\n" "benchmark" "baseline ns"
    "current ns" "delta";
  let regressions = ref 0 in
  List.iter
    (fun cur ->
      match
        List.find_opt (fun e -> e.name = cur.name) baseline.benches
      with
      | Some old when old.ns_per_run > 0.0 ->
        let delta =
          (cur.ns_per_run -. old.ns_per_run) /. old.ns_per_run *. 100.0
        in
        let regressed = delta > threshold_pct in
        if regressed then incr regressions;
        Printf.bprintf b "  %-36s %14.1f %14.1f %+8.1f%%%s\n" cur.name
          old.ns_per_run cur.ns_per_run delta
          (if regressed then "  <-- regression" else "")
      | Some old ->
        Printf.bprintf b "  %-36s %14.1f %14.1f %9s\n" cur.name old.ns_per_run
          cur.ns_per_run "n/a"
      | None ->
        Printf.bprintf b "  %-36s %14s %14.1f %9s\n" cur.name "-"
          cur.ns_per_run "new")
    current.benches;
  List.iter
    (fun old ->
      if not (List.exists (fun e -> e.name = old.name) current.benches) then
        Printf.bprintf b "  %-36s %14.1f %14s %9s\n" old.name old.ns_per_run
          "-" "gone")
    baseline.benches;
  Printf.bprintf b "  regressions past threshold: %d (gate: %s)\n" !regressions
    (if !regressions = 0 then "pass" else "FAIL");
  (Buffer.contents b, !regressions = 0)
