(* Fleet-mode evaluation (DESIGN.md §16): throughput, per-tenant
   latency and energy of N concurrent protected tenants sharing one
   core pool, against N serial single-tenant runs of the same programs
   on the same simulated machine.

   Closed loop: N tenants arrive in one batch and run to completion —
   the consolidation question (how much does sharing the little
   cluster's checker capacity buy over running the tenants back to
   back?). Open loop: staggered arrivals against a max_tenants
   admission cap, with both queue and reject policies — the overload
   question (what happens to latency and the rejection count when
   offered load exceeds the pool?).

   Workloads are detimed (no gettime/rdtsc results recorded, no mmap
   churn) so each tenant's final state is a pure function of its
   program and its per-tenant rng streams — the same discipline as the
   fault-injection oracle. *)

let detimed bench =
  {
    bench with
    Workloads.Spec.spec =
      {
        bench.Workloads.Spec.spec with
        Workloads.Codegen.gettime_every = 0;
        rdtsc_every = 0;
        mmap_churn = false;
      };
  }

(* A fleet's tenants cycle through distinct benchmark characters so the
   pool sees heterogeneous checker lengths (the interesting case for
   stealing). Reduced scale, same rationale as the injection campaign:
   fleet behaviour depends on per-segment dynamics, not program size. *)
let fleet_scale scale = scale *. 0.25

let tenant_programs ~platform ~scale ~n =
  let benches = Suite.benchmarks ~quick:true in
  List.init n (fun i ->
      let bench = detimed (List.nth benches (i mod List.length benches)) in
      List.hd
        (Workloads.Spec.programs bench
           ~page_size:platform.Platform.page_size ~scale:(fleet_scale scale)))

let serial_wall_ns ~platform ~config ~programs =
  List.fold_left
    (fun acc program ->
      let r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
      acc + r.Parallaft.Runtime.wall_ns)
    0 programs

let run ~platform ~scale ~quick =
  let config = Parallaft.Config.parallaft ~platform () in
  let tenant_counts = if quick then [ 1; 4 ] else [ 1; 2; 4; 6 ] in
  let closed =
    List.map
      (fun n ->
        let programs = tenant_programs ~platform ~scale ~n in
        let fleet =
          Fleet.run ~max_tenants:n ~arrival:Fleet.Batch ~platform ~config
            ~programs ()
        in
        let serial = serial_wall_ns ~platform ~config ~programs in
        (n, fleet, serial))
      tenant_counts
  in
  Util.Table.print
    ~header:
      [
        "tenants";
        "fleet wall";
        "serial wall";
        "speedup";
        "verified";
        "steals";
        "seg/s";
        "energy";
      ]
    (List.map
       (fun (n, (fleet : Fleet.report), serial) ->
         [
           string_of_int n;
           Printf.sprintf "%.2f ms" (float_of_int fleet.Fleet.wall_ns /. 1e6);
           Printf.sprintf "%.2f ms" (float_of_int serial /. 1e6);
           Printf.sprintf "%.2fx"
             (float_of_int serial /. float_of_int (max 1 fleet.Fleet.wall_ns));
           string_of_int fleet.Fleet.segments_verified;
           string_of_int fleet.Fleet.steals;
           Printf.sprintf "%.0f" fleet.Fleet.throughput_segments_per_s;
           Printf.sprintf "%.3f J" fleet.Fleet.energy_j;
         ])
       closed);
  (* Open loop: 6 staggered arrivals against a 2-tenant cap, queueing
     vs rejecting. Latency is admission-to-completion per tenant. *)
  print_newline ();
  let n_arrivals = if quick then 4 else 6 in
  let programs = tenant_programs ~platform ~scale ~n:n_arrivals in
  let open_loop policy =
    Fleet.run ~max_tenants:2 ~admission:policy
      ~arrival:(Fleet.Staggered 200_000) ~platform ~config ~programs ()
  in
  let mean_latency_ms (r : Fleet.report) =
    let lats =
      List.filter_map
        (fun (t : Fleet.tenant_report) ->
          match (t.Fleet.admitted_ns, t.Fleet.completed_ns) with
          | Some a, Some c -> Some (float_of_int (c - a))
          | _ -> None)
        r.Fleet.tenants
    in
    if lats = [] then 0.0
    else List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats) /. 1e6
  in
  Util.Table.print
    ~header:
      [ "policy"; "arrivals"; "admitted"; "rejected"; "mean latency"; "seg/s" ]
    (List.map
       (fun (name, policy) ->
         let r = open_loop policy in
         [
           name;
           string_of_int n_arrivals;
           string_of_int r.Fleet.admitted;
           string_of_int r.Fleet.rejected;
           Printf.sprintf "%.2f ms" (mean_latency_ms r);
           Printf.sprintf "%.0f" r.Fleet.throughput_segments_per_s;
         ])
       [ ("queue", Fleet.Queue_arrivals); ("reject", Fleet.Reject_arrivals) ])
