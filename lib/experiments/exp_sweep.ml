(* Figure 9: slicing-period sensitivity on gcc, mcf and sjeng.
   Periods map the paper's 1B..20B cycles through the 5e-5 scale to
   50k..1M simulated cycles. Expected shapes: (a) fork+COW overhead
   falls with the period, steepest for mcf; (b) last-checker-sync
   overhead rises, steepest for gcc (short inputs) and mcf (slow
   checkers); (c) their sum has a per-benchmark sweet spot. *)

let periods = [ ("1B", 50_000); ("2B", 100_000); ("5B", 250_000);
                ("10B", 500_000); ("20B", 1_000_000) ]

let benchmarks = [ "403.gcc"; "429.mcf"; "458.sjeng" ]

type point = {
  fork_cow : float;
  sync : float;
  total : float;
}

let measure_point ~platform ~scale bench period =
  let baseline = Measure.run_benchmark ~platform ~mode:Measure.Baseline ~scale bench in
  let config = Parallaft.Config.parallaft ~platform ~slice_period:period () in
  let p =
    Measure.run_benchmark ~platform ~mode:(Measure.Protected config) ~scale bench
  in
  let wall0 = baseline.Measure.wall_ns in
  let pct x = Float.max 0.0 (100.0 *. x /. wall0) in
  {
    fork_cow = pct (p.Measure.main_sys_ns -. baseline.Measure.main_sys_ns);
    sync = pct (p.Measure.wall_ns -. p.Measure.main_wall_ns);
    total = pct (p.Measure.wall_ns -. wall0);
  }

(* The full (benchmark x period) grid, flattened into one task list for
   Util.Pool: every cell is an isolated pair of seeded runs, so the
   grid is bit-identical at any pool width (cells never share state,
   and the table is reassembled in cell order after the join). Exposed
   with the lists as parameters so the differential determinism test
   can run a reduced grid. *)
let grid ?(periods = periods) ?(benchmarks = benchmarks) ~platform ~scale () =
  let cells =
    List.concat_map
      (fun name ->
        let bench =
          match Workloads.Spec.find name with
          | Some b -> b
          | None -> invalid_arg ("unknown benchmark " ^ name)
        in
        List.map (fun (label, period) -> (name, bench, label, period)) periods)
      benchmarks
  in
  let points =
    Util.Pool.map
      (fun (name, bench, label, period) ->
        Obs.Log.progress "  [fig9] %s @ %s..." name label;
        (label, measure_point ~platform ~scale bench period))
      cells
  in
  (* Cells were generated benchmark-major, one row per benchmark. *)
  let per_bench = List.length periods in
  List.mapi (fun i name -> (i, name)) benchmarks
  |> List.map (fun (i, name) ->
         ( name,
           List.filteri
             (fun j _ -> j >= i * per_bench && j < (i + 1) * per_bench)
             points ))

let run ~platform ~scale =
  let table = grid ~platform ~scale () in
  let print_series title proj =
    Printf.printf "%s\n" title;
    Util.Table.print
      ~header:("benchmark" :: List.map fst periods)
      (List.map
         (fun (name, points) ->
           name
           :: List.map (fun (_, pt) -> Printf.sprintf "%.1f" (proj pt)) points)
         table);
    print_newline ()
  in
  print_series "(a) Forking-and-COW overhead (%) vs slicing period" (fun p ->
      p.fork_cow);
  print_series "(b) Last-checker-sync overhead (%) vs slicing period" (fun p ->
      p.sync);
  print_series "(c) Combined performance overhead (%) vs slicing period" (fun p ->
      p.total);
  (* Sweet spots per benchmark (paper: gcc 2B, mcf 5B, sjeng 20B). *)
  List.iter
    (fun (name, points) ->
      let best =
        List.fold_left
          (fun (bl, bv) (l, pt) -> if pt.total < bv then (l, pt.total) else (bl, bv))
          ("?", infinity) points
      in
      Printf.printf "sweet spot for %-12s %s cycles (%.1f%% total overhead)\n" name
        (fst best) (snd best))
    table
