type row = {
  bench : Workloads.Spec.t;
  baseline : Measure.metrics;
  parallaft : Measure.metrics;
  raft : Measure.metrics;
}

let quick_set =
  [ "403.gcc"; "429.mcf"; "458.sjeng"; "456.hmmer"; "470.lbm"; "433.milc" ]

let benchmarks ~quick =
  if quick then
    List.filter (fun b -> List.mem b.Workloads.Spec.name quick_set) Workloads.Spec.all
  else Workloads.Spec.all

let cache : (string * float * bool, row list) Hashtbl.t = Hashtbl.create 4

let sweep ~platform ~scale ~quick =
  let benches = benchmarks ~quick in
  List.map
    (fun bench ->
      Obs.Log.progress "  [sweep %s] %s..." platform.Platform.name
        bench.Workloads.Spec.name;
      let baseline =
        Measure.run_benchmark ~platform ~mode:Measure.Baseline ~scale bench
      in
      let parallaft =
        Measure.run_benchmark ~platform
          ~mode:(Measure.Protected (Parallaft.Config.parallaft ~platform ()))
          ~scale bench
      in
      let raft =
        Measure.run_benchmark ~platform
          ~mode:(Measure.Protected (Parallaft.Config.raft ~platform ()))
          ~scale bench
      in
      { bench; baseline; parallaft; raft })
    benches

let get ~platform ~scale ~quick =
  let key = (platform.Platform.name, scale, quick) in
  match Hashtbl.find_opt cache key with
  | Some rows -> rows
  | None ->
    let rows = sweep ~platform ~scale ~quick in
    Hashtbl.replace cache key rows;
    rows

let geomean_overhead_pct proj rows =
  (Util.Stats.geomean (List.map proj rows) -. 1.0) *. 100.0

let perf_norm_parallaft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.wall_ns
    ~measured:r.parallaft.Measure.wall_ns

let perf_norm_raft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.wall_ns
    ~measured:r.raft.Measure.wall_ns

let energy_norm_parallaft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.energy_j
    ~measured:r.parallaft.Measure.energy_j

let energy_norm_raft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.energy_j
    ~measured:r.raft.Measure.energy_j

let memory_norm_parallaft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.mean_pss_bytes
    ~measured:r.parallaft.Measure.mean_pss_bytes

let memory_norm_raft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.mean_pss_bytes
    ~measured:r.raft.Measure.mean_pss_bytes

let short_name b =
  let name = b.Workloads.Spec.name in
  match String.index_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name
