type row = {
  bench : Workloads.Spec.t;
  baseline : Measure.metrics;
  parallaft : Measure.metrics;
  raft : Measure.metrics;
}

let quick_set =
  [ "403.gcc"; "429.mcf"; "458.sjeng"; "456.hmmer"; "470.lbm"; "433.milc" ]

let benchmarks ~quick =
  if quick then
    List.filter (fun b -> List.mem b.Workloads.Spec.name quick_set) Workloads.Spec.all
  else Workloads.Spec.all

let cache : (string * float * bool, row list) Hashtbl.t = Hashtbl.create 4
let cache_mutex = Mutex.create ()

(* One benchmark = one pool task: three whole seeded runs, no state
   shared with any other benchmark, so fanning the list out over
   domains returns bit-identical rows for every pool width (enforced
   differentially by test_parallel). When the caller passes [obs], each
   task records into a private sink — sinks are not domain-safe — and
   the per-task sinks are merged into [obs] in benchmark order after
   the join, keeping even the trace independent of domain scheduling. *)
let sweep ?obs ~platform ~scale ~quick () =
  let benches = benchmarks ~quick in
  let tasks =
    Util.Pool.map
      (fun bench ->
        Obs.Log.progress "  [sweep %s] %s..." platform.Platform.name
          bench.Workloads.Spec.name;
        let task_obs =
          Option.map
            (fun (parent : Obs.Sink.t) ->
              let s = Obs.Sink.create () in
              (* Profiling is opt-in on the caller's sink; each private
                 task sink must inherit the choice or the merged profile
                 would silently stay empty. *)
              if Obs.Profile.enabled parent.Obs.Sink.profile then
                Obs.Profile.set_enabled s.Obs.Sink.profile true;
              s)
            obs
        in
        let run mode = Measure.run_benchmark ?obs:task_obs ~platform ~mode ~scale bench in
        let baseline = run Measure.Baseline in
        let parallaft =
          run (Measure.Protected (Parallaft.Config.parallaft ~platform ()))
        in
        let raft = run (Measure.Protected (Parallaft.Config.raft ~platform ())) in
        ({ bench; baseline; parallaft; raft }, task_obs))
      benches
  in
  (match obs with
  | Some sink ->
    Obs.Sink.merge_into sink (List.filter_map (fun (_, s) -> s) tasks)
  | None -> ());
  List.map fst tasks

let get ~platform ~scale ~quick =
  let key = (platform.Platform.name, scale, quick) in
  let cached =
    Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key)
  in
  match cached with
  | Some rows -> rows
  | None ->
    (* Computed outside the lock: a sweep can take minutes and may
       itself fan out over the pool. Harnesses request distinct keys
       sequentially, so a duplicated sweep (two domains racing on one
       key) costs only wasted work, never an inconsistent table. *)
    let rows = sweep ~platform ~scale ~quick () in
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache key with
        | Some rows -> rows
        | None ->
          Hashtbl.replace cache key rows;
          rows)

let geomean_overhead_pct proj rows =
  (Util.Stats.geomean (List.map proj rows) -. 1.0) *. 100.0

let perf_norm_parallaft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.wall_ns
    ~measured:r.parallaft.Measure.wall_ns

let perf_norm_raft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.wall_ns
    ~measured:r.raft.Measure.wall_ns

let energy_norm_parallaft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.energy_j
    ~measured:r.parallaft.Measure.energy_j

let energy_norm_raft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.energy_j
    ~measured:r.raft.Measure.energy_j

let memory_norm_parallaft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.mean_pss_bytes
    ~measured:r.parallaft.Measure.mean_pss_bytes

let memory_norm_raft r =
  Util.Stats.normalized ~baseline:r.baseline.Measure.mean_pss_bytes
    ~measured:r.raft.Measure.mean_pss_bytes

let short_name b =
  let name = b.Workloads.Spec.name in
  match String.index_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name
