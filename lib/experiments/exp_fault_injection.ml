(* Figure 10: fault injection (§5.6). For each benchmark: a profile run
   collects per-segment instruction counts; then for each trial a random
   bit of a random register is flipped in the checker of a random
   segment, at a uniformly random point within 1.1x the segment's
   length. Failed injections (the checker finished first) are discarded
   and retried, as in the paper. Outcomes: Detected / Exception /
   Timeout / Benign — and never an undetected corruption.

   Parallelism and determinism: the campaign pre-draws every candidate
   plan (a fixed number of RNG draws, so the stream position after a
   campaign does not depend on run outcomes), then evaluates attempts
   over Util.Pool in chunks, stopping once the evaluated prefix holds
   enough landed injections. Each attempt is an isolated seeded run, so
   whether attempt i lands — and its outcome — is a function of its
   plan alone. The tally is built from the first [trials] landed
   attempts in draw order; running extra attempts (a wider pool or a
   bigger chunk) can never change which those are, which is what makes
   the -j 1 and -j 4 tallies byte-identical (see test_parallel). *)

let trials_per_benchmark ~quick = if quick then 6 else 15

(* As in the paper, not every injection lands; drawing 4x the wanted
   trials bounds the campaign while leaving retries headroom. *)
let attempts_factor = 4

(* Injections use a reduced program size so a campaign of hundreds of
   whole-program runs stays tractable; the classification depends only
   on per-segment behaviour, which is size-independent. *)
let fi_scale scale = scale *. 0.25

type tally = {
  mutable detected : int;
  mutable exception_ : int;
  mutable timeout : int;
  mutable benign : int;
}

let classify tally (outcome : Parallaft.Detection.outcome) =
  match outcome with
  | Parallaft.Detection.Detected _ -> tally.detected <- tally.detected + 1
  | Parallaft.Detection.Exception_detected _ ->
    tally.exception_ <- tally.exception_ + 1
  | Parallaft.Detection.Timeout_detected -> tally.timeout <- tally.timeout + 1
  | Parallaft.Detection.Benign -> tally.benign <- tally.benign + 1

let run_one ~platform ~program ~plan =
  let config =
    {
      (Parallaft.Config.parallaft ~platform ()) with
      Parallaft.Config.fault_plan = Some plan;
    }
  in
  let r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  r.Parallaft.Runtime.stats.Parallaft.Stats.fi_outcome

let draw_plan ~rng ~seg_insns =
  let n_segments = Array.length seg_insns in
  let segment = Util.Rng.int rng n_segments in
  let t = max 1 seg_insns.(segment) in
  let delay = Util.Rng.int rng (max 1 (int_of_float (1.1 *. float_of_int t))) in
  let reg = Util.Rng.int rng Isa.Insn.num_regs in
  let bit = Util.Rng.int rng 63 in
  { Parallaft.Config.segment; delay_instructions = delay; reg; bit }

let campaign ~platform ~scale ~trials ~rng bench =
  let programs =
    Workloads.Spec.programs bench ~page_size:platform.Platform.page_size ~scale
  in
  let program = List.hd programs in
  (* Profile run: segment instruction counts. *)
  let profile =
    Parallaft.Runtime.run_protected ~platform
      ~config:(Parallaft.Config.parallaft ~platform ())
      ~program ()
  in
  let seg_insns =
    List.rev profile.Parallaft.Runtime.stats.Parallaft.Stats.segment_insn_deltas
    |> Array.of_list
  in
  let tally = { detected = 0; exception_ = 0; timeout = 0; benign = 0 } in
  if Array.length seg_insns = 0 then tally
  else begin
    let max_attempts = trials * attempts_factor in
    (* Pre-draw all plans sequentially: the RNG consumption is fixed. *)
    let plans = Array.make max_attempts (draw_plan ~rng ~seg_insns) in
    for i = 1 to max_attempts - 1 do
      plans.(i) <- draw_plan ~rng ~seg_insns
    done;
    let outcomes : Parallaft.Detection.outcome option array =
      Array.make max_attempts None
    in
    let landed = ref 0 in
    let evaluated = ref 0 in
    let chunk_size = max (Util.Pool.jobs ()) 2 in
    while !landed < trials && !evaluated < max_attempts do
      let lo = !evaluated in
      let hi = min max_attempts (lo + chunk_size) - 1 in
      let idxs = List.init (hi - lo + 1) (fun k -> lo + k) in
      let rs =
        Util.Pool.map
          (fun i -> run_one ~platform ~program ~plan:plans.(i))
          idxs
      in
      List.iter2
        (fun i r ->
          outcomes.(i) <- r;
          if r <> None then incr landed)
        idxs rs;
      evaluated := hi + 1
    done;
    (* First [trials] landed attempts in draw order — a prefix property
       unaffected by how many extra attempts the chunking evaluated. *)
    let taken = ref 0 in
    Array.iter
      (fun o ->
        match o with
        | Some outcome when !taken < trials ->
          incr taken;
          classify tally outcome
        | _ -> ())
      outcomes;
    tally
  end

let run ~platform ~scale ~quick =
  let benches = Suite.benchmarks ~quick in
  let rng = Util.Rng.create ~seed:0xFA417L in
  let scale = fi_scale scale in
  let trials = trials_per_benchmark ~quick in
  let rows = ref [] in
  let totals = { detected = 0; exception_ = 0; timeout = 0; benign = 0 } in
  List.iter
    (fun bench ->
      Obs.Log.progress "  [fig10] %s..." bench.Workloads.Spec.name;
      let t = campaign ~platform ~scale ~trials ~rng bench in
      totals.detected <- totals.detected + t.detected;
      totals.exception_ <- totals.exception_ + t.exception_;
      totals.timeout <- totals.timeout + t.timeout;
      totals.benign <- totals.benign + t.benign;
      let n = t.detected + t.exception_ + t.timeout + t.benign in
      let pct x = if n = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int n in
      rows :=
        [
          Suite.short_name bench;
          Printf.sprintf "%.0f" (pct t.detected);
          Printf.sprintf "%.0f" (pct t.exception_);
          Printf.sprintf "%.0f" (pct t.timeout);
          Printf.sprintf "%.0f" (pct t.benign);
          string_of_int n;
        ]
        :: !rows)
    benches;
  Util.Table.print
    ~header:[ "benchmark"; "detected%"; "exception%"; "timeout%"; "benign%"; "n" ]
    (List.rev !rows);
  let n = totals.detected + totals.exception_ + totals.timeout + totals.benign in
  let pct x = if n = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int n in
  Printf.printf
    "\nOverall: %.1f%% benign (paper: 43.3%%); every non-benign fault detected\n\
     (detected %.1f%%, exception %.1f%%, timeout %.1f%%; %d landed injections)\n"
    (pct totals.benign) (pct totals.detected) (pct totals.exception_)
    (pct totals.timeout) n
