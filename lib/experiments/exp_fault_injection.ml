(* Figure 10, generalized (§5.6 + DESIGN.md §13): fault injection over
   the full fault model. The original campaign flips a random bit of a
   random register in the checker of a random segment, at a uniformly
   random point within 1.1x the segment's length; the generalized grid
   also strikes checker memory, the main process (register and memory)
   and the runtime itself (kill/stall a checker mid-check), with the
   recovery extension off and on. Failed injections (the target
   finished first) are discarded and retried, as in the paper.

   Every landed run is also checked by the SDC oracle: its final
   main-process state (register file + memory image hash) and output
   are compared against a fault-free reference run of the same
   configuration, so "no silent data corruption" is measured, not
   assumed — a run that looks clean but ends in a different state
   counts in the [sdc] column.

   Parallelism and determinism: the campaign pre-draws every candidate
   plan (a fixed number of RNG draws, so the stream position after a
   campaign does not depend on run outcomes), then evaluates attempts
   over Util.Pool in chunks, stopping once the evaluated prefix holds
   enough landed injections. Each attempt is an isolated seeded run, so
   whether attempt i lands — and its outcome — is a function of its
   plan alone. The tally is built from the first [trials] landed
   attempts in draw order; running extra attempts (a wider pool or a
   bigger chunk) can never change which those are, which is what makes
   the -j 1 and -j 4 tallies byte-identical (see test_parallel). *)

let trials_per_benchmark ~quick = if quick then 6 else 15

(* As in the paper, not every injection lands; drawing 4x the wanted
   trials bounds the campaign while leaving retries headroom. *)
let attempts_factor = 4

(* Injections use a reduced program size so a campaign of hundreds of
   whole-program runs stays tractable; the classification depends only
   on per-segment behaviour, which is size-independent. *)
let fi_scale scale = scale *. 0.25

type tally = {
  mutable detected : int;
  mutable exception_ : int;
  mutable timeout : int;
  mutable benign : int;
  mutable transient : int;
      (* checker-side failures a passing re-check resolved *)
  mutable hard : int;  (* persistent faults: detected again after rollback *)
  mutable recovered : int;
      (* runs that detected, rolled back, and still finished in the
         reference final state *)
  mutable sdc : int;
      (* silent data corruptions: clean-looking runs whose final state
         or output differs from the fault-free reference *)
}

let fresh_tally () =
  {
    detected = 0;
    exception_ = 0;
    timeout = 0;
    benign = 0;
    transient = 0;
    hard = 0;
    recovered = 0;
    sdc = 0;
  }

let add_tally ~into t =
  into.detected <- into.detected + t.detected;
  into.exception_ <- into.exception_ + t.exception_;
  into.timeout <- into.timeout + t.timeout;
  into.benign <- into.benign + t.benign;
  into.transient <- into.transient + t.transient;
  into.hard <- into.hard + t.hard;
  into.recovered <- into.recovered + t.recovered;
  into.sdc <- into.sdc + t.sdc

let landed_total t =
  t.detected + t.exception_ + t.timeout + t.benign + t.transient + t.hard

let classify tally (outcome : Parallaft.Detection.outcome) =
  match outcome with
  | Parallaft.Detection.Detected _ -> tally.detected <- tally.detected + 1
  | Parallaft.Detection.Exception_detected _ ->
    tally.exception_ <- tally.exception_ + 1
  | Parallaft.Detection.Timeout_detected -> tally.timeout <- tally.timeout + 1
  | Parallaft.Detection.Benign -> tally.benign <- tally.benign + 1
  | Parallaft.Detection.Transient_checker_fault _ ->
    tally.transient <- tally.transient + 1
  | Parallaft.Detection.Hard_fault _ -> tally.hard <- tally.hard + 1

(* The injectable target classes of the grid, in display order. *)
type target_kind =
  | Checker_reg
  | Checker_mem
  | Main_reg
  | Main_mem
  | Runtime_kill
  | Runtime_stall

let target_kind_name = function
  | Checker_reg -> "checker-reg"
  | Checker_mem -> "checker-mem"
  | Main_reg -> "main-reg"
  | Main_mem -> "main-mem"
  | Runtime_kill -> "runtime-kill"
  | Runtime_stall -> "runtime-stall"

let all_target_kinds =
  [ Checker_reg; Checker_mem; Main_reg; Main_mem; Runtime_kill; Runtime_stall ]

(* What the fault-free reference run of a configuration ended as; the
   SDC oracle compares every landed faulted run against this. *)
type reference = {
  ref_exit : int option;
  ref_output : string;
  ref_final : int64 option;
}

type attempt = {
  outcome : Parallaft.Detection.outcome;
  recovered_run : bool;
  silent_corruption : bool;
}

let config_for ~platform ~recovery ~recheck plan_opt =
  {
    (Parallaft.Config.parallaft ~platform ()) with
    Parallaft.Config.fault_plan = plan_opt;
    recovery;
    recheck_on_mismatch = recheck;
  }

let run_reference ~platform ~recovery ~recheck ~program =
  let config = config_for ~platform ~recovery ~recheck None in
  let r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  {
    ref_exit = r.Parallaft.Runtime.exit_status;
    ref_output = r.Parallaft.Runtime.output;
    ref_final = Parallaft.Stats.final_state_hash r.Parallaft.Runtime.stats;
  }

let run_one ~platform ~recovery ~recheck ~reference ~program ~plan =
  let config = config_for ~platform ~recovery ~recheck (Some plan) in
  let r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  match r.Parallaft.Runtime.stats.Parallaft.Stats.fi_outcome with
  | None -> None (* the injection never fired: retry another plan *)
  | Some outcome ->
    let clean_exit =
      (not r.Parallaft.Runtime.aborted)
      && r.Parallaft.Runtime.exit_status <> None
      && r.Parallaft.Runtime.exit_status = reference.ref_exit
    in
    let state_matches =
      (* Rollback re-executes externally visible writes (the paper's
         §3.4 buffered-IO assumption), so duplicated output after a
         recovery is not corruption; the final state hash is the exact
         oracle there. With no rollback the determinised workload's
         output must match byte-for-byte. *)
      Parallaft.Stats.final_state_hash r.Parallaft.Runtime.stats
      = reference.ref_final
      && (r.Parallaft.Runtime.stats.Parallaft.Stats.recoveries > 0
         || String.equal r.Parallaft.Runtime.output reference.ref_output)
    in
    Some
      {
        outcome;
        recovered_run =
          clean_exit && state_matches
          && r.Parallaft.Runtime.detections <> [];
        silent_corruption = clean_exit && not state_matches;
      }

let draw_plan ~rng ~seg_insns ~kind =
  let n_segments = Array.length seg_insns in
  let segment = Util.Rng.int rng n_segments in
  let t = max 1 seg_insns.(segment) in
  let delay = Util.Rng.int rng (max 1 (int_of_float (1.1 *. float_of_int t))) in
  let reg = Util.Rng.int rng Isa.Insn.num_regs in
  let bit = Util.Rng.int rng 64 in
  let target =
    match kind with
    | Checker_reg -> Fault.Checker_register { reg; bit }
    | Checker_mem -> Fault.Checker_memory_page { page_index = reg; bit }
    | Main_reg -> Fault.Main_register { reg; bit }
    | Main_mem -> Fault.Main_memory_page { page_index = reg; bit }
    | Runtime_kill -> Fault.Runtime_fault Fault.Kill
    | Runtime_stall -> Fault.Runtime_fault Fault.Stall
  in
  { Fault.segment; delay_instructions = delay; target; repeat = false }

(* The campaign runs a determinised variant of the benchmark: gettime /
   rdtsc values and mmap-returned addresses feed workload output, and a
   re-dispatched check or a rollback shifts wall-clock and allocation
   order, so a faulted run can differ from its fault-free reference in
   output without any corruption. The real system records and replays
   such results, making them invisible to checking; stripping them here
   gives the SDC oracle an exact, timing-independent ground truth while
   leaving the memory/compute character (what fault classification
   depends on) untouched. *)
let detimed bench =
  {
    bench with
    Workloads.Spec.spec =
      {
        bench.Workloads.Spec.spec with
        Workloads.Codegen.gettime_every = 0;
        rdtsc_every = 0;
        mmap_churn = false;
      };
  }

let campaign ?(kind = Checker_reg) ?(recovery = false) ?(recheck = false)
    ~platform ~scale ~trials ~rng bench =
  let bench = detimed bench in
  let programs =
    Workloads.Spec.programs bench ~page_size:platform.Platform.page_size ~scale
  in
  let program = List.hd programs in
  (* Profile run: segment instruction counts. *)
  let profile =
    Parallaft.Runtime.run_protected ~platform
      ~config:(Parallaft.Config.parallaft ~platform ())
      ~program ()
  in
  let seg_insns =
    List.rev profile.Parallaft.Runtime.stats.Parallaft.Stats.segment_insn_deltas
    |> Array.of_list
  in
  let tally = fresh_tally () in
  if Array.length seg_insns = 0 then tally
  else begin
    (* Fault-free reference of the same configuration: recovery/recheck
       change forking and thus timing, and timing feeds rdtsc-style
       nondeterminism, so the oracle must compare like with like. *)
    let reference = run_reference ~platform ~recovery ~recheck ~program in
    let max_attempts = trials * attempts_factor in
    (* Pre-draw all plans sequentially: the RNG consumption is fixed. *)
    let plans = Array.make max_attempts (draw_plan ~rng ~seg_insns ~kind) in
    for i = 1 to max_attempts - 1 do
      plans.(i) <- draw_plan ~rng ~seg_insns ~kind
    done;
    let results : attempt option array = Array.make max_attempts None in
    let landed = ref 0 in
    let evaluated = ref 0 in
    let chunk_size = max (Util.Pool.jobs ()) 2 in
    while !landed < trials && !evaluated < max_attempts do
      let lo = !evaluated in
      let hi = min max_attempts (lo + chunk_size) - 1 in
      let idxs = List.init (hi - lo + 1) (fun k -> lo + k) in
      let rs =
        Util.Pool.map
          (fun i ->
            run_one ~platform ~recovery ~recheck ~reference ~program
              ~plan:plans.(i))
          idxs
      in
      List.iter2
        (fun i r ->
          results.(i) <- r;
          if r <> None then incr landed)
        idxs rs;
      evaluated := hi + 1
    done;
    (* First [trials] landed attempts in draw order — a prefix property
       unaffected by how many extra attempts the chunking evaluated. *)
    let taken = ref 0 in
    Array.iter
      (fun r ->
        match r with
        | Some a when !taken < trials ->
          incr taken;
          classify tally a.outcome;
          if a.recovered_run then tally.recovered <- tally.recovered + 1;
          if a.silent_corruption then tally.sdc <- tally.sdc + 1
        | _ -> ())
      results;
    tally
  end

(* ------------------------------------------------------------------ *)
(* The generalized grid: every target class x recovery off/on, on one
   benchmark, with the hardened pipeline (re-check + watchdog) active.
   Small per-cell trial counts keep the 12-cell grid tractable; the
   headline checker-register campaign above carries the paper-scale
   statistics. *)

let grid_trials ~quick = if quick then 2 else 4

let run_grid ~platform ~scale ~quick ~rng bench =
  let trials = grid_trials ~quick in
  let rows = ref [] in
  let totals = fresh_tally () in
  List.iter
    (fun kind ->
      List.iter
        (fun recovery ->
          Obs.Log.progress "  [fig10 grid] %s recovery=%b..."
            (target_kind_name kind) recovery;
          let t =
            campaign ~kind ~recovery ~recheck:true ~platform ~scale ~trials
              ~rng bench
          in
          add_tally ~into:totals t;
          rows :=
            [
              target_kind_name kind;
              (if recovery then "on" else "off");
              string_of_int (landed_total t);
              string_of_int (t.detected + t.exception_ + t.timeout);
              string_of_int t.transient;
              string_of_int t.recovered;
              string_of_int t.hard;
              string_of_int t.benign;
              string_of_int t.sdc;
            ]
            :: !rows)
        [ false; true ])
    all_target_kinds;
  Util.Table.print
    ~header:
      [
        "target";
        "recovery";
        "landed";
        "detected";
        "transient";
        "recovered";
        "hard";
        "benign";
        "sdc";
      ]
    (List.rev !rows);
  totals

let run ~platform ~scale ~quick =
  let benches = Suite.benchmarks ~quick in
  let rng = Util.Rng.create ~seed:0xFA417L in
  let scale = fi_scale scale in
  let trials = trials_per_benchmark ~quick in
  let rows = ref [] in
  let totals = fresh_tally () in
  List.iter
    (fun bench ->
      Obs.Log.progress "  [fig10] %s..." bench.Workloads.Spec.name;
      let t = campaign ~platform ~scale ~trials ~rng bench in
      add_tally ~into:totals t;
      let n = landed_total t in
      let pct x = if n = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int n in
      rows :=
        [
          Suite.short_name bench;
          Printf.sprintf "%.0f" (pct t.detected);
          Printf.sprintf "%.0f" (pct t.exception_);
          Printf.sprintf "%.0f" (pct t.timeout);
          Printf.sprintf "%.0f" (pct t.benign);
          string_of_int t.sdc;
          string_of_int n;
        ]
        :: !rows)
    benches;
  Util.Table.print
    ~header:
      [ "benchmark"; "detected%"; "exception%"; "timeout%"; "benign%"; "sdc"; "n" ]
    (List.rev !rows);
  let n = landed_total totals in
  let pct x = if n = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int n in
  Printf.printf
    "\nOverall: %.1f%% benign (paper: 43.3%%); every non-benign fault detected\n\
     (detected %.1f%%, exception %.1f%%, timeout %.1f%%; %d landed injections; \
     sdc = %d)\n"
    (pct totals.benign) (pct totals.detected) (pct totals.exception_)
    (pct totals.timeout) n totals.sdc;
  (* The generalized target x recovery grid on the first benchmark. *)
  Printf.printf "\nFault-model grid (%s, re-check + watchdog on):\n"
    (Suite.short_name (List.hd benches));
  let grid_totals = run_grid ~platform ~scale ~quick ~rng (List.hd benches) in
  Printf.printf
    "\nGrid: %d landed (%d transient, %d recovered, %d hard); sdc = %d\n"
    (landed_total grid_totals) grid_totals.transient grid_totals.recovered
    grid_totals.hard grid_totals.sdc
