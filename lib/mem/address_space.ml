type t = {
  pt : Page_table.t;
  psize : int;
  shift : int;
  mask : int;
  mutable last_frame : int;
  mutable last_cow : bool;
  mutable last_cow_old_frame : int; (* valid when last_cow *)
}

exception
  Segfault of {
    addr : int;
    write : bool;
  }

let log2_exact n =
  let rec go i = if 1 lsl i = n then Some i else if 1 lsl i > n then None else go (i + 1) in
  go 0

let of_page_table pt =
  let psize = Page_table.page_size pt in
  match log2_exact psize with
  | None -> invalid_arg "Address_space: page size must be a power of two"
  | Some shift ->
    { pt; psize; shift; mask = psize - 1; last_frame = -1; last_cow = false;
      last_cow_old_frame = -1 }

let create alloc = of_page_table (Page_table.create alloc)

let page_table t = t.pt
let page_size t = t.psize
let vpn_of_addr t addr = addr asr t.shift
let page_base t addr = addr land lnot t.mask
let last_frame t = t.last_frame
let last_cow t = t.last_cow
let last_cow_old_frame t = t.last_cow_old_frame

let map_range t ~addr ~len prot =
  if len < 0 then invalid_arg "Address_space.map_range: negative length";
  if len > 0 then
    let first = vpn_of_addr t addr and last = vpn_of_addr t (addr + len - 1) in
    for vpn = first to last do
      if not (Page_table.is_mapped t.pt ~vpn) then Page_table.map_zero t.pt ~vpn prot
    done

let unmap_range t ~addr ~len =
  if len > 0 then
    let first = vpn_of_addr t addr and last = vpn_of_addr t (addr + len - 1) in
    for vpn = first to last do
      if Page_table.is_mapped t.pt ~vpn then Page_table.unmap t.pt ~vpn
    done

let range_mapped t ~addr ~len =
  if len <= 0 then true
  else begin
    let first = vpn_of_addr t addr and last = vpn_of_addr t (addr + len - 1) in
    let rec go vpn = vpn > last || (Page_table.is_mapped t.pt ~vpn && go (vpn + 1)) in
    go first
  end

let read_page t addr =
  let vpn = addr asr t.shift in
  try
    let frame = Page_table.read_frame t.pt ~vpn in
    t.last_frame <- frame.Frame.id;
    frame.Frame.data
  with Page_table.Page_fault _ -> raise (Segfault { addr; write = false })

let write_page t addr =
  let vpn = addr asr t.shift in
  try
    let data, old_frame = Page_table.store_prepare t.pt ~vpn in
    (match old_frame with
    | Some id ->
      t.last_cow <- true;
      t.last_cow_old_frame <- id
    | None -> t.last_cow <- false);
    t.last_frame <- Page_table.frame_id t.pt ~vpn;
    data
  with Page_table.Page_fault _ -> raise (Segfault { addr; write = true })

let load8 t addr =
  let page = read_page t addr in
  Char.code (Bytes.unsafe_get page (addr land t.mask))

let store8 t addr v =
  let page = write_page t addr in
  Bytes.unsafe_set page (addr land t.mask) (Char.unsafe_chr (v land 0xFF))

let load64 t addr =
  let off = addr land t.mask in
  if off + 8 <= t.psize then
    let page = read_page t addr in
    Int64.to_int (Bytes.get_int64_le page off)
  else begin
    (* Straddles a page boundary: assemble byte-wise. *)
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (load8 t (addr + i)))
    done;
    Int64.to_int !v
  end

let store64 t addr v =
  let off = addr land t.mask in
  if off + 8 <= t.psize then begin
    let page = write_page t addr in
    Bytes.set_int64_le page off (Int64.of_int v)
  end
  else
    let v64 = Int64.of_int v in
    for i = 0 to 7 do
      store8 t (addr + i)
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (i * 8)) 0xFFL))
    done

let read_bytes t ~addr ~len =
  if len < 0 then invalid_arg "Address_space.read_bytes: negative length";
  let out = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land t.mask in
    let chunk = min (len - !i) (t.psize - off) in
    let page = read_page t a in
    Bytes.blit page off out !i chunk;
    i := !i + chunk
  done;
  out

let write_bytes t ~addr bytes =
  let len = Bytes.length bytes in
  let cows = ref 0 in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land t.mask in
    let chunk = min (len - !i) (t.psize - off) in
    let page = write_page t a in
    if t.last_cow then incr cows;
    Bytes.blit bytes !i page off chunk;
    i := !i + chunk
  done;
  !cows

let write_bytes_map t ~addr bytes =
  map_range t ~addr ~len:(Bytes.length bytes) Page_table.Read_write;
  ignore (write_bytes t ~addr bytes)

let fork t =
  {
    pt = Page_table.fork t.pt;
    psize = t.psize;
    shift = t.shift;
    mask = t.mask;
    last_frame = -1;
    last_cow = false;
    last_cow_old_frame = -1;
  }
