(** A random-replacement set of physical frame ids.

    The timing model approximates caches at page granularity: a cache
    level is a bounded set of frame numbers with (deterministic)
    random replacement — unlike FIFO/LRU, random replacement degrades
    smoothly on cyclic access patterns larger than the capacity, which
    is what big data-parallel working sets look like here. Keys are
    {e physical} frame ids, so COW-shared pages naturally hit in a shared
    level when the main process and a freshly forked checker touch the
    same data — and stop sharing once COW breaks the frame in two, exactly
    the contention behaviour the paper attributes to checkpointing. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val mem : t -> int -> bool

val touch : t -> int -> bool
(** [touch t frame] returns [true] on a hit; on a miss, inserts [frame],
    evicting a (deterministically) random resident when full, and
    returns [false]. *)

val admit : t -> int -> int option
(** Like {!touch}, but reports the frame evicted to make room
    ([Some victim] only on a miss that displaced a resident). Callers
    that maintain side tables keyed on residents — e.g.
    {!Page_digest_cache} — use the victim to drop the matching entry. *)

val remove : t -> int -> unit
(** [remove t frame] invalidates a resident frame (no-op if absent).
    Used when COW retires a frame from a cluster's working set: the
    dead copy would otherwise linger as cache pollution that an LRU
    policy would age out naturally. *)

val clear : t -> unit

val hits : t -> int
val misses : t -> int
(** Cumulative counters since creation or [clear]. *)
