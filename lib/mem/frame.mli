(** Physical page frames.

    A frame is one page of backing store plus a reference count: the
    number of page-table entries (across all processes) that map it.
    Copy-on-write works exactly as in the kernel: [fork] bumps refcounts,
    and the first store through any mapping of a frame with
    [refcount > 1] copies it (see {!Page_table.store_prepare}).

    The map count is also the basis of the paper's AArch64 dirty-page
    tracking (§4.4): a page mapped exactly once is private to its process
    and hence modified-or-new since the last fork. *)

type t = private {
  id : int;  (** unique physical frame number *)
  data : Bytes.t;
  mutable refcount : int;
  mutable generation : int;
      (** content version: bumped by {!Page_table.store_prepare} on every
          in-place write to an exclusively owned frame. Because frame ids
          are never reused, [(id, generation)] is a stable key for the
          frame's byte contents — the comparator memoizes per-page
          digests under it. *)
}

type allocator
(** Allocates frames and tracks global statistics. *)

val allocator : page_size:int -> allocator
(** [allocator ~page_size] builds a fresh allocator.

    @raise Invalid_argument if [page_size] is not a positive multiple
    of 8. *)

val page_size : allocator -> int

val alloc_zero : allocator -> t
(** A fresh zero-filled frame with [refcount = 1]. *)

val alloc_copy : allocator -> t -> t
(** [alloc_copy a f] is a fresh frame whose contents copy [f], with
    [refcount = 1]. Counts toward {!copies} (the COW statistic). *)

val incref : t -> unit

val decref : allocator -> t -> unit
(** Drop one reference; at zero the frame is accounted as freed.

    @raise Invalid_argument if the refcount is already zero. *)

val bump_generation : t -> unit
(** Advance the content version. Called by the write-side page walk when
    the store lands in place (no COW copy), invalidating any memoized
    digest of the old contents. *)

(** {2 Statistics} *)

val live_frames : allocator -> int
val total_allocated : allocator -> int
val copies : allocator -> int
(** Number of [alloc_copy] calls so far — i.e. COW page copies. *)
