type t = {
  id : int;
  data : Bytes.t;
  mutable refcount : int;
  mutable generation : int;
}

type allocator = {
  psize : int;
  mutable next_id : int;
  mutable live : int;
  mutable total : int;
  mutable copies : int;
}

let allocator ~page_size =
  if page_size <= 0 || page_size mod 8 <> 0 then
    invalid_arg "Frame.allocator: page_size must be a positive multiple of 8";
  { psize = page_size; next_id = 0; live = 0; total = 0; copies = 0 }

let page_size a = a.psize

let alloc a data =
  let id = a.next_id in
  a.next_id <- id + 1;
  a.live <- a.live + 1;
  a.total <- a.total + 1;
  { id; data; refcount = 1; generation = 0 }

let alloc_zero a = alloc a (Bytes.make a.psize '\000')

let alloc_copy a f =
  a.copies <- a.copies + 1;
  alloc a (Bytes.copy f.data)

let incref f = f.refcount <- f.refcount + 1

let decref a f =
  if f.refcount <= 0 then invalid_arg "Frame.decref: refcount already zero";
  f.refcount <- f.refcount - 1;
  if f.refcount = 0 then a.live <- a.live - 1

let bump_generation f = f.generation <- f.generation + 1

let live_frames a = a.live
let total_allocated a = a.total
let copies a = a.copies
