(** Per-process page tables with copy-on-write and dirty tracking.

    This is the substrate for three paper mechanisms:
    - COW checkpointing (§3.2): {!fork} shares every frame; the first
      store through either table copies the page.
    - Soft-dirty tracking (§4.4, x86_64 path): every store sets a per-PTE
      soft-dirty bit; the runtime clears all bits at segment start and
      reads the set at segment end.
    - Map-count tracking (§4.4, AArch64 PAGEMAP_SCAN path):
      {!uniquely_mapped} reports pages whose frame is mapped exactly once
      system-wide, i.e. modified-or-new since the fork. *)

type t

type protection = Read_only | Read_write

exception Page_fault of { vpn : int; write : bool }
(** Raised by accessors on unmapped pages and by write accessors on
    read-only pages. The machine turns this into a SIGSEGV. *)

val create : Frame.allocator -> t
(** An empty page table drawing frames from the given allocator. *)

val allocator : t -> Frame.allocator
val page_size : t -> int

val map_zero : t -> vpn:int -> protection -> unit
(** Map a fresh zero frame at [vpn].

    @raise Invalid_argument if [vpn] is already mapped. *)

val map_shared_frame : t -> vpn:int -> Frame.t -> protection -> unit
(** Map an existing frame (increments its refcount). Used by the loader
    to share immutable file content and by tests.

    @raise Invalid_argument if [vpn] is already mapped. *)

val unmap : t -> vpn:int -> unit
(** @raise Invalid_argument if [vpn] is not mapped. *)

val is_mapped : t -> vpn:int -> bool
val protection : t -> vpn:int -> protection option
val set_protection : t -> vpn:int -> protection -> unit

val frame_id : t -> vpn:int -> int
(** Physical frame number backing [vpn] — the cache model's key.

    @raise Page_fault on unmapped [vpn]. *)

val read_frame : t -> vpn:int -> Frame.t
(** The backing frame, for read-only inspection (state comparison).

    @raise Page_fault on unmapped [vpn]. *)

val store_prepare : t -> vpn:int -> Bytes.t * int option
(** [store_prepare t ~vpn] performs the write-side page walk: checks
    writability, breaks COW sharing if the frame is shared, sets the
    soft-dirty bit, and returns the (now private or exclusively owned)
    page bytes together with [Some old_frame_id] iff a COW copy
    happened — the caller charges COW cycle cost and evicts the retired
    frame from its caches when it did.

    @raise Page_fault on unmapped or read-only [vpn]. *)

val read_bytes_at : t -> vpn:int -> Bytes.t
(** Page bytes for reading.

    @raise Page_fault on unmapped [vpn]. *)

val copy_page_at : t -> vpn:int -> Bytes.t
(** Detached copy of the page bytes — payload extraction for the
    segment log (the live frame keeps mutating after the snapshot).

    @raise Page_fault on unmapped [vpn]. *)

val frame_view : t -> vpn:int -> int * int * Bytes.t
(** [frame_view t ~vpn] is [(frame_id, generation, data)] for the frame
    backing [vpn] — everything the comparator needs in one walk: the id
    for the frame-identity short-circuit, the [(id, generation)] pair as
    the digest-memoization key, and the bytes for a cache miss.

    @raise Page_fault on unmapped [vpn]. *)

val fork : t -> t
(** COW fork: the child shares every frame; all refcounts increase.
    Soft-dirty bits are copied (the child inherits them, as Linux does).
    The caller charges fork cost proportional to {!mapped_count}. *)

val free_all : t -> unit
(** Drop every mapping (process exit). *)

(** {2 Dirty-page tracking} *)

val clear_soft_dirty : t -> unit
val soft_dirty_pages : t -> int array
(** Sorted array of vpns with the soft-dirty bit set. Dirty sets are
    arrays (not lists) end to end: they are produced at every segment
    boundary and consumed by merge/compare loops that want flat,
    allocation-light storage. *)

val uniquely_mapped : t -> int array
(** Sorted array of vpns whose frame has map count 1 (the PAGEMAP_SCAN
    method). *)

(** {2 Accounting} *)

val mapped_count : t -> int
val pss_bytes : t -> int
(** Proportional set size: [page_size / refcount] summed over mappings. *)

val iter_mapped : t -> (vpn:int -> Frame.t -> unit) -> unit
val mapped_vpns : t -> int array
(** Sorted. *)
