(** Bounded memo of per-frame page digests, keyed on
    [(frame id, generation)].

    The state comparator hashes whole pages; between segment boundaries
    most frames are untouched, so their digests can be reused instead of
    re-read and re-hashed. Frame ids are never reused and every in-place
    write bumps the frame's generation ({!Frame.bump_generation} via
    {!Page_table.store_prepare}), so a [(id, generation)] pair identifies
    immutable byte contents: a hit is always safe.

    Frame ids are only unique within one {!Frame.allocator}: never share
    a cache across allocators (the coordinator keeps one per run, and
    all of a run's address spaces fork from one allocator).

    Residency is bounded by an underlying {!Fifo_cache} (deterministic
    random replacement); evicting a frame drops its digest, keeping the
    memo's footprint at [capacity] entries. Entries for dead frames are
    harmless — their ids never recur — and age out under eviction
    pressure. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val find : t -> frame:int -> generation:int -> int64 option
(** [find t ~frame ~generation] returns the memoized digest iff one is
    resident for exactly this content version; a stale generation counts
    (and is reported) as a miss. *)

val store : t -> frame:int -> generation:int -> int64 -> unit
(** Insert (or refresh) the digest for a frame's current content
    version, evicting a random resident when full. *)

val clear : t -> unit

val hits : t -> int
val misses : t -> int
(** Cumulative {!find} outcomes since creation or [clear]. *)
