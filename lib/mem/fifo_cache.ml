type t = {
  cap : int;
  resident : (int, int) Hashtbl.t; (* frame -> slot *)
  slots : int array; (* slot -> frame, -1 = free *)
  mutable filled : int;
  mutable free : int list; (* slots vacated by [remove] *)
  mutable rng_state : int; (* xorshift for victim selection *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Fifo_cache.create: capacity <= 0";
  {
    cap = capacity;
    resident = Hashtbl.create (2 * capacity);
    slots = Array.make capacity (-1);
    filled = 0;
    free = [];
    rng_state = 0x2545F491;
    hits = 0;
    misses = 0;
  }

let capacity t = t.cap

let mem t frame = Hashtbl.mem t.resident frame

(* Deterministic xorshift; random replacement makes the miss rate degrade
   smoothly as the resident set outgrows capacity, instead of the
   all-or-nothing cliff FIFO/LRU exhibit on cyclic access patterns. *)
let next_victim t =
  let x = t.rng_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = (x lxor (x lsl 17)) land max_int in
  t.rng_state <- x;
  x mod t.cap

(* Insert a non-resident [frame], returning the resident it displaced. *)
let install t frame =
  let slot =
    match t.free with
    | s :: rest ->
      t.free <- rest;
      s
    | [] ->
      if t.filled < t.cap then begin
        let s = t.filled in
        t.filled <- t.filled + 1;
        s
      end
      else next_victim t
  in
  let old = t.slots.(slot) in
  let evicted =
    if old >= 0 then begin
      Hashtbl.remove t.resident old;
      Some old
    end
    else None
  in
  t.slots.(slot) <- frame;
  Hashtbl.replace t.resident frame slot;
  evicted

let touch t frame =
  if Hashtbl.mem t.resident frame then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    ignore (install t frame);
    false
  end

let admit t frame =
  if Hashtbl.mem t.resident frame then begin
    t.hits <- t.hits + 1;
    None
  end
  else begin
    t.misses <- t.misses + 1;
    install t frame
  end

let remove t frame =
  match Hashtbl.find_opt t.resident frame with
  | None -> ()
  | Some slot ->
    Hashtbl.remove t.resident frame;
    t.slots.(slot) <- -1;
    t.free <- slot :: t.free

let clear t =
  Hashtbl.reset t.resident;
  Array.fill t.slots 0 t.cap (-1);
  t.filled <- 0;
  t.free <- [];
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses
