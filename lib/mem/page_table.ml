type protection = Read_only | Read_write

type pte = {
  mutable frame : Frame.t;
  mutable prot : protection;
  mutable soft_dirty : bool;
}

type t = {
  alloc : Frame.allocator;
  entries : (int, pte) Hashtbl.t;
}

exception Page_fault of { vpn : int; write : bool }

let create alloc = { alloc; entries = Hashtbl.create 256 }

let allocator t = t.alloc
let page_size t = Frame.page_size t.alloc

let check_unmapped t vpn =
  if Hashtbl.mem t.entries vpn then
    invalid_arg (Printf.sprintf "Page_table: vpn %d already mapped" vpn)

let map_zero t ~vpn prot =
  check_unmapped t vpn;
  Hashtbl.replace t.entries vpn
    { frame = Frame.alloc_zero t.alloc; prot; soft_dirty = true }

let map_shared_frame t ~vpn frame prot =
  check_unmapped t vpn;
  Frame.incref frame;
  Hashtbl.replace t.entries vpn { frame; prot; soft_dirty = false }

let unmap t ~vpn =
  match Hashtbl.find_opt t.entries vpn with
  | None -> invalid_arg (Printf.sprintf "Page_table.unmap: vpn %d not mapped" vpn)
  | Some pte ->
    Frame.decref t.alloc pte.frame;
    Hashtbl.remove t.entries vpn

let is_mapped t ~vpn = Hashtbl.mem t.entries vpn

let protection t ~vpn =
  Option.map (fun pte -> pte.prot) (Hashtbl.find_opt t.entries vpn)

let set_protection t ~vpn prot =
  match Hashtbl.find_opt t.entries vpn with
  | None ->
    invalid_arg (Printf.sprintf "Page_table.set_protection: vpn %d not mapped" vpn)
  | Some pte -> pte.prot <- prot

let find t vpn ~write =
  match Hashtbl.find_opt t.entries vpn with
  | Some pte -> pte
  | None -> raise (Page_fault { vpn; write })

let frame_id t ~vpn = (find t vpn ~write:false).frame.Frame.id

let read_frame t ~vpn = (find t vpn ~write:false).frame

let store_prepare t ~vpn =
  let pte = find t vpn ~write:true in
  (match pte.prot with
  | Read_write -> ()
  | Read_only -> raise (Page_fault { vpn; write = true }));
  let old_frame =
    if pte.frame.Frame.refcount > 1 then begin
      let old_id = pte.frame.Frame.id in
      let fresh = Frame.alloc_copy t.alloc pte.frame in
      Frame.decref t.alloc pte.frame;
      pte.frame <- fresh;
      Some old_id
    end
    else begin
      (* In-place write to an exclusively owned frame: the frame id stays
         the same while the bytes change, so the content version must
         advance to invalidate memoized digests. *)
      Frame.bump_generation pte.frame;
      None
    end
  in
  pte.soft_dirty <- true;
  (pte.frame.Frame.data, old_frame)

let read_bytes_at t ~vpn = (find t vpn ~write:false).frame.Frame.data

let copy_page_at t ~vpn = Bytes.copy (read_bytes_at t ~vpn)

let frame_view t ~vpn =
  let f = (find t vpn ~write:false).frame in
  (f.Frame.id, f.Frame.generation, f.Frame.data)

let fork t =
  let child = { alloc = t.alloc; entries = Hashtbl.create (Hashtbl.length t.entries) } in
  Hashtbl.iter
    (fun vpn pte ->
      Frame.incref pte.frame;
      Hashtbl.replace child.entries vpn
        { frame = pte.frame; prot = pte.prot; soft_dirty = pte.soft_dirty })
    t.entries;
  child

let free_all t =
  Hashtbl.iter (fun _ pte -> Frame.decref t.alloc pte.frame) t.entries;
  Hashtbl.reset t.entries

let clear_soft_dirty t =
  Hashtbl.iter (fun _ pte -> pte.soft_dirty <- false) t.entries

let int_compare (a : int) (b : int) = compare a b

(* Two passes over the table (count, then fill) so the result lands in a
   right-sized array with no intermediate list — dirty sets are collected
   at every segment boundary and flow straight into the comparator. *)
let sorted_keys_where t pred =
  let n =
    Hashtbl.fold (fun _ pte acc -> if pred pte then acc + 1 else acc) t.entries 0
  in
  let out = Array.make n 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun vpn pte ->
      if pred pte then begin
        out.(!i) <- vpn;
        incr i
      end)
    t.entries;
  Array.sort int_compare out;
  out

let soft_dirty_pages t = sorted_keys_where t (fun pte -> pte.soft_dirty)

let uniquely_mapped t =
  sorted_keys_where t (fun pte -> pte.frame.Frame.refcount = 1)

let mapped_count t = Hashtbl.length t.entries

let pss_bytes t =
  let psize = page_size t in
  Hashtbl.fold
    (fun _ pte acc -> acc + (psize / pte.frame.Frame.refcount))
    t.entries 0

let iter_mapped t f = Hashtbl.iter (fun vpn pte -> f ~vpn pte.frame) t.entries

let mapped_vpns t = sorted_keys_where t (fun _ -> true)
