type t = {
  frames : Fifo_cache.t; (* bounded resident set; drives eviction *)
  digests : (int, int * int64) Hashtbl.t; (* frame id -> (generation, digest) *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  {
    frames = Fifo_cache.create ~capacity;
    digests = Hashtbl.create (2 * capacity);
    hits = 0;
    misses = 0;
  }

let capacity t = Fifo_cache.capacity t.frames

let find t ~frame ~generation =
  match Hashtbl.find_opt t.digests frame with
  | Some (g, d) when g = generation ->
    t.hits <- t.hits + 1;
    Some d
  | Some _ | None ->
    (* Absent, or a stale digest of an earlier content version of the
       same frame (an in-place write bumped the generation). *)
    t.misses <- t.misses + 1;
    None

let store t ~frame ~generation digest =
  (match Fifo_cache.admit t.frames frame with
  | Some victim -> Hashtbl.remove t.digests victim
  | None -> ());
  Hashtbl.replace t.digests frame (generation, digest)

let clear t =
  Fifo_cache.clear t.frames;
  Hashtbl.reset t.digests;
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses
