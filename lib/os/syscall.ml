let prot_read = 1
let prot_write = 2
let map_private = 1
let map_anon = 2
let map_fixed = 4
let o_create = 1

let nr_exit = 0
let nr_write = 1
let nr_read = 2
let nr_open = 3
let nr_close = 4
let nr_brk = 5
let nr_mmap = 6
let nr_munmap = 7
let nr_mprotect = 8
let nr_getpid = 9
let nr_gettime = 10
let nr_sigaction = 11
let nr_sigreturn = 12
let nr_getrandom = 13
let nr_patch_code = 14

let number_of_name = function
  | "exit" -> Some nr_exit
  | "write" -> Some nr_write
  | "read" -> Some nr_read
  | "open" -> Some nr_open
  | "close" -> Some nr_close
  | "brk" -> Some nr_brk
  | "mmap" -> Some nr_mmap
  | "munmap" -> Some nr_munmap
  | "mprotect" -> Some nr_mprotect
  | "getpid" -> Some nr_getpid
  | "gettime" -> Some nr_gettime
  | "sigaction" -> Some nr_sigaction
  | "sigreturn" -> Some nr_sigreturn
  | "getrandom" -> Some nr_getrandom
  | "patch_code" -> Some nr_patch_code
  | _ -> None

type call =
  | Exit of int
  | Write of { fd : int; addr : int; len : int }
  | Read of { fd : int; addr : int; len : int }
  | Open of { path_addr : int; path_len : int; flags : int }
  | Close of { fd : int }
  | Brk of { addr : int }
  | Mmap of { addr : int; len : int; prot : int; flags : int; fd : int; off : int }
  | Munmap of { addr : int; len : int }
  | Mprotect of { addr : int; len : int; prot : int }
  | Getpid
  | Gettime
  | Sigaction of { signum : int; handler_pc : int }
  | Sigreturn
  | Getrandom of { addr : int; len : int }
  | Patch_code of { pc : int; word : int }
  | Unknown of int

let decode cpu =
  let r i = Machine.Cpu.get_reg cpu i in
  let nonneg v = max 0 v in
  let nr = r 0 in
  if nr = nr_exit then Exit (r 1)
  else if nr = nr_write then Write { fd = r 1; addr = r 2; len = nonneg (r 3) }
  else if nr = nr_read then Read { fd = r 1; addr = r 2; len = nonneg (r 3) }
  else if nr = nr_open then
    Open { path_addr = r 1; path_len = nonneg (r 2); flags = r 3 }
  else if nr = nr_close then Close { fd = r 1 }
  else if nr = nr_brk then Brk { addr = r 1 }
  else if nr = nr_mmap then
    Mmap
      { addr = r 1; len = nonneg (r 2); prot = r 3; flags = r 4; fd = r 5;
        off = 0 }
  else if nr = nr_munmap then Munmap { addr = r 1; len = nonneg (r 2) }
  else if nr = nr_mprotect then
    Mprotect { addr = r 1; len = nonneg (r 2); prot = r 3 }
  else if nr = nr_getpid then Getpid
  else if nr = nr_gettime then Gettime
  else if nr = nr_sigaction then Sigaction { signum = r 1; handler_pc = r 2 }
  else if nr = nr_sigreturn then Sigreturn
  else if nr = nr_getrandom then Getrandom { addr = r 1; len = nonneg (r 2) }
  else if nr = nr_patch_code then Patch_code { pc = r 1; word = r 2 }
  else Unknown nr

let name = function
  | Exit _ -> "exit"
  | Write _ -> "write"
  | Read _ -> "read"
  | Open _ -> "open"
  | Close _ -> "close"
  | Brk _ -> "brk"
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Mprotect _ -> "mprotect"
  | Getpid -> "getpid"
  | Gettime -> "gettime"
  | Sigaction _ -> "sigaction"
  | Sigreturn -> "sigreturn"
  | Getrandom _ -> "getrandom"
  | Patch_code _ -> "patch_code"
  | Unknown n -> Printf.sprintf "unknown(%d)" n

type category =
  | Globally_effectful
  | Process_local
  | Non_effectful

let categorize = function
  | Exit _ | Write _ | Read _ | Open _ | Close _ -> Globally_effectful
  | Brk _ | Mmap _ | Munmap _ | Mprotect _ | Sigaction _ | Sigreturn
  | Patch_code _ ->
    (* patch_code rewrites only the caller's code image, so checkers
       re-execute it to patch their own copy — like mprotect. *)
    Process_local
  | Getpid | Gettime | Getrandom _ -> Non_effectful
  | Unknown _ -> Process_local
