(** The simulated operating system and discrete-time execution engine.

    The engine owns the cores of a {!Platform.t}, a process table, the
    kernel (syscalls, fork, signals, mmap/ASLR), the cache/DRAM timing
    model, DVFS, and the energy meter. Time advances in fixed quanta
    (default 20 µs); within a quantum each core executes its current
    process until the budget runs out or the process traps.

    {b Tracing.} A process spawned with a [tracer] is the ptrace analogue:
    every trap (syscall entry, nondeterministic instruction, breakpoint,
    counter overflow, signal delivery, fault, halt) stops the process and
    synchronously invokes the tracer callback, which inspects and mutates
    the process through this API and decides whether to {!resume} it.
    Every traced stop costs [tracer_stop_ns] of wall-clock latency,
    accounted as runtime work — this is what makes a getpid loop two
    orders of magnitude slower under tracing (§5.7). Untraced processes
    get default kernel behaviour (syscalls executed, faults fatal).

    {b Determinism.} All model randomness (ASLR, skid, urandom, …) comes
    from the seed; equal seeds and equal tracer behaviour give bit-equal
    simulations. *)

type t

type pid = int

type pstate =
  | Runnable
  | Stopped  (** held by the tracer; skipped by the scheduler *)
  | Exited of int

type event =
  | Syscall_entry of Syscall.call
      (** stopped {e on} the syscall instruction, before any effect *)
  | Nondet of Isa.Insn.t  (** trapped nondeterministic instruction *)
  | Breakpoint
  | Branch_overflow
  | Cycle_overflow
  | Insn_overflow
  | Signal of Sig_num.t  (** a signal is about to be delivered *)
  | Fault of Machine.Cpu.fault
  | Halted  (** executed [halt] without an exit syscall *)

type tracer = t -> pid -> event -> unit

val create :
  ?quantum_ns:int ->
  ?block_cache:int ->
  platform:Platform.t ->
  seed:int64 ->
  unit ->
  t
(** [block_cache] is the decoded-block cache capacity (in blocks) given
    to every CPU this engine spawns ([<= 0] disables; default
    {!Machine.Cpu.default_block_cache}) — an interpreter speedup with no
    simulated-behaviour effect. *)

val platform : t -> Platform.t
val fs : t -> File.fs
val now_ns : t -> int

val time_ns : t -> int
(** Fine-grained simulated time: the timestamp of the event currently
    being dispatched (within the running quantum), falling back to
    {!now_ns} between quanta. Observability emit sites use this so that
    traces resolve ordering inside a quantum. Purely simulated — never
    wall clock — so it is reproducible from the seed. *)

val set_obs : t -> Obs.Sink.t -> unit
(** Attach an observability sink: the engine then emits [fork] and
    [exit] instants (per-process tracks), [dvfs.cluster*] counter events
    on level changes, and [fork.cost_ns]/[fork.pages] metrics. Without a
    sink every emit site is a no-op. *)

val frame_allocator : t -> Mem.Frame.allocator

(** {2 Topology and DVFS} *)

val n_cores : t -> int

val cluster_of_core : t -> int -> int
(** 0 = big, 1 = little. *)

val big_cores : t -> int list
val little_cores : t -> int list

val set_dvfs_level : t -> cluster:int -> level:int -> unit
(** Clamp-free: @raise Invalid_argument on an out-of-range level. *)

val dvfs_level : t -> cluster:int -> int

(** {2 Processes} *)

val spawn :
  t ->
  ?tracer:tracer ->
  ?prng:Util.Rng.t ->
  program:Isa.Program.t ->
  core:int ->
  unit ->
  pid
(** Load a program: map its data segments, set the break, open
    stdout/stderr, randomize the mmap base, and enqueue the process
    runnable on [core]. Traced processes trap nondeterministic
    instructions; untraced ones execute them natively.

    [prng], when given, becomes the process's private entropy stream:
    ASLR (spawn base and per-mmap gaps), getrandom bytes and the CPU's
    skid rng draw from it instead of the engine-global stream, so the
    process's address-space layout depends only on its own stream — the
    fleet derives one per tenant from the root seed, making each
    tenant's run reproducible regardless of how other tenants' draws
    interleave. Forked children inherit a {e copy} (a rollback snapshot
    promoted to main re-draws exactly what the original drew). Without
    [prng] the engine-global draw order is preserved bit for bit. *)

val fork_process : t -> pid -> pid
(** COW-fork a traced, currently stopped process (the runtime's
    checkpoint/checker creation). The child starts [Stopped] on the
    parent's core with the parent's tracer; fork cost (base + per mapped
    page) is charged to the parent as system time and stop latency. *)

val state : t -> pid -> pstate
val cpu : t -> pid -> Machine.Cpu.t
val aspace : t -> pid -> Mem.Address_space.t

val resume : t -> pid -> unit
(** [Stopped] -> [Runnable]. No-op on a runnable process.
    @raise Invalid_argument on an exited process. *)

val suspend : t -> pid -> unit
(** [Runnable] -> [Stopped] (the tracer takes control outside an event,
    e.g. right after spawning the tracee). No-op on a stopped process.
    @raise Invalid_argument on an exited process. *)

val force_exit : t -> pid -> status:int -> unit
(** Retire a process with the given status without running an exit
    syscall (used when a tracee stops on [halt]). *)

val kill : t -> pid -> unit
(** Terminate immediately (SIGKILL): frees the address space, records an
    exit status of [137]. No-op if already exited. *)

val set_core : t -> pid -> core:int -> unit
(** Migrate (repin) a process. Takes effect at the next scheduling
    point. *)

val core_of : t -> pid -> int

val send_signal : t -> pid -> Sig_num.t -> unit
(** Queue an asynchronous (external) signal; the target will stop with a
    {!Signal} event (traced) or receive default delivery (untraced)
    before it next runs. *)

val deliver_signal_now : t -> pid -> Sig_num.t -> unit
(** Immediate delivery to a stopped process: jump to the registered
    handler (saving pc + registers for [sigreturn]) or apply the default
    action (termination). Used by the runtime to deliver external
    signals at a replayed execution point (§4.3.3). *)

val pending_syscall : t -> pid -> Syscall.call
(** Decode the syscall a process is stopped on. *)

val do_syscall : t -> pid -> unit
(** Kernel-execute the pending syscall of a stopped process: performs
    its effects, writes the result register, advances the pc, charges
    kernel time. The pass-through path for main-process syscalls. *)

val complete_syscall : t -> pid -> result:int -> unit
(** Tracer-emulated syscall: skip the kernel entirely, set the result
    register and advance past the syscall instruction. The replay path
    for checker syscalls (effects are injected separately through
    {!aspace}). *)

val delay : t -> pid -> ns:float -> unit
(** Extend the process's stop latency by [ns] (e.g. state-comparison
    hashing time); accounted as runtime work. *)

val charge_sys_cycles : t -> pid -> int -> unit
(** Account extra kernel work (in big-core effective cycles) to the
    process: adds system time and stop latency. *)

(** {2 Time-based callbacks} *)

val add_tick : t -> every_ns:int -> (t -> unit) -> unit
(** Invoke a callback at quantum granularity, approximately every
    [every_ns]; used by the pacer (§4.5) and the measurement samplers. *)

(** {2 Running} *)

val step_quantum : t -> unit

val run : ?max_ns:int -> t -> unit
(** Step until no live (non-exited) process remains or simulated time
    exceeds [max_ns] (default 10^12 ns). Stopped processes count as live:
    a tracer that never resumes its tracee will hit the bound. *)

val live_processes : t -> int

(** {2 Measurement} *)

type proc_stats = {
  state : pstate;
  user_ns : float;
  sys_ns : float;
  started_ns : int;
  ended_ns : int;  (** meaningful once exited; otherwise [now_ns] *)
}

val proc_stats : t -> pid -> proc_stats

val energy_j : t -> float
(** Total SoC + DRAM energy integrated so far. *)

val energy_breakdown_j : t -> (string * float) list
(** [("big", _); ("little", _); ("dram", _); ("static", _)]. *)

val runtime_work_ns : t -> float
(** Accumulated tracer-stop and tracer-charged latency — the runtime's
    own footprint. *)

val pss_bytes : t -> pid list -> int
(** Summed proportional set size of the given live processes. *)

val dram_accesses : t -> int

val dram_mult : t -> float
(** Current DRAM-contention latency multiplier. *)

val l2_stats : t -> cluster:int -> int * int
(** (hits, misses) of a cluster's shared L2 since engine creation. *)

val block_cache_totals : t -> int * int * int
(** Summed [(hits, misses, invalidations)] of the decoded-block caches
    of every process ever spawned or forked (exited ones included);
    all zero when the cache is disabled. *)

val output : t -> string
(** Captured stdout of the whole simulation. *)
