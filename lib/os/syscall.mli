(** The syscall ABI: numbers, argument decoding and classification.

    Convention: the syscall number is in [r0], arguments in [r1]-[r5],
    and the result is written back to [r0]. The decoded {!call} is what
    both the kernel and the Parallaft syscall handlers consume; the
    {!category} classification mirrors §4.3.1 of the paper
    (globally-effectful / process-locally-effectful / non-effectful). *)

(** mmap prot bits. *)
val prot_read : int

val prot_write : int

(** mmap flag bits. *)
val map_private : int

val map_anon : int
val map_fixed : int

(** open flag bits. *)
val o_create : int

type call =
  | Exit of int
  | Write of { fd : int; addr : int; len : int }
  | Read of { fd : int; addr : int; len : int }
  | Open of { path_addr : int; path_len : int; flags : int }
  | Close of { fd : int }
  | Brk of { addr : int }
  | Mmap of { addr : int; len : int; prot : int; flags : int; fd : int; off : int }
  | Munmap of { addr : int; len : int }
  | Mprotect of { addr : int; len : int; prot : int }
  | Getpid
  | Gettime  (** nanosecond clock — the gettimeofday stand-in *)
  | Sigaction of { signum : int; handler_pc : int }
  | Sigreturn
  | Getrandom of { addr : int; len : int }
  | Patch_code of { pc : int; word : int }
      (** overwrite the caller's instruction at [pc] with the
          {!Isa.Insn.decode} of [word] — the Harvard-layout channel for
          self-modifying code (the data space cannot reach the
          instruction stream, so a code write must cross the kernel) *)
  | Unknown of int

val number_of_name : string -> int option
(** For assembly authors: ["exit"], ["write"], ["read"], ["open"],
    ["close"], ["brk"], ["mmap"], ["munmap"], ["mprotect"], ["getpid"],
    ["gettime"], ["sigaction"], ["sigreturn"], ["getrandom"],
    ["patch_code"]. *)

val nr_exit : int
val nr_write : int
val nr_read : int
val nr_open : int
val nr_close : int
val nr_brk : int
val nr_mmap : int
val nr_munmap : int
val nr_mprotect : int
val nr_getpid : int
val nr_gettime : int
val nr_sigaction : int
val nr_sigreturn : int
val nr_getrandom : int
val nr_patch_code : int

val decode : Machine.Cpu.t -> call
(** Decode the pending syscall from the register file. The mmap length,
    write length etc. are clamped to non-negative values; nonsense fds or
    addresses surface as kernel errors, not decode failures. *)

val name : call -> string

type category =
  | Globally_effectful
      (** effects escape the sphere of replication (IO): executed once by
          the main process; checked and replayed for checkers *)
  | Process_local
      (** affects only the calling process's state (memory layout,
          process properties): executed by both main and checkers *)
  | Non_effectful
      (** no external effect but nondeterministic output (getpid,
          gettime, getrandom): recorded and replayed *)

val categorize : call -> category
