type pid = int

type pstate =
  | Runnable
  | Stopped
  | Exited of int

type event =
  | Syscall_entry of Syscall.call
  | Nondet of Isa.Insn.t
  | Breakpoint
  | Branch_overflow
  | Cycle_overflow
  | Insn_overflow
  | Signal of Sig_num.t
  | Fault of Machine.Cpu.fault
  | Halted

type t = {
  plat : Platform.t;
  quantum_ns : int;
  block_cache : int; (* decoded-block cache capacity for spawned CPUs *)
  rng : Util.Rng.t;
  alloc : Mem.Frame.allocator;
  filesystem : File.fs;
  mutable now : int;
  procs : (pid, process) Hashtbl.t;
  mutable next_pid : int;
  cores : core array;
  clusters : cluster_state array;
  mutable dram_mult : float;
  mutable dram_quantum_accesses : int;
  mutable dram_total : int;
  mutable energy_big : float;
  mutable energy_little : float;
  mutable energy_dram : float;
  mutable energy_static : float;
  mutable runtime_work : float;
  mutable ticks : tick list;
  mutable live : int;
  mutable event_time : float;
  mutable obs : Obs.Sink.t option;
}

and tracer = t -> pid -> event -> unit

and process = {
  pid : pid;
  cpu : Machine.Cpu.t;
  tracer : tracer option;
  mutable state : pstate;
  mutable core : int;
  mutable resume_at_ns : float;
  fd_table : (int, File.open_file) Hashtbl.t;
  mutable next_fd : int;
  mutable brk : int;
  mutable mmap_cursor : int;
  (* Per-process entropy stream (fleet mode): when set, ASLR gap and
     getrandom draws come from here instead of the engine-global rng, so
     a process's address-space layout depends only on its own stream —
     not on how other tenants' draws interleave with it. [None] (the
     default) preserves the engine-global draw order bit for bit. *)
  prng : Util.Rng.t option;
  sig_handlers : (int, int) Hashtbl.t;
  mutable sig_stack : (int * int array) list;
  pending_signals : int Queue.t;
  mutable user_ns : float;
  mutable sys_ns : float;
  started_ns : int;
  mutable ended_ns : int;
}

and core = {
  core_id : int;
  cluster_idx : int;
  l1 : Mem.Fifo_cache.t;
  mutable assigned : pid list;
  mutable busy_ns : float;
}

and cluster_state = {
  desc : Platform.cluster;
  mutable level : int;
  l2 : Mem.Fifo_cache.t;
}

and tick = {
  every_ns : int;
  mutable next_at : int;
  fn : t -> unit;
}

let create ?(quantum_ns = 20_000) ?block_cache ~platform ~seed () =
  let block_cache =
    match block_cache with
    | Some c -> c
    | None -> Machine.Cpu.default_block_cache ()
  in
  let rng = Util.Rng.create ~seed in
  let clusters =
    Array.map
      (fun (c : Platform.cluster) ->
        {
          desc = c;
          level = c.Platform.default_level;
          l2 = Mem.Fifo_cache.create ~capacity:c.Platform.l2_pages;
        })
      platform.Platform.clusters
  in
  let cores =
    let rec build cluster_idx offset acc =
      if cluster_idx >= Array.length platform.Platform.clusters then
        List.rev acc |> Array.of_list
      else
        let c = platform.Platform.clusters.(cluster_idx) in
        let cores_here =
          List.init c.Platform.n_cores (fun i ->
              {
                core_id = offset + i;
                cluster_idx;
                l1 = Mem.Fifo_cache.create ~capacity:c.Platform.l1_pages;
                assigned = [];
                busy_ns = 0.0;
              })
        in
        build (cluster_idx + 1) (offset + c.Platform.n_cores)
          (List.rev_append cores_here acc)
    in
    build 0 0 []
  in
  {
    plat = platform;
    quantum_ns;
    block_cache;
    rng;
    alloc = Mem.Frame.allocator ~page_size:platform.Platform.page_size;
    filesystem = File.create_fs ~rng:(Util.Rng.split rng);
    now = 0;
    procs = Hashtbl.create 32;
    next_pid = 1;
    cores;
    clusters;
    dram_mult = 1.0;
    dram_quantum_accesses = 0;
    dram_total = 0;
    energy_big = 0.0;
    energy_little = 0.0;
    energy_dram = 0.0;
    energy_static = 0.0;
    runtime_work = 0.0;
    ticks = [];
    live = 0;
    event_time = 0.0;
    obs = None;
  }

let platform t = t.plat
let fs t = t.filesystem
let now_ns t = t.now
let frame_allocator t = t.alloc

(* Fine-grained simulated time: within a quantum [event_time] tracks the
   moment of the event being dispatched, while [now] only advances per
   quantum. Observability timestamps use this so traces resolve events
   inside a quantum. *)
let time_ns t = int_of_float (Float.max t.event_time (float_of_int t.now))

let set_obs t sink = t.obs <- Some sink

let obs_emit t ~track ~phase ?args name =
  match t.obs with
  | None -> ()
  | Some s -> Obs.Sink.emit s ~ts_ns:(time_ns t) ~track ~phase ?args name

let obs_observe t name v =
  match t.obs with
  | None -> ()
  | Some s -> Obs.Sink.observe s name v

let n_cores t = Array.length t.cores
let cluster_of_core t core = t.cores.(core).cluster_idx

let cores_of_cluster t idx =
  Array.to_list t.cores
  |> List.filter_map (fun c -> if c.cluster_idx = idx then Some c.core_id else None)

let big_cores t = cores_of_cluster t 0
let little_cores t = cores_of_cluster t 1

let set_dvfs_level t ~cluster ~level =
  let cl = t.clusters.(cluster) in
  if level < 0 || level >= Array.length cl.desc.Platform.freq_levels_mhz then
    invalid_arg "Engine.set_dvfs_level: level out of range";
  if cl.level <> level then
    obs_emit t ~track:Obs.Trace.Run ~phase:Obs.Trace.Counter
      ~args:[ ("level", Obs.Trace.Int level) ]
      (Printf.sprintf "dvfs.cluster%d" cluster);
  cl.level <- level

let dvfs_level t ~cluster = t.clusters.(cluster).level

let proc t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Engine: unknown pid %d" pid)

let state t pid = (proc t pid).state
let cpu t pid = (proc t pid).cpu
let aspace t pid = Machine.Cpu.aspace (proc t pid).cpu
let core_of t pid = (proc t pid).core

let eff_hz_of_core t core =
  let cl = t.clusters.(core.cluster_idx) in
  Platform.effective_hz cl.desc ~level:cl.level

let cycles_to_ns t core cycles = float_of_int cycles *. 1e9 /. eff_hz_of_core t core

let resume t pid =
  let p = proc t pid in
  match p.state with
  | Stopped -> p.state <- Runnable
  | Runnable -> ()
  | Exited _ -> invalid_arg "Engine.resume: process has exited"

let remove_from_core t p =
  let core = t.cores.(p.core) in
  core.assigned <- List.filter (fun pid -> pid <> p.pid) core.assigned

let mark_exited t p status =
  match p.state with
  | Exited _ -> ()
  | Runnable | Stopped ->
    p.state <- Exited status;
    obs_emit t ~track:(Obs.Trace.Proc p.pid) ~phase:Obs.Trace.Instant
      ~args:[ ("status", Obs.Trace.Int status) ]
      "exit";
    p.ended_ns <- int_of_float (Float.max t.event_time (float_of_int t.now));
    Mem.Page_table.free_all (Mem.Address_space.page_table (Machine.Cpu.aspace p.cpu));
    remove_from_core t p;
    t.live <- t.live - 1

let suspend t pid =
  let p = proc t pid in
  match p.state with
  | Runnable -> p.state <- Stopped
  | Stopped -> ()
  | Exited _ -> invalid_arg "Engine.suspend: process has exited"

let kill t pid =
  let p = proc t pid in
  mark_exited t p (Sig_num.exit_status Sig_num.sigkill)

let force_exit t pid ~status = mark_exited t (proc t pid) status

let set_core t pid ~core =
  if core < 0 || core >= Array.length t.cores then
    invalid_arg "Engine.set_core: no such core";
  let p = proc t pid in
  (match p.state with
  | Exited _ -> invalid_arg "Engine.set_core: process has exited"
  | Runnable | Stopped -> ());
  if p.core <> core then begin
    remove_from_core t p;
    p.core <- core;
    t.cores.(core).assigned <- t.cores.(core).assigned @ [ pid ]
  end

let send_signal t pid signum =
  let p = proc t pid in
  match p.state with
  | Exited _ -> ()
  | Runnable | Stopped -> Queue.add signum p.pending_signals

let delay t pid ~ns =
  if ns < 0.0 then invalid_arg "Engine.delay: negative";
  let p = proc t pid in
  let base = Float.max p.resume_at_ns t.event_time in
  p.resume_at_ns <- base +. ns;
  t.runtime_work <- t.runtime_work +. ns

let charge_sys_cycles t pid cycles =
  let p = proc t pid in
  let ns = cycles_to_ns t t.cores.(p.core) cycles in
  p.sys_ns <- p.sys_ns +. ns;
  let base = Float.max p.resume_at_ns t.event_time in
  p.resume_at_ns <- base +. ns

(* ------------------------------------------------------------------ *)
(* Process creation                                                     *)

let open_std_fds fd_table =
  Hashtbl.replace fd_table 1 { File.kind = File.Stdout; offset = 0 };
  Hashtbl.replace fd_table 2 { File.kind = File.Stderr; offset = 0 }

let fresh_mmap_cursor t =
  t.plat.Platform.mmap_area_base
  + (Util.Rng.int t.rng t.plat.Platform.aslr_entropy_pages
    * t.plat.Platform.page_size)

let add_process t p =
  Hashtbl.replace t.procs p.pid p;
  t.cores.(p.core).assigned <- t.cores.(p.core).assigned @ [ p.pid ];
  t.live <- t.live + 1

let spawn t ?tracer ?prng ~program ~core () =
  if core < 0 || core >= Array.length t.cores then
    invalid_arg "Engine.spawn: no such core";
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let aspace = Mem.Address_space.create t.alloc in
  List.iter
    (fun { Isa.Program.base; bytes } ->
      Mem.Address_space.write_bytes_map aspace ~addr:base bytes)
    program.Isa.Program.data;
  let cpu_rng =
    (* The per-process stream, when given, also seeds the CPU's skid
       rng, so even counter-skid nondeterminism is tenant-local. *)
    match prng with Some r -> Util.Rng.split r | None -> Util.Rng.split t.rng
  in
  let cpu =
    Machine.Cpu.create ~max_skid:t.plat.Platform.max_skid
      ~max_insn_overcount:t.plat.Platform.max_insn_overcount
      ~block_cache:t.block_cache ~rng:cpu_rng ~program ~aspace
      ()
  in
  Machine.Cpu.set_nondet_trap cpu (Option.is_some tracer);
  let fd_table = Hashtbl.create 8 in
  open_std_fds fd_table;
  let p =
    {
      pid;
      cpu;
      tracer;
      state = Runnable;
      core;
      resume_at_ns = float_of_int t.now;
      fd_table;
      next_fd = 3;
      brk = program.Isa.Program.initial_brk;
      mmap_cursor =
        (match prng with
        | Some r ->
          t.plat.Platform.mmap_area_base
          + (Util.Rng.int r t.plat.Platform.aslr_entropy_pages
            * t.plat.Platform.page_size)
        | None -> fresh_mmap_cursor t);
      prng;
      sig_handlers = Hashtbl.create 4;
      sig_stack = [];
      pending_signals = Queue.create ();
      user_ns = 0.0;
      sys_ns = 0.0;
      started_ns = t.now;
      ended_ns = 0;
    }
  in
  add_process t p;
  pid

let fork_process t parent_pid =
  let parent = proc t parent_pid in
  (match parent.state with
  | Stopped -> ()
  | Runnable | Exited _ ->
    invalid_arg "Engine.fork_process: parent must be stopped");
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let child_aspace = Mem.Address_space.fork (Machine.Cpu.aspace parent.cpu) in
  let child_cpu =
    Machine.Cpu.fork parent.cpu ~rng:(Util.Rng.split t.rng) ~aspace:child_aspace
  in
  Machine.Cpu.set_nondet_trap child_cpu (Option.is_some parent.tracer);
  let fd_table = Hashtbl.create 8 in
  Hashtbl.iter
    (fun fd (of_ : File.open_file) ->
      Hashtbl.replace fd_table fd { File.kind = of_.kind; offset = of_.offset })
    parent.fd_table;
  let sig_handlers = Hashtbl.copy parent.sig_handlers in
  let child =
    {
      pid;
      cpu = child_cpu;
      tracer = parent.tracer;
      state = Stopped;
      core = parent.core;
      resume_at_ns = Float.max parent.resume_at_ns t.event_time;
      fd_table;
      next_fd = parent.next_fd;
      brk = parent.brk;
      mmap_cursor = parent.mmap_cursor;
      (* A copy, not a split: a snapshot promoted to main by a rollback
         re-executes the same mmap/getrandom draws the original made,
         keeping the recovered run's layout identical. Checkers never
         draw (their mmaps replay MAP_FIXED, their getrandoms replay
         recorded results), so the copy is inert for them. *)
      prng = Option.map Util.Rng.copy parent.prng;
      sig_handlers;
      sig_stack = parent.sig_stack;
      pending_signals = Queue.create ();
      user_ns = 0.0;
      sys_ns = 0.0;
      started_ns = t.now;
      ended_ns = 0;
    }
  in
  add_process t child;
  (* Fork cost: page-table copy, charged to the parent. *)
  let mapped =
    Mem.Page_table.mapped_count
      (Mem.Address_space.page_table (Machine.Cpu.aspace parent.cpu))
  in
  let cycles =
    t.plat.Platform.fork_base_cycles
    + (mapped * t.plat.Platform.fork_per_page_cycles)
  in
  let cost_ns = cycles_to_ns t t.cores.(parent.core) cycles in
  obs_emit t ~track:(Obs.Trace.Proc parent_pid) ~phase:Obs.Trace.Instant
    ~args:
      [
        ("child", Obs.Trace.Int pid);
        ("pages", Obs.Trace.Int mapped);
        ("cost_ns", Obs.Trace.Int (int_of_float cost_ns));
      ]
    "fork";
  obs_observe t "fork.cost_ns" cost_ns;
  obs_observe t "fork.pages" (float_of_int mapped);
  (* Phase attribution: the page-table copy is a zero-width charge
     against whatever phase scope is open for the forking process (its
     core's timeline first, its pid track second). *)
  (match t.obs with
  | None -> ()
  | Some s ->
    Obs.Sink.phase_add s ~ts_ns:(time_ns t)
      ~tracks:[ Obs.Trace.Core parent.core; Obs.Trace.Proc parent_pid ]
      "fork" (int_of_float cost_ns));
  charge_sys_cycles t parent_pid cycles;
  pid

(* ------------------------------------------------------------------ *)
(* Signals                                                              *)

let deliver_signal_now t pid signum =
  let p = proc t pid in
  (match p.state with
  | Exited _ -> ()
  | Runnable | Stopped ->
    (match Hashtbl.find_opt p.sig_handlers signum with
    | Some handler_pc when Sig_num.is_catchable signum ->
      p.sig_stack <-
        (Machine.Cpu.get_pc p.cpu, Machine.Cpu.snapshot_regs p.cpu)
        :: p.sig_stack;
      Machine.Cpu.set_pc p.cpu handler_pc
    | Some _ | None -> mark_exited t p (Sig_num.exit_status signum)))

(* ------------------------------------------------------------------ *)
(* Kernel: syscall execution                                            *)

let pending_syscall t pid = Syscall.decode (proc t pid).cpu

let complete_syscall t pid ~result =
  let p = proc t pid in
  Machine.Cpu.set_reg p.cpu 0 result;
  Machine.Cpu.set_pc p.cpu (Machine.Cpu.get_pc p.cpu + 1)

let page_align_up t len =
  let ps = t.plat.Platform.page_size in
  (len + ps - 1) / ps * ps

let kernel_mmap t p call =
  match call with
  | Syscall.Mmap { addr; len; prot; flags; fd; off } ->
    if len = 0 then -22 (* EINVAL *)
    else begin
      let len = page_align_up t len in
      let base =
        if flags land Syscall.map_fixed <> 0 then addr
        else begin
          (* ASLR: each allocation lands at the cursor plus fresh entropy
             (from the process's own stream when it has one). *)
          let gap_rng = match p.prng with Some r -> r | None -> t.rng in
          let gap = Util.Rng.int gap_rng 16 * t.plat.Platform.page_size in
          let base = p.mmap_cursor + gap in
          p.mmap_cursor <- base + len + t.plat.Platform.page_size;
          base
        end
      in
      let aspace = Machine.Cpu.aspace p.cpu in
      if flags land Syscall.map_fixed <> 0 then
        Mem.Address_space.unmap_range aspace ~addr:base ~len;
      let protection =
        if prot land Syscall.prot_write <> 0 then Mem.Page_table.Read_write
        else Mem.Page_table.Read_only
      in
      (* Map writable first so file contents can be copied in. *)
      Mem.Address_space.map_range aspace ~addr:base ~len Mem.Page_table.Read_write;
      (if flags land Syscall.map_anon = 0 then
         match Hashtbl.find_opt p.fd_table fd with
         | None -> ()
         | Some of_ ->
           let saved = of_.File.offset in
           of_.File.offset <- off;
           let data = File.read t.filesystem of_ ~len in
           of_.File.offset <- saved;
           ignore (Mem.Address_space.write_bytes aspace ~addr:base data));
      if protection = Mem.Page_table.Read_only then begin
        let pt = Mem.Address_space.page_table aspace in
        let first = Mem.Address_space.vpn_of_addr aspace base in
        let last = Mem.Address_space.vpn_of_addr aspace (base + len - 1) in
        for vpn = first to last do
          Mem.Page_table.set_protection pt ~vpn Mem.Page_table.Read_only
        done
      end;
      base
    end
  | _ -> assert false

(* Execute the syscall [p] is stopped on, at simulated time
   [t.event_time]. Sets the result register, advances the pc, charges
   kernel time. *)
let do_syscall_internal t p =
  let call = Syscall.decode p.cpu in
  let aspace = Machine.Cpu.aspace p.cpu in
  let base_cost = t.plat.Platform.syscall_base_cycles in
  let finish ?(extra_cost = 0) result =
    complete_syscall t p.pid ~result;
    charge_sys_cycles t p.pid (base_cost + extra_cost)
  in
  match call with
  | Syscall.Exit status ->
    charge_sys_cycles t p.pid base_cost;
    mark_exited t p status
  | Syscall.Write { fd; addr; len } -> (
    match Hashtbl.find_opt p.fd_table fd with
    | None -> finish (-9) (* EBADF *)
    | Some of_ -> (
      try
        let data = Mem.Address_space.read_bytes aspace ~addr ~len in
        let written = File.write t.filesystem of_ data in
        finish ~extra_cost:(len / 32) written
      with Mem.Address_space.Segfault _ -> finish (-14) (* EFAULT *)))
  | Syscall.Read { fd; addr; len } -> (
    match Hashtbl.find_opt p.fd_table fd with
    | None -> finish (-9)
    | Some of_ -> (
      try
        let data = File.read t.filesystem of_ ~len in
        ignore (Mem.Address_space.write_bytes aspace ~addr data);
        finish ~extra_cost:(Bytes.length data / 32) (Bytes.length data)
      with Mem.Address_space.Segfault _ -> finish (-14)))
  | Syscall.Open { path_addr; path_len; flags } -> (
    try
      let path =
        Bytes.to_string (Mem.Address_space.read_bytes aspace ~addr:path_addr ~len:path_len)
      in
      match
        File.lookup t.filesystem ~path ~create:(flags land Syscall.o_create <> 0)
      with
      | None -> finish (-2) (* ENOENT *)
      | Some kind ->
        let fd = p.next_fd in
        p.next_fd <- fd + 1;
        Hashtbl.replace p.fd_table fd { File.kind; offset = 0 };
        finish fd
    with Mem.Address_space.Segfault _ -> finish (-14))
  | Syscall.Close { fd } ->
    if Hashtbl.mem p.fd_table fd then begin
      Hashtbl.remove p.fd_table fd;
      finish 0
    end
    else finish (-9)
  | Syscall.Brk { addr } ->
    if addr <= 0 then finish p.brk
    else begin
      if addr > p.brk then
        Mem.Address_space.map_range aspace ~addr:p.brk ~len:(addr - p.brk)
          Mem.Page_table.Read_write
      else if addr < p.brk then
        Mem.Address_space.unmap_range aspace ~addr ~len:(p.brk - addr);
      p.brk <- addr;
      finish addr
    end
  | Syscall.Mmap _ as call ->
    let result = kernel_mmap t p call in
    finish ~extra_cost:(if result > 0 then 200 else 0) result
  | Syscall.Munmap { addr; len } ->
    Mem.Address_space.unmap_range aspace ~addr ~len;
    finish 0
  | Syscall.Mprotect { addr; len; prot } ->
    if len = 0 then finish 0
    else begin
      let pt = Mem.Address_space.page_table aspace in
      let first = Mem.Address_space.vpn_of_addr aspace addr in
      let last = Mem.Address_space.vpn_of_addr aspace (addr + len - 1) in
      let ok = ref true in
      for vpn = first to last do
        if Mem.Page_table.is_mapped pt ~vpn then
          Mem.Page_table.set_protection pt ~vpn
            (if prot land Syscall.prot_write <> 0 then Mem.Page_table.Read_write
             else Mem.Page_table.Read_only)
        else ok := false
      done;
      finish (if !ok then 0 else -12)
    end
  | Syscall.Getpid -> finish p.pid
  | Syscall.Gettime -> finish (int_of_float t.event_time)
  | Syscall.Sigaction { signum; handler_pc } ->
    if signum <= 0 || not (Sig_num.is_catchable signum) then finish (-22)
    else begin
      if handler_pc < 0 then Hashtbl.remove p.sig_handlers signum
      else Hashtbl.replace p.sig_handlers signum handler_pc;
      finish 0
    end
  | Syscall.Sigreturn -> (
    match p.sig_stack with
    | [] -> finish (-22)
    | (pc, regs) :: rest ->
      p.sig_stack <- rest;
      Machine.Cpu.restore_regs p.cpu regs;
      Machine.Cpu.set_pc p.cpu pc;
      charge_sys_cycles t p.pid base_cost)
  | Syscall.Getrandom { addr; len } -> (
    try
      let data = Bytes.create len in
      let rand_rng = match p.prng with Some r -> r | None -> t.rng in
      for i = 0 to len - 1 do
        Bytes.unsafe_set data i (Char.unsafe_chr (Util.Rng.int rand_rng 256))
      done;
      ignore (Mem.Address_space.write_bytes aspace ~addr data);
      finish ~extra_cost:(len / 16) len
    with Mem.Address_space.Segfault _ -> finish (-14))
  | Syscall.Patch_code { pc; word } -> (
    (* The icache-flush analogue dominates the cost of a code write. *)
    match Isa.Insn.decode word with
    | None -> finish (-22) (* EINVAL: not an encodable instruction *)
    | Some insn -> (
      match Machine.Cpu.patch_code p.cpu ~pc insn with
      | Ok () -> finish ~extra_cost:50 0
      | Error _ -> finish (-14) (* EFAULT: pc outside the code image *)))
  | Syscall.Unknown _ -> finish (-38) (* ENOSYS *)

let do_syscall t pid = do_syscall_internal t (proc t pid)

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                       *)

let event_of_stop stop =
  match (stop : Machine.Cpu.stop_reason) with
  | Machine.Cpu.Syscall_stop -> None (* rebuilt with decoded call below *)
  | Machine.Cpu.Nondet_stop insn -> Some (Nondet insn)
  | Machine.Cpu.Breakpoint_stop -> Some Breakpoint
  | Machine.Cpu.Counter_overflow_stop -> Some Branch_overflow
  | Machine.Cpu.Cycle_overflow_stop -> Some Cycle_overflow
  | Machine.Cpu.Insn_overflow_stop -> Some Insn_overflow
  | Machine.Cpu.Fault_stop f -> Some (Fault f)
  | Machine.Cpu.Halted -> Some Halted
  | Machine.Cpu.Budget_exhausted -> assert false

let dispatch_traced t p tracer stop =
  p.state <- Stopped;
  let latency = t.plat.Platform.tracer_stop_ns in
  p.resume_at_ns <- t.event_time +. latency;
  t.runtime_work <- t.runtime_work +. latency;
  let ev =
    match (stop : Machine.Cpu.stop_reason) with
    | Machine.Cpu.Syscall_stop -> Syscall_entry (Syscall.decode p.cpu)
    | other -> (
      match event_of_stop other with Some ev -> ev | None -> assert false)
  in
  tracer t p.pid ev

let dispatch_untraced t p stop =
  match (stop : Machine.Cpu.stop_reason) with
  | Machine.Cpu.Syscall_stop -> do_syscall_internal t p
  | Machine.Cpu.Halted -> mark_exited t p 0
  | Machine.Cpu.Fault_stop f ->
    let signum =
      match f with
      | Machine.Cpu.Segv _ | Machine.Cpu.Bad_pc _ -> Sig_num.sigsegv
      | Machine.Cpu.Div_by_zero -> Sig_num.sigfpe
    in
    (* Faulting instruction would re-execute: handlers here must fix state
       or the default action terminates. We only support termination or a
       handler that jumps elsewhere via sigreturn-less longjmp style. *)
    deliver_signal_now t p.pid signum
  | Machine.Cpu.Nondet_stop _ ->
    (* Untraced CPUs execute nondet instructions natively. *)
    assert false
  | Machine.Cpu.Breakpoint_stop | Machine.Cpu.Counter_overflow_stop
  | Machine.Cpu.Cycle_overflow_stop | Machine.Cpu.Insn_overflow_stop ->
    (* Nothing armed these for untraced processes; ignore. *)
    ()
  | Machine.Cpu.Budget_exhausted -> assert false

let dispatch t p stop =
  match p.tracer with
  | Some tracer -> dispatch_traced t p tracer stop
  | None -> dispatch_untraced t p stop

let dispatch_pending_signal t p =
  if Queue.is_empty p.pending_signals then false
  else begin
    let signum = Queue.pop p.pending_signals in
    (match p.tracer with
    | Some tracer ->
      p.state <- Stopped;
      let latency = t.plat.Platform.tracer_stop_ns in
      p.resume_at_ns <- Float.max p.resume_at_ns t.event_time +. latency;
      t.runtime_work <- t.runtime_work +. latency;
      tracer t p.pid (Signal signum)
    | None -> deliver_signal_now t p.pid signum);
    true
  end

(* ------------------------------------------------------------------ *)
(* The quantum loop                                                     *)

let make_env t core =
  let cl = t.clusters.(core.cluster_idx) in
  let eff_hz = Platform.effective_hz cl.desc ~level:cl.level in
  let ns_to_cycles ns = int_of_float (ns *. eff_hz /. 1e9) in
  let l2_cycles = ns_to_cycles cl.desc.Platform.l2_hit_extra_ns in
  let dram_cycles = ns_to_cycles (t.plat.Platform.dram_extra_ns *. t.dram_mult) in
  let cow_cycles =
    t.plat.Platform.cow_fixed_cycles
    + (t.plat.Platform.page_size / t.plat.Platform.cow_bytes_per_cycle)
  in
  let l1 = core.l1 and l2 = cl.l2 in
  {
    Machine.Cpu.core_id = core.core_id;
    read_tsc = (fun () -> t.now);
    read_rand = (fun () -> Util.Rng.bits64 t.rng);
    mem_access =
      (fun ~write ~frame ->
        ignore write;
        if Mem.Fifo_cache.touch l1 frame then 0
        else if Mem.Fifo_cache.touch l2 frame then l2_cycles
        else begin
          t.dram_quantum_accesses <- t.dram_quantum_accesses + 1;
          t.dram_total <- t.dram_total + 1;
          dram_cycles
        end);
    mem_access_cow =
      (fun ~frame ~old_frame ->
        (* The kernel's COW copy left the page warm: install it without
           charging a cold miss, and invalidate the retired frame (dead
           to this cluster; recency-based replacement would age it
           out). *)
        Mem.Fifo_cache.remove l1 old_frame;
        Mem.Fifo_cache.remove l2 old_frame;
        ignore (Mem.Fifo_cache.touch l1 frame);
        ignore (Mem.Fifo_cache.touch l2 frame);
        l2_cycles);
    cow_extra_cycles = cow_cycles;
    mul_cycles = 3;
    div_cycles = 12;
  }

let pick_runnable t core budget_end =
  let ready pid =
    let p = proc t pid in
    match p.state with
    | Runnable -> p.resume_at_ns < budget_end
    | Stopped | Exited _ -> false
  in
  let rec find = function
    | [] -> None
    | pid :: rest -> if ready pid then Some pid else find rest
  in
  match find core.assigned with
  | None -> None
  | Some pid ->
    (* Round-robin: move the chosen pid to the back for the next quantum. *)
    core.assigned <- List.filter (fun q -> q <> pid) core.assigned @ [ pid ];
    Some pid

let run_core t core =
  core.busy_ns <- 0.0;
  let budget_end = float_of_int (t.now + t.quantum_ns) in
  match pick_runnable t core budget_end with
  | None -> ()
  | Some pid ->
    let p = proc t pid in
    let eff_hz = eff_hz_of_core t core in
    let env = make_env t core in
    let continue_running = ref true in
    let t_local = ref (Float.max (float_of_int t.now) p.resume_at_ns) in
    while !continue_running do
      if p.state <> Runnable || p.core <> core.core_id then continue_running := false
      else begin
        let t_start = Float.max !t_local p.resume_at_ns in
        if t_start >= budget_end then continue_running := false
        else begin
          t.event_time <- t_start;
          if dispatch_pending_signal t p then t_local := t_start
          else begin
            let avail =
              int_of_float ((budget_end -. t_start) *. eff_hz /. 1e9)
            in
            if avail <= 0 then continue_running := false
            else begin
              let res = Machine.Cpu.run p.cpu ~env ~max_cycles:avail in
              let user_ns = float_of_int res.Machine.Cpu.user_cycles *. 1e9 /. eff_hz in
              let sys_ns = float_of_int res.Machine.Cpu.sys_cycles *. 1e9 /. eff_hz in
              (* Batched hot-path counters: one call per Cpu.run burst
                 (not per instruction) credits the retired work to the
                 pid's open phase scope, falling back to the core's. *)
              (match t.obs with
              | None -> ()
              | Some s ->
                Obs.Sink.phase_units s
                  ~tracks:[ Obs.Trace.Proc pid; Obs.Trace.Core core.core_id ]
                  ~insns:res.Machine.Cpu.insns_retired
                  ~blocks:res.Machine.Cpu.blocks_retired
                  ~decoded:res.Machine.Cpu.blocks_decoded);
              p.user_ns <- p.user_ns +. user_ns;
              p.sys_ns <- p.sys_ns +. sys_ns;
              core.busy_ns <- core.busy_ns +. user_ns +. sys_ns;
              let t_now = t_start +. user_ns +. sys_ns in
              t_local := t_now;
              p.resume_at_ns <- t_now;
              match res.Machine.Cpu.stop with
              | Machine.Cpu.Budget_exhausted -> continue_running := false
              | stop ->
                t.event_time <- t_now;
                dispatch t p stop
            end
          end
        end
      end
    done

let integrate_energy t =
  let q_s = float_of_int t.quantum_ns *. 1e-9 in
  Array.iter
    (fun core ->
      let cl = t.clusters.(core.cluster_idx) in
      let p_active = Platform.active_power_w cl.desc ~level:cl.level in
      let p_idle = cl.desc.Platform.idle_power_w in
      let busy_s = Float.min (core.busy_ns *. 1e-9) q_s in
      let e = (p_active *. busy_s) +. (p_idle *. (q_s -. busy_s)) in
      match cl.desc.Platform.kind with
      | Platform.Big -> t.energy_big <- t.energy_big +. e
      | Platform.Little -> t.energy_little <- t.energy_little +. e)
    t.cores;
  t.energy_dram <-
    t.energy_dram
    +. (t.plat.Platform.dram_static_w *. q_s)
    +. (float_of_int t.dram_quantum_accesses
       *. t.plat.Platform.dram_energy_per_access_nj *. 1e-9);
  t.energy_static <- t.energy_static +. (t.plat.Platform.soc_static_w *. q_s)

let update_contention t =
  let quantum_us = float_of_int t.quantum_ns /. 1000.0 in
  let rate = float_of_int t.dram_quantum_accesses /. quantum_us in
  let target =
    Float.max 1.0 (rate /. t.plat.Platform.dram_accesses_per_us_capacity)
  in
  t.dram_mult <- (0.7 *. t.dram_mult) +. (0.3 *. target);
  t.dram_quantum_accesses <- 0

let run_ticks t =
  List.iter
    (fun tick ->
      while tick.next_at <= t.now do
        tick.next_at <- tick.next_at + tick.every_ns;
        tick.fn t
      done)
    t.ticks

let add_tick t ~every_ns fn =
  if every_ns <= 0 then invalid_arg "Engine.add_tick: every_ns <= 0";
  t.ticks <- t.ticks @ [ { every_ns; next_at = t.now + every_ns; fn } ]

let step_quantum t =
  Array.iter (fun core -> run_core t core) t.cores;
  integrate_energy t;
  update_contention t;
  t.now <- t.now + t.quantum_ns;
  run_ticks t

let live_processes t = t.live

let run ?(max_ns = 1_000_000_000_0) t =
  while t.live > 0 && t.now < max_ns do
    step_quantum t
  done

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)

type proc_stats = {
  state : pstate;
  user_ns : float;
  sys_ns : float;
  started_ns : int;
  ended_ns : int;
}

let proc_stats t pid =
  let p = proc t pid in
  {
    state = p.state;
    user_ns = p.user_ns;
    sys_ns = p.sys_ns;
    started_ns = p.started_ns;
    ended_ns = (match p.state with Exited _ -> p.ended_ns | _ -> t.now);
  }

let energy_j t = t.energy_big +. t.energy_little +. t.energy_dram +. t.energy_static

let energy_breakdown_j t =
  [
    ("big", t.energy_big);
    ("little", t.energy_little);
    ("dram", t.energy_dram);
    ("static", t.energy_static);
  ]

let runtime_work_ns t = t.runtime_work

let pss_bytes t pids =
  List.fold_left
    (fun acc pid ->
      let p = proc t pid in
      match p.state with
      | Exited _ -> acc
      | Runnable | Stopped ->
        acc
        + Mem.Page_table.pss_bytes
            (Mem.Address_space.page_table (Machine.Cpu.aspace p.cpu)))
    0 pids

let dram_accesses t = t.dram_total

let dram_mult t = t.dram_mult

let l2_stats t ~cluster =
  let l2 = t.clusters.(cluster).l2 in
  (Mem.Fifo_cache.hits l2, Mem.Fifo_cache.misses l2)

let block_cache_totals t =
  (* The process table retains exited processes, so this sums the whole
     simulation: every CPU ever spawned or forked. *)
  Hashtbl.fold
    (fun _ p (h, m, i) ->
      let bh, bm, bi = Machine.Cpu.block_cache_stats p.cpu in
      (h + bh, m + bm, i + bi))
    t.procs (0, 0, 0)

let output t = File.captured_stdout t.filesystem
