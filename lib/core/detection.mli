(** Error-detection outcomes (§5.6 classification). *)

type mismatch =
  | Register_mismatch of { reg : int; expected : int; got : int }
  | Memory_mismatch of { expected_hash : int64; got_hash : int64 }
  | Layout_mismatch of { vpn : int }
      (** a page mapped on one side of the comparison only *)
  | Syscall_mismatch of { expected : string; got : string }
  | Syscall_data_mismatch of { syscall : string }
  | Extra_interaction of { got : string }
      (** the checker interacted when the log was exhausted *)
  | Unexpected_fault of string

type outcome =
  | Detected of mismatch  (** caught at a segment-end comparison or a
                              syscall check *)
  | Exception_detected of string  (** the fault crashed the checker *)
  | Timeout_detected  (** the checker overran the instruction budget *)
  | Transient_checker_fault of string
      (** a checker-side failure (carried as its string form) that a
          re-check on a fresh checker did not reproduce: the fault was
          in the {e checker}, the main's state is fine, and the run
          continued without rollback (DESIGN.md §13) *)
  | Hard_fault of { segment : int; rollbacks : int; last : string }
      (** the same region of the run detected again right after a
          rollback, with no new segment verifying in between — a
          persistent fault that re-execution cannot clear; the run
          aborts instead of burning [max_recoveries] on a loop *)
  | Benign  (** the run completed with all comparisons passing *)

val mismatch_to_string : mismatch -> string
val outcome_to_string : outcome -> string

val is_detected : outcome -> bool
(** Everything except [Benign] and [Transient_checker_fault] counts as
    detection (exceptions and timeouts are detection subclasses in the
    paper's Figure 10; a transient checker fault was re-checked clean,
    so no error escaped and none was charged to the main). *)
