(** Run statistics, mirroring the artifact's statistics dump
    (timing.all_wall_time, counter.checkpoint_count,
    fixed_interval_slicer.nr_slices, ...). *)

type fleet = {
  mutable home_dispatches : int;
      (** checkers dispatched on the tenant's home little core via the
          owner's LIFO pop *)
  mutable stolen : int;
      (** checkers that ran off-home: FIFO-stolen by another little
          core's owner or drained directly onto a shared big core *)
}

type seglog = {
  seglog_segments : int;  (** segment files persisted *)
  seglog_bytes : int;  (** total bytes written (segment files + manifest) *)
  seglog_raw_page_bytes : int;
  seglog_stored_page_bytes : int;  (** post-compression payload bytes *)
}

type backend_acct = {
  mutable b_dispatched : int;  (** lease grants, including re-grants *)
  mutable b_redispatched : int;
      (** checks re-dispatched after a node death/stall/pre-launch loss *)
  mutable b_leases_expired : int;
      (** heartbeat-budget expiries declared by the supervisor *)
  mutable b_stale_verdicts : int;
      (** verdicts discarded because their lease incarnation lapsed *)
  mutable b_batches : int;  (** deferred launch batches drained *)
  mutable b_max_lag : int;
      (** high-water mark of recorded-but-unsettled segments *)
  mutable b_verified : int;  (** segments settled exactly once *)
  mutable b_launch_ns : int;
      (** simulated launch overhead charged to checkers (cold first-in-
          batch launches vs warm follow-ups — the fork-amortization
          signal the [checker:deferred_batch] bench gates on) *)
}

type t = {
  mutable checkpoint_count : int;
      (** forks taken: checkers + end snapshots + mmap-split extras *)
  mutable nr_slices : int;  (** segments created by the periodic slicer *)
  mutable segments_total : int;
  mutable segments_compared : int;
  mutable dirty_pages_total : int;
  mutable bytes_hashed : int;
      (** page bytes actually read and hashed by the comparator; identity
          skips and digest-memo hits contribute nothing *)
  mutable pages_skipped_identical : int;
      (** dirty-union vpns skipped because both sides still mapped the
          same COW frame *)
  mutable page_hash_hits : int;
      (** per-frame page digests served from the comparator's memo *)
  mutable page_hash_misses : int;
      (** per-frame page digests computed from page bytes *)
  mutable syscalls_recorded : int;
  mutable nondet_recorded : int;
  mutable signals_recorded : int;
  mutable migrations : int;
  mutable checker_big_ns : float;
      (** checker CPU time spent while placed on big cores *)
  mutable checker_little_ns : float;
  mutable main_wall_ns : float;
  mutable all_wall_ns : float;
  mutable main_user_ns : float;
  mutable main_sys_ns : float;
  mutable detections : (int * Detection.outcome) list;
      (** (segment id, outcome); detections only, newest first *)
  mutable fi_outcome : Detection.outcome option;
      (** classification of the armed fault injection, once known *)
  mutable fi_fired : bool;
  mutable segment_insn_deltas : int list;  (** newest first *)
  mutable recoveries : int;
      (** rollbacks performed by the recovery extension *)
  mutable rechecks : int;
      (** checks re-dispatched onto a fresh checker (re-check on
          mismatch, or a watchdog kill with retries left) *)
  mutable transient_faults : int;
      (** re-checks that passed: the original failure was the checker's,
          classified {!Detection.Transient_checker_fault}; no rollback *)
  mutable watchdog_kills : int;
      (** checkers the watchdog declared dead or stalled *)
  mutable hard_faults : int;
      (** detections re-observed after a rollback with no verified
          progress, classified {!Detection.Hard_fault}; aborts the run *)
  mutable final_regs : int array option;
      (** main's register file at exit, captured before the engine frees
          the process (SDC oracle + rollback-exactness tests) *)
  mutable final_mem_hash : int64 option;
      (** digest of main's full memory image at exit (vpn + page bytes,
          ascending vpn order) *)
  mutable profile : (string * int) list;
      (** name-sorted (phase, self_ns) rows from [Obs.Profile], filled by
          [Runtime] only when profiling was enabled; empty otherwise so
          the stats dump is unchanged by default *)
  mutable block_cache : (int * int * int) option;
      (** summed decoded-block-cache [(hits, misses, invalidations)]
          over every CPU of the run, filled by [Runtime] only under
          [Config.cpu_stats]; [None] keeps the stats dump (and the
          goldens) unchanged, same discipline as [profile] *)
  mutable fleet : fleet option;
      (** per-tenant work-stealing counters, filled by [Fleet] runs only
          ([None] on the single-tenant path, keeping goldens
          byte-identical) *)
  mutable seglog : seglog option;
      (** persisted-log size/compression counters, filled by [Runtime]
          only under [Config.record_log]; [None] keeps the stats dump
          (and the goldens) unchanged, same discipline as [profile] *)
  backend : backend_acct;
      (** checker-backend accounting, mirrored from the backend's
          {!Backend.Supervisor} after every mutation. Unlike the opt-in
          sub-records above these rows are unconditional — the inline
          backend fills them too, so one golden surface covers all
          backends. *)
}

val create : unit -> t

val record_detection : t -> segment:int -> Detection.outcome -> unit
(** Prepends: the [detections] field stays newest first. *)

val detections_oldest_first : t -> (int * Detection.outcome) list
(** The [detections] field in chronological order — the single place the
    newest-first storage order is reversed. [Runtime.report.detections]
    (documented oldest-first) is built with this. *)

val final_state_hash : t -> int64 option
(** Single digest over [final_regs] + [final_mem_hash]; [None] until the
    main process exits. Byte-identical final states hash equal, which is
    what the SDC oracle compares across faulted and fault-free runs. *)

val big_core_work_fraction : t -> float
(** Fraction of checker CPU time spent on big cores (the §5.2.1 "41.7%
    of work on big cores" metric). *)

val to_assoc : t -> (string * string) list
(** Artifact-style key/value dump. *)
