(* Offline replay of a persisted segment log: one traced process
   re-executes the recorded history in a fresh simulation, driven by
   the same replay mechanics as the live checker (Replayer), and every
   segment boundary is re-checked against the recorded registers and
   dirty-page payloads. *)

module E = Sim_os.Engine
module R = Seglog.Record

type reg_diff = {
  reg : int;
  expected : int;
  got : int;
}

type page_diff = {
  vpn : int;
  offset : int;
  expected : int;
  got : int;
}

type divergence = {
  segment : int;
  point : Exec_point.t;
  reason : string;
  reg_diffs : reg_diff list;
  page_diff : page_diff option;
}

type verdict =
  | Verified of {
      segments : int;
      final_hash : int64 option;
      final_hash_matches : bool option;
    }
  | Diverged of divergence

(* Same hang bound as the live runtime. *)
let max_sim_ns = 2_000_000_000

type state = {
  eng : E.t;
  mutable pid : E.pid;
  segs : R.segment array;
  plan : Fault.plan option;  (* re-armed checker-side injections *)
  timeout_scale : float;
  final_hash : int64 option;
  mutable idx : int;  (* current segment index into [segs] *)
  mutable events : R.event list;  (* remaining interactions, record order *)
  mutable preamble : R.sys_record list;  (* boundary syscalls still pending *)
  mutable pending_signals : (Exec_point.t * Sim_os.Sig_num.t) list;
      (* absolute-branch-count delivery points, record order *)
  mutable replay : Exec_point.replay option;
  mutable seg_start_branches : int;
  mutable outcome : verdict option;
}

let cpu st = E.cpu st.eng st.pid
let aspace st = E.aspace st.eng st.pid
let page_table st = Mem.Address_space.page_table (aspace st)
let cur_seg st = st.segs.(st.idx)

(* The current position, segment-relative — the coordinate system the
   recorded execution points use. *)
let rel_point st =
  let c = cpu st in
  {
    Exec_point.branches = Machine.Cpu.branches c - st.seg_start_branches;
    pc = Machine.Cpu.get_pc c;
  }

let kill_pid st =
  match E.state st.eng st.pid with
  | E.Exited _ -> ()
  | E.Runnable | E.Stopped -> E.kill st.eng st.pid

let diverge st ?(reg_diffs = []) ?page_diff reason =
  (match st.outcome with
  | Some _ -> ()
  | None ->
    st.outcome <-
      Some
        (Diverged
           { segment = (cur_seg st).R.id; point = rel_point st; reason; reg_diffs; page_diff }));
  kill_pid st

let read_mem_opt st ~addr ~len =
  try Some (Mem.Address_space.read_bytes (aspace st) ~addr ~len)
  with Mem.Address_space.Segfault _ -> None

(* Pop the next Sys/Nondet record; Ext_signal entries replay by
   execution point, not interaction order (same rule as Rr_log's
   cursor). *)
let rec next_interaction st =
  match st.events with
  | [] -> None
  | R.Ext_signal _ :: rest ->
    st.events <- rest;
    next_interaction st
  | ev :: rest ->
    st.events <- rest;
    Some ev

let remaining_interactions st =
  List.length
    (List.filter (function R.Ext_signal _ -> false | _ -> true) st.events)

(* Inject recorded bytes without going through the store path: the
   content of a boundary file mapping is not a program store, so it
   must not set soft-dirty bits (the live main's equivalent writes
   happened before the segment's dirty window opened). Safe in-place:
   the offline process never forks, so no frame is COW-shared. *)
let inject_bytes st ~addr data =
  let sp = aspace st in
  let pt = page_table st in
  let ps = Mem.Address_space.page_size sp in
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let vpn = Mem.Address_space.vpn_of_addr sp a in
    let off = a - (vpn * ps) in
    let n = min (ps - off) (len - !pos) in
    (if Mem.Page_table.is_mapped pt ~vpn then
       let page = Mem.Page_table.read_bytes_at pt ~vpn in
       Bytes.blit data !pos page off n);
    pos := !pos + n
  done

(* ------------------------------------------------------------------ *)
(* Segment lifecycle                                                    *)

let arm_segment st =
  let seg = cur_seg st in
  let c = cpu st in
  st.seg_start_branches <- Machine.Cpu.branches c;
  st.events <- seg.R.events;
  st.preamble <- seg.R.preamble;
  (* Boundary mmaps execute before the segment's first instruction;
     their fresh mappings must not pollute the dirty window, so the
     soft-dirty clear waits until the preamble has been consumed
     (mirroring the live ordering: mmap_split runs do_syscall before
     start_segment clears the bits). *)
  if st.preamble = [] then Mem.Page_table.clear_soft_dirty (page_table st);
  let signals =
    List.filter_map
      (function
        | R.Ext_signal { at; signum } ->
          Some
            ( {
                Exec_point.branches = at.Exec_point.branches + st.seg_start_branches;
                pc = at.Exec_point.pc;
              },
              signum )
        | R.Sys _ | R.Nondet _ -> None)
      seg.R.events
  in
  st.pending_signals <- signals;
  let end_target =
    {
      Exec_point.branches =
        seg.R.end_point.Exec_point.branches + st.seg_start_branches;
      pc = seg.R.end_point.Exec_point.pc;
    }
  in
  let targets = List.map fst signals @ [ end_target ] in
  st.replay <- Some (Exec_point.start_replay ~targets ~cpu:c);
  (* The same runaway kill switch the live checker arms: a diverged
     control flow that never reaches the recorded end point must not
     spin until the simulation bound. *)
  let timeout =
    max 1000 (int_of_float (st.timeout_scale *. float_of_int seg.R.insn_delta))
  in
  Machine.Cpu.arm_insn_overflow c
    ~target:(Machine.Cpu.instructions c + timeout);
  (* Checker-side fault plans re-arm here so an injected-fault run
     reproduces its live verdict offline. Main-side plans are never
     armed: their corruption is baked into the recorded payloads, which
     the fault-free re-execution then fails to match. *)
  match st.plan with
  | Some plan
    when Fault.targets_checker plan && Run_ctx.plan_covers plan ~id:seg.R.id ->
    Run_ctx.arm_plan_on_cpu c plan
  | Some _ | None -> ()

(* Recompute the final-state digest exactly as the live recorder does
   (Recorder.capture_final_state + Stats.final_state_hash). *)
let compute_final_hash st =
  let c = cpu st in
  let pt = page_table st in
  let vpns = Mem.Page_table.mapped_vpns pt in
  Array.sort compare vpns;
  let mem_st = Ftr_hash.Xxh64.init () in
  Array.iter
    (fun vpn ->
      Ftr_hash.Xxh64.update_int64 mem_st (Int64.of_int vpn);
      let bytes = Mem.Page_table.read_bytes_at pt ~vpn in
      Ftr_hash.Xxh64.update mem_st bytes ~pos:0 ~len:(Bytes.length bytes))
    vpns;
  let mem = Ftr_hash.Xxh64.digest mem_st in
  let h = Ftr_hash.Xxh64.init () in
  Array.iter
    (fun r -> Ftr_hash.Xxh64.update_int64 h (Int64.of_int r))
    (Machine.Cpu.snapshot_regs c);
  Ftr_hash.Xxh64.update_int64 h mem;
  Ftr_hash.Xxh64.digest h

let finish_run st =
  match st.final_hash with
  | None ->
    st.outcome <-
      Some
        (Verified
           {
             segments = Array.length st.segs;
             final_hash = None;
             final_hash_matches = None;
           });
    kill_pid st
  | Some recorded ->
    let got = compute_final_hash st in
    if got <> recorded then
      diverge st
        (Printf.sprintf "final state hash mismatch (recorded %Lx, got %Lx)"
           recorded got)
    else begin
      st.outcome <-
        Some
          (Verified
             {
               segments = Array.length st.segs;
               final_hash = Some recorded;
               final_hash_matches = Some true;
             });
      kill_pid st
    end

(* End-of-segment verification, mirroring Replayer.reached_end but
   against the recorded payloads instead of a live snapshot fork. *)
let end_of_segment st =
  let seg = cur_seg st in
  let c = cpu st in
  Machine.Cpu.disarm_insn_overflow c;
  Machine.Cpu.disarm_fault_injection c;
  (* Retire the end target: with the queue empty this clears the
     breakpoint and the branch-overflow arming. *)
  (match st.replay with Some r -> Exec_point.next_target r | None -> ());
  let leftover = remaining_interactions st in
  if leftover > 0 then
    diverge st
      (Printf.sprintf
         "segment end reached with %d recorded interaction%s not replayed"
         leftover
         (if leftover = 1 then "" else "s"))
  else begin
    let got_regs = Machine.Cpu.snapshot_regs c in
    let reg_diffs = ref [] in
    Array.iteri
      (fun reg expected ->
        let got = if reg < Array.length got_regs then got_regs.(reg) else 0 in
        if got <> expected then reg_diffs := { reg; expected; got } :: !reg_diffs)
      seg.R.end_regs;
    let reg_diffs = List.rev !reg_diffs in
    if reg_diffs <> [] then
      diverge st ~reg_diffs
        (Printf.sprintf "register state mismatch (%d register%s)"
           (List.length reg_diffs)
           (if List.length reg_diffs = 1 then "" else "s"))
    else begin
      let pt = page_table st in
      let page_div = ref None in
      let layout_div = ref None in
      Array.iter
        (fun (vpn, expected) ->
          if !page_div = None && !layout_div = None then
            if not (Mem.Page_table.is_mapped pt ~vpn) then
              layout_div :=
                Some (Printf.sprintf "recorded dirty page %d is not mapped" vpn)
            else begin
              let got = Mem.Page_table.read_bytes_at pt ~vpn in
              let n = min (Bytes.length got) (Bytes.length expected) in
              (try
                 for off = 0 to n - 1 do
                   let e = Char.code (Bytes.get expected off) in
                   let g = Char.code (Bytes.get got off) in
                   if e <> g then begin
                     page_div := Some { vpn; offset = off; expected = e; got = g };
                     raise Exit
                   end
                 done
               with Exit -> ());
              if
                !page_div = None
                && Bytes.length got <> Bytes.length expected
              then
                layout_div :=
                  Some
                    (Printf.sprintf "page %d size mismatch (recorded %d, got %d)"
                       vpn (Bytes.length expected) (Bytes.length got))
            end)
        seg.R.pages;
      match (!layout_div, !page_div) with
      | Some reason, _ -> diverge st reason
      | None, Some pd ->
        diverge st ~page_diff:pd
          (Printf.sprintf "memory state mismatch in page %d" pd.vpn)
      | None, None ->
        (* Extra-dirty check: every page the re-execution dirtied must
           be in the recorded dirty set (recorded sets are supersets of
           the store-dirtied pages under every backend), else the
           replay wrote somewhere the main did not. *)
        let recorded = Hashtbl.create (Array.length seg.R.pages) in
        Array.iter (fun (vpn, _) -> Hashtbl.replace recorded vpn ()) seg.R.pages;
        let extra =
          Array.fold_left
            (fun acc vpn ->
              match acc with
              | Some _ -> acc
              | None -> if Hashtbl.mem recorded vpn then None else Some vpn)
            None
            (Mem.Page_table.soft_dirty_pages pt)
        in
        (match extra with
        | Some vpn ->
          diverge st
            (Printf.sprintf
               "page %d dirtied by replay but absent from the recorded dirty set"
               vpn)
        | None ->
          if st.idx = Array.length st.segs - 1 then finish_run st
          else begin
            st.idx <- st.idx + 1;
            arm_segment st;
            E.resume st.eng st.pid
          end)
    end
  end

(* ------------------------------------------------------------------ *)
(* Event handling (mirrors Replayer.handle_checker_event)               *)

let apply_effects st effects =
  List.iter
    (fun { R.addr; data } ->
      ignore (Mem.Address_space.write_bytes (aspace st) ~addr data))
    effects

(* Re-execute a process-local syscall, pinning anonymous mmaps to the
   recorded address so the single ASLR stream cannot drift (the same
   §4.3.2 trick the live checker uses). *)
let replay_process_local st (rec_ : R.sys_record) call =
  let c = cpu st in
  let restore_args =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Mmap { addr; flags; _ }
      when flags land Sim_os.Syscall.map_anon <> 0 ->
      Machine.Cpu.set_reg c 1 rec_.R.result;
      Machine.Cpu.set_reg c 4 (flags lor Sim_os.Syscall.map_fixed);
      Some (addr, flags)
    | _ -> None
  in
  E.do_syscall st.eng st.pid;
  (match restore_args with
  | Some (addr, flags) ->
    Machine.Cpu.set_reg c 1 addr;
    Machine.Cpu.set_reg c 4 flags
  | None -> ());
  let verify_result =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Sigreturn -> false
    | _ -> true
  in
  if verify_result && Machine.Cpu.get_reg c 0 <> rec_.R.result then
    diverge st
      (Printf.sprintf "syscall result mismatch: recorded %s = %d, got %d"
         (Sim_os.Syscall.name call) rec_.R.result (Machine.Cpu.get_reg c 0))
  else if st.outcome = None then E.resume st.eng st.pid

(* A boundary syscall from the preamble: re-establish the recorded
   file-backed mapping. The replayer has no filesystem state, so the
   kernel maps fresh zero pages at the pinned address and the content
   travels in the record's [in_data] snapshot. *)
let replay_preamble st (rec_ : R.sys_record) call =
  let c = cpu st in
  (match (call : Sim_os.Syscall.call) with
  | Sim_os.Syscall.Mmap { addr; flags; _ } ->
    Machine.Cpu.set_reg c 1 rec_.R.result;
    Machine.Cpu.set_reg c 4 (flags lor Sim_os.Syscall.map_fixed);
    E.do_syscall st.eng st.pid;
    Machine.Cpu.set_reg c 1 addr;
    Machine.Cpu.set_reg c 4 flags
  | _ -> E.do_syscall st.eng st.pid);
  let got = Machine.Cpu.get_reg c 0 in
  if got <> rec_.R.result then
    diverge st
      (Printf.sprintf "boundary syscall result mismatch: recorded %s = %d, got %d"
         (Sim_os.Syscall.name call) rec_.R.result got)
  else begin
    (match rec_.R.in_data with
    | Some data when rec_.R.result >= 0 -> inject_bytes st ~addr:rec_.R.result data
    | Some _ | None -> ());
    (* The preamble is consumed: open the segment's dirty window, as
       the live start_segment did right after the boundary call. *)
    if st.preamble = [] then Mem.Page_table.clear_soft_dirty (page_table st);
    if st.outcome = None then E.resume st.eng st.pid
  end

let on_syscall st call =
  match st.preamble with
  | rec_ :: rest ->
    if rec_.R.call <> call then
      diverge st
        (Printf.sprintf "boundary syscall mismatch: recorded %s, got %s"
           (Sim_os.Syscall.name rec_.R.call)
           (Sim_os.Syscall.name call))
    else begin
      st.preamble <- rest;
      replay_preamble st rec_ call
    end
  | [] -> (
    match next_interaction st with
    | None ->
      diverge st
        (Printf.sprintf "extra interaction: %s beyond the recorded log"
           (Sim_os.Syscall.name call))
    | Some (R.Nondet _) ->
      diverge st
        (Printf.sprintf
           "interaction mismatch: recorded nondeterministic instruction, got %s"
           (Sim_os.Syscall.name call))
    | Some (R.Ext_signal _) -> assert false (* next_interaction skips these *)
    | Some (R.Sys rec_) ->
      if rec_.R.call <> call then
        diverge st
          (Printf.sprintf "syscall mismatch: recorded %s, got %s"
             (Sim_os.Syscall.name rec_.R.call)
             (Sim_os.Syscall.name call))
      else begin
        let data_matches =
          match rec_.R.in_data with
          | None -> true
          | Some expected -> (
            let got =
              match (call : Sim_os.Syscall.call) with
              | Sim_os.Syscall.Write { addr; len; _ } ->
                read_mem_opt st ~addr ~len
              | Sim_os.Syscall.Open { path_addr; path_len; _ } ->
                read_mem_opt st ~addr:path_addr ~len:path_len
              | _ -> None
            in
            match got with
            | Some b -> Bytes.equal b expected
            | None -> false)
        in
        if not data_matches then
          diverge st
            (Printf.sprintf "syscall argument data mismatch on %s"
               (Sim_os.Syscall.name call))
        else
          match Sim_os.Syscall.categorize call with
          | Sim_os.Syscall.Process_local -> replay_process_local st rec_ call
          | Sim_os.Syscall.Globally_effectful | Sim_os.Syscall.Non_effectful ->
            E.complete_syscall st.eng st.pid ~result:rec_.R.result;
            apply_effects st rec_.R.effects;
            E.resume st.eng st.pid
      end)

let on_nondet st insn =
  match next_interaction st with
  | Some (R.Nondet { insn = recorded_insn; value }) when recorded_insn = insn ->
    let c = cpu st in
    (match Isa.Insn.writes_reg insn with
    | Some reg -> Machine.Cpu.set_reg c reg value
    | None -> ());
    Machine.Cpu.set_pc c (Machine.Cpu.get_pc c + 1);
    E.resume st.eng st.pid
  | Some (R.Sys r) ->
    diverge st
      (Printf.sprintf
         "interaction mismatch: recorded %s, got nondeterministic instruction"
         (Sim_os.Syscall.name r.R.call))
  | Some (R.Nondet _) | Some (R.Ext_signal _) | None ->
    diverge st "extra interaction: nondeterministic instruction beyond the recorded log"

let rec advance st adv =
  match (adv : Exec_point.advance) with
  | Exec_point.Keep_running -> E.resume st.eng st.pid
  | Exec_point.Reached pt -> (
    match st.pending_signals with
    | (spt, signum) :: rest when Exec_point.compare spt pt = 0 ->
      st.pending_signals <- rest;
      E.deliver_signal_now st.eng st.pid signum;
      (match E.state st.eng st.pid with
      | E.Exited _ ->
        diverge st "killed by a replayed signal the recorded main survived"
      | E.Runnable | E.Stopped -> (
        match st.replay with
        | Some r ->
          Exec_point.next_target r;
          advance st (Exec_point.poll r)
        | None -> ()))
    | _ -> end_of_segment st)

let fault_to_string (f : Machine.Cpu.fault) =
  match f with
  | Machine.Cpu.Segv { addr; write } ->
    Printf.sprintf "SIGSEGV at %#x (%s)" addr (if write then "write" else "read")
  | Machine.Cpu.Div_by_zero -> "SIGFPE (division by zero)"
  | Machine.Cpu.Bad_pc pc -> Printf.sprintf "control flow left the code (pc=%d)" pc

let handle_event st ev =
  if st.outcome <> None then () (* stale event after the verdict *)
  else
    match (ev : E.event) with
    | E.Syscall_entry call -> on_syscall st call
    | E.Nondet insn -> on_nondet st insn
    | E.Branch_overflow -> (
      match st.replay with
      | Some r -> advance st (Exec_point.on_branch_overflow r)
      | None -> E.resume st.eng st.pid)
    | E.Breakpoint -> (
      match st.replay with
      | Some r -> advance st (Exec_point.on_breakpoint r)
      | None -> E.resume st.eng st.pid)
    | E.Insn_overflow ->
      diverge st
        (Printf.sprintf
           "timeout: replay exceeded the recorded instruction budget before %s"
           (Exec_point.to_string (cur_seg st).R.end_point))
    | E.Fault f -> diverge st (fault_to_string f)
    | E.Halted -> diverge st "program halted before the recorded segment end"
    | E.Cycle_overflow -> E.resume st.eng st.pid
    | E.Signal _ ->
      (* No external signal sources exist offline; recorded ones are
         delivered by execution point. *)
      E.resume st.eng st.pid

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

let platform_of_name = function
  | "apple_m2" -> Some Platform.apple_m2
  | "intel_i7" -> Some Platform.intel_i7
  | "testing" -> Some Platform.testing
  | _ -> None

let replay ~(manifest : R.manifest) ~(segments : R.segment list) =
  let ids = List.map (fun (s : R.segment) -> s.R.id) segments in
  if ids <> manifest.R.segments then
    Error "segment list does not match the manifest's replay order"
  else
    match platform_of_name manifest.R.header.R.platform with
    | None -> Error ("unknown platform " ^ manifest.R.header.R.platform)
    | Some platform ->
      if platform.Platform.page_size <> manifest.R.header.R.page_size then
        Error
          (Printf.sprintf "page size mismatch: manifest %d, platform %s has %d"
             manifest.R.header.R.page_size platform.Platform.name
             platform.Platform.page_size)
      else (
        match Seglog_io.program_of_record manifest.R.program with
        | Error e -> Error e
        | Ok program -> (
          let plan =
            match manifest.R.config.R.fault with
            | None -> Ok None
            | Some spec -> (
              match Seglog_io.plan_of_spec spec with
              | Ok p -> Ok (Some p)
              | Error e -> Error e)
          in
          match plan with
          | Error e -> Error ("bad recorded fault plan: " ^ e)
          | Ok plan ->
            if segments = [] then
              Ok
                (Verified
                   {
                     segments = 0;
                     final_hash = manifest.R.final_state_hash;
                     final_hash_matches = None;
                   })
            else begin
              (* Same seed, and the spawn below is the first consumer of
                 the engine's entropy stream in the live run too — the
                 initial address-space layout reproduces exactly; every
                 later mmap is pinned from the record. *)
              let eng =
                E.create ~platform ~seed:manifest.R.config.R.seed ()
              in
              let st =
                {
                  eng;
                  pid = -1;
                  segs = Array.of_list segments;
                  plan;
                  timeout_scale = manifest.R.config.R.timeout_scale;
                  final_hash = manifest.R.final_state_hash;
                  idx = 0;
                  events = [];
                  preamble = [];
                  pending_signals = [];
                  replay = None;
                  seg_start_branches = 0;
                  outcome = None;
                }
              in
              let tracer _eng _pid ev = handle_event st ev in
              let pid = E.spawn eng ~tracer ~program ~core:0 () in
              st.pid <- pid;
              E.suspend eng pid;
              arm_segment st;
              E.resume eng pid;
              E.run ~max_ns:max_sim_ns eng;
              match st.outcome with
              | Some v -> Ok v
              | None -> Error "offline replay stalled before reaching a verdict"
            end))

let divergence_report d =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "divergence in segment %d at %s\n" d.segment
       (Exec_point.to_string d.point));
  Buffer.add_string b (Printf.sprintf "  reason: %s\n" d.reason);
  List.iter
    (fun { reg; expected; got } ->
      Buffer.add_string b
        (Printf.sprintf "  register r%d: recorded %d, got %d\n" reg expected got))
    d.reg_diffs;
  (match d.page_diff with
  | Some { vpn; offset; expected; got } ->
    Buffer.add_string b
      (Printf.sprintf
         "  first differing page: vpn %d, byte offset %d: recorded 0x%02x, got 0x%02x\n"
         vpn offset expected got)
  | None -> ());
  Buffer.contents b
