(** Program-state comparison (§3.3, §4.4).

    At the end of a segment the checker's architectural state must equal
    the checkpoint taken when the main process crossed the same
    boundary. Registers (including the pc) are compared directly; memory
    is compared by hashing the contents of the modified pages on each
    side — the "injected hasher" trick that avoids copying page contents
    between processes — and comparing only the 64-bit digests.

    The memory walk is O(truly-diverged-bytes), not O(dirty-set-bytes):

    - {e Frame-identity short-circuit}: a vpn where both sides still map
      the same COW frame (physical identity of the backing bytes) is
      byte-identical by construction and skipped entirely (no read, no
      hash) — skipping symmetrically leaves both running hashes in
      lockstep, so verdicts are unchanged.
    - {e Memoized per-frame digests}: for the remaining vpns, whole-page
      digests are looked up in an optional
      [(frame id, generation) -> digest] cache
      ({!Mem.Page_digest_cache}); only misses read and hash page bytes.
      The segment hash folds per-page {e digests} (never raw bytes), so
      cached and uncached runs compute identical segment hashes and hence
      identical verdicts.

    Comparing a superset of the truly modified pages is sound; pages
    missing from one side's address space are a layout divergence and
    reported as a mismatch in their own right. *)

type result =
  | Match
  | Mismatch of Detection.mismatch

(** Work accounting for one [compare_states] call. [bytes_hashed] counts
    page bytes actually read and hashed (the injected hasher's simulated
    cost); identity-skipped pages and digest-cache hits contribute
    nothing to it. *)
type compare_stats = {
  bytes_hashed : int;
  pages_skipped_identical : int;  (** vpns skipped: same frame both sides *)
  page_hash_hits : int;  (** per-frame digests served from the memo *)
  page_hash_misses : int;  (** per-frame digests computed from bytes *)
}

val compare_states :
  hasher:Config.hasher ->
  ?cache:Mem.Page_digest_cache.t ->
  reference:Machine.Cpu.t ->
  candidate:Machine.Cpu.t ->
  dirty_vpns:int array ->
  unit ->
  result * compare_stats
(** [compare_states ~hasher ?cache ~reference ~candidate ~dirty_vpns ()]
    returns the verdict and the work accounting. [dirty_vpns] must be
    sorted; duplicates are tolerated. Without [cache] every non-identical
    page is hashed from scratch (same verdicts, more bytes). Register
    comparison runs first and stops at the first divergent register — a
    register mismatch is reported without touching memory. *)

val union_sorted : int array -> int array -> int array
(** Merge two sorted vpn arrays, removing duplicates — for combining the
    main-side and checker-side dirty sets. *)
