type mismatch =
  | Register_mismatch of { reg : int; expected : int; got : int }
  | Memory_mismatch of { expected_hash : int64; got_hash : int64 }
  | Layout_mismatch of { vpn : int }
  | Syscall_mismatch of { expected : string; got : string }
  | Syscall_data_mismatch of { syscall : string }
  | Extra_interaction of { got : string }
  | Unexpected_fault of string

type outcome =
  | Detected of mismatch
  | Exception_detected of string
  | Timeout_detected
  | Transient_checker_fault of string
  | Hard_fault of { segment : int; rollbacks : int; last : string }
  | Benign

let mismatch_to_string = function
  | Register_mismatch { reg; expected; got } ->
    Printf.sprintf "register r%d: expected %d, got %d" reg expected got
  | Memory_mismatch { expected_hash; got_hash } ->
    Printf.sprintf "memory hash: expected %Lx, got %Lx" expected_hash got_hash
  | Layout_mismatch { vpn } -> Printf.sprintf "address-space layout at vpn %d" vpn
  | Syscall_mismatch { expected; got } ->
    Printf.sprintf "syscall: expected %s, got %s" expected got
  | Syscall_data_mismatch { syscall } ->
    Printf.sprintf "syscall %s: argument data differs" syscall
  | Extra_interaction { got } ->
    Printf.sprintf "checker issued %s beyond the recorded log" got
  | Unexpected_fault s -> Printf.sprintf "unexpected fault: %s" s

let outcome_to_string = function
  | Detected m -> "detected (" ^ mismatch_to_string m ^ ")"
  | Exception_detected s -> "exception (" ^ s ^ ")"
  | Timeout_detected -> "timeout"
  | Transient_checker_fault s -> "transient checker fault (" ^ s ^ ")"
  | Hard_fault { segment; rollbacks; last } ->
    Printf.sprintf "hard fault (segment %d detected again after %d rollback%s: %s)"
      segment rollbacks
      (if rollbacks = 1 then "" else "s")
      last
  | Benign -> "benign"

let is_detected = function
  | Detected _ | Exception_detected _ | Timeout_detected | Hard_fault _ -> true
  | Transient_checker_fault _ | Benign -> false
