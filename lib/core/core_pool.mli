(** Fleet-level core ownership: one shared big/little pool multiplexing
    every tenant's ready checkers (DESIGN.md §16).

    Placement is per-core work-stealing. Each little core owns a deque
    of ready [(tenant, checker)] pairs; a tenant's checkers are pushed
    at its {e home} core (round-robin at admission). A free core pops
    its own deque LIFO (newest checker, warmest cache) and steals FIFO
    from the others (oldest checker — longest wait, bounding detection
    latency). Big cores mirror the single-tenant drain rule: they
    FIFO-steal queued checkers of tenants whose main has exited, and
    when littles are saturated the pool-wide oldest running little-core
    checker migrates to a free big. Each tenant's main core is reserved
    for its whole lifetime and joins the shared big pool at retirement.

    Isolation: flushing or retiring a tenant touches exactly its own
    queue entries and cores — never another tenant's (the fault
    blast-radius invariant, checked by {!check_invariants}). *)

type t

val create : Sim_os.Engine.t -> Config.t -> t
(** [cfg] is the fleet-level template: its [obs] sink receives the
    pool's events, and its policy knobs ([migration], [dvfs_pacing],
    [pacer_tick_ns]) steer the pool.
    @raise Invalid_argument if the platform has no little cores. *)

val register_tenant : t -> tid:int -> stats:Stats.t -> main_core:int -> unit
(** Admit a tenant: assign its home little core (round-robin) and
    reserve [main_core] (excluded from checker dispatch while the
    tenant lives). Re-registering a live tenant is the rollback path
    and flushes its stale entries instead.
    @raise Invalid_argument on a retired tenant. *)

val enqueue : t -> tid:int -> Sim_os.Engine.pid -> unit
(** Push a ready (stopped, fully armed) checker onto its tenant's home
    deque and dispatch greedily. *)

val finished : t -> Sim_os.Engine.pid -> unit
(** The checker completed (or was killed): frees its core (accounting
    CPU time into its tenant's stats) or removes it from its deque if
    it never ran; unknown pids are a no-op. *)

val main_exited : t -> tid:int -> unit
(** The tenant enters its drain phase: its running little-core checkers
    migrate to free big cores and its queued checkers become eligible
    for direct big-core steals. *)

val set_main_held : t -> tid:int -> bool -> unit

val flush_tenant : t -> tid:int -> unit
(** Drop every scheduling trace of the tenant (dead-process teardown
    after a rollback or abort); its cores immediately redispatch to
    other tenants' work. *)

val retire_tenant : t -> tid:int -> unit
(** Flush the tenant and release its reserved main core into the shared
    big pool. Idempotent. *)

val queued_pids : t -> tid:int -> Sim_os.Engine.pid list
val running_pids : t -> tid:int -> Sim_os.Engine.pid list

val tenant_home : t -> tid:int -> int
(** The tenant's home little core. *)

val backlog : t -> int
(** Queued checkers pool-wide. *)

val steals : t -> int
(** Dispatches that ran a checker off its tenant's home core (FIFO
    steals by other littles plus big-core drain steals), pool-wide. *)

val migrations : t -> int

val pacer_tick : t -> unit
(** The one fleet-wide pacer: accounts running checkers into their
    tenants' stats, emits the [fleet.backlog] counter, attributes
    little-core idle time, and paces the shared little cluster's DVFS
    by the pooled backlog (thresholds scale with the live tenant
    count; any held main or an all-mains-exited drain forces full
    speed). *)

val check_invariants : t -> unit
(** Fleet-scope sweep: every core owned by at most one tenant's
    checker, running/free/reserved partitions disjoint, no entry owned
    by an unknown or retired tenant, no pid both queued and running.
    @raise Segment.Invariant_violation on the first failure. *)
