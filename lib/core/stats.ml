type fleet = {
  mutable home_dispatches : int;
  mutable stolen : int;
}

type seglog = {
  seglog_segments : int;
  seglog_bytes : int;  (* segment files + manifest *)
  seglog_raw_page_bytes : int;
  seglog_stored_page_bytes : int;
}

type backend_acct = {
  mutable b_dispatched : int;
  mutable b_redispatched : int;
  mutable b_leases_expired : int;
  mutable b_stale_verdicts : int;
  mutable b_batches : int;
  mutable b_max_lag : int;
  mutable b_verified : int;
  mutable b_launch_ns : int;
}

type t = {
  mutable checkpoint_count : int;
  mutable nr_slices : int;
  mutable segments_total : int;
  mutable segments_compared : int;
  mutable dirty_pages_total : int;
  mutable bytes_hashed : int;
  mutable pages_skipped_identical : int;
  mutable page_hash_hits : int;
  mutable page_hash_misses : int;
  mutable syscalls_recorded : int;
  mutable nondet_recorded : int;
  mutable signals_recorded : int;
  mutable migrations : int;
  mutable checker_big_ns : float;
  mutable checker_little_ns : float;
  mutable main_wall_ns : float;
  mutable all_wall_ns : float;
  mutable main_user_ns : float;
  mutable main_sys_ns : float;
  mutable detections : (int * Detection.outcome) list;
  mutable fi_outcome : Detection.outcome option;
  mutable fi_fired : bool;
  mutable segment_insn_deltas : int list;
  mutable recoveries : int;
  mutable rechecks : int;
  mutable transient_faults : int;
  mutable watchdog_kills : int;
  mutable hard_faults : int;
  mutable final_regs : int array option;
  mutable final_mem_hash : int64 option;
  mutable profile : (string * int) list;
  mutable block_cache : (int * int * int) option;
  mutable fleet : fleet option;
  mutable seglog : seglog option;
  backend : backend_acct;
}

let create () =
  {
    checkpoint_count = 0;
    nr_slices = 0;
    segments_total = 0;
    segments_compared = 0;
    dirty_pages_total = 0;
    bytes_hashed = 0;
    pages_skipped_identical = 0;
    page_hash_hits = 0;
    page_hash_misses = 0;
    syscalls_recorded = 0;
    nondet_recorded = 0;
    signals_recorded = 0;
    migrations = 0;
    checker_big_ns = 0.0;
    checker_little_ns = 0.0;
    main_wall_ns = 0.0;
    all_wall_ns = 0.0;
    main_user_ns = 0.0;
    main_sys_ns = 0.0;
    detections = [];
    fi_outcome = None;
    fi_fired = false;
    segment_insn_deltas = [];
    recoveries = 0;
    rechecks = 0;
    transient_faults = 0;
    watchdog_kills = 0;
    hard_faults = 0;
    final_regs = None;
    final_mem_hash = None;
    profile = [];
    block_cache = None;
    fleet = None;
    seglog = None;
    backend =
      {
        b_dispatched = 0;
        b_redispatched = 0;
        b_leases_expired = 0;
        b_stale_verdicts = 0;
        b_batches = 0;
        b_max_lag = 0;
        b_verified = 0;
        b_launch_ns = 0;
      };
  }

(* One digest over the main process's final architectural state
   (register file folded with the memory image hash), for the SDC
   oracle: two runs ending in the same state produce the same value. *)
let final_state_hash t =
  match (t.final_regs, t.final_mem_hash) with
  | None, _ | _, None -> None
  | Some regs, Some mem ->
    let st = Ftr_hash.Xxh64.init () in
    Array.iter (fun r -> Ftr_hash.Xxh64.update_int64 st (Int64.of_int r)) regs;
    Ftr_hash.Xxh64.update_int64 st mem;
    Some (Ftr_hash.Xxh64.digest st)

let record_detection t ~segment outcome =
  t.detections <- (segment, outcome) :: t.detections

(* The only place the newest-first storage order is reversed; every
   oldest-first consumer (Runtime.report) must go through this. *)
let detections_oldest_first t = List.rev t.detections

let big_core_work_fraction t =
  let total = t.checker_big_ns +. t.checker_little_ns in
  if total <= 0.0 then 0.0 else t.checker_big_ns /. total

let to_assoc t =
  let f = Printf.sprintf "%.0f" in
  [
    ("timing.all_wall_time", f t.all_wall_ns);
    ("timing.main_wall_time", f t.main_wall_ns);
    ("timing.main_user_time", f t.main_user_ns);
    ("timing.main_sys_time", f t.main_sys_ns);
    ("counter.checkpoint_count", string_of_int t.checkpoint_count);
    ("fixed_interval_slicer.nr_slices", string_of_int t.nr_slices);
    ("segments.total", string_of_int t.segments_total);
    ("segments.compared", string_of_int t.segments_compared);
    ("comparator.dirty_pages", string_of_int t.dirty_pages_total);
    ("comparator.bytes_hashed", string_of_int t.bytes_hashed);
    ("comparator.pages_skipped_identical", string_of_int t.pages_skipped_identical);
    ("comparator.page_hash_hits", string_of_int t.page_hash_hits);
    ("comparator.page_hash_misses", string_of_int t.page_hash_misses);
    ("rr.syscalls", string_of_int t.syscalls_recorded);
    ("rr.nondet_instructions", string_of_int t.nondet_recorded);
    ("rr.signals", string_of_int t.signals_recorded);
    ("scheduler.migrations", string_of_int t.migrations);
    ( "scheduler.big_core_work_fraction",
      Printf.sprintf "%.3f" (big_core_work_fraction t) );
    ("detections", string_of_int (List.length t.detections));
    ("recovery.rollbacks", string_of_int t.recoveries);
    ("recovery.hard_faults", string_of_int t.hard_faults);
    ("recheck.dispatched", string_of_int t.rechecks);
    ("recheck.transient_faults", string_of_int t.transient_faults);
    ("watchdog.kills", string_of_int t.watchdog_kills);
    ("backend.dispatched", string_of_int t.backend.b_dispatched);
    ("backend.redispatched", string_of_int t.backend.b_redispatched);
    ("backend.leases_expired", string_of_int t.backend.b_leases_expired);
    ("backend.stale_verdicts", string_of_int t.backend.b_stale_verdicts);
    ("backend.batches", string_of_int t.backend.b_batches);
    ("backend.max_lag_observed", string_of_int t.backend.b_max_lag);
    ("backend.verified", string_of_int t.backend.b_verified);
    ("backend.launch_overhead_ns", string_of_int t.backend.b_launch_ns);
    ( "final.state_hash",
      match final_state_hash t with
      | None -> "none"
      | Some h -> Printf.sprintf "%016Lx" h );
  ]
  (* Profile rows only exist when --profile was requested, so the
     default stats surface (and every golden) is unchanged. *)
  @ List.map
      (fun (name, self_ns) -> ("profile." ^ name, string_of_int self_ns))
      t.profile
  (* Same opt-in discipline: block-cache rows only when --cpu-stats
     asked for them, keeping the goldens byte-identical by default. *)
  @ (match t.block_cache with
    | None -> []
    | Some (hits, misses, invalidations) ->
      [
        ("cpu.block_cache_hits", string_of_int hits);
        ("cpu.block_cache_misses", string_of_int misses);
        ("cpu.block_cache_invalidations", string_of_int invalidations);
      ])
  (* Fleet rows only exist for tenants scheduled by a [Core_pool], so
     single-tenant runs (and every pre-fleet golden) are unchanged. *)
  @ (match t.fleet with
    | None -> []
    | Some fl ->
      [
        ("fleet.home_dispatches", string_of_int fl.home_dispatches);
        ("fleet.stolen", string_of_int fl.stolen);
      ])
  (* Seglog rows only exist when --record-log persisted a log, the
     same opt-in discipline as above. The compression ratio is raw
     dirty-page payload over stored (post-compression) payload. *)
  @
  match t.seglog with
  | None -> []
  | Some sl ->
    let ratio =
      if sl.seglog_stored_page_bytes > 0 then
        float_of_int sl.seglog_raw_page_bytes /. float_of_int sl.seglog_stored_page_bytes
      else 1.0
    in
    [
      ("seglog.segments", string_of_int sl.seglog_segments);
      ("seglog.bytes_written", string_of_int sl.seglog_bytes);
      ("seglog.raw_page_bytes", string_of_int sl.seglog_raw_page_bytes);
      ("seglog.stored_page_bytes", string_of_int sl.seglog_stored_page_bytes);
      ("seglog.compression_ratio", Printf.sprintf "%.2f" ratio);
    ]
