(* The event types are re-exports of the serializable seglog records:
   the live pipeline stores and replays exactly what the on-disk format
   can express, so the in-memory path doubles as a proof that the
   format is complete. *)

type mem_effect = Seglog.Record.mem_effect = {
  addr : int;
  data : Bytes.t;
}

type sys_record = Seglog.Record.sys_record = {
  call : Sim_os.Syscall.call;
  in_data : Bytes.t option;
  result : int;
  effects : mem_effect list;
}

type event = Seglog.Record.event =
  | Sys of sys_record
  | Nondet of {
      insn : Isa.Insn.t;
      value : int;
    }
  | Ext_signal of {
      at : Exec_point.t;
      signum : Sim_os.Sig_num.t;
    }

(* The log IS a seglog event stream: [record] encodes straight into a
   growable byte buffer and cursors decode back out of it. Cursors hold
   byte positions, so the buffer can keep growing while a checker
   replays (the RAFT streaming mode) — a re-created reader over the
   same bytes sees every appended event. *)
type t = {
  buf : Seglog.Codec.wbuf;
  mutable n : int;
}

let create () = { buf = Seglog.Codec.wbuf (); n = 0 }

let record t ev =
  Seglog.Record.put_event t.buf ev;
  t.n <- t.n + 1

let length t = t.n

(* Decoding our own buffer cannot fail; a Codec.Error here is a codec
   bug, so it propagates. *)
let reader_at t pos =
  Seglog.Codec.rbuf ~pos ~limit:(Seglog.Codec.wlen t.buf) (Seglog.Codec.wdata t.buf)

let events t =
  let r = reader_at t 0 in
  List.init t.n (fun _ -> Seglog.Record.get_event r)

let signal_points t =
  List.filter_map
    (function
      | Ext_signal { at; signum } -> Some (at, signum)
      | Sys _ | Nondet _ -> None)
    (events t)

type cursor = {
  log : t;
  mutable pos : int;  (** byte offset of the next un-consumed event *)
}

let cursor t = { log = t; pos = 0 }

let rec next_interaction c =
  if c.pos >= Seglog.Codec.wlen c.log.buf then None
  else begin
    let r = reader_at c.log c.pos in
    let ev = Seglog.Record.get_event r in
    c.pos <- Seglog.Codec.rpos r;
    match ev with
    | Ext_signal _ -> next_interaction c
    | Sys _ | Nondet _ -> Some ev
  end

let remaining_interactions c =
  let r = reader_at c.log c.pos in
  let count = ref 0 in
  while Seglog.Codec.remaining r > 0 do
    match Seglog.Record.get_event r with
    | Sys _ | Nondet _ -> incr count
    | Ext_signal _ -> ()
  done;
  !count
