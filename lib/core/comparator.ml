type result =
  | Match
  | Mismatch of Detection.mismatch

type compare_stats = {
  bytes_hashed : int;
  pages_skipped_identical : int;
  page_hash_hits : int;
  page_hash_misses : int;
}

let no_stats =
  {
    bytes_hashed = 0;
    pages_skipped_identical = 0;
    page_hash_hits = 0;
    page_hash_misses = 0;
  }

(* Merge two sorted vpn arrays into a fresh sorted duplicate-free array.
   A single linear pass into a worst-case-sized buffer; the [push]
   dedup also tolerates duplicates inside either input. *)
let union_sorted a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 && lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    let k = ref 0 in
    let push v =
      if !k = 0 || out.(!k - 1) <> v then begin
        out.(!k) <- v;
        incr k
      end
    in
    let i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin
        push x;
        incr i
      end
      else if y < x then begin
        push y;
        incr j
      end
      else begin
        push x;
        incr i;
        incr j
      end
    done;
    while !i < la do
      push a.(!i);
      incr i
    done;
    while !j < lb do
      push b.(!j);
      incr j
    done;
    if !k = la + lb then out else Array.sub out 0 !k
  end

(* The per-side hashing state: either streaming XXH64 or an FNV
   accumulator. Memory pages contribute per-frame digests (below), so
   only vpns and digests ever flow through here. *)
type hash_state =
  | Xxh of Ftr_hash.Xxh64.state
  | Fnv of int64 ref

let make_state = function
  | Config.Xxh64_hash -> Xxh (Ftr_hash.Xxh64.init ())
  | Config.Fnv64_hash -> Fnv (ref 0xCBF29CE484222325L)

let mix_int st v =
  match st with
  | Xxh s -> Ftr_hash.Xxh64.update_int64 s (Int64.of_int v)
  | Fnv h -> h := Ftr_hash.Fnv64.combine !h (Int64.of_int v)

let mix_digest st d =
  match st with
  | Xxh s -> Ftr_hash.Xxh64.update_int64 s d
  | Fnv h -> h := Ftr_hash.Fnv64.combine !h d

let digest = function
  | Xxh s -> Ftr_hash.Xxh64.digest s
  | Fnv h -> !h

(* One whole-page digest; this is the only place page bytes are read. *)
let page_digest hasher data =
  match (hasher : Config.hasher) with
  | Config.Xxh64_hash -> Ftr_hash.Xxh64.hash data
  | Config.Fnv64_hash -> Ftr_hash.Fnv64.hash data

let compare_registers ~reference ~candidate =
  let ref_regs = Machine.Cpu.snapshot_regs reference in
  let cand_regs = Machine.Cpu.snapshot_regs candidate in
  let n = Array.length ref_regs in
  let rec scan i =
    if i >= n then begin
      let ref_pc = Machine.Cpu.get_pc reference in
      let cand_pc = Machine.Cpu.get_pc candidate in
      if ref_pc <> cand_pc then
        Some (Detection.Register_mismatch { reg = -1; expected = ref_pc; got = cand_pc })
      else None
    end
    else if cand_regs.(i) <> ref_regs.(i) then
      Some
        (Detection.Register_mismatch
           { reg = i; expected = ref_regs.(i); got = cand_regs.(i) })
    else scan (i + 1)
  in
  scan 0

let compare_states ~hasher ?cache ~reference ~candidate ~dirty_vpns () =
  match compare_registers ~reference ~candidate with
  | Some m -> (Mismatch m, no_stats)
  | None ->
    let ref_pt = Mem.Address_space.page_table (Machine.Cpu.aspace reference) in
    let cand_pt = Mem.Address_space.page_table (Machine.Cpu.aspace candidate) in
    let ref_state = make_state hasher in
    let cand_state = make_state hasher in
    let bytes = ref 0 in
    let skipped = ref 0 in
    let hits = ref 0 in
    let misses = ref 0 in
    let layout_issue = ref None in
    (* The digest of one side of one vpn, through the memo when one is
       supplied. Only misses read and hash page bytes. *)
    let side_digest (frame, generation, data) =
      match cache with
      | None ->
        bytes := !bytes + Bytes.length data;
        page_digest hasher data
      | Some c -> (
        match Mem.Page_digest_cache.find c ~frame ~generation with
        | Some d ->
          incr hits;
          d
        | None ->
          incr misses;
          bytes := !bytes + Bytes.length data;
          let d = page_digest hasher data in
          Mem.Page_digest_cache.store c ~frame ~generation d;
          d)
    in
    let n = Array.length dirty_vpns in
    let i = ref 0 in
    while !layout_issue = None && !i < n do
      let vpn = dirty_vpns.(!i) in
      (* Tolerate duplicates in a caller-supplied sorted set. *)
      if !i > 0 && dirty_vpns.(!i - 1) = vpn then ()
      else begin
        let ref_mapped = Mem.Page_table.is_mapped ref_pt ~vpn in
        let cand_mapped = Mem.Page_table.is_mapped cand_pt ~vpn in
        match (ref_mapped, cand_mapped) with
        | false, false -> ()
        | true, false | false, true ->
          layout_issue := Some (Detection.Layout_mismatch { vpn })
        | true, true ->
          let ((_, _, ref_data) as ref_view) =
            Mem.Page_table.frame_view ref_pt ~vpn
          in
          let ((_, _, cand_data) as cand_view) =
            Mem.Page_table.frame_view cand_pt ~vpn
          in
          if ref_data == cand_data then
            (* Both sides still map the same COW frame (physical identity
               of the backing bytes — frame ids are only unique within
               one allocator): byte-identical by construction. Skipping
               it on both sides leaves the two running hashes in
               lockstep, so the verdict is unchanged. *)
            incr skipped
          else begin
            mix_int ref_state vpn;
            mix_int cand_state vpn;
            mix_digest ref_state (side_digest ref_view);
            mix_digest cand_state (side_digest cand_view)
          end
      end;
      incr i
    done;
    let stats () =
      {
        bytes_hashed = !bytes;
        pages_skipped_identical = !skipped;
        page_hash_hits = !hits;
        page_hash_misses = !misses;
      }
    in
    (match !layout_issue with
    | Some m -> (Mismatch m, stats ())
    | None ->
      let expected_hash = digest ref_state and got_hash = digest cand_state in
      if Int64.equal expected_hash got_hash then (Match, stats ())
      else (Mismatch (Detection.Memory_mismatch { expected_hash; got_hash }), stats ()))
