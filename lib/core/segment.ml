module E = Sim_os.Engine

exception Invariant_violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Invariant_violation s)) fmt

type streaming = {
  cursor : Rr_log.cursor;
  mutable waiting : bool;
  started_ns : int;
}

type recording = {
  log : Rr_log.t;
  streaming : streaming option;
}

type recorded = {
  log : Rr_log.t;
  end_point : Exec_point.t;
  insn_delta : int;
  main_dirty : int array;
  snapshot : E.pid option;
  streaming : streaming option;
}

type checking = {
  log : Rr_log.t;
  cursor : Rr_log.cursor;
  replay : Exec_point.replay;
  mutable pending_signals : (Exec_point.t * Sim_os.Sig_num.t) list;
  end_point : Exec_point.t;
      (* retained from the recorded payload so a re-dispatch can rebuild
         the replay plan from scratch *)
  insn_delta : int;
  main_dirty : int array;
  snapshot : E.pid option;
  launched_at_ns : int;
}

type state =
  | Recording of recording
  | Awaiting_launch of recorded
  | Checking of checking
  | Done

type phase =
  | Recording_p
  | Awaiting_launch_p
  | Checking_p
  | Done_p

let phase_of_state = function
  | Recording _ -> Recording_p
  | Awaiting_launch _ -> Awaiting_launch_p
  | Checking _ -> Checking_p
  | Done -> Done_p

let phase_to_string = function
  | Recording_p -> "recording"
  | Awaiting_launch_p -> "awaiting-launch"
  | Checking_p -> "checking"
  | Done_p -> "done"

type t = {
  id : int;
  mutable checker : E.pid;
      (* replaced when a re-check/watchdog re-dispatch promotes the
         spare; the roles table is re-keyed by the caller *)
  mutable spare : E.pid option;
      (* pristine fork taken just before the checker first runs; the
         fresh checker a re-dispatch launches from *)
  mutable redispatches : int;
  mutable recheck_of : Detection.outcome option;
      (* the failure that triggered the current re-check; a passing
         re-check resolves it as Transient_checker_fault *)
  mutable state : state;
  mutable history : phase list;  (** oldest first, starting [Recording_p] *)
  mutable torn_down : bool;
}

let id t = t.id
let checker t = t.checker
let spare t = t.spare
let set_spare t pid = t.spare <- pid
let redispatches t = t.redispatches
let recheck_of t = t.recheck_of
let state t = t.state
let phase t = phase_of_state t.state
let history t = t.history
let torn_down t = t.torn_down

(* The paper's pipeline (figure 1(b)): record, hand over, replay, retire.
   [Recording_p -> Done_p] is the one shortcut: a RAFT streaming checker
   that dies (fault, timeout, divergence) while its segment is still
   being recorded is retired straight from the record phase.
   [Checking_p -> Awaiting_launch_p] is the re-dispatch loop (DESIGN.md
   §13): a failed or watchdog-killed check returns to the launch queue
   on a fresh checker forked from the segment's start snapshot. *)
let legal_transition ~from ~into =
  match (from, into) with
  | Recording_p, Awaiting_launch_p
  | Awaiting_launch_p, Checking_p
  | Checking_p, Done_p
  | Checking_p, Awaiting_launch_p
  | Recording_p, Done_p ->
    true
  | _, _ -> false

let legal_history phases =
  let rec ok = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> legal_transition ~from:a ~into:b && ok rest
  in
  match phases with
  | Recording_p :: _ -> ok phases
  | _ -> false

let transition t into_state =
  let from = phase_of_state t.state and into = phase_of_state into_state in
  if not (legal_transition ~from ~into) then
    violation "segment %d: illegal transition %s -> %s" t.id
      (phase_to_string from) (phase_to_string into);
  t.state <- into_state;
  t.history <- t.history @ [ into ]

let create ~id ~checker =
  {
    id;
    checker;
    spare = None;
    redispatches = 0;
    recheck_of = None;
    state = Recording { log = Rr_log.create (); streaming = None };
    history = [ Recording_p ];
    torn_down = false;
  }

let start_streaming t ~started_ns =
  match t.state with
  | Recording ({ streaming = None; log } as r) ->
    let s = { cursor = Rr_log.cursor log; waiting = false; started_ns } in
    t.state <- Recording { r with streaming = Some s }
  | Recording { streaming = Some _; _ } ->
    violation "segment %d: streaming started twice" t.id
  | Awaiting_launch _ | Checking _ | Done ->
    violation "segment %d: streaming start outside the record phase (%s)" t.id
      (phase_to_string (phase t))

let finish_recording t ~end_point ~insn_delta ~main_dirty ~snapshot =
  match t.state with
  | Recording { log; streaming } ->
    transition t
      (Awaiting_launch { log; end_point; insn_delta; main_dirty; snapshot; streaming })
  | Awaiting_launch _ | Checking _ | Done ->
    violation "segment %d: finish_recording in state %s" t.id
      (phase_to_string (phase t))

let recorded t =
  match t.state with
  | Awaiting_launch r -> r
  | Recording _ | Checking _ | Done ->
    violation "segment %d: not awaiting launch (%s)" t.id
      (phase_to_string (phase t))

let begin_checking t ~replay ~pending_signals ~launched_at_ns =
  match t.state with
  | Awaiting_launch r ->
    let cursor =
      match r.streaming with
      | Some s -> s.cursor
      | None -> Rr_log.cursor r.log
    in
    transition t
      (Checking
         {
           log = r.log;
           cursor;
           replay;
           pending_signals;
           end_point = r.end_point;
           insn_delta = r.insn_delta;
           main_dirty = r.main_dirty;
           snapshot = r.snapshot;
           launched_at_ns;
         })
  | Recording _ | Checking _ | Done ->
    violation "segment %d: begin_checking in state %s" t.id
      (phase_to_string (phase t))

(* Return a failed/killed check to the launch queue on a fresh checker
   (the caller promotes the spare and re-keys the roles table). The
   recorded payload is rebuilt from the checking state; the log cursor
   and replay plan are recreated from scratch at the next launch, and a
   re-dispatched check never streams (its checker starts from the
   segment's start state with the log already complete). *)
let redispatch t ~checker =
  match t.state with
  | Checking c ->
    t.checker <- checker;
    t.spare <- None;
    t.redispatches <- t.redispatches + 1;
    transition t
      (Awaiting_launch
         {
           log = c.log;
           end_point = c.end_point;
           insn_delta = c.insn_delta;
           main_dirty = c.main_dirty;
           snapshot = c.snapshot;
           streaming = None;
         })
  | Recording _ | Awaiting_launch _ | Done ->
    violation "segment %d: redispatch in state %s" t.id
      (phase_to_string (phase t))

(* A checker that died between dispatch and launch (the pre-first-
   heartbeat window, remote backend) is replaced in place: the spare is
   promoted without leaving Awaiting_launch — there is no checking state
   to unwind, the recorded payload is untouched, and the re-launch goes
   through the normal launch path. Counts as a re-dispatch. *)
let replace_checker_prelaunch t ~checker =
  match t.state with
  | Awaiting_launch _ ->
    t.checker <- checker;
    t.spare <- None;
    t.redispatches <- t.redispatches + 1
  | Recording _ | Checking _ | Done ->
    violation "segment %d: pre-launch checker replacement in state %s" t.id
      (phase_to_string (phase t))

let set_recheck_of t outcome = t.recheck_of <- outcome

let complete t =
  match t.state with
  | Checking _ | Recording { streaming = Some _; _ } -> transition t Done
  | Recording { streaming = None; _ } ->
    violation "segment %d: completed while recording with no streaming checker"
      t.id
  | Awaiting_launch _ -> violation "segment %d: completed before launch" t.id
  | Done -> violation "segment %d: completed twice" t.id

let tear_down t = t.torn_down <- true

(* ------------------------------------------------------------------ *)
(* Per-state accessors. Each is total over exactly the states where the
   datum exists; asking outside them is itself an invariant violation,
   which is what replaced the seed implementation's [Option.get]s. *)

let log t =
  match t.state with
  | Recording { log; _ } -> log
  | Awaiting_launch { log; _ } -> log
  | Checking { log; _ } -> log
  | Done -> violation "segment %d: no log after completion" t.id

let checking t =
  match t.state with
  | Checking c -> c
  | Recording _ | Awaiting_launch _ | Done ->
    violation "segment %d: not checking (%s)" t.id (phase_to_string (phase t))

let cursor t =
  match t.state with
  | Recording { streaming = Some s; _ } -> Some s.cursor
  | Recording { streaming = None; _ } -> None
  | Awaiting_launch { streaming = Some s; _ } -> Some s.cursor
  | Awaiting_launch { streaming = None; _ } -> None
  | Checking c -> Some c.cursor
  | Done -> None

let snapshot t =
  match t.state with
  | Recording _ | Done -> None
  | Awaiting_launch { snapshot; _ } -> snapshot
  | Checking { snapshot; _ } -> snapshot

let streaming t =
  match t.state with
  | Recording { streaming; _ } | Awaiting_launch { streaming; _ } -> streaming
  | Checking _ | Done -> None

(* The checker has been handed to the scheduler: either its segment
   reached the check phase, or it is streaming during the record phase. *)
let launched_at t =
  match t.state with
  | Checking { launched_at_ns; _ } -> Some launched_at_ns
  | Recording { streaming = Some s; _ } | Awaiting_launch { streaming = Some s; _ }
    ->
    Some s.started_ns
  | Recording { streaming = None; _ }
  | Awaiting_launch { streaming = None; _ }
  | Done ->
    None

let waiting t =
  match streaming t with
  | Some s -> s.waiting
  | None -> false

let set_waiting t flag =
  match streaming t with
  | Some s -> s.waiting <- flag
  | None ->
    violation "segment %d: no streaming checker to mark %s" t.id
      (if flag then "waiting" else "runnable")

let is_done t = t.state = Done

(* ------------------------------------------------------------------ *)
(* Debug invariants over one segment (the cross-structure run-level
   checks live in Run_ctx.check_invariants). *)

let check_invariants t =
  if not (legal_history t.history) then
    violation "segment %d: illegal phase history [%s]" t.id
      (String.concat "; " (List.map phase_to_string t.history));
  (match List.rev t.history with
  | last :: _ when last <> phase t ->
    violation "segment %d: history tail %s disagrees with state %s" t.id
      (phase_to_string last)
      (phase_to_string (phase t))
  | _ -> ());
  match t.state with
  | Checking c ->
    (* Replay targets are consumed in order; pending signals must never
       outlive the replay plan that carries them. *)
    if Exec_point.finished c.replay && c.pending_signals <> [] then
      violation "segment %d: replay finished with %d pending signals" t.id
        (List.length c.pending_signals)
  | Recording _ | Awaiting_launch _ | Done -> ()
