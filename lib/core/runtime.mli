(** Top-level entry points: run a program under Parallaft/RAFT, or bare
    for a baseline measurement. Each run gets a fresh engine, so runs
    are independent and reproducible from their seed. *)

type report = {
  stats : Stats.t;
  detections : (int * Detection.outcome) list;  (** oldest first *)
  aborted : bool;
  exit_status : int option;  (** main's status; [None] if it never exited *)
  output : string;  (** captured stdout *)
  wall_ns : int;
  energy_j : float;
  energy_breakdown : (string * float) list;
  runtime_work_ns : float;
  cow_copies : int;
  dram_accesses : int;
  obs : Obs.Sink.t option;
      (** the sink the run wrote into (the one from [config.obs]), so
          callers can export the trace or assert on per-segment metrics
          without holding onto the config *)
}

type baseline = {
  wall_ns : int;
  user_ns : float;
  sys_ns : float;
  energy_j : float;
  output : string;
  exit_status : int option;
}

val run_protected :
  ?seed:int64 ->
  ?rng:Util.Rng.t ->
  ?prng:Util.Rng.t ->
  ?before_run:(Sim_os.Engine.t -> Coordinator.t -> unit) ->
  platform:Platform.t ->
  config:Config.t ->
  program:Isa.Program.t ->
  unit ->
  report
(** [before_run] runs after the coordinator is set up but before the
    simulation — the hook for registering measurement ticks (PSS/power
    samplers) or external-signal drivers. [rng]/[prng] are forwarded to
    {!Coordinator.create}: passing a fleet tenant's streams
    ({!Fleet.tenant_rngs}) replays that tenant's run solo — the
    baseline the per-tenant determinism tests compare against. *)

val run_baseline :
  ?seed:int64 ->
  ?block_cache:int ->
  ?before_run:(Sim_os.Engine.t -> Sim_os.Engine.pid -> unit) ->
  platform:Platform.t ->
  program:Isa.Program.t ->
  unit ->
  baseline
(** [block_cache] overrides the decoded-block cache capacity for the
    bare run ([<= 0] disables; default
    {!Machine.Cpu.default_block_cache}). *)
