(** The recovery stage of the pipeline.

    Owns the run's fault-response state: promotion of verified
    checkpoint snapshots into the recovery point (contiguous-prefix
    rule), rollback of the whole run to that point (the paper's Table 2
    "error recovery" extension), and the abort teardown that kills
    every owned process so the simulation can end. *)

val note_verified :
  Run_ctx.t -> id:int -> snapshot:Sim_os.Engine.pid option -> unit
(** Segment [id] verified cleanly; its end-of-segment snapshot (if any)
    becomes promotable. Frees snapshots that stop being useful. *)

val recover : Run_ctx.t -> unit
(** Tear down every segment and checker, roll the main process back to
    the recovery point, restart the pipeline there. Aborts instead when
    no verified checkpoint is retained. *)

val abort_run : Run_ctx.t -> unit
(** Terminate the protected run: close dangling trace spans, kill every
    owned process (checkers, snapshots, recovery state, the main). *)
