(* Fleet-level core ownership (DESIGN.md §16): one shared big/little
   pool multiplexing every tenant's ready checkers.

   Placement is per-core work-stealing: each little core owns a deque
   of ready (tenant, checker) pairs. A tenant's checkers are enqueued
   at its *home* core (assigned round-robin at admission, for cache
   affinity); a free home core pops its own deque LIFO (newest checker,
   warmest cache), while a free core with an empty deque steals FIFO
   from the others (oldest checker, longest wait — bounds detection
   latency). Big cores are drain/overflow resources, exactly as in the
   single-tenant scheduler: a queued checker whose tenant's main has
   exited may be stolen directly onto a free big core, and when littles
   are saturated the pool-wide *oldest* running little-core checker
   migrates to a free big, freeing a little for the newest (§4.5,
   fleet-wide).

   Each tenant's reserved main core never serves checkers while the
   tenant lives; it joins the shared big pool when the tenant
   completes. Teardown is per-tenant: flushing one tenant's entries
   frees exactly its cores and queue slots and never touches another
   tenant's (the fault blast-radius invariant). *)

module E = Sim_os.Engine

type entry = {
  tid : int;
  pid : E.pid;
  mutable core : int;
  mutable last_cpu_ns : float;  (* user+sys at the last accounting point *)
}

type tenant = {
  tid : int;
  stats : Stats.t;
  home : int;  (* home little core: the tenant's enqueue target *)
  main_core : int;  (* reserved for the tenant's main process *)
  mutable main_exited : bool;
  mutable main_held : bool;
  mutable retired : bool;  (* completed or aborted; cores released *)
}

type t = {
  eng : E.t;
  cfg : Config.t;  (* fleet-level template: obs sink + policy knobs *)
  little : int array;
  deques : (int * E.pid) Util.Deque.t array;  (* one per little core *)
  mutable free_little : int list;
  mutable free_big : int list;  (* unreserved bigs + released main cores *)
  mutable reserved : (int * int) list;  (* main core -> live-tenant refcount *)
  mutable running : entry list;  (* oldest first, pool-wide *)
  tenants : (int, tenant) Hashtbl.t;
  mutable next_home : int;
  mutable steal_cursor : int;
  mutable steals : int;
  mutable migrations : int;
  mutable idle_ticks : int;
}

let create eng cfg =
  let little = Array.of_list (E.little_cores eng) in
  if Array.length little = 0 then invalid_arg "Core_pool.create: no little cores";
  {
    eng;
    cfg;
    little;
    deques = Array.map (fun _ -> Util.Deque.create ()) little;
    free_little = Array.to_list little;
    free_big = E.big_cores eng;
    reserved = [];
    running = [];
    tenants = Hashtbl.create 8;
    next_home = 0;
    steal_cursor = 0;
    steals = 0;
    migrations = 0;
    idle_ticks = 0;
  }

let tenant t tid =
  match Hashtbl.find_opt t.tenants tid with
  | Some tn -> tn
  | None -> invalid_arg (Printf.sprintf "Core_pool: unknown tenant %d" tid)

let is_little t core = Array.exists (( = ) core) t.little

let deque_index t core =
  let rec go i =
    if i >= Array.length t.little then
      invalid_arg (Printf.sprintf "Core_pool: core %d has no deque" core)
    else if t.little.(i) = core then i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Observability (fleet-level sink carried by the template config)      *)

let emit_ev t ~track ~phase ?args name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.emit s ~ts_ns:(E.time_ns t.eng) ~track ~phase ?args name

let observe t name v =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.observe s name v

let sink_incr t name =
  match t.cfg.Config.obs with None -> () | Some s -> Obs.Sink.incr s name

let phase_enter t ~track name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.phase_enter s ~ts_ns:(E.time_ns t.eng) ~track name

let phase_leave t ~track name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.phase_leave s ~ts_ns:(E.time_ns t.eng) ~track name

let phase_add t ~tracks name ns =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.phase_add s ~ts_ns:(E.time_ns t.eng) ~tracks name ns

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let cpu_ns t pid =
  let st = E.proc_stats t.eng pid in
  st.E.user_ns +. st.E.sys_ns

let account t e =
  let now = cpu_ns t e.pid in
  let delta = Float.max 0.0 (now -. e.last_cpu_ns) in
  e.last_cpu_ns <- now;
  let st = (tenant t e.tid).stats in
  if is_little t e.core then
    st.Stats.checker_little_ns <- st.Stats.checker_little_ns +. delta
  else st.Stats.checker_big_ns <- st.Stats.checker_big_ns +. delta

let backlog t =
  Array.fold_left (fun acc d -> acc + Util.Deque.length d) 0 t.deques

let queue_gauge t = observe t "fleet.queue_depth" (float_of_int (backlog t))

(* ------------------------------------------------------------------ *)
(* Reservation of tenant main cores                                    *)

let reserved_count t core =
  match List.assoc_opt core t.reserved with Some n -> n | None -> 0

let reserve_main t core =
  t.reserved <-
    (core, reserved_count t core + 1) :: List.remove_assoc core t.reserved;
  t.free_big <- List.filter (( <> ) core) t.free_big

let unreserve_main t core =
  let n = reserved_count t core - 1 in
  t.reserved <-
    (if n > 0 then (core, n) :: List.remove_assoc core t.reserved
     else List.remove_assoc core t.reserved);
  if
    n <= 0
    && List.mem core (E.big_cores t.eng)
    && (not (List.mem core t.free_big))
    && not (List.exists (fun e -> e.core = core) t.running)
  then t.free_big <- core :: t.free_big

(* ------------------------------------------------------------------ *)
(* Core allocation                                                     *)

let release_core t core =
  if is_little t core then t.free_little <- core :: t.free_little
  else if reserved_count t core > 0 then
    (* A reserved main core stays parked for its tenant. *)
    ()
  else if List.mem core (E.big_cores t.eng) then t.free_big <- core :: t.free_big
  else
    invalid_arg
      (Printf.sprintf "Core_pool.release_core: core %d in neither pool" core)

let note_dispatch tn ~stolen =
  match tn.stats.Stats.fleet with
  | None -> ()
  | Some f ->
    if stolen then f.Stats.stolen <- f.Stats.stolen + 1
    else f.Stats.home_dispatches <- f.Stats.home_dispatches + 1

let start_on t (tid, pid) core ~stolen =
  let tn = tenant t tid in
  if stolen then begin
    t.steals <- t.steals + 1;
    sink_incr t "fleet.steals";
    emit_ev t ~track:(Obs.Trace.Tenant tid) ~phase:Obs.Trace.Instant
      ~args:
        [ ("pid", Obs.Trace.Int pid); ("core", Obs.Trace.Int core) ]
      "steal"
  end;
  note_dispatch tn ~stolen;
  E.set_core t.eng pid ~core;
  t.running <- t.running @ [ { tid; pid; core; last_cpu_ns = cpu_ns t pid } ];
  phase_leave t ~track:(Obs.Trace.Proc pid) "checker_launch";
  E.resume t.eng pid

(* Work selection for a free little core: own deque LIFO first, then a
   FIFO steal scanning the other deques round-robin. Returns the item
   and whether it was a steal (ran off its tenant's home core). *)
let take_for_little t core =
  let own = deque_index t core in
  match Util.Deque.pop_back t.deques.(own) with
  | Some (tid, pid) ->
    (* Popping the home deque is only a "home" dispatch if this core IS
       the popper's home; after migration churn it always is, because
       enqueue targets the home deque and [own] = this core's deque. *)
    Some ((tid, pid), (tenant t tid).home <> core)
  | None ->
    let n = Array.length t.deques in
    let rec scan k =
      if k >= n then None
      else
        let i = (own + 1 + k) mod n in
        match Util.Deque.steal_front t.deques.(i) with
        | Some item -> Some (item, true)
        | None -> scan (k + 1)
    in
    scan 0

(* Work selection for a free big core: FIFO-steal the oldest queued
   checker of any *draining* tenant (main exited) — mirroring the
   single-tenant rule that checkers only take big cores once the main
   is gone. Running tenants reach big cores through migration instead. *)
let take_for_big t =
  let n = Array.length t.deques in
  let rec scan k =
    if k >= n then None
    else
      let i = (t.steal_cursor + k) mod n in
      let stolen =
        Util.Deque.remove_where t.deques.(i) (fun (tid, _) ->
            (tenant t tid).main_exited)
      in
      match stolen with
      | first :: rest ->
        (* Only the oldest is dispatched now; re-queue the others at the
           front (remove_where preserved their relative order). *)
        List.iter (fun item -> Util.Deque.push_back t.deques.(i) item)
          (List.rev rest);
        t.steal_cursor <- (i + 1) mod n;
        Some first
      | [] -> scan (k + 1)
  in
  scan 0

(* Pool-wide oldest running little-core checker -> [big]; returns the
   freed little core. *)
let migrate_oldest_to_big t big =
  match List.find_opt (fun e -> is_little t e.core) t.running with
  | None -> None
  | Some e ->
    account t e;
    let freed = e.core in
    e.core <- big;
    E.set_core t.eng e.pid ~core:big;
    t.migrations <- t.migrations + 1;
    let st = (tenant t e.tid).stats in
    st.Stats.migrations <- st.Stats.migrations + 1;
    emit_ev t ~track:(Obs.Trace.Proc e.pid) ~phase:Obs.Trace.Instant
      ~args:[ ("from", Obs.Trace.Int freed); ("to", Obs.Trace.Int big) ]
      "migrate";
    sink_incr t "sched.migrations";
    Some freed

let rec try_dispatch t =
  match t.free_little with
  | c :: rest -> (
    match take_for_little t c with
    | Some (item, stolen) ->
      t.free_little <- rest;
      start_on t item c ~stolen;
      try_dispatch t
    | None ->
      (* Every deque is empty: nothing for bigs either. *)
      ())
  | [] -> try_big t

and try_big t =
  if backlog t > 0 then
    match t.free_big with
    | [] -> ()
    | big :: rest -> (
      match take_for_big t with
      | Some item ->
        t.free_big <- rest;
        start_on t item big ~stolen:true;
        try_dispatch t
      | None ->
        if t.cfg.Config.migration then
          match migrate_oldest_to_big t big with
          | Some freed ->
            t.free_big <- rest;
            t.free_little <- freed :: t.free_little;
            try_dispatch t
          | None -> ())

(* ------------------------------------------------------------------ *)
(* Tenant lifecycle                                                    *)

(* Flush every scheduling trace of a tenant: queued entries leave the
   deques, running entries release their cores. The tenant's processes
   are assumed dead or dying (rollback/abort teardown killed them);
   other tenants' entries are untouched, and the freed cores go
   straight back to work for them. *)
let flush_tenant t ~tid =
  Array.iter
    (fun d ->
      let removed = Util.Deque.remove_where d (fun (tid', _) -> tid' = tid) in
      List.iter
        (fun (_, pid) ->
          phase_leave t ~track:(Obs.Trace.Proc pid) "checker_launch")
        removed;
      if removed <> [] then queue_gauge t)
    t.deques;
  let mine, rest = List.partition (fun (e : entry) -> e.tid = tid) t.running in
  t.running <- rest;
  List.iter
    (fun e ->
      account t e;
      release_core t e.core)
    mine;
  try_dispatch t

let register_tenant t ~tid ~stats ~main_core =
  match Hashtbl.find_opt t.tenants tid with
  | Some tn ->
    if tn.retired then
      invalid_arg (Printf.sprintf "Core_pool: tenant %d already retired" tid);
    (* Re-registration is the rollback path: a fresh per-tenant
       scheduler facade over the same pool slot. The old bookkeeping
       refers to dead pids; flush it. *)
    flush_tenant t ~tid
  | None ->
    let home = t.little.(t.next_home mod Array.length t.little) in
    t.next_home <- t.next_home + 1;
    reserve_main t main_core;
    Hashtbl.replace t.tenants tid
      { tid; stats; home; main_core; main_exited = false; main_held = false;
        retired = false }

let enqueue t ~tid pid =
  let tn = tenant t tid in
  Util.Deque.push_back t.deques.(deque_index t tn.home) (tid, pid);
  queue_gauge t;
  phase_enter t ~track:(Obs.Trace.Proc pid) "checker_launch";
  try_dispatch t

let finished t pid =
  match List.partition (fun e -> e.pid = pid) t.running with
  | [ e ], rest ->
    account t e;
    t.running <- rest;
    release_core t e.core;
    try_dispatch t
  | _, _ ->
    let removed = ref false in
    Array.iter
      (fun d ->
        let r = Util.Deque.remove_where d (fun (_, pid') -> pid' = pid) in
        if r <> [] then removed := true)
      t.deques;
    if !removed then begin
      queue_gauge t;
      phase_leave t ~track:(Obs.Trace.Proc pid) "checker_launch"
    end

let main_exited t ~tid =
  let tn = tenant t tid in
  tn.main_exited <- true;
  (* Drain this tenant's tail on big cores (§4.5, per tenant): its
     running little-core checkers migrate to free bigs, and its queued
     checkers become eligible for direct big-core steals. *)
  if t.cfg.Config.migration then begin
    let continue_migrating = ref true in
    while !continue_migrating do
      match t.free_big with
      | [] -> continue_migrating := false
      | big :: rest -> (
        match
          List.find_opt
            (fun (e : entry) -> e.tid = tid && is_little t e.core)
            t.running
        with
        | None -> continue_migrating := false
        | Some e ->
          account t e;
          let freed = e.core in
          e.core <- big;
          E.set_core t.eng e.pid ~core:big;
          t.free_big <- rest;
          t.free_little <- freed :: t.free_little;
          t.migrations <- t.migrations + 1;
          tn.stats.Stats.migrations <- tn.stats.Stats.migrations + 1;
          emit_ev t ~track:(Obs.Trace.Proc e.pid) ~phase:Obs.Trace.Instant
            ~args:[ ("from", Obs.Trace.Int freed); ("to", Obs.Trace.Int big) ]
            "migrate";
          sink_incr t "sched.migrations")
    done
  end;
  try_dispatch t

let set_main_held t ~tid held = (tenant t tid).main_held <- held

(* Retire a tenant: flush its scheduling state and return its reserved
   main core to the shared big pool. *)
let retire_tenant t ~tid =
  let tn = tenant t tid in
  if not tn.retired then begin
    flush_tenant t ~tid;
    tn.retired <- true;
    unreserve_main t tn.main_core;
    try_dispatch t
  end

let queued_pids t ~tid =
  Array.to_list t.deques
  |> List.concat_map Util.Deque.to_list
  |> List.filter_map (fun (tid', pid) -> if tid' = tid then Some pid else None)

let running_pids t ~tid =
  List.filter_map
    (fun (e : entry) -> if e.tid = tid then Some e.pid else None)
    t.running

let steals t = t.steals
let migrations t = t.migrations

let tenant_home t ~tid = (tenant t tid).home

(* ------------------------------------------------------------------ *)
(* Pacing: one pool-wide pacer replaces the per-run pacers (per-tenant
   pacer_tick is a no-op in fleet mode). Accounting and idle
   attribution are pool-wide; the DVFS control variable is the total
   checker backlog across tenants, with any held main or a drain phase
   (all live mains exited) forcing full speed. *)

let active_tenants t =
  Hashtbl.fold (fun _ tn acc -> if tn.retired then acc else tn :: acc) t.tenants []

let pacer_tick t =
  List.iter (fun e -> account t e) t.running;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Counter
    ~args:
      [
        ("queued", Obs.Trace.Int (backlog t));
        ("running", Obs.Trace.Int (List.length t.running));
        ("steals", Obs.Trace.Int t.steals);
      ]
    "fleet.backlog";
  (let littles_running =
     List.length (List.filter (fun e -> is_little t e.core) t.running)
   in
   let idle_littles = Array.length t.little - littles_running in
   if idle_littles > 0 then
     phase_add t ~tracks:[ Obs.Trace.Run ] "scheduler_idle"
       (idle_littles * t.cfg.Config.pacer_tick_ns));
  if t.cfg.Config.dvfs_pacing then begin
    let level = E.dvfs_level t.eng ~cluster:1 in
    let top =
      Array.length
        (Platform.little_cluster (E.platform t.eng)).Platform.freq_levels_mhz
      - 1
    in
    let active = active_tenants t in
    let any_held = List.exists (fun tn -> tn.main_held) active in
    let draining =
      active <> [] && List.for_all (fun tn -> tn.main_exited) active
    in
    let outstanding = backlog t + List.length t.running in
    let littles_running =
      List.length (List.filter (fun e -> is_little t e.core) t.running)
    in
    let idle_littles = Array.length t.little - littles_running in
    (* Backlog thresholds scale with the number of live tenants: the
       single-tenant pacer holds the backlog near 1-2 segments per run,
       so the pool holds it near that per tenant. *)
    let n_active = max 1 (List.length active) in
    if draining then begin
      t.idle_ticks <- 0;
      E.set_dvfs_level t.eng ~cluster:1 ~level:top
    end
    else if
      (* Saturation is the pool's up signal: queued work with every
         little busy means the cluster is the bottleneck right now,
         whatever the per-tenant backlog averages look like. *)
      any_held
      || (backlog t > 0 && idle_littles = 0)
      || outstanding > 3 * n_active
    then begin
      t.idle_ticks <- 0;
      let step = if any_held then 2 else 1 in
      E.set_dvfs_level t.eng ~cluster:1 ~level:(min top (level + step))
    end
    else if
      outstanding <= 2 * n_active && (idle_littles > 0 || outstanding <= n_active)
    then begin
      t.idle_ticks <- t.idle_ticks + 1;
      if t.idle_ticks >= 2 && level > 0 then begin
        E.set_dvfs_level t.eng ~cluster:1 ~level:(level - 1);
        t.idle_ticks <- 0
      end
    end
    else t.idle_ticks <- 0
  end

(* ------------------------------------------------------------------ *)
(* Fleet-scope invariants (DESIGN.md §16): cross-checked from each
   tenant's per-event sweep and the fleet's periodic tick. *)

let violation fmt =
  Printf.ksprintf (fun s -> raise (Segment.Invariant_violation s)) fmt

let check_invariants t =
  (* Every live core is owned by at most one tenant's checker. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt seen e.core with
      | Some other ->
        violation "core %d owned by checkers of tenants %d and %d" e.core other
          e.tid
      | None -> Hashtbl.replace seen e.core e.tid);
      (match Hashtbl.find_opt t.tenants e.tid with
      | None -> violation "running checker %d belongs to unknown tenant %d" e.pid e.tid
      | Some tn when tn.retired ->
        violation "running checker %d belongs to retired tenant %d" e.pid e.tid
      | Some _ -> ());
      if List.mem e.core t.free_little || List.mem e.core t.free_big then
        violation "core %d is both running checker %d and free" e.core e.pid;
      if reserved_count t e.core > 0 then
        violation "checker %d runs on reserved main core %d" e.pid e.core)
    t.running;
  Array.iter
    (fun d ->
      List.iter
        (fun (tid, pid) ->
          match Hashtbl.find_opt t.tenants tid with
          | None -> violation "queued checker %d belongs to unknown tenant %d" pid tid
          | Some tn when tn.retired ->
            violation "queued checker %d belongs to retired tenant %d" pid tid
          | Some _ ->
            if List.exists (fun e -> e.pid = pid) t.running then
              violation "checker %d is both queued and running" pid)
        (Util.Deque.to_list d))
    t.deques;
  let check_free kind cores =
    List.iter
      (fun c ->
        if List.length (List.filter (( = ) c) cores) > 1 then
          violation "%s core %d is free twice" kind c)
      cores
  in
  check_free "little" t.free_little;
  check_free "big" t.free_big;
  List.iter
    (fun c ->
      if reserved_count t c > 0 then
        violation "reserved main core %d is in the free big pool" c)
    t.free_big
