(** Execution points and their record-and-replay (§4.2).

    An execution point is a (retired-branch count, pc) pair, measured
    from the start of a segment. A pc alone cannot identify a dynamic
    instruction (it may sit in a loop); the branch count disambiguates
    the iteration, and between two branches a pc is visited at most once
    (straight-line code cannot revisit an address), so the pair is exact.

    Replay drives a checker to an execution point using the branch
    counter's overflow interrupt plus a breakpoint, with a skid buffer:
    the counter is armed [margin] branches {e early} (skid only ever
    delays the interrupt), then the breakpoint filters visits of the
    target pc until the branch count matches. *)

type t = Seglog.Record.exec_point = {
  branches : int;  (** branch count relative to segment start *)
  pc : int;
}

val compare : t -> t -> int
(** Order by branch count, then pc — the order points occur in within a
    segment. *)

val to_string : t -> string

(** Replay driver for one checker CPU working through an ordered queue
    of target points. *)
type replay

val start_replay : targets:t list -> cpu:Machine.Cpu.t -> replay
(** [targets] must be sorted ({!compare}) and is consumed in order;
    arming begins immediately on [cpu] (whose counters must read zero at
    the segment-relative origin, i.e. a freshly forked checker). *)

type advance =
  | Keep_running  (** not there yet; resume the checker *)
  | Reached of t  (** the checker now rests exactly on this target *)

val on_branch_overflow : replay -> advance
(** Handle the counter-overflow stop: enables the breakpoint phase. *)

val on_breakpoint : replay -> advance
(** Handle a breakpoint stop: compares the branch counter with the
    target. After [Reached], call {!next_target} to continue with the
    rest of the queue. *)

val next_target : replay -> unit
(** Arm for the following target (no-op if the queue is empty). *)

val poll : replay -> advance
(** Re-check without a stop event — used after {!next_target} when
    several targets share one execution point (e.g. a signal delivered
    exactly at a segment boundary). *)

val finished : replay -> bool
