module E = Sim_os.Engine

type report = {
  stats : Stats.t;
  detections : (int * Detection.outcome) list;
  aborted : bool;
  exit_status : int option;
  output : string;
  wall_ns : int;
  energy_j : float;
  energy_breakdown : (string * float) list;
  runtime_work_ns : float;
  cow_copies : int;
  dram_accesses : int;
  obs : Obs.Sink.t option;
}

type baseline = {
  wall_ns : int;
  user_ns : float;
  sys_ns : float;
  energy_j : float;
  output : string;
  exit_status : int option;
}

let max_sim_ns = 2_000_000_000 (* 2 simulated seconds: a generous hang bound *)

let run_protected ?(seed = 42L) ?rng ?prng ?before_run ~platform ~config
    ~program () =
  (match config.Config.record_log with
  | Some _ when config.Config.mode = Config.Raft || not config.Config.compare_states
    ->
    invalid_arg "Runtime.run_protected: record_log requires Parallaft mode with state comparison on"
  | Some _ | None -> ());
  (match config.Config.backend with
  | Config.Backend_deferred _ | Config.Backend_remote _
    when config.Config.mode = Config.Raft || not config.Config.compare_states ->
    invalid_arg
      "Runtime.run_protected: non-inline backends require Parallaft mode with state comparison on"
  | Config.Backend_inline | Config.Backend_deferred _ | Config.Backend_remote _
    ->
    ());
  let eng =
    E.create ~block_cache:config.Config.block_cache ~platform ~seed ()
  in
  let coord = Coordinator.create ?rng ?prng eng config ~program in
  let seglog_out =
    match config.Config.record_log with
    | None -> None
    | Some dir -> (
      match Seglog_io.create ~dir ~cfg:config ~platform ~program ~seed with
      | Ok out ->
        Coordinator.attach_seglog coord out;
        Some out
      | Error msg -> failwith ("record-log: " ^ msg))
  in
  (match before_run with Some f -> f eng coord | None -> ());
  E.run ~max_ns:max_sim_ns eng;
  let stats = Coordinator.stats coord in
  stats.Stats.all_wall_ns <- float_of_int (E.now_ns eng);
  (* Retire any phase scope still open at simulation end (e.g. the
     drain scope) and surface the breakdown as profile.* stats rows. *)
  (match config.Config.obs with
  | Some sink when Obs.Profile.enabled sink.Obs.Sink.profile ->
    Obs.Sink.phase_close_all sink ~ts_ns:(E.now_ns eng);
    stats.Stats.profile <-
      List.map
        (fun (name, s) -> (name, s.Obs.Profile.self_ns))
        (Obs.Profile.phases sink.Obs.Sink.profile)
  | Some _ | None -> ());
  if config.Config.cpu_stats then
    stats.Stats.block_cache <- Some (E.block_cache_totals eng);
  (* Seal the persisted log: the manifest needs the final-state hash
     (when main exited) and the id list of every segment written. *)
  (match seglog_out with
  | None -> ()
  | Some out ->
    Seglog_io.finalize out ~final_state_hash:(Stats.final_state_hash stats);
    let ws = Seglog_io.stats out in
    stats.Stats.seglog <-
      Some
        {
          Stats.seglog_segments = ws.Seglog.Writer.segments;
          seglog_bytes = ws.Seglog.Writer.bytes_written + Seglog_io.manifest_bytes out;
          seglog_raw_page_bytes = ws.Seglog.Writer.raw_page_bytes;
          seglog_stored_page_bytes = ws.Seglog.Writer.stored_page_bytes;
        });
  (* Run-level fault classification fallback. Checker-side plans are
     classified precisely by the replayer as their segment retires;
     main-side and runtime plans can surface anywhere (any segment's
     comparison, or only at the watchdog), so classify them here: the
     first detection if one escaped, Benign if the fault fired and the
     run still verified clean. *)
  (if stats.Stats.fi_fired && stats.Stats.fi_outcome = None then
     stats.Stats.fi_outcome <-
       Some
         (match Coordinator.first_error coord with
         | Some (_, o) -> o
         | None ->
           (* An abort with no recorded detection (e.g. the injected
              fault signal-terminated the main) is still fail-stop, not
              a clean run. *)
           if Coordinator.aborted coord then
             Detection.Exception_detected "run aborted"
           else Detection.Benign));
  let exit_status =
    match E.state eng (Coordinator.main_pid coord) with
    | E.Exited s -> Some s
    | E.Runnable | E.Stopped -> None
  in
  {
    stats;
    detections = Stats.detections_oldest_first stats;
    aborted = Coordinator.aborted coord;
    exit_status;
    output = E.output eng;
    wall_ns = E.now_ns eng;
    energy_j = E.energy_j eng;
    energy_breakdown = E.energy_breakdown_j eng;
    runtime_work_ns = E.runtime_work_ns eng;
    cow_copies = Mem.Frame.copies (E.frame_allocator eng);
    dram_accesses = E.dram_accesses eng;
    obs = config.Config.obs;
  }

let run_baseline ?(seed = 42L) ?block_cache ?before_run ~platform ~program () =
  let eng = E.create ?block_cache ~platform ~seed () in
  let pid = E.spawn eng ~program ~core:0 () in
  (match before_run with Some f -> f eng pid | None -> ());
  E.run ~max_ns:max_sim_ns eng;
  let st = E.proc_stats eng pid in
  {
    wall_ns = st.E.ended_ns - st.E.started_ns;
    user_ns = st.E.user_ns;
    sys_ns = st.E.sys_ns;
    energy_j = E.energy_j eng;
    output = E.output eng;
    exit_status =
      (match st.E.state with
      | E.Exited s -> Some s
      | E.Runnable | E.Stopped -> None);
  }
