(* The type itself is owned by the serializable log format: an
   execution point is exactly what gets persisted, so the live pipeline
   and the on-disk seglog share one definition. *)
type t = Seglog.Record.exec_point = {
  branches : int;
  pc : int;
}

let compare a b =
  match Int.compare a.branches b.branches with
  | 0 -> Int.compare a.pc b.pc
  | c -> c

let to_string t = Printf.sprintf "{branches=%d; pc=%d}" t.branches t.pc

type replay = {
  cpu : Machine.Cpu.t;
  mutable queue : t list;
  mutable bp_at : int option;
}

type advance =
  | Keep_running
  | Reached of t

let clear_bp r =
  match r.bp_at with
  | Some pc ->
    Machine.Cpu.clear_breakpoint r.cpu pc;
    r.bp_at <- None
  | None -> ()

let enable_bp r pc =
  clear_bp r;
  Machine.Cpu.set_breakpoint r.cpu pc;
  r.bp_at <- Some pc

(* Arm for the head of the queue. If the target is more than a skid
   margin of branches away, use the (cheap) counter overflow first;
   otherwise go straight to breakpoint filtering. *)
let arm r =
  match r.queue with
  | [] ->
    clear_bp r;
    Machine.Cpu.disarm_branch_overflow r.cpu
  | target :: _ ->
    let margin = Machine.Cpu.max_skid r.cpu + 1 in
    let remaining = target.branches - Machine.Cpu.branches r.cpu in
    if remaining > margin then begin
      clear_bp r;
      Machine.Cpu.arm_branch_overflow r.cpu ~target:(target.branches - margin)
    end
    else enable_bp r target.pc

let start_replay ~targets ~cpu =
  (* Targets must be in temporal order: branch counts nondecreasing. The
     pc gives no ordering information — several points can share one
     branch count (e.g. signals landing back-to-back, or inside a signal
     handler) and are simply replayed in record order. *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if a.branches > b.branches then
        invalid_arg "Exec_point.start_replay: unsorted targets";
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted targets;
  let r = { cpu; queue = targets; bp_at = None } in
  arm r;
  r

(* Whether the checker currently rests exactly on the head target. *)
let at_head r =
  match r.queue with
  | [] -> None
  | target :: _ ->
    if
      Machine.Cpu.branches r.cpu = target.branches
      && Machine.Cpu.get_pc r.cpu = target.pc
    then Some target
    else None

let on_branch_overflow r =
  (match r.queue with
  | target :: _ -> enable_bp r target.pc
  | [] -> ());
  match at_head r with Some t -> Reached t | None -> Keep_running

let on_breakpoint r =
  match at_head r with Some t -> Reached t | None -> Keep_running

let next_target r =
  (match r.queue with [] -> () | _ :: rest -> r.queue <- rest);
  arm r

let poll r = match at_head r with Some t -> Reached t | None -> Keep_running

let finished r = r.queue = []
