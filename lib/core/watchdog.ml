(* Checker watchdog (DESIGN.md §13, §18): engine-level progress
   supervision of checking checkers, distinct from the instruction-
   budget timeout — that budget only fires while the checker is
   *executing*, so a checker that dies (runtime kill fault, remote node
   crash) or stops making progress while holding a core (stall fault,
   livelock, wedged node) would otherwise hang the run until the
   engine's global hang bound.

   Stall detection is one path for every backend: the watchdog observes
   (progress, excuse, time) and asks the backend's lease supervisor
   whether the segment's lease expired; the supervisor owns the
   progress ledger and the heartbeat budget. The lease clock starts at
   dispatch, which also closes the pre-launch death window: a checker
   dying between dispatch and launch is caught by the phase poll below
   and (for backends with spares) re-dispatched instead of hanging.

   Polled from Coordinator.handle_event after every routed event —
   before the invariant sweep, so a dead checker is re-dispatched or
   failed before the sweep would flag it — and from a periodic engine
   tick for the no-events case (a stalled checker generates none). *)

module E = Sim_os.Engine
open Run_ctx

let note_kill t seg ~reason =
  t.stats.Stats.watchdog_kills <- t.stats.Stats.watchdog_kills + 1;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:
      [
        ("seg", Obs.Trace.Int (Segment.id seg));
        ("checker", Obs.Trace.Int (Segment.checker seg));
        ("reason", Obs.Trace.Str reason);
      ]
    "watchdog.kill";
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.incr s "watchdog_kills"

let respond t seg ~reason =
  note_kill t seg ~reason;
  t.backend_expired seg;
  (* The infra funnel re-dispatches onto the spare while the retry
     budget lasts, and records a detection (rollback or abort) once it
     runs out. It tolerates an already-exited checker. *)
  Replayer.finish_checker_infra t seg (Detection.Exception_detected reason)

(* A checker that dies before its check even launches and cannot be
   replaced has no way to verify its segment. Straight to the
   recover-or-abort response. *)
let fail_unlaunched t seg ~reason =
  note_kill t seg ~reason;
  Replayer.record_error t seg (Detection.Exception_detected reason);
  t.recover_or_abort ()

(* One supervised segment. Dead checkers are handled unconditionally;
   stall detection needs a positive budget and skips checkers that are
   legitimately not running: queued behind busy cores, or a streaming
   checker waiting for the recorder to catch up. *)
let poll_segment t seg =
  let checker = Segment.checker seg in
  match E.state t.eng checker with
  | E.Exited _ -> respond t seg ~reason:"checker died (watchdog)"
  | E.Runnable | E.Stopped ->
    if t.cfg.Config.watchdog_stall_ns > 0 then begin
      let now = E.now_ns t.eng in
      let insns = Machine.Cpu.instructions (E.cpu t.eng checker) in
      let excused =
        Segment.waiting seg
        || List.mem checker (Scheduler.queued_pids t.sched)
      in
      if t.backend_heartbeat seg ~now_ns:now ~insns ~excused then
        respond t seg ~reason:"checker stalled (watchdog)"
    end

let poll_one t seg =
  match Segment.phase seg with
  | Segment.Checking_p -> poll_segment t seg
  | Segment.Awaiting_launch_p -> (
    match E.state t.eng (Segment.checker seg) with
    | E.Exited _ ->
      (* The dispatch-to-launch death window: a backend holding a spare
         (remote) swaps in a replacement and the segment lives on; only
         when it cannot does the segment fail. *)
      if not (t.backend_prelaunch_redispatch seg) then
        fail_unlaunched t seg ~reason:"checker died before launch (watchdog)"
    | E.Runnable | E.Stopped -> ())
  | Segment.Recording_p -> (
    match E.state t.eng (Segment.checker seg) with
    | E.Exited _ ->
      fail_unlaunched t seg ~reason:"checker died before launch (watchdog)"
    | E.Runnable | E.Stopped -> ())
  | Segment.Done_p -> ()

let poll t =
  if not t.aborted then begin
    List.iter
      (fun seg ->
        (* Guards re-evaluated per segment: an earlier response in this
           sweep may have rolled back or aborted the whole run. *)
        if (not t.aborted) && not (Segment.torn_down seg) then poll_one t seg)
      t.live;
    match t.cur with
    | Some seg when (not t.aborted) && not (Segment.torn_down seg) ->
      poll_one t seg
    | Some _ | None -> ()
  end
