(* Shared run-level state threaded through the pipeline stages
   (Recorder -> Replayer -> Recovery) plus the helpers every stage
   needs: observability emits, simulated-cost charging, process
   bookkeeping, and the cross-structure debug invariant sweep. *)

module E = Sim_os.Engine

type role =
  | Main_role
  | Checker_role of Segment.t

type t = {
  eng : E.t;
  cfg : Config.t;
  stats : Stats.t;
  mutable sched : Scheduler.t;
  fleet : (Core_pool.t * int) option;
      (* fleet mode: the shared pool and this run's tenant id; threaded
         into every scheduler (re-)creation so rollback keeps the
         tenant attached *)
  rng : Util.Rng.t;
  mutable main : E.pid;
  roles : (E.pid, role) Hashtbl.t;
  mutable cur : Segment.t option;  (* the segment being recorded *)
  mutable live : Segment.t list;  (* recorded segments with running checkers *)
  (* Per-frame page-digest memo shared by every segment comparison of the
     run. Sound across rollbacks: frame ids are never reused and in-place
     writes bump the generation, so stale entries can only miss. [None]
     when the config disables the memo. *)
  page_digests : Mem.Page_digest_cache.t option;
  mutable next_id : int;
  mutable seg_start_branches : int;
  mutable seg_start_insns : int;
  mutable main_exited : bool;
  mutable pending_boundary : bool;
  mutable first_error : (int * Detection.outcome) option;
  mutable aborted : bool;
  (* Recovery extension: the last checkpoint known good (every segment up
     to and including it verified), plus verified-but-not-yet-contiguous
     snapshots awaiting prefix promotion. *)
  mutable recovery_point : (int * E.pid) option;
  verified_snapshots : (int, E.pid) Hashtbl.t;
  mutable verified_prefix : int;  (* all segment ids <= this verified *)
  (* Hard-fault classification (DESIGN.md §13): a detection arriving
     after a rollback, before the verified prefix advances past the
     rollback anchor, means re-execution did not clear the fault. *)
  mutable rollback_anchor : int option;
  mutable verified_since_rollback : bool;
  mutable all_segments : Segment.t list;
      (* newest first; retained only under cfg.check_invariants, for
         {!Coordinator.segment_histories} *)
  (* Callback seams, wired by Coordinator.create. They break the two
     module cycles of the pipeline: the recorder hands a finished
     segment to the replayer (launch_checker), and both recorder and
     replayer tear the run down through recovery (abort_run). *)
  mutable launch_checker : Segment.t -> unit;
  mutable abort_run : unit -> unit;
  (* Recover if the recovery extension is on and the budget allows,
     abort otherwise. The recorder needs this response to an injected
     main-side fault surfacing as a hardware exception, but sits below
     Recovery in the module order. *)
  mutable recover_or_abort : unit -> unit;
  (* Wired by Coordinator.create when the plan is a runtime fault
     (kill/stall); a no-op otherwise. Called both from the periodic
     engine tick and after every routed tracer event — short checks can
     start and retire entirely between two ticks. *)
  mutable runtime_fault_poll : unit -> unit;
  (* The open --record-log output, attached by Runtime before the
     engine runs; None leaves the recorder's persistence hook a no-op
     (the byte-identical default path). *)
  mutable seglog : Seglog_io.out option;
  (* Checker-backend seams (DESIGN.md §18), wired by
     Checker_backend.install. They carry lease/heartbeat supervision and
     verdict routing without Replayer/Watchdog/Recovery depending on the
     backend module. The defaults are the inline-safe behaviours, so a
     context that never installs a backend (unit tests driving stages
     directly) still works. *)
  mutable backend_note_launched : Segment.t -> unit;
  (* Progress supervision: true means the lease expired (kill/re-dispatch
     the checker). Replaces the old watchdog progress ledger. *)
  mutable backend_heartbeat :
    Segment.t -> now_ns:int -> insns:int -> excused:bool -> bool;
  mutable backend_expired : Segment.t -> unit;
  (* A checker died in the dispatch-to-launch window; true means the
     backend swapped in a replacement and the segment lives on. *)
  mutable backend_prelaunch_redispatch : Segment.t -> bool;
  (* A verdict arrived; true means the backend parked or discarded it
     (late/stale under chaos) and the replayer must not act on it yet. *)
  mutable backend_route_verdict : Segment.t -> Detection.outcome option -> bool;
  mutable backend_settle : Segment.t -> unit;
  mutable backend_flush : unit -> unit;  (* rollback/abort: drop unsettled *)
  mutable backend_poll : unit -> unit;
  mutable backend_check : unit -> unit;  (* invariant sweep hook *)
}

let unwired _ =
  raise
    (Segment.Invariant_violation
       "run context: callback seam used before the coordinator wired it")

let create ?rng ?fleet eng cfg =
  let stats = Stats.create () in
  {
    eng;
    cfg;
    stats;
    sched = Scheduler.create ?fleet eng cfg stats;
    fleet;
    rng =
      (match rng with
      | Some r -> r
      | None -> Util.Rng.create ~seed:0x5EEDL);
    main = -1;
    roles = Hashtbl.create 16;
    cur = None;
    live = [];
    page_digests =
      (if cfg.Config.compare_states && cfg.Config.page_hash_cache_pages > 0 then
         Some
           (Mem.Page_digest_cache.create
              ~capacity:cfg.Config.page_hash_cache_pages)
       else None);
    next_id = 0;
    seg_start_branches = 0;
    seg_start_insns = 0;
    main_exited = false;
    pending_boundary = false;
    first_error = None;
    aborted = false;
    recovery_point = None;
    verified_snapshots = Hashtbl.create 8;
    verified_prefix = -1;
    rollback_anchor = None;
    verified_since_rollback = false;
    all_segments = [];
    launch_checker = unwired;
    abort_run = (fun () -> unwired ());
    recover_or_abort = (fun () -> unwired ());
    runtime_fault_poll = (fun () -> ());
    seglog = None;
    backend_note_launched = (fun _ -> ());
    backend_heartbeat = (fun _ ~now_ns:_ ~insns:_ ~excused:_ -> false);
    backend_expired = (fun _ -> ());
    backend_prelaunch_redispatch = (fun _ -> false);
    backend_route_verdict = (fun _ _ -> false);
    backend_settle = (fun _ -> ());
    backend_flush = (fun () -> ());
    backend_poll = (fun () -> ());
    backend_check = (fun () -> ());
  }

let plat t = E.platform t.eng

(* ------------------------------------------------------------------ *)
(* Observability: every emit compiles to a single option check when no
   sink is configured. Timestamps are simulated time, never wall clock. *)

let emit_ev t ~track ~phase ?args name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.emit s ~ts_ns:(E.time_ns t.eng) ~track ~phase ?args name

(* Record a detection against a segment: stats, trace event, sink
   counter, first-error latch. Shared by the replayer (comparison
   mismatches), the watchdog (dead/stalled checkers) and the recorder
   (injected main faults surfacing as exceptions). *)
let record_detection t seg outcome =
  Stats.record_detection t.stats ~segment:(Segment.id seg) outcome;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:
      [
        ("seg", Obs.Trace.Int (Segment.id seg));
        ("outcome", Obs.Trace.Str (Detection.outcome_to_string outcome));
      ]
    "detection";
  (match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.incr s "detections");
  if t.first_error = None then t.first_error <- Some (Segment.id seg, outcome)

let observe t name v =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.observe s name v

let main_track t = Obs.Trace.Core t.cfg.Config.main_core

(* Phase-attribution profiling (Obs.Profile): scopes opened/closed at
   pipeline transitions, zero-width charges for costs the engine models
   as delays. All no-ops unless a sink is configured AND its profiler
   was explicitly enabled (--profile), so goldens stay byte-identical. *)

let phase_enter t ~track ?segment name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.phase_enter s ~ts_ns:(E.time_ns t.eng) ~track ?segment name

let phase_leave t ~track name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.phase_leave s ~ts_ns:(E.time_ns t.eng) ~track name

let phase_add t ~tracks ?segment name ns =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.phase_add s ~ts_ns:(E.time_ns t.eng) ~tracks ?segment name ns

let phase_close_all t =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.phase_close_all s ~ts_ns:(E.time_ns t.eng)

(* The scope a pid's charges debit: main charges land on the main
   core's timeline, checker charges on the checker's pid track. *)
let charge_tracks t pid =
  if pid = t.main then [ main_track t ] else [ Obs.Trace.Proc pid ]

(* ------------------------------------------------------------------ *)
(* Simulated-cost charging                                              *)

let big_eff_hz t =
  let big = Platform.big_cluster (plat t) in
  Platform.effective_hz big ~level:big.Platform.default_level

let cycles_to_ns t cycles = float_of_int cycles *. 1e9 /. big_eff_hz t

let charge_scan t ?segment pid ~pages =
  let cycles = pages * (plat t).Platform.dirty_scan_per_page_cycles in
  if cycles > 0 then begin
    let ns = cycles_to_ns t cycles in
    E.delay t.eng pid ~ns;
    phase_add t ~tracks:(charge_tracks t pid) ?segment "dirty_scan"
      (int_of_float ns)
  end

let charge_hash t ?segment pid ~bytes =
  let cycles = bytes / max 1 (plat t).Platform.hash_bytes_per_cycle in
  if cycles > 0 then begin
    let ns = cycles_to_ns t cycles in
    E.delay t.eng pid ~ns;
    phase_add t ~tracks:(charge_tracks t pid) ?segment "compare"
      (int_of_float ns)
  end

let charge_record t ?segment pid ~bytes =
  let ns = float_of_int bytes *. (plat t).Platform.syscall_record_ns_per_byte in
  if ns > 0.0 then begin
    E.delay t.eng pid ~ns;
    phase_add t ~tracks:(charge_tracks t pid) ?segment "record_io"
      (int_of_float ns)
  end

(* Serialization cost of persisting one segment file: same per-byte
   model as syscall recording, but its own profile scope so BENCH and
   the trace can attribute it. Only ever charged when --record-log is
   active, so default runs are byte-identical. *)
let charge_seglog_write t ?segment pid ~bytes =
  let ns = float_of_int bytes *. (plat t).Platform.syscall_record_ns_per_byte in
  if ns > 0.0 then begin
    E.delay t.eng pid ~ns;
    phase_add t ~tracks:(charge_tracks t pid) ?segment "seglog_write"
      (int_of_float ns)
  end

(* ------------------------------------------------------------------ *)
(* Process helpers                                                      *)

let main_cpu t = E.cpu t.eng t.main

let page_table_of t pid = Mem.Address_space.page_table (E.aspace t.eng pid)

let exec_point_now t =
  {
    Exec_point.branches = Machine.Cpu.branches (main_cpu t) - t.seg_start_branches;
    pc = Machine.Cpu.get_pc (main_cpu t);
  }

let read_mem_opt t pid ~addr ~len =
  try Some (Mem.Address_space.read_bytes (E.aspace t.eng pid) ~addr ~len)
  with Mem.Address_space.Segfault _ -> None

let kill_if_alive t pid =
  match E.state t.eng pid with
  | E.Exited _ -> ()
  | E.Runnable | E.Stopped -> E.kill t.eng pid

let live_count t = List.length t.live
let live_limit t = Config.live_limit t.cfg

(* ------------------------------------------------------------------ *)
(* Fault-plan plumbing (lib/fault): which segments a plan covers, and
   how each target class is armed. Runtime faults are armed at the
   engine level (a tick registered by the coordinator), so they are a
   no-op here. *)

let plan_covers (plan : Fault.plan) ~id =
  id = plan.Fault.segment || (plan.Fault.repeat && id > plan.Fault.segment)

let arm_plan_on_cpu cpu (plan : Fault.plan) =
  match plan.Fault.target with
  | Fault.Checker_register { reg; bit } | Fault.Main_register { reg; bit } ->
    Machine.Cpu.arm_fault_injection cpu
      ~after_instructions:plan.Fault.delay_instructions ~reg ~bit
  | Fault.Checker_memory_page { page_index; bit }
  | Fault.Main_memory_page { page_index; bit } ->
    Machine.Cpu.arm_memory_fault_injection cpu
      ~after_instructions:plan.Fault.delay_instructions ~page_index ~bit
  | Fault.Runtime_fault _ -> ()

(* Record that a main-targeted fault has fired. Called at every point
   where the main process (or its armed cpu) may be replaced or
   destroyed — segment boundaries, exit, rollback, abort — so the
   campaign's "landed" accounting survives the pid changing hands. *)
let latch_main_fault t =
  match t.cfg.Config.fault_plan with
  | Some plan when Fault.targets_main plan ->
    if Machine.Cpu.fault_injected (E.cpu t.eng t.main) then
      t.stats.Stats.fi_fired <- true
  | Some _ | None -> ()

(* Free the recovery-point snapshot and any verified-but-unpromoted
   snapshots: on clean completion there is nothing left to recover, and
   on abort the run is over — either way, leaving them alive leaks
   engine processes (and keeps the simulation spinning until its hang
   bound, since the engine only stops when no live process remains). *)
let release_recovery_state t =
  (match t.recovery_point with
  | Some (_, snap) -> kill_if_alive t snap
  | None -> ());
  t.recovery_point <- None;
  Hashtbl.iter (fun _ snap -> kill_if_alive t snap) t.verified_snapshots;
  Hashtbl.reset t.verified_snapshots

(* ------------------------------------------------------------------ *)
(* Debug invariants (cfg.check_invariants): after every handled tracer
   event, the segment state machines and the run-level structures
   (cur/live, roles table, scheduler, engine) must agree. *)

let violation fmt =
  Printf.ksprintf (fun s -> raise (Segment.Invariant_violation s)) fmt

let check_invariants t =
  if t.cfg.Config.check_invariants && not t.aborted then begin
    let tracked = (match t.cur with Some s -> [ s ] | None -> []) @ t.live in
    (match t.cur with
    | Some s when Segment.phase s <> Segment.Recording_p ->
      violation "current segment %d is %s, not recording" (Segment.id s)
        (Segment.phase_to_string (Segment.phase s))
    | Some _ | None -> ());
    (* Non-inline backends hold recorded segments in Awaiting_launch
       (queued in a batch, or in a remote dispatch window) — only the
       inline backend promises an immediate launch. *)
    let launch_deferred = t.cfg.Config.backend <> Config.Backend_inline in
    List.iter
      (fun s ->
        match Segment.phase s with
        | Segment.Checking_p -> ()
        | Segment.Awaiting_launch_p when launch_deferred -> ()
        | ph ->
          violation "live segment %d is %s, not checking" (Segment.id s)
            (Segment.phase_to_string ph))
      t.live;
    List.iter Segment.check_invariants tracked;
    List.iter
      (fun s ->
        if Segment.torn_down s then
          violation "segment %d is torn down but still tracked" (Segment.id s);
        (match Hashtbl.find_opt t.roles (Segment.checker s) with
        | Some (Checker_role s') when s' == s -> ()
        | Some (Checker_role s') ->
          violation "checker %d maps to segment %d, expected %d"
            (Segment.checker s) (Segment.id s') (Segment.id s)
        | Some Main_role | None ->
          violation "roles table lost checker %d of segment %d"
            (Segment.checker s) (Segment.id s));
        (match E.state t.eng (Segment.checker s) with
        | E.Exited _ ->
          violation "checker %d of tracked segment %d has exited"
            (Segment.checker s) (Segment.id s)
        | E.Runnable | E.Stopped -> ());
        match Segment.spare s with
        | None -> ()
        | Some sp ->
          (match E.state t.eng sp with
          | E.Exited _ ->
            violation "spare %d of segment %d has exited" sp (Segment.id s)
          | E.Runnable | E.Stopped -> ());
          (match Hashtbl.find_opt t.roles sp with
          | Some _ ->
            violation "spare %d of segment %d holds a role" sp (Segment.id s)
          | None -> ()))
      tracked;
    (match Hashtbl.find_opt t.roles t.main with
    | Some Main_role -> ()
    | Some (Checker_role _) | None ->
      violation "roles table lost the main process (pid %d)" t.main);
    let tracked_checkers = List.map Segment.checker tracked in
    List.iter
      (fun pid ->
        if not (List.mem pid tracked_checkers) then
          violation "scheduler holds pid %d belonging to no tracked segment" pid)
      (Scheduler.queued_pids t.sched @ Scheduler.running_pids t.sched);
    (* Fleet scope: the shared pool's cross-tenant partitions must hold
       after every one of any tenant's events. *)
    (match t.fleet with
    | Some (pool, _) -> Core_pool.check_invariants pool
    | None -> ());
    (* Backend scope: the supervisor's exactly-once ledger must agree
       with its own counters after every event too. *)
    t.backend_check ()
  end
