(** The Parallaft coordinator (Figure 2): run-level wiring of the
    segment pipeline.

    One coordinator protects one program run. The pipeline stages live
    in their own modules — {!Recorder} slices the main process into
    segments and records its interactions, {!Replayer} replays and
    checks recorded segments, {!Recovery} rolls back or aborts — all
    over the shared {!Run_ctx} state, with per-segment data typed by
    {!Segment}'s state machine. This module creates the run, routes
    tracer events by process role, and wires the callback seams between
    the stages.

    The coordinator runs entirely inside tracer callbacks and pacer
    ticks; after {!create}, stepping the engine to completion
    ({!Sim_os.Engine.run}) performs the whole protected run. *)

type t

val create :
  ?rng:Util.Rng.t ->
  ?prng:Util.Rng.t ->
  ?fleet:Core_pool.t * int ->
  Sim_os.Engine.t ->
  Config.t ->
  program:Isa.Program.t ->
  t
(** Spawns the traced main process (pinned to [cfg.main_core]), forks
    the first checker, arms the slicer, and registers the pacer tick.

    Without [?fleet], the engine must be freshly usable and multiple
    coordinators on one engine are unsupported — the single-tenant
    path, byte-identical to before these options existed. With
    [?fleet:(pool, tid)] the run becomes a tenant of the shared
    {!Core_pool} (N coordinators then share one engine, one per
    tenant, each on its own reserved main core). [rng] seeds the
    runtime's emulation stream (rdrand results, recheck jitter) and
    [prng] the main process's private OS entropy (ASLR, getrandom) —
    the fleet derives both per tenant from the root seed so each
    tenant's run is reproducible regardless of admission interleaving. *)

val attach_seglog : t -> Seglog_io.out -> unit
(** Attach an open [--record-log] output before the engine runs; the
    recorder then persists every finished segment into it ([Runtime]
    owns creation and the final manifest). Without it, the persistence
    hooks are no-ops. *)

val drained : t -> bool
(** The run reached its fixed point: aborted, or main exited with no
    segment recording and no checker live. Fleet completion detection —
    recovery snapshots may still be alive; release them with
    {!release_recovery_state} once drained. *)

val release_recovery_state : t -> unit
(** Kill any retained recovery-point / verified snapshots (fleet
    teardown; the single-tenant path does this inside the pipeline). *)

val stats : t -> Stats.t
val main_pid : t -> Sim_os.Engine.pid

val first_error : t -> (int * Detection.outcome) option
(** The first detection, with its segment id. The run is terminated
    when a detection fires (the paper's response to a mismatch). *)

val aborted : t -> bool
(** True if the run was cut short (detection, or an unprotected failure
    such as the main process dying to an unhandled signal). *)

val live_pids : t -> Sim_os.Engine.pid list
(** The main process plus all live checkers — the process set whose PSS
    the paper's memory measurement sums (checkpoint processes excluded:
    their private pages are swappable, §5.4). *)

val segment_histories : t -> (int * Segment.phase list) list
(** Per-segment phase histories (oldest segment first), retained only
    when {!Config.t.check_invariants} is on — empty otherwise. Used by
    the property tests to assert every segment walked a legal
    [Recording -> Awaiting_launch -> Checking -> Done] path. *)
