(* Pluggable checker backends (DESIGN.md §18): where and when the
   checks of recorded segments run.

     Inline    — launch each checker the instant its segment finishes
                 recording: the original pipeline, byte-identical.
     Deferred  — queue finished segments and launch [batch] per wakeup,
                 amortizing the cold fork/cache-warmup cost over the
                 batch; [max_lag] bounds unverified segments by
                 backpressuring the recorder (Config.live_limit).
     Remote    — dispatch each check to a pool of simulated checker
                 nodes that chaos can crash, stall, or delay; leases
                 with heartbeat expiry detect lost nodes and re-dispatch
                 to a healthy one.

   All three share one exactly-once supervisor (Backend.Supervisor):
   every recorded segment is settled exactly once, re-dispatches only
   ever re-grant a lease at a higher incarnation, and verdicts arriving
   with a lapsed incarnation are discarded as stale. [install] wires the
   Run_ctx backend seams; the pipeline stages never name a backend. *)

module E = Sim_os.Engine
open Run_ctx

(* Simulated launch overhead: a cold launch forks the checker's address
   space view and warms its caches; launches later in a deferred batch
   reuse the warm runtime state. The checker:deferred_batch bench gates
   on the accumulated difference. *)
let cold_launch_ns = 20_000.
let warm_launch_ns = 2_000.

(* Simulated dispatch RPC to a remote node. *)
let rpc_ns = 5_000

(* The window a chaos pre-launch kill lands in: after dispatch, before
   the launch RPC completes. *)
let chaos_prelaunch_window_ns = rpc_ns / 2

(* How soon after launch a chaos crash strikes. *)
let chaos_strike_window_ns = 50_000

type remote_action =
  | Crash of int  (* node index *)
  | Stall of int
  | Prelaunch_kill

type parked = {
  pk_due_ns : int;
  pk_seg : Segment.t;
  pk_inc : int;
  pk_verdict : Detection.outcome option;
}

let charge_launch t seg ~ns =
  let acct = t.stats.Stats.backend in
  acct.Stats.b_launch_ns <- acct.Stats.b_launch_ns + int_of_float ns;
  let pid = Segment.checker seg in
  E.delay t.eng pid ~ns;
  phase_add t ~tracks:[ Obs.Trace.Proc pid ] ~segment:(Segment.id seg)
    "backend_launch" (int_of_float ns)

let install t =
  let sup = Backend.Supervisor.create () in
  let sync () =
    let b = t.stats.Stats.backend in
    b.Stats.b_dispatched <- Backend.Supervisor.dispatched sup;
    b.Stats.b_redispatched <- Backend.Supervisor.redispatched sup;
    b.Stats.b_leases_expired <- Backend.Supervisor.leases_expired sup;
    b.Stats.b_stale_verdicts <- Backend.Supervisor.stale_verdicts sup;
    b.Stats.b_batches <- Backend.Supervisor.batches sup;
    b.Stats.b_max_lag <- Backend.Supervisor.max_lag sup;
    b.Stats.b_verified <- Backend.Supervisor.settled sup
  in
  (* Seams every backend shares: the lease, heartbeat, settle and
     invariant hooks differ only in which node the lease names. *)
  let note_launched ?(node = -1) seg =
    Backend.Supervisor.lease sup ~id:(Segment.id seg) ~node
      ~incarnation:(Segment.redispatches seg) ~now_ns:(E.now_ns t.eng)
      ~insns:(Machine.Cpu.instructions (E.cpu t.eng (Segment.checker seg)));
    sync ()
  in
  t.backend_heartbeat <-
    (fun seg ~now_ns ~insns ~excused ->
      match
        Backend.Supervisor.heartbeat sup ~id:(Segment.id seg) ~now_ns ~insns
          ~excused ~budget_ns:t.cfg.Config.watchdog_stall_ns
      with
      | `Ok -> false
      | `Expired -> true);
  t.backend_expired <-
    (fun seg ->
      Backend.Supervisor.note_expired sup ~id:(Segment.id seg);
      sync ());
  t.backend_settle <-
    (fun seg ->
      (match
         Backend.Supervisor.settle sup ~id:(Segment.id seg)
           ~incarnation:(Segment.redispatches seg)
       with
      | `Ok -> ()
      | `Stale ->
        (* Every path into really_finish_checker has already verified the
           verdict's incarnation is current; a stale settle here means the
           routing let a superseded verdict through. *)
        raise
          (Segment.Invariant_violation
             (Printf.sprintf "segment %d settled from a stale incarnation"
                (Segment.id seg))));
      sync ());
  t.backend_check <- (fun () -> Backend.Supervisor.check_invariants sup);
  match t.cfg.Config.backend with
  | Config.Backend_inline ->
    t.backend_note_launched <- (fun seg -> note_launched seg);
    t.backend_flush <-
      (fun () ->
        ignore (Backend.Supervisor.cancel_unsettled sup);
        sync ());
    t.launch_checker <-
      (fun seg ->
        Backend.Supervisor.note_recorded sup (Segment.id seg);
        sync ();
        Replayer.launch_checker t seg)
  | Config.Backend_deferred { batch; max_lag = _ } ->
    let queue : Segment.t Backend.Batcher.t = Backend.Batcher.create ~batch in
    let drain () =
      match Backend.Batcher.take_batch queue with
      | [] -> ()
      | segs ->
        Backend.Supervisor.note_batch sup;
        sync ();
        List.iteri
          (fun i seg ->
            if
              (not t.aborted)
              && (not (Segment.torn_down seg))
              && Segment.phase seg = Segment.Awaiting_launch_p
            then begin
              charge_launch t seg
                ~ns:(if i = 0 then cold_launch_ns else warm_launch_ns);
              Replayer.launch_checker t seg
            end)
          segs
    in
    t.backend_note_launched <- (fun seg -> note_launched seg);
    t.backend_flush <-
      (fun () ->
        (* Rollback/abort already tore the queued segments down with the
           rest of t.live; the queue must not launch them afterwards. *)
        ignore (Backend.Batcher.clear queue);
        ignore (Backend.Supervisor.cancel_unsettled sup);
        sync ());
    t.backend_poll <-
      (fun () ->
        (* A partial batch cannot wait forever: drain when the recorder
           is held on the lag budget, or when the main exited and no
           further recording will top the batch up. *)
        if
          (not t.aborted)
          && (t.pending_boundary || t.main_exited)
          && not (Backend.Batcher.is_empty queue)
        then drain ());
    t.launch_checker <-
      (fun seg ->
        Backend.Supervisor.note_recorded sup (Segment.id seg);
        sync ();
        Backend.Batcher.push queue seg;
        if Backend.Batcher.ready queue then drain ())
  | Config.Backend_remote { nodes; retries = _; chaos } ->
    let pool = Backend.Node_pool.create ~nodes in
    let rng =
      Util.Rng.create
        ~seed:
          (match chaos with
          | Some c -> c.Config.chaos_seed
          | None -> 0x4E0DE5L)
    in
    (* Dispatches in their RPC window: the segment launches when the RPC
       lands (entries persist across a pre-launch checker swap). *)
    let pending_launches : (int * Segment.t) list ref = ref [] in
    (* Scheduled chaos strikes, guarded by incarnation at fire time. *)
    let actions : (int * Segment.t * int * remote_action) list ref = ref [] in
    (* (segment id, incarnation) -> verdict delay drawn at launch. *)
    let late_draws : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
    let parked : parked list ref = ref [] in
    let draw_pct pct = pct > 0 && Util.Rng.int rng 100 < pct in
    t.backend_note_launched <-
      (fun seg ->
        let now = E.now_ns t.eng in
        let node = Backend.Node_pool.pick pool ~now_ns:now in
        note_launched ~node seg;
        match chaos with
        | None -> ()
        | Some c ->
          let inc = Segment.redispatches seg in
          if draw_pct c.Config.crash_pct then
            actions :=
              ( now + Util.Rng.int rng chaos_strike_window_ns,
                seg,
                inc,
                Crash node )
              :: !actions
          else if draw_pct c.Config.stall_pct then
            actions :=
              ( now + Util.Rng.int rng chaos_strike_window_ns,
                seg,
                inc,
                Stall node )
              :: !actions
          else if draw_pct c.Config.late_pct then
            Hashtbl.replace late_draws
              (Segment.id seg, inc)
              (c.Config.late_ns + Util.Rng.int rng (max 1 c.Config.late_ns)));
    t.backend_route_verdict <-
      (fun seg verdict ->
        let key = (Segment.id seg, Segment.redispatches seg) in
        match Hashtbl.find_opt late_draws key with
        | None -> false
        | Some delay ->
          (* The node returns its verdict late: park it. The checker has
             finished executing — free its core; its "check" span closes
             when the verdict is finally acted on (or superseded). *)
          Hashtbl.remove late_draws key;
          parked :=
            {
              pk_due_ns = E.now_ns t.eng + delay;
              pk_seg = seg;
              pk_inc = Segment.redispatches seg;
              pk_verdict = verdict;
            }
            :: !parked;
          Scheduler.finished t.sched (Segment.checker seg);
          true);
    t.backend_prelaunch_redispatch <-
      (fun seg ->
        if
          (not t.aborted)
          && Segment.phase seg = Segment.Awaiting_launch_p
          && Segment.spare seg <> None
          && Segment.redispatches seg < Config.redispatch_budget t.cfg
        then begin
          (* The node died between dispatch and launch. Count the kill
             against the dead pid, then promote the (pristine) spare and
             fork a replacement spare off it; the still-pending launch
             RPC will pick the new checker up. *)
          Watchdog.note_kill t seg
            ~reason:"checker died before launch (watchdog)";
          let old = Segment.checker seg in
          Hashtbl.remove t.roles old;
          let sp =
            match Segment.spare seg with Some sp -> sp | None -> assert false
          in
          Segment.replace_checker_prelaunch seg ~checker:sp;
          Hashtbl.replace t.roles sp (Checker_role seg);
          Segment.set_spare seg (Some (E.fork_process t.eng sp));
          t.stats.Stats.checkpoint_count <- t.stats.Stats.checkpoint_count + 1;
          sync ();
          true
        end
        else false);
    t.backend_flush <-
      (fun () ->
        pending_launches := [];
        actions := [];
        Hashtbl.reset late_draws;
        parked := [];
        ignore (Backend.Supervisor.cancel_unsettled sup);
        sync ());
    t.backend_poll <-
      (fun () ->
        if not t.aborted then begin
          let now = E.now_ns t.eng in
          Backend.Node_pool.tick pool ~now_ns:now;
          let due_actions, later =
            List.partition (fun (due, _, _, _) -> now >= due) !actions
          in
          actions := later;
          let strike_live (_, seg, inc, _) =
            (not (Segment.torn_down seg))
            && (not (Segment.is_done seg))
            && Segment.redispatches seg = inc
          in
          (* Pre-launch kills land before the launch RPCs are processed:
             a kill due in the same poll as its launch must strike while
             the window is still open. The victim pid has never been
             enqueued, so this cannot hand the dispatcher a dead pid. *)
          List.iter
            (fun ((_, seg, _, act) as a) ->
              match act with
              | Prelaunch_kill
                when strike_live a
                     && Segment.phase seg = Segment.Awaiting_launch_p ->
                kill_if_alive t (Segment.checker seg)
              | Prelaunch_kill | Crash _ | Stall _ -> ())
            due_actions;
          (* Launch RPCs that have landed. A dead checker keeps its entry:
             the watchdog's pre-launch path swaps the spare in within this
             same event, and the next poll launches the replacement. *)
          let launchable, rest =
            List.partition (fun (due, _) -> now >= due) !pending_launches
          in
          let kept =
            List.filter
              (fun (_, seg) ->
                if
                  Segment.torn_down seg || Segment.is_done seg
                  || Segment.phase seg <> Segment.Awaiting_launch_p
                then false
                else
                  match E.state t.eng (Segment.checker seg) with
                  | E.Exited _ -> true
                  | E.Runnable | E.Stopped ->
                    charge_launch t seg ~ns:cold_launch_ns;
                    Replayer.launch_checker t seg;
                    false)
              launchable
          in
          pending_launches := kept @ rest;
          (* Parked verdicts that have come due. A verdict whose
             incarnation lapsed while parked (the watchdog re-dispatched
             the silent node meanwhile) is stale: discarded, never
             double-counted. *)
          let due_parked, still_parked =
            List.partition (fun p -> now >= p.pk_due_ns) !parked
          in
          parked := still_parked;
          List.iter
            (fun p ->
              if (not (Segment.torn_down p.pk_seg)) && not t.aborted then
                if
                  Segment.is_done p.pk_seg
                  || Segment.redispatches p.pk_seg <> p.pk_inc
                then begin
                  Backend.Supervisor.note_stale sup;
                  sync ()
                end
                else Replayer.deliver_verdict t p.pk_seg p.pk_verdict)
            due_parked;
          (* Crash/stall strikes land last: launches and parked verdicts
             can pull work off the scheduler queue, and a dispatch must
             never see a pid this poll just killed. With the strikes at
             the end, the watchdog — which runs immediately after every
             backend_poll — repairs any kill before the next dispatch
             opportunity. Only a checker actually executing is struck: a
             queued one is still sitting in the scheduler, and killing
             it there would hand the dispatcher a dead pid (same
             contract as the runtime Kill fault). *)
          let reboot_until () =
            now
            + match chaos with Some c -> c.Config.reboot_ns | None -> 0
          in
          List.iter
            (fun ((_, seg, _, act) as a) ->
              let running () =
                Segment.phase seg = Segment.Checking_p
                && E.state t.eng (Segment.checker seg) = E.Runnable
              in
              match act with
              | Prelaunch_kill -> ()
              | Crash node when strike_live a && running () ->
                kill_if_alive t (Segment.checker seg);
                Backend.Node_pool.crash pool node ~until_ns:(reboot_until ())
              | Stall node when strike_live a && running () ->
                E.suspend t.eng (Segment.checker seg);
                Backend.Node_pool.stall pool node ~until_ns:(reboot_until ())
              | Crash _ | Stall _ -> ())
            due_actions
        end);
    t.launch_checker <-
      (fun seg ->
        Backend.Supervisor.note_recorded sup (Segment.id seg);
        sync ();
        let now = E.now_ns t.eng in
        (* The remote backend forks its spare at dispatch time — before
           the checker ever runs, so it is pristine — because a node can
           die before launch and the replacement needs a snapshot. *)
        if
          Segment.spare seg = None
          && Segment.redispatches seg < Config.redispatch_budget t.cfg
        then begin
          Segment.set_spare seg
            (Some (E.fork_process t.eng (Segment.checker seg)));
          t.stats.Stats.checkpoint_count <- t.stats.Stats.checkpoint_count + 1
        end;
        pending_launches := !pending_launches @ [ (now + rpc_ns, seg) ];
        match chaos with
        | Some c when draw_pct c.Config.prelaunch_pct ->
          actions :=
            ( now + chaos_prelaunch_window_ns,
              seg,
              Segment.redispatches seg,
              Prelaunch_kill )
            :: !actions
        | Some _ | None -> ())
