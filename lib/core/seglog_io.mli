(** Bridge between the runtime and the persisted segment log
    (DESIGN.md §17): config fingerprinting, conversion between the
    runtime's {!Config}/{!Fault}/{!Isa.Program} types and the
    {!Seglog.Record} shapes, and the per-run output directory behind
    [--record-log]. *)

val run_config : Config.t -> seed:int64 -> Seglog.Record.run_config

val header :
  Config.t -> platform:Platform.t -> workload:string -> seed:int64 -> Seglog.Record.header
(** Includes the {!Seglog.Record.config_digest} fingerprint. *)

val fault_spec : Fault.plan -> Seglog.Record.fault_spec
val plan_of_spec : Seglog.Record.fault_spec -> (Fault.plan, string) result

val program_record : Isa.Program.t -> Seglog.Record.program
(** @raise Failure if an instruction has no binary encoding. *)

val program_of_record : Seglog.Record.program -> (Isa.Program.t, string) result

(** Output state of one recorded run: the open directory, the stateful
    {!Seglog.Writer}, boundary-syscall preambles pending for the next
    segment, and the id list for the final manifest. *)
type out

val create :
  dir:string ->
  cfg:Config.t ->
  platform:Platform.t ->
  program:Isa.Program.t ->
  seed:int64 ->
  (out, string) result
(** Creates [dir] if needed (one level). *)

val note_preamble : out -> Seglog.Record.sys_record -> unit
(** A boundary syscall (file-backed mmap splitting two segments)
    executed before the next segment's first instruction; attached to
    that segment's preamble. [in_data] carries the mapped file content
    so {!Offline} replay can reproduce the mapping without the live
    run's filesystem state. *)

val write_segment :
  out ->
  id:int ->
  events:Seglog.Record.event list ->
  end_point:Seglog.Record.exec_point ->
  insn_delta:int ->
  end_regs:int array ->
  pages:(int * Bytes.t) array ->
  int
(** Persist one recorded segment ([seg-NNNNNN.plog]); returns the bytes
    written (0 after a rollback truncated the log). *)

val note_rollback : out -> last_checked:int -> unit
(** A recovery rollback happened: the linear recorded history ends at
    the last segment whose check actually ran ([last_checked] — the
    failing segment on a detection). Persisted segments past it (queued
    behind a deferred batch or remote dispatch) are dropped from the
    manifest: they were never verified against the discarded state.
    Latches the manifest's [truncated_at] and makes further
    {!write_segment} calls no-ops. *)

val finalize : out -> final_state_hash:int64 option -> unit
(** Write [manifest.plog]. *)

val stats : out -> Seglog.Writer.stats
val manifest_bytes : out -> int
val segment_file_name : int -> string
