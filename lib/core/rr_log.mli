(** The per-segment record-and-replay log (§3.2, §4.3).

    While the main process runs a segment, the coordinator appends every
    application/OS interaction: syscalls (with the argument data read
    from main memory, the kernel result, and the memory the kernel wrote
    back), trapped nondeterministic instructions with their emulated
    values, and externally delivered signals with the execution point at
    which they landed. The checker later consumes the log in order: each
    of its interactions must match the next record (else a divergence —
    i.e. an error — is flagged) and is answered from the record instead
    of the outside world, so externally visible effects happen exactly
    once.

    The event types are re-exports of {!Seglog.Record} and the log
    itself stores seglog-encoded bytes: the in-memory path is a
    writer+reader pair over the same format [--record-log] persists,
    so replay consumes only what the format can express.

    [in_data] holds bytes the kernel read from main memory (write
    payloads, open paths) — compared against the checker's buffer.
    [effects] holds bytes the kernel wrote into main memory
    (read/getrandom data) — injected into the checker instead of
    re-executing. *)

type mem_effect = Seglog.Record.mem_effect = {
  addr : int;
  data : Bytes.t;
}

type sys_record = Seglog.Record.sys_record = {
  call : Sim_os.Syscall.call;
  in_data : Bytes.t option;
  result : int;
  effects : mem_effect list;
}

type event = Seglog.Record.event =
  | Sys of sys_record
  | Nondet of {
      insn : Isa.Insn.t;
      value : int;
    }
  | Ext_signal of {
      at : Exec_point.t;  (** segment-relative delivery point *)
      signum : Sim_os.Sig_num.t;
    }

type t

val create : unit -> t

val record : t -> event -> unit

val length : t -> int

val events : t -> event list
(** In record order. *)

val signal_points : t -> (Exec_point.t * Sim_os.Sig_num.t) list
(** The external-signal delivery points, in order — these become extra
    replay targets for the checker. *)

(** Replay cursor: one per checker. *)
type cursor

val cursor : t -> cursor

val next_interaction : cursor -> event option
(** Pop the next [Sys]/[Nondet] event (skipping [Ext_signal] entries,
    which are replayed by execution point, not by order of interaction).
    [None] means the log holds no further interaction {e yet}: if the
    segment is fully recorded that is a divergence (the checker did more
    than the main); if the log is still being recorded (RAFT's streaming
    replay) the checker must wait and retry. The log may grow after a
    cursor is created; cursors see appended events. *)

val remaining_interactions : cursor -> int
