type entry = {
  pid : Sim_os.Engine.pid;
  mutable core : int;
  mutable last_cpu_ns : float;  (* user+sys at the last accounting point *)
}

type t = {
  eng : Sim_os.Engine.t;
  cfg : Config.t;
  stats : Stats.t;
  little : int list;
  big_pool : int list;  (* big cores available to checkers (not the main's) *)
  mutable free_little : int list;
  mutable free_big : int list;
  mutable running : entry list;  (* oldest first *)
  mutable queued : Sim_os.Engine.pid list;  (* oldest first *)
  mutable main_exited : bool;
  mutable main_held : bool;
  mutable idle_ticks : int;
  fleet : (Core_pool.t * int) option;
      (* fleet mode: every operation delegates to the shared pool under
         this tenant id; the per-run fields above stay empty *)
}

let create ?fleet eng cfg stats =
  let little = Sim_os.Engine.little_cores eng in
  let big_pool =
    List.filter (fun c -> c <> cfg.Config.main_core) (Sim_os.Engine.big_cores eng)
  in
  (match fleet with
  | None -> ()
  | Some (pool, tid) ->
    (* First creation admits the tenant; re-creation is the rollback
       path (Recovery rebuilds the scheduler facade) and flushes the
       tenant's now-dead entries from the pool inside register. *)
    if stats.Stats.fleet = None then
      stats.Stats.fleet <- Some { Stats.home_dispatches = 0; stolen = 0 };
    Core_pool.register_tenant pool ~tid ~stats ~main_core:cfg.Config.main_core);
  {
    eng;
    cfg;
    stats;
    little;
    big_pool;
    free_little = little;
    free_big = big_pool;
    running = [];
    queued = [];
    main_exited = false;
    main_held = false;
    idle_ticks = 0;
    fleet;
  }

let is_little t core = List.mem core t.little

let emit_ev t ~track ~phase ?args name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s ->
    Obs.Sink.emit s ~ts_ns:(Sim_os.Engine.time_ns t.eng) ~track ~phase ?args name

let observe t name v =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.observe s name v

(* Profiling glue (local copies of the Run_ctx helpers: the scheduler
   sits below Run_ctx in the module order). *)

let phase_enter t ~track name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s ->
    Obs.Sink.phase_enter s ~ts_ns:(Sim_os.Engine.time_ns t.eng) ~track name

let phase_leave t ~track name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s ->
    Obs.Sink.phase_leave s ~ts_ns:(Sim_os.Engine.time_ns t.eng) ~track name

let phase_add t ~tracks name ns =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s ->
    Obs.Sink.phase_add s ~ts_ns:(Sim_os.Engine.time_ns t.eng) ~tracks name ns

let cpu_ns t pid =
  let st = Sim_os.Engine.proc_stats t.eng pid in
  st.Sim_os.Engine.user_ns +. st.Sim_os.Engine.sys_ns

(* Account the CPU time an entry consumed since the last accounting
   point to the bucket of the core class it was running on. *)
let account t e =
  let now = cpu_ns t e.pid in
  let delta = Float.max 0.0 (now -. e.last_cpu_ns) in
  e.last_cpu_ns <- now;
  if is_little t e.core then
    t.stats.Stats.checker_little_ns <- t.stats.Stats.checker_little_ns +. delta
  else t.stats.Stats.checker_big_ns <- t.stats.Stats.checker_big_ns +. delta

let take_core t =
  (* Preference order: little cores (unless configured otherwise), then —
     once the main has exited — big cores to drain the backlog fast. *)
  if t.cfg.Config.checkers_on_little then
    match t.free_little with
    | c :: rest ->
      t.free_little <- rest;
      Some c
    | [] ->
      if t.main_exited then
        match t.free_big with
        | c :: rest ->
          t.free_big <- rest;
          Some c
        | [] -> None
      else None
  else
    match t.free_big with
    | c :: rest ->
      t.free_big <- rest;
      Some c
    | [] -> None

let release_core t core =
  if is_little t core then t.free_little <- core :: t.free_little
  else if List.mem core t.big_pool then t.free_big <- core :: t.free_big
  else
    (* Cores only ever come from take_core/migration, so an unknown core
       here means the scheduler's bookkeeping is corrupt. *)
    invalid_arg (Printf.sprintf "Scheduler.release_core: core %d in neither pool" core)

let start_on t pid core =
  Sim_os.Engine.set_core t.eng pid ~core;
  t.running <- t.running @ [ { pid; core; last_cpu_ns = cpu_ns t pid } ];
  (* Dispatch ends the launch scope opened in [enqueue]: its self-time
     is the queue wait plus core-allocation work. *)
  phase_leave t ~track:(Obs.Trace.Proc pid) "checker_launch";
  Sim_os.Engine.resume t.eng pid

(* Migrate the oldest little-core checker to a free big core; returns the
   freed little core. *)
let migrate_oldest_to_big t =
  match t.free_big with
  | [] -> None
  | big :: rest_big -> (
    match
      List.find_opt
        (fun e ->
          is_little t e.core
          (* A checker can die on its core (runtime kill fault, chaos
             crash) and still sit in [running] until the watchdog's
             response retires it — and that response itself dispatches,
             so two deaths in one poll would otherwise migrate a
             corpse. The dead entry keeps its core until then; it is
             never a migration victim. *)
          &&
          match Sim_os.Engine.state t.eng e.pid with
          | Sim_os.Engine.Exited _ -> false
          | Sim_os.Engine.Runnable | Sim_os.Engine.Stopped -> true)
        t.running
    with
    | None -> None
    | Some e ->
      t.free_big <- rest_big;
      account t e;
      let freed = e.core in
      e.core <- big;
      Sim_os.Engine.set_core t.eng e.pid ~core:big;
      t.stats.Stats.migrations <- t.stats.Stats.migrations + 1;
      emit_ev t ~track:(Obs.Trace.Proc e.pid) ~phase:Obs.Trace.Instant
        ~args:[ ("from", Obs.Trace.Int freed); ("to", Obs.Trace.Int big) ]
        "migrate";
      (match t.cfg.Config.obs with
      | None -> ()
      | Some s -> Obs.Sink.incr s "sched.migrations");
      Some freed)

let rec try_dispatch t =
  match t.queued with
  | [] -> ()
  | pid :: rest -> (
    match take_core t with
    | Some core ->
      t.queued <- rest;
      start_on t pid core;
      try_dispatch t
    | None ->
      if
        t.cfg.Config.migration && t.cfg.Config.checkers_on_little
        && not t.main_exited
      then
        match migrate_oldest_to_big t with
        | Some freed ->
          t.queued <- rest;
          start_on t pid freed;
          try_dispatch t
        | None -> ())

let enqueue t pid =
  match t.fleet with
  | Some (pool, tid) -> Core_pool.enqueue pool ~tid pid
  | None ->
    t.queued <- t.queued @ [ pid ];
    observe t "sched.queue_depth" (float_of_int (List.length t.queued));
    phase_enter t ~track:(Obs.Trace.Proc pid) "checker_launch";
    try_dispatch t

let finished_standalone t pid =
  match List.partition (fun e -> e.pid = pid) t.running with
  | [ e ], rest ->
    account t e;
    t.running <- rest;
    release_core t e.core;
    try_dispatch t
  | _, _ ->
    let depth = List.length t.queued in
    t.queued <- List.filter (fun q -> q <> pid) t.queued;
    (* A still-queued checker was torn down before it ever ran: the
       dequeue changes the backlog, so the gauge must track it just as
       enqueue does — and its launch scope closes here, never having
       been dispatched. *)
    if List.length t.queued <> depth then begin
      observe t "sched.queue_depth" (float_of_int (List.length t.queued));
      phase_leave t ~track:(Obs.Trace.Proc pid) "checker_launch"
    end

let finished t pid =
  match t.fleet with
  | Some (pool, _) -> Core_pool.finished pool pid
  | None -> finished_standalone t pid

let on_main_exit t =
  t.main_exited <- true;
  match t.fleet with
  | Some (pool, tid) -> Core_pool.main_exited pool ~tid
  | None ->
    (* Late checkers finish on big cores (§4.5). *)
    if t.cfg.Config.migration then begin
      let continue_migrating = ref true in
      while !continue_migrating do
        match migrate_oldest_to_big t with
        | Some freed ->
          release_core t freed;
          ()
        | None -> continue_migrating := false
      done
    end;
    try_dispatch t

let set_main_held t held =
  t.main_held <- held;
  match t.fleet with
  | Some (pool, tid) -> Core_pool.set_main_held pool ~tid held
  | None -> ()

let queued_pids t =
  match t.fleet with
  | Some (pool, tid) -> Core_pool.queued_pids pool ~tid
  | None -> t.queued

let running_pids t =
  match t.fleet with
  | Some (pool, tid) -> Core_pool.running_pids pool ~tid
  | None -> List.map (fun e -> e.pid) t.running

let queued_count t = List.length (queued_pids t)
let running_count t = List.length (running_pids t)

let flush t =
  match t.fleet with
  | Some (pool, tid) -> Core_pool.flush_tenant pool ~tid
  | None -> ()

let pacer_tick_standalone t =
  List.iter (fun e -> account t e) t.running;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Counter
    ~args:
      [
        ("queued", Obs.Trace.Int (List.length t.queued));
        ("running", Obs.Trace.Int (List.length t.running));
      ]
    "backlog";
  (* Idle-capacity attribution, sampled at pacer resolution: each tick
     charges one period per little core with no checker on it. *)
  (let littles_running =
     List.length (List.filter (fun e -> is_little t e.core) t.running)
   in
   let idle_littles = List.length t.little - littles_running in
   if idle_littles > 0 then
     phase_add t ~tracks:[ Obs.Trace.Run ] "scheduler_idle"
       (idle_littles * t.cfg.Config.pacer_tick_ns));
  if t.cfg.Config.dvfs_pacing then begin
    let level = Sim_os.Engine.dvfs_level t.eng ~cluster:1 in
    let top =
      Array.length
        (Platform.little_cluster (Sim_os.Engine.platform t.eng)).Platform.freq_levels_mhz
      - 1
    in
    (* The control variable is the checker backlog: segments whose
       checkers have not completed. Holding it near 1-2 keeps detection
       latency and the end-of-run drain ("last-checker sync") small
       while letting the cluster idle down when checkers are fast. *)
    let outstanding = queued_count t + running_count t in
    let littles_running =
      List.length (List.filter (fun e -> is_little t e.core) t.running)
    in
    let idle_littles = List.length t.little - littles_running in
    if t.main_exited then begin
      t.idle_ticks <- 0;
      (* Drain the tail at full speed (checkers also migrate to big). *)
      Sim_os.Engine.set_dvfs_level t.eng ~cluster:1 ~level:top
    end
    else if t.main_held || outstanding > 3 then begin
      t.idle_ticks <- 0;
      let step = if t.main_held then 2 else 1 in
      Sim_os.Engine.set_dvfs_level t.eng ~cluster:1 ~level:(min top (level + step))
    end
    else if outstanding <= 2 && (idle_littles > 0 || outstanding <= 1) then begin
      (* Only step down after sustained slack, to avoid oscillation. *)
      t.idle_ticks <- t.idle_ticks + 1;
      if t.idle_ticks >= 2 && level > 0 then begin
        Sim_os.Engine.set_dvfs_level t.eng ~cluster:1 ~level:(level - 1);
        t.idle_ticks <- 0
      end
    end
    else t.idle_ticks <- 0
  end

let pacer_tick t =
  match t.fleet with
  | Some _ ->
    (* The pool runs one fleet-wide pacer; per-tenant ticks would fight
       over the shared little cluster's DVFS level. *)
    ()
  | None -> pacer_tick_standalone t
