(** Checker execution scheduling and pacing (§4.5).

    Placement policy:
    - a ready checker takes a free little core (or a free big core in
      RAFT mode / when [checkers_on_little] is off);
    - if little cores are exhausted and migration is enabled, the
      {e oldest} running checker is migrated to a free big core,
      freeing a little core for the newest checker (Figure 4);
    - when the main process exits, remaining checkers are migrated to
      big cores to finish quickly;
    - otherwise the checker queues.

    Pacing policy: a periodic tick adjusts the little cluster's DVFS
    level — up under backlog pressure (queued checkers or a stalled
    main), down when little cores sit idle — so the cluster provides
    "just enough" throughput.

    {b Fleet mode.} Created with [?fleet:(pool, tid)], the scheduler
    becomes a per-tenant facade over a shared {!Core_pool}: [enqueue],
    [finished], [on_main_exit], [set_main_held] and the pid queries
    delegate under the tenant id, [pacer_tick] is a no-op (the pool
    runs one fleet-wide pacer), and creation registers the tenant —
    re-creation (the rollback path) flushes the tenant's stale pool
    entries. Without [?fleet] the behaviour is byte-identical to the
    single-tenant scheduler. *)

type t

val create :
  ?fleet:Core_pool.t * int -> Sim_os.Engine.t -> Config.t -> Stats.t -> t

val enqueue : t -> Sim_os.Engine.pid -> unit
(** Hand over a ready (stopped, fully armed) checker; it is resumed as
    soon as it gets a core. *)

val finished : t -> Sim_os.Engine.pid -> unit
(** The checker completed (or was killed): frees its core, accounts its
    CPU time to the big/little buckets, schedules the next queued
    checker. A pid that never ran is removed from the queue (re-emitting
    the [sched.queue_depth] gauge); a pid the scheduler never saw is a
    no-op. *)

val on_main_exit : t -> unit

val set_main_held : t -> bool -> unit
(** Tell the pacer the main process is stalled on [max_live_segments] —
    the strongest signal to raise the little-cluster frequency. *)

val pacer_tick : t -> unit

val flush : t -> unit
(** Fleet mode: drop every pool entry of this scheduler's tenant
    (queued entries leave the deques, running entries free their
    cores) — the teardown half of an abort, after the tenant's
    processes were killed. No-op standalone. *)

val queued_count : t -> int
val running_count : t -> int

val queued_pids : t -> Sim_os.Engine.pid list
(** Checkers waiting for a core, oldest first (debug/invariants). *)

val running_pids : t -> Sim_os.Engine.pid list
(** Checkers currently holding a core, oldest first (debug/invariants). *)
