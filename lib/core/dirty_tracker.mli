(** Dirty-page tracking backends (§4.4).

    [Soft_dirty] is the Linux x86_64 mechanism: clear all PTE dirty bits
    at segment start, read the set at segment end. [Map_count] is the
    modified-PAGEMAP_SCAN mechanism the paper uses on Apple Silicon: a
    page whose frame is mapped exactly once is private, hence modified
    or new since the fork — no clearing step exists or is needed.
    [Full_compare] is the ablation that reports every mapped page. *)

val clear : Config.dirty_backend -> Mem.Page_table.t -> unit
(** Reset tracking state at a segment start (a no-op for [Map_count]
    and [Full_compare]). *)

val collect : Config.dirty_backend -> Mem.Page_table.t -> int array
(** Sorted, duplicate-free vpn array considered modified. Both real
    backends return a superset of the truly modified pages, which is
    safe: comparing an unmodified page cannot produce a false
    mismatch. *)

val scan_cost_pages : Config.dirty_backend -> Mem.Page_table.t -> int
(** How many PTEs a [collect]+[clear] round visits — the runtime-work
    cost driver. *)
