(* The record stage: everything driven by main-process tracer events.
   Slices the main into segments, records its application/OS
   interactions into the current segment's R/R log, and hands each
   finished segment to the replayer through the [launch_checker] seam. *)

module E = Sim_os.Engine
open Run_ctx

let arm_slice t =
  match t.cfg.Config.mode with
  | Config.Raft -> ()
  | Config.Parallaft -> (
    let cpu = main_cpu t in
    match (plat t).Platform.slice_unit with
    | Platform.Cycles ->
      Machine.Cpu.arm_cycle_overflow cpu
        ~target:(Machine.Cpu.cycles cpu + t.cfg.Config.slice_period)
    | Platform.Instructions ->
      Machine.Cpu.arm_insn_overflow cpu
        ~target:(Machine.Cpu.instructions cpu + t.cfg.Config.slice_period))

let start_segment t =
  let checker = E.fork_process t.eng t.main in
  Dirty_tracker.clear t.cfg.Config.dirty_backend (page_table_of t checker);
  let seg = Segment.create ~id:t.next_id ~checker in
  t.next_id <- t.next_id + 1;
  if t.cfg.Config.check_invariants then t.all_segments <- seg :: t.all_segments;
  Hashtbl.replace t.roles checker (Checker_role seg);
  t.cur <- Some seg;
  emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Begin
    ~args:
      [ ("seg", Obs.Trace.Int (Segment.id seg)); ("checker", Obs.Trace.Int checker) ]
    "segment";
  (* The main core's timeline is now recording this segment; everything
     charged to the main until end_segment (dirty scans, forks, record
     I/O) debits this scope's self-time. *)
  phase_enter t ~track:(main_track t) ~segment:(Segment.id seg) "record";
  (* RAFT runs its (single) checker concurrently with the main process,
     streaming the R/R log; the checker blocks whenever it reaches an
     event that has not been recorded yet. Parallaft instead launches
     each checker once its segment is fully recorded (figure 1(b)). *)
  (match t.cfg.Config.mode with
  | Config.Raft ->
    Segment.start_streaming seg ~started_ns:(E.time_ns t.eng);
    emit_ev t ~track:(Obs.Trace.Proc checker) ~phase:Obs.Trace.Begin
      ~args:[ ("seg", Obs.Trace.Int (Segment.id seg)) ]
      "check";
    phase_enter t ~track:(Obs.Trace.Proc checker) ~segment:(Segment.id seg)
      "replay";
    Scheduler.enqueue t.sched checker
  | Config.Parallaft -> ());
  let cpu = main_cpu t in
  t.seg_start_branches <- Machine.Cpu.branches cpu;
  t.seg_start_insns <- Machine.Cpu.instructions cpu;
  if t.cfg.Config.compare_states then begin
    let pt = page_table_of t t.main in
    Dirty_tracker.clear t.cfg.Config.dirty_backend pt;
    charge_scan t ~segment:(Segment.id seg) t.main
      ~pages:(Dirty_tracker.scan_cost_pages t.cfg.Config.dirty_backend pt)
  end;
  t.stats.Stats.checkpoint_count <- t.stats.Stats.checkpoint_count + 1;
  (* Main-side fault arming: the checker fork above predates the
     corruption, so the checker replays the {e intended} execution and
     the comparison catches the divergence. A [repeat] plan re-arms at
     every covered segment start (stuck-at); a one-shot plan covers
     exactly one segment id, which rollback never reuses. *)
  (match t.cfg.Config.fault_plan with
  | Some plan
    when Fault.targets_main plan && plan_covers plan ~id:(Segment.id seg) ->
    arm_plan_on_cpu (main_cpu t) plan
  | Some _ | None -> ());
  arm_slice t

let end_segment t =
  match t.cur with
  | None -> ()
  | Some seg ->
    latch_main_fault t;
    let end_point = exec_point_now t in
    let insn_delta = Machine.Cpu.instructions (main_cpu t) - t.seg_start_insns in
    let main_dirty, snapshot =
      if t.cfg.Config.compare_states then begin
        let pt = page_table_of t t.main in
        let dirty = Dirty_tracker.collect t.cfg.Config.dirty_backend pt in
        t.stats.Stats.dirty_pages_total <-
          t.stats.Stats.dirty_pages_total + Array.length dirty;
        observe t "segment.dirty_pages" (float_of_int (Array.length dirty));
        charge_scan t ~segment:(Segment.id seg) t.main
          ~pages:(Dirty_tracker.scan_cost_pages t.cfg.Config.dirty_backend pt);
        let snapshot = E.fork_process t.eng t.main in
        t.stats.Stats.checkpoint_count <- t.stats.Stats.checkpoint_count + 1;
        (dirty, Some snapshot)
      end
      else ([||], None)
    in
    Segment.finish_recording seg ~end_point ~insn_delta ~main_dirty ~snapshot;
    (* Persist the finished segment when --record-log is active: the
       same events the checker will consume, plus the end-of-segment
       register snapshot and detached dirty-page payloads (the live
       frames keep mutating once main resumes). *)
    (match t.seglog with
    | None -> ()
    | Some out ->
      let pt = page_table_of t t.main in
      let pages =
        Array.map (fun vpn -> (vpn, Mem.Page_table.copy_page_at pt ~vpn)) main_dirty
      in
      let bytes =
        Seglog_io.write_segment out ~id:(Segment.id seg)
          ~events:(Rr_log.events (Segment.log seg))
          ~end_point ~insn_delta
          ~end_regs:(Machine.Cpu.snapshot_regs (main_cpu t))
          ~pages
      in
      if bytes > 0 then begin
        emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant
          ~args:
            [
              ("seg", Obs.Trace.Int (Segment.id seg));
              ("bytes", Obs.Trace.Int bytes);
            ]
          "seglog.write";
        observe t "seglog.bytes" (float_of_int bytes);
        charge_seglog_write t ~segment:(Segment.id seg) t.main ~bytes
      end);
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.End
      ~args:
        [
          ("seg", Obs.Trace.Int (Segment.id seg));
          ("insns", Obs.Trace.Int insn_delta);
          ("dirty_pages", Obs.Trace.Int (Array.length main_dirty));
        ]
      "segment";
    phase_leave t ~track:(main_track t) "record";
    t.cur <- None;
    t.live <- t.live @ [ seg ];
    t.stats.Stats.segments_total <- t.stats.Stats.segments_total + 1;
    t.launch_checker seg

(* SDC oracle input: main's architectural state at the moment of exit,
   captured before the engine retires the process and frees its address
   space. Meta-level measurement — charges no simulated time. *)
let capture_final_state t =
  let cpu = main_cpu t in
  t.stats.Stats.final_regs <- Some (Machine.Cpu.snapshot_regs cpu);
  let pt = page_table_of t t.main in
  let vpns = Mem.Page_table.mapped_vpns pt in
  Array.sort compare vpns;
  let st = Ftr_hash.Xxh64.init () in
  Array.iter
    (fun vpn ->
      Ftr_hash.Xxh64.update_int64 st (Int64.of_int vpn);
      let bytes = Mem.Page_table.read_bytes_at pt ~vpn in
      Ftr_hash.Xxh64.update st bytes ~pos:0 ~len:(Bytes.length bytes))
    vpns;
  t.stats.Stats.final_mem_hash <- Some (Ftr_hash.Xxh64.digest st)

let on_main_exited t =
  t.main_exited <- true;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:[ ("live_segments", Obs.Trace.Int (List.length t.live)) ]
    "main.exit";
  (* The main core is now idle while the remaining checkers drain; the
     scope stays open until run end (or rollback) closes it. *)
  phase_enter t ~track:(main_track t) "drain";
  let st = E.proc_stats t.eng t.main in
  t.stats.Stats.main_wall_ns <- float_of_int (st.E.ended_ns - st.E.started_ns);
  t.stats.Stats.main_user_ns <- st.E.user_ns;
  t.stats.Stats.main_sys_ns <- st.E.sys_ns;
  Scheduler.on_main_exit t.sched

let do_boundary t =
  end_segment t;
  if not t.main_exited then begin
    start_segment t;
    E.resume t.eng t.main
  end

let boundary t =
  if live_count t >= live_limit t then begin
    t.pending_boundary <- true;
    emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
      ~args:[ ("live_segments", Obs.Trace.Int (live_count t)) ]
      "main.held";
    phase_enter t ~track:(main_track t) "main_held";
    Scheduler.set_main_held t.sched true
    (* main stays stopped until a segment completes *)
  end
  else do_boundary t

(* ------------------------------------------------------------------ *)
(* Main-process events                                                  *)

let current_log t =
  match t.cur with
  | Some seg -> Segment.log seg
  | None ->
    (* Main always runs inside a segment; recording into a throwaway log
       here would silently drop interactions from the replay stream. *)
    raise
      (Segment.Invariant_violation
         "recorder: main interaction arrived outside any segment")

(* RAFT streaming mode: a checker stalled on a missing record can retry
   now that the main has appended one. *)
let wake_waiting_checker t =
  match t.cur with
  | Some seg when Segment.waiting seg -> (
    Segment.set_waiting seg false;
    match E.state t.eng (Segment.checker seg) with
    | E.Stopped -> E.resume t.eng (Segment.checker seg)
    | E.Runnable | E.Exited _ -> ())
  | Some _ | None -> ()

let record_and_pass t call =
  let in_data =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Write { addr; len; _ } -> read_mem_opt t t.main ~addr ~len
    | Sim_os.Syscall.Open { path_addr; path_len; _ } ->
      read_mem_opt t t.main ~addr:path_addr ~len:path_len
    | _ -> None
  in
  E.do_syscall t.eng t.main;
  let result = Machine.Cpu.get_reg (main_cpu t) 0 in
  let effects =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Read { addr; _ } when result > 0 -> (
      match read_mem_opt t t.main ~addr ~len:result with
      | Some data -> [ { Rr_log.addr; data } ]
      | None -> [])
    | Sim_os.Syscall.Getrandom { addr; _ } when result > 0 -> (
      match read_mem_opt t t.main ~addr ~len:result with
      | Some data -> [ { Rr_log.addr; data } ]
      | None -> [])
    | _ -> []
  in
  let bytes =
    (match in_data with Some b -> Bytes.length b | None -> 0)
    + List.fold_left (fun acc { Rr_log.data; _ } -> acc + Bytes.length data) 0 effects
  in
  charge_record t
    ?segment:(match t.cur with Some s -> Some (Segment.id s) | None -> None)
    t.main ~bytes;
  Rr_log.record (current_log t) (Rr_log.Sys { call; in_data; result; effects });
  t.stats.Stats.syscalls_recorded <- t.stats.Stats.syscalls_recorded + 1;
  emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant
    ~args:
      [
        ("call", Obs.Trace.Str (Sim_os.Syscall.name call));
        ("bytes", Obs.Trace.Int bytes);
      ]
    "sys.record";
  observe t "record.bytes" (float_of_int bytes);
  wake_waiting_checker t;
  E.resume t.eng t.main

(* File-backed private mmap: slice around the call so the mapping is
   established outside any segment and inherited by the next checker's
   fork (§4.3.2). *)
let mmap_split t call =
  end_segment t;
  E.do_syscall t.eng t.main;
  (* The boundary call executes between segments, so it is invisible to
     the checker — but offline replay must re-establish the mapping, so
     it is persisted as the next segment's preamble. [in_data] carries
     the mapped bytes: the offline replayer has no filesystem state (the
     files the program wrote were answered from the record, never
     created), so the content must travel with the log. *)
  (match t.seglog with
  | None -> ()
  | Some out ->
    let result = Machine.Cpu.get_reg (main_cpu t) 0 in
    let in_data =
      match (call : Sim_os.Syscall.call) with
      | Sim_os.Syscall.Mmap { len; _ } when result >= 0 && len > 0 ->
        read_mem_opt t t.main ~addr:result ~len
      | _ -> None
    in
    Seglog_io.note_preamble out { Rr_log.call; in_data; result; effects = [] });
  start_segment t;
  E.resume t.eng t.main

let emulate_nondet t pid insn =
  let value =
    match (insn : Isa.Insn.t) with
    | Isa.Insn.Rdtsc _ -> E.now_ns t.eng
    | Isa.Insn.Rdcoreid _ -> E.core_of t.eng pid
    | Isa.Insn.Rdrand _ -> Util.Rng.bits64 t.rng
    | _ -> 0
  in
  let reg =
    match Isa.Insn.writes_reg insn with
    | Some r -> r
    | None -> 0
  in
  let cpu = E.cpu t.eng pid in
  Machine.Cpu.set_reg cpu reg value;
  Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
  value

let handle_main_event t ev =
  match (ev : E.event) with
  | E.Syscall_entry call -> (
    match call with
    | Sim_os.Syscall.Exit _ ->
      end_segment t;
      capture_final_state t;
      E.do_syscall t.eng t.main;
      on_main_exited t
    | Sim_os.Syscall.Mmap { flags; fd; _ }
      when flags land Sim_os.Syscall.map_anon = 0 && fd >= 0 ->
      mmap_split t call
    | _ -> record_and_pass t call)
  | E.Nondet insn ->
    let value = emulate_nondet t t.main insn in
    Rr_log.record (current_log t) (Rr_log.Nondet { insn; value });
    t.stats.Stats.nondet_recorded <- t.stats.Stats.nondet_recorded + 1;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant "nondet.record";
    wake_waiting_checker t;
    E.resume t.eng t.main
  | E.Cycle_overflow | E.Insn_overflow ->
    t.stats.Stats.nr_slices <- t.stats.Stats.nr_slices + 1;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant
      ~args:[ ("nr", Obs.Trace.Int t.stats.Stats.nr_slices) ]
      "slice";
    boundary t
  | E.Signal signum -> (
    Rr_log.record (current_log t)
      (Rr_log.Ext_signal { at = exec_point_now t; signum });
    t.stats.Stats.signals_recorded <- t.stats.Stats.signals_recorded + 1;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant
      ~args:[ ("signum", Obs.Trace.Int signum) ]
      "signal.record";
    E.deliver_signal_now t.eng t.main signum;
    match E.state t.eng t.main with
    | E.Exited _ ->
      (* Signal-terminated: nothing left to protect. *)
      t.abort_run ()
    | E.Runnable | E.Stopped -> E.resume t.eng t.main)
  | E.Halted ->
    end_segment t;
    capture_final_state t;
    E.force_exit t.eng t.main ~status:0;
    on_main_exited t
  | E.Fault _ ->
    latch_main_fault t;
    let injected =
      match t.cfg.Config.fault_plan with
      | Some plan when Fault.targets_main plan ->
        Machine.Cpu.fault_injected (main_cpu t)
      | Some _ | None -> false
    in
    if injected then begin
      (* The injected main-side corruption surfaced as a hardware
         exception before any checker could compare: a fail-stop
         detection. Record it and roll back if recovery allows. *)
      (match t.cur with
      | Some seg ->
        record_detection t seg
          (Detection.Exception_detected "main fault (injected corruption)")
      | None -> ());
      t.recover_or_abort ()
    end
    else
      (* An application bug in the main process: outside the threat
         model; terminate the protected run. *)
      t.abort_run ()
  | E.Breakpoint | E.Branch_overflow ->
    (* Never armed on the main process. *)
    E.resume t.eng t.main
