type mode =
  | Parallaft
  | Raft

type hasher =
  | Xxh64_hash
  | Fnv64_hash

type dirty_backend =
  | Soft_dirty
  | Map_count
  | Full_compare

type t = {
  mode : mode;
  slice_period : int;
  timeout_scale : float;
  max_live_segments : int;
  migration : bool;
  dvfs_pacing : bool;
  hasher : hasher;
  compare_states : bool;
  dirty_backend : dirty_backend;
  page_hash_cache_pages : int;
  main_core : int;
  checkers_on_little : bool;
  pacer_tick_ns : int;
  fault_plan : Fault.plan option;
  recovery : bool;
  max_recoveries : int;
  recheck_on_mismatch : bool;
  watchdog_stall_ns : int;
  watchdog_retries : int;
  check_invariants : bool;
  block_cache : int;
  cpu_stats : bool;
  record_log : string option;
  obs : Obs.Sink.t option;
}

let default_slice_period (_ : Platform.t) = 250_000

let invariants_from_env () =
  match Sys.getenv_opt "PARALLAFT_INVARIANTS" with
  | Some "" | Some "0" | None -> false
  | Some _ -> true

let backend_of_platform (p : Platform.t) =
  match p.Platform.dirty_tracking with
  | Platform.Soft_dirty -> Soft_dirty
  | Platform.Map_count -> Map_count

let parallaft ~platform ?slice_period () =
  {
    mode = Parallaft;
    slice_period =
      (match slice_period with
      | Some p -> p
      | None -> default_slice_period platform);
    timeout_scale = 1.1;
    max_live_segments = 12;
    migration = true;
    dvfs_pacing = true;
    hasher = Xxh64_hash;
    compare_states = true;
    dirty_backend = backend_of_platform platform;
    page_hash_cache_pages = 4096;
    main_core = 0;
    checkers_on_little = true;
    pacer_tick_ns = 100_000;
    fault_plan = None;
    recovery = false;
    max_recoveries = 3;
    recheck_on_mismatch = false;
    watchdog_stall_ns = 100_000_000;
    watchdog_retries = 1;
    check_invariants = invariants_from_env ();
    block_cache = Machine.Cpu.default_block_cache ();
    cpu_stats = false;
    record_log = None;
    obs = None;
  }

let raft ~platform () =
  {
    mode = Raft;
    slice_period = max_int / 2;
    timeout_scale = 1.1;
    max_live_segments = 4;
    migration = false;
    dvfs_pacing = false;
    hasher = Xxh64_hash;
    compare_states = false;
    dirty_backend = backend_of_platform platform;
    page_hash_cache_pages = 4096;
    main_core = 0;
    checkers_on_little = false;
    pacer_tick_ns = 100_000;
    fault_plan = None;
    recovery = false;
    max_recoveries = 3;
    recheck_on_mismatch = false;
    watchdog_stall_ns = 100_000_000;
    watchdog_retries = 1;
    check_invariants = invariants_from_env ();
    block_cache = Machine.Cpu.default_block_cache ();
    cpu_stats = false;
    record_log = None;
    obs = None;
  }
