type mode =
  | Parallaft
  | Raft

type hasher =
  | Xxh64_hash
  | Fnv64_hash

type dirty_backend =
  | Soft_dirty
  | Map_count
  | Full_compare

type chaos = {
  chaos_seed : int64;
  crash_pct : int;
  stall_pct : int;
  late_pct : int;
  prelaunch_pct : int;
  reboot_ns : int;
  late_ns : int;
}

type backend =
  | Backend_inline
  | Backend_deferred of { batch : int; max_lag : int }
  | Backend_remote of { nodes : int; retries : int; chaos : chaos option }

type t = {
  mode : mode;
  slice_period : int;
  timeout_scale : float;
  max_live_segments : int;
  migration : bool;
  dvfs_pacing : bool;
  hasher : hasher;
  compare_states : bool;
  dirty_backend : dirty_backend;
  page_hash_cache_pages : int;
  main_core : int;
  checkers_on_little : bool;
  pacer_tick_ns : int;
  fault_plan : Fault.plan option;
  recovery : bool;
  max_recoveries : int;
  recheck_on_mismatch : bool;
  watchdog_stall_ns : int;
  watchdog_retries : int;
  check_invariants : bool;
  block_cache : int;
  cpu_stats : bool;
  record_log : string option;
  backend : backend;
  obs : Obs.Sink.t option;
}

let default_slice_period (_ : Platform.t) = 250_000

let default_chaos =
  {
    chaos_seed = 0xC4A05L;
    crash_pct = 10;
    stall_pct = 5;
    late_pct = 5;
    prelaunch_pct = 5;
    reboot_ns = 400_000;
    late_ns = 150_000;
  }

let deferred_backend ?(batch = 4) ?(max_lag = 8) () =
  if batch <= 0 then invalid_arg "Config.deferred_backend: batch must be > 0";
  if max_lag <= 0 then
    invalid_arg "Config.deferred_backend: max_lag must be > 0";
  Backend_deferred { batch; max_lag }

let remote_backend ?(nodes = 3) ?(retries = 3) ?chaos () =
  if nodes <= 0 then invalid_arg "Config.remote_backend: nodes must be > 0";
  Backend_remote { nodes; retries; chaos }

let backend_eager_spares = function
  | Backend_remote _ -> true
  | Backend_inline | Backend_deferred _ -> false

(* How many re-dispatches a segment may burn before a checker-side
   failure becomes final. Remote nodes die for infrastructure reasons,
   so the remote backend gets its own (typically larger) budget. *)
let redispatch_budget t =
  match t.backend with
  | Backend_remote { retries; _ } -> max retries (max 1 t.watchdog_retries)
  | Backend_inline | Backend_deferred _ -> max 1 t.watchdog_retries

(* The recorder's boundary-hold limit. Deferred checking must also bound
   *unverified* segments (queued ones hold snapshots too), so max_lag
   backpressures the recorder through the same mechanism. *)
let live_limit t =
  match t.backend with
  | Backend_deferred { max_lag; _ } ->
    min t.max_live_segments (max 1 max_lag)
  | Backend_inline | Backend_remote _ -> t.max_live_segments

let invariants_from_env () =
  match Sys.getenv_opt "PARALLAFT_INVARIANTS" with
  | Some "" | Some "0" | None -> false
  | Some _ -> true

let backend_of_platform (p : Platform.t) =
  match p.Platform.dirty_tracking with
  | Platform.Soft_dirty -> Soft_dirty
  | Platform.Map_count -> Map_count

let parallaft ~platform ?slice_period () =
  {
    mode = Parallaft;
    slice_period =
      (match slice_period with
      | Some p -> p
      | None -> default_slice_period platform);
    timeout_scale = 1.1;
    max_live_segments = 12;
    migration = true;
    dvfs_pacing = true;
    hasher = Xxh64_hash;
    compare_states = true;
    dirty_backend = backend_of_platform platform;
    page_hash_cache_pages = 4096;
    main_core = 0;
    checkers_on_little = true;
    pacer_tick_ns = 100_000;
    fault_plan = None;
    recovery = false;
    max_recoveries = 3;
    recheck_on_mismatch = false;
    watchdog_stall_ns = 100_000_000;
    watchdog_retries = 1;
    check_invariants = invariants_from_env ();
    block_cache = Machine.Cpu.default_block_cache ();
    cpu_stats = false;
    record_log = None;
    backend = Backend_inline;
    obs = None;
  }

let raft ~platform () =
  {
    mode = Raft;
    slice_period = max_int / 2;
    timeout_scale = 1.1;
    max_live_segments = 4;
    migration = false;
    dvfs_pacing = false;
    hasher = Xxh64_hash;
    compare_states = false;
    dirty_backend = backend_of_platform platform;
    page_hash_cache_pages = 4096;
    main_core = 0;
    checkers_on_little = false;
    pacer_tick_ns = 100_000;
    fault_plan = None;
    recovery = false;
    max_recoveries = 3;
    recheck_on_mismatch = false;
    watchdog_stall_ns = 100_000_000;
    watchdog_retries = 1;
    check_invariants = invariants_from_env ();
    block_cache = Machine.Cpu.default_block_cache ();
    cpu_stats = false;
    record_log = None;
    backend = Backend_inline;
    obs = None;
  }
