(** Offline replay of a persisted segment log (DESIGN.md §17).

    [parallaft_replay] re-checks a [--record-log] directory without the
    original run: a fresh simulation is created from the manifest's
    platform/seed/program identity and one traced process re-executes
    the whole recorded history segment by segment, driven by exactly
    the live checker's replay mechanics — interactions answered from
    the record, anonymous mmaps pinned to the recorded addresses,
    external signals delivered at their recorded execution points,
    boundary file-backed mmaps re-established from the preamble
    records. At every segment end the process's registers and the
    recorded dirty pages are compared byte for byte; after the last
    segment the final-state digest is recomputed and checked against
    the manifest.

    Known limitation (documented in DESIGN.md §17): externally
    effectful syscalls are answered from the record, never re-executed,
    so the replayer's filesystem stays empty — file-backed mappings are
    reproduced from the content snapshot the recorder embeds in the
    preamble, not from a real file. *)

type reg_diff = {
  reg : int;
  expected : int;  (** the recorded (live main) value *)
  got : int;  (** the offline re-execution's value *)
}

(** First differing byte of the first differing recorded dirty page. *)
type page_diff = {
  vpn : int;
  offset : int;  (** byte offset within the page *)
  expected : int;  (** recorded byte value *)
  got : int;
}

type divergence = {
  segment : int;
  point : Exec_point.t;
      (** segment-relative execution point where the divergence was
          established (the first diverging point the replay can name) *)
  reason : string;
  reg_diffs : reg_diff list;  (** non-empty for register-state mismatches *)
  page_diff : page_diff option;
}

type verdict =
  | Verified of {
      segments : int;  (** segments replayed and compared clean *)
      final_hash : int64 option;  (** manifest's recorded final-state hash *)
      final_hash_matches : bool option;
          (** recomputed-vs-recorded digest comparison; [None] when the
              live main never exited (no recorded hash to check) *)
    }
  | Diverged of divergence

val replay :
  manifest:Seglog.Record.manifest ->
  segments:Seglog.Record.segment list ->
  (verdict, string) result
(** Re-execute and re-check the whole recorded history. [segments]
    must be the decoded segment files in manifest order ({!Reader}
    enforces the fingerprint; this function re-checks the id order).
    [Error] is an environment problem (unknown platform, undecodable
    program, replay stall) as opposed to a verified divergence. *)

val divergence_report : divergence -> string
(** Multi-line human-readable report: diverging segment + execution
    point, the register diffs, and the first differing page byte. *)
