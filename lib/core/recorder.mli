(** The record stage of the pipeline: main-process tracer events.

    Slices the main process into segments, records every
    application/OS interaction into the current segment's R/R log
    (§3.2), forks the per-segment checker and checkpoint processes,
    and hands each fully recorded segment to the replayer through the
    {!Run_ctx.t.launch_checker} seam. *)

val start_segment : Run_ctx.t -> unit
(** Fork the next checker, open a fresh [Recording] segment as
    [cur], clear dirty tracking, and re-arm the slicer. Also used by
    recovery to restart the pipeline after a rollback. *)

val do_boundary : Run_ctx.t -> unit
(** End the current segment (launching its checker) and, unless the
    main has exited, start the next one. The replayer calls this when a
    completing segment releases a main process held on
    [max_live_segments]. *)

val handle_main_event : Run_ctx.t -> Sim_os.Engine.event -> unit
