(** The replay/check stage of the pipeline: checker tracer events.

    Launches a checker over its fully recorded segment (replay targets,
    timeout, optional fault injection), replays the segment's R/R log
    against the checker's interactions, drives it to the recorded
    execution points (§4.2), runs the program-state comparison at the
    segment end, and classifies any divergence. A failed check is
    handed to {!Recovery} (rollback or abort) — unless the re-check
    extension can still retry it on a fresh checker (DESIGN.md §13); a
    completing segment may release a main process held on
    [max_live_segments] back through {!Recorder.do_boundary}. *)

val record_error : Run_ctx.t -> Segment.t -> Detection.outcome -> unit
(** Record a detection against a segment (stats, trace event, first-error
    latch) without retiring any checker. Used by the watchdog for
    segments whose checker died before the check could even launch. *)

val launch_checker : Run_ctx.t -> Segment.t -> unit
(** Arm and (for Parallaft) schedule the checker of a segment in
    [Awaiting_launch]; transitions it to [Checking]. For a RAFT
    streaming checker — launched when recording started — this only
    arms the replay targets and wakes the checker if it was stalled.
    When {!Config.t.recheck_on_mismatch} is on, also forks the pristine
    spare a later re-dispatch would launch from. *)

val finish_checker : Run_ctx.t -> Segment.t -> Detection.outcome option -> unit
(** Retire a check with its outcome ([None] = verified). The configured
    backend's verdict router runs first and may park the verdict (a
    remote node returning late) or discard it (stale incarnation);
    otherwise a failure is re-dispatched onto the spare when the
    re-check machinery still has budget, and a final outcome is
    recorded (possibly reclassified {!Detection.Hard_fault} right after
    a rollback) and answered with rollback or abort. *)

val deliver_verdict : Run_ctx.t -> Segment.t -> Detection.outcome option -> unit
(** {!finish_checker} minus the backend routing: act on the verdict
    now. Called by the backend when a parked verdict comes due. *)

val finish_checker_infra : Run_ctx.t -> Segment.t -> Detection.outcome -> unit
(** Retire a check after an infrastructure failure (the checker died or
    stalled without producing a verdict — watchdog/lease expiry): never
    routed through the backend's verdict path, and re-dispatched on the
    spare whenever the re-check extension {e or} the remote backend's
    retry budget allows. *)

val handle_checker_event : Run_ctx.t -> Segment.t -> Sim_os.Engine.event -> unit
