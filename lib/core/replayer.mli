(** The replay/check stage of the pipeline: checker tracer events.

    Launches a checker over its fully recorded segment (replay targets,
    timeout, optional fault injection), replays the segment's R/R log
    against the checker's interactions, drives it to the recorded
    execution points (§4.2), runs the program-state comparison at the
    segment end, and classifies any divergence. A failed check is
    handed to {!Recovery} (rollback or abort); a completing segment may
    release a main process held on [max_live_segments] back through
    {!Recorder.do_boundary}. *)

val launch_checker : Run_ctx.t -> Segment.t -> unit
(** Arm and (for Parallaft) schedule the checker of a segment in
    [Awaiting_launch]; transitions it to [Checking]. For a RAFT
    streaming checker — launched when recording started — this only
    arms the replay targets and wakes the checker if it was stalled. *)

val handle_checker_event : Run_ctx.t -> Segment.t -> Sim_os.Engine.event -> unit
