(* Bridge between the runtime's Config/Fault types and the persisted
   seglog: config fingerprinting, conversion to the Record shapes, and
   the per-run output state behind --record-log. *)

module R = Seglog.Record

let mode_raft cfg = cfg.Config.mode = Config.Raft

let dirty_backend_string cfg =
  match cfg.Config.dirty_backend with
  | Config.Soft_dirty -> "soft_dirty"
  | Config.Map_count -> "map_count"
  | Config.Full_compare -> "full_compare"

let hasher_string cfg =
  match cfg.Config.hasher with
  | Config.Xxh64_hash -> "xxh64"
  | Config.Fnv64_hash -> "fnv64"

let fault_spec (p : Fault.plan) =
  let arg_a, arg_b =
    match p.target with
    | Fault.Checker_register { reg; bit } | Fault.Main_register { reg; bit } -> (reg, bit)
    | Fault.Checker_memory_page { page_index; bit } | Fault.Main_memory_page { page_index; bit }
      ->
      (page_index, bit)
    | Fault.Runtime_fault _ -> (0, 0)
  in
  { R.kind = Fault.target_kind_to_string p.target;
    fault_segment = p.segment;
    delay = p.delay_instructions;
    arg_a;
    arg_b;
    repeat = p.repeat
  }

let plan_of_spec (f : R.fault_spec) =
  match Fault.target_kind_of_string f.kind with
  | Error e -> Error e
  | Ok build ->
    Ok
      { Fault.segment = f.fault_segment;
        delay_instructions = f.delay;
        target = build f.arg_a f.arg_b;
        repeat = f.repeat
      }

let run_config (cfg : Config.t) ~seed =
  { R.mode_raft = mode_raft cfg;
    slice_period = cfg.slice_period;
    timeout_scale = cfg.timeout_scale;
    compare_states = cfg.compare_states;
    dirty_backend = dirty_backend_string cfg;
    hasher = hasher_string cfg;
    seed;
    fault = Option.map fault_spec cfg.fault_plan
  }

let header (cfg : Config.t) ~(platform : Platform.t) ~workload ~seed =
  let rc = run_config cfg ~seed in
  { R.config_digest =
      R.config_digest ~platform:platform.Platform.name ~page_size:platform.Platform.page_size
        ~workload rc;
    platform = platform.Platform.name;
    page_size = platform.Platform.page_size;
    workload
  }

let program_record (p : Isa.Program.t) =
  let code =
    Array.map
      (fun insn ->
        match Isa.Insn.encode insn with
        | Some w -> w
        | None ->
          failwith
            (Printf.sprintf "seglog: instruction %s has no binary encoding"
               (Isa.Insn.to_string insn)))
      p.Isa.Program.code
  in
  { R.pname = p.Isa.Program.name;
    entry = p.Isa.Program.entry;
    initial_brk = p.Isa.Program.initial_brk;
    code;
    data =
      List.map
        (fun (d : Isa.Program.data_segment) -> (d.Isa.Program.base, d.Isa.Program.bytes))
        p.Isa.Program.data
  }

let program_of_record (p : R.program) =
  let missing = ref None in
  let code =
    Array.map
      (fun word ->
        match Isa.Insn.decode word with
        | Some insn -> insn
        | None ->
          if !missing = None then missing := Some word;
          Isa.Insn.Nop)
      p.R.code
  in
  match !missing with
  | Some w -> Error (Printf.sprintf "undecodable instruction word %#x in program image" w)
  | None ->
    Ok
      (Isa.Program.create ~name:p.R.pname ~entry:p.R.entry ~initial_brk:p.R.initial_brk
         ~data:
           (List.map (fun (base, bytes) -> { Isa.Program.base; bytes }) p.R.data)
         code)

(* ---------- the per-run output behind --record-log ---------- *)

type out = {
  dir : string;
  hdr : R.header;
  writer : Seglog.Writer.t;
  cfg_record : R.run_config;
  prog : R.program;
  mutable pending_preamble : R.sys_record list;  (** reversed *)
  mutable seg_ids : int list;  (** reversed *)
  mutable truncated_at : int option;
  mutable manifest_bytes : int;
}

let write_file path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let create ~dir ~cfg ~platform ~program ~seed =
  match
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok () else Error (dir ^ " exists and is not a directory")
    else begin
      Sys.mkdir dir 0o755;
      Ok ()
    end
  with
  | exception Sys_error e -> Error e
  | Error e -> Error e
  | Ok () ->
    let workload = program.Isa.Program.name in
    let hdr = header cfg ~platform ~workload ~seed in
    Ok
      { dir;
        hdr;
        writer = Seglog.Writer.create ~header:hdr;
        cfg_record = run_config cfg ~seed;
        prog = program_record program;
        pending_preamble = [];
        seg_ids = [];
        truncated_at = None;
        manifest_bytes = 0
      }

let note_preamble o r = o.pending_preamble <- r :: o.pending_preamble

let segment_file_name id = Printf.sprintf "seg-%06d.plog" id

(* After a rollback the run re-executes from a checkpoint, so later
   segments no longer extend the recorded linear history: latch the
   truncation point, drop already-persisted segments past it, and stop
   persisting. The prefix — up to and including the last segment whose
   check actually ran ([last_checked], the failing segment on a
   detection) — is exactly what offline replay can verify. Segments
   recorded beyond it (queued behind a deferred batch or a remote
   dispatch when the rollback landed) were never checked against the
   state the rollback discarded, so they must not stay in the
   manifest. Their files may remain on disk; offline replay reads only
   manifest-listed files. *)
let note_rollback o ~last_checked =
  if o.truncated_at = None then begin
    o.seg_ids <- List.filter (fun id -> id <= last_checked) o.seg_ids;
    o.truncated_at <- Some (match o.seg_ids with [] -> -1 | id :: _ -> id)
  end

let write_segment o ~id ~events ~end_point ~insn_delta ~end_regs ~pages =
  match o.truncated_at with
  | Some _ -> 0
  | None ->
    let preamble = List.rev o.pending_preamble in
    o.pending_preamble <- [];
    let seg = { R.id; preamble; events; end_point; insn_delta; end_regs; pages } in
    let bytes = Seglog.Writer.segment o.writer seg in
    write_file (Filename.concat o.dir (segment_file_name id)) bytes;
    o.seg_ids <- id :: o.seg_ids;
    Bytes.length bytes

let finalize o ~final_state_hash =
  let manifest =
    { R.header = o.hdr;
      program = o.prog;
      config = o.cfg_record;
      segments = List.rev o.seg_ids;
      truncated_at = o.truncated_at;
      final_state_hash
    }
  in
  let bytes = Seglog.Writer.manifest manifest in
  write_file (Filename.concat o.dir "manifest.plog") bytes;
  o.manifest_bytes <- Bytes.length bytes

let stats o = Seglog.Writer.stats o.writer
let manifest_bytes o = o.manifest_bytes
