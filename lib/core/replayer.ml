(* The replay/check stage: everything driven by checker tracer events.
   Launches checkers over recorded segments, replays their R/R logs,
   drives them to the recorded execution points, compares program
   state, and classifies divergences. *)

module E = Sim_os.Engine
open Run_ctx

let record_error = Run_ctx.record_detection

let launch_checker t seg =
  let checker = Segment.checker seg in
  let cpu = E.cpu t.eng checker in
  let r = Segment.recorded seg in
  let signal_points = Rr_log.signal_points r.Segment.log in
  (* In RAFT streaming mode the checker may have executed past some
     signal points already; only the remaining ones become targets. *)
  let remaining_signals =
    List.filter
      (fun (at, _) -> at.Exec_point.branches >= Machine.Cpu.branches cpu)
      signal_points
  in
  let targets = List.map fst remaining_signals @ [ r.Segment.end_point ] in
  let replay = Exec_point.start_replay ~targets ~cpu in
  let timeout =
    max 1000
      (int_of_float
         (t.cfg.Config.timeout_scale *. float_of_int r.Segment.insn_delta))
  in
  Machine.Cpu.arm_insn_overflow cpu ~target:timeout;
  (* Checker-side fault arming. A one-shot plan must not chase the
     segment onto its re-dispatched checker (the re-check would then
     re-inject the very fault it is ruling out); a [repeat] plan is
     stuck-at and re-arms everywhere it applies. Runtime faults are
     armed by the coordinator's engine tick, not here. *)
  (match t.cfg.Config.fault_plan with
  | Some plan
    when Fault.targets_checker plan
         && plan_covers plan ~id:(Segment.id seg)
         && (plan.Fault.repeat || Segment.redispatches seg = 0) ->
    arm_plan_on_cpu cpu plan
  | Some _ | None -> ());
  (* A streaming checker was launched when recording started and may be
     stalled at its next interaction; a Parallaft checker is launched
     here, once its segment is fully recorded. *)
  let was_streaming = Segment.streaming seg <> None in
  (* Re-check support: fork a pristine spare off the checker before it
     runs — it IS the segment-start snapshot a re-dispatch needs.
     Streaming checkers have already executed, so there is nothing
     pristine to fork and RAFT segments fall through to the normal
     failure path instead. The remote backend forks spares eagerly even
     without the re-check extension: its nodes die for infrastructure
     reasons, and a re-dispatch must always have a snapshot to launch
     from. *)
  if
    (t.cfg.Config.recheck_on_mismatch
    || Config.backend_eager_spares t.cfg.Config.backend)
    && (not was_streaming)
    && Segment.spare seg = None
    && Segment.redispatches seg < Config.redispatch_budget t.cfg
  then begin
    Segment.set_spare seg (Some (E.fork_process t.eng checker));
    t.stats.Stats.checkpoint_count <- t.stats.Stats.checkpoint_count + 1
  end;
  let was_waiting = Segment.waiting seg in
  let launched_at_ns =
    match Segment.launched_at seg with
    | Some ns -> ns
    | None -> E.time_ns t.eng
  in
  Segment.begin_checking seg ~replay ~pending_signals:remaining_signals
    ~launched_at_ns;
  (* The backend's lease clock starts at the actual launch — a checker
     that dies before this point is handled by the pre-launch
     re-dispatch path, not a heartbeat expiry. *)
  t.backend_note_launched seg;
  t.stats.Stats.segment_insn_deltas <-
    r.Segment.insn_delta :: t.stats.Stats.segment_insn_deltas;
  observe t "segment.insns" (float_of_int r.Segment.insn_delta);
  emit_ev t ~track:(Obs.Trace.Proc checker) ~phase:Obs.Trace.Instant
    ~args:
      [
        ("seg", Obs.Trace.Int (Segment.id seg));
        ("targets", Obs.Trace.Int (List.length targets));
        ("insns", Obs.Trace.Int r.Segment.insn_delta);
      ]
    "replay.start";
  if not was_streaming then begin
    emit_ev t ~track:(Obs.Trace.Proc checker) ~phase:Obs.Trace.Begin
      ~args:[ ("seg", Obs.Trace.Int (Segment.id seg)) ]
      "check";
    (* The "replay" scope covers the checker's whole check; the
       scheduler's "checker_launch" scope (queue wait + dispatch) nests
       inside it on the same track, so replay self-time excludes it. *)
    phase_enter t ~track:(Obs.Trace.Proc checker) ~segment:(Segment.id seg)
      "replay";
    Scheduler.enqueue t.sched checker
  end
  else if was_waiting then
    (* The streaming checker is stalled at its next interaction. Resuming
       re-raises the stop: if it is resting on the segment-end pc the
       freshly armed breakpoint fires first and completes the segment;
       otherwise the syscall retries against the now-complete log. *)
    E.resume t.eng checker

(* Kill the current checker and relaunch the check on the pristine
   spare. The dying checker's "check" span closes here, before the
   replacement opens a new one on its own track, so span nesting stays
   balanced across re-dispatches. *)
let redispatch_check t seg ~because outcome =
  let old = Segment.checker seg in
  let spare =
    match Segment.spare seg with
    | Some sp -> sp
    | None ->
      raise
        (Segment.Invariant_violation
           (Printf.sprintf "segment %d: re-dispatch with no spare"
              (Segment.id seg)))
  in
  (* The old checker may carry the armed/fired injection; latch it
     before the pid (and its cpu) goes away. *)
  (match t.cfg.Config.fault_plan with
  | Some plan
    when Fault.targets_checker plan && plan_covers plan ~id:(Segment.id seg) ->
    t.stats.Stats.fi_fired <-
      t.stats.Stats.fi_fired || Machine.Cpu.fault_injected (E.cpu t.eng old)
  | Some _ | None -> ());
  emit_ev t ~track:(Obs.Trace.Proc old) ~phase:Obs.Trace.End
    ~args:
      [
        ("seg", Obs.Trace.Int (Segment.id seg));
        ("outcome", Obs.Trace.Str ("re-dispatched: " ^ because));
      ]
    "check";
  (match Segment.launched_at seg with
  | Some ns ->
    observe t "checker.latency_ns" (float_of_int (E.time_ns t.eng - ns))
  | None -> ());
  kill_if_alive t old;
  Scheduler.finished t.sched old;
  phase_leave t ~track:(Obs.Trace.Proc old) "replay";
  Hashtbl.remove t.roles old;
  t.stats.Stats.rechecks <- t.stats.Stats.rechecks + 1;
  (* The first failure in the chain is what a passing re-check
     resolves; a watchdog retry of an already re-checked segment keeps
     the original. *)
  if Segment.recheck_of seg = None then
    Segment.set_recheck_of seg (Some outcome);
  Segment.redispatch seg ~checker:spare;
  Hashtbl.replace t.roles spare (Checker_role seg);
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:
      [
        ("seg", Obs.Trace.Int (Segment.id seg));
        ("trigger", Obs.Trace.Str because);
        ("outcome", Obs.Trace.Str (Detection.outcome_to_string outcome));
      ]
    "recheck";
  (match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.incr s "rechecks");
  launch_checker t seg

(* May this failure be retried on a fresh checker before it counts as a
   detection? Bounded by the re-dispatch budget (>= 1 so the plain
   re-check always gets its one shot); needs the spare the re-check
   machinery forks at launch. *)
let can_redispatch t seg =
  t.cfg.Config.recheck_on_mismatch
  && Segment.spare seg <> None
  && Segment.redispatches seg < Config.redispatch_budget t.cfg

(* Same question for an infrastructure failure (the checker died or
   stalled, it did not produce a verdict): the remote backend retries
   those on its spares even without the re-check extension — a node
   death says nothing about the program. *)
let can_redispatch_infra t seg =
  (t.cfg.Config.recheck_on_mismatch
  || Config.backend_eager_spares t.cfg.Config.backend)
  && Segment.spare seg <> None
  && Segment.redispatches seg < Config.redispatch_budget t.cfg

let really_finish_checker t seg outcome_opt =
  let checker = Segment.checker seg in
  let launched_at_ns =
    match Segment.launched_at seg with Some ns -> ns | None -> 0
  in
  let snapshot = Segment.snapshot seg in
  Segment.complete seg;
  let cpu = E.cpu t.eng checker in
  Machine.Cpu.disarm_insn_overflow cpu;
  Machine.Cpu.disarm_branch_overflow cpu;
  Machine.Cpu.disarm_fault_injection cpu;
  Machine.Cpu.clear_all_breakpoints cpu;
  (* Persistent-fault classification: a detection after a rollback,
     before the verified prefix has advanced again, means re-execution
     reproduced the failure — burning the remaining recovery budget on
     further rollbacks cannot help. *)
  let outcome_opt =
    match outcome_opt with
    | Some o
      when t.cfg.Config.recovery
           && t.rollback_anchor <> None
           && not t.verified_since_rollback ->
      Some
        (Detection.Hard_fault
           {
             segment = Segment.id seg;
             rollbacks = t.stats.Stats.recoveries;
             last = Detection.outcome_to_string o;
           })
    | x -> x
  in
  (* A passing re-check resolves the original failure as the checker's
     own: transient, no rollback, the run continues. *)
  let transient =
    match (outcome_opt, Segment.recheck_of seg) with
    | None, Some orig ->
      Some (Detection.Transient_checker_fault (Detection.outcome_to_string orig))
    | _ -> None
  in
  (* Fault-injection classification for this run (checker-side targets;
     main-side plans are classified at run level by Runtime). *)
  (match t.cfg.Config.fault_plan with
  | Some plan
    when Fault.targets_checker plan && plan_covers plan ~id:(Segment.id seg) ->
    t.stats.Stats.fi_fired <-
      t.stats.Stats.fi_fired || Machine.Cpu.fault_injected cpu;
    t.stats.Stats.fi_outcome <-
      (match (outcome_opt, transient) with
      | Some o, _ -> Some o
      | None, Some tr -> Some tr
      | None, None ->
        if t.stats.Stats.fi_fired then Some Detection.Benign else None)
  | Some _ | None -> ());
  (match transient with
  | Some tr ->
    t.stats.Stats.transient_faults <- t.stats.Stats.transient_faults + 1;
    emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
      ~args:
        [
          ("seg", Obs.Trace.Int (Segment.id seg));
          ("outcome", Obs.Trace.Str (Detection.outcome_to_string tr));
        ]
      "recheck.transient";
    (match t.cfg.Config.obs with
    | None -> ()
    | Some s -> Obs.Sink.incr s "transient_faults")
  | None -> ());
  (match outcome_opt with
  | Some o -> record_error t seg o
  | None -> ());
  (match outcome_opt with
  | Some (Detection.Hard_fault _) ->
    t.stats.Stats.hard_faults <- t.stats.Stats.hard_faults + 1
  | Some _ | None -> ());
  emit_ev t ~track:(Obs.Trace.Proc checker) ~phase:Obs.Trace.End
    ~args:
      [
        ("seg", Obs.Trace.Int (Segment.id seg));
        ( "outcome",
          Obs.Trace.Str
            (match (outcome_opt, transient) with
            | Some o, _ -> Detection.outcome_to_string o
            | None, Some tr -> Detection.outcome_to_string tr
            | None, None -> "ok") );
      ]
    "check";
  observe t "checker.latency_ns"
    (float_of_int (E.time_ns t.eng - launched_at_ns));
  kill_if_alive t checker;
  (match Segment.spare seg with
  | Some sp ->
    kill_if_alive t sp;
    Segment.set_spare seg None
  | None -> ());
  (* Exactly-once settling: the supervisor retires the segment's lease
     (and would raise on a double settle). *)
  t.backend_settle seg;
  let failed = outcome_opt <> None in
  (if t.cfg.Config.recovery && not failed then
     Recovery.note_verified t ~id:(Segment.id seg) ~snapshot
   else
     match snapshot with
     | Some snap -> kill_if_alive t snap
     | None -> ());
  t.live <- List.filter (fun s -> Segment.id s <> Segment.id seg) t.live;
  Scheduler.finished t.sched checker;
  phase_leave t ~track:(Obs.Trace.Proc checker) "replay";
  if failed then begin
    match outcome_opt with
    | Some (Detection.Hard_fault _) ->
      (* Structured diagnostics (segment, rollbacks, last outcome) are
         already in the recorded outcome; stop burning the budget. *)
      Recovery.abort_run t
    | _ ->
      if
        t.cfg.Config.recovery
        && t.stats.Stats.recoveries < t.cfg.Config.max_recoveries
      then Recovery.recover t
      else Recovery.abort_run t
  end
  else if t.main_exited && t.cur = None && t.live = [] then
    (* The last checker verified after a clean main exit: the run is
       fully checked, so the retained recovery state has no further
       purpose — free it or the engine never reaches zero live
       processes. *)
    release_recovery_state t
  else if t.pending_boundary && live_count t < live_limit t then begin
    t.pending_boundary <- false;
    Scheduler.set_main_held t.sched false;
    phase_leave t ~track:(main_track t) "main_held";
    Recorder.do_boundary t
  end

(* Act on a verdict: if the re-check machinery can still retry a failure
   on a fresh checker, it is not yet a detection. The backend's verdict
   router has already had its chance to park or discard. *)
let deliver_verdict t seg outcome_opt =
  match outcome_opt with
  | Some o when can_redispatch t seg ->
    redispatch_check t seg ~because:"checker-side failure" o
  | _ -> really_finish_checker t seg outcome_opt

(* Every verdict funnels through here: the backend may park it (a
   remote node returning late) or discard it (stale incarnation), in
   which case the replayer must not act yet — the backend's poll will
   call {!deliver_verdict} when (if) the verdict becomes due. *)
let finish_checker t seg outcome_opt =
  if not (t.backend_route_verdict seg outcome_opt) then
    deliver_verdict t seg outcome_opt

(* Infrastructure failures (the checker died or stalled without
   producing a verdict) never route through the backend's verdict path:
   there is nothing to park. *)
let finish_checker_infra t seg outcome =
  if can_redispatch_infra t seg then
    redispatch_check t seg ~because:"checker-side failure" outcome
  else really_finish_checker t seg (Some outcome)

let reached_end t seg =
  let c = Segment.checking seg in
  let cpu = E.cpu t.eng (Segment.checker seg) in
  Machine.Cpu.disarm_insn_overflow cpu;
  let leftover = Rr_log.remaining_interactions c.Segment.cursor in
  if leftover > 0 then
    finish_checker t seg
      (Some
         (Detection.Detected
            (Detection.Syscall_mismatch
               { expected = "further recorded interactions"; got = "segment end" })))
  else if t.cfg.Config.compare_states then begin
    match c.Segment.snapshot with
    | None -> finish_checker t seg None
    | Some snap ->
      let checker_dirty =
        Dirty_tracker.collect t.cfg.Config.dirty_backend
          (page_table_of t (Segment.checker seg))
      in
      let union = Comparator.union_sorted c.Segment.main_dirty checker_dirty in
      let verdict, cs =
        Comparator.compare_states ~hasher:t.cfg.Config.hasher
          ?cache:t.page_digests ~reference:(E.cpu t.eng snap) ~candidate:cpu
          ~dirty_vpns:union ()
      in
      let bytes = cs.Comparator.bytes_hashed in
      charge_hash t ~segment:(Segment.id seg) (Segment.checker seg) ~bytes;
      t.stats.Stats.bytes_hashed <- t.stats.Stats.bytes_hashed + bytes;
      t.stats.Stats.pages_skipped_identical <-
        t.stats.Stats.pages_skipped_identical
        + cs.Comparator.pages_skipped_identical;
      t.stats.Stats.page_hash_hits <-
        t.stats.Stats.page_hash_hits + cs.Comparator.page_hash_hits;
      t.stats.Stats.page_hash_misses <-
        t.stats.Stats.page_hash_misses + cs.Comparator.page_hash_misses;
      t.stats.Stats.segments_compared <- t.stats.Stats.segments_compared + 1;
      emit_ev t ~track:(Obs.Trace.Proc (Segment.checker seg))
        ~phase:Obs.Trace.Instant
        ~args:
          [
            ("seg", Obs.Trace.Int (Segment.id seg));
            ("bytes", Obs.Trace.Int bytes);
            ( "skipped_identical",
              Obs.Trace.Int cs.Comparator.pages_skipped_identical );
            ("hash_hits", Obs.Trace.Int cs.Comparator.page_hash_hits);
            ("hash_misses", Obs.Trace.Int cs.Comparator.page_hash_misses);
            ( "verdict",
              Obs.Trace.Str
                (match verdict with
                | Comparator.Match -> "match"
                | Comparator.Mismatch _ -> "mismatch") );
          ]
        "compare";
      observe t "compare.bytes" (float_of_int bytes);
      observe t "compare.pages_skipped"
        (float_of_int cs.Comparator.pages_skipped_identical);
      (match t.cfg.Config.obs with
      | None -> ()
      | Some s ->
        Obs.Sink.add s "compare.page_hash_hits" cs.Comparator.page_hash_hits;
        Obs.Sink.add s "compare.page_hash_misses" cs.Comparator.page_hash_misses);
      finish_checker t seg
        (match verdict with
        | Comparator.Match -> None
        | Comparator.Mismatch m -> Some (Detection.Detected m))
  end
  else finish_checker t seg None

let rec advance t seg adv =
  match (adv : Exec_point.advance) with
  | Exec_point.Keep_running -> E.resume t.eng (Segment.checker seg)
  | Exec_point.Reached pt -> (
    let c = Segment.checking seg in
    match c.Segment.pending_signals with
    | (spt, signum) :: rest when Exec_point.compare spt pt = 0 ->
      c.Segment.pending_signals <- rest;
      E.deliver_signal_now t.eng (Segment.checker seg) signum;
      (match E.state t.eng (Segment.checker seg) with
      | E.Exited _ ->
        (* The signal's default action killed the checker — the main
           survived it, so this is a divergence. *)
        finish_checker t seg
          (Some (Detection.Exception_detected "killed by replayed signal"))
      | E.Runnable | E.Stopped ->
        Exec_point.next_target c.Segment.replay;
        advance t seg (Exec_point.poll c.Segment.replay))
    | _ -> reached_end t seg)

let fail_checker t seg mismatch =
  finish_checker t seg (Some (Detection.Detected mismatch))

let apply_effects t pid effects =
  List.iter
    (fun { Rr_log.addr; data } ->
      ignore (Mem.Address_space.write_bytes (E.aspace t.eng pid) ~addr data))
    effects

let replay_process_local t seg (rec_ : Rr_log.sys_record) call =
  let cpu = E.cpu t.eng (Segment.checker seg) in
  let restore_args =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Mmap { addr; flags; _ }
      when flags land Sim_os.Syscall.map_anon <> 0 ->
      (* Defeat ASLR divergence: pin the checker's mapping to the address
         the kernel gave the main process (§4.3.2). The original argument
         registers are restored afterwards so the rewrite is invisible to
         the program-state comparison. *)
      Machine.Cpu.set_reg cpu 1 rec_.result;
      Machine.Cpu.set_reg cpu 4 (flags lor Sim_os.Syscall.map_fixed);
      Some (addr, flags)
    | _ -> None
  in
  E.do_syscall t.eng (Segment.checker seg);
  (match restore_args with
  | Some (addr, flags) ->
    Machine.Cpu.set_reg cpu 1 addr;
    Machine.Cpu.set_reg cpu 4 flags
  | None -> ());
  let verify_result =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Sigreturn -> false
    | _ -> true
  in
  if verify_result && Machine.Cpu.get_reg cpu 0 <> rec_.result then
    fail_checker t seg
      (Detection.Syscall_mismatch
         {
           expected =
             Printf.sprintf "%s = %d" (Sim_os.Syscall.name call) rec_.result;
           got =
             Printf.sprintf "%s = %d" (Sim_os.Syscall.name call)
               (Machine.Cpu.get_reg cpu 0);
         })
  else E.resume t.eng (Segment.checker seg)

let checker_syscall t seg call =
  emit_ev t ~track:(Obs.Trace.Proc (Segment.checker seg))
    ~phase:Obs.Trace.Instant
    ~args:[ ("call", Obs.Trace.Str (Sim_os.Syscall.name call)) ]
    "sys.replay";
  match Segment.cursor seg with
  | None ->
    fail_checker t seg
      (Detection.Extra_interaction { got = Sim_os.Syscall.name call })
  | Some cursor -> (
    match Rr_log.next_interaction cursor with
    | None when Segment.phase seg = Segment.Recording_p ->
      (* Streaming replay caught up with the recorder: wait. *)
      Segment.set_waiting seg true
    | None ->
      fail_checker t seg
        (Detection.Extra_interaction { got = Sim_os.Syscall.name call })
    | Some (Rr_log.Nondet _) ->
      fail_checker t seg
        (Detection.Syscall_mismatch
           {
             expected = "nondeterministic instruction";
             got = Sim_os.Syscall.name call;
           })
    | Some (Rr_log.Ext_signal _) ->
      (* next_interaction never yields signals *)
      assert false
    | Some (Rr_log.Sys rec_) ->
      if rec_.call <> call then
        fail_checker t seg
          (Detection.Syscall_mismatch
             {
               expected = Sim_os.Syscall.name rec_.call;
               got = Sim_os.Syscall.name call;
             })
      else begin
        (* Check argument data (e.g. write payloads) against the record. *)
        let data_matches =
          match rec_.in_data with
          | None -> true
          | Some expected -> (
            let got =
              match (call : Sim_os.Syscall.call) with
              | Sim_os.Syscall.Write { addr; len; _ } ->
                read_mem_opt t (Segment.checker seg) ~addr ~len
              | Sim_os.Syscall.Open { path_addr; path_len; _ } ->
                read_mem_opt t (Segment.checker seg) ~addr:path_addr
                  ~len:path_len
              | _ -> None
            in
            match got with
            | Some b -> Bytes.equal b expected
            | None -> false)
        in
        if not data_matches then
          fail_checker t seg
            (Detection.Syscall_data_mismatch
               { syscall = Sim_os.Syscall.name call })
        else
          match Sim_os.Syscall.categorize call with
          | Sim_os.Syscall.Process_local -> replay_process_local t seg rec_ call
          | Sim_os.Syscall.Globally_effectful | Sim_os.Syscall.Non_effectful ->
            (* Never re-executed: answer from the record so external
               effects happen exactly once. *)
            E.complete_syscall t.eng (Segment.checker seg) ~result:rec_.result;
            apply_effects t (Segment.checker seg) rec_.effects;
            let bytes =
              List.fold_left
                (fun acc { Rr_log.data; _ } -> acc + Bytes.length data)
                0 rec_.effects
            in
            charge_record t ~segment:(Segment.id seg) (Segment.checker seg)
              ~bytes;
            E.resume t.eng (Segment.checker seg)
      end)

let checker_nondet t seg insn =
  match Segment.cursor seg with
  | None -> fail_checker t seg (Detection.Extra_interaction { got = "nondet" })
  | Some cursor -> (
    match Rr_log.next_interaction cursor with
    | None when Segment.phase seg = Segment.Recording_p ->
      Segment.set_waiting seg true
    | Some (Rr_log.Nondet { insn = recorded_insn; value })
      when recorded_insn = insn ->
      let cpu = E.cpu t.eng (Segment.checker seg) in
      (match Isa.Insn.writes_reg insn with
      | Some reg -> Machine.Cpu.set_reg cpu reg value
      | None -> ());
      Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
      E.resume t.eng (Segment.checker seg)
    | Some (Rr_log.Sys r) ->
      fail_checker t seg
        (Detection.Syscall_mismatch
           { expected = Sim_os.Syscall.name r.call; got = "nondet instruction" })
    | Some (Rr_log.Nondet _) | Some (Rr_log.Ext_signal _) | None ->
      fail_checker t seg
        (Detection.Extra_interaction { got = "nondet instruction" }))

let fault_to_string (f : Machine.Cpu.fault) =
  match f with
  | Machine.Cpu.Segv { addr; write } ->
    Printf.sprintf "SIGSEGV at %#x (%s)" addr (if write then "write" else "read")
  | Machine.Cpu.Div_by_zero -> "SIGFPE (division by zero)"
  | Machine.Cpu.Bad_pc pc -> Printf.sprintf "control flow left the code (pc=%d)" pc

let handle_checker_event t seg ev =
  if Segment.is_done seg then () (* stale event after the segment completed *)
  else
    match (ev : E.event) with
    | E.Syscall_entry call -> checker_syscall t seg call
    | E.Nondet insn -> checker_nondet t seg insn
    | E.Branch_overflow ->
      advance t seg
        (Exec_point.on_branch_overflow (Segment.checking seg).Segment.replay)
    | E.Breakpoint ->
      advance t seg
        (Exec_point.on_breakpoint (Segment.checking seg).Segment.replay)
    | E.Insn_overflow -> finish_checker t seg (Some Detection.Timeout_detected)
    | E.Fault f ->
      finish_checker t seg
        (Some (Detection.Exception_detected (fault_to_string f)))
    | E.Halted ->
      finish_checker t seg
        (Some (Detection.Exception_detected "checker ran past the segment end"))
    | E.Cycle_overflow -> E.resume t.eng (Segment.checker seg)
    | E.Signal _ ->
      (* External signals target the main process; recorded there and
         replayed by execution point, never delivered here directly. *)
      E.resume t.eng (Segment.checker seg)
