(** The typed per-segment state machine.

    A segment moves through the pipeline of Figure 1(b):

    {v
      Recording ──────────► Awaiting_launch ─────► Checking ───► Done
          │    finish_recording     ▲  begin_checking │  complete  ▲
          │                         └─────────────────┘            │
          │                     redispatch (re-check/watchdog)     │
          └────────────────────────────────────────────────────────┘
            complete (RAFT streaming checker dies mid-record)
    v}

    Each state carries exactly the data that is meaningful in it, so
    fields like the end point, the replay driver or the log cursor
    cannot be observed before they exist — what used to be
    [mutable ... option] fields plus [Option.get] in the coordinator is
    now enforced by the variant. Illegal transitions and out-of-state
    accesses raise {!Invariant_violation} unconditionally; the
    {!check_invariants} self-check (run-level sweeps are gated on
    {!Config.t.check_invariants}) validates history legality and
    intra-state consistency. *)

exception Invariant_violation of string

(** RAFT streaming replay: the checker consumes the log concurrently
    with recording, stalling ([waiting]) whenever it catches up. *)
type streaming = {
  cursor : Rr_log.cursor;
  mutable waiting : bool;
  started_ns : int;  (** sim time the checker was handed to the scheduler *)
}

type recording = {
  log : Rr_log.t;
  streaming : streaming option;  (** [Some] only in RAFT mode *)
}

(** Fully recorded, checker not yet armed/launched. *)
type recorded = {
  log : Rr_log.t;
  end_point : Exec_point.t;
  insn_delta : int;
  main_dirty : int array;
  snapshot : Sim_os.Engine.pid option;
      (** end-of-segment checkpoint (when state comparison is on) *)
  streaming : streaming option;
}

type checking = {
  log : Rr_log.t;
  cursor : Rr_log.cursor;
  replay : Exec_point.replay;
  mutable pending_signals : (Exec_point.t * Sim_os.Sig_num.t) list;
  end_point : Exec_point.t;
      (** retained so {!redispatch} can rebuild the replay plan *)
  insn_delta : int;
  main_dirty : int array;
  snapshot : Sim_os.Engine.pid option;
  launched_at_ns : int;
}

type state =
  | Recording of recording
  | Awaiting_launch of recorded
  | Checking of checking
  | Done

(** Data-free tags of {!state}, for histories and comparisons. *)
type phase =
  | Recording_p
  | Awaiting_launch_p
  | Checking_p
  | Done_p

val phase_to_string : phase -> string
val legal_transition : from:phase -> into:phase -> bool

val legal_history : phase list -> bool
(** Starts with [Recording_p] and every consecutive pair is a
    {!legal_transition}. *)

type t

val create : id:int -> checker:Sim_os.Engine.pid -> t
(** A fresh segment in [Recording] with an empty log. *)

val id : t -> int

val checker : t -> Sim_os.Engine.pid
(** The current checker — replaced by {!redispatch} when a re-check or
    the watchdog promotes the spare. *)

val spare : t -> Sim_os.Engine.pid option
(** A pristine fork of the checker taken just before it first ran
    (only when {!Config.t.recheck_on_mismatch} is on): the
    segment-start snapshot a re-dispatch launches from. *)

val set_spare : t -> Sim_os.Engine.pid option -> unit

val redispatches : t -> int
(** How many times this segment's check was re-dispatched. *)

val recheck_of : t -> Detection.outcome option
(** The checker-side failure the current check is re-checking; a pass
    resolves it as {!Detection.Transient_checker_fault}. *)

val set_recheck_of : t -> Detection.outcome option -> unit
val state : t -> state
val phase : t -> phase

val history : t -> phase list
(** Every phase the segment has been in, oldest first. *)

val torn_down : t -> bool
(** The segment was discarded by rollback or abort rather than
    completing its pipeline. *)

(** {2 Transitions} — each raises {!Invariant_violation} outside its
    legal source state. *)

val start_streaming : t -> started_ns:int -> unit
(** RAFT only: attach a streaming cursor to a recording segment. *)

val finish_recording :
  t ->
  end_point:Exec_point.t ->
  insn_delta:int ->
  main_dirty:int array ->
  snapshot:Sim_os.Engine.pid option ->
  unit
(** [Recording -> Awaiting_launch]. *)

val begin_checking :
  t ->
  replay:Exec_point.replay ->
  pending_signals:(Exec_point.t * Sim_os.Sig_num.t) list ->
  launched_at_ns:int ->
  unit
(** [Awaiting_launch -> Checking]. The cursor is inherited from the
    streaming checker when there is one (it has already consumed a log
    prefix), fresh otherwise. *)

val complete : t -> unit
(** [Checking -> Done], or [Recording -> Done] for a streaming checker
    that died mid-record. *)

val redispatch : t -> checker:Sim_os.Engine.pid -> unit
(** [Checking -> Awaiting_launch]: return a failed or watchdog-killed
    check to the launch queue on a fresh [checker] (the promoted
    spare). Clears the spare, bumps {!redispatches}; the caller re-keys
    the roles table and relaunches. A re-dispatched check never
    streams. *)

val replace_checker_prelaunch : t -> checker:Sim_os.Engine.pid -> unit
(** Swap in a replacement for a checker that died between dispatch and
    launch (remote backend): stays in [Awaiting_launch], clears the
    spare, bumps {!redispatches}. The caller re-keys the roles table.
    Raises outside [Awaiting_launch]. *)

val tear_down : t -> unit
(** Mark the segment discarded (rollback/abort); not a transition. *)

(** {2 Per-state accessors} *)

val recorded : t -> recorded
(** Raises unless [Awaiting_launch]. *)

val checking : t -> checking
(** Raises unless [Checking]. *)

val log : t -> Rr_log.t
(** Raises in [Done] (nothing may be recorded or replayed anymore). *)

val cursor : t -> Rr_log.cursor option
(** The replay cursor, in any state that has one: [Checking] always,
    earlier states only while streaming. *)

val snapshot : t -> Sim_os.Engine.pid option
val streaming : t -> streaming option

val launched_at : t -> int option
(** [Some ns] iff the checker has been handed to the scheduler: its
    segment reached [Checking], or it is streaming. *)

val waiting : t -> bool

val set_waiting : t -> bool -> unit
(** Raises when there is no streaming checker to stall/wake. *)

val is_done : t -> bool

val check_invariants : t -> unit
(** History legality, history/state agreement, intra-state consistency.
    Raises {!Invariant_violation} on the first failure. *)
