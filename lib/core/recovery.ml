(* The recovery stage: verified-prefix promotion of checkpoint
   snapshots, rollback to the recovery point, and whole-run abort
   teardown. *)

module E = Sim_os.Engine
open Run_ctx

(* Segments torn down by rollback/abort never reach the replayer's
   finish path, so without help their Begin spans would dangle in the
   trace (Perfetto renders them as running forever) and their checker
   latency would go unrecorded. Close the checker's "check" span -- and,
   for the in-flight segment, the main-track "segment" span --
   explicitly. *)
let close_torn_down_check t seg =
  match Segment.launched_at seg with
  | Some launched_at_ns when not (Segment.is_done seg) ->
    emit_ev t ~track:(Obs.Trace.Proc (Segment.checker seg)) ~phase:Obs.Trace.End
      ~args:
        [
          ("seg", Obs.Trace.Int (Segment.id seg));
          ("outcome", Obs.Trace.Str "torn-down");
        ]
      "check";
    observe t "checker.latency_ns"
      (float_of_int (E.time_ns t.eng - launched_at_ns))
  | Some _ | None -> ()

let close_torn_down_cur t =
  match t.cur with
  | None -> ()
  | Some seg ->
    close_torn_down_check t seg;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.End
      ~args:
        [
          ("seg", Obs.Trace.Int (Segment.id seg));
          ("outcome", Obs.Trace.Str "torn-down");
        ]
      "segment"

let kill_spare t seg =
  match Segment.spare seg with
  | Some sp ->
    kill_if_alive t sp;
    Segment.set_spare seg None
  | None -> ()

(* Kill every process we own; ends the simulation. *)
let abort_run t =
  t.aborted <- true;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant "abort";
  (* Teardown kills processes mid-phase; retire every open profiling
     scope at abort time so no elapsed time is lost or double-counted. *)
  phase_close_all t;
  latch_main_fault t;
  List.iter (close_torn_down_check t) t.live;
  close_torn_down_cur t;
  List.iter
    (fun seg ->
      kill_if_alive t (Segment.checker seg);
      kill_spare t seg;
      (match Segment.snapshot seg with
      | Some snap -> kill_if_alive t snap
      | None -> ());
      Segment.tear_down seg)
    t.live;
  (match t.cur with
  | Some seg ->
    kill_if_alive t (Segment.checker seg);
    kill_spare t seg;
    Segment.tear_down seg
  | None -> ());
  t.backend_flush ();
  kill_if_alive t t.main;
  release_recovery_state t;
  (* Fleet mode: the dead checkers' cores must return to the shared
     pool now — other tenants keep running after this tenant aborts.
     No-op standalone (the run is over). *)
  Scheduler.flush t.sched

(* Recovery-point bookkeeping: a snapshot becomes the recovery point once
   every segment up to it has verified; older points are freed. *)
let note_verified t ~id ~snapshot =
  match snapshot with
  | None -> ()
  | Some snap ->
    Hashtbl.replace t.verified_snapshots id snap;
    let continue_promoting = ref true in
    while !continue_promoting do
      match Hashtbl.find_opt t.verified_snapshots (t.verified_prefix + 1) with
      | Some snap' ->
        t.verified_prefix <- t.verified_prefix + 1;
        Hashtbl.remove t.verified_snapshots t.verified_prefix;
        (match t.recovery_point with
        | Some (_, old) -> kill_if_alive t old
        | None -> ());
        t.recovery_point <- Some (t.verified_prefix, snap');
        (* The verified prefix moved past the rollback anchor: the
           re-executed run is making verified progress, so a later
           detection is a new fault, not the old one persisting. The
           rollback phase scope ends here — repair is complete once
           re-executed work verifies again. *)
        if (not t.verified_since_rollback) && t.rollback_anchor <> None then
          phase_leave t ~track:Obs.Trace.Run "rollback";
        t.verified_since_rollback <- true
      | None -> continue_promoting := false
    done

(* Roll the whole run back to the recovery point: the paper's Table 2
   "error recovery" future-work row. Externally visible syscalls since
   that checkpoint are re-executed (the §3.4 buffered-IO assumption). *)
let recover t =
  t.stats.Stats.recoveries <- t.stats.Stats.recoveries + 1;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:
      [
        ("nr", Obs.Trace.Int t.stats.Stats.recoveries);
        ("verified_prefix", Obs.Trace.Int t.verified_prefix);
      ]
    "recovery";
  phase_close_all t;
  latch_main_fault t;
  List.iter (close_torn_down_check t) t.live;
  close_torn_down_cur t;
  (* Tear down everything derived from the (possibly corrupt) state. *)
  List.iter
    (fun seg ->
      kill_if_alive t (Segment.checker seg);
      kill_spare t seg;
      (match Segment.snapshot seg with
      | Some s -> kill_if_alive t s
      | None -> ());
      Segment.tear_down seg)
    t.live;
  (match t.cur with
  | Some seg ->
    kill_if_alive t (Segment.checker seg);
    kill_spare t seg;
    Segment.tear_down seg
  | None -> ());
  Hashtbl.iter (fun _ snap -> kill_if_alive t snap) t.verified_snapshots;
  Hashtbl.reset t.verified_snapshots;
  (* The torn-down segments will never settle: the backend drops its
     queued/parked work and cancels their supervisor entries. *)
  t.backend_flush ();
  kill_if_alive t t.main;
  t.live <- [];
  t.cur <- None;
  t.pending_boundary <- false;
  t.main_exited <- false;
  match t.recovery_point with
  | None ->
    (* No verified state to return to: give up. *)
    abort_run t
  | Some (anchor_id, snap) ->
    t.recovery_point <- None;
    (* Arm the persistent-fault classifier: until the verified prefix
       advances again, a further detection is the same fault coming
       back (Hard_fault), not something another rollback can fix. *)
    t.rollback_anchor <- Some anchor_id;
    t.verified_since_rollback <- false;
    (* Post-rollback segments re-execute from the checkpoint, so they
       no longer extend the persisted linear history: truncate the
       on-disk log at the last segment whose check actually ran (the
       failing one). Segments recorded past it — queued behind a
       deferred batch or remote dispatch — were never checked against
       the discarded state and are dropped from the manifest. *)
    (match t.seglog with
    | Some out ->
      Seglog_io.note_rollback out
        ~last_checked:
          (match t.first_error with
          | Some (id, _) -> id
          | None -> t.verified_prefix)
    | None -> ());
    (* The rollback phase runs on the Run track (concurrent work, not
       part of the main-core wall partition: re-recording overlaps it)
       until re-executed work verifies again in [note_verified]. *)
    phase_enter t ~track:Obs.Trace.Run "rollback";
    (* Re-anchor the verified prefix at the ids the post-rollback
       segments will get, so promotion resumes seamlessly. *)
    t.verified_prefix <- t.next_id - 1;
    Hashtbl.replace t.roles snap Main_role;
    t.main <- snap;
    E.set_core t.eng snap ~core:t.cfg.Config.main_core;
    (* A fresh scheduler: the old one's bookkeeping refers to dead pids.
       In fleet mode re-creation re-registers the tenant, which flushes
       its stale entries from the shared pool. *)
    t.sched <- Scheduler.create ?fleet:t.fleet t.eng t.cfg t.stats;
    Recorder.start_segment t;
    E.resume t.eng snap
