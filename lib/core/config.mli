(** Runtime configuration.

    [parallaft ~platform ()] reproduces the paper's default setup
    (§4-5): slicing every "5 billion" cycles (at the documented 1e-4
    simulation scale), checkers on little cores with migration and DVFS
    pacing, XXH64 state comparison, dirty tracking chosen per platform.

    [raft ~platform ()] models RAFT exactly as §5.1 does: no periodic
    slicing (one segment for the whole run), the checker on a big core,
    no state comparison and no dirty-page tracking — syscall comparison
    remains the only detection mechanism. *)

type mode =
  | Parallaft
  | Raft

type hasher =
  | Xxh64_hash
  | Fnv64_hash

type dirty_backend =
  | Soft_dirty  (** per-PTE dirty bits, cleared at segment start (x86_64) *)
  | Map_count  (** PAGEMAP_SCAN-style unique-mapping query (AArch64) *)
  | Full_compare  (** ablation: compare every mapped page *)

type chaos = {
  chaos_seed : int64;  (** seed for the backend's private fault RNG *)
  crash_pct : int;  (** per-dispatch chance the node dies mid-check *)
  stall_pct : int;  (** per-dispatch chance the node wedges mid-check *)
  late_pct : int;  (** per-dispatch chance the verdict returns late *)
  prelaunch_pct : int;
      (** per-dispatch chance the node dies between dispatch and the
          check actually launching (the pre-first-heartbeat window) *)
  reboot_ns : int;  (** crashed/stalled nodes recover after this long *)
  late_ns : int;  (** base delay for late verdicts *)
}

type backend =
  | Backend_inline
      (** launch each checker the instant its segment finishes recording
          — the original (and byte-identical) PR-4 pipeline *)
  | Backend_deferred of { batch : int; max_lag : int }
      (** queue finished segments and launch [batch] checks per wakeup,
          amortizing fork + cache-warmup cost; [max_lag] bounds how many
          unverified segments may be outstanding (backpressures the
          recorder through the boundary-hold mechanism) *)
  | Backend_remote of { nodes : int; retries : int; chaos : chaos option }
      (** dispatch each check to a pool of [nodes] simulated checker
          nodes supervised by per-segment leases with heartbeat expiry;
          a dead/stalled/late node's segment is re-dispatched (up to
          [retries] times) to a healthy node, with exactly-once settling
          enforced by the {!Backend.Supervisor}. [chaos] injects node
          faults for the campaign in [exp_backends]. *)

type t = {
  mode : mode;
  slice_period : int;
      (** in the platform's slice unit (cycles on Apple, instructions on
          Intel); ignored in RAFT mode *)
  timeout_scale : float;  (** checker killed past [scale * main_insns] *)
  max_live_segments : int;
      (** main stalls at a boundary while this many segments are
          outstanding — the detection-latency / memory bound of §3.4 *)
  migration : bool;  (** migrate the oldest checker to a big core when
                         little cores run out (§4.5) *)
  dvfs_pacing : bool;  (** scale the little cluster's DVFS point *)
  hasher : hasher;
  compare_states : bool;
  dirty_backend : dirty_backend;
  page_hash_cache_pages : int;
      (** capacity (in pages) of the comparator's per-frame digest memo
          ({!Mem.Page_digest_cache}); bounds the memory the O(dirty)
          compare path may pin. Values [<= 0] disable the memo (every
          page is hashed from scratch). *)
  main_core : int;
  checkers_on_little : bool;
  pacer_tick_ns : int;
  fault_plan : Fault.plan option;
      (** inject one fault into this run, at any of the {!Fault.target}
          classes (§5.6 generalized; DESIGN.md §13) *)
  recovery : bool;
      (** EXTENSION (the paper's Table 2 "future work" row): on a
          detection, roll the main process back to the last verified
          checkpoint and re-execute, instead of terminating. Caveat
          (shared with the paper's §3.4 discussion): externally visible
          syscalls issued since that checkpoint are re-executed, so
          recovery assumes buffered/reversible IO. *)
  max_recoveries : int;
      (** abort anyway after this many rollbacks (the backstop behind
          the Hard_fault classifier, which catches a persistent fault
          after a single wasted rollback) *)
  recheck_on_mismatch : bool;
      (** EXTENSION (DESIGN.md §13): treat a checker-side failure
          (mismatch, crash, timeout, watchdog kill) as possibly the
          {e checker's} fault: re-dispatch the check once, on a fresh
          checker forked from the segment's start snapshot. If the
          re-check passes the failure is classified
          {!Detection.Transient_checker_fault} and the run continues
          without rollback; if it fails too, the failure stands and the
          normal recover-or-abort response runs. Costs one extra fork
          per launched segment (the pristine spare the re-check needs). *)
  watchdog_stall_ns : int;
      (** checker watchdog (DESIGN.md §13): a checking checker that
          makes no instruction progress for this much simulated time —
          while holding a core, not queued, and not waiting on a
          streaming log — is declared stalled, killed, and re-dispatched
          (or failed, once out of retries/spares). Catches the stalls
          and kills the instruction-budget timeout cannot (that budget
          only fires if the checker is {e executing}). [<= 0] disables. *)
  watchdog_retries : int;
      (** re-dispatches the watchdog may attempt per segment before it
          declares the checker failed *)
  check_invariants : bool;
      (** debug: after every handled tracer event, validate segment
          state-machine legality and cross-structure consistency (roles,
          live set, scheduler and engine must agree on live pids), and
          retain per-segment transition histories for inspection
          ({!Coordinator.segment_histories}). Defaults to the
          [PARALLAFT_INVARIANTS] environment variable ([1]/non-empty,
          with [0] meaning off); a violation raises
          {!Segment.Invariant_violation}. *)
  block_cache : int;
      (** decoded-block cache capacity (in blocks) for every CPU the run
          spawns ([<= 0] disables). Purely an interpreter speedup: the
          simulated behaviour, all goldens and every counter are
          byte-identical with the cache on or off. Defaults to
          {!Machine.Cpu.default_block_cache} (itself settable via the
          [PARALLAFT_BLOCK_CACHE] environment variable). *)
  cpu_stats : bool;
      (** append [cpu.block_cache_*] interpreter-internal rows to the
          stats dump. Off by default so the default stats surface (and
          every golden) is unchanged — the same opt-in discipline as the
          [profile.*] rows. *)
  record_log : string option;
      (** persist a {!Seglog} of the run into this directory (one
          [seg-NNNNNN.plog] per recorded segment plus a [manifest.plog]
          at the end), for offline re-checking with [parallaft_replay].
          [None] (the default) writes nothing and the run is
          byte-identical to before the option existed. Requires
          Parallaft mode with state comparison on (the log's verdict is
          the comparison); see DESIGN.md §17. *)
  backend : backend;
      (** where and when checks run (DESIGN.md §18). [Backend_inline]
          (the default) is byte-identical to the pre-backend pipeline.
          Non-inline backends require Parallaft mode with state
          comparison on. *)
  obs : Obs.Sink.t option;
      (** observability sink (event trace + metrics). [None] (the
          default) makes every emit site in the engine, coordinator and
          scheduler a no-op, so tracing is zero-cost unless requested.
          See DESIGN.md "Observability" for the event taxonomy. *)
}

val parallaft : platform:Platform.t -> ?slice_period:int -> unit -> t
(** Default slice period: 250_000 cycles ("5 billion" at the documented
    5e-5 cycle scale), or the same count of instructions when the
    platform slices by instructions. *)

val raft : platform:Platform.t -> unit -> t

val default_slice_period : Platform.t -> int

val default_chaos : chaos
val deferred_backend : ?batch:int -> ?max_lag:int -> unit -> backend
val remote_backend : ?nodes:int -> ?retries:int -> ?chaos:chaos -> unit -> backend

val backend_eager_spares : backend -> bool
(** Remote dispatches fork a pristine spare eagerly so a re-dispatch
    after node death never lacks a snapshot to launch from. *)

val redispatch_budget : t -> int
(** Re-dispatches a segment may burn before a checker-side failure
    becomes final ([max retries (max 1 watchdog_retries)] for the remote
    backend, [max 1 watchdog_retries] otherwise). *)

val live_limit : t -> int
(** The recorder's boundary-hold limit: [max_live_segments], further
    clamped to the deferred backend's [max_lag] verification-lag
    budget. *)
