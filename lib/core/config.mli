(** Runtime configuration.

    [parallaft ~platform ()] reproduces the paper's default setup
    (§4-5): slicing every "5 billion" cycles (at the documented 1e-4
    simulation scale), checkers on little cores with migration and DVFS
    pacing, XXH64 state comparison, dirty tracking chosen per platform.

    [raft ~platform ()] models RAFT exactly as §5.1 does: no periodic
    slicing (one segment for the whole run), the checker on a big core,
    no state comparison and no dirty-page tracking — syscall comparison
    remains the only detection mechanism. *)

type mode =
  | Parallaft
  | Raft

type hasher =
  | Xxh64_hash
  | Fnv64_hash

type dirty_backend =
  | Soft_dirty  (** per-PTE dirty bits, cleared at segment start (x86_64) *)
  | Map_count  (** PAGEMAP_SCAN-style unique-mapping query (AArch64) *)
  | Full_compare  (** ablation: compare every mapped page *)

(** Fault-injection plan for one run (§5.6): flip [bit] of [reg] in the
    checker of segment [segment] after [delay_instructions]. *)
type fault_plan = {
  segment : int;  (** 0-based segment index *)
  delay_instructions : int;
  reg : int;
  bit : int;
}

type t = {
  mode : mode;
  slice_period : int;
      (** in the platform's slice unit (cycles on Apple, instructions on
          Intel); ignored in RAFT mode *)
  timeout_scale : float;  (** checker killed past [scale * main_insns] *)
  max_live_segments : int;
      (** main stalls at a boundary while this many segments are
          outstanding — the detection-latency / memory bound of §3.4 *)
  migration : bool;  (** migrate the oldest checker to a big core when
                         little cores run out (§4.5) *)
  dvfs_pacing : bool;  (** scale the little cluster's DVFS point *)
  hasher : hasher;
  compare_states : bool;
  dirty_backend : dirty_backend;
  page_hash_cache_pages : int;
      (** capacity (in pages) of the comparator's per-frame digest memo
          ({!Mem.Page_digest_cache}); bounds the memory the O(dirty)
          compare path may pin. Values [<= 0] disable the memo (every
          page is hashed from scratch). *)
  main_core : int;
  checkers_on_little : bool;
  pacer_tick_ns : int;
  fault_plan : fault_plan option;
  recovery : bool;
      (** EXTENSION (the paper's Table 2 "future work" row): on a
          detection, roll the main process back to the last verified
          checkpoint and re-execute, instead of terminating. Caveat
          (shared with the paper's §3.4 discussion): externally visible
          syscalls issued since that checkpoint are re-executed, so
          recovery assumes buffered/reversible IO. *)
  max_recoveries : int;
      (** abort anyway after this many rollbacks (a persistent hard
          fault would otherwise loop forever) *)
  check_invariants : bool;
      (** debug: after every handled tracer event, validate segment
          state-machine legality and cross-structure consistency (roles,
          live set, scheduler and engine must agree on live pids), and
          retain per-segment transition histories for inspection
          ({!Coordinator.segment_histories}). Defaults to the
          [PARALLAFT_INVARIANTS] environment variable ([1]/non-empty,
          with [0] meaning off); a violation raises
          {!Segment.Invariant_violation}. *)
  obs : Obs.Sink.t option;
      (** observability sink (event trace + metrics). [None] (the
          default) makes every emit site in the engine, coordinator and
          scheduler a no-op, so tracing is zero-cost unless requested.
          See DESIGN.md "Observability" for the event taxonomy. *)
}

val parallaft : platform:Platform.t -> ?slice_period:int -> unit -> t
(** Default slice period: 250_000 cycles ("5 billion" at the documented
    5e-5 cycle scale), or the same count of instructions when the
    platform slices by instructions. *)

val raft : platform:Platform.t -> unit -> t

val default_slice_period : Platform.t -> int
