module E = Sim_os.Engine

type seg_state =
  | Recording
  | Checking
  | Done

type segment = {
  id : int;
  checker : E.pid;
  log : Rr_log.t;
  mutable snapshot : E.pid option;
  mutable end_point : Exec_point.t option;
  mutable insn_delta : int;
  mutable main_dirty : int array;
  mutable replay : Exec_point.replay option;
  mutable cursor : Rr_log.cursor option;
  mutable pending_signals : (Exec_point.t * Sim_os.Sig_num.t) list;
  mutable state : seg_state;
  mutable launched : bool;  (* checker already scheduled (RAFT streaming) *)
  mutable checker_waiting : bool;  (* checker stalled on a not-yet-recorded event *)
  mutable launched_at_ns : int;  (* sim time the checker was handed to the scheduler *)
}

type role =
  | Main_role
  | Checker_role of segment

type t = {
  eng : E.t;
  cfg : Config.t;
  stats : Stats.t;
  mutable sched : Scheduler.t option;
  rng : Util.Rng.t;
  mutable main : E.pid;
  roles : (E.pid, role) Hashtbl.t;
  mutable cur : segment option;
  mutable live : segment list;
  (* Per-frame page-digest memo shared by every segment comparison of the
     run. Sound across rollbacks: frame ids are never reused and in-place
     writes bump the generation, so stale entries can only miss. [None]
     when the config disables the memo. *)
  page_digests : Mem.Page_digest_cache.t option;
  mutable next_id : int;
  mutable seg_start_branches : int;
  mutable seg_start_insns : int;
  mutable main_exited : bool;
  mutable pending_boundary : bool;
  mutable first_error : (int * Detection.outcome) option;
  mutable aborted : bool;
  (* Recovery extension: the last checkpoint known good (every segment up
     to and including it verified), plus verified-but-not-yet-contiguous
     snapshots awaiting prefix promotion. *)
  mutable recovery_point : (int * E.pid) option;
  verified_snapshots : (int, E.pid) Hashtbl.t;
  mutable verified_prefix : int;  (* all segment ids <= this verified *)
}

let stats t = t.stats
let main_pid t = t.main
let first_error t = t.first_error
let aborted t = t.aborted

let live_pids t =
  let checkers =
    List.filter_map
      (fun seg ->
        match seg.state with
        | Checking | Recording -> Some seg.checker
        | Done -> None)
      (t.live @ match t.cur with Some s -> [ s ] | None -> [])
  in
  t.main :: checkers

let sched t = Option.get t.sched

let plat t = E.platform t.eng

(* ------------------------------------------------------------------ *)
(* Observability: every emit compiles to a single option check when no
   sink is configured. Timestamps are simulated time, never wall clock. *)

let emit_ev t ~track ~phase ?args name =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.emit s ~ts_ns:(E.time_ns t.eng) ~track ~phase ?args name

let observe t name v =
  match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.observe s name v

let main_track t = Obs.Trace.Core t.cfg.Config.main_core

let big_eff_hz t =
  let big = Platform.big_cluster (plat t) in
  Platform.effective_hz big ~level:big.Platform.default_level

let cycles_to_ns t cycles = float_of_int cycles *. 1e9 /. big_eff_hz t

let charge_scan t pid ~pages =
  let cycles = pages * (plat t).Platform.dirty_scan_per_page_cycles in
  if cycles > 0 then E.delay t.eng pid ~ns:(cycles_to_ns t cycles)

let charge_hash t pid ~bytes =
  let cycles = bytes / max 1 (plat t).Platform.hash_bytes_per_cycle in
  if cycles > 0 then E.delay t.eng pid ~ns:(cycles_to_ns t cycles)

let charge_record t pid ~bytes =
  let ns = float_of_int bytes *. (plat t).Platform.syscall_record_ns_per_byte in
  if ns > 0.0 then E.delay t.eng pid ~ns

let main_cpu t = E.cpu t.eng t.main

let page_table_of t pid = Mem.Address_space.page_table (E.aspace t.eng pid)

let exec_point_now t =
  {
    Exec_point.branches = Machine.Cpu.branches (main_cpu t) - t.seg_start_branches;
    pc = Machine.Cpu.get_pc (main_cpu t);
  }

let arm_slice t =
  match t.cfg.Config.mode with
  | Config.Raft -> ()
  | Config.Parallaft -> (
    let cpu = main_cpu t in
    match (plat t).Platform.slice_unit with
    | Platform.Cycles ->
      Machine.Cpu.arm_cycle_overflow cpu
        ~target:(Machine.Cpu.cycles cpu + t.cfg.Config.slice_period)
    | Platform.Instructions ->
      Machine.Cpu.arm_insn_overflow cpu
        ~target:(Machine.Cpu.instructions cpu + t.cfg.Config.slice_period))

(* Segments torn down by rollback/abort never reach finish_checker, so
   without help their Begin spans would dangle in the trace (Perfetto
   renders them as running forever) and their checker latency would go
   unrecorded. Close the checker's "check" span -- and, for the
   in-flight segment, the main-track "segment" span -- explicitly. *)
let close_torn_down_check t seg =
  if seg.launched && seg.state <> Done then begin
    emit_ev t ~track:(Obs.Trace.Proc seg.checker) ~phase:Obs.Trace.End
      ~args:
        [ ("seg", Obs.Trace.Int seg.id); ("outcome", Obs.Trace.Str "torn-down") ]
      "check";
    observe t "checker.latency_ns"
      (float_of_int (E.time_ns t.eng - seg.launched_at_ns))
  end

let close_torn_down_cur t =
  match t.cur with
  | None -> ()
  | Some seg ->
    close_torn_down_check t seg;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.End
      ~args:
        [ ("seg", Obs.Trace.Int seg.id); ("outcome", Obs.Trace.Str "torn-down") ]
      "segment"

(* Kill every process we own; ends the simulation. *)
let abort_run t =
  t.aborted <- true;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant "abort";
  List.iter (close_torn_down_check t) t.live;
  close_torn_down_cur t;
  List.iter
    (fun seg ->
      (match E.state t.eng seg.checker with
      | E.Exited _ -> ()
      | E.Runnable | E.Stopped -> E.kill t.eng seg.checker);
      match seg.snapshot with
      | Some snap -> (
        match E.state t.eng snap with
        | E.Exited _ -> ()
        | E.Runnable | E.Stopped -> E.kill t.eng snap)
      | None -> ())
    t.live;
  (match t.cur with
  | Some seg -> (
    match E.state t.eng seg.checker with
    | E.Exited _ -> ()
    | E.Runnable | E.Stopped -> E.kill t.eng seg.checker)
  | None -> ());
  match E.state t.eng t.main with
  | E.Exited _ -> ()
  | E.Runnable | E.Stopped -> E.kill t.eng t.main

(* ------------------------------------------------------------------ *)
(* Segment lifecycle                                                    *)

let start_segment t =
  let checker = E.fork_process t.eng t.main in
  Dirty_tracker.clear t.cfg.Config.dirty_backend (page_table_of t checker);
  let seg =
    {
      id = t.next_id;
      checker;
      log = Rr_log.create ();
      snapshot = None;
      end_point = None;
      insn_delta = 0;
      main_dirty = [||];
      replay = None;
      cursor = None;
      pending_signals = [];
      state = Recording;
      launched = false;
      checker_waiting = false;
      launched_at_ns = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.roles checker (Checker_role seg);
  t.cur <- Some seg;
  emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Begin
    ~args:[ ("seg", Obs.Trace.Int seg.id); ("checker", Obs.Trace.Int checker) ]
    "segment";
  (* RAFT runs its (single) checker concurrently with the main process,
     streaming the R/R log; the checker blocks whenever it reaches an
     event that has not been recorded yet. Parallaft instead launches
     each checker once its segment is fully recorded (figure 1(b)). *)
  (match t.cfg.Config.mode with
  | Config.Raft ->
    seg.cursor <- Some (Rr_log.cursor seg.log);
    seg.launched <- true;
    seg.launched_at_ns <- E.time_ns t.eng;
    emit_ev t ~track:(Obs.Trace.Proc checker) ~phase:Obs.Trace.Begin
      ~args:[ ("seg", Obs.Trace.Int seg.id) ]
      "check";
    Scheduler.enqueue (sched t) checker
  | Config.Parallaft -> ());
  let cpu = main_cpu t in
  t.seg_start_branches <- Machine.Cpu.branches cpu;
  t.seg_start_insns <- Machine.Cpu.instructions cpu;
  if t.cfg.Config.compare_states then begin
    let pt = page_table_of t t.main in
    Dirty_tracker.clear t.cfg.Config.dirty_backend pt;
    charge_scan t t.main ~pages:(Dirty_tracker.scan_cost_pages t.cfg.Config.dirty_backend pt)
  end;
  t.stats.Stats.checkpoint_count <- t.stats.Stats.checkpoint_count + 1;
  arm_slice t

let launch_checker t seg =
  let cpu = E.cpu t.eng seg.checker in
  let end_point = Option.get seg.end_point in
  let signal_points = Rr_log.signal_points seg.log in
  (* In RAFT streaming mode the checker may have executed past some
     signal points already; only the remaining ones become targets. *)
  let remaining_signals =
    List.filter
      (fun (at, _) -> at.Exec_point.branches >= Machine.Cpu.branches cpu)
      signal_points
  in
  seg.pending_signals <- remaining_signals;
  let targets = List.map fst remaining_signals @ [ end_point ] in
  seg.replay <- Some (Exec_point.start_replay ~targets ~cpu);
  if seg.cursor = None then seg.cursor <- Some (Rr_log.cursor seg.log);
  let timeout =
    max 1000
      (int_of_float (t.cfg.Config.timeout_scale *. float_of_int seg.insn_delta))
  in
  Machine.Cpu.arm_insn_overflow cpu ~target:timeout;
  (match t.cfg.Config.fault_plan with
  | Some { Config.segment; delay_instructions; reg; bit } when segment = seg.id ->
    Machine.Cpu.arm_fault_injection cpu ~after_instructions:delay_instructions ~reg
      ~bit
  | Some _ | None -> ());
  seg.state <- Checking;
  t.stats.Stats.segment_insn_deltas <-
    seg.insn_delta :: t.stats.Stats.segment_insn_deltas;
  observe t "segment.insns" (float_of_int seg.insn_delta);
  emit_ev t ~track:(Obs.Trace.Proc seg.checker) ~phase:Obs.Trace.Instant
    ~args:
      [
        ("seg", Obs.Trace.Int seg.id);
        ("targets", Obs.Trace.Int (List.length targets));
        ("insns", Obs.Trace.Int seg.insn_delta);
      ]
    "replay.start";
  if not seg.launched then begin
    seg.launched <- true;
    seg.launched_at_ns <- E.time_ns t.eng;
    emit_ev t ~track:(Obs.Trace.Proc seg.checker) ~phase:Obs.Trace.Begin
      ~args:[ ("seg", Obs.Trace.Int seg.id) ]
      "check";
    Scheduler.enqueue (sched t) seg.checker
  end
  else if seg.checker_waiting then begin
    (* The streaming checker is stalled at its next interaction. Resuming
       re-raises the stop: if it is resting on the segment-end pc the
       freshly armed breakpoint fires first and completes the segment;
       otherwise the syscall retries against the now-complete log. *)
    seg.checker_waiting <- false;
    E.resume t.eng seg.checker
  end

let end_segment t =
  match t.cur with
  | None -> ()
  | Some seg ->
    seg.end_point <- Some (exec_point_now t);
    seg.insn_delta <- Machine.Cpu.instructions (main_cpu t) - t.seg_start_insns;
    if t.cfg.Config.compare_states then begin
      let pt = page_table_of t t.main in
      seg.main_dirty <- Dirty_tracker.collect t.cfg.Config.dirty_backend pt;
      t.stats.Stats.dirty_pages_total <-
        t.stats.Stats.dirty_pages_total + Array.length seg.main_dirty;
      observe t "segment.dirty_pages" (float_of_int (Array.length seg.main_dirty));
      charge_scan t t.main
        ~pages:(Dirty_tracker.scan_cost_pages t.cfg.Config.dirty_backend pt);
      let snapshot = E.fork_process t.eng t.main in
      seg.snapshot <- Some snapshot;
      t.stats.Stats.checkpoint_count <- t.stats.Stats.checkpoint_count + 1
    end;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.End
      ~args:
        [
          ("seg", Obs.Trace.Int seg.id);
          ("insns", Obs.Trace.Int seg.insn_delta);
          ("dirty_pages", Obs.Trace.Int (Array.length seg.main_dirty));
        ]
      "segment";
    t.cur <- None;
    t.live <- t.live @ [ seg ];
    t.stats.Stats.segments_total <- t.stats.Stats.segments_total + 1;
    launch_checker t seg

let live_count t = List.length t.live

let on_main_exited t =
  t.main_exited <- true;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:[ ("live_segments", Obs.Trace.Int (List.length t.live)) ]
    "main.exit";
  let st = E.proc_stats t.eng t.main in
  t.stats.Stats.main_wall_ns <-
    float_of_int (st.E.ended_ns - st.E.started_ns);
  t.stats.Stats.main_user_ns <- st.E.user_ns;
  t.stats.Stats.main_sys_ns <- st.E.sys_ns;
  Scheduler.on_main_exit (sched t)

let do_boundary t =
  end_segment t;
  if not t.main_exited then begin
    start_segment t;
    E.resume t.eng t.main
  end

let boundary t =
  if live_count t >= t.cfg.Config.max_live_segments then begin
    t.pending_boundary <- true;
    emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
      ~args:[ ("live_segments", Obs.Trace.Int (live_count t)) ]
      "main.held";
    Scheduler.set_main_held (sched t) true
    (* main stays stopped until a segment completes *)
  end
  else do_boundary t

(* ------------------------------------------------------------------ *)
(* Main-process events                                                  *)

let current_log t =
  match t.cur with
  | Some seg -> seg.log
  | None -> (* Should not happen: main always runs inside a segment. *)
    Rr_log.create ()

(* RAFT streaming mode: a checker stalled on a missing record can retry
   now that the main has appended one. *)
let wake_waiting_checker t =
  match t.cur with
  | Some seg when seg.checker_waiting -> (
    seg.checker_waiting <- false;
    match E.state t.eng seg.checker with
    | E.Stopped -> E.resume t.eng seg.checker
    | E.Runnable | E.Exited _ -> ())
  | Some _ | None -> ()

let read_mem_opt t pid ~addr ~len =
  try Some (Mem.Address_space.read_bytes (E.aspace t.eng pid) ~addr ~len)
  with Mem.Address_space.Segfault _ -> None

let record_and_pass t call =
  let in_data =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Write { addr; len; _ } -> read_mem_opt t t.main ~addr ~len
    | Sim_os.Syscall.Open { path_addr; path_len; _ } ->
      read_mem_opt t t.main ~addr:path_addr ~len:path_len
    | _ -> None
  in
  E.do_syscall t.eng t.main;
  let result = Machine.Cpu.get_reg (main_cpu t) 0 in
  let effects =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Read { addr; _ } when result > 0 -> (
      match read_mem_opt t t.main ~addr ~len:result with
      | Some data -> [ { Rr_log.addr; data } ]
      | None -> [])
    | Sim_os.Syscall.Getrandom { addr; _ } when result > 0 -> (
      match read_mem_opt t t.main ~addr ~len:result with
      | Some data -> [ { Rr_log.addr; data } ]
      | None -> [])
    | _ -> []
  in
  let bytes =
    (match in_data with Some b -> Bytes.length b | None -> 0)
    + List.fold_left (fun acc { Rr_log.data; _ } -> acc + Bytes.length data) 0 effects
  in
  charge_record t t.main ~bytes;
  Rr_log.record (current_log t) (Rr_log.Sys { call; in_data; result; effects });
  t.stats.Stats.syscalls_recorded <- t.stats.Stats.syscalls_recorded + 1;
  emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant
    ~args:
      [
        ("call", Obs.Trace.Str (Sim_os.Syscall.name call));
        ("bytes", Obs.Trace.Int bytes);
      ]
    "sys.record";
  observe t "record.bytes" (float_of_int bytes);
  wake_waiting_checker t;
  E.resume t.eng t.main

(* File-backed private mmap: slice around the call so the mapping is
   established outside any segment and inherited by the next checker's
   fork (§4.3.2). *)
let mmap_split t =
  end_segment t;
  E.do_syscall t.eng t.main;
  start_segment t;
  E.resume t.eng t.main

let emulate_nondet t pid insn =
  let value =
    match (insn : Isa.Insn.t) with
    | Isa.Insn.Rdtsc _ -> E.now_ns t.eng
    | Isa.Insn.Rdcoreid _ -> E.core_of t.eng pid
    | Isa.Insn.Rdrand _ -> Util.Rng.bits64 t.rng
    | _ -> 0
  in
  let reg =
    match Isa.Insn.writes_reg insn with
    | Some r -> r
    | None -> 0
  in
  let cpu = E.cpu t.eng pid in
  Machine.Cpu.set_reg cpu reg value;
  Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
  value

let handle_main_event t ev =
  match (ev : E.event) with
  | E.Syscall_entry call -> (
    match call with
    | Sim_os.Syscall.Exit _ ->
      end_segment t;
      E.do_syscall t.eng t.main;
      on_main_exited t
    | Sim_os.Syscall.Mmap { flags; fd; _ }
      when flags land Sim_os.Syscall.map_anon = 0 && fd >= 0 ->
      mmap_split t
    | _ -> record_and_pass t call)
  | E.Nondet insn ->
    let value = emulate_nondet t t.main insn in
    Rr_log.record (current_log t) (Rr_log.Nondet { insn; value });
    t.stats.Stats.nondet_recorded <- t.stats.Stats.nondet_recorded + 1;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant "nondet.record";
    wake_waiting_checker t;
    E.resume t.eng t.main
  | E.Cycle_overflow | E.Insn_overflow ->
    t.stats.Stats.nr_slices <- t.stats.Stats.nr_slices + 1;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant
      ~args:[ ("nr", Obs.Trace.Int t.stats.Stats.nr_slices) ]
      "slice";
    boundary t
  | E.Signal signum -> (
    Rr_log.record (current_log t)
      (Rr_log.Ext_signal { at = exec_point_now t; signum });
    t.stats.Stats.signals_recorded <- t.stats.Stats.signals_recorded + 1;
    emit_ev t ~track:(main_track t) ~phase:Obs.Trace.Instant
      ~args:[ ("signum", Obs.Trace.Int signum) ]
      "signal.record";
    E.deliver_signal_now t.eng t.main signum;
    match E.state t.eng t.main with
    | E.Exited _ ->
      (* Signal-terminated: nothing left to protect. *)
      abort_run t
    | E.Runnable | E.Stopped -> E.resume t.eng t.main)
  | E.Halted ->
    end_segment t;
    E.force_exit t.eng t.main ~status:0;
    on_main_exited t
  | E.Fault _ ->
    (* An application bug in the main process: outside the threat model;
       terminate the protected run. *)
    abort_run t
  | E.Breakpoint | E.Branch_overflow ->
    (* Never armed on the main process. *)
    E.resume t.eng t.main

(* ------------------------------------------------------------------ *)
(* Checker events                                                       *)

let record_error t seg outcome =
  Stats.record_detection t.stats ~segment:seg.id outcome;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:
      [
        ("seg", Obs.Trace.Int seg.id);
        ("outcome", Obs.Trace.Str (Detection.outcome_to_string outcome));
      ]
    "detection";
  (match t.cfg.Config.obs with
  | None -> ()
  | Some s -> Obs.Sink.incr s "detections");
  if t.first_error = None then t.first_error <- Some (seg.id, outcome)

let kill_if_alive t pid =
  match E.state t.eng pid with
  | E.Exited _ -> ()
  | E.Runnable | E.Stopped -> E.kill t.eng pid

(* Recovery-point bookkeeping: a snapshot becomes the recovery point once
   every segment up to it has verified; older points are freed. *)
let note_verified t seg =
  match seg.snapshot with
  | None -> ()
  | Some snap ->
    Hashtbl.replace t.verified_snapshots seg.id snap;
    let continue_promoting = ref true in
    while !continue_promoting do
      match Hashtbl.find_opt t.verified_snapshots (t.verified_prefix + 1) with
      | Some snap' ->
        t.verified_prefix <- t.verified_prefix + 1;
        Hashtbl.remove t.verified_snapshots (t.verified_prefix);
        (match t.recovery_point with
        | Some (_, old) -> kill_if_alive t old
        | None -> ());
        t.recovery_point <- Some (t.verified_prefix, snap')
      | None -> continue_promoting := false
    done

(* Roll the whole run back to the recovery point: the paper's Table 2
   "error recovery" future-work row. Externally visible syscalls since
   that checkpoint are re-executed (the §3.4 buffered-IO assumption). *)
let recover t =
  t.stats.Stats.recoveries <- t.stats.Stats.recoveries + 1;
  emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
    ~args:
      [
        ("nr", Obs.Trace.Int t.stats.Stats.recoveries);
        ("verified_prefix", Obs.Trace.Int t.verified_prefix);
      ]
    "recovery";
  List.iter (close_torn_down_check t) t.live;
  close_torn_down_cur t;
  (* Tear down everything derived from the (possibly corrupt) state. *)
  List.iter
    (fun seg ->
      kill_if_alive t seg.checker;
      match seg.snapshot with Some s -> kill_if_alive t s | None -> ())
    t.live;
  (match t.cur with Some seg -> kill_if_alive t seg.checker | None -> ());
  Hashtbl.iter (fun _ snap -> kill_if_alive t snap) t.verified_snapshots;
  Hashtbl.reset t.verified_snapshots;
  kill_if_alive t t.main;
  t.live <- [];
  t.cur <- None;
  t.pending_boundary <- false;
  t.main_exited <- false;
  match t.recovery_point with
  | None ->
    (* No verified state to return to: give up. *)
    abort_run t
  | Some (_, snap) ->
    t.recovery_point <- None;
    (* Re-anchor the verified prefix at the ids the post-rollback
       segments will get, so promotion resumes seamlessly. *)
    t.verified_prefix <- t.next_id - 1;
    Hashtbl.replace t.roles snap Main_role;
    t.main <- snap;
    E.set_core t.eng snap ~core:t.cfg.Config.main_core;
    (* A fresh scheduler: the old one's bookkeeping refers to dead pids. *)
    t.sched <- Some (Scheduler.create t.eng t.cfg t.stats);
    start_segment t;
    E.resume t.eng snap

let finish_checker t seg outcome_opt =
  seg.state <- Done;
  let cpu = E.cpu t.eng seg.checker in
  Machine.Cpu.disarm_insn_overflow cpu;
  Machine.Cpu.disarm_branch_overflow cpu;
  Machine.Cpu.clear_all_breakpoints cpu;
  (* Fault-injection classification for this run. *)
  (match t.cfg.Config.fault_plan with
  | Some { Config.segment; _ } when segment = seg.id ->
    t.stats.Stats.fi_fired <- Machine.Cpu.fault_injected cpu;
    t.stats.Stats.fi_outcome <-
      (match outcome_opt with
      | Some o -> Some o
      | None -> if t.stats.Stats.fi_fired then Some Detection.Benign else None)
  | Some _ | None -> ());
  (match outcome_opt with
  | Some o -> record_error t seg o
  | None -> ());
  emit_ev t ~track:(Obs.Trace.Proc seg.checker) ~phase:Obs.Trace.End
    ~args:
      [
        ("seg", Obs.Trace.Int seg.id);
        ( "outcome",
          Obs.Trace.Str
            (match outcome_opt with
            | Some o -> Detection.outcome_to_string o
            | None -> "ok") );
      ]
    "check";
  observe t "checker.latency_ns"
    (float_of_int (E.time_ns t.eng - seg.launched_at_ns));
  kill_if_alive t seg.checker;
  let failed = outcome_opt <> None in
  (if t.cfg.Config.recovery && not failed then note_verified t seg
   else
     match seg.snapshot with
     | Some snap -> kill_if_alive t snap
     | None -> ());
  t.live <- List.filter (fun s -> s.id <> seg.id) t.live;
  Scheduler.finished (sched t) seg.checker;
  if failed then begin
    if
      t.cfg.Config.recovery
      && t.stats.Stats.recoveries < t.cfg.Config.max_recoveries
    then recover t
    else abort_run t
  end
  else if t.pending_boundary && live_count t < t.cfg.Config.max_live_segments
  then begin
    t.pending_boundary <- false;
    Scheduler.set_main_held (sched t) false;
    do_boundary t
  end

let reached_end t seg =
  let cpu = E.cpu t.eng seg.checker in
  Machine.Cpu.disarm_insn_overflow cpu;
  let leftover =
    match seg.cursor with
    | Some c -> Rr_log.remaining_interactions c
    | None -> 0
  in
  if leftover > 0 then
    finish_checker t seg
      (Some
         (Detection.Detected
            (Detection.Syscall_mismatch
               { expected = "further recorded interactions"; got = "segment end" })))
  else if t.cfg.Config.compare_states then begin
    match seg.snapshot with
    | None -> finish_checker t seg None
    | Some snap ->
      let checker_dirty =
        Dirty_tracker.collect t.cfg.Config.dirty_backend (page_table_of t seg.checker)
      in
      let union = Comparator.union_sorted seg.main_dirty checker_dirty in
      let verdict, cs =
        Comparator.compare_states ~hasher:t.cfg.Config.hasher
          ?cache:t.page_digests ~reference:(E.cpu t.eng snap) ~candidate:cpu
          ~dirty_vpns:union ()
      in
      let bytes = cs.Comparator.bytes_hashed in
      charge_hash t seg.checker ~bytes;
      t.stats.Stats.bytes_hashed <- t.stats.Stats.bytes_hashed + bytes;
      t.stats.Stats.pages_skipped_identical <-
        t.stats.Stats.pages_skipped_identical + cs.Comparator.pages_skipped_identical;
      t.stats.Stats.page_hash_hits <-
        t.stats.Stats.page_hash_hits + cs.Comparator.page_hash_hits;
      t.stats.Stats.page_hash_misses <-
        t.stats.Stats.page_hash_misses + cs.Comparator.page_hash_misses;
      t.stats.Stats.segments_compared <- t.stats.Stats.segments_compared + 1;
      emit_ev t ~track:(Obs.Trace.Proc seg.checker) ~phase:Obs.Trace.Instant
        ~args:
          [
            ("seg", Obs.Trace.Int seg.id);
            ("bytes", Obs.Trace.Int bytes);
            ( "skipped_identical",
              Obs.Trace.Int cs.Comparator.pages_skipped_identical );
            ("hash_hits", Obs.Trace.Int cs.Comparator.page_hash_hits);
            ("hash_misses", Obs.Trace.Int cs.Comparator.page_hash_misses);
            ( "verdict",
              Obs.Trace.Str
                (match verdict with
                | Comparator.Match -> "match"
                | Comparator.Mismatch _ -> "mismatch") );
          ]
        "compare";
      observe t "compare.bytes" (float_of_int bytes);
      observe t "compare.pages_skipped"
        (float_of_int cs.Comparator.pages_skipped_identical);
      (match t.cfg.Config.obs with
      | None -> ()
      | Some s ->
        Obs.Sink.add s "compare.page_hash_hits" cs.Comparator.page_hash_hits;
        Obs.Sink.add s "compare.page_hash_misses" cs.Comparator.page_hash_misses);
      finish_checker t seg
        (match verdict with
        | Comparator.Match -> None
        | Comparator.Mismatch m -> Some (Detection.Detected m))
  end
  else finish_checker t seg None

let rec advance t seg adv =
  match (adv : Exec_point.advance) with
  | Exec_point.Keep_running -> E.resume t.eng seg.checker
  | Exec_point.Reached pt -> (
    match seg.pending_signals with
    | (spt, signum) :: rest when Exec_point.compare spt pt = 0 ->
      seg.pending_signals <- rest;
      E.deliver_signal_now t.eng seg.checker signum;
      (match E.state t.eng seg.checker with
      | E.Exited _ ->
        (* The signal's default action killed the checker — the main
           survived it, so this is a divergence. *)
        finish_checker t seg
          (Some (Detection.Exception_detected "killed by replayed signal"))
      | E.Runnable | E.Stopped ->
        let replay = Option.get seg.replay in
        Exec_point.next_target replay;
        advance t seg (Exec_point.poll replay))
    | _ -> reached_end t seg)

let fail_checker t seg mismatch =
  finish_checker t seg (Some (Detection.Detected mismatch))

let apply_effects t pid effects =
  List.iter
    (fun { Rr_log.addr; data } ->
      ignore (Mem.Address_space.write_bytes (E.aspace t.eng pid) ~addr data))
    effects

let replay_process_local t seg (rec_ : Rr_log.sys_record) call =
  let cpu = E.cpu t.eng seg.checker in
  let restore_args =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Mmap { addr; flags; _ }
      when flags land Sim_os.Syscall.map_anon <> 0 ->
      (* Defeat ASLR divergence: pin the checker's mapping to the address
         the kernel gave the main process (§4.3.2). The original argument
         registers are restored afterwards so the rewrite is invisible to
         the program-state comparison. *)
      Machine.Cpu.set_reg cpu 1 rec_.result;
      Machine.Cpu.set_reg cpu 4 (flags lor Sim_os.Syscall.map_fixed);
      Some (addr, flags)
    | _ -> None
  in
  E.do_syscall t.eng seg.checker;
  (match restore_args with
  | Some (addr, flags) ->
    Machine.Cpu.set_reg cpu 1 addr;
    Machine.Cpu.set_reg cpu 4 flags
  | None -> ());
  let verify_result =
    match (call : Sim_os.Syscall.call) with
    | Sim_os.Syscall.Sigreturn -> false
    | _ -> true
  in
  if verify_result && Machine.Cpu.get_reg cpu 0 <> rec_.result then
    fail_checker t seg
      (Detection.Syscall_mismatch
         {
           expected = Printf.sprintf "%s = %d" (Sim_os.Syscall.name call) rec_.result;
           got =
             Printf.sprintf "%s = %d" (Sim_os.Syscall.name call)
               (Machine.Cpu.get_reg cpu 0);
         })
  else E.resume t.eng seg.checker

let checker_syscall t seg call =
  emit_ev t ~track:(Obs.Trace.Proc seg.checker) ~phase:Obs.Trace.Instant
    ~args:[ ("call", Obs.Trace.Str (Sim_os.Syscall.name call)) ]
    "sys.replay";
  match seg.cursor with
  | None ->
    fail_checker t seg
      (Detection.Extra_interaction { got = Sim_os.Syscall.name call })
  | Some cursor -> (
    match Rr_log.next_interaction cursor with
    | None when seg.state = Recording ->
      (* Streaming replay caught up with the recorder: wait. *)
      seg.checker_waiting <- true
    | None ->
      fail_checker t seg
        (Detection.Extra_interaction { got = Sim_os.Syscall.name call })
    | Some (Rr_log.Nondet _) ->
      fail_checker t seg
        (Detection.Syscall_mismatch
           {
             expected = "nondeterministic instruction";
             got = Sim_os.Syscall.name call;
           })
    | Some (Rr_log.Ext_signal _) ->
      (* next_interaction never yields signals *)
      assert false
    | Some (Rr_log.Sys rec_) ->
      if rec_.call <> call then
        fail_checker t seg
          (Detection.Syscall_mismatch
             {
               expected = Sim_os.Syscall.name rec_.call;
               got = Sim_os.Syscall.name call;
             })
      else begin
        (* Check argument data (e.g. write payloads) against the record. *)
        let data_matches =
          match rec_.in_data with
          | None -> true
          | Some expected -> (
            let got =
              match (call : Sim_os.Syscall.call) with
              | Sim_os.Syscall.Write { addr; len; _ } ->
                read_mem_opt t seg.checker ~addr ~len
              | Sim_os.Syscall.Open { path_addr; path_len; _ } ->
                read_mem_opt t seg.checker ~addr:path_addr ~len:path_len
              | _ -> None
            in
            match got with
            | Some b -> Bytes.equal b expected
            | None -> false)
        in
        if not data_matches then
          fail_checker t seg
            (Detection.Syscall_data_mismatch { syscall = Sim_os.Syscall.name call })
        else
          match Sim_os.Syscall.categorize call with
          | Sim_os.Syscall.Process_local -> replay_process_local t seg rec_ call
          | Sim_os.Syscall.Globally_effectful | Sim_os.Syscall.Non_effectful ->
            (* Never re-executed: answer from the record so external
               effects happen exactly once. *)
            E.complete_syscall t.eng seg.checker ~result:rec_.result;
            apply_effects t seg.checker rec_.effects;
            let bytes =
              List.fold_left
                (fun acc { Rr_log.data; _ } -> acc + Bytes.length data)
                0 rec_.effects
            in
            charge_record t seg.checker ~bytes;
            E.resume t.eng seg.checker
      end)

let checker_nondet t seg insn =
  match seg.cursor with
  | None -> fail_checker t seg (Detection.Extra_interaction { got = "nondet" })
  | Some cursor -> (
    match Rr_log.next_interaction cursor with
    | None when seg.state = Recording -> seg.checker_waiting <- true
    | Some (Rr_log.Nondet { insn = recorded_insn; value }) when recorded_insn = insn
      ->
      let cpu = E.cpu t.eng seg.checker in
      (match Isa.Insn.writes_reg insn with
      | Some reg -> Machine.Cpu.set_reg cpu reg value
      | None -> ());
      Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
      E.resume t.eng seg.checker
    | Some (Rr_log.Sys r) ->
      fail_checker t seg
        (Detection.Syscall_mismatch
           { expected = Sim_os.Syscall.name r.call; got = "nondet instruction" })
    | Some (Rr_log.Nondet _) | Some (Rr_log.Ext_signal _) | None ->
      fail_checker t seg (Detection.Extra_interaction { got = "nondet instruction" }))

let fault_to_string (f : Machine.Cpu.fault) =
  match f with
  | Machine.Cpu.Segv { addr; write } ->
    Printf.sprintf "SIGSEGV at %#x (%s)" addr (if write then "write" else "read")
  | Machine.Cpu.Div_by_zero -> "SIGFPE (division by zero)"
  | Machine.Cpu.Bad_pc pc -> Printf.sprintf "control flow left the code (pc=%d)" pc

let handle_checker_event t seg ev =
  match seg.state with
  | Done -> () (* stale event after the segment completed *)
  | Recording | Checking -> (
    match (ev : E.event) with
    | E.Syscall_entry call -> checker_syscall t seg call
    | E.Nondet insn -> checker_nondet t seg insn
    | E.Branch_overflow ->
      advance t seg (Exec_point.on_branch_overflow (Option.get seg.replay))
    | E.Breakpoint ->
      advance t seg (Exec_point.on_breakpoint (Option.get seg.replay))
    | E.Insn_overflow -> finish_checker t seg (Some Detection.Timeout_detected)
    | E.Fault f ->
      finish_checker t seg (Some (Detection.Exception_detected (fault_to_string f)))
    | E.Halted ->
      finish_checker t seg
        (Some (Detection.Exception_detected "checker ran past the segment end"))
    | E.Cycle_overflow -> E.resume t.eng seg.checker
    | E.Signal _ ->
      (* External signals target the main process; recorded there and
         replayed by execution point, never delivered here directly. *)
      E.resume t.eng seg.checker)

let handle_event t pid ev =
  match Hashtbl.find_opt t.roles pid with
  | Some Main_role -> handle_main_event t ev
  | Some (Checker_role seg) -> handle_checker_event t seg ev
  | None -> ()

let create eng cfg ~program =
  let t =
    {
      eng;
      cfg;
      stats = Stats.create ();
      sched = None;
      rng = Util.Rng.create ~seed:0x5EEDL;
      main = -1;
      roles = Hashtbl.create 16;
      cur = None;
      live = [];
      page_digests =
        (if cfg.Config.compare_states && cfg.Config.page_hash_cache_pages > 0
         then
           Some
             (Mem.Page_digest_cache.create
                ~capacity:cfg.Config.page_hash_cache_pages)
         else None);
      next_id = 0;
      seg_start_branches = 0;
      seg_start_insns = 0;
      main_exited = false;
      pending_boundary = false;
      first_error = None;
      aborted = false;
      recovery_point = None;
      verified_snapshots = Hashtbl.create 8;
      verified_prefix = -1;
    }
  in
  (match cfg.Config.obs with
  | Some sink -> E.set_obs eng sink
  | None -> ());
  t.sched <- Some (Scheduler.create eng cfg t.stats);
  let tracer eng' pid ev =
    ignore eng';
    handle_event t pid ev
  in
  let main = E.spawn eng ~tracer ~program ~core:cfg.Config.main_core () in
  t.main <- main;
  Hashtbl.replace t.roles main Main_role;
  E.suspend eng main;
  if cfg.Config.recovery then begin
    (* The initial state is trivially verified: retain it so a failure in
       the very first segment can still recover. *)
    let snap = E.fork_process eng main in
    t.recovery_point <- Some (-1, snap);
    t.verified_prefix <- -1
  end;
  start_segment t;
  E.resume eng main;
  E.add_tick eng ~every_ns:cfg.Config.pacer_tick_ns (fun _ ->
      Scheduler.pacer_tick (sched t));
  t
