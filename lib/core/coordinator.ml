(* Run-level wiring of the segment pipeline. The stages live in their
   own modules — Recorder (main-process events), Replayer (checker
   events), Recovery (rollback/abort) — over the shared Run_ctx state;
   this module creates the run, routes tracer events by role, wires the
   two callback seams that break the stage cycles, and re-exports the
   public surface. *)

module E = Sim_os.Engine

type t = Run_ctx.t

let stats (t : t) = t.Run_ctx.stats
let main_pid (t : t) = t.Run_ctx.main
let attach_seglog (t : t) out = t.Run_ctx.seglog <- Some out
let first_error (t : t) = t.Run_ctx.first_error
let aborted (t : t) = t.Run_ctx.aborted

let live_pids (t : t) =
  let checkers =
    List.filter_map
      (fun seg ->
        if Segment.is_done seg then None else Some (Segment.checker seg))
      (t.Run_ctx.live @ match t.Run_ctx.cur with Some s -> [ s ] | None -> [])
  in
  t.Run_ctx.main :: checkers

let segment_histories (t : t) =
  List.rev_map
    (fun seg -> (Segment.id seg, Segment.history seg))
    t.Run_ctx.all_segments

let handle_event (t : t) pid ev =
  (match Hashtbl.find_opt t.Run_ctx.roles pid with
  | Some Run_ctx.Main_role -> Recorder.handle_main_event t ev
  | Some (Run_ctx.Checker_role seg) -> Replayer.handle_checker_event t seg ev
  | None -> ());
  (* An armed runtime fault strikes as soon as its conditions hold —
     event-driven as well as on the tick, since a short check can start
     and retire entirely between two ticks. The backend poll (due
     launches, chaos strikes, parked verdicts) runs before the watchdog
     so a chaos kill is observed — and repaired via the spare — in the
     same event; the watchdog then runs before the invariant sweep: a
     checker killed out-of-band must be re-dispatched or failed before
     the sweep would flag the dead pid as a structure violation. *)
  t.Run_ctx.runtime_fault_poll ();
  t.Run_ctx.backend_poll ();
  Watchdog.poll t;
  Run_ctx.check_invariants t

(* Fleet completion detection: the tenant's simulation reached a fixed
   point — aborted, or the main exited with no segment still recording
   and no checker still live. (Recovery snapshots may outlive this
   moment; Runtime/Fleet release them right after.) *)
let drained (t : t) =
  t.Run_ctx.aborted
  || (t.Run_ctx.main_exited && t.Run_ctx.cur = None && t.Run_ctx.live = [])

let release_recovery_state = Run_ctx.release_recovery_state

let create ?rng ?prng ?fleet eng cfg ~program =
  let t = Run_ctx.create ?rng ?fleet eng cfg in
  (* Wires launch_checker plus every backend seam (lease supervision,
     verdict routing, flush, poll) for the configured backend. *)
  Checker_backend.install t;
  t.Run_ctx.abort_run <- (fun () -> Recovery.abort_run t);
  t.Run_ctx.recover_or_abort <-
    (fun () ->
      if
        cfg.Config.recovery
        && t.Run_ctx.stats.Stats.recoveries < cfg.Config.max_recoveries
      then Recovery.recover t
      else Recovery.abort_run t);
  (match cfg.Config.obs with
  | Some sink -> E.set_obs eng sink
  | None -> ());
  let tracer eng' pid ev =
    ignore eng';
    handle_event t pid ev
  in
  let main = E.spawn eng ~tracer ?prng ~program ~core:cfg.Config.main_core () in
  t.Run_ctx.main <- main;
  Hashtbl.replace t.Run_ctx.roles main Run_ctx.Main_role;
  E.suspend eng main;
  if cfg.Config.recovery then begin
    (* The initial state is trivially verified: retain it so a failure in
       the very first segment can still recover. *)
    let snap = E.fork_process eng main in
    t.Run_ctx.recovery_point <- Some (-1, snap);
    t.Run_ctx.verified_prefix <- -1
  end;
  Recorder.start_segment t;
  E.resume eng main;
  E.add_tick eng ~every_ns:cfg.Config.pacer_tick_ns (fun _ ->
      Scheduler.pacer_tick t.Run_ctx.sched);
  (* The backend and the watchdog also need time-based polls: a queued
     deferred batch after main exit, a pending remote launch, or a dead/
     stalled checker generates no tracer events, so event-driven polling
     alone would leave the run hanging until the engine's global bound.
     The backend tick precedes the watchdog tick for the same reason as
     in handle_event. *)
  E.add_tick eng ~every_ns:cfg.Config.pacer_tick_ns (fun _ ->
      t.Run_ctx.backend_poll ());
  E.add_tick eng ~every_ns:cfg.Config.pacer_tick_ns (fun _ -> Watchdog.poll t);
  (* Runtime faults (kill/stall a checker mid-check) are armed at the
     engine level: the fault fires once a covered segment is checking
     and its checker has retired the plan's delay. Polled from the
     periodic tick AND after every routed event (handle_event) — a
     short check can start and retire entirely between two ticks. One
     strike per checker incarnation — a [repeat] plan also strikes
     re-dispatched checkers and later segments. *)
  (match cfg.Config.fault_plan with
  | Some ({ Fault.target = Fault.Runtime_fault kind; _ } as plan) ->
    let struck : (E.pid, unit) Hashtbl.t = Hashtbl.create 4 in
    let poll () =
      if not t.Run_ctx.aborted then
        List.iter
          (fun seg ->
            if
              (not (Segment.torn_down seg))
              && Segment.phase seg = Segment.Checking_p
              && Run_ctx.plan_covers plan ~id:(Segment.id seg)
              && (plan.Fault.repeat || Segment.redispatches seg = 0)
            then begin
              let checker = Segment.checker seg in
              if
                (not (Hashtbl.mem struck checker))
                && (match E.state eng checker with
                   | E.Runnable -> true
                   | E.Stopped | E.Exited _ -> false)
                && Machine.Cpu.instructions (E.cpu eng checker)
                   >= plan.Fault.delay_instructions
              then begin
                Hashtbl.add struck checker ();
                t.Run_ctx.stats.Stats.fi_fired <- true;
                Run_ctx.emit_ev t ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant
                  ~args:
                    [
                      ("seg", Obs.Trace.Int (Segment.id seg));
                      ("checker", Obs.Trace.Int checker);
                      ( "kind",
                        Obs.Trace.Str
                          (match kind with
                          | Fault.Kill -> "kill"
                          | Fault.Stall -> "stall") );
                    ]
                  "fault.runtime";
                match kind with
                | Fault.Kill -> E.kill eng checker
                | Fault.Stall -> E.suspend eng checker
              end
            end)
          t.Run_ctx.live
    in
    t.Run_ctx.runtime_fault_poll <- poll;
    E.add_tick eng ~every_ns:cfg.Config.pacer_tick_ns (fun _ -> poll ())
  | Some _ | None -> ());
  t
