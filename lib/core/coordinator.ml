(* Run-level wiring of the segment pipeline. The stages live in their
   own modules — Recorder (main-process events), Replayer (checker
   events), Recovery (rollback/abort) — over the shared Run_ctx state;
   this module creates the run, routes tracer events by role, wires the
   two callback seams that break the stage cycles, and re-exports the
   public surface. *)

module E = Sim_os.Engine

type t = Run_ctx.t

let stats (t : t) = t.Run_ctx.stats
let main_pid (t : t) = t.Run_ctx.main
let first_error (t : t) = t.Run_ctx.first_error
let aborted (t : t) = t.Run_ctx.aborted

let live_pids (t : t) =
  let checkers =
    List.filter_map
      (fun seg ->
        if Segment.is_done seg then None else Some (Segment.checker seg))
      (t.Run_ctx.live @ match t.Run_ctx.cur with Some s -> [ s ] | None -> [])
  in
  t.Run_ctx.main :: checkers

let segment_histories (t : t) =
  List.rev_map
    (fun seg -> (Segment.id seg, Segment.history seg))
    t.Run_ctx.all_segments

let handle_event (t : t) pid ev =
  (match Hashtbl.find_opt t.Run_ctx.roles pid with
  | Some Run_ctx.Main_role -> Recorder.handle_main_event t ev
  | Some (Run_ctx.Checker_role seg) -> Replayer.handle_checker_event t seg ev
  | None -> ());
  Run_ctx.check_invariants t

let create eng cfg ~program =
  let t = Run_ctx.create eng cfg in
  t.Run_ctx.launch_checker <- Replayer.launch_checker t;
  t.Run_ctx.abort_run <- (fun () -> Recovery.abort_run t);
  (match cfg.Config.obs with
  | Some sink -> E.set_obs eng sink
  | None -> ());
  let tracer eng' pid ev =
    ignore eng';
    handle_event t pid ev
  in
  let main = E.spawn eng ~tracer ~program ~core:cfg.Config.main_core () in
  t.Run_ctx.main <- main;
  Hashtbl.replace t.Run_ctx.roles main Run_ctx.Main_role;
  E.suspend eng main;
  if cfg.Config.recovery then begin
    (* The initial state is trivially verified: retain it so a failure in
       the very first segment can still recover. *)
    let snap = E.fork_process eng main in
    t.Run_ctx.recovery_point <- Some (-1, snap);
    t.Run_ctx.verified_prefix <- -1
  end;
  Recorder.start_segment t;
  E.resume eng main;
  E.add_tick eng ~every_ns:cfg.Config.pacer_tick_ns (fun _ ->
      Scheduler.pacer_tick t.Run_ctx.sched);
  t
