(** Work-stealing double-ended queue (fleet checker scheduling).

    Owner discipline is LIFO at the back ({!push_back}/{!pop_back}):
    the most recently enqueued checker has the warmest cache affinity
    with its home core. Thieves take FIFO from the front
    ({!steal_front}): the oldest queued checker has waited longest, so
    stealing it bounds detection latency.

    Mutex-guarded, not lock-free: under the simulated clock all
    scheduling is serialized, so the lock only matters for safety when
    tests drive a deque from several domains. *)

type 'a t

val create : unit -> 'a t

val push_back : 'a t -> 'a -> unit
(** Owner push: [x] becomes the newest (back) element. *)

val pop_back : 'a t -> 'a option
(** Owner pop: removes and returns the newest element. *)

val steal_front : 'a t -> 'a option
(** Thief take: removes and returns the oldest element. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val to_list : 'a t -> 'a list
(** Oldest (front) first. *)

val remove_where : 'a t -> ('a -> bool) -> 'a list
(** Remove every element matching the predicate, preserving the order
    of the survivors; returns the removed elements oldest-first. *)
