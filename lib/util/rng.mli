(** Deterministic pseudo-random number generation.

    Every source of modelled nondeterminism in the simulator (performance
    counter skid, instruction-count overcounting, ASLR, fault injection,
    /dev/urandom) draws from an explicitly seeded [Rng.t] so that whole
    simulations are reproducible from a single seed. The generator is
    SplitMix64, which has a 64-bit state, passes BigCrush, and is trivially
    splittable. *)

type t

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t]. Used to give each subsystem its own stream so that
    adding draws in one subsystem does not perturb another. *)

val stream : root:int64 -> index:int -> t
(** [stream ~root ~index] derives the [index]-th child stream of a root
    seed {e without} any shared mutable parent: unlike {!split}, the
    result depends only on [(root, index)], never on how many draws
    other consumers have taken. This is what makes per-tenant fleet
    streams reproducible regardless of admission order.

    @raise Invalid_argument if [index < 0]. *)

val next_int64 : t -> int64
(** [next_int64 t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)]. [bound] must
    be positive.

    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] returns a uniform integer in [\[lo, hi\]] inclusive.

    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val bits64 : t -> int
(** [bits64 t] returns the next output truncated to OCaml's native [int]
    (63 significant bits). *)
