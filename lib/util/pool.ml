let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* 0 = "not set"; resolution falls through to the environment. *)
let override = Atomic.make 0

let set_jobs n = Atomic.set override (max 1 n)

(* Malformed PARALLAFT_JOBS values used to be dropped silently, which —
   combined with a 1-core detection fallback — produced a silent 1-wide
   pool that made "parallel" smoke tests vacuous. The value is still
   ignored (the fallback chain continues), but loudly. *)
let env_warned = Atomic.make false

let quiet () =
  match Sys.getenv_opt "PARALLAFT_QUIET" with
  | Some "" | Some "0" | None -> false
  | Some _ -> true

let jobs_from_env () =
  match Sys.getenv_opt "PARALLAFT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None ->
      if not (Atomic.exchange env_warned true) && not (quiet ()) then
        Printf.eprintf
          "parallaft: ignoring malformed PARALLAFT_JOBS=%S (want an integer >= 1)\n%!"
          s;
      None)

(* Resolution order: -j/set_jobs > PARALLAFT_JOBS > detected cores - 1.
   An explicit width always wins, even when core detection reports a
   single core — the explicit sources are requests, the detection is
   only a fallback. *)
let jobs_with_source () =
  match Atomic.get override with
  | 0 -> (
    match jobs_from_env () with
    | Some n -> (n, "PARALLAFT_JOBS")
    | None -> (default_jobs (), "detected"))
  | n -> (n, "-j")

let jobs () = fst (jobs_with_source ())
let jobs_source () = snd (jobs_with_source ())

(* Log the resolved pool width exactly once per process, on the first
   [map] that could fan out. A 1-wide pool on a multi-task map is the
   case worth surfacing: it silently serializes "parallel" smoke runs. *)
let width_logged = Atomic.make false

let log_width ~jobs ~source ~tasks =
  if not (Atomic.exchange width_logged true) && not (quiet ()) then
    Printf.eprintf "parallaft: experiment pool width %d (%s), %d tasks\n%!" jobs
      source tasks

type 'b outcome =
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ?jobs:j f xs =
  let j, source =
    match j with
    | Some j -> (max 1 j, "caller")
    | None -> jobs_with_source ()
  in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when j = 1 ->
    log_width ~jobs:j ~source ~tasks:(List.length xs);
    List.map f xs
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    log_width ~jobs:j ~source ~tasks:n;
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* Work-stealing by index: each domain claims the next unclaimed
       task. Result slots are disjoint, so plain writes suffice; the
       joins publish them to the caller. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <-
             (try Some (Value (f items.(i)))
              with e -> Some (Raised (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min j n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Value v) -> v
         | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
