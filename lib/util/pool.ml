let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* 0 = "not set"; resolution falls through to the environment. *)
let override = Atomic.make 0

let set_jobs n = Atomic.set override (max 1 n)

let jobs_from_env () =
  match Sys.getenv_opt "PARALLAFT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let jobs () =
  match Atomic.get override with
  | 0 -> ( match jobs_from_env () with Some n -> n | None -> default_jobs ())
  | n -> n

type 'b outcome =
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ?jobs:j f xs =
  let j = match j with Some j -> max 1 j | None -> jobs () in
  match xs with
  | [] -> []
  | xs when j = 1 || List.compare_length_with xs 1 = 0 -> List.map f xs
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* Work-stealing by index: each domain claims the next unclaimed
       task. Result slots are disjoint, so plain writes suffice; the
       joins publish them to the caller. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <-
             (try Some (Value (f items.(i)))
              with e -> Some (Raised (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min j n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Value v) -> v
         | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
