type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  (* Mix once more so the child stream is decorrelated from the parent's
     subsequent outputs. *)
  { state = mix64 seed }

(* Keyed derivation: unlike [split], the child stream depends only on
   (root, index), never on how many draws someone else has taken from a
   shared parent — so per-tenant streams are identical regardless of the
   order tenants are admitted in (DESIGN.md §16). The index is offset by
   one and pushed through the same golden-gamma + mix64 pipeline as
   [split], so [stream ~root ~index:0] differs from [create ~seed:root]. *)
let stream ~root ~index =
  if index < 0 then invalid_arg "Rng.stream: index must be non-negative";
  let keyed =
    Int64.add (mix64 root) (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  { state = mix64 keyed }

let bits64 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits64 t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L
