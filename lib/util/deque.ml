(* Work-stealing double-ended queue (fleet checker scheduling,
   DESIGN.md §16). The owner core pushes and pops at the back (LIFO:
   the newest checker has the warmest cache affinity), thieves steal
   from the front (FIFO: the oldest queued checker has waited longest
   and bounds detection latency).

   A plain mutex-guarded ring suffices here: the simulated clock
   serializes all scheduling decisions, so the lock is never contended
   in practice — what the fleet measures is the *policy* (owner-LIFO /
   thief-FIFO placement), not lock-free throughput. The mutex keeps the
   structure safe if a test drives it from multiple domains. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable front : int;  (* index of the oldest element *)
  mutable len : int;
  lock : Mutex.t;
}

let create () = { buf = Array.make 8 None; front = 0; len = 0; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let grow t =
  let cap = Array.length t.buf in
  let buf' = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    buf'.(i) <- t.buf.((t.front + i) mod cap)
  done;
  t.buf <- buf';
  t.front <- 0

let push_back t x =
  with_lock t (fun () ->
      if t.len = Array.length t.buf then grow t;
      let cap = Array.length t.buf in
      t.buf.((t.front + t.len) mod cap) <- Some x;
      t.len <- t.len + 1)

let pop_back t =
  with_lock t (fun () ->
      if t.len = 0 then None
      else begin
        let cap = Array.length t.buf in
        let i = (t.front + t.len - 1) mod cap in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.len <- t.len - 1;
        x
      end)

let steal_front t =
  with_lock t (fun () ->
      if t.len = 0 then None
      else begin
        let x = t.buf.(t.front) in
        t.buf.(t.front) <- None;
        t.front <- (t.front + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        x
      end)

let length t = with_lock t (fun () -> t.len)

let is_empty t = length t = 0

let to_list t =
  with_lock t (fun () ->
      List.init t.len (fun i ->
          match t.buf.((t.front + i) mod Array.length t.buf) with
          | Some x -> x
          | None -> assert false))

(* Remove every element matching [pred], preserving order of the rest;
   returns the removed elements front-first. Used by tenant teardown:
   a torn-down tenant's queued checkers must leave the pool without
   disturbing other tenants' entries. *)
let remove_where t pred =
  with_lock t (fun () ->
      let kept = ref [] and removed = ref [] in
      for i = 0 to t.len - 1 do
        match t.buf.((t.front + i) mod Array.length t.buf) with
        | Some x -> if pred x then removed := x :: !removed else kept := x :: !kept
        | None -> assert false
      done;
      Array.fill t.buf 0 (Array.length t.buf) None;
      t.front <- 0;
      t.len <- 0;
      List.iteri
        (fun i x ->
          t.buf.(i) <- Some x;
          t.len <- i + 1)
        (List.rev !kept);
      List.rev !removed)
