(** A fixed-size domain pool for embarrassingly parallel experiment
    loops (benchmark sweeps, fault-injection campaigns, period grids).

    Each [map] call runs its tasks on [jobs] OCaml 5 domains (the
    calling domain counts as one of them) pulling indices from a shared
    atomic cursor, and merges results {e in input order} — so the output
    is the same list [List.map] would have produced. Tasks must be
    independent: they may not share mutable state except through
    domain-safe structures. With [jobs = 1] (or a single-item list) no
    domain is spawned and the call degenerates to exactly the
    sequential path.

    The parallelism knob resolves, in priority order:
    + {!set_jobs} (the [-j N] command-line flag);
    + the [PARALLAFT_JOBS] environment variable;
    + [Domain.recommended_domain_count () - 1], floored at 1 — leave
      one core for the OS, and never parallelize on a single-core host.

    Determinism contract: a [map] over tasks whose results depend only
    on their input (all simulation runs do — engines are seeded and
    self-contained) returns a bit-identical list for every [jobs]
    value. [test/test_parallel.ml] enforces this differentially for the
    suite sweep, the fault-injection campaign and the period grid. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], floored at 1. *)

val set_jobs : int -> unit
(** Override the pool width process-wide (clamped to at least 1);
    takes precedence over [PARALLAFT_JOBS]. *)

val jobs : unit -> int
(** The resolved pool width (see the priority order above). An explicit
    width ({!set_jobs} or [PARALLAFT_JOBS]) always wins, even when core
    detection reports a single core — detection is only the fallback. *)

val jobs_source : unit -> string
(** Where the resolved width came from: ["-j"], ["PARALLAFT_JOBS"] or
    ["detected"]. The first fanning-out {!map} of the process logs
    width and source to stderr once (suppressed by [PARALLAFT_QUIET]),
    so a silently serialized "parallel" run is visible; a malformed
    [PARALLAFT_JOBS] value is ignored with a one-shot warning. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] like [List.map f xs], computed on [min jobs (length xs)]
    domains. If one or more tasks raise, the remaining tasks still run
    to completion and the exception of the {e lowest-indexed} failing
    task is re-raised (with its backtrace) — deterministic regardless
    of which domain hit it first. [?jobs] overrides {!jobs} for this
    call only. *)
