(** The simulated instruction set.

    A small load/store RISC with 16 general-purpose registers, absolute
    branch targets (instruction indices), a [syscall] instruction, and the
    nondeterministic instructions the paper has to trap and emulate
    (§4.3.4): [rdtsc] (x86_64 timestamp counter), [rdcoreid] (the AArch64
    [mrs MIDR_EL1] analogue — reads a value that differs between big and
    little cores), and [rdrand].

    Register values are OCaml native ints (63 bits on 64-bit hosts); the
    fault-injection campaign flips bits within that width.

    Branch targets are absolute code indices; the assembler and the
    {!Builder} resolve labels to indices. Code lives outside the simulated
    data address space (Harvard layout), which sidesteps self-modifying
    code without affecting any mechanism under study. *)

type reg = int
(** Register index in [\[0, num_regs)]. *)

val num_regs : int
(** 16. By convention: [r0] syscall number / return value, [r1]-[r5]
    syscall arguments, [r15] often used as a stack/frame pointer by
    generated code. *)

type operand =
  | Reg of reg
  | Imm of int

type alu_op = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Ge

type t =
  | Alu of alu_op * reg * reg * operand  (** [rd := rs1 op op2] *)
  | Li of reg * int  (** [rd := imm] *)
  | Mov of reg * reg  (** [rd := rs] *)
  | Load of reg * reg * int  (** [rd := mem64\[rbase + off\]] *)
  | Store of reg * reg * int  (** [mem64\[rbase + off\] := rs] *)
  | Load8 of reg * reg * int  (** [rd := mem8\[rbase + off\]] *)
  | Store8 of reg * reg * int  (** [mem8\[rbase + off\] := rs & 0xff] *)
  | Branch of cond * reg * reg * int  (** conditional branch to index *)
  | Jump of int  (** unconditional branch to index *)
  | Jump_reg of reg  (** indirect branch: [pc := rs] *)
  | Syscall
  | Rdtsc of reg  (** nondeterministic: cycle counter *)
  | Rdcoreid of reg  (** nondeterministic: differs across cores *)
  | Rdrand of reg  (** nondeterministic: hardware randomness *)
  | Nop
  | Halt

val is_branch : t -> bool
(** [is_branch i] is true for control-flow instructions — exactly the
    instructions the user-mode branch performance counter retires
    (conditional branches count whether or not taken, as on real
    hardware). *)

val is_memory : t -> bool
(** [is_memory i] is true for loads and stores (drives the cache/timing
    model). *)

val is_nondet : t -> bool
(** [is_nondet i] is true for [rdtsc]/[rdcoreid]/[rdrand] — the
    instructions the runtime must trap, emulate, record and replay. *)

val writes_reg : t -> reg option
(** [writes_reg i] is the destination register, if any. *)

val to_string : t -> string
(** Disassembly, in the textual-assembler syntax (branch targets printed
    as absolute indices). *)

val check : t -> (unit, string) result
(** [check i] validates register indices and shift amounts; the builder
    and assembler run it on every emitted instruction. *)

val encode : t -> int option
(** Binary word form: tag in the low 5 bits, register/opcode fields
    above, any immediate as a signed field filling the rest of the
    63-bit word. This is how a program passes an instruction through a
    register to the [patch_code] syscall (the Harvard-layout escape
    hatch for self-modifying code). [None] when an immediate does not
    fit its field (46+ bits of headroom) or the instruction itself
    fails {!check}. *)

val decode : int -> t option
(** Inverse of {!encode}. [None] on an unknown tag or an instruction
    that fails {!check}; ignores junk in unused high bits, so
    [decode w] succeeding does not imply [encode (decode w) = w]. *)
