(** Pre-decoded basic blocks — the representation the interpreter's
    block cache stores (DESIGN.md §15).

    A block is the run of instructions from [entry] to the first
    control transfer, trap site (syscall, halt, nondet when trapping is
    on), or the length cap. Two hot patterns are fused into
    superinstructions ([O_load_alu], [T_dec_branch]); fusion is a
    dispatch optimization only — the CPU still charges, retires and
    checks stop conditions per {e source} instruction, so any mid-block
    stop lands on exactly the instruction the unfused interpreter
    stops on. *)

type op =
  | O_alu_rr of { op : Insn.alu_op; rd : int; rs1 : int; rs2 : int }
  | O_alu_ri of { op : Insn.alu_op; rd : int; rs1 : int; imm : int }
  | O_li of { rd : int; imm : int }
  | O_mov of { rd : int; rs : int }
  | O_load of { rd : int; rb : int; off : int }
  | O_store of { rs : int; rb : int; off : int }
  | O_load8 of { rd : int; rb : int; off : int }
  | O_store8 of { rs : int; rb : int; off : int }
  | O_load_alu of {
      ld_rd : int;
      rb : int;
      off : int;
      op : Insn.alu_op;
      rd : int;
      rs1 : int;
    }  (** fused [load ld_rd, rb, off; op rd, rs1, ld_rd] — 2 insns *)
  | O_rdtsc of { rd : int }
  | O_rdcoreid of { rd : int }
  | O_rdrand of { rd : int }
  | O_nop

type terminator =
  | T_branch of { cond : Insn.cond; rs1 : int; rs2 : int; target : int }
  | T_dec_branch of {
      rd : int;
      dec : int;
      cond : Insn.cond;
      rs2 : int;
      target : int;
    }  (** fused [sub rd, rd, dec; b<cond> rd, rs2, target] — 2 insns *)
  | T_jump of { target : int }
  | T_jump_reg of { rs : int }
  | T_trap of Insn.t
      (** block ends {e before} this instruction (syscall / halt /
          trapped nondet); the CPU raises the stop with pc on it *)
  | T_fallthrough  (** length cap or end of code; continue at [term_pc] *)

type block = {
  entry : int;
  ops : op array;
  term : terminator;
  term_pc : int;
      (** pc of the terminator instruction; for [T_fallthrough] the pc
          of the next block *)
  n_insns : int;
      (** instructions a full execution of the block retires (fused
          forms count their source width; trap/fallthrough terminators
          retire nothing) *)
  resets_bp : bool;
      (** whether executing the block fetches at least one instruction
          past the breakpoint check, i.e. clears the one-shot
          breakpoint-resume suppression like the plain interpreter *)
  first_page : int;
  last_page : int;
      (** inclusive code-page span the block decodes from; a generation
          bump on any page in the span invalidates it *)
  nondet_trap : bool;
      (** trap mode the block was decoded under — nondet instructions
          are inline ops or trap sites depending on it *)
}

val code_page_bits : int
(** Code pages are [2^code_page_bits] instructions (64): the
    granularity of the patch-invalidation generation counters. *)

val code_page : int -> int
(** [code_page pc] is the code page a pc falls on. *)

val n_code_pages : code_len:int -> int

val max_block_ops : int
(** Decoded-op length cap per block (fused ops count once). *)

val op_width : op -> int
(** Source instructions the op retires (2 for a fused op, else 1). *)

val term_width : terminator -> int

val decode_block : code:Insn.t array -> nondet_trap:bool -> entry:int -> block
(** Decode one block. [entry] must be a valid index into [code]. *)
