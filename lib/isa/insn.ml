type reg = int

let num_regs = 16

type operand =
  | Reg of reg
  | Imm of int

type alu_op = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Ge

type t =
  | Alu of alu_op * reg * reg * operand
  | Li of reg * int
  | Mov of reg * reg
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Load8 of reg * reg * int
  | Store8 of reg * reg * int
  | Branch of cond * reg * reg * int
  | Jump of int
  | Jump_reg of reg
  | Syscall
  | Rdtsc of reg
  | Rdcoreid of reg
  | Rdrand of reg
  | Nop
  | Halt

let is_branch = function
  | Branch _ | Jump _ | Jump_reg _ -> true
  | Alu _ | Li _ | Mov _ | Load _ | Store _ | Load8 _ | Store8 _ | Syscall
  | Rdtsc _ | Rdcoreid _ | Rdrand _ | Nop | Halt ->
    false

let is_memory = function
  | Load _ | Store _ | Load8 _ | Store8 _ -> true
  | Alu _ | Li _ | Mov _ | Branch _ | Jump _ | Jump_reg _ | Syscall | Rdtsc _
  | Rdcoreid _ | Rdrand _ | Nop | Halt ->
    false

let is_nondet = function
  | Rdtsc _ | Rdcoreid _ | Rdrand _ -> true
  | Alu _ | Li _ | Mov _ | Load _ | Store _ | Load8 _ | Store8 _ | Branch _
  | Jump _ | Jump_reg _ | Syscall | Nop | Halt ->
    false

let writes_reg = function
  | Alu (_, rd, _, _) | Li (rd, _) | Mov (rd, _) | Load (rd, _, _)
  | Load8 (rd, _, _) | Rdtsc rd | Rdcoreid rd | Rdrand rd ->
    Some rd
  | Store _ | Store8 _ | Branch _ | Jump _ | Jump_reg _ | Syscall | Nop | Halt
    ->
    None

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cond_name = function Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge"

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm i -> string_of_int i

let to_string = function
  | Alu (op, rd, rs1, op2) ->
    Printf.sprintf "%s r%d, r%d, %s" (alu_op_name op) rd rs1
      (operand_to_string op2)
  | Li (rd, imm) -> Printf.sprintf "li r%d, %d" rd imm
  | Mov (rd, rs) -> Printf.sprintf "mov r%d, r%d" rd rs
  | Load (rd, rb, off) -> Printf.sprintf "load r%d, r%d, %d" rd rb off
  | Store (rs, rb, off) -> Printf.sprintf "store r%d, r%d, %d" rs rb off
  | Load8 (rd, rb, off) -> Printf.sprintf "load8 r%d, r%d, %d" rd rb off
  | Store8 (rs, rb, off) -> Printf.sprintf "store8 r%d, r%d, %d" rs rb off
  | Branch (c, rs1, rs2, target) ->
    Printf.sprintf "%s r%d, r%d, %d" (cond_name c) rs1 rs2 target
  | Jump target -> Printf.sprintf "jmp %d" target
  | Jump_reg rs -> Printf.sprintf "jr r%d" rs
  | Syscall -> "syscall"
  | Rdtsc rd -> Printf.sprintf "rdtsc r%d" rd
  | Rdcoreid rd -> Printf.sprintf "rdcoreid r%d" rd
  | Rdrand rd -> Printf.sprintf "rdrand r%d" rd
  | Nop -> "nop"
  | Halt -> "halt"

let check_reg r = if r < 0 || r >= num_regs then Error (Printf.sprintf "bad register r%d" r) else Ok ()

(* Binary word form, used by the [patch_code] syscall (a store to the
   instruction stream crosses the kernel in one 63-bit register). Tag in
   bits 0-4, 4-bit register / opcode fields above it, and any immediate
   as a signed field occupying the rest of the word up to bit 62 — so
   [asr] recovers the sign on decode and [encode] only fails when an
   immediate genuinely does not fit (46+ bits of headroom). *)

let alu_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9

let alu_of_code = function
  | 0 -> Some Add
  | 1 -> Some Sub
  | 2 -> Some Mul
  | 3 -> Some Div
  | 4 -> Some Rem
  | 5 -> Some And
  | 6 -> Some Or
  | 7 -> Some Xor
  | 8 -> Some Shl
  | 9 -> Some Shr
  | _ -> None

let cond_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Ge -> 3
let cond_of_code = function 0 -> Eq | 1 -> Ne | 2 -> Lt | _ -> Ge

let ( let* ) = Result.bind

let check insn =
  match insn with
  | Alu (op, rd, rs1, op2) ->
    let* () = check_reg rd in
    let* () = check_reg rs1 in
    let* () = match op2 with Reg r -> check_reg r | Imm _ -> Ok () in
    (match (op, op2) with
    | (Shl | Shr), Imm i when i < 0 || i > 62 -> Error "shift amount out of range"
    | _ -> Ok ())
  | Li (rd, _) | Rdtsc rd | Rdcoreid rd | Rdrand rd -> check_reg rd
  | Mov (rd, rs) ->
    let* () = check_reg rd in
    check_reg rs
  | Load (r1, r2, _) | Store (r1, r2, _) | Load8 (r1, r2, _) | Store8 (r1, r2, _)
    ->
    let* () = check_reg r1 in
    check_reg r2
  | Branch (_, rs1, rs2, target) ->
    let* () = check_reg rs1 in
    let* () = check_reg rs2 in
    if target < 0 then Error "negative branch target" else Ok ()
  | Jump target -> if target < 0 then Error "negative branch target" else Ok ()
  | Jump_reg rs -> check_reg rs
  | Syscall | Nop | Halt -> Ok ()

let encode insn =
  let imm ~shift v rest =
    (* [v] becomes the signed field occupying bits [shift..62]. *)
    let bits = 63 - shift in
    if v >= -(1 lsl (bits - 1)) && v < 1 lsl (bits - 1) then
      Some ((v lsl shift) lor rest)
    else None
  in
  match check insn with
  | Error _ -> None
  | Ok () -> (
    match insn with
    | Alu (op, rd, rs1, Reg rs2) ->
      Some
        (0 lor (rd lsl 5) lor (rs1 lsl 9) lor (rs2 lsl 13)
        lor (alu_code op lsl 17))
    | Alu (op, rd, rs1, Imm i) ->
      imm ~shift:17 i (1 lor (rd lsl 5) lor (rs1 lsl 9) lor (alu_code op lsl 13))
    | Li (rd, i) -> imm ~shift:9 i (2 lor (rd lsl 5))
    | Mov (rd, rs) -> Some (3 lor (rd lsl 5) lor (rs lsl 9))
    | Load (rd, rb, off) -> imm ~shift:13 off (4 lor (rd lsl 5) lor (rb lsl 9))
    | Store (rs, rb, off) -> imm ~shift:13 off (5 lor (rs lsl 5) lor (rb lsl 9))
    | Load8 (rd, rb, off) -> imm ~shift:13 off (6 lor (rd lsl 5) lor (rb lsl 9))
    | Store8 (rs, rb, off) -> imm ~shift:13 off (7 lor (rs lsl 5) lor (rb lsl 9))
    | Branch (c, rs1, rs2, target) ->
      imm ~shift:15 target
        (8 lor (cond_code c lsl 5) lor (rs1 lsl 7) lor (rs2 lsl 11))
    | Jump target -> imm ~shift:5 target 9
    | Jump_reg rs -> Some (10 lor (rs lsl 5))
    | Syscall -> Some 11
    | Rdtsc rd -> Some (12 lor (rd lsl 5))
    | Rdcoreid rd -> Some (13 lor (rd lsl 5))
    | Rdrand rd -> Some (14 lor (rd lsl 5))
    | Nop -> Some 15
    | Halt -> Some 16)

let decode word =
  let tag = word land 31 in
  let reg pos = (word lsr pos) land 15 in
  let insn =
    match tag with
    | 0 ->
      Option.map
        (fun op -> Alu (op, reg 5, reg 9, Reg (reg 13)))
        (alu_of_code ((word lsr 17) land 15))
    | 1 ->
      Option.map
        (fun op -> Alu (op, reg 5, reg 9, Imm (word asr 17)))
        (alu_of_code ((word lsr 13) land 15))
    | 2 -> Some (Li (reg 5, word asr 9))
    | 3 -> Some (Mov (reg 5, reg 9))
    | 4 -> Some (Load (reg 5, reg 9, word asr 13))
    | 5 -> Some (Store (reg 5, reg 9, word asr 13))
    | 6 -> Some (Load8 (reg 5, reg 9, word asr 13))
    | 7 -> Some (Store8 (reg 5, reg 9, word asr 13))
    | 8 ->
      Some
        (Branch (cond_of_code ((word lsr 5) land 3), reg 7, reg 11, word asr 15))
    | 9 -> Some (Jump (word asr 5))
    | 10 -> Some (Jump_reg (reg 5))
    | 11 -> Some Syscall
    | 12 -> Some (Rdtsc (reg 5))
    | 13 -> Some (Rdcoreid (reg 5))
    | 14 -> Some (Rdrand (reg 5))
    | 15 -> Some Nop
    | 16 -> Some Halt
    | _ -> None
  in
  match insn with
  | Some i -> ( match check i with Ok () -> Some i | Error _ -> None)
  | None -> None
