(* Pre-decoded basic blocks for the interpreter's block cache.

   A block is a run of straight-line instructions starting at [entry]
   and ending at the first control transfer, trap site (syscall, halt,
   trapped nondet), or the length cap. The decoder also fuses the two
   patterns that dominate the generated workloads' inner loops:

   - [load rd, rb, off; <alu> rd2, rs1, rd]  ->  O_load_alu
   - [sub rd, rd, imm; b<cond> rd, rs2, T]   ->  T_dec_branch

   Fusion is a dispatch optimization only: the executing CPU still
   charges costs, retires, and checks stop conditions per source
   instruction, so a mid-pattern stop (cycle budget, fault) lands on
   exactly the same instruction as the unfused interpreter. *)

type op =
  | O_alu_rr of { op : Insn.alu_op; rd : int; rs1 : int; rs2 : int }
  | O_alu_ri of { op : Insn.alu_op; rd : int; rs1 : int; imm : int }
  | O_li of { rd : int; imm : int }
  | O_mov of { rd : int; rs : int }
  | O_load of { rd : int; rb : int; off : int }
  | O_store of { rs : int; rb : int; off : int }
  | O_load8 of { rd : int; rb : int; off : int }
  | O_store8 of { rs : int; rb : int; off : int }
  | O_load_alu of {
      ld_rd : int;
      rb : int;
      off : int;
      op : Insn.alu_op;
      rd : int;
      rs1 : int;
    }  (** fused [load ld_rd, rb, off; op rd, rs1, ld_rd] — 2 insns *)
  | O_rdtsc of { rd : int }
  | O_rdcoreid of { rd : int }
  | O_rdrand of { rd : int }
  | O_nop

type terminator =
  | T_branch of { cond : Insn.cond; rs1 : int; rs2 : int; target : int }
  | T_dec_branch of {
      rd : int;
      dec : int;
      cond : Insn.cond;
      rs2 : int;
      target : int;
    }  (** fused [sub rd, rd, dec; b<cond> rd, rs2, target] — 2 insns *)
  | T_jump of { target : int }
  | T_jump_reg of { rs : int }
  | T_trap of Insn.t
      (** block ends {e before} this instruction (syscall / halt /
          trapped nondet); the CPU raises the stop with pc on it *)
  | T_fallthrough  (** length cap or end of code; continue at [term_pc] *)

type block = {
  entry : int;
  ops : op array;
  term : terminator;
  term_pc : int;
      (** pc of the terminator instruction; for [T_fallthrough] the pc
          of the next block *)
  n_insns : int;
      (** instructions a full execution of the block retires (fused
          forms count their source width; trap/fallthrough terminators
          retire nothing) *)
  resets_bp : bool;
      (** whether executing the block fetches at least one instruction
          past the breakpoint check, i.e. clears the one-shot
          breakpoint-resume suppression like the plain interpreter *)
  first_page : int;
  last_page : int;
      (** inclusive code-page span the block's bytes were decoded from;
          a generation bump on any page in the span invalidates it *)
  nondet_trap : bool;
      (** the trap mode the block was decoded under — rdtsc/rdcoreid/
          rdrand are inline ops or trap sites depending on it *)
}

let code_page_bits = 6
(* 64 instructions per code page: fine enough that a patch invalidates
   little, coarse enough that the generation array stays small. *)

let code_page pc = pc lsr code_page_bits
let n_code_pages ~code_len = (code_len + (1 lsl code_page_bits) - 1) lsr code_page_bits

let max_block_ops = 64

let op_width = function O_load_alu _ -> 2 | _ -> 1

let term_width = function
  | T_branch _ | T_jump _ | T_jump_reg _ -> 1
  | T_dec_branch _ -> 2
  | T_trap _ | T_fallthrough -> 0

let op_of_insn (i : Insn.t) =
  match i with
  | Insn.Alu (op, rd, rs1, Insn.Reg rs2) -> Some (O_alu_rr { op; rd; rs1; rs2 })
  | Insn.Alu (op, rd, rs1, Insn.Imm imm) -> Some (O_alu_ri { op; rd; rs1; imm })
  | Insn.Li (rd, imm) -> Some (O_li { rd; imm })
  | Insn.Mov (rd, rs) -> Some (O_mov { rd; rs })
  | Insn.Load (rd, rb, off) -> Some (O_load { rd; rb; off })
  | Insn.Store (rs, rb, off) -> Some (O_store { rs; rb; off })
  | Insn.Load8 (rd, rb, off) -> Some (O_load8 { rd; rb; off })
  | Insn.Store8 (rs, rb, off) -> Some (O_store8 { rs; rb; off })
  | Insn.Rdtsc rd -> Some (O_rdtsc { rd })
  | Insn.Rdcoreid rd -> Some (O_rdcoreid { rd })
  | Insn.Rdrand rd -> Some (O_rdrand { rd })
  | Insn.Nop -> Some O_nop
  | Insn.Branch _ | Insn.Jump _ | Insn.Jump_reg _ | Insn.Syscall | Insn.Halt ->
    None

let decode_block ~code ~nondet_trap ~entry =
  let code_len = Array.length code in
  (* [rev_ops] accumulates decoded ops newest-first so the fusion
     peepholes can pop the instruction they merge with. *)
  let rec scan rev_ops n_ops ip =
    if ip >= code_len || n_ops >= max_block_ops then
      (rev_ops, T_fallthrough, ip, ip - 1)
    else
      let insn = code.(ip) in
      match insn with
      | Insn.Syscall | Insn.Halt -> (rev_ops, T_trap insn, ip, ip)
      | (Insn.Rdtsc _ | Insn.Rdcoreid _ | Insn.Rdrand _) when nondet_trap ->
        (rev_ops, T_trap insn, ip, ip)
      | Insn.Branch (cond, rs1, rs2, target) -> (
        match rev_ops with
        | O_alu_ri { op = Insn.Sub; rd; rs1 = srs1; imm } :: rest
          when rd = rs1 && srs1 = rd ->
          (rest, T_dec_branch { rd; dec = imm; cond; rs2; target }, ip - 1, ip)
        | _ -> (rev_ops, T_branch { cond; rs1; rs2; target }, ip, ip))
      | Insn.Jump target -> (rev_ops, T_jump { target }, ip, ip)
      | Insn.Jump_reg rs -> (rev_ops, T_jump_reg { rs }, ip, ip)
      | _ -> (
        match op_of_insn insn with
        | None -> assert false
        | Some op -> (
          match (op, rev_ops) with
          | ( O_alu_rr { op = aop; rd; rs1; rs2 },
              O_load { rd = ld_rd; rb; off } :: rest )
            when rs2 = ld_rd ->
            scan
              (O_load_alu { ld_rd; rb; off; op = aop; rd; rs1 } :: rest)
              n_ops (ip + 1)
          | _ -> scan (op :: rev_ops) (n_ops + 1) (ip + 1)))
  in
  let rev_ops, term, term_pc, span_end = scan [] 0 entry in
  let ops = Array.of_list (List.rev rev_ops) in
  let ops_insns = Array.fold_left (fun n o -> n + op_width o) 0 ops in
  let resets_bp =
    match term with
    | T_branch _ | T_dec_branch _ | T_jump _ | T_jump_reg _ -> true
    | T_trap _ | T_fallthrough -> Array.length ops > 0
  in
  let span_end = max entry span_end in
  {
    entry;
    ops;
    term;
    term_pc;
    n_insns = ops_insns + term_width term;
    resets_bp;
    first_page = code_page entry;
    last_page = code_page span_end;
    nondet_trap;
  }
