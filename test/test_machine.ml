(* Unit tests of the CPU interpreter and its monitoring hardware. *)

let page_size = 4096

let null_env =
  {
    Machine.Cpu.core_id = 0;
    read_tsc = (fun () -> 12345);
    read_rand = (fun () -> 777);
    mem_access = (fun ~write:_ ~frame:_ -> 0);
    mem_access_cow = (fun ~frame:_ ~old_frame:_ -> 0);
    cow_extra_cycles = 100;
    mul_cycles = 3;
    div_cycles = 12;
  }

let make_cpu ?(seed = 1L) ?block_cache src =
  let program = Isa.Asm.assemble_exn src in
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  List.iter
    (fun { Isa.Program.base; bytes } ->
      Mem.Address_space.write_bytes_map aspace ~addr:base bytes)
    program.Isa.Program.data;
  Machine.Cpu.create ?block_cache ~rng:(Util.Rng.create ~seed) ~program ~aspace ()

let run ?(max_cycles = 1_000_000) cpu = Machine.Cpu.run cpu ~env:null_env ~max_cycles

let test_arithmetic () =
  let cpu =
    make_cpu
      {|
        li r1, 10
        li r2, 3
        add r3, r1, r2     ; 13
        sub r4, r1, r2     ; 7
        mul r5, r1, r2     ; 30
        div r6, r1, r2     ; 3
        rem r7, r1, r2     ; 1
        and r8, r1, r2     ; 2
        or r9, r1, r2      ; 11
        xor r10, r1, r2    ; 9
        shl r11, r1, 2     ; 40
        shr r12, r1, 1     ; 5
        halt
      |}
  in
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "did not halt");
  let reg = Machine.Cpu.get_reg cpu in
  List.iter
    (fun (r, expected) -> Alcotest.(check int) (Printf.sprintf "r%d" r) expected (reg r))
    [ (3, 13); (4, 7); (5, 30); (6, 3); (7, 1); (8, 2); (9, 11); (10, 9);
      (11, 40); (12, 5) ]

let test_branches_and_counter () =
  (* A loop with a known branch count: 10 iterations of bne + the final
     not-taken bne = 10 branches total (retired branches count taken and
     not-taken alike). *)
  let cpu =
    make_cpu
      {|
        li r1, 10
        li r2, 0
      loop:
        sub r1, r1, 1
        bne r1, r2, loop
        halt
      |}
  in
  ignore (run cpu);
  Alcotest.(check int) "branch counter" 10 (Machine.Cpu.branches cpu)

let test_branch_counter_deterministic () =
  let count seed =
    let cpu = make_cpu ~seed "li r1, 100\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
    ignore (run cpu);
    Machine.Cpu.branches cpu
  in
  Alcotest.(check int) "independent of noise seed" (count 1L) (count 999L)

let test_memory_roundtrip () =
  let cpu =
    make_cpu
      {|
      .zero 0x1000 4096
        li r1, 0x1000
        li r2, 424242
        store r2, r1, 16
        load r3, r1, 16
        store8 r3, r1, 100
        load8 r4, r1, 100
        halt
      |}
  in
  ignore (run cpu);
  Alcotest.(check int) "load64" 424242 (Machine.Cpu.get_reg cpu 3);
  Alcotest.(check int) "load8 truncates" (424242 land 0xFF)
    (Machine.Cpu.get_reg cpu 4)

let test_segv_reported () =
  let cpu = make_cpu "li r1, 0x800000\nload r2, r1, 0\nhalt" in
  let res = run cpu in
  match res.Machine.Cpu.stop with
  | Machine.Cpu.Fault_stop (Machine.Cpu.Segv { addr = 0x800000; write = false }) -> ()
  | _ -> Alcotest.fail "expected Segv"

let test_bad_pc_on_wild_jump () =
  let cpu = make_cpu "li r1, 99999\njr r1\nhalt" in
  let res = run cpu in
  match res.Machine.Cpu.stop with
  | Machine.Cpu.Fault_stop (Machine.Cpu.Bad_pc 99999) -> ()
  | _ -> Alcotest.fail "expected Bad_pc"

let test_syscall_stops_on_insn () =
  let cpu = make_cpu "li r0, 9\nsyscall\nhalt" in
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Syscall_stop -> ()
  | _ -> Alcotest.fail "expected Syscall_stop");
  Alcotest.(check int) "pc on syscall" 1 (Machine.Cpu.get_pc cpu);
  (* Completing the syscall is the tracer's job; emulate and continue. *)
  Machine.Cpu.set_reg cpu 0 42;
  Machine.Cpu.set_pc cpu 2;
  let res = run cpu in
  match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt after resume"

let test_nondet_untrapped_executes () =
  let cpu = make_cpu "rdtsc r1\nrdcoreid r2\nrdrand r3\nhalt" in
  ignore (run cpu);
  Alcotest.(check int) "tsc from env" 12345 (Machine.Cpu.get_reg cpu 1);
  Alcotest.(check int) "coreid from env" 0 (Machine.Cpu.get_reg cpu 2);
  Alcotest.(check int) "rand from env" 777 (Machine.Cpu.get_reg cpu 3)

let test_nondet_trapped () =
  let cpu = make_cpu "rdtsc r1\nhalt" in
  Machine.Cpu.set_nondet_trap cpu true;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Nondet_stop (Isa.Insn.Rdtsc 1) -> ()
  | _ -> Alcotest.fail "expected Nondet_stop");
  (* Tracer emulates. *)
  Machine.Cpu.set_reg cpu 1 555;
  Machine.Cpu.set_pc cpu 1;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int) "emulated value survives" 555 (Machine.Cpu.get_reg cpu 1)

let test_breakpoint () =
  let cpu = make_cpu "li r1, 1\nli r2, 2\nli r3, 3\nhalt" in
  Machine.Cpu.set_breakpoint cpu 2;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Breakpoint_stop -> ()
  | _ -> Alcotest.fail "expected Breakpoint_stop");
  Alcotest.(check int) "pc at bp" 2 (Machine.Cpu.get_pc cpu);
  Alcotest.(check int) "r3 not yet written" 0 (Machine.Cpu.get_reg cpu 3);
  (* Resume without clearing: must not re-trap on the same spot. *)
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int) "r3 written after resume" 3 (Machine.Cpu.get_reg cpu 3)

let test_breakpoint_in_loop_retraps () =
  let cpu =
    make_cpu "li r1, 3\nli r2, 0\nloop:\nsub r1, r1, 1\nbne r1, r2, loop\nhalt"
  in
  Machine.Cpu.set_breakpoint cpu 2;
  let hits = ref 0 in
  let rec go () =
    let res = run cpu in
    match res.Machine.Cpu.stop with
    | Machine.Cpu.Breakpoint_stop ->
      incr hits;
      go ()
    | Machine.Cpu.Halted -> ()
    | _ -> Alcotest.fail "unexpected stop"
  in
  go ();
  Alcotest.(check int) "hit once per iteration" 3 !hits

let test_branch_overflow_with_skid () =
  (* The overflow must arrive at or after the target (never before) and
     within max_skid branches of it. *)
  let src = "li r1, 1000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
  for seed = 1 to 20 do
    let cpu = make_cpu ~seed:(Int64.of_int seed) src in
    Machine.Cpu.arm_branch_overflow cpu ~target:100;
    let res = run cpu in
    (match res.Machine.Cpu.stop with
    | Machine.Cpu.Counter_overflow_stop -> ()
    | _ -> Alcotest.fail "expected overflow");
    let b = Machine.Cpu.branches cpu in
    if b < 100 || b > 100 + Machine.Cpu.max_skid cpu then
      Alcotest.failf "overflow at %d branches (target 100, max skid %d)" b
        (Machine.Cpu.max_skid cpu)
  done

let test_cycle_overflow () =
  let cpu = make_cpu "li r1, 100000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
  Machine.Cpu.arm_cycle_overflow cpu ~target:5000;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Cycle_overflow_stop -> ()
  | _ -> Alcotest.fail "expected cycle overflow");
  Alcotest.(check bool) "at/after target" true (Machine.Cpu.cycles cpu >= 5000)

let test_insn_overflow () =
  let cpu = make_cpu "li r1, 100000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
  Machine.Cpu.arm_insn_overflow cpu ~target:1000;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Insn_overflow_stop -> ()
  | _ -> Alcotest.fail "expected insn overflow");
  Alcotest.(check bool) "at/after target" true
    (Machine.Cpu.instructions cpu >= 1000)

let test_insn_counter_overcounts_on_traps () =
  (* Two CPUs running the same program with syscall traps but different
     noise seeds disagree on the instruction counter — the nondeterminism
     that rules instruction counts out for execution-point replay. *)
  let src =
    "li r5, 50\nli r6, 0\nl:\nli r0, 9\nsyscall\nsub r5, r5, 1\nbne r5, r6, l\nhalt"
  in
  let final_count seed =
    let cpu = make_cpu ~seed src in
    let rec go () =
      let res = run cpu in
      match res.Machine.Cpu.stop with
      | Machine.Cpu.Syscall_stop ->
        Machine.Cpu.set_reg cpu 0 0;
        Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
        go ()
      | Machine.Cpu.Halted -> Machine.Cpu.instructions cpu
      | _ -> Alcotest.fail "unexpected stop"
    in
    go ()
  in
  let counts = List.init 8 (fun i -> final_count (Int64.of_int (i + 1))) in
  let distinct = List.sort_uniq compare counts in
  Alcotest.(check bool)
    (Printf.sprintf "counts vary across seeds (%d distinct)" (List.length distinct))
    true
    (List.length distinct > 1)

let test_fork_copies_arch_state () =
  let cpu = make_cpu "li r1, 7\nli r2, 9\nhalt" in
  ignore (run cpu);
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace2 = Mem.Address_space.create alloc in
  let child =
    Machine.Cpu.fork cpu ~rng:(Util.Rng.create ~seed:5L) ~aspace:aspace2
  in
  Alcotest.(check int) "regs copied" 7 (Machine.Cpu.get_reg child 1);
  Alcotest.(check int) "pc copied" (Machine.Cpu.get_pc cpu) (Machine.Cpu.get_pc child);
  Alcotest.(check int) "counters reset" 0 (Machine.Cpu.branches child)

let test_fault_injection_flips_bit () =
  let cpu = make_cpu "li r1, 0\nnop\nnop\nnop\nhalt" in
  Machine.Cpu.arm_fault_injection cpu ~after_instructions:2 ~reg:1 ~bit:4;
  ignore (run cpu);
  Alcotest.(check bool) "injected" true (Machine.Cpu.fault_injected cpu);
  Alcotest.(check int) "bit 4 flipped" 16 (Machine.Cpu.get_reg cpu 1)

let test_fault_injection_validation () =
  let cpu = make_cpu "halt" in
  (try
     Machine.Cpu.arm_fault_injection cpu ~after_instructions:0 ~reg:99 ~bit:0;
     Alcotest.fail "bad reg accepted"
   with Invalid_argument _ -> ());
  (* Bit 63 is legal (a real ECC model covers all 64 lines); on register
     targets it is a masked no-op because OCaml ints carry 63 bits. *)
  Machine.Cpu.arm_fault_injection cpu ~after_instructions:0 ~reg:0 ~bit:63;
  try
    Machine.Cpu.arm_fault_injection cpu ~after_instructions:0 ~reg:0 ~bit:64;
    Alcotest.fail "bad bit accepted"
  with Invalid_argument _ -> ()

let test_cow_cycles_counted_as_sys () =
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  Mem.Address_space.map_range aspace ~addr:0 ~len:page_size
    Mem.Page_table.Read_write;
  let program =
    Isa.Asm.assemble_exn "li r1, 0\nli r2, 5\nstore r2, r1, 0\nhalt"
  in
  let cpu =
    Machine.Cpu.create ~rng:(Util.Rng.create ~seed:1L) ~program ~aspace ()
  in
  (* Fork so the store COWs. *)
  let _child = Mem.Address_space.fork aspace in
  let res = run cpu in
  ignore res;
  Alcotest.(check bool) "sys cycles charged" true
    (Machine.Cpu.sys_cycles_total cpu >= 100)

(* --- decoded-block cache ------------------------------------------- *)

(* The cache must be architecturally invisible: a cached CPU and an
   uncached CPU driven identically must agree on every observable at
   every stop. The harness below runs random programs under random stop
   causes and compares the full observable state stop by stop. *)

(* Everything a tracer (or the fault-tolerance runtime) can see. *)
type bc_obs = {
  o_stop : Machine.Cpu.stop_reason;
  o_pc : int;
  o_regs : int list;
  o_insns : int;
  o_branches : int;
  o_cycles : int;
  o_sys : int;
  o_retired : int;
  o_blocks : int;
  o_injected : bool;
  o_mem : int list;
}

let bc_observe cpu (res : Machine.Cpu.run_result) =
  {
    o_stop = res.Machine.Cpu.stop;
    o_pc = Machine.Cpu.get_pc cpu;
    o_regs = List.init 16 (Machine.Cpu.get_reg cpu);
    o_insns = Machine.Cpu.instructions cpu;
    o_branches = Machine.Cpu.branches cpu;
    o_cycles = Machine.Cpu.cycles cpu;
    o_sys = Machine.Cpu.sys_cycles_total cpu;
    o_retired = res.Machine.Cpu.insns_retired;
    o_blocks = res.Machine.Cpu.blocks_retired;
    o_injected = Machine.Cpu.fault_injected cpu;
    o_mem =
      List.init 512 (fun i ->
          Mem.Address_space.load64 (Machine.Cpu.aspace cpu) (i * 8));
  }

type bc_scenario =
  | S_plain
  | S_breakpoint of int  (* pc *)
  | S_overflow of int  (* branch-counter target, with skid *)
  | S_nondet  (* trap rdtsc/rdrand/rdcoreid *)
  | S_budget of int  (* small per-run cycle budget: the budget edge *)
  | S_inject of int * int * int  (* after_instructions, reg, bit *)

let bc_scenario_str = function
  | S_plain -> "plain"
  | S_breakpoint pc -> Printf.sprintf "breakpoint@%d" pc
  | S_overflow t -> Printf.sprintf "overflow@%d" t
  | S_nondet -> "nondet-trap"
  | S_budget c -> Printf.sprintf "budget=%d" c
  | S_inject (a, r, b) -> Printf.sprintf "inject@%d r%d bit%d" a r b

(* Drive one CPU to up to [max_stops] stops, emulating traps the way the
   engine's tracer does (syscall and nondet results are functions of the
   stop index only, so both CPUs of a pair see identical injections). *)
let bc_drive cpu ~scenario ~n_insns =
  (match scenario with
  | S_plain | S_budget _ -> ()
  | S_breakpoint pc -> Machine.Cpu.set_breakpoint cpu pc
  | S_overflow target -> Machine.Cpu.arm_branch_overflow cpu ~target
  | S_nondet -> Machine.Cpu.set_nondet_trap cpu true
  | S_inject (after_instructions, reg, bit) ->
    Machine.Cpu.arm_fault_injection cpu ~after_instructions ~reg ~bit);
  ignore n_insns;
  let max_cycles =
    match scenario with S_budget c -> c | _ -> 3_000
  in
  let max_stops = 10 in
  let rec go k acc =
    if k >= max_stops then List.rev acc
    else
      let res = Machine.Cpu.run cpu ~env:null_env ~max_cycles in
      let obs = bc_observe cpu res in
      let acc = obs :: acc in
      match res.Machine.Cpu.stop with
      | Machine.Cpu.Halted | Machine.Cpu.Fault_stop _ -> List.rev acc
      | Machine.Cpu.Syscall_stop ->
        Machine.Cpu.set_reg cpu 0 (700 + k);
        Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
        go (k + 1) acc
      | Machine.Cpu.Nondet_stop insn ->
        (match insn with
        | Isa.Insn.Rdtsc r | Isa.Insn.Rdcoreid r | Isa.Insn.Rdrand r ->
          Machine.Cpu.set_reg cpu r (9_000 + k)
        | _ -> ());
        Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
        go (k + 1) acc
      | Machine.Cpu.Breakpoint_stop | Machine.Cpu.Counter_overflow_stop
      | Machine.Cpu.Cycle_overflow_stop | Machine.Cpu.Insn_overflow_stop
      | Machine.Cpu.Budget_exhausted ->
        go (k + 1) acc
  in
  go 0 []

(* Random program: every instruction is labelled so branches and jumps
   can target any of them. r7 is pinned to 0 as the only load/store
   base, generated writes stay in r1..r6, so data traffic is confined to
   the mapped page; div-by-zero, infinite loops and mid-run traps are
   stop causes the harness compares, not generator bugs. *)
let bc_gen_case =
  let open QCheck.Gen in
  let n = 24 in
  let rw = int_range 1 6 in
  let rr = int_range 0 7 in
  let off = map (fun i -> i * 8) (int_range 0 500) in
  let lab = map (Printf.sprintf "i%d") (int_range 0 (n - 1)) in
  let alu2 =
    oneofl [ "add"; "sub"; "mul"; "div"; "rem"; "and"; "or"; "xor" ]
  in
  let alui = oneofl [ "add"; "sub"; "shl"; "shr" ] in
  let insn =
    frequency
      [
        ( 6,
          map3
            (fun op d (a, b) -> Printf.sprintf "%s r%d, r%d, r%d" op d a b)
            alu2 rw (pair rr rr) );
        ( 4,
          map3
            (fun op d (a, i) -> Printf.sprintf "%s r%d, r%d, %d" op d a i)
            alui rw
            (pair rr (int_range 0 7)) );
        (3, map2 (fun d i -> Printf.sprintf "li r%d, %d" d i) rw (int_range (-1000) 1000));
        (2, map2 (fun d s -> Printf.sprintf "mov r%d, r%d" d s) rw rr);
        (3, map2 (fun d o -> Printf.sprintf "load r%d, r7, %d" d o) rw off);
        (3, map2 (fun s o -> Printf.sprintf "store r%d, r7, %d" s o) rr off);
        (1, map2 (fun d o -> Printf.sprintf "load8 r%d, r7, %d" d o) rw off);
        (1, map2 (fun s o -> Printf.sprintf "store8 r%d, r7, %d" s o) rr off);
        (1, map (Printf.sprintf "rdtsc r%d") rw);
        (1, map (Printf.sprintf "rdrand r%d") rw);
        (1, map (Printf.sprintf "rdcoreid r%d") rw);
        (1, return "nop");
        (1, return "syscall");
        ( 4,
          map3
            (fun c (a, b) l -> Printf.sprintf "%s r%d, r%d, %s" c a b l)
            (oneofl [ "beq"; "bne"; "blt"; "bge" ])
            (pair rr rr) lab );
        (1, map (Printf.sprintf "jmp %s") lab);
      ]
  in
  let scenario =
    frequency
      [
        (2, return S_plain);
        (2, map (fun pc -> S_breakpoint pc) (int_range 0 n));
        (2, map (fun t -> S_overflow t) (int_range 1 30));
        (2, return S_nondet);
        (2, map (fun c -> S_budget c) (int_range 50 1500));
        ( 2,
          map3
            (fun a r b -> S_inject (a, r, b))
            (int_range 0 300) (int_range 1 6) (int_range 0 62) );
      ]
  in
  let* body = list_repeat n insn in
  let* scen = scenario in
  let* seed = int_range 1 1_000_000 in
  let b = Buffer.create 512 in
  Buffer.add_string b ".zero 0x0 4096\n";
  Buffer.add_string b "li r7, 0\n";
  List.iteri
    (fun i s -> Buffer.add_string b (Printf.sprintf "i%d:\n%s\n" i s))
    body;
  Buffer.add_string b "halt\n";
  return (Buffer.contents b, scen, Int64.of_int seed, n)

let bc_case_print (src, scen, seed, _) =
  Printf.sprintf "seed=%Ld scenario=%s\n%s" seed (bc_scenario_str scen) src

let qcheck_block_cache_differential =
  QCheck.Test.make ~name:"block cache is architecturally invisible" ~count:300
    (QCheck.make ~print:bc_case_print bc_gen_case)
    (fun (src, scenario, seed, n_insns) ->
      let cached = make_cpu ~seed ~block_cache:64 src in
      let uncached = make_cpu ~seed ~block_cache:0 src in
      let a = bc_drive cached ~scenario ~n_insns in
      let b = bc_drive uncached ~scenario ~n_insns in
      if a <> b then
        QCheck.Test.fail_reportf "diverged after %d vs %d stops"
          (List.length a) (List.length b)
      else true)

(* Deliberately tiny cache: random programs with 25 blocks against 64
   slots plus a 4-slot variant exercise eviction and re-admission too. *)
let qcheck_block_cache_differential_tiny =
  QCheck.Test.make ~name:"block cache invisible under eviction pressure"
    ~count:120
    (QCheck.make ~print:bc_case_print bc_gen_case)
    (fun (src, scenario, seed, n_insns) ->
      let cached = make_cpu ~seed ~block_cache:4 src in
      let uncached = make_cpu ~seed ~block_cache:0 src in
      bc_drive cached ~scenario ~n_insns = bc_drive uncached ~scenario ~n_insns)

let test_block_cache_hits_and_stats () =
  let src = "li r1, 50\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
  let cpu = make_cpu src in
  Alcotest.(check bool) "enabled by default" true
    (Machine.Cpu.block_cache_enabled cpu);
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  let hits, misses, _ = Machine.Cpu.block_cache_stats cpu in
  Alcotest.(check bool) "hot loop hits the cache" true (hits > 0);
  Alcotest.(check bool) "cold blocks missed first" true (misses > 0);
  Alcotest.(check bool) "decoded blocks reported" true
    (res.Machine.Cpu.blocks_decoded > 0);
  let off = make_cpu ~block_cache:0 src in
  Alcotest.(check bool) "disabled when capacity 0" false
    (Machine.Cpu.block_cache_enabled off);
  ignore (run off);
  Alcotest.(check (triple int int int)) "no stats when disabled" (0, 0, 0)
    (Machine.Cpu.block_cache_stats off)

(* Self-modifying code: patching an instruction must invalidate the
   cached block spanning it, and re-execution must run the new bytes. *)
let test_patch_code_invalidates () =
  let src =
    "li r1, 5\nli r2, 0\nli r3, 0\nl:\nadd r3, r3, 1\nsub r1, r1, 1\nbne r1, r2, l\nhalt"
  in
  let cpu = make_cpu src in
  (match run cpu with
  | { Machine.Cpu.stop = Machine.Cpu.Halted; _ } -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int) "r3 sums 1 per iteration" 5 (Machine.Cpu.get_reg cpu 3);
  let hits_before, _, _ = Machine.Cpu.block_cache_stats cpu in
  Alcotest.(check bool) "loop block was cached" true (hits_before > 0);
  (* Overwrite the add-1 with an add-10, rewind, run again: the stale
     cached block must not serve the old instruction. *)
  (match
     Machine.Cpu.patch_code cpu ~pc:3
       (Isa.Insn.Alu (Isa.Insn.Add, 3, 3, Isa.Insn.Imm 10))
   with
  | Ok () -> ()
  | Error m -> Alcotest.failf "patch_code: %s" m);
  (match Machine.Cpu.code_insn cpu 3 with
  | Some (Isa.Insn.Alu (Isa.Insn.Add, 3, 3, Isa.Insn.Imm 10)) -> ()
  | _ -> Alcotest.fail "code_insn does not reflect the patch");
  Machine.Cpu.set_pc cpu 0;
  Machine.Cpu.set_reg cpu 3 0;
  (match run cpu with
  | { Machine.Cpu.stop = Machine.Cpu.Halted; _ } -> ()
  | _ -> Alcotest.fail "expected halt after patch");
  Alcotest.(check int) "patched loop sums 10 per iteration" 50
    (Machine.Cpu.get_reg cpu 3);
  let _, _, invalidations = Machine.Cpu.block_cache_stats cpu in
  Alcotest.(check bool) "stale block invalidated" true (invalidations > 0)

let test_patch_code_validation () =
  let cpu = make_cpu "nop\nhalt" in
  (match Machine.Cpu.patch_code cpu ~pc:99 Isa.Insn.Nop with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range pc accepted");
  match Machine.Cpu.patch_code cpu ~pc:0 (Isa.Insn.Li (99, 0)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "malformed instruction accepted"

(* The same SMC program must behave identically cached and uncached —
   the invalidation protocol, not just the happy path, is differential. *)
let test_patch_code_differential () =
  let run_with block_cache =
    let src =
      "li r1, 5\nli r2, 0\nli r3, 0\nl:\nadd r3, r3, 1\nsub r1, r1, 1\nbne r1, r2, l\nhalt"
    in
    let cpu = make_cpu ~block_cache src in
    ignore (run cpu);
    (match
       Machine.Cpu.patch_code cpu ~pc:3
         (Isa.Insn.Alu (Isa.Insn.Add, 3, 3, Isa.Insn.Imm 7))
     with
    | Ok () -> ()
    | Error m -> Alcotest.failf "patch_code: %s" m);
    Machine.Cpu.set_pc cpu 0;
    Machine.Cpu.set_reg cpu 3 0;
    ignore (run cpu);
    ( List.init 16 (Machine.Cpu.get_reg cpu),
      Machine.Cpu.instructions cpu,
      Machine.Cpu.branches cpu,
      Machine.Cpu.cycles cpu )
  in
  Alcotest.(check bool) "cached = uncached across a patch" true
    (run_with 4096 = run_with 0)

let qcheck_register_ops =
  QCheck.Test.make ~name:"add/sub roundtrip at machine level" ~count:200
    QCheck.(pair int int)
    (fun (a, b) ->
      let src = Printf.sprintf "li r1, %d\nli r2, %d\nadd r3, r1, r2\nsub r4, r3, r2\nhalt" a b in
      let cpu = make_cpu src in
      ignore (run cpu);
      Machine.Cpu.get_reg cpu 4 = a && Machine.Cpu.get_reg cpu 3 = a + b)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "machine"
    [
      ( "exec",
        [
          tc "arithmetic" `Quick test_arithmetic;
          tc "memory roundtrip" `Quick test_memory_roundtrip;
          tc "segv" `Quick test_segv_reported;
          tc "bad pc" `Quick test_bad_pc_on_wild_jump;
          tc "syscall stop" `Quick test_syscall_stops_on_insn;
          QCheck_alcotest.to_alcotest qcheck_register_ops;
        ] );
      ( "counters",
        [
          tc "branch count exact" `Quick test_branches_and_counter;
          tc "branch counter deterministic" `Quick test_branch_counter_deterministic;
          tc "branch overflow + skid bounded" `Quick test_branch_overflow_with_skid;
          tc "cycle overflow" `Quick test_cycle_overflow;
          tc "insn overflow" `Quick test_insn_overflow;
          tc "insn counter overcounts" `Quick test_insn_counter_overcounts_on_traps;
        ] );
      ( "tracing",
        [
          tc "nondet untrapped" `Quick test_nondet_untrapped_executes;
          tc "nondet trapped" `Quick test_nondet_trapped;
          tc "breakpoint" `Quick test_breakpoint;
          tc "breakpoint re-traps in loop" `Quick test_breakpoint_in_loop_retraps;
        ] );
      ( "fork-and-faults",
        [
          tc "fork copies arch state" `Quick test_fork_copies_arch_state;
          tc "fault injection" `Quick test_fault_injection_flips_bit;
          tc "fault injection validation" `Quick test_fault_injection_validation;
          tc "cow charges sys cycles" `Quick test_cow_cycles_counted_as_sys;
        ] );
      ( "block-cache",
        [
          tc "hits, misses, decoded reported" `Quick
            test_block_cache_hits_and_stats;
          tc "patch_code invalidates" `Quick test_patch_code_invalidates;
          tc "patch_code validation" `Quick test_patch_code_validation;
          tc "patch_code differential" `Quick test_patch_code_differential;
          QCheck_alcotest.to_alcotest qcheck_block_cache_differential;
          QCheck_alcotest.to_alcotest qcheck_block_cache_differential_tiny;
        ] );
    ]
