(* Unit tests of the CPU interpreter and its monitoring hardware. *)

let page_size = 4096

let null_env =
  {
    Machine.Cpu.core_id = 0;
    read_tsc = (fun () -> 12345);
    read_rand = (fun () -> 777);
    mem_access = (fun ~write:_ ~frame:_ -> 0);
    mem_access_cow = (fun ~frame:_ ~old_frame:_ -> 0);
    cow_extra_cycles = 100;
    mul_cycles = 3;
    div_cycles = 12;
  }

let make_cpu ?(seed = 1L) src =
  let program = Isa.Asm.assemble_exn src in
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  List.iter
    (fun { Isa.Program.base; bytes } ->
      Mem.Address_space.write_bytes_map aspace ~addr:base bytes)
    program.Isa.Program.data;
  Machine.Cpu.create ~rng:(Util.Rng.create ~seed) ~program ~aspace ()

let run ?(max_cycles = 1_000_000) cpu = Machine.Cpu.run cpu ~env:null_env ~max_cycles

let test_arithmetic () =
  let cpu =
    make_cpu
      {|
        li r1, 10
        li r2, 3
        add r3, r1, r2     ; 13
        sub r4, r1, r2     ; 7
        mul r5, r1, r2     ; 30
        div r6, r1, r2     ; 3
        rem r7, r1, r2     ; 1
        and r8, r1, r2     ; 2
        or r9, r1, r2      ; 11
        xor r10, r1, r2    ; 9
        shl r11, r1, 2     ; 40
        shr r12, r1, 1     ; 5
        halt
      |}
  in
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "did not halt");
  let reg = Machine.Cpu.get_reg cpu in
  List.iter
    (fun (r, expected) -> Alcotest.(check int) (Printf.sprintf "r%d" r) expected (reg r))
    [ (3, 13); (4, 7); (5, 30); (6, 3); (7, 1); (8, 2); (9, 11); (10, 9);
      (11, 40); (12, 5) ]

let test_branches_and_counter () =
  (* A loop with a known branch count: 10 iterations of bne + the final
     not-taken bne = 10 branches total (retired branches count taken and
     not-taken alike). *)
  let cpu =
    make_cpu
      {|
        li r1, 10
        li r2, 0
      loop:
        sub r1, r1, 1
        bne r1, r2, loop
        halt
      |}
  in
  ignore (run cpu);
  Alcotest.(check int) "branch counter" 10 (Machine.Cpu.branches cpu)

let test_branch_counter_deterministic () =
  let count seed =
    let cpu = make_cpu ~seed "li r1, 100\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
    ignore (run cpu);
    Machine.Cpu.branches cpu
  in
  Alcotest.(check int) "independent of noise seed" (count 1L) (count 999L)

let test_memory_roundtrip () =
  let cpu =
    make_cpu
      {|
      .zero 0x1000 4096
        li r1, 0x1000
        li r2, 424242
        store r2, r1, 16
        load r3, r1, 16
        store8 r3, r1, 100
        load8 r4, r1, 100
        halt
      |}
  in
  ignore (run cpu);
  Alcotest.(check int) "load64" 424242 (Machine.Cpu.get_reg cpu 3);
  Alcotest.(check int) "load8 truncates" (424242 land 0xFF)
    (Machine.Cpu.get_reg cpu 4)

let test_segv_reported () =
  let cpu = make_cpu "li r1, 0x800000\nload r2, r1, 0\nhalt" in
  let res = run cpu in
  match res.Machine.Cpu.stop with
  | Machine.Cpu.Fault_stop (Machine.Cpu.Segv { addr = 0x800000; write = false }) -> ()
  | _ -> Alcotest.fail "expected Segv"

let test_bad_pc_on_wild_jump () =
  let cpu = make_cpu "li r1, 99999\njr r1\nhalt" in
  let res = run cpu in
  match res.Machine.Cpu.stop with
  | Machine.Cpu.Fault_stop (Machine.Cpu.Bad_pc 99999) -> ()
  | _ -> Alcotest.fail "expected Bad_pc"

let test_syscall_stops_on_insn () =
  let cpu = make_cpu "li r0, 9\nsyscall\nhalt" in
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Syscall_stop -> ()
  | _ -> Alcotest.fail "expected Syscall_stop");
  Alcotest.(check int) "pc on syscall" 1 (Machine.Cpu.get_pc cpu);
  (* Completing the syscall is the tracer's job; emulate and continue. *)
  Machine.Cpu.set_reg cpu 0 42;
  Machine.Cpu.set_pc cpu 2;
  let res = run cpu in
  match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt after resume"

let test_nondet_untrapped_executes () =
  let cpu = make_cpu "rdtsc r1\nrdcoreid r2\nrdrand r3\nhalt" in
  ignore (run cpu);
  Alcotest.(check int) "tsc from env" 12345 (Machine.Cpu.get_reg cpu 1);
  Alcotest.(check int) "coreid from env" 0 (Machine.Cpu.get_reg cpu 2);
  Alcotest.(check int) "rand from env" 777 (Machine.Cpu.get_reg cpu 3)

let test_nondet_trapped () =
  let cpu = make_cpu "rdtsc r1\nhalt" in
  Machine.Cpu.set_nondet_trap cpu true;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Nondet_stop (Isa.Insn.Rdtsc 1) -> ()
  | _ -> Alcotest.fail "expected Nondet_stop");
  (* Tracer emulates. *)
  Machine.Cpu.set_reg cpu 1 555;
  Machine.Cpu.set_pc cpu 1;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int) "emulated value survives" 555 (Machine.Cpu.get_reg cpu 1)

let test_breakpoint () =
  let cpu = make_cpu "li r1, 1\nli r2, 2\nli r3, 3\nhalt" in
  Machine.Cpu.set_breakpoint cpu 2;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Breakpoint_stop -> ()
  | _ -> Alcotest.fail "expected Breakpoint_stop");
  Alcotest.(check int) "pc at bp" 2 (Machine.Cpu.get_pc cpu);
  Alcotest.(check int) "r3 not yet written" 0 (Machine.Cpu.get_reg cpu 3);
  (* Resume without clearing: must not re-trap on the same spot. *)
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int) "r3 written after resume" 3 (Machine.Cpu.get_reg cpu 3)

let test_breakpoint_in_loop_retraps () =
  let cpu =
    make_cpu "li r1, 3\nli r2, 0\nloop:\nsub r1, r1, 1\nbne r1, r2, loop\nhalt"
  in
  Machine.Cpu.set_breakpoint cpu 2;
  let hits = ref 0 in
  let rec go () =
    let res = run cpu in
    match res.Machine.Cpu.stop with
    | Machine.Cpu.Breakpoint_stop ->
      incr hits;
      go ()
    | Machine.Cpu.Halted -> ()
    | _ -> Alcotest.fail "unexpected stop"
  in
  go ();
  Alcotest.(check int) "hit once per iteration" 3 !hits

let test_branch_overflow_with_skid () =
  (* The overflow must arrive at or after the target (never before) and
     within max_skid branches of it. *)
  let src = "li r1, 1000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
  for seed = 1 to 20 do
    let cpu = make_cpu ~seed:(Int64.of_int seed) src in
    Machine.Cpu.arm_branch_overflow cpu ~target:100;
    let res = run cpu in
    (match res.Machine.Cpu.stop with
    | Machine.Cpu.Counter_overflow_stop -> ()
    | _ -> Alcotest.fail "expected overflow");
    let b = Machine.Cpu.branches cpu in
    if b < 100 || b > 100 + Machine.Cpu.max_skid cpu then
      Alcotest.failf "overflow at %d branches (target 100, max skid %d)" b
        (Machine.Cpu.max_skid cpu)
  done

let test_cycle_overflow () =
  let cpu = make_cpu "li r1, 100000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
  Machine.Cpu.arm_cycle_overflow cpu ~target:5000;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Cycle_overflow_stop -> ()
  | _ -> Alcotest.fail "expected cycle overflow");
  Alcotest.(check bool) "at/after target" true (Machine.Cpu.cycles cpu >= 5000)

let test_insn_overflow () =
  let cpu = make_cpu "li r1, 100000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt" in
  Machine.Cpu.arm_insn_overflow cpu ~target:1000;
  let res = run cpu in
  (match res.Machine.Cpu.stop with
  | Machine.Cpu.Insn_overflow_stop -> ()
  | _ -> Alcotest.fail "expected insn overflow");
  Alcotest.(check bool) "at/after target" true
    (Machine.Cpu.instructions cpu >= 1000)

let test_insn_counter_overcounts_on_traps () =
  (* Two CPUs running the same program with syscall traps but different
     noise seeds disagree on the instruction counter — the nondeterminism
     that rules instruction counts out for execution-point replay. *)
  let src =
    "li r5, 50\nli r6, 0\nl:\nli r0, 9\nsyscall\nsub r5, r5, 1\nbne r5, r6, l\nhalt"
  in
  let final_count seed =
    let cpu = make_cpu ~seed src in
    let rec go () =
      let res = run cpu in
      match res.Machine.Cpu.stop with
      | Machine.Cpu.Syscall_stop ->
        Machine.Cpu.set_reg cpu 0 0;
        Machine.Cpu.set_pc cpu (Machine.Cpu.get_pc cpu + 1);
        go ()
      | Machine.Cpu.Halted -> Machine.Cpu.instructions cpu
      | _ -> Alcotest.fail "unexpected stop"
    in
    go ()
  in
  let counts = List.init 8 (fun i -> final_count (Int64.of_int (i + 1))) in
  let distinct = List.sort_uniq compare counts in
  Alcotest.(check bool)
    (Printf.sprintf "counts vary across seeds (%d distinct)" (List.length distinct))
    true
    (List.length distinct > 1)

let test_fork_copies_arch_state () =
  let cpu = make_cpu "li r1, 7\nli r2, 9\nhalt" in
  ignore (run cpu);
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace2 = Mem.Address_space.create alloc in
  let child =
    Machine.Cpu.fork cpu ~rng:(Util.Rng.create ~seed:5L) ~aspace:aspace2
  in
  Alcotest.(check int) "regs copied" 7 (Machine.Cpu.get_reg child 1);
  Alcotest.(check int) "pc copied" (Machine.Cpu.get_pc cpu) (Machine.Cpu.get_pc child);
  Alcotest.(check int) "counters reset" 0 (Machine.Cpu.branches child)

let test_fault_injection_flips_bit () =
  let cpu = make_cpu "li r1, 0\nnop\nnop\nnop\nhalt" in
  Machine.Cpu.arm_fault_injection cpu ~after_instructions:2 ~reg:1 ~bit:4;
  ignore (run cpu);
  Alcotest.(check bool) "injected" true (Machine.Cpu.fault_injected cpu);
  Alcotest.(check int) "bit 4 flipped" 16 (Machine.Cpu.get_reg cpu 1)

let test_fault_injection_validation () =
  let cpu = make_cpu "halt" in
  (try
     Machine.Cpu.arm_fault_injection cpu ~after_instructions:0 ~reg:99 ~bit:0;
     Alcotest.fail "bad reg accepted"
   with Invalid_argument _ -> ());
  (* Bit 63 is legal (a real ECC model covers all 64 lines); on register
     targets it is a masked no-op because OCaml ints carry 63 bits. *)
  Machine.Cpu.arm_fault_injection cpu ~after_instructions:0 ~reg:0 ~bit:63;
  try
    Machine.Cpu.arm_fault_injection cpu ~after_instructions:0 ~reg:0 ~bit:64;
    Alcotest.fail "bad bit accepted"
  with Invalid_argument _ -> ()

let test_cow_cycles_counted_as_sys () =
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  Mem.Address_space.map_range aspace ~addr:0 ~len:page_size
    Mem.Page_table.Read_write;
  let program =
    Isa.Asm.assemble_exn "li r1, 0\nli r2, 5\nstore r2, r1, 0\nhalt"
  in
  let cpu =
    Machine.Cpu.create ~rng:(Util.Rng.create ~seed:1L) ~program ~aspace ()
  in
  (* Fork so the store COWs. *)
  let _child = Mem.Address_space.fork aspace in
  let res = run cpu in
  ignore res;
  Alcotest.(check bool) "sys cycles charged" true
    (Machine.Cpu.sys_cycles_total cpu >= 100)

let qcheck_register_ops =
  QCheck.Test.make ~name:"add/sub roundtrip at machine level" ~count:200
    QCheck.(pair int int)
    (fun (a, b) ->
      let src = Printf.sprintf "li r1, %d\nli r2, %d\nadd r3, r1, r2\nsub r4, r3, r2\nhalt" a b in
      let cpu = make_cpu src in
      ignore (run cpu);
      Machine.Cpu.get_reg cpu 4 = a && Machine.Cpu.get_reg cpu 3 = a + b)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "machine"
    [
      ( "exec",
        [
          tc "arithmetic" `Quick test_arithmetic;
          tc "memory roundtrip" `Quick test_memory_roundtrip;
          tc "segv" `Quick test_segv_reported;
          tc "bad pc" `Quick test_bad_pc_on_wild_jump;
          tc "syscall stop" `Quick test_syscall_stops_on_insn;
          QCheck_alcotest.to_alcotest qcheck_register_ops;
        ] );
      ( "counters",
        [
          tc "branch count exact" `Quick test_branches_and_counter;
          tc "branch counter deterministic" `Quick test_branch_counter_deterministic;
          tc "branch overflow + skid bounded" `Quick test_branch_overflow_with_skid;
          tc "cycle overflow" `Quick test_cycle_overflow;
          tc "insn overflow" `Quick test_insn_overflow;
          tc "insn counter overcounts" `Quick test_insn_counter_overcounts_on_traps;
        ] );
      ( "tracing",
        [
          tc "nondet untrapped" `Quick test_nondet_untrapped_executes;
          tc "nondet trapped" `Quick test_nondet_trapped;
          tc "breakpoint" `Quick test_breakpoint;
          tc "breakpoint re-traps in loop" `Quick test_breakpoint_in_loop_retraps;
        ] );
      ( "fork-and-faults",
        [
          tc "fork copies arch state" `Quick test_fork_copies_arch_state;
          tc "fault injection" `Quick test_fault_injection_flips_bit;
          tc "fault injection validation" `Quick test_fault_injection_validation;
          tc "cow charges sys cycles" `Quick test_cow_cycles_counted_as_sys;
        ] );
    ]
