(* Integration tests of the simulated kernel, scheduler, signals and
   energy model. *)

let testing = Platform.testing

let fresh ?(seed = 7L) () = Sim_os.Engine.create ~platform:testing ~seed ()

let assemble = Isa.Asm.assemble_exn

(* A program that writes "hi\n" to stdout and exits 0. *)
let hello_src =
  {|
  .name hello
  .data 0x2000 "hi\n"
    li r0, 1      ; write
    li r1, 1      ; stdout
    li r2, 0x2000
    li r3, 3
    syscall
    li r0, 0      ; exit
    li r1, 0
    syscall
|}

let run_to_completion ?(max_ns = 50_000_000) eng =
  Sim_os.Engine.run ~max_ns eng

let test_hello () =
  let eng = fresh () in
  let pid =
    Sim_os.Engine.spawn eng ~program:(assemble hello_src) ~core:0 ()
  in
  run_to_completion eng;
  Alcotest.(check string) "stdout" "hi\n" (Sim_os.Engine.output eng);
  match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 0 -> ()
  | _ -> Alcotest.fail "process did not exit cleanly"

let test_exit_status () =
  let eng = fresh () in
  let prog = assemble "li r0, 0\nli r1, 42\nsyscall" in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 42 -> ()
  | Sim_os.Engine.Exited n -> Alcotest.failf "exit status %d, wanted 42" n
  | _ -> Alcotest.fail "still live")

let test_brk_and_memory () =
  let eng = fresh () in
  (* Grow the heap, store a value, load it back, use it as exit status. *)
  let prog =
    assemble
      {|
      .brk 0x10000
        li r0, 5         ; brk
        li r1, 0x14000
        syscall
        li r5, 0x13ff8
        li r6, 7
        store r6, r5, 0
        load r7, r5, 0
        li r0, 0
        mov r1, r7
        syscall
      |}
  in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 7 -> ()
  | Sim_os.Engine.Exited n -> Alcotest.failf "exit status %d, wanted 7" n
  | _ -> Alcotest.fail "still live")

let test_segfault_kills () =
  let eng = fresh () in
  let prog = assemble "li r5, 0x900000\nload r6, r5, 0\nli r0, 0\nsyscall" in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited n ->
    Alcotest.(check int) "killed by SIGSEGV" (128 + Sim_os.Sig_num.sigsegv) n
  | _ -> Alcotest.fail "still live")

let test_div_by_zero () =
  let eng = fresh () in
  let prog = assemble "li r1, 4\nli r2, 0\ndiv r3, r1, r2\nli r0, 0\nsyscall" in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited n ->
    Alcotest.(check int) "killed by SIGFPE" (128 + Sim_os.Sig_num.sigfpe) n
  | _ -> Alcotest.fail "still live")

let test_read_dev_zero () =
  let eng = fresh () in
  let prog =
    assemble
      {|
      .data 0x2000 "/dev/zero"
      .brk 0x10000
        li r0, 3         ; open
        li r1, 0x2000
        li r2, 9
        li r3, 0
        syscall
        mov r10, r0      ; fd
        li r0, 5         ; brk to get a buffer
        li r1, 0x14000
        syscall
        li r0, 2         ; read
        mov r1, r10
        li r2, 0x10000
        li r3, 64
        syscall
        li r0, 0
        mov r1, r0
        li r1, 0
        syscall
      |}
  in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 0 -> ()
  | _ -> Alcotest.fail "read program did not finish")

let test_gettime_monotonic () =
  let eng = fresh () in
  (* Two gettime calls; exit status 1 if the second is >= the first. *)
  let prog =
    assemble
      {|
        li r0, 10
        syscall
        mov r10, r0
        li r0, 10
        syscall
        mov r11, r0
        li r1, 0
        bge r11, r10, good
        jmp bad
      good:
        li r1, 1
      bad:
        li r0, 0
        syscall
      |}
  in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 1 -> ()
  | Sim_os.Engine.Exited n -> Alcotest.failf "status %d" n
  | _ -> Alcotest.fail "still live")

let test_signal_handler () =
  let eng = fresh () in
  (* Register a SIGUSR1 handler that sets a flag in memory (sigreturn
     restores registers, so the handler must communicate through memory),
     then spin on the flag; exits with the flag value. The handler entry
     is instruction index 11 — labels are not first-class integers in the
     asm syntax, so the sigaction argument is written as a literal. *)
  let prog =
    assemble
      {|
      .zero 0x2000 8
        li r0, 11        ; sigaction
        li r1, 10        ; SIGUSR1
        li r2, 11        ; handler instruction index
        syscall
        li r14, 0x2000
      spin:
        load r12, r14, 0
        li r13, 1
        bne r12, r13, spin
        li r0, 0
        mov r1, r12
        syscall
      handler:
        li r11, 0x2000
        li r10, 1
        store r10, r11, 0
        li r0, 12        ; sigreturn
        syscall
      |}
  in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  (* Let it register the handler, then signal it. *)
  for _ = 1 to 3 do
    Sim_os.Engine.step_quantum eng
  done;
  Sim_os.Engine.send_signal eng pid Sim_os.Sig_num.sigusr1;
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 1 -> ()
  | Sim_os.Engine.Exited n -> Alcotest.failf "status %d, wanted 1" n
  | _ -> Alcotest.fail "still live")

let test_unhandled_signal_kills () =
  let eng = fresh () in
  let prog = assemble "spin:\njmp spin" in
  let pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  Sim_os.Engine.step_quantum eng;
  Sim_os.Engine.send_signal eng pid Sim_os.Sig_num.sigint;
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited n ->
    Alcotest.(check int) "SIGINT status" (128 + Sim_os.Sig_num.sigint) n
  | _ -> Alcotest.fail "still live")

let test_mmap_aslr_differs () =
  (* Two identical untraced processes get different mmap addresses. *)
  let eng = fresh () in
  let src =
    {|
      li r0, 6          ; mmap
      li r1, 0
      li r2, 8192
      li r3, 3          ; RW
      li r4, 3          ; PRIVATE|ANON
      li r5, -1
      syscall
      mov r10, r0
      store r10, r10, 0 ; touch it
      li r0, 1          ; write the address? no — just exit with low bits
      li r0, 0
      mov r1, r10
      syscall
    |}
  in
  let prog = assemble src in
  let pid1 = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  let pid2 = Sim_os.Engine.spawn eng ~program:prog ~core:1 () in
  run_to_completion eng;
  let status pid =
    match Sim_os.Engine.state eng pid with
    | Sim_os.Engine.Exited n -> n
    | _ -> Alcotest.fail "still live"
  in
  let a1 = status pid1 and a2 = status pid2 in
  if a1 = a2 then Alcotest.failf "ASLR gave both processes address %#x" a1

let test_energy_positive_and_grows () =
  let eng = fresh () in
  let prog = assemble "li r5, 1000000\nspin:\naddi:\n sub r5, r5, 1\n li r6, 0\n bne r5, r6, spin\nli r0, 0\nli r1, 0\nsyscall" in
  let _pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
  let e0 = Sim_os.Engine.energy_j eng in
  Alcotest.(check bool) "starts at zero" true (e0 = 0.0);
  run_to_completion eng;
  let e1 = Sim_os.Engine.energy_j eng in
  Alcotest.(check bool) "energy grew" true (e1 > 0.0);
  let breakdown = Sim_os.Engine.energy_breakdown_j eng in
  let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 breakdown in
  Alcotest.(check (float 1e-9)) "breakdown sums to total" e1 total

let test_dvfs_level_changes () =
  let eng = fresh () in
  Sim_os.Engine.set_dvfs_level eng ~cluster:1 ~level:0;
  Alcotest.(check int) "level set" 0 (Sim_os.Engine.dvfs_level eng ~cluster:1);
  (try
     Sim_os.Engine.set_dvfs_level eng ~cluster:1 ~level:99;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_determinism () =
  let run_once () =
    let eng = fresh ~seed:99L () in
    let prog = assemble hello_src in
    let _pid = Sim_os.Engine.spawn eng ~program:prog ~core:0 () in
    run_to_completion eng;
    (Sim_os.Engine.now_ns eng, Sim_os.Engine.energy_j eng)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_little_core_slower () =
  (* The same compute loop takes longer on a little core. *)
  let src = "li r5, 200000\nspin:\n sub r5, r5, 1\n li r6, 0\n bne r5, r6, spin\nli r0, 0\nli r1, 0\nsyscall" in
  let time_on core =
    let eng = fresh () in
    let pid = Sim_os.Engine.spawn eng ~program:(assemble src) ~core () in
    run_to_completion eng;
    let st = Sim_os.Engine.proc_stats eng pid in
    st.Sim_os.Engine.ended_ns - st.Sim_os.Engine.started_ns
  in
  let big = time_on 0 in
  let little = time_on 2 in
  Alcotest.(check bool)
    (Printf.sprintf "little (%d ns) slower than big (%d ns)" little big)
    true
    (little > big)

(* Self-modifying code through the kernel: the patch_code syscall
   rewrites an instruction the program already executed (so the block
   spanning it is cached), and the next loop trip must run the new
   bytes — the syscall is the Harvard-layout analogue of a store to a
   code page plus icache flush. *)
let test_patch_code_syscall () =
  let word =
    match Isa.Insn.encode (Isa.Insn.Li (4, 77)) with
    | Some w -> w
    | None -> Alcotest.fail "li r4, 77 does not encode"
  in
  let src =
    Printf.sprintf
      {|
        li r5, 2         ; trips remaining
        li r6, 0
      loop:
        li r4, 33        ; patch target: becomes "li r4, 77"
        li r0, 14        ; patch_code
        li r1, 2
        li r2, %d
        syscall
        sub r5, r5, 1
        bne r5, r6, loop
        li r0, 0         ; exit with the last trip's r4
        mov r1, r4
        syscall
      |}
      word
  in
  let eng = fresh () in
  let pid = Sim_os.Engine.spawn eng ~program:(assemble src) ~core:0 () in
  run_to_completion eng;
  (match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 77 -> ()
  | Sim_os.Engine.Exited n ->
    Alcotest.failf "exit status %d: the patched instruction did not run" n
  | _ -> Alcotest.fail "still live");
  let _, _, invalidations = Sim_os.Engine.block_cache_totals eng in
  Alcotest.(check bool) "cached block was invalidated" true
    (invalidations > 0)

let test_patch_code_syscall_rejects_junk () =
  (* An undecodable word must fail with EINVAL (-22), leaving the code
     image untouched, and the program must be able to observe that. *)
  let src =
    {|
      li r0, 14
      li r1, 0
      li r2, -1        ; no instruction encodes to all-ones
      syscall
      li r4, 1
      blt r0, r4, bad  ; r0 = -22 < 1: the expected path
      li r0, 0
      li r1, 9
      syscall
    bad:
      li r0, 0
      li r1, 22
      syscall
    |}
  in
  let eng = fresh () in
  let pid = Sim_os.Engine.spawn eng ~program:(assemble src) ~core:0 () in
  run_to_completion eng;
  match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited 22 -> ()
  | Sim_os.Engine.Exited n -> Alcotest.failf "exit status %d, wanted 22" n
  | _ -> Alcotest.fail "still live"

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sim_os"
    [
      ( "kernel",
        [
          tc "hello world writes stdout" `Quick test_hello;
          tc "exit status propagates" `Quick test_exit_status;
          tc "brk + load/store" `Quick test_brk_and_memory;
          tc "segfault kills" `Quick test_segfault_kills;
          tc "div by zero kills" `Quick test_div_by_zero;
          tc "read /dev/zero" `Quick test_read_dev_zero;
          tc "gettime monotonic" `Quick test_gettime_monotonic;
          tc "mmap ASLR differs" `Quick test_mmap_aslr_differs;
          tc "patch_code syscall (SMC)" `Quick test_patch_code_syscall;
          tc "patch_code rejects junk" `Quick test_patch_code_syscall_rejects_junk;
        ] );
      ( "signals",
        [
          tc "handler + sigreturn" `Quick test_signal_handler;
          tc "unhandled signal kills" `Quick test_unhandled_signal_kills;
        ] );
      ( "model",
        [
          tc "energy accounting" `Quick test_energy_positive_and_grows;
          tc "dvfs levels" `Quick test_dvfs_level_changes;
          tc "determinism" `Quick test_determinism;
          tc "little core slower" `Quick test_little_core_slower;
        ] );
    ]
