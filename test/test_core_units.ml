(* Direct unit tests of the Parallaft core-library leaf modules:
   execution points, the R/R log, the comparator and the dirty-tracker
   backends. The coordinator integration is covered by test_parallaft. *)

let page_size = 4096

let make_cpu ?(seed = 1L) src =
  let program = Isa.Asm.assemble_exn src in
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  List.iter
    (fun { Isa.Program.base; bytes } ->
      Mem.Address_space.write_bytes_map aspace ~addr:base bytes)
    program.Isa.Program.data;
  Machine.Cpu.create ~rng:(Util.Rng.create ~seed) ~program ~aspace ()

let null_env =
  {
    Machine.Cpu.core_id = 0;
    read_tsc = (fun () -> 0);
    read_rand = (fun () -> 0);
    mem_access = (fun ~write:_ ~frame:_ -> 0);
    mem_access_cow = (fun ~frame:_ ~old_frame:_ -> 0);
    cow_extra_cycles = 0;
    mul_cycles = 3;
    div_cycles = 12;
  }

let loop_src = "li r1, 10000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt"

(* Drive a CPU through its replay plan, returning every Reached point. *)
let drive cpu replay =
  let reached = ref [] in
  let rec go () =
    let res = Machine.Cpu.run cpu ~env:null_env ~max_cycles:10_000_000 in
    let handle adv =
      match (adv : Parallaft.Exec_point.advance) with
      | Parallaft.Exec_point.Reached pt ->
        reached := pt :: !reached;
        Parallaft.Exec_point.next_target replay;
        if not (Parallaft.Exec_point.finished replay) then go ()
      | Parallaft.Exec_point.Keep_running -> go ()
    in
    match res.Machine.Cpu.stop with
    | Machine.Cpu.Counter_overflow_stop ->
      handle (Parallaft.Exec_point.on_branch_overflow replay)
    | Machine.Cpu.Breakpoint_stop ->
      handle (Parallaft.Exec_point.on_breakpoint replay)
    | Machine.Cpu.Halted -> ()
    | _ -> Alcotest.fail "unexpected stop during replay"
  in
  go ();
  List.rev !reached

let test_replay_single_target () =
  let cpu = make_cpu loop_src in
  let target = { Parallaft.Exec_point.branches = 5000; pc = 2 } in
  let replay = Parallaft.Exec_point.start_replay ~targets:[ target ] ~cpu in
  let reached = drive cpu replay in
  Alcotest.(check int) "one point" 1 (List.length reached);
  Alcotest.(check int) "exact branch count" 5000 (Machine.Cpu.branches cpu);
  Alcotest.(check int) "exact pc" 2 (Machine.Cpu.get_pc cpu)

let test_replay_multiple_targets () =
  let cpu = make_cpu loop_src in
  let targets =
    List.map
      (fun b -> { Parallaft.Exec_point.branches = b; pc = 2 })
      [ 100; 2500; 7000 ]
  in
  let replay = Parallaft.Exec_point.start_replay ~targets ~cpu in
  let reached = drive cpu replay in
  Alcotest.(check int) "three points" 3 (List.length reached);
  Alcotest.(check bool) "finished" true (Parallaft.Exec_point.finished replay)

let test_replay_short_distance_skips_counter () =
  (* A target closer than the skid margin must still be hit exactly. *)
  let cpu = make_cpu loop_src in
  let target = { Parallaft.Exec_point.branches = 2; pc = 2 } in
  let replay = Parallaft.Exec_point.start_replay ~targets:[ target ] ~cpu in
  let reached = drive cpu replay in
  Alcotest.(check int) "one point" 1 (List.length reached);
  Alcotest.(check int) "branches" 2 (Machine.Cpu.branches cpu)

let test_replay_exact_across_seeds () =
  (* Skid is random; the stop point must not be. *)
  for seed = 1 to 15 do
    let cpu = make_cpu ~seed:(Int64.of_int seed) loop_src in
    let target = { Parallaft.Exec_point.branches = 1234; pc = 2 } in
    let replay = Parallaft.Exec_point.start_replay ~targets:[ target ] ~cpu in
    ignore (drive cpu replay);
    Alcotest.(check int)
      (Printf.sprintf "seed %d stops exactly" seed)
      1234 (Machine.Cpu.branches cpu)
  done

let qcheck_replay_lands_exactly =
  QCheck.Test.make
    ~name:"replay lands exactly on (pc, branches) under random skid" ~count:60
    QCheck.(pair (1 -- 4000) (1 -- 10_000))
    (fun (target, seed) ->
      let cpu = make_cpu ~seed:(Int64.of_int seed) loop_src in
      let point = { Parallaft.Exec_point.branches = target; pc = 2 } in
      let replay = Parallaft.Exec_point.start_replay ~targets:[ point ] ~cpu in
      let reached = drive cpu replay in
      List.length reached = 1
      && Machine.Cpu.branches cpu = target
      && Machine.Cpu.get_pc cpu = 2)

let test_margin_zero_overruns () =
  (* DESIGN.md §5 decisions 1-2: the branch counter must be armed a full
     skid margin early, because the overflow interrupt only ever lands
     late. Arming at the target itself (margin 0) overruns the execution
     point whenever the hardware draws nonzero skid — the checker sails
     past and can never be walked back. *)
  let target = 1000 in
  let overruns = ref 0 in
  for seed = 1 to 12 do
    let cpu = make_cpu ~seed:(Int64.of_int seed) loop_src in
    Machine.Cpu.arm_branch_overflow cpu ~target;
    let res = Machine.Cpu.run cpu ~env:null_env ~max_cycles:10_000_000 in
    (match res.Machine.Cpu.stop with
    | Machine.Cpu.Counter_overflow_stop -> ()
    | _ -> Alcotest.fail "expected counter overflow");
    let b = Machine.Cpu.branches cpu in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d stops at or after the target" seed)
      true (b >= target);
    if b > target then incr overruns
  done;
  Alcotest.(check bool) "nonzero skid draws overrun the target" true
    (!overruns > 0)

let test_replay_rejects_unsorted () =
  let cpu = make_cpu loop_src in
  try
    ignore
      (Parallaft.Exec_point.start_replay
         ~targets:
           [
             { Parallaft.Exec_point.branches = 50; pc = 2 };
             { Parallaft.Exec_point.branches = 10; pc = 2 };
           ]
         ~cpu);
    Alcotest.fail "unsorted targets accepted"
  with Invalid_argument _ -> ()

let test_rr_log_order_and_cursor () =
  let log = Parallaft.Rr_log.create () in
  let sys result =
    Parallaft.Rr_log.Sys
      { call = Sim_os.Syscall.Getpid; in_data = None; result; effects = [] }
  in
  Parallaft.Rr_log.record log (sys 1);
  Parallaft.Rr_log.record log
    (Parallaft.Rr_log.Ext_signal
       { at = { Parallaft.Exec_point.branches = 3; pc = 0 }; signum = 10 });
  Parallaft.Rr_log.record log (sys 2);
  Alcotest.(check int) "length counts all events" 3 (Parallaft.Rr_log.length log);
  Alcotest.(check int) "one signal point" 1
    (List.length (Parallaft.Rr_log.signal_points log));
  let c = Parallaft.Rr_log.cursor log in
  Alcotest.(check int) "two interactions remain" 2
    (Parallaft.Rr_log.remaining_interactions c);
  (match Parallaft.Rr_log.next_interaction c with
  | Some (Parallaft.Rr_log.Sys { result = 1; _ }) -> ()
  | _ -> Alcotest.fail "first interaction wrong");
  (* Signals are skipped by the interaction cursor. *)
  (match Parallaft.Rr_log.next_interaction c with
  | Some (Parallaft.Rr_log.Sys { result = 2; _ }) -> ()
  | _ -> Alcotest.fail "second interaction wrong");
  Alcotest.(check bool) "exhausted" true (Parallaft.Rr_log.next_interaction c = None)

let test_rr_log_grows_under_cursor () =
  (* RAFT streaming: a cursor must see events appended after creation. *)
  let log = Parallaft.Rr_log.create () in
  let c = Parallaft.Rr_log.cursor log in
  Alcotest.(check bool) "empty at first" true
    (Parallaft.Rr_log.next_interaction c = None);
  Parallaft.Rr_log.record log
    (Parallaft.Rr_log.Nondet { insn = Isa.Insn.Rdtsc 1; value = 42 });
  match Parallaft.Rr_log.next_interaction c with
  | Some (Parallaft.Rr_log.Nondet { value = 42; _ }) -> ()
  | _ -> Alcotest.fail "appended event not visible"

let identical_cpus () =
  let src = ".zero 0x1000 8192\nli r1, 7\nli r2, 0x1000\nstore r1, r2, 0\nhalt" in
  let a = make_cpu src and b = make_cpu src in
  ignore (Machine.Cpu.run a ~env:null_env ~max_cycles:1_000_000);
  ignore (Machine.Cpu.run b ~env:null_env ~max_cycles:1_000_000);
  (a, b)

let compare_states ?cache ~reference ~candidate dirty =
  fst
    (Parallaft.Comparator.compare_states ~hasher:Parallaft.Config.Xxh64_hash
       ?cache ~reference ~candidate ~dirty_vpns:dirty ())

let test_comparator_match () =
  let a, b = identical_cpus () in
  match compare_states ~reference:a ~candidate:b [| 1; 2 |] with
  | Parallaft.Comparator.Match -> ()
  | Parallaft.Comparator.Mismatch m ->
    Alcotest.failf "spurious mismatch: %s" (Parallaft.Detection.mismatch_to_string m)

let test_comparator_register_mismatch () =
  let a, b = identical_cpus () in
  Machine.Cpu.set_reg b 1 999;
  match compare_states ~reference:a ~candidate:b [||] with
  | Parallaft.Comparator.Mismatch (Parallaft.Detection.Register_mismatch { reg = 1; _ })
    ->
    ()
  | _ -> Alcotest.fail "register corruption missed"

let test_comparator_memory_mismatch () =
  let a, b = identical_cpus () in
  Mem.Address_space.store64 (Machine.Cpu.aspace b) 0x1008 31337;
  (* Register state is identical; only memory differs, and only if the
     dirty set covers the corrupted page. *)
  (match compare_states ~reference:a ~candidate:b [| 1 |] with
  | Parallaft.Comparator.Mismatch (Parallaft.Detection.Memory_mismatch _) -> ()
  | _ -> Alcotest.fail "memory corruption missed");
  match compare_states ~reference:a ~candidate:b [| 2 |] with
  | Parallaft.Comparator.Match -> () (* page 2 is untouched on both sides *)
  | _ -> Alcotest.fail "clean page mismatched"

let test_comparator_layout_mismatch () =
  let a, b = identical_cpus () in
  Mem.Address_space.map_range (Machine.Cpu.aspace b) ~addr:0x100000 ~len:page_size
    Mem.Page_table.Read_write;
  let vpn = 0x100000 / page_size in
  match compare_states ~reference:a ~candidate:b [| vpn |] with
  | Parallaft.Comparator.Mismatch (Parallaft.Detection.Layout_mismatch _) -> ()
  | _ -> Alcotest.fail "layout divergence missed"

let test_comparator_pc_mismatch () =
  let a, b = identical_cpus () in
  Machine.Cpu.set_pc b 0;
  match compare_states ~reference:a ~candidate:b [||] with
  | Parallaft.Comparator.Mismatch (Parallaft.Detection.Register_mismatch { reg = -1; _ })
    ->
    ()
  | _ -> Alcotest.fail "pc divergence missed"

let test_union_sorted () =
  Alcotest.(check (array int)) "merge" [| 1; 2; 3; 4; 5 |]
    (Parallaft.Comparator.union_sorted [| 1; 3; 5 |] [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "left empty" [| 1 |]
    (Parallaft.Comparator.union_sorted [||] [| 1 |]);
  Alcotest.(check (array int)) "both empty" [||]
    (Parallaft.Comparator.union_sorted [||] [||])

let qcheck_union_sorted_is_set_union =
  QCheck.Test.make ~name:"union_sorted = sorted set union" ~count:300
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let sa = Array.of_list (List.sort_uniq compare a) in
      let sb = Array.of_list (List.sort_uniq compare b) in
      Parallaft.Comparator.union_sorted sa sb
      = Array.of_list (List.sort_uniq compare (a @ b)))

(* Reference/candidate CPUs over a freshly forked pair of address
   spaces: 8 COW-shared data pages at 0x100000, each seeded with a
   distinct value. Writes then exercise both COW (first touch of a
   shared page) and in-place generation bumps (later touches). *)
let data_base = 0x100000
let data_pages = 8
let data_vpn i = (data_base / page_size) + i

let forked_cpu_pair () =
  let program = Isa.Asm.assemble_exn "halt" in
  let alloc = Mem.Frame.allocator ~page_size in
  let ref_as = Mem.Address_space.create alloc in
  List.iter
    (fun { Isa.Program.base; bytes } ->
      Mem.Address_space.write_bytes_map ref_as ~addr:base bytes)
    program.Isa.Program.data;
  Mem.Address_space.map_range ref_as ~addr:data_base
    ~len:(data_pages * page_size) Mem.Page_table.Read_write;
  for i = 0 to data_pages - 1 do
    Mem.Address_space.store64 ref_as (data_base + (i * page_size)) (1000 + i)
  done;
  let cand_as = Mem.Address_space.fork ref_as in
  let a =
    Machine.Cpu.create ~rng:(Util.Rng.create ~seed:1L) ~program ~aspace:ref_as ()
  in
  let b =
    Machine.Cpu.create ~rng:(Util.Rng.create ~seed:1L) ~program ~aspace:cand_as ()
  in
  (a, b)

let all_data_vpns = Array.init data_pages data_vpn

let test_comparator_identity_short_circuit () =
  let a, b = forked_cpu_pair () in
  let verdict, cs =
    Parallaft.Comparator.compare_states ~hasher:Parallaft.Config.Xxh64_hash
      ~reference:a ~candidate:b ~dirty_vpns:all_data_vpns ()
  in
  (match verdict with
  | Parallaft.Comparator.Match -> ()
  | _ -> Alcotest.fail "identical fork mismatched");
  Alcotest.(check int) "every shared page skipped" data_pages
    cs.Parallaft.Comparator.pages_skipped_identical;
  Alcotest.(check int) "no bytes hashed" 0 cs.Parallaft.Comparator.bytes_hashed;
  (* Diverge one page: only that vpn's two sides get hashed. *)
  Mem.Address_space.store64 (Machine.Cpu.aspace b) data_base 9999;
  let verdict, cs =
    Parallaft.Comparator.compare_states ~hasher:Parallaft.Config.Xxh64_hash
      ~reference:a ~candidate:b ~dirty_vpns:all_data_vpns ()
  in
  (match verdict with
  | Parallaft.Comparator.Mismatch (Parallaft.Detection.Memory_mismatch _) -> ()
  | _ -> Alcotest.fail "divergence missed");
  Alcotest.(check int) "other pages still skipped" (data_pages - 1)
    cs.Parallaft.Comparator.pages_skipped_identical;
  Alcotest.(check int) "two pages of bytes hashed" (2 * page_size)
    cs.Parallaft.Comparator.bytes_hashed

let test_comparator_cache_generation_invalidation () =
  let a, b = forked_cpu_pair () in
  let cache = Mem.Page_digest_cache.create ~capacity:16 in
  (match compare_states ~cache ~reference:a ~candidate:b all_data_vpns with
  | Parallaft.Comparator.Match -> ()
  | _ -> Alcotest.fail "identical fork mismatched");
  (* First touch of a shared page COWs a fresh frame on the candidate. *)
  Mem.Address_space.store64
    (Machine.Cpu.aspace b)
    (data_base + (3 * page_size))
    777;
  (match compare_states ~cache ~reference:a ~candidate:b all_data_vpns with
  | Parallaft.Comparator.Mismatch (Parallaft.Detection.Memory_mismatch _) -> ()
  | _ -> Alcotest.fail "divergence missed with warm cache");
  (* Restoring the original value writes in place (the frame is now
     exclusively owned): the id is unchanged, so only the generation
     bump keeps the memo from serving the stale divergent digest. *)
  Mem.Address_space.store64
    (Machine.Cpu.aspace b)
    (data_base + (3 * page_size))
    1003;
  (match compare_states ~cache ~reference:a ~candidate:b all_data_vpns with
  | Parallaft.Comparator.Match -> ()
  | _ -> Alcotest.fail "stale digest served after in-place write");
  (* And warm re-comparison of the still-divergent-id page hits the memo. *)
  let _, cs =
    Parallaft.Comparator.compare_states ~hasher:Parallaft.Config.Xxh64_hash
      ~cache ~reference:a ~candidate:b ~dirty_vpns:all_data_vpns ()
  in
  Alcotest.(check int) "warm run hashes nothing" 0
    cs.Parallaft.Comparator.bytes_hashed;
  Alcotest.(check int) "warm run is all hits" 2 cs.Parallaft.Comparator.page_hash_hits

let qcheck_cached_matches_uncached =
  (* Differential oracle for the memoization layer: after every random
     fork-side write, the verdict with a (tiny, eviction-pressured)
     digest cache must equal the from-scratch uncached verdict. *)
  QCheck.Test.make ~name:"cached comparator verdict = uncached verdict" ~count:40
    QCheck.(small_list (triple bool (0 -- (data_pages - 1)) (0 -- 100)))
    (fun ops ->
      let a, b = forked_cpu_pair () in
      let cache = Mem.Page_digest_cache.create ~capacity:2 in
      let ok = ref true in
      let check_once () =
        let cached =
          compare_states ~cache ~reference:a ~candidate:b all_data_vpns
        in
        let uncached =
          compare_states ~reference:a ~candidate:b all_data_vpns
        in
        if cached <> uncached then ok := false
      in
      check_once ();
      List.iter
        (fun (side, page, v) ->
          let asp = Machine.Cpu.aspace (if side then a else b) in
          Mem.Address_space.store64 asp (data_base + (page * page_size)) v;
          check_once ())
        ops;
      !ok)

let test_detection_classification () =
  Alcotest.(check bool) "benign is not detected" false
    (Parallaft.Detection.is_detected Parallaft.Detection.Benign);
  Alcotest.(check bool) "timeout is detected" true
    (Parallaft.Detection.is_detected Parallaft.Detection.Timeout_detected);
  Alcotest.(check bool) "exception is detected" true
    (Parallaft.Detection.is_detected (Parallaft.Detection.Exception_detected "x"))

let test_stats_big_core_fraction () =
  let s = Parallaft.Stats.create () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Parallaft.Stats.big_core_work_fraction s);
  s.Parallaft.Stats.checker_big_ns <- 30.0;
  s.Parallaft.Stats.checker_little_ns <- 70.0;
  Alcotest.(check (float 1e-9)) "30%" 0.3 (Parallaft.Stats.big_core_work_fraction s)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core_units"
    [
      ( "exec_point",
        [
          tc "single target" `Quick test_replay_single_target;
          tc "multiple targets" `Quick test_replay_multiple_targets;
          tc "short distance" `Quick test_replay_short_distance_skips_counter;
          tc "exact across skid seeds" `Quick test_replay_exact_across_seeds;
          tc "rejects unsorted" `Quick test_replay_rejects_unsorted;
          tc "margin 0 overruns" `Quick test_margin_zero_overruns;
          QCheck_alcotest.to_alcotest qcheck_replay_lands_exactly;
        ] );
      ( "rr_log",
        [
          tc "order and cursor" `Quick test_rr_log_order_and_cursor;
          tc "grows under cursor" `Quick test_rr_log_grows_under_cursor;
        ] );
      ( "comparator",
        [
          tc "match" `Quick test_comparator_match;
          tc "register mismatch" `Quick test_comparator_register_mismatch;
          tc "memory mismatch" `Quick test_comparator_memory_mismatch;
          tc "layout mismatch" `Quick test_comparator_layout_mismatch;
          tc "pc mismatch" `Quick test_comparator_pc_mismatch;
          tc "union_sorted" `Quick test_union_sorted;
          tc "frame-identity short circuit" `Quick
            test_comparator_identity_short_circuit;
          tc "cache generation invalidation" `Quick
            test_comparator_cache_generation_invalidation;
          QCheck_alcotest.to_alcotest qcheck_union_sorted_is_set_union;
          QCheck_alcotest.to_alcotest qcheck_cached_matches_uncached;
        ] );
      ( "misc",
        [
          tc "detection classes" `Quick test_detection_classification;
          tc "stats fractions" `Quick test_stats_big_core_fraction;
        ] );
    ]
