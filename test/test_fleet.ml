(* Fleet mode (DESIGN.md §16): the work-stealing deque against a list
   model, cross-tenant fault isolation, admission-order determinism,
   and the teardown pid invariant. The heavier end-to-end smoke
   (throughput >= 2x serial, steals > 0) lives in bin/fleet_smoke.ml
   (`make fleet-smoke`). *)

module P = Parallaft

let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Deque vs list model: front-first list, push_back appends, pop_back
   takes the newest, steal_front the oldest. Checking every op's result
   AND the full contents after every op means no element can be lost or
   duplicated by any interleaving of owner and thief operations. *)

type op = Push of int | Pop | Steal | Remove_odd

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun x -> Push x) small_nat);
        (2, return Pop);
        (2, return Steal);
        (1, return Remove_odd);
      ])

let show_op = function
  | Push x -> Printf.sprintf "Push %d" x
  | Pop -> "Pop"
  | Steal -> "Steal"
  | Remove_odd -> "Remove_odd"

let arbitrary_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map show_op ops))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let qcheck_deque_matches_model =
  QCheck.Test.make ~name:"deque = list model (no lost/dup elements)"
    ~count:500 arbitrary_ops (fun ops ->
      let d = Util.Deque.create () in
      let model = ref [] (* oldest first *) in
      let split_last l =
        match List.rev l with
        | [] -> (None, [])
        | x :: rev_rest -> (Some x, List.rev rev_rest)
      in
      List.for_all
        (fun op ->
          let ok =
            match op with
            | Push x ->
              Util.Deque.push_back d x;
              model := !model @ [ x ];
              true
            | Pop ->
              let got = Util.Deque.pop_back d in
              let want, rest = split_last !model in
              model := rest;
              got = want
            | Steal -> (
              let got = Util.Deque.steal_front d in
              match !model with
              | [] -> got = None
              | x :: rest ->
                model := rest;
                got = Some x)
            | Remove_odd ->
              let removed = Util.Deque.remove_where d (fun x -> x mod 2 = 1) in
              let want_removed = List.filter (fun x -> x mod 2 = 1) !model in
              model := List.filter (fun x -> x mod 2 = 0) !model;
              removed = want_removed
          in
          ok
          && Util.Deque.to_list d = !model
          && Util.Deque.length d = List.length !model)
        ops)

(* ------------------------------------------------------------------ *)
(* End-to-end fixtures: small detimed hmmer tenants on the Intel model
   (enough little capacity for four tenants), invariants swept on every
   scheduling event. *)

let platform = Platform.intel_i7

let program =
  let bench =
    match Workloads.Spec.find "456.hmmer" with
    | Some b ->
      {
        b with
        Workloads.Spec.spec =
          {
            b.Workloads.Spec.spec with
            Workloads.Codegen.gettime_every = 0;
            rdtsc_every = 0;
            mmap_churn = false;
          };
      }
    | None -> Alcotest.fail "456.hmmer missing from the suite"
  in
  List.hd
    (Workloads.Spec.programs bench ~page_size:platform.Platform.page_size
       ~scale:0.25)

let config () =
  { (P.Config.parallaft ~platform ()) with P.Config.check_invariants = true }

let n = 4
let programs = List.init n (fun _ -> program)

let solo_hash tid =
  let rng, prng = Fleet.tenant_rngs ~seed:42L ~tid in
  let r =
    P.Runtime.run_protected ~platform ~config:(config ()) ~program ~rng ~prng ()
  in
  P.Stats.final_state_hash r.P.Runtime.stats

let tenant f tid =
  List.find (fun (t : Fleet.tenant_report) -> t.Fleet.tid = tid) f.Fleet.tenants

(* Fault isolation: a persistent checker-register flip armed in tenant 1
   only. Tenant 1 must detect it; every other tenant must see zero
   recovery activity and finish with the same state it reaches solo. *)
let test_fault_isolation () =
  let f =
    Fleet.run ~max_tenants:n ~platform
      ~config:{ (config ()) with P.Config.recovery = true }
      ~configure:(fun tid cfg ->
        if tid = 1 then
          {
            cfg with
            P.Config.fault_plan =
              Some
                {
                  Fault.segment = 1;
                  delay_instructions = 50;
                  target = Fault.Checker_register { reg = 8; bit = 33 };
                  repeat = true;
                };
          }
        else cfg)
      ~programs ()
  in
  (match (tenant f 1).Fleet.stats with
  | None -> Alcotest.fail "faulted tenant never admitted"
  | Some st ->
    Alcotest.(check bool)
      "fault landed in tenant 1" true
      (st.P.Stats.recoveries > 0
      || st.P.Stats.hard_faults > 0
      || st.P.Stats.detections <> []));
  List.iter
    (fun tid ->
      let t = tenant f tid in
      (match t.Fleet.stats with
      | None -> Alcotest.fail "bystander never admitted"
      | Some st ->
        Alcotest.(check int)
          (Printf.sprintf "tenant %d recoveries" tid)
          0 st.P.Stats.recoveries;
        Alcotest.(check int)
          (Printf.sprintf "tenant %d hard faults" tid)
          0 st.P.Stats.hard_faults;
        Alcotest.(check int)
          (Printf.sprintf "tenant %d watchdog kills" tid)
          0 st.P.Stats.watchdog_kills);
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d completed" tid)
        true
        (t.Fleet.outcome = Fleet.Completed);
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d state unchanged" tid)
        true
        (t.Fleet.final_state_hash = solo_hash tid))
    [ 0; 2; 3 ];
  Alcotest.(check int) "no pids leaked" 0 f.Fleet.live_at_end

(* Admission-order determinism: batch admission, staggered arrivals
   through two admission slots, and the solo replay all give each
   tenant the same architectural outcome, because its rng streams are
   keyed by (seed, tid) alone. *)
let test_admission_order_determinism () =
  let batch = Fleet.run ~max_tenants:n ~platform ~config:(config ()) ~programs () in
  let staggered =
    Fleet.run ~max_tenants:2 ~arrival:(Fleet.Staggered 300_000) ~platform
      ~config:(config ()) ~programs ()
  in
  List.iter
    (fun tid ->
      let b = tenant batch tid and s = tenant staggered tid in
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d completed in both" tid)
        true
        (b.Fleet.outcome = Fleet.Completed && s.Fleet.outcome = Fleet.Completed);
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d hash batch = staggered" tid)
        true
        (b.Fleet.final_state_hash <> None
        && b.Fleet.final_state_hash = s.Fleet.final_state_hash);
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d hash = solo" tid)
        true
        (b.Fleet.final_state_hash = solo_hash tid))
    (List.init n Fun.id);
  Alcotest.(check int) "batch pids" 0 batch.Fleet.live_at_end;
  Alcotest.(check int) "staggered pids" 0 staggered.Fleet.live_at_end

(* A single-tenant fleet is just a protected run on the shared pool:
   same final state as Runtime.run_protected with the tenant streams. *)
let test_single_tenant_fleet_matches_run_protected () =
  let f =
    Fleet.run ~max_tenants:1 ~platform ~config:(config ())
      ~programs:[ program ] ()
  in
  let t = tenant f 0 in
  Alcotest.(check bool) "completed" true (t.Fleet.outcome = Fleet.Completed);
  Alcotest.(check bool)
    "hash = run_protected" true
    (t.Fleet.final_state_hash = solo_hash 0)

(* Reject admission: with one slot and batch arrivals, the overflow
   tenants are turned away and the admitted one is undisturbed. *)
let test_reject_admission () =
  let f =
    Fleet.run ~max_tenants:1 ~admission:Fleet.Reject_arrivals ~platform
      ~config:(config ()) ~programs ()
  in
  Alcotest.(check int) "admitted" 1 f.Fleet.admitted;
  Alcotest.(check int) "rejected" (n - 1) f.Fleet.rejected;
  let t = tenant f 0 in
  Alcotest.(check bool) "tenant 0 completed" true (t.Fleet.outcome = Fleet.Completed);
  Alcotest.(check bool)
    "rejected tenants reported" true
    (List.for_all
       (fun tid -> (tenant f tid).Fleet.outcome = Fleet.Rejected)
       [ 1; 2; 3 ])

let () =
  Alcotest.run "fleet"
    [
      ( "deque",
        [ QCheck_alcotest.to_alcotest qcheck_deque_matches_model ] );
      ( "fleet",
        [
          tc "fault isolation" `Quick test_fault_isolation;
          tc "admission-order determinism" `Quick
            test_admission_order_determinism;
          tc "single tenant = run_protected" `Quick
            test_single_tenant_fleet_matches_run_protected;
          tc "reject admission" `Quick test_reject_admission;
        ] );
    ]
