(* Checker-backend tests (DESIGN.md §18): the lease supervisor's
   exactly-once accounting in isolation, the differential contract
   (Deferred at any batch size and fault-free Remote_sim must be
   observably identical to Inline), the chaos properties (random node
   crashes/stalls/late verdicts never double-count or lose a segment),
   the pre-launch death window, stale-verdict discard, and the
   mid-batch rollback truncation of the persisted seglog.

   Every run in this file executes with the invariant sweeps on: the
   supervisor cross-checks its ledger against its counters after every
   routed event. *)

let () = Unix.putenv "PARALLAFT_INVARIANTS" "1"

let platform = Platform.testing

module Sup = Backend.Supervisor
module E = Sim_os.Engine

(* ---------- supervisor unit tests ---------- *)

let lease0 s ~id ?(node = 0) ?(incarnation = 0) ?(now_ns = 0) ?(insns = 0) () =
  Sup.lease s ~id ~node ~incarnation ~now_ns ~insns

let settle_tag = Alcotest.of_pp (fun fmt -> function
  | `Ok -> Format.fprintf fmt "`Ok"
  | `Stale -> Format.fprintf fmt "`Stale")

let hb_tag = Alcotest.of_pp (fun fmt -> function
  | `Ok -> Format.fprintf fmt "`Ok"
  | `Expired -> Format.fprintf fmt "`Expired")

let test_sup_lifecycle () =
  let s = Sup.create () in
  Sup.note_recorded s 0;
  Alcotest.(check int) "recorded" 1 (Sup.recorded s);
  Alcotest.(check int) "unsettled" 1 (Sup.unsettled s);
  Alcotest.(check bool) "not all settled" false (Sup.all_settled s);
  lease0 s ~id:0 ~node:2 ();
  Alcotest.(check int) "dispatched" 1 (Sup.dispatched s);
  Alcotest.(check (option int)) "node" (Some 2) (Sup.node_of s ~id:0);
  Alcotest.(check (option int)) "incarnation" (Some 0)
    (Sup.current_incarnation s ~id:0);
  Alcotest.check settle_tag "settles" `Ok (Sup.settle s ~id:0 ~incarnation:0);
  Alcotest.(check int) "settled" 1 (Sup.settled s);
  Alcotest.(check bool) "all settled" true (Sup.all_settled s);
  Sup.check_invariants s

let test_sup_stale_and_redispatch () =
  let s = Sup.create () in
  Sup.note_recorded s 7;
  lease0 s ~id:7 ();
  lease0 s ~id:7 ~node:1 ~incarnation:1 ~now_ns:50 ();
  Alcotest.(check int) "re-lease counted" 1 (Sup.redispatched s);
  Alcotest.check settle_tag "old incarnation is stale" `Stale
    (Sup.settle s ~id:7 ~incarnation:0);
  Alcotest.(check int) "stale counted" 1 (Sup.stale_verdicts s);
  Alcotest.(check int) "still unsettled" 1 (Sup.unsettled s);
  Alcotest.check settle_tag "current incarnation settles" `Ok
    (Sup.settle s ~id:7 ~incarnation:1);
  Sup.check_invariants s;
  (* A re-lease that does not advance the incarnation is a routing
     bug, not a re-dispatch. *)
  Sup.note_recorded s 8;
  lease0 s ~id:8 ~incarnation:1 ();
  Alcotest.check_raises "non-monotonic re-lease"
    (Sup.Violation "supervisor: segment 8 re-leased at incarnation 1 (current 1)")
    (fun () -> lease0 s ~id:8 ~incarnation:1 ())

let test_sup_violations () =
  let s = Sup.create () in
  Sup.note_recorded s 0;
  lease0 s ~id:0 ();
  Alcotest.check settle_tag "settles" `Ok (Sup.settle s ~id:0 ~incarnation:0);
  (try
     ignore (Sup.settle s ~id:0 ~incarnation:0);
     Alcotest.fail "double settle did not raise"
   with Sup.Violation _ -> ());
  (try
     lease0 s ~id:0 ~incarnation:1 ();
     Alcotest.fail "lease after settle did not raise"
   with Sup.Violation _ -> ());
  try
    Sup.note_recorded s 0;
    Alcotest.fail "duplicate record did not raise"
  with Sup.Violation _ -> ()

let test_sup_prelaunch_swap () =
  (* First grant already at incarnation 1: the checker was replaced in
     the dispatch-to-launch window. It must count as a re-dispatch. *)
  let s = Sup.create () in
  Sup.note_recorded s 3;
  lease0 s ~id:3 ~incarnation:1 ();
  Alcotest.(check int) "prelaunch swap counted" 1 (Sup.redispatched s);
  Alcotest.check settle_tag "settles at the granted incarnation" `Ok
    (Sup.settle s ~id:3 ~incarnation:1);
  Sup.check_invariants s

let test_sup_heartbeat () =
  let s = Sup.create () in
  let budget_ns = 50_000 in
  Sup.note_recorded s 1;
  lease0 s ~id:1 ~now_ns:0 ~insns:100 ();
  Alcotest.check hb_tag "within budget" `Ok
    (Sup.heartbeat s ~id:1 ~now_ns:10_000 ~insns:100 ~excused:false ~budget_ns);
  Alcotest.check hb_tag "progress renews" `Ok
    (Sup.heartbeat s ~id:1 ~now_ns:40_000 ~insns:200 ~excused:false ~budget_ns);
  Alcotest.check hb_tag "renewed clock still live" `Ok
    (Sup.heartbeat s ~id:1 ~now_ns:80_000 ~insns:200 ~excused:true ~budget_ns);
  (* The excuse at 80_000 renewed the lease; silence past the budget
     from there expires it. *)
  Alcotest.check hb_tag "silence expires" `Expired
    (Sup.heartbeat s ~id:1 ~now_ns:140_000 ~insns:200 ~excused:false ~budget_ns);
  Sup.note_expired s ~id:1;
  Alcotest.(check int) "expiry counted" 1 (Sup.leases_expired s);
  Alcotest.check hb_tag "no lease answers Ok" `Ok
    (Sup.heartbeat s ~id:99 ~now_ns:0 ~insns:0 ~excused:false ~budget_ns)

let test_sup_cancel () =
  let s = Sup.create () in
  Sup.note_recorded s 0;
  Sup.note_recorded s 1;
  Sup.note_recorded s 2;
  lease0 s ~id:0 ();
  Alcotest.check settle_tag "settles" `Ok (Sup.settle s ~id:0 ~incarnation:0);
  lease0 s ~id:1 ();
  Alcotest.(check int) "rollback drops pending and leased" 2
    (Sup.cancel_unsettled s);
  Alcotest.(check int) "recorded excludes the cancelled" 1 (Sup.recorded s);
  Alcotest.(check bool) "all settled after cancel" true (Sup.all_settled s);
  Sup.check_invariants s

let test_sup_streaming_settle () =
  (* A RAFT streaming checker can retire before its segment finishes
     recording: settle on an unknown id registers-and-settles. *)
  let s = Sup.create () in
  Alcotest.check settle_tag "unknown id settles" `Ok
    (Sup.settle s ~id:5 ~incarnation:0);
  Alcotest.(check int) "recorded" 1 (Sup.recorded s);
  Alcotest.(check int) "settled" 1 (Sup.settled s);
  Sup.check_invariants s

(* ---------- end-to-end helpers ---------- *)

(* Pure function of the program (no time queries): every backend must
   produce byte-identical output and final state. *)
let deterministic_program ?(outer = 30) () =
  Workloads.Codegen.generate ~name:"det" ~seed:21L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = outer;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 0;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let base_cfg () = Parallaft.Config.parallaft ~platform ~slice_period:20_000 ()

(* The DVFS pacer and the recorder's boundary hold both react to
   verification lag, so a lagging backend legitimately re-paces the
   main and shifts slice boundaries. The strict differential (every
   counter equal) holds with the feedback paths neutralized — pacing
   off, live-segment cap far above what the run reaches; the chaos
   properties keep them on and compare only the correctness-observable
   surface. *)
let nopace_cfg () =
  {
    (base_cfg ()) with
    Parallaft.Config.dvfs_pacing = false;
    max_live_segments = 64;
  }

let run_cfg ?seed config =
  Parallaft.Runtime.run_protected ?seed ~platform ~config
    ~program:(deterministic_program ()) ()

(* The observable signature the differential property compares:
   everything derived from the main's instruction stream. Segment and
   checkpoint counts are deliberately excluded — the testing platform
   slices by cycles, and main's cycle count includes the CoW copies its
   stores pay while checker forks still share its pages, so how long a
   backend keeps checkers alive legitimately shifts slice boundaries.
   Within-run exactness (every segment compared and verified) is
   asserted separately. *)
type signature = {
  sg_detections : string list;
  sg_aborted : bool;
  sg_exit : int option;
  sg_output : string;
  sg_final_hash : int64 option;
  sg_syscalls : int;
  sg_nondet : int;
}

let signature (r : Parallaft.Runtime.report) =
  {
    sg_detections =
      List.map
        (fun (seg, o) ->
          Printf.sprintf "%d:%s" seg (Parallaft.Detection.outcome_to_string o))
        r.Parallaft.Runtime.detections;
    sg_aborted = r.aborted;
    sg_exit = r.exit_status;
    sg_output = r.output;
    sg_final_hash = Parallaft.Stats.final_state_hash r.stats;
    sg_syscalls = r.stats.Parallaft.Stats.syscalls_recorded;
    sg_nondet = r.stats.Parallaft.Stats.nondet_recorded;
  }

let pp_signature fmt s =
  Format.fprintf fmt
    "{det=[%s]; aborted=%b; exit=%s; out=%d bytes (hash %d); final=%s; \
     sys=%d; nondet=%d}"
    (String.concat ";" s.sg_detections)
    s.sg_aborted
    (match s.sg_exit with None -> "-" | Some e -> string_of_int e)
    (String.length s.sg_output)
    (Hashtbl.hash s.sg_output)
    (match s.sg_final_hash with
    | None -> "-"
    | Some h -> Printf.sprintf "%Lx" h)
    s.sg_syscalls s.sg_nondet

(* Every recorded segment was compared and settled exactly once. *)
let check_fully_verified (r : Parallaft.Runtime.report) =
  let total = r.Parallaft.Runtime.stats.Parallaft.Stats.segments_total in
  r.stats.Parallaft.Stats.segments_compared = total
  && r.stats.Parallaft.Stats.backend.Parallaft.Stats.b_verified = total

let inline_reference = lazy (run_cfg (nopace_cfg ()))

let backend_stats (r : Parallaft.Runtime.report) =
  r.Parallaft.Runtime.stats.Parallaft.Stats.backend

(* ---------- differential properties ---------- *)

let qcheck_deferred_identical =
  QCheck.Test.make ~count:8 ~name:"deferred batch 1..8 = inline"
    QCheck.(int_range 1 8)
    (fun batch ->
      (* The int shrinker can probe outside the generator's range. *)
      QCheck.assume (batch >= 1 && batch <= 8);
      let ref_sig = signature (Lazy.force inline_reference) in
      let config =
        {
          (nopace_cfg ()) with
          Parallaft.Config.backend =
            Parallaft.Config.deferred_backend ~batch ~max_lag:64 ();
        }
      in
      let r = run_cfg config in
      if signature r <> ref_sig then
        QCheck.Test.fail_reportf "batch %d diverged:@.inline   %a@.deferred %a"
          batch pp_signature ref_sig pp_signature (signature r);
      let b = backend_stats r in
      check_fully_verified r
      && b.Parallaft.Stats.b_batches >= 1
      && b.Parallaft.Stats.b_redispatched = 0)

let qcheck_remote_identical =
  QCheck.Test.make ~count:4 ~name:"fault-free remote = inline"
    QCheck.(int_range 1 4)
    (fun nodes ->
      QCheck.assume (nodes >= 1 && nodes <= 4);
      let ref_sig = signature (Lazy.force inline_reference) in
      let config =
        {
          (nopace_cfg ()) with
          Parallaft.Config.backend =
            Parallaft.Config.remote_backend ~nodes ~retries:3 ();
        }
      in
      let r = run_cfg config in
      if signature r <> ref_sig then
        QCheck.Test.fail_reportf "nodes %d diverged:@.inline %a@.remote %a"
          nodes pp_signature ref_sig pp_signature (signature r);
      let b = backend_stats r in
      check_fully_verified r && b.Parallaft.Stats.b_stale_verdicts = 0)

(* ---------- trace span balance (from test_obs) ---------- *)

let assert_spans_balanced sink =
  let stacks : (Obs.Trace.track, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let stack =
        Option.value (Hashtbl.find_opt stacks e.Obs.Trace.track) ~default:[]
      in
      match e.Obs.Trace.phase with
      | Obs.Trace.Begin ->
        Hashtbl.replace stacks e.Obs.Trace.track (e.Obs.Trace.name :: stack)
      | Obs.Trace.End -> (
        match stack with
        | top :: rest when top = e.Obs.Trace.name ->
          Hashtbl.replace stacks e.Obs.Trace.track rest
        | _ -> Alcotest.fail ("unmatched End event: " ^ e.Obs.Trace.name))
      | Obs.Trace.Instant | Obs.Trace.Counter -> ())
    (Obs.Trace.events sink.Obs.Sink.trace);
  Hashtbl.iter
    (fun _ stack ->
      match stack with
      | [] -> ()
      | name :: _ -> Alcotest.fail ("dangling Begin span: " ^ name))
    stacks

let test_deferred_spans_balanced () =
  let sink = Obs.Sink.create () in
  let config =
    {
      (base_cfg ()) with
      Parallaft.Config.obs = Some sink;
      backend = Parallaft.Config.deferred_backend ~batch:3 ~max_lag:8 ();
    }
  in
  let r = run_cfg config in
  Alcotest.(check bool) "clean" false r.Parallaft.Runtime.aborted;
  assert_spans_balanced sink

(* ---------- chaos ---------- *)

let chaos ?(crash = 0) ?(stall = 0) ?(late = 0) ?(prelaunch = 0)
    ?(seed = 0xC4A05L) ?(late_ns = 150_000) ?(reboot_ns = 400_000) () =
  {
    Parallaft.Config.chaos_seed = seed;
    crash_pct = crash;
    stall_pct = stall;
    late_pct = late;
    prelaunch_pct = prelaunch;
    reboot_ns;
    late_ns;
  }

let remote_cfg ?(retries = 6) ?(watchdog_stall_ns = 2_000_000) chaos_spec =
  {
    (base_cfg ()) with
    Parallaft.Config.backend =
      Parallaft.Config.remote_backend ~nodes:3 ~retries ~chaos:chaos_spec ();
    watchdog_stall_ns;
  }

(* Capture the engine and coordinator so the test can release the
   recovery snapshots and count leaked processes afterwards. *)
let run_probed ?seed config =
  let captured = ref None in
  let before_run eng coord = captured := Some (eng, coord) in
  let r =
    Parallaft.Runtime.run_protected ?seed ~platform ~config ~before_run
      ~program:(deterministic_program ()) ()
  in
  match !captured with
  | None -> Alcotest.fail "before_run did not fire"
  | Some (eng, coord) -> (r, eng, coord)

let leaked_pids eng coord =
  Parallaft.Coordinator.release_recovery_state coord;
  E.live_processes eng

let qcheck_chaos_exactly_once =
  QCheck.Test.make ~count:12 ~name:"chaos: exactly-once, no SDC, no leaks"
    QCheck.(
      pair (int_range 0 1000)
        (quad (int_range 0 40) (int_range 0 25) (int_range 0 25)
           (int_range 0 25)))
    (fun (seed, (crash, stall, late, prelaunch)) ->
      let ref_sig = signature (Lazy.force inline_reference) in
      let config =
        remote_cfg
          (chaos ~crash ~stall ~late ~prelaunch
             ~seed:(Int64.of_int (0x5EED00 + seed))
             ())
      in
      let r, eng, coord = run_probed config in
      let b = backend_stats r in
      let total = r.stats.Parallaft.Stats.segments_total in
      if r.Parallaft.Runtime.aborted then
        (* The retry budget ran out under heavy chaos: fail-stop is an
           acceptable outcome, silent corruption and double-counting
           are not. *)
        b.Parallaft.Stats.b_verified <= total
      else begin
        if signature r <> ref_sig then
          QCheck.Test.fail_reportf
            "chaos (%d,%d,%d,%d) seed %d corrupted the run:@.inline %a@.remote %a"
            crash stall late prelaunch seed pp_signature ref_sig pp_signature
            (signature r);
        b.Parallaft.Stats.b_verified = total && leaked_pids eng coord = 0
      end)

let test_prelaunch_death_redispatched () =
  (* Every dispatch loses its checker in the dispatch-to-launch RPC
     window. The supervisor must swap in the spare and re-dispatch —
     never hang, never skip a segment. *)
  let config = remote_cfg (chaos ~prelaunch:80 ~seed:0xDEAD1L ()) in
  let r, eng, coord = run_probed config in
  Alcotest.(check bool) "not aborted" false r.Parallaft.Runtime.aborted;
  Alcotest.(check (list Alcotest.string)) "no detections" []
    (List.map
       (fun (_, o) -> Parallaft.Detection.outcome_to_string o)
       r.Parallaft.Runtime.detections);
  let b = backend_stats r in
  Alcotest.(check bool) "watchdog saw the deaths" true
    (r.stats.Parallaft.Stats.watchdog_kills >= 1);
  Alcotest.(check bool) "re-dispatched at least once" true
    (b.Parallaft.Stats.b_redispatched >= 1);
  Alcotest.(check int) "every segment verified exactly once"
    r.stats.Parallaft.Stats.segments_total b.Parallaft.Stats.b_verified;
  Alcotest.(check int) "no leaked processes" 0 (leaked_pids eng coord)

let test_stale_verdict_discarded () =
  (* Late verdicts parked past the heartbeat budget: the lease expires,
     the segment re-dispatches, and the parked verdict must be
     discarded as stale when it finally lands — not double-counted.
     The late delay straddles the budget so re-dispatches eventually
     deliver in time. *)
  let config =
    remote_cfg ~watchdog_stall_ns:1_600_000
      (chaos ~late:100 ~late_ns:1_000_000 ~seed:0x57A1EL ())
  in
  let r, eng, coord = run_probed config in
  Alcotest.(check bool) "not aborted" false r.Parallaft.Runtime.aborted;
  Alcotest.(check (list Alcotest.string)) "no detections" []
    (List.map
       (fun (_, o) -> Parallaft.Detection.outcome_to_string o)
       r.Parallaft.Runtime.detections);
  let b = backend_stats r in
  Alcotest.(check bool) "at least one verdict went stale" true
    (b.Parallaft.Stats.b_stale_verdicts >= 1);
  Alcotest.(check int) "every segment verified exactly once"
    r.stats.Parallaft.Stats.segments_total b.Parallaft.Stats.b_verified;
  Alcotest.(check int) "no leaked processes" 0 (leaked_pids eng coord)

let test_chaos_spans_balanced () =
  let sink = Obs.Sink.create () in
  let config =
    {
      (remote_cfg (chaos ~crash:25 ~stall:10 ~late:10 ~prelaunch:10 ())) with
      Parallaft.Config.obs = Some sink;
    }
  in
  let r, _, _ = run_probed config in
  ignore r.Parallaft.Runtime.aborted;
  assert_spans_balanced sink

(* ---------- mid-batch rollback truncation (seglog) ---------- *)

let e2e_dir leg =
  Filename.concat (Filename.get_temp_dir_name ()) ("parallaft_test_" ^ leg)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let load_log dir =
  let ok what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" what (Seglog.Codec.error_to_string e)
  in
  let manifest =
    ok "manifest"
      (Seglog.Reader.manifest (read_file (Filename.concat dir "manifest.plog")))
  in
  ok "fingerprint" (Seglog.Reader.validate_fingerprint manifest);
  let reader =
    Seglog.Reader.create
      ~config_digest:manifest.Seglog.Record.header.Seglog.Record.config_digest
  in
  let segments =
    List.map
      (fun id ->
        ok
          (Printf.sprintf "segment %d" id)
          (Seglog.Reader.segment reader
             (read_file
                (Filename.concat dir (Parallaft.Seglog_io.segment_file_name id)))))
      manifest.Seglog.Record.segments
  in
  (manifest, segments)

let test_truncation_mid_batch () =
  (* A checker-detected fault at segment 2 while later segments sit
     queued behind the deferred batch: the rollback must truncate the
     manifest at the failing segment — the queued-but-never-checked
     segments past it were recorded against state the rollback
     discarded and must not be listed, even though their files were
     already persisted. *)
  let dir = e2e_dir "backend_truncation" in
  let config =
    {
      (Parallaft.Config.parallaft ~platform ~slice_period:3000 ()) with
      Parallaft.Config.backend =
        Parallaft.Config.deferred_backend ~batch:4 ~max_lag:8 ();
      recovery = true;
      record_log = Some dir;
      fault_plan =
        Some
          {
            Fault.segment = 2;
            delay_instructions = 60;
            target = Fault.Checker_memory_page { page_index = 6; bit = 6 };
            repeat = false;
          };
    }
  in
  let r =
    Parallaft.Runtime.run_protected ~platform ~config
      ~program:(deterministic_program ()) ()
  in
  Alcotest.(check bool) "fault was detected live" true
    (r.Parallaft.Runtime.detections <> []);
  Alcotest.(check bool) "run recovered, not aborted" false
    r.Parallaft.Runtime.aborted;
  let fail_seg = fst (List.hd r.Parallaft.Runtime.detections) in
  let manifest, segments = load_log dir in
  let trunc =
    match manifest.Seglog.Record.truncated_at with
    | None -> Alcotest.fail "rollback did not latch a truncation point"
    | Some k -> k
  in
  Alcotest.(check int) "truncated at the failing segment" fail_seg trunc;
  List.iter
    (fun id ->
      if id > trunc then
        Alcotest.failf "manifest lists segment %d past truncation %d" id trunc)
    manifest.Seglog.Record.segments;
  (* The deferred queue had persisted segments past the failure before
     the rollback landed: their files remain on disk but the manifest
     must not reference them. *)
  let orphan = ref false in
  Array.iter
    (fun f ->
      match Scanf.sscanf_opt f "seg-%d.plog" (fun id -> id) with
      | Some id when id > trunc -> orphan := true
      | Some _ | None -> ())
    (Sys.readdir dir);
  Alcotest.(check bool) "queued segments past truncation were persisted" true
    !orphan;
  (* Offline replay of the truncated prefix reproduces the verdict. *)
  match Parallaft.Offline.replay ~manifest ~segments with
  | Error e -> Alcotest.failf "offline replay: %s" e
  | Ok (Parallaft.Offline.Verified _) ->
    Alcotest.fail "offline replay missed the recorded fault"
  | Ok (Parallaft.Offline.Diverged d) ->
    Alcotest.(check int) "offline divergence at the failing segment" fail_seg
      d.Parallaft.Offline.segment

let () =
  Alcotest.run "backend"
    [
      ( "supervisor",
        [
          Alcotest.test_case "lease lifecycle" `Quick test_sup_lifecycle;
          Alcotest.test_case "stale verdicts and re-dispatch" `Quick
            test_sup_stale_and_redispatch;
          Alcotest.test_case "structural violations raise" `Quick
            test_sup_violations;
          Alcotest.test_case "pre-launch swap counts as re-dispatch" `Quick
            test_sup_prelaunch_swap;
          Alcotest.test_case "heartbeat budget" `Quick test_sup_heartbeat;
          Alcotest.test_case "rollback cancels unsettled" `Quick
            test_sup_cancel;
          Alcotest.test_case "streaming settle registers" `Quick
            test_sup_streaming_settle;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_deferred_identical;
          QCheck_alcotest.to_alcotest qcheck_remote_identical;
          Alcotest.test_case "deferred spans balanced" `Slow
            test_deferred_spans_balanced;
        ] );
      ( "chaos",
        [
          QCheck_alcotest.to_alcotest qcheck_chaos_exactly_once;
          Alcotest.test_case "pre-launch deaths re-dispatch" `Slow
            test_prelaunch_death_redispatched;
          Alcotest.test_case "stale verdicts discarded" `Slow
            test_stale_verdict_discarded;
          Alcotest.test_case "chaos spans balanced" `Slow
            test_chaos_spans_balanced;
        ] );
      ( "seglog",
        [
          Alcotest.test_case "mid-batch rollback truncates the manifest" `Slow
            test_truncation_mid_batch;
        ] );
    ]
