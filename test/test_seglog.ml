(* The parallaft-seglog v1 contract (DESIGN.md §17):

   - round-trip: any segment/manifest written by Seglog.Writer decodes
     via Seglog.Reader to a structurally equal value, including the
     degenerate page shapes (all-zero, all-0xff, sparse) and extreme
     varint magnitudes;
   - corruption: flipping ANY single byte of a valid file makes the
     reader return a typed [Error] — never an exception, never a
     silently different decode;
   - fingerprinting: version fields and the config digest are checked
     before anything is trusted, with the specific typed errors;
   - offline replay: a log recorded by a live run re-verifies offline
     with the same verdict the live run produced, for both fault-free
     and injected-fault runs. *)

let platform = Platform.testing
let page_size = 256 (* log payload pages; independent of the platform *)

(* ---------- generators ---------- *)

let gen_page =
  QCheck.Gen.(
    frequency
      [ (2, return (Bytes.make page_size '\x00'));
        (2, return (Bytes.make page_size '\xff'));
        ( 3,
          (* sparse: a few hot bytes in a zero page — the shape zero-run
             RLE exists for *)
          list_size (1 -- 6) (pair (0 -- (page_size - 1)) (0 -- 255))
          >|= fun hits ->
          let b = Bytes.make page_size '\x00' in
          List.iter (fun (i, v) -> Bytes.set b i (Char.chr v)) hits;
          b );
        ( 3,
          list_size (return page_size) (0 -- 255) >|= fun l ->
          Bytes.init page_size (fun i -> Char.chr (List.nth l i)) ) ])

(* Any native int, biased toward the varint edge cases: the zigzag
   encoding historically broke for |v| >= 2^61. *)
let gen_any_int =
  QCheck.Gen.(
    frequency
      [ (4, (-200) -- 10_000);
        (2, map Int64.to_int int64);
        (1, oneofl [ 0; -1; max_int; min_int; 1 lsl 61; -(1 lsl 61) ]) ])

let gen_small_bytes =
  QCheck.Gen.(
    list_size (0 -- 24) (0 -- 255) >|= fun l ->
    Bytes.init (List.length l) (fun i -> Char.chr (List.nth l i)))

let gen_call =
  QCheck.Gen.(
    let v = gen_any_int in
    oneof
      [ (v >|= fun n -> Sim_os.Syscall.Exit n);
        ( triple v v v >|= fun (fd, addr, len) ->
          Sim_os.Syscall.Write { fd; addr; len } );
        ( triple v v v >|= fun (fd, addr, len) ->
          Sim_os.Syscall.Read { fd; addr; len } );
        ( triple v v v >|= fun (path_addr, path_len, flags) ->
          Sim_os.Syscall.Open { path_addr; path_len; flags } );
        (v >|= fun fd -> Sim_os.Syscall.Close { fd });
        (v >|= fun addr -> Sim_os.Syscall.Brk { addr });
        ( pair (triple v v v) (triple v v v)
        >|= fun ((addr, len, prot), (flags, fd, off)) ->
          Sim_os.Syscall.Mmap { addr; len; prot; flags; fd; off } );
        (pair v v >|= fun (addr, len) -> Sim_os.Syscall.Munmap { addr; len });
        ( triple v v v >|= fun (addr, len, prot) ->
          Sim_os.Syscall.Mprotect { addr; len; prot } );
        return Sim_os.Syscall.Getpid;
        return Sim_os.Syscall.Gettime;
        ( pair v v >|= fun (signum, handler_pc) ->
          Sim_os.Syscall.Sigaction { signum; handler_pc } );
        return Sim_os.Syscall.Sigreturn;
        (pair v v >|= fun (addr, len) -> Sim_os.Syscall.Getrandom { addr; len });
        (pair v v >|= fun (pc, word) -> Sim_os.Syscall.Patch_code { pc; word });
        (v >|= fun n -> Sim_os.Syscall.Unknown n) ])

let gen_sys =
  QCheck.Gen.(
    let* call = gen_call in
    let* in_data = option gen_small_bytes in
    let* result = gen_any_int in
    let* effects =
      list_size (0 -- 3)
        ( pair gen_any_int gen_small_bytes >|= fun (addr, data) ->
          { Seglog.Record.addr; data } )
    in
    return { Seglog.Record.call; in_data; result; effects })

let gen_nondet_insn =
  QCheck.Gen.(
    let* reg = 0 -- (Isa.Insn.num_regs - 1) in
    oneofl [ Isa.Insn.Rdtsc reg; Isa.Insn.Rdcoreid reg; Isa.Insn.Rdrand reg ])

let gen_point =
  QCheck.Gen.(
    pair (0 -- 1_000_000) (0 -- 100_000) >|= fun (branches, pc) ->
    { Seglog.Record.branches; pc })

let gen_event =
  QCheck.Gen.(
    frequency
      [ (4, gen_sys >|= fun s -> Seglog.Record.Sys s);
        ( 2,
          pair gen_nondet_insn gen_any_int >|= fun (insn, value) ->
          Seglog.Record.Nondet { insn; value } );
        ( 1,
          pair gen_point (1 -- 30) >|= fun (at, signum) ->
          Seglog.Record.Ext_signal { at; signum } ) ])

(* vpns drawn from a small range so consecutive segments revisit pages
   and exercise the xor-vs-parent delta, not just first-write raw/RLE. *)
let gen_pages =
  QCheck.Gen.(
    let* vpns = list_size (0 -- 6) (0 -- 9) in
    let vpns = List.sort_uniq compare vpns in
    let* pages = list_size (return (List.length vpns)) gen_page in
    return (Array.of_list (List.combine vpns pages)))

let gen_segment id =
  QCheck.Gen.(
    let* preamble = list_size (0 -- 2) gen_sys in
    let* events = list_size (0 -- 8) gen_event in
    let* end_point = gen_point in
    let* insn_delta = 0 -- 1_000_000 in
    let* end_regs = list_size (return 16) gen_any_int in
    let* pages = gen_pages in
    return
      { Seglog.Record.id;
        preamble;
        events;
        end_point;
        insn_delta;
        end_regs = Array.of_list end_regs;
        pages
      })

let gen_run = QCheck.Gen.(1 -- 6 >>= fun n -> QCheck.Gen.flatten_l (List.init n gen_segment))

let test_config : Seglog.Record.run_config =
  { mode_raft = false;
    slice_period = 3000;
    timeout_scale = 5.0;
    compare_states = true;
    dirty_backend = "soft_dirty";
    hasher = "xxh64";
    seed = 42L;
    fault = None
  }

let test_header () : Seglog.Record.header =
  let config_digest =
    Seglog.Record.config_digest ~platform:platform.Platform.name
      ~page_size:platform.Platform.page_size ~workload:"test" test_config
  in
  { config_digest;
    platform = platform.Platform.name;
    page_size = platform.Platform.page_size;
    workload = "test"
  }

let gen_manifest =
  QCheck.Gen.(
    let* nseg = 0 -- 5 in
    let* truncated_at = option (0 -- 10) in
    let* final_state_hash = option (map Int64.of_int gen_any_int) in
    let* code = list_size (1 -- 20) gen_any_int in
    let* data = list_size (0 -- 3) (pair gen_any_int gen_small_bytes) in
    return
      { Seglog.Record.header = test_header ();
        program =
          { Seglog.Record.pname = "test"; entry = 0; initial_brk = 0x10000;
            code = Array.of_list code; data };
        config = test_config;
        segments = List.init nseg (fun i -> i);
        truncated_at;
        final_state_hash
      })

(* ---------- round-trip properties ---------- *)

let qcheck_segment_roundtrip =
  QCheck.Test.make ~name:"seglog segment write/read round-trip" ~count:200
    (QCheck.make gen_run) (fun segments ->
      let writer = Seglog.Writer.create ~header:(test_header ()) in
      let files = List.map (Seglog.Writer.segment writer) segments in
      let reader =
        Seglog.Reader.create ~config_digest:(test_header ()).config_digest
      in
      List.for_all2
        (fun original file ->
          match Seglog.Reader.segment reader file with
          | Ok decoded -> decoded = original
          | Error e -> QCheck.Test.fail_report (Seglog.Codec.error_to_string e))
        segments files)

let qcheck_manifest_roundtrip =
  QCheck.Test.make ~name:"seglog manifest write/read round-trip" ~count:200
    (QCheck.make gen_manifest) (fun m ->
      match Seglog.Reader.manifest (Seglog.Writer.manifest m) with
      | Ok decoded ->
        decoded = m
        && Seglog.Reader.validate_fingerprint decoded = Ok ()
      | Error e -> QCheck.Test.fail_report (Seglog.Codec.error_to_string e))

(* ---------- corruption property ---------- *)

(* One representative valid run: a manifest and two segment files (the
   second xor-deltas pages of the first). *)
let fixture () =
  let seg i pages events =
    { Seglog.Record.id = i;
      preamble = [];
      events;
      end_point = { Seglog.Record.branches = 100 + i; pc = 7 };
      insn_delta = 4096;
      end_regs = Array.init 16 (fun r -> (r * 257) - 8);
      pages
    }
  in
  let page f = Bytes.init page_size f in
  let events =
    [ Seglog.Record.Sys
        { call = Sim_os.Syscall.Getpid; in_data = None; result = 1; effects = [] };
      Seglog.Record.Nondet { insn = Isa.Insn.Rdtsc 3; value = 123456789 };
      Seglog.Record.Ext_signal
        { at = { Seglog.Record.branches = 5; pc = 9 }; signum = 10 }
    ]
  in
  let s0 =
    seg 0 [| (3, page (fun _ -> '\x00')); (7, page (fun i -> Char.chr (i land 0xff))) |] events
  in
  let s1 = seg 1 [| (7, page (fun i -> Char.chr ((i * 3) land 0xff))) |] [] in
  let m =
    { Seglog.Record.header = test_header ();
      program =
        { Seglog.Record.pname = "fix"; entry = 0; initial_brk = 0x8000;
          code = [| 1; 2; 3 |]; data = [ (0x4000, Bytes.of_string "abc") ] };
      config = test_config;
      segments = [ 0; 1 ];
      truncated_at = None;
      final_state_hash = Some 0xdeadbeefL
    }
  in
  let writer = Seglog.Writer.create ~header:(test_header ()) in
  let f0 = Seglog.Writer.segment writer s0 in
  let f1 = Seglog.Writer.segment writer s1 in
  (Seglog.Writer.manifest m, f0, f1, m, s0, s1)

(* Decode [files] in order with a fresh reader; the reader is stateful
   (parent frames), so corrupting file k must be checked with the
   earlier files replayed intact first. *)
let decode_run files =
  let reader =
    Seglog.Reader.create ~config_digest:(test_header ()).config_digest
  in
  List.fold_left
    (fun acc f ->
      match acc with
      | Error _ as e -> e
      | Ok () -> (
        match Seglog.Reader.segment reader f with
        | Ok _ -> Ok ()
        | Error e -> Error e))
    (Ok ()) files

let flip b pos mask =
  let c = Bytes.copy b in
  Bytes.set c pos (Char.chr (Char.code (Bytes.get c pos) lxor mask));
  c

let corruption_rejected () =
  let mf, f0, f1, _, _, _ = fixture () in
  (* sanity: the pristine fixture decodes *)
  (match Seglog.Reader.manifest mf with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pristine manifest: %s" (Seglog.Codec.error_to_string e));
  (match decode_run [ f0; f1 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pristine segments: %s" (Seglog.Codec.error_to_string e));
  (* exhaustive: every byte of every file, one single-bit flip (position
     chooses the bit) and one full-byte flip, must yield a typed error *)
  let check_all what decode file =
    for pos = 0 to Bytes.length file - 1 do
      List.iter
        (fun mask ->
          match decode (flip file pos mask) with
          | Ok () ->
            Alcotest.failf "%s: byte %d ^ %#x silently accepted" what pos mask
          | Error (_ : Seglog.Codec.error) -> ()
          | exception e ->
            Alcotest.failf "%s: byte %d ^ %#x raised %s" what pos mask
              (Printexc.to_string e))
        [ 1 lsl (pos mod 8); 0xff ]
    done
  in
  check_all "manifest"
    (fun b -> Result.map ignore (Seglog.Reader.manifest b))
    mf;
  check_all "segment 0" (fun b -> decode_run [ b; f1 ]) f0;
  check_all "segment 1" (fun b -> decode_run [ f0; b ]) f1

(* ---------- version / fingerprint guards ---------- *)

(* File framing: magic 0..7, u32 format_version at 8, u32 isa_version
   at 12, i64 config digest at 16. *)
let version_guards () =
  let mf, f0, _, _, _, _ = fixture () in
  let patch_u32 b off v =
    let c = Bytes.copy b in
    Bytes.set_int32_le c off (Int32.of_int v);
    c
  in
  (match Seglog.Reader.manifest (patch_u32 mf 8 99) with
  | Error (Seglog.Codec.Bad_version { found = 99; _ }) -> ()
  | r ->
    Alcotest.failf "future format version: %s"
      (match r with Ok _ -> "accepted" | Error e -> Seglog.Codec.error_to_string e));
  (match Seglog.Reader.manifest (patch_u32 mf 12 99) with
  | Error (Seglog.Codec.Bad_isa_version { found = 99; _ }) -> ()
  | r ->
    Alcotest.failf "future isa version: %s"
      (match r with Ok _ -> "accepted" | Error e -> Seglog.Codec.error_to_string e));
  (let bad_magic = Bytes.copy mf in
   Bytes.set bad_magic 0 'X';
   match Seglog.Reader.manifest bad_magic with
   | Error (Seglog.Codec.Bad_magic _) -> ()
   | _ -> Alcotest.fail "wrong magic accepted");
  (* a manifest is also rejected wholesale when handed to the segment
     reader (magic distinguishes the two file kinds) *)
  let reader =
    Seglog.Reader.create ~config_digest:(test_header ()).config_digest
  in
  (match Seglog.Reader.segment reader mf with
  | Error (Seglog.Codec.Bad_magic _) -> ()
  | _ -> Alcotest.fail "manifest accepted as a segment file");
  (* segment recorded under a different config: digest mismatch *)
  let other = Seglog.Reader.create ~config_digest:1L in
  match Seglog.Reader.segment other f0 with
  | Error (Seglog.Codec.Fingerprint_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "foreign-config segment accepted"
  | Error e ->
    Alcotest.failf "foreign-config segment: %s" (Seglog.Codec.error_to_string e)

let fingerprint_guard () =
  let _, _, _, m, _, _ = fixture () in
  (* tamper with the recorded config but keep the stored digest: the
     file re-encodes and re-reads fine (checksums are consistent), but
     validate_fingerprint recomputes the digest from the fields and
     catches the edit *)
  let tampered =
    { m with
      Seglog.Record.config =
        { m.Seglog.Record.config with Seglog.Record.slice_period = 4000 }
    }
  in
  match Seglog.Reader.manifest (Seglog.Writer.manifest tampered) with
  | Error e -> Alcotest.failf "tampered manifest: %s" (Seglog.Codec.error_to_string e)
  | Ok decoded -> (
    match Seglog.Reader.validate_fingerprint decoded with
    | Error (Seglog.Codec.Fingerprint_mismatch _) -> ()
    | Ok () -> Alcotest.fail "tampered config passed the fingerprint check"
    | Error e ->
      Alcotest.failf "tampered config: %s" (Seglog.Codec.error_to_string e))

(* ---------- end-to-end: record live, re-check offline ---------- *)

let busy_program () =
  Workloads.Codegen.generate ~name:"busy" ~seed:11L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = 30;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 5;
      rdtsc_every = 7;
      mmap_churn = true;
    }

let record_run ?fault_plan dir =
  let config =
    Parallaft.Config.parallaft ~platform ~slice_period:3000 ()
  in
  let config =
    { config with Parallaft.Config.record_log = Some dir; fault_plan }
  in
  Parallaft.Runtime.run_protected ~platform ~config ~program:(busy_program ()) ()

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let load_log dir =
  let ok what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" what (Seglog.Codec.error_to_string e)
  in
  let manifest =
    ok "manifest" (Seglog.Reader.manifest (read_file (Filename.concat dir "manifest.plog")))
  in
  ok "fingerprint" (Seglog.Reader.validate_fingerprint manifest);
  let reader =
    Seglog.Reader.create
      ~config_digest:manifest.Seglog.Record.header.Seglog.Record.config_digest
  in
  let segments =
    List.map
      (fun id ->
        ok
          (Printf.sprintf "segment %d" id)
          (Seglog.Reader.segment reader
             (read_file (Filename.concat dir (Parallaft.Seglog_io.segment_file_name id)))))
      manifest.Seglog.Record.segments
  in
  (manifest, segments)

(* Under the dune sandbox cwd is scratch, but the suite can also be run
   directly from the repo root — keep the recorded logs out of the tree. *)
let e2e_dir leg =
  Filename.concat (Filename.get_temp_dir_name ()) ("parallaft_test_" ^ leg)

let offline_matches_clean_run () =
  let dir = e2e_dir "seglog_e2e_clean" in
  let r = record_run dir in
  Alcotest.(check (list reject)) "no live detections" []
    (List.map snd r.Parallaft.Runtime.detections);
  Alcotest.(check (option int)) "main exited" (Some 0) r.Parallaft.Runtime.exit_status;
  let manifest, segments = load_log dir in
  match Parallaft.Offline.replay ~manifest ~segments with
  | Error e -> Alcotest.failf "offline replay: %s" e
  | Ok (Parallaft.Offline.Diverged d) ->
    Alcotest.failf "clean run diverged offline:\n%s"
      (Parallaft.Offline.divergence_report d)
  | Ok
      (Parallaft.Offline.Verified
        { segments = n; final_hash = _; final_hash_matches }) ->
    Alcotest.(check int) "all segments replayed"
      (List.length manifest.Seglog.Record.segments)
      n;
    Alcotest.(check (option bool)) "final state hash re-verified" (Some true)
      final_hash_matches

let offline_matches_fault_verdict () =
  let dir = e2e_dir "seglog_e2e_fault" in
  let fault_plan =
    Some
      { Fault.segment = 2;
        delay_instructions = 60;
        target = Fault.Checker_memory_page { page_index = 6; bit = 6 };
        repeat = false
      }
  in
  let r = record_run ?fault_plan dir in
  let live_segments = List.map fst r.Parallaft.Runtime.detections in
  Alcotest.(check bool) "live run detected the fault" true (live_segments <> []);
  let manifest, segments = load_log dir in
  match Parallaft.Offline.replay ~manifest ~segments with
  | Error e -> Alcotest.failf "offline replay: %s" e
  | Ok (Parallaft.Offline.Verified _) ->
    Alcotest.fail "offline replay missed the fault the live run detected"
  | Ok (Parallaft.Offline.Diverged d) ->
    Alcotest.(check int) "offline divergence names the live detection segment"
      (List.hd live_segments) d.Parallaft.Offline.segment

let () =
  Alcotest.run "seglog"
    [ ( "roundtrip",
        [ QCheck_alcotest.to_alcotest qcheck_segment_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_manifest_roundtrip ] );
      ( "validation",
        [ Alcotest.test_case "single-byte corruption is rejected" `Quick
            corruption_rejected;
          Alcotest.test_case "version guards" `Quick version_guards;
          Alcotest.test_case "config fingerprint guard" `Quick fingerprint_guard ] );
      ( "offline",
        [ Alcotest.test_case "clean run re-verifies offline" `Slow
            offline_matches_clean_run;
          Alcotest.test_case "fault verdict reproduced offline" `Slow
            offline_matches_fault_verdict ] )
    ]
