let page_size = 4096

let fresh_pt () =
  Mem.Page_table.create (Mem.Frame.allocator ~page_size)

let fresh_as () = Mem.Address_space.create (Mem.Frame.allocator ~page_size)

let test_frame_refcounting () =
  let a = Mem.Frame.allocator ~page_size in
  let f = Mem.Frame.alloc_zero a in
  Alcotest.(check int) "live" 1 (Mem.Frame.live_frames a);
  Mem.Frame.incref f;
  Mem.Frame.decref a f;
  Alcotest.(check int) "still live" 1 (Mem.Frame.live_frames a);
  Mem.Frame.decref a f;
  Alcotest.(check int) "freed" 0 (Mem.Frame.live_frames a);
  try
    Mem.Frame.decref a f;
    Alcotest.fail "double free accepted"
  with Invalid_argument _ -> ()

let test_frame_alloc_validation () =
  (try
     ignore (Mem.Frame.allocator ~page_size:0);
     Alcotest.fail "zero page size accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Mem.Frame.allocator ~page_size:100);
    Alcotest.fail "non-multiple-of-8 accepted"
  with Invalid_argument _ -> ()

let test_pt_map_unmap () =
  let pt = fresh_pt () in
  Mem.Page_table.map_zero pt ~vpn:3 Mem.Page_table.Read_write;
  Alcotest.(check bool) "mapped" true (Mem.Page_table.is_mapped pt ~vpn:3);
  (try
     Mem.Page_table.map_zero pt ~vpn:3 Mem.Page_table.Read_write;
     Alcotest.fail "double map accepted"
   with Invalid_argument _ -> ());
  Mem.Page_table.unmap pt ~vpn:3;
  Alcotest.(check bool) "unmapped" false (Mem.Page_table.is_mapped pt ~vpn:3);
  try
    Mem.Page_table.unmap pt ~vpn:3;
    Alcotest.fail "double unmap accepted"
  with Invalid_argument _ -> ()

let test_pt_fault_on_unmapped () =
  let pt = fresh_pt () in
  try
    ignore (Mem.Page_table.read_frame pt ~vpn:9);
    Alcotest.fail "expected Page_fault"
  with Mem.Page_table.Page_fault { vpn = 9; write = false } -> ()

let test_pt_read_only_write_faults () =
  let pt = fresh_pt () in
  Mem.Page_table.map_zero pt ~vpn:1 Mem.Page_table.Read_only;
  try
    ignore (Mem.Page_table.store_prepare pt ~vpn:1);
    Alcotest.fail "expected Page_fault"
  with Mem.Page_table.Page_fault { vpn = 1; write = true } -> ()

let test_cow_fork_isolation () =
  let aspace = fresh_as () in
  Mem.Address_space.map_range aspace ~addr:0 ~len:page_size
    Mem.Page_table.Read_write;
  Mem.Address_space.store64 aspace 0 111;
  let child = Mem.Address_space.fork aspace in
  (* Child sees the parent's value... *)
  Alcotest.(check int) "child inherits" 111 (Mem.Address_space.load64 child 0);
  (* ...writes are isolated both ways... *)
  Mem.Address_space.store64 child 0 222;
  Alcotest.(check int) "parent unaffected" 111 (Mem.Address_space.load64 aspace 0);
  Mem.Address_space.store64 aspace 8 333;
  Alcotest.(check int) "child unaffected" 0 (Mem.Address_space.load64 child 8)

let test_cow_copy_counted () =
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(4 * page_size)
    Mem.Page_table.Read_write;
  let child = Mem.Address_space.fork aspace in
  let copies0 = Mem.Frame.copies alloc in
  (* First write to a shared page copies it; the second does not. *)
  Mem.Address_space.store64 child 0 1;
  Alcotest.(check bool) "cow flagged" true (Mem.Address_space.last_cow child);
  Mem.Address_space.store64 child 8 2;
  Alcotest.(check bool) "second write no cow" false
    (Mem.Address_space.last_cow child);
  Alcotest.(check int) "exactly one copy" (copies0 + 1) (Mem.Frame.copies alloc)

let test_soft_dirty () =
  let aspace = fresh_as () in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(4 * page_size)
    Mem.Page_table.Read_write;
  let pt = Mem.Address_space.page_table aspace in
  Mem.Page_table.clear_soft_dirty pt;
  Alcotest.(check (array int)) "clean after clear" [||]
    (Mem.Page_table.soft_dirty_pages pt);
  Mem.Address_space.store64 aspace (2 * page_size) 7;
  Mem.Address_space.store8 aspace 5 1;
  Alcotest.(check (array int)) "exactly the written pages" [| 0; 2 |]
    (Mem.Page_table.soft_dirty_pages pt);
  (* Reads never dirty. *)
  ignore (Mem.Address_space.load64 aspace (3 * page_size));
  Alcotest.(check (array int)) "reads don't dirty" [| 0; 2 |]
    (Mem.Page_table.soft_dirty_pages pt)

let test_map_count_tracking () =
  (* The PAGEMAP_SCAN method: after a fork, only written pages have map
     count 1. *)
  let aspace = fresh_as () in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(4 * page_size)
    Mem.Page_table.Read_write;
  let child = Mem.Address_space.fork aspace in
  let child_pt = Mem.Address_space.page_table child in
  Alcotest.(check (array int)) "all shared after fork" [||]
    (Mem.Page_table.uniquely_mapped child_pt);
  Mem.Address_space.store64 child (page_size * 3) 9;
  Alcotest.(check (array int)) "written page unique" [| 3 |]
    (Mem.Page_table.uniquely_mapped child_pt)

let test_dirty_mechanisms_agree_after_fork () =
  (* Soft-dirty (cleared at fork time) and map-count must agree on pages
     written after a fork — the property that makes the two tracking
     backends interchangeable in the comparator. *)
  let aspace = fresh_as () in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(8 * page_size)
    Mem.Page_table.Read_write;
  let child = Mem.Address_space.fork aspace in
  let child_pt = Mem.Address_space.page_table child in
  Mem.Page_table.clear_soft_dirty child_pt;
  Mem.Address_space.store64 child (page_size * 1) 1;
  Mem.Address_space.store64 child (page_size * 5) 2;
  Mem.Address_space.store8 child ((page_size * 6) + 100) 3;
  Alcotest.(check (array int)) "soft-dirty = map-count"
    (Mem.Page_table.soft_dirty_pages child_pt)
    (Mem.Page_table.uniquely_mapped child_pt)

let test_pss () =
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(2 * page_size)
    Mem.Page_table.Read_write;
  let pt = Mem.Address_space.page_table aspace in
  Alcotest.(check int) "sole owner" (2 * page_size) (Mem.Page_table.pss_bytes pt);
  let child = Mem.Address_space.fork aspace in
  Alcotest.(check int) "halved when shared" page_size
    (Mem.Page_table.pss_bytes pt);
  Mem.Address_space.store64 child 0 5;
  (* Child copied page 0: child owns one page fully, shares one. *)
  Alcotest.(check int) "child pss"
    (page_size + (page_size / 2))
    (Mem.Page_table.pss_bytes (Mem.Address_space.page_table child))

let test_unaligned_access_across_pages () =
  let aspace = fresh_as () in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(2 * page_size)
    Mem.Page_table.Read_write;
  let addr = page_size - 4 in
  Mem.Address_space.store64 aspace addr 0x1122334455667788;
  Alcotest.(check int) "straddling store/load roundtrip" 0x1122334455667788
    (Mem.Address_space.load64 aspace addr)

let test_read_write_bytes () =
  let aspace = fresh_as () in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(2 * page_size)
    Mem.Page_table.Read_write;
  let data = Bytes.of_string "hello across a page boundary" in
  ignore (Mem.Address_space.write_bytes aspace ~addr:(page_size - 5) data);
  let back =
    Mem.Address_space.read_bytes aspace ~addr:(page_size - 5)
      ~len:(Bytes.length data)
  in
  Alcotest.(check string) "roundtrip" (Bytes.to_string data) (Bytes.to_string back)

let test_write_bytes_map () =
  let aspace = fresh_as () in
  Mem.Address_space.write_bytes_map aspace ~addr:(10 * page_size)
    (Bytes.of_string "auto-mapped");
  Alcotest.(check string) "loader path maps pages" "auto-mapped"
    (Bytes.to_string
       (Mem.Address_space.read_bytes aspace ~addr:(10 * page_size) ~len:11))

let test_segfault_exn () =
  let aspace = fresh_as () in
  try
    ignore (Mem.Address_space.load64 aspace 0xdead000);
    Alcotest.fail "expected Segfault"
  with Mem.Address_space.Segfault { write = false; _ } -> ()

let test_fifo_cache_basics () =
  let c = Mem.Fifo_cache.create ~capacity:2 in
  Alcotest.(check bool) "first touch misses" false (Mem.Fifo_cache.touch c 1);
  Alcotest.(check bool) "second touch hits" true (Mem.Fifo_cache.touch c 1);
  ignore (Mem.Fifo_cache.touch c 2);
  ignore (Mem.Fifo_cache.touch c 3);
  (* capacity 2: exactly one of {1, 2} was evicted to admit 3 *)
  Alcotest.(check bool) "newest resident" true (Mem.Fifo_cache.mem c 3);
  Alcotest.(check int) "one eviction"
    2
    (List.length (List.filter (Mem.Fifo_cache.mem c) [ 1; 2; 3 ]));
  Alcotest.(check int) "hits" 1 (Mem.Fifo_cache.hits c);
  Alcotest.(check int) "misses" 3 (Mem.Fifo_cache.misses c)

let test_fifo_cache_admit_reports_eviction () =
  let c = Mem.Fifo_cache.create ~capacity:1 in
  Alcotest.(check (option int)) "filling a free slot evicts nobody" None
    (Mem.Fifo_cache.admit c 1);
  Alcotest.(check (option int)) "hit evicts nobody" None (Mem.Fifo_cache.admit c 1);
  Alcotest.(check (option int)) "capacity-1 admit names the victim" (Some 1)
    (Mem.Fifo_cache.admit c 2);
  Alcotest.(check bool) "victim gone" false (Mem.Fifo_cache.mem c 1);
  Alcotest.(check bool) "newcomer resident" true (Mem.Fifo_cache.mem c 2);
  (* [remove] frees the slot, so the next admit reuses it silently. *)
  Mem.Fifo_cache.remove c 2;
  Alcotest.(check (option int)) "freed slot reused without eviction" None
    (Mem.Fifo_cache.admit c 3)

let test_fifo_cache_clear () =
  let c = Mem.Fifo_cache.create ~capacity:4 in
  ignore (Mem.Fifo_cache.touch c 1);
  Mem.Fifo_cache.clear c;
  Alcotest.(check bool) "cleared" false (Mem.Fifo_cache.mem c 1);
  Alcotest.(check int) "counters reset" 0 (Mem.Fifo_cache.misses c)

let test_frame_generation_bumps_in_place_only () =
  let aspace = fresh_as () in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(2 * page_size)
    Mem.Page_table.Read_write;
  let pt = Mem.Address_space.page_table aspace in
  let id0, gen0, _ = Mem.Page_table.frame_view pt ~vpn:0 in
  (* Exclusively owned: each store walks store_prepare and bumps. *)
  Mem.Address_space.store64 aspace 0 1;
  let id1, gen1, _ = Mem.Page_table.frame_view pt ~vpn:0 in
  Alcotest.(check int) "in-place write keeps the frame" id0 id1;
  Alcotest.(check bool) "in-place write bumps the generation" true (gen1 > gen0);
  (* COW: the child's write allocates a fresh frame at generation 0 and
     leaves the parent's frame (id and generation) untouched. *)
  let child = Mem.Address_space.fork aspace in
  let child_pt = Mem.Address_space.page_table child in
  Mem.Address_space.store64 child 0 2;
  let cid, cgen, _ = Mem.Page_table.frame_view child_pt ~vpn:0 in
  Alcotest.(check bool) "cow allocates a fresh frame" true (cid <> id1);
  Alcotest.(check int) "fresh frame starts at generation 0" 0 cgen;
  let id2, gen2, _ = Mem.Page_table.frame_view pt ~vpn:0 in
  Alcotest.(check int) "parent frame id untouched by child cow" id1 id2;
  Alcotest.(check int) "parent generation untouched by child cow" gen1 gen2

let test_frame_view_consistent () =
  let pt = fresh_pt () in
  Mem.Page_table.map_zero pt ~vpn:5 Mem.Page_table.Read_write;
  let id, _, data = Mem.Page_table.frame_view pt ~vpn:5 in
  Alcotest.(check int) "same id as frame_id" (Mem.Page_table.frame_id pt ~vpn:5) id;
  Alcotest.(check bool) "same bytes as read_bytes_at" true
    (data == Mem.Page_table.read_bytes_at pt ~vpn:5);
  match Mem.Page_table.frame_view pt ~vpn:6 with
  | exception Mem.Page_table.Page_fault { vpn = 6; write = false } -> ()
  | _ -> Alcotest.fail "expected Page_fault on unmapped vpn"

let test_page_digest_cache_basics () =
  let c = Mem.Page_digest_cache.create ~capacity:2 in
  Alcotest.(check (option int64)) "cold miss" None
    (Mem.Page_digest_cache.find c ~frame:1 ~generation:0);
  Mem.Page_digest_cache.store c ~frame:1 ~generation:0 42L;
  Alcotest.(check (option int64)) "hit on exact (frame, generation)" (Some 42L)
    (Mem.Page_digest_cache.find c ~frame:1 ~generation:0);
  Alcotest.(check (option int64)) "stale generation misses" None
    (Mem.Page_digest_cache.find c ~frame:1 ~generation:1);
  Mem.Page_digest_cache.store c ~frame:1 ~generation:1 43L;
  Alcotest.(check (option int64)) "refreshed generation hits" (Some 43L)
    (Mem.Page_digest_cache.find c ~frame:1 ~generation:1);
  Alcotest.(check int) "hits counted" 2 (Mem.Page_digest_cache.hits c);
  Alcotest.(check int) "misses counted" 2 (Mem.Page_digest_cache.misses c);
  Mem.Page_digest_cache.clear c;
  Alcotest.(check (option int64)) "cleared" None
    (Mem.Page_digest_cache.find c ~frame:1 ~generation:1);
  Alcotest.(check int) "counters reset" 0 (Mem.Page_digest_cache.hits c)

let test_page_digest_cache_eviction_bounds () =
  let cap = 2 in
  let c = Mem.Page_digest_cache.create ~capacity:cap in
  for frame = 0 to 9 do
    Mem.Page_digest_cache.store c ~frame ~generation:0 (Int64.of_int frame)
  done;
  let resident = ref 0 in
  for frame = 0 to 9 do
    match Mem.Page_digest_cache.find c ~frame ~generation:0 with
    | Some d ->
      incr resident;
      Alcotest.(check int64)
        (Printf.sprintf "frame %d digest intact" frame)
        (Int64.of_int frame) d
    | None -> ()
  done;
  Alcotest.(check int) "exactly capacity digests survive" cap !resident

let qcheck_cow_preserves_parent =
  QCheck.Test.make ~name:"random child writes never leak to parent" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (pair (int_bound (4 * 4096 - 9)) int))
    (fun writes ->
      let aspace = fresh_as () in
      Mem.Address_space.map_range aspace ~addr:0 ~len:(4 * 4096)
        Mem.Page_table.Read_write;
      List.iteri (fun i (addr, _) -> Mem.Address_space.store64 aspace addr i) writes;
      let snapshot =
        Mem.Address_space.read_bytes aspace ~addr:0 ~len:(4 * 4096)
      in
      let child = Mem.Address_space.fork aspace in
      List.iter (fun (addr, v) -> Mem.Address_space.store64 child addr v) writes;
      let after = Mem.Address_space.read_bytes aspace ~addr:0 ~len:(4 * 4096) in
      Bytes.equal snapshot after)

let qcheck_soft_dirty_covers_writes =
  QCheck.Test.make ~name:"soft-dirty covers every written page" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (int_bound (8 * 4096 - 9)))
    (fun addrs ->
      let aspace = fresh_as () in
      Mem.Address_space.map_range aspace ~addr:0 ~len:(8 * 4096)
        Mem.Page_table.Read_write;
      let pt = Mem.Address_space.page_table aspace in
      Mem.Page_table.clear_soft_dirty pt;
      List.iter (fun a -> Mem.Address_space.store64 aspace a 1) addrs;
      let dirty = Mem.Page_table.soft_dirty_pages pt in
      List.for_all
        (fun a ->
          Array.mem (a / 4096) dirty
          && Array.mem ((a + 7) / 4096) dirty)
        addrs)

(* §4.4 equivalence: between checkpoints, the soft-dirty backend (clear
   bits at segment start, read at segment end) and the map-count backend
   (a page mapped exactly once is modified-or-new since the fork) must
   report the same dirty set. The model below mirrors the runtime: each
   "checkpoint" forks the main address space (the checkpoint keeps the
   shared frames alive) and clears the soft-dirty bits; only the newest
   checkpoint is kept, as map-count equivalence is stated against it. *)
let qcheck_dirty_backends_agree =
  QCheck.Test.make ~name:"soft-dirty and map-count backends agree" ~count:150
    QCheck.(list_of_size Gen.(0 -- 40) (pair bool (int_bound ((8 * 4096) - 9))))
    (fun ops ->
      let main = fresh_as () in
      Mem.Address_space.map_range main ~addr:0 ~len:(8 * 4096)
        Mem.Page_table.Read_write;
      let pt = Mem.Address_space.page_table main in
      let checkpoint prev =
        (match prev with
        | Some old ->
          Mem.Page_table.free_all (Mem.Address_space.page_table old)
        | None -> ());
        let child = Mem.Address_space.fork main in
        Parallaft.Dirty_tracker.clear Parallaft.Config.Soft_dirty pt;
        Some child
      in
      let backends_agree () =
        Parallaft.Dirty_tracker.collect Parallaft.Config.Soft_dirty pt
        = Parallaft.Dirty_tracker.collect Parallaft.Config.Map_count pt
      in
      let ckpt = ref (checkpoint None) in
      List.for_all
        (fun (store, addr) ->
          (if store then Mem.Address_space.store64 main addr addr
           else ckpt := checkpoint !ckpt);
          backends_agree ())
        ops)

(* COW bookkeeping: at any moment, every live frame's refcount equals
   the number of page-table entries mapping it (summed over all live
   processes), and tearing every process down frees every frame. *)
let qcheck_frame_refcounts_match_mappings =
  QCheck.Test.make ~name:"frame refcounts equal mapping counts; no leaks"
    ~count:100
    QCheck.(
      list_of_size
        Gen.(0 -- 40)
        (triple (int_bound 2) small_nat (int_bound ((8 * 4096) - 9))))
    (fun ops ->
      let alloc = Mem.Frame.allocator ~page_size in
      let first = Mem.Address_space.create alloc in
      Mem.Address_space.map_range first ~addr:0 ~len:(8 * 4096)
        Mem.Page_table.Read_write;
      let live = ref [ first ] in
      let pick i = List.nth !live (i mod List.length !live) in
      List.iter
        (fun (op, which, addr) ->
          match op with
          | 0 -> live := Mem.Address_space.fork (pick which) :: !live
          | 1 -> Mem.Address_space.store64 (pick which) addr addr
          | _ ->
            (* process exit; keep at least one process alive *)
            if List.length !live > 1 then begin
              let victim = pick which in
              Mem.Page_table.free_all (Mem.Address_space.page_table victim);
              live := List.filter (fun a -> a != victim) !live
            end)
        ops;
      let counts : (int, Mem.Frame.t * int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun a ->
          Mem.Page_table.iter_mapped (Mem.Address_space.page_table a)
            (fun ~vpn:_ f ->
              let n =
                match Hashtbl.find_opt counts f.Mem.Frame.id with
                | Some (_, n) -> n
                | None -> 0
              in
              Hashtbl.replace counts f.Mem.Frame.id (f, n + 1)))
        !live;
      let refcounts_ok =
        Hashtbl.fold
          (fun _ (f, n) acc -> acc && f.Mem.Frame.refcount = n)
          counts true
      in
      List.iter
        (fun a -> Mem.Page_table.free_all (Mem.Address_space.page_table a))
        !live;
      refcounts_ok && Mem.Frame.live_frames alloc = 0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mem"
    [
      ( "frame",
        [
          tc "refcounting" `Quick test_frame_refcounting;
          tc "allocator validation" `Quick test_frame_alloc_validation;
          tc "generation bumps in place only" `Quick
            test_frame_generation_bumps_in_place_only;
          tc "frame_view consistent" `Quick test_frame_view_consistent;
        ] );
      ( "page_table",
        [
          tc "map/unmap" `Quick test_pt_map_unmap;
          tc "fault on unmapped" `Quick test_pt_fault_on_unmapped;
          tc "read-only faults" `Quick test_pt_read_only_write_faults;
        ] );
      ( "cow",
        [
          tc "fork isolation" `Quick test_cow_fork_isolation;
          tc "copies counted" `Quick test_cow_copy_counted;
          QCheck_alcotest.to_alcotest qcheck_cow_preserves_parent;
          QCheck_alcotest.to_alcotest qcheck_frame_refcounts_match_mappings;
        ] );
      ( "dirty-tracking",
        [
          tc "soft-dirty" `Quick test_soft_dirty;
          tc "map-count" `Quick test_map_count_tracking;
          tc "mechanisms agree" `Quick test_dirty_mechanisms_agree_after_fork;
          QCheck_alcotest.to_alcotest qcheck_soft_dirty_covers_writes;
          QCheck_alcotest.to_alcotest qcheck_dirty_backends_agree;
        ] );
      ( "address_space",
        [
          tc "pss" `Quick test_pss;
          tc "unaligned across pages" `Quick test_unaligned_access_across_pages;
          tc "read/write bytes" `Quick test_read_write_bytes;
          tc "write_bytes_map" `Quick test_write_bytes_map;
          tc "segfault" `Quick test_segfault_exn;
        ] );
      ( "fifo_cache",
        [
          tc "basics" `Quick test_fifo_cache_basics;
          tc "admit reports eviction" `Quick test_fifo_cache_admit_reports_eviction;
          tc "clear" `Quick test_fifo_cache_clear;
        ] );
      ( "page_digest_cache",
        [
          tc "basics" `Quick test_page_digest_cache_basics;
          tc "eviction bounds residency" `Quick test_page_digest_cache_eviction_bounds;
        ] );
    ]
