(* End-to-end tests of the Parallaft runtime: correctness of record and
   replay (no false positives), exactly-once external effects, fault
   detection, timeout kill, RAFT mode, and the scheduler/pacer. *)

let platform = Platform.testing

let parallaft_cfg ?slice_period () =
  Parallaft.Config.parallaft ~platform ?slice_period ()

let raft_cfg () = Parallaft.Config.raft ~platform ()

(* A workload exercising memory, stores, syscalls (write/gettime/getpid),
   and nondeterministic instructions; small enough to run in tests but
   long enough to produce several segments at a short slicing period. *)
let busy_program ?(outer = 30) () =
  Workloads.Codegen.generate ~name:"busy" ~seed:11L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = outer;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 5;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let mmap_program ?(outer = 20) () =
  Workloads.Codegen.generate ~name:"mmapper" ~seed:12L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern = Workloads.Codegen.Blocked { pages = 4 };
      alu_per_mem = 4;
      store_every = 3;
      outer_iters = outer;
      inner_iters = 30;
      io_every = 4;
      gettime_every = 0;
      rdtsc_every = 0;
      mmap_churn = true;
    }

(* Like [busy_program] but with no time queries: its output is a pure
   function of the program, so baseline and protected outputs must be
   byte-identical. *)
let deterministic_program ?(outer = 30) () =
  Workloads.Codegen.generate ~name:"det" ~seed:21L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = outer;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 0;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let run_protected ?(config = parallaft_cfg ~slice_period:20_000 ()) ?seed program =
  Parallaft.Runtime.run_protected ?seed ~platform ~config ~program ()

let run_baseline ?seed program =
  Parallaft.Runtime.run_baseline ?seed ~platform ~program ()

let check_clean (r : Parallaft.Runtime.report) =
  if r.detections <> [] then
    Alcotest.failf "unexpected detections: %s"
      (String.concat "; "
         (List.map
            (fun (seg, o) ->
              Printf.sprintf "seg %d: %s" seg (Parallaft.Detection.outcome_to_string o))
            r.detections));
  Alcotest.(check bool) "not aborted" false r.aborted;
  Alcotest.(check (option int)) "clean exit" (Some 0) r.exit_status

let test_no_false_positives () =
  let program = busy_program () in
  let r = run_protected program in
  check_clean r;
  Alcotest.(check bool) "sliced into multiple segments" true
    (r.stats.Parallaft.Stats.segments_total > 2);
  Alcotest.(check int) "every segment compared"
    r.stats.Parallaft.Stats.segments_total
    r.stats.Parallaft.Stats.segments_compared

let test_output_identical_and_once () =
  let program = deterministic_program () in
  let b = run_baseline program in
  let r = run_protected program in
  check_clean r;
  Alcotest.(check bool) "baseline produced output" true (String.length b.output > 0);
  Alcotest.(check string) "output identical, written exactly once" b.output r.output

let test_output_identical_under_raft () =
  let program = deterministic_program () in
  let b = run_baseline program in
  let r = run_protected ~config:(raft_cfg ()) program in
  Alcotest.(check string) "RAFT output identical" b.output r.output;
  Alcotest.(check (option int)) "clean exit" (Some 0) r.exit_status;
  Alcotest.(check int) "RAFT does not slice" 0 r.stats.Parallaft.Stats.nr_slices;
  Alcotest.(check int) "RAFT never compares state" 0
    r.stats.Parallaft.Stats.segments_compared

let test_mmap_aslr_replay () =
  (* mmap churn folds the mapped (ASLR-randomized) address into program
     state; without the MAP_FIXED replay fix-up the checker would
     diverge from the main at the very first comparison. The address the
     baseline sees legitimately differs (fresh ASLR draws), so the check
     is main-vs-checker consistency, not output bytes. *)
  let program = mmap_program () in
  let r = run_protected program in
  check_clean r;
  Alcotest.(check bool) "syscalls were recorded" true
    (r.stats.Parallaft.Stats.syscalls_recorded > 20)

let test_nondet_rdtsc_replay () =
  let program =
    Workloads.Codegen.generate ~name:"tsc" ~seed:3L
      ~page_size:platform.Platform.page_size
      {
        Workloads.Codegen.pattern = Workloads.Codegen.Blocked { pages = 2 };
        alu_per_mem = 2;
        store_every = 0;
        outer_iters = 25;
        inner_iters = 30;
        io_every = 5;
        gettime_every = 0;
        rdtsc_every = 2;
        mmap_churn = false;
      }
  in
  let r = run_protected program in
  check_clean r;
  Alcotest.(check bool) "rdtsc was recorded" true
    (r.stats.Parallaft.Stats.nondet_recorded > 0)

let test_fault_injection_detected () =
  (* Flip a bit in the checksum register early in segment 0: the
     checksum is written to memory and stdout, so the corruption must
     surface as a detection (mismatch, exception, or timeout). *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.fault_plan =
        Some
          (Fault.checker_register ~segment:0 ~delay_instructions:50 ~reg:13 ~bit:7);
    }
  in
  let r = run_protected ~config program in
  match r.stats.Parallaft.Stats.fi_outcome with
  | Some o when Parallaft.Detection.is_detected o -> ()
  | Some Parallaft.Detection.Benign -> Alcotest.fail "checksum flip classified benign"
  | Some _ -> ()
  | None -> Alcotest.fail "injection did not fire"

let test_fault_injection_dead_register_benign () =
  (* r5 is unused by the stream generator after setup... use a register
     the generated code never reads: r14 (reserved, never written or
     read by this program). A flip there must be benign: registers are
     compared, so flip r14 in a segment where main's r14 is... the
     comparison includes all registers, so ANY register flip that
     survives to the segment end is detected. Benign therefore requires
     the flipped value to be overwritten before the segment ends. r10 is
     a scratch register rewritten constantly — flip it between uses. *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.fault_plan =
        Some
          (Fault.checker_register ~segment:0 ~delay_instructions:57 ~reg:10 ~bit:3);
    }
  in
  let r = run_protected ~config program in
  match r.stats.Parallaft.Stats.fi_outcome with
  | Some Parallaft.Detection.Benign -> ()
  | Some o ->
    (* Depending on the exact injection point r10 may be live; accept a
       detection but require SOME classification. *)
    Alcotest.(check bool) "classified" true (Parallaft.Detection.is_detected o)
  | None -> Alcotest.fail "injection did not fire"

let test_fault_injection_timeout_or_exception () =
  (* Corrupt the inner loop counter (r11) high bit: the checker either
     loops far past the segment (timeout), segfaults, or miscompares —
     never silently passes. *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.fault_plan =
        Some
          (Fault.checker_register ~segment:1 ~delay_instructions:99 ~reg:11 ~bit:30);
    }
  in
  let r = run_protected ~config program in
  match r.stats.Parallaft.Stats.fi_outcome with
  | Some o when Parallaft.Detection.is_detected o -> ()
  | Some Parallaft.Detection.Benign ->
    Alcotest.fail "loop-counter corruption classified benign"
  | Some _ -> ()
  | None -> Alcotest.fail "injection did not fire"

let test_all_register_flips_classified () =
  (* Sweep registers: every injection that fires is classified, and no
     run ends with corrupted output escaping undetected. The reference
     output comes from a clean protected run with the same seed (the
     baseline would differ in its gettime values). *)
  let program = busy_program ~outer:12 () in
  let baseline = run_protected ~seed:77L program in
  for reg = 6 to 13 do
    let config =
      {
        (parallaft_cfg ~slice_period:20_000 ()) with
        Parallaft.Config.fault_plan =
          Some
            (Fault.checker_register ~segment:0
               ~delay_instructions:(40 + reg) ~reg ~bit:(reg mod 8));
      }
    in
    let r = run_protected ~seed:77L ~config program in
    match r.stats.Parallaft.Stats.fi_outcome with
    | Some Parallaft.Detection.Benign ->
      (* Benign means the run finished with the correct output. *)
      Alcotest.(check string)
        (Printf.sprintf "r%d benign implies correct output" reg)
        baseline.output r.output
    | Some _ -> ()
    | None -> () (* checker finished before the injection; acceptable here *)
  done

let test_external_signal_replay () =
  (* Deliver SIGUSR1 mid-run: the handler bumps a counter the program
     spins on. Replay must deliver the signal to the checker at the same
     execution point, or comparison would fail. *)
  let program = Workloads.Micro.sigusr1_spin ~handled:3 in
  let config = parallaft_cfg ~slice_period:50_000 () in
  let r =
    Parallaft.Runtime.run_protected ~platform ~config ~program
      ~before_run:(fun eng coord ->
        Sim_os.Engine.add_tick eng ~every_ns:150_000 (fun eng ->
            let main = Parallaft.Coordinator.main_pid coord in
            match Sim_os.Engine.state eng main with
            | Sim_os.Engine.Exited _ -> ()
            | Sim_os.Engine.Runnable | Sim_os.Engine.Stopped ->
              Sim_os.Engine.send_signal eng main Sim_os.Sig_num.sigusr1))
      ()
  in
  check_clean r;
  Alcotest.(check bool) "signals recorded" true
    (r.stats.Parallaft.Stats.signals_recorded >= 3)

let test_checkers_run_on_little_cores () =
  let program = busy_program () in
  let r = run_protected program in
  check_clean r;
  Alcotest.(check bool) "some checker work on little cores" true
    (r.stats.Parallaft.Stats.checker_little_ns > 0.0)

let test_raft_checker_on_big_core () =
  let program = busy_program () in
  let r = run_protected ~config:(raft_cfg ()) program in
  Alcotest.(check bool) "all checker work on big cores" true
    (r.stats.Parallaft.Stats.checker_little_ns = 0.0
    && r.stats.Parallaft.Stats.checker_big_ns > 0.0)

let test_determinism_of_protected_runs () =
  let program = busy_program () in
  let r1 = run_protected ~seed:5L program in
  let r2 = run_protected ~seed:5L program in
  Alcotest.(check int) "same wall time" r1.wall_ns r2.wall_ns;
  Alcotest.(check string) "same output" r1.output r2.output;
  Alcotest.(check int) "same segment count"
    r1.stats.Parallaft.Stats.segments_total r2.stats.Parallaft.Stats.segments_total

let test_slice_period_controls_segments () =
  let program = busy_program () in
  let segs period =
    let r = run_protected ~config:(parallaft_cfg ~slice_period:period ()) program in
    check_clean r;
    r.stats.Parallaft.Stats.segments_total
  in
  let short = segs 10_000 and long = segs 80_000 in
  Alcotest.(check bool)
    (Printf.sprintf "shorter period => more segments (%d vs %d)" short long)
    true (short > long)

let test_dirty_backends_equivalent () =
  let program = busy_program () in
  List.iter
    (fun backend ->
      let config =
        { (parallaft_cfg ~slice_period:20_000 ()) with Parallaft.Config.dirty_backend = backend }
      in
      let r = run_protected ~config program in
      check_clean r)
    [ Parallaft.Config.Soft_dirty; Parallaft.Config.Map_count;
      Parallaft.Config.Full_compare ]

let test_hashers_equivalent () =
  let program = busy_program () in
  List.iter
    (fun hasher ->
      let config =
        { (parallaft_cfg ~slice_period:20_000 ()) with Parallaft.Config.hasher } in
      let r = run_protected ~config program in
      check_clean r)
    [ Parallaft.Config.Xxh64_hash; Parallaft.Config.Fnv64_hash ]

let test_max_live_segments_respected () =
  let program = busy_program ~outer:40 () in
  let config =
    { (parallaft_cfg ~slice_period:8_000 ()) with Parallaft.Config.max_live_segments = 2 }
  in
  let r = run_protected ~config program in
  check_clean r

let test_migration_disabled_still_correct () =
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:10_000 ()) with
      Parallaft.Config.migration = false;
      dvfs_pacing = false;
    }
  in
  let r = run_protected ~config program in
  check_clean r;
  Alcotest.(check int) "no migrations" 0 r.stats.Parallaft.Stats.migrations

let test_getpid_stress_slowdown () =
  (* Tracing makes syscalls dramatically slower (§5.7). The testing
     platform's tracer latency is mild, but the slowdown must still be
     clearly visible. *)
  let program = Workloads.Micro.getpid_loop ~iters:2000 in
  let b = run_baseline program in
  let r = run_protected ~config:(raft_cfg ()) program in
  Alcotest.(check bool)
    (Printf.sprintf "protected run much slower (%.0f vs %d ns)"
       r.stats.Parallaft.Stats.main_wall_ns b.wall_ns)
    true
    (r.stats.Parallaft.Stats.main_wall_ns > 1.3 *. float_of_int b.wall_ns)

let test_devzero_reader_replay () =
  let program = Workloads.Micro.devzero_reader ~block_bytes:8192 ~blocks:20 in
  let r = run_protected program in
  check_clean r

(* Property: ANY generated workload runs under Parallaft without false
   positives -- record/replay reproduces arbitrary combinations of memory
   patterns, store rates and syscall mixes. *)
let gen_spec =
  QCheck.Gen.(
    let* pat_kind = 0 -- 2 in
    let* pages = 2 -- 10 in
    let* alu = 1 -- 6 in
    let* store = 0 -- 4 in
    let* outer = 4 -- 15 in
    let* inner = 10 -- 50 in
    let* io = 2 -- 5 in
    let* gettime = 0 -- 6 in
    let* mmap = bool in
    let pattern =
      match pat_kind with
      | 0 -> Workloads.Codegen.Chase { pages = max 2 pages; hot_pages = 3; cold_every = 2 }
      | 1 ->
        Workloads.Codegen.Stream
          { pages; write_frac_pct = store * 25; accesses_per_page = 4 }
      | _ -> Workloads.Codegen.Blocked { pages }
    in
    return
      {
        Workloads.Codegen.pattern;
        alu_per_mem = alu;
        store_every = store;
        outer_iters = outer;
        inner_iters = inner;
        io_every = io;
        gettime_every = gettime;
        rdtsc_every = 0;
        mmap_churn = mmap;
      })

let qcheck_random_workloads_no_false_positives =
  QCheck.Test.make ~name:"random workloads protected without false positives"
    ~count:25
    (QCheck.make ~print:(fun _ -> "<spec>") QCheck.Gen.(pair gen_spec (0 -- 1000)))
    (fun (spec, seed) ->
      let program =
        Workloads.Codegen.generate ~name:"prop" ~seed:(Int64.of_int (seed + 1))
          ~page_size:platform.Platform.page_size spec
      in
      let r = run_protected ~config:(parallaft_cfg ~slice_period:15_000 ()) program in
      r.Parallaft.Runtime.detections = [] && r.Parallaft.Runtime.exit_status = Some 0)

let test_recovery_rolls_back_and_completes () =
  (* EXTENSION (Table 2 future work): with recovery enabled, a detected
     fault rolls the main back to the last verified checkpoint and the
     run completes instead of terminating. *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.recovery = true;
      fault_plan =
        Some
          (Fault.checker_register ~segment:1 ~delay_instructions:60 ~reg:13 ~bit:6);
    }
  in
  let r = run_protected ~config program in
  Alcotest.(check bool) "fault was detected" true
    (List.exists
       (fun (_, o) -> Parallaft.Detection.is_detected o)
       r.detections);
  Alcotest.(check int) "exactly one rollback" 1
    r.stats.Parallaft.Stats.recoveries;
  Alcotest.(check bool) "run not aborted" false r.aborted;
  Alcotest.(check (option int)) "completed cleanly after recovery" (Some 0)
    r.exit_status

let test_recovery_disabled_aborts () =
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.fault_plan =
        Some
          (Fault.checker_register ~segment:1 ~delay_instructions:60 ~reg:13 ~bit:6);
    }
  in
  let r = run_protected ~config program in
  Alcotest.(check bool) "aborted on detection" true r.aborted;
  Alcotest.(check int) "no rollbacks" 0 r.stats.Parallaft.Stats.recoveries

let test_recovery_first_segment () =
  (* A fault in segment 0 recovers via the retained initial state. *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.recovery = true;
      fault_plan =
        Some
          (Fault.checker_register ~segment:0 ~delay_instructions:40 ~reg:13 ~bit:3);
    }
  in
  let r = run_protected ~config program in
  Alcotest.(check bool) "recovered" true (r.stats.Parallaft.Stats.recoveries >= 1);
  Alcotest.(check (option int)) "completed" (Some 0) r.exit_status

(* {2 Hardened fault response (DESIGN.md §13): re-check, watchdog,
   hard faults, rollback exactness} *)

let test_transient_recheck_no_rollback () =
  (* A checker-register flip with the re-check extension on: the failed
     check re-dispatches onto the pristine spare, which (un-faulted)
     passes, so the failure resolves as a transient checker fault — no
     rollback, no abort, clean completion. *)
  (* Time-free workload: the re-dispatch shifts wall-clock timing for
     the rest of the run, which would feed a gettime-using workload's
     output. *)
  let program = deterministic_program () in
  let config fault_plan =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.recheck_on_mismatch = true;
      recovery = true;
      fault_plan;
    }
  in
  let clean = run_protected ~config:(config None) program in
  let r =
    run_protected
      ~config:
        (config
           (Some
              (Fault.checker_register ~segment:1 ~delay_instructions:60 ~reg:13
                 ~bit:6)))
      program
  in
  Alcotest.(check bool) "re-check dispatched" true
    (r.stats.Parallaft.Stats.rechecks >= 1);
  Alcotest.(check bool) "resolved transient" true
    (r.stats.Parallaft.Stats.transient_faults >= 1);
  Alcotest.(check int) "no rollback" 0 r.stats.Parallaft.Stats.recoveries;
  Alcotest.(check bool) "not aborted" false r.aborted;
  Alcotest.(check (option int)) "clean exit" (Some 0) r.exit_status;
  Alcotest.(check string) "output untouched" clean.output r.output;
  (match r.stats.Parallaft.Stats.fi_outcome with
  | Some (Parallaft.Detection.Transient_checker_fault _) -> ()
  | o ->
    Alcotest.failf "expected transient classification, got %s"
      (match o with
      | Some o -> Parallaft.Detection.outcome_to_string o
      | None -> "none"));
  (* Transients are logged but are not detections charged to the main. *)
  List.iter
    (fun (_, o) ->
      Alcotest.(check bool)
        (Parallaft.Detection.outcome_to_string o ^ " not a detection")
        false
        (Parallaft.Detection.is_detected o))
    r.detections

let test_runtime_kill_caught_by_watchdog () =
  (* The checker itself is killed mid-check (a fault in the FT
     machinery). No spare, no recovery: the watchdog must notice the
     dead checker and fail the run instead of hanging it. *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.fault_plan =
        Some
          {
            Fault.segment = 1;
            delay_instructions = 50;
            target = Fault.Runtime_fault Fault.Kill;
            repeat = false;
          };
    }
  in
  let r = run_protected ~config program in
  Alcotest.(check bool) "watchdog responded" true
    (r.stats.Parallaft.Stats.watchdog_kills >= 1);
  Alcotest.(check bool) "aborted" true r.aborted;
  Alcotest.(check bool) "injection fired" true r.stats.Parallaft.Stats.fi_fired;
  match r.stats.Parallaft.Stats.fi_outcome with
  | Some o ->
    Alcotest.(check bool) "classified as detected" true
      (Parallaft.Detection.is_detected o)
  | None -> Alcotest.fail "runtime fault not classified"

let test_runtime_stall_recheck_recovers () =
  (* The checker stalls while holding a core: the instruction-budget
     timeout never fires (it needs the checker to execute), so only the
     watchdog's progress budget catches it. With a spare available the
     check re-dispatches and the run completes without rollback. *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.recheck_on_mismatch = true;
      watchdog_stall_ns = 3_000_000;
      fault_plan =
        Some
          {
            Fault.segment = 1;
            delay_instructions = 50;
            target = Fault.Runtime_fault Fault.Stall;
            repeat = false;
          };
    }
  in
  let r = run_protected ~config program in
  Alcotest.(check bool) "watchdog killed the stalled checker" true
    (r.stats.Parallaft.Stats.watchdog_kills >= 1);
  Alcotest.(check bool) "re-check resolved it" true
    (r.stats.Parallaft.Stats.transient_faults >= 1);
  Alcotest.(check int) "no rollback" 0 r.stats.Parallaft.Stats.recoveries;
  Alcotest.(check bool) "not aborted" false r.aborted;
  Alcotest.(check (option int)) "clean exit" (Some 0) r.exit_status

let test_hard_fault_aborts_early () =
  (* A persistent (stuck-at) checker fault: re-execution after the
     rollback reproduces the detection before any new segment verifies.
     The classifier must call it a hard fault and abort after ONE wasted
     rollback instead of burning the whole max_recoveries budget. *)
  let program = busy_program () in
  let config =
    {
      (parallaft_cfg ~slice_period:20_000 ()) with
      Parallaft.Config.recovery = true;
      fault_plan =
        Some
          {
            Fault.segment = 1;
            delay_instructions = 60;
            target = Fault.Checker_register { reg = 13; bit = 6 };
            repeat = true;
          };
    }
  in
  let r = run_protected ~config program in
  Alcotest.(check bool) "hard fault classified" true
    (r.stats.Parallaft.Stats.hard_faults >= 1);
  Alcotest.(check bool) "aborted" true r.aborted;
  Alcotest.(check int) "single rollback burned" 1
    r.stats.Parallaft.Stats.recoveries;
  Alcotest.(check bool) "hard fault in the detection log" true
    (List.exists
       (fun (_, o) ->
         match o with Parallaft.Detection.Hard_fault _ -> true | _ -> false)
       r.detections)

(* Property (rollback exactness): for ANY main-side fault that the
   pipeline detects and recovers from, the final registers and memory
   are byte-identical to the fault-free run's — recovery restores true
   state, and anything benign was genuinely overwritten. The workload is
   time-free (no gettime/rdtsc) so its final state is a pure function of
   the program. *)
let gen_main_fault_case =
  QCheck.Gen.(
    let* seg = 0 -- 2 in
    let* delay = 30 -- 120 in
    let* reg = 6 -- 13 in
    let* bit = 0 -- 30 in
    let* mem = bool in
    let* page = 0 -- 10 in
    let* wl_seed = 0 -- 300 in
    let target =
      if mem then Fault.Main_memory_page { page_index = page; bit }
      else Fault.Main_register { reg; bit }
    in
    return
      ( { Fault.segment = seg; delay_instructions = delay; target;
          repeat = false },
        wl_seed ))

let print_main_fault_case (plan, wl_seed) =
  Printf.sprintf "{%s; wl_seed=%d}" (Fault.to_string plan) wl_seed

let qcheck_main_fault_rollback_exact =
  QCheck.Test.make
    ~name:"main faults: recovered or benign runs end in the fault-free state"
    ~count:15
    (QCheck.make ~print:print_main_fault_case gen_main_fault_case)
    (fun (plan, wl_seed) ->
      let program =
        Workloads.Codegen.generate ~name:"exact"
          ~seed:(Int64.of_int (wl_seed + 1))
          ~page_size:platform.Platform.page_size
          {
            Workloads.Codegen.pattern =
              Workloads.Codegen.Chase
                { pages = 8; hot_pages = 3; cold_every = 2 };
            alu_per_mem = 3;
            store_every = 2;
            outer_iters = 8;
            inner_iters = 30;
            io_every = 3;
            gettime_every = 0;
            rdtsc_every = 0;
            mmap_churn = false;
          }
      in
      let config fault_plan =
        {
          (parallaft_cfg ~slice_period:15_000 ()) with
          Parallaft.Config.recovery = true;
          fault_plan;
        }
      in
      let reference = run_protected ~config:(config None) program in
      if reference.exit_status <> Some 0 then
        QCheck.Test.fail_report "reference run did not exit cleanly";
      let r = run_protected ~config:(config (Some plan)) program in
      if r.aborted || r.exit_status <> Some 0 then true
        (* recovery budget exhausted: a loud failure, not an exactness
           violation *)
      else
        match
          ( Parallaft.Stats.final_state_hash r.stats,
            Parallaft.Stats.final_state_hash reference.stats )
        with
        | Some got, Some want when got = want -> true
        | Some _, Some _ ->
          QCheck.Test.fail_reportf
            "final state diverged from fault-free run (recoveries=%d, fi=%s)"
            r.stats.Parallaft.Stats.recoveries
            (match r.stats.Parallaft.Stats.fi_outcome with
            | Some o -> Parallaft.Detection.outcome_to_string o
            | None -> "none")
        | _ -> QCheck.Test.fail_report "final state hash missing")

let test_file_backed_mmap_splits_segment () =
  (* A file-backed private mmap must be placed outside any segment
     (section 4.3.2): the runtime ends the segment before the call and
     starts a new one after it, so the checker inherits the mapping via
     fork instead of replaying the mmap. *)
  let src =
    {|
    .data 0x2000 "data.bin"
    .brk 0x10000
      li r0, 3          ; open("data.bin")
      li r1, 0x2000
      li r2, 8
      li r3, 0
      syscall
      mov r7, r0
      li r0, 6          ; mmap(0, 1 page, RW, PRIVATE (file-backed), fd)
      li r1, 0
      li r2, 4096
      li r3, 3
      li r4, 1
      mov r5, r7
      syscall
      load r9, r0, 0    ; read the file contents through the mapping
      li r10, 0x8000
      ; write the loaded value to stdout to pin correctness
      li r0, 5          ; brk for the io buffer
      li r1, 0x14000
      syscall
      li r11, 0x10000
      store r9, r11, 0
      li r0, 1
      li r1, 1
      li r2, 0x10000
      li r3, 8
      syscall
      li r0, 0
      li r1, 0
      syscall
    |}
  in
  let program = Isa.Asm.assemble_exn src in
  let payload = Bytes.create 8 in
  Bytes.set_int64_le payload 0 0x1122334455667788L;
  let r =
    Parallaft.Runtime.run_protected ~platform
      ~config:(parallaft_cfg ~slice_period:50_000 ())
      ~program
      ~before_run:(fun eng _coord ->
        Sim_os.File.add_file (Sim_os.Engine.fs eng) ~path:"data.bin" payload)
      ()
  in
  check_clean r;
  Alcotest.(check bool) "file contents flowed through the mapping" true
    (String.length r.output >= 8
    && Bytes.get_int64_le (Bytes.of_string r.output) 0 = 0x1122334455667788L);
  (* The split creates extra checkpoints beyond the periodic slices. *)
  Alcotest.(check bool) "mmap split produced extra segments" true
    (r.stats.Parallaft.Stats.segments_total
    > r.stats.Parallaft.Stats.nr_slices)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "parallaft"
    [
      ( "correctness",
        [
          tc "no false positives" `Quick test_no_false_positives;
          tc "output identical + exactly once" `Quick test_output_identical_and_once;
          tc "RAFT output identical" `Quick test_output_identical_under_raft;
          tc "mmap/ASLR replay" `Quick test_mmap_aslr_replay;
          tc "rdtsc record/replay" `Quick test_nondet_rdtsc_replay;
          tc "external signal replay" `Quick test_external_signal_replay;
          tc "/dev/zero read replay" `Quick test_devzero_reader_replay;
          tc "determinism" `Quick test_determinism_of_protected_runs;
        ] );
      ( "detection",
        [
          tc "checksum flip detected" `Quick test_fault_injection_detected;
          tc "scratch flip may be benign" `Quick test_fault_injection_dead_register_benign;
          tc "loop corruption detected" `Quick test_fault_injection_timeout_or_exception;
          tc "register sweep classified" `Slow test_all_register_flips_classified;
        ] );
      ( "recovery",
        [
          tc "rolls back and completes" `Quick test_recovery_rolls_back_and_completes;
          tc "disabled aborts" `Quick test_recovery_disabled_aborts;
          tc "first segment" `Quick test_recovery_first_segment;
          tc "file-backed mmap splits segment" `Quick test_file_backed_mmap_splits_segment;
        ] );
      ( "hardening",
        [
          tc "transient re-check avoids rollback" `Quick
            test_transient_recheck_no_rollback;
          tc "runtime kill caught by watchdog" `Quick
            test_runtime_kill_caught_by_watchdog;
          tc "runtime stall re-checked and recovered" `Quick
            test_runtime_stall_recheck_recovers;
          tc "persistent fault aborts as hard fault" `Quick
            test_hard_fault_aborts_early;
          QCheck_alcotest.to_alcotest qcheck_main_fault_rollback_exact;
        ] );
      ( "scheduling",
        [
          tc "checkers on little cores" `Quick test_checkers_run_on_little_cores;
          tc "RAFT on big cores" `Quick test_raft_checker_on_big_core;
          tc "slice period controls segments" `Quick test_slice_period_controls_segments;
          tc "max live segments" `Quick test_max_live_segments_respected;
          tc "migration off still correct" `Quick test_migration_disabled_still_correct;
        ] );
      ( "mechanisms",
        [
          tc "dirty backends equivalent" `Quick test_dirty_backends_equivalent;
          QCheck_alcotest.to_alcotest qcheck_random_workloads_no_false_positives;
          tc "hashers equivalent" `Quick test_hashers_equivalent;
          tc "getpid stress slowdown" `Quick test_getpid_stress_slowdown;
        ] );
    ]
