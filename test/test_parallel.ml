(* The determinism contract of the parallel experiment runner
   (Util.Pool): every harness fan-out — the benchmark sweep, the
   fault-injection campaign, the slicing-period grid — must produce
   byte-identical results at -j 1 (the sequential path: no domain is
   spawned) and -j 4. Results are serialized with %h (exact float
   bits), so any divergence — a data race, an RNG draw whose order
   depends on scheduling, a shared scratch buffer — fails the diff.

   The suite also logs the quick-sweep wall time at both widths; on a
   multi-core host (where the paper's "fast as the hardware allows"
   goal is testable) it asserts the parallel sweep is actually
   faster. *)

let platform = Platform.apple_m2

(* Small enough to keep the suite quick, large enough that every
   benchmark slices into several segments. *)
let scale = 0.2

let metrics_to_string (m : Experiments.Measure.metrics) =
  Printf.sprintf "%h/%h/%h/%h/%h/%h/%d/%d/%d/%h/%d/%h/%b"
    m.Experiments.Measure.wall_ns m.Experiments.Measure.main_wall_ns
    m.Experiments.Measure.main_user_ns m.Experiments.Measure.main_sys_ns
    m.Experiments.Measure.energy_j m.Experiments.Measure.mean_pss_bytes
    m.Experiments.Measure.detections m.Experiments.Measure.segments
    m.Experiments.Measure.migrations
    m.Experiments.Measure.big_core_work_fraction
    m.Experiments.Measure.cow_copies m.Experiments.Measure.runtime_work_ns
    m.Experiments.Measure.outputs_ok

let row_to_string (r : Experiments.Suite.row) =
  Printf.sprintf "%s baseline=%s parallaft=%s raft=%s"
    r.Experiments.Suite.bench.Workloads.Spec.name
    (metrics_to_string r.Experiments.Suite.baseline)
    (metrics_to_string r.Experiments.Suite.parallaft)
    (metrics_to_string r.Experiments.Suite.raft)

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let sweep_at jobs =
  Util.Pool.set_jobs jobs;
  let obs = Obs.Sink.create () in
  (* Profiling on: the per-task profiles must merge back deterministically
     just like the trace and the metrics. *)
  Obs.Profile.set_enabled obs.Obs.Sink.profile true;
  let rows, dt =
    timed (fun () ->
        Experiments.Suite.sweep ~obs ~platform ~scale ~quick:true ())
  in
  let serialized = String.concat "\n" (List.map row_to_string rows) in
  (rows, serialized, obs, dt)

(* A BENCH-style report built from the sweep's simulated-time results
   (not wall-clock bechamel estimates), so it is exactly reproducible:
   the -j differential below pins its serialized bytes. The metadata
   block deliberately differs per width — strip_meta must mask it. *)
let report_of ~jobs rows obs =
  {
    Experiments.Bench_report.meta =
      [ ("git_rev", "test"); ("jobs", string_of_int jobs) ];
    benches =
      List.map
        (fun (r : Experiments.Suite.row) ->
          {
            Experiments.Bench_report.name =
              r.Experiments.Suite.bench.Workloads.Spec.name;
            ns_per_run = r.Experiments.Suite.parallaft.Experiments.Measure.wall_ns;
          })
        rows;
    profile =
      List.map
        (fun (n, (s : Obs.Profile.phase_summary)) -> (n, s.Obs.Profile.self_ns))
        (Obs.Profile.phases obs.Obs.Sink.profile);
  }

let test_sweep_differential () =
  let rows1, s1, obs1, t1 = sweep_at 1 in
  let rows4, s4, obs4, t4 = sweep_at 4 in
  Util.Pool.set_jobs 1;
  Printf.printf "quick sweep wall time: -j 1 %.2fs, -j 4 %.2fs (%d cores)\n%!"
    t1 t4
    (Domain.recommended_domain_count ());
  Alcotest.(check string) "suite rows byte-identical at -j 1 and -j 4" s1 s4;
  (* The per-task sinks were merged in benchmark order, so the whole
     observability surface must match too: the Chrome trace export and
     the metric dump are byte-identical. *)
  Alcotest.(check string) "merged trace byte-identical"
    (Obs.Export.chrome_json obs1.Obs.Sink.trace)
    (Obs.Export.chrome_json obs4.Obs.Sink.trace);
  Alcotest.(check string) "merged metrics byte-identical"
    (Obs.Metrics.to_text obs1.Obs.Sink.metrics)
    (Obs.Metrics.to_text obs4.Obs.Sink.metrics);
  Alcotest.(check bool) "profile non-trivial" true
    (Obs.Profile.phases obs1.Obs.Sink.profile <> []);
  Alcotest.(check string) "merged profile breakdown byte-identical"
    (Obs.Profile.to_table obs1.Obs.Sink.profile ~wall_ns:1_000_000)
    (Obs.Profile.to_table obs4.Obs.Sink.profile ~wall_ns:1_000_000);
  (* The BENCH artifact built from either width serializes to the same
     bytes once metadata is stripped; the full document round-trips
     through the hand-rolled parser; and the two widths pass the
     regression gate against each other at threshold 0 (any nonzero
     delta anywhere would fail). *)
  let rep1 = report_of ~jobs:1 rows1 obs1 in
  let rep4 = report_of ~jobs:4 rows4 obs4 in
  Alcotest.(check string) "BENCH json byte-identical modulo metadata"
    (Experiments.Bench_report.to_json ~strip_meta:true rep1)
    (Experiments.Bench_report.to_json ~strip_meta:true rep4);
  let doc = Experiments.Bench_report.to_json rep1 in
  (match Experiments.Bench_report.of_json doc with
  | Error m -> Alcotest.fail ("BENCH json does not parse: " ^ m)
  | Ok parsed ->
    Alcotest.(check string) "BENCH json round-trips" doc
      (Experiments.Bench_report.to_json parsed);
    (match Experiments.Bench_report.check parsed with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("BENCH json fails check: " ^ m));
    let _table, ok =
      Experiments.Bench_report.delta_table ~threshold_pct:0.0 ~baseline:parsed
        ~current:rep4
    in
    Alcotest.(check bool) "zero-threshold gate passes across -j widths" true ok);
  (* Speedup is only observable with real cores to spread over. *)
  if Domain.recommended_domain_count () >= 4 then
    Alcotest.(check bool)
      (Printf.sprintf "-j 4 (%.2fs) measurably below -j 1 (%.2fs)" t4 t1)
      true (t4 < t1)
  else
    Printf.printf
      "(single/dual-core host: skipping the speedup assertion)\n%!"

let tally_to_string (t : Experiments.Exp_fault_injection.tally) =
  Printf.sprintf "detected=%d exception=%d timeout=%d benign=%d"
    t.Experiments.Exp_fault_injection.detected
    t.Experiments.Exp_fault_injection.exception_
    t.Experiments.Exp_fault_injection.timeout
    t.Experiments.Exp_fault_injection.benign

let campaign_at jobs =
  Util.Pool.set_jobs jobs;
  let bench =
    match Workloads.Spec.find "429.mcf" with
    | Some b -> b
    | None -> Alcotest.fail "mcf missing"
  in
  let rng = Util.Rng.create ~seed:0xFA417L in
  let t =
    Experiments.Exp_fault_injection.campaign ~platform ~scale:0.05 ~trials:4
      ~rng bench
  in
  tally_to_string t

let test_fault_injection_differential () =
  let t1 = campaign_at 1 in
  let t4 = campaign_at 4 in
  Util.Pool.set_jobs 1;
  Alcotest.(check string) "campaign tally identical at -j 1 and -j 4" t1 t4;
  Alcotest.(check bool) "campaign landed injections" true
    (t1 <> "detected=0 exception=0 timeout=0 benign=0")

let grid_to_string grid =
  List.map
    (fun (name, points) ->
      name ^ ": "
      ^ String.concat " "
          (List.map
             (fun (label, (p : Experiments.Exp_sweep.point)) ->
               Printf.sprintf "%s=%h/%h/%h" label
                 p.Experiments.Exp_sweep.fork_cow p.Experiments.Exp_sweep.sync
                 p.Experiments.Exp_sweep.total)
             points))
    grid
  |> String.concat "\n"

let grid_at jobs =
  Util.Pool.set_jobs jobs;
  Experiments.Exp_sweep.grid
    ~periods:[ ("1B", 50_000); ("5B", 250_000) ]
    ~benchmarks:[ "458.sjeng" ] ~platform ~scale ()
  |> grid_to_string

let test_period_grid_differential () =
  let g1 = grid_at 1 in
  let g4 = grid_at 4 in
  Util.Pool.set_jobs 1;
  Alcotest.(check string) "period grid identical at -j 1 and -j 4" g1 g4

(* The decoded-block cache must be invisible end to end, not just at
   the CPU boundary: the whole quick sweep (baseline + parallaft + raft
   metrics rows), the merged Perfetto trace, the metric dump and a
   fault-injection campaign tally must be byte-identical with the cache
   at its default capacity and force-disabled. The profiler stays off
   here: its "decoded" column is interpreter-internal by design and the
   one number the cache setting is allowed to change. *)
let with_block_cache capacity f =
  let saved = Machine.Cpu.default_block_cache () in
  Machine.Cpu.set_default_block_cache capacity;
  Fun.protect
    ~finally:(fun () -> Machine.Cpu.set_default_block_cache saved)
    f

let sweep_with_cache capacity =
  with_block_cache capacity (fun () ->
      Util.Pool.set_jobs 1;
      let obs = Obs.Sink.create () in
      let rows =
        Experiments.Suite.sweep ~obs ~platform ~scale:0.1 ~quick:true ()
      in
      ( String.concat "\n" (List.map row_to_string rows),
        Obs.Export.chrome_json obs.Obs.Sink.trace,
        Obs.Metrics.to_text obs.Obs.Sink.metrics ))

let test_block_cache_differential () =
  let rows_on, trace_on, metrics_on = sweep_with_cache 4096 in
  let rows_off, trace_off, metrics_off = sweep_with_cache 0 in
  Alcotest.(check string) "sweep rows byte-identical cache on/off" rows_on
    rows_off;
  Alcotest.(check string) "merged trace byte-identical cache on/off" trace_on
    trace_off;
  Alcotest.(check string) "metric dump byte-identical cache on/off" metrics_on
    metrics_off;
  let tally_on = with_block_cache 4096 (fun () -> campaign_at 1) in
  let tally_off = with_block_cache 0 (fun () -> campaign_at 1) in
  Util.Pool.set_jobs 1;
  Alcotest.(check string) "fault campaign tally identical cache on/off"
    tally_on tally_off

let () =
  Obs.Log.set_quiet true;
  let tc = Alcotest.test_case in
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          tc "suite sweep -j1 = -j4" `Quick test_sweep_differential;
          tc "fault injection -j1 = -j4" `Quick test_fault_injection_differential;
          tc "period grid -j1 = -j4" `Quick test_period_grid_differential;
          tc "block cache on = off" `Quick test_block_cache_differential;
        ] );
    ]
