let test_rng_deterministic () =
  let a = Util.Rng.create ~seed:42L in
  let b = Util.Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next_int64 a)
      (Util.Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Util.Rng.create ~seed:1L in
  let b = Util.Rng.create ~seed:2L in
  Alcotest.(check bool) "different first draw" true
    (Util.Rng.next_int64 a <> Util.Rng.next_int64 b)

let test_rng_bounds () =
  let r = Util.Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Util.Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Util.Rng.int_in r ~lo:5 ~hi:7 in
    if v < 5 || v > 7 then Alcotest.failf "int_in out of bounds: %d" v
  done

let test_rng_invalid () =
  let r = Util.Rng.create ~seed:1L in
  (try
     ignore (Util.Rng.int r 0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Util.Rng.int_in r ~lo:3 ~hi:2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_rng_split_independent () =
  let parent = Util.Rng.create ~seed:5L in
  let child = Util.Rng.split parent in
  (* Splitting must not replay the parent stream. *)
  let c = Util.Rng.next_int64 child and p = Util.Rng.next_int64 parent in
  Alcotest.(check bool) "distinct streams" true (c <> p)

let test_rng_copy () =
  let a = Util.Rng.create ~seed:11L in
  ignore (Util.Rng.next_int64 a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy replays" (Util.Rng.next_int64 a)
    (Util.Rng.next_int64 b)

let test_rng_float_range () =
  let r = Util.Rng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Util.Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean of [2;8]" 4.0 (Util.Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "geomean singleton" 3.0 (Util.Stats.geomean [ 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean empty" 1.0 (Util.Stats.geomean []);
  try
    ignore (Util.Stats.geomean [ 1.0; 0.0 ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Util.Stats.mean [])

let test_overhead () =
  Alcotest.(check (float 1e-9)) "overhead 20%" 20.0
    (Util.Stats.percentage_overhead ~baseline:10.0 ~measured:12.0);
  Alcotest.(check (float 1e-9)) "normalized" 1.2
    (Util.Stats.normalized ~baseline:10.0 ~measured:12.0);
  try
    ignore (Util.Stats.percentage_overhead ~baseline:0.0 ~measured:1.0);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_clampf () =
  Alcotest.(check (float 0.0)) "below" 1.0 (Util.Stats.clampf ~lo:1.0 ~hi:2.0 0.5);
  Alcotest.(check (float 0.0)) "above" 2.0 (Util.Stats.clampf ~lo:1.0 ~hi:2.0 9.0);
  Alcotest.(check (float 0.0)) "inside" 1.5 (Util.Stats.clampf ~lo:1.0 ~hi:2.0 1.5)

let test_table_render () =
  let out =
    Util.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "has 4+ lines" true (List.length lines >= 4);
  (* All non-empty lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_bar_chart () =
  let out = Util.Table.bar_chart ~width:10 [ ("x", 10.0); ("y", 5.0) ] in
  Alcotest.(check bool) "x has full bar" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.hd |> fun l ->
       String.contains l '#')

let test_grouped_bar_chart () =
  let out =
    Util.Table.grouped_bar_chart ~group_labels:[ "A"; "B" ]
      [ ("bench", [ 3.0; 4.0 ]) ]
  in
  Alcotest.(check bool) "legend present" true
    (String.length out > 0 && String.sub out 0 1 = "#");
  try
    ignore
      (Util.Table.grouped_bar_chart ~group_labels:[ "A" ] [ ("x", [ 1.0; 2.0 ]) ]);
    Alcotest.fail "expected Invalid_argument on ragged rows"
  with Invalid_argument _ -> ()

let test_stacked_bar_chart () =
  let out =
    Util.Table.stacked_bar_chart ~component_labels:[ "p"; "q" ]
      [ ("row", [ 1.0; 2.0 ]) ]
  in
  Alcotest.(check bool) "non-empty" true (String.length out > 0)

let qcheck_rng_uniformish =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair int64 small_nat)
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let r = Util.Rng.create ~seed in
      let v = Util.Rng.int r bound in
      v >= 0 && v < bound)

let qcheck_geomean_scale =
  QCheck.Test.make ~name:"geomean scales linearly" ~count:200
    QCheck.(list_of_size Gen.(1 -- 10) (float_range 0.1 100.0))
    (fun xs ->
      let g = Util.Stats.geomean xs in
      let g2 = Util.Stats.geomean (List.map (fun x -> 2.0 *. x) xs) in
      Float.abs (g2 -. (2.0 *. g)) < 1e-6 *. Float.max 1.0 g2)

let test_pool_map_matches_list_map () =
  let xs = List.init 57 (fun i -> i) in
  Alcotest.(check (list int)) "jobs 4 ordered"
    (List.map (fun x -> x * x) xs)
    (Util.Pool.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "jobs 1 ordered"
    (List.map (fun x -> x * x) xs)
    (Util.Pool.map ~jobs:1 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty" [] (Util.Pool.map ~jobs:4 (fun x -> x) [])

let test_pool_sequential_effect_order () =
  (* jobs = 1 is the plain sequential path: effects happen in input
     order on the calling domain, no domain is spawned. *)
  let seen = ref [] in
  ignore (Util.Pool.map ~jobs:1 (fun x -> seen := x :: !seen) [ 1; 2; 3; 4 ]);
  Alcotest.(check (list int)) "input order" [ 1; 2; 3; 4 ] (List.rev !seen)

let test_pool_exception_lowest_index () =
  (* Indices 3, 10 and 17 fail; whichever domain hits one first, the
     lowest-indexed failure must be the one re-raised. *)
  match
    Util.Pool.map ~jobs:4
      (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i)
      (List.init 21 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    Alcotest.(check string) "lowest failing index wins" "3" msg

let test_pool_jobs_resolution () =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs 5;
  Alcotest.(check int) "set_jobs wins" 5 (Util.Pool.jobs ());
  Util.Pool.set_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Util.Pool.jobs ());
  Util.Pool.set_jobs saved;
  Alcotest.(check bool) "default is at least 1" true
    (Util.Pool.default_jobs () >= 1)

let qcheck_pool_map_is_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map at every width" ~count:50
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(0 -- 30) int))
    (fun (jobs, xs) ->
      Util.Pool.map ~jobs (fun x -> (x * 31) lxor 7) xs
      = List.map (fun x -> (x * 31) lxor 7) xs)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "util"
    [
      ( "rng",
        [
          tc "deterministic" `Quick test_rng_deterministic;
          tc "seeds differ" `Quick test_rng_seeds_differ;
          tc "bounds" `Quick test_rng_bounds;
          tc "invalid args" `Quick test_rng_invalid;
          tc "split independent" `Quick test_rng_split_independent;
          tc "copy replays" `Quick test_rng_copy;
          tc "float range" `Quick test_rng_float_range;
          QCheck_alcotest.to_alcotest qcheck_rng_uniformish;
        ] );
      ( "stats",
        [
          tc "geomean" `Quick test_geomean;
          tc "mean" `Quick test_mean;
          tc "overhead" `Quick test_overhead;
          tc "clampf" `Quick test_clampf;
          QCheck_alcotest.to_alcotest qcheck_geomean_scale;
        ] );
      ( "pool",
        [
          tc "map matches List.map" `Quick test_pool_map_matches_list_map;
          tc "sequential effect order" `Quick test_pool_sequential_effect_order;
          tc "exception lowest index" `Quick test_pool_exception_lowest_index;
          tc "jobs resolution" `Quick test_pool_jobs_resolution;
          QCheck_alcotest.to_alcotest qcheck_pool_map_is_list_map;
        ] );
      ( "table",
        [
          tc "render aligns" `Quick test_table_render;
          tc "bar chart" `Quick test_bar_chart;
          tc "grouped bar chart" `Quick test_grouped_bar_chart;
          tc "stacked bar chart" `Quick test_stacked_bar_chart;
        ] );
    ]
