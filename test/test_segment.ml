(* Tests of the typed segment pipeline: unit tests that every illegal
   state-machine transition is rejected, and a qcheck property driving
   random workloads through both modes with fault plans and recovery
   under PARALLAFT_INVARIANTS-style checking — asserting every segment
   walks a legal Recording -> Awaiting_launch -> Checking -> Done path
   and no engine process leaks at run end. *)

module Seg = Parallaft.Segment

let platform = Platform.testing

(* ------------------------------------------------------------------ *)
(* Building blocks for driving the state machine directly.              *)

let make_cpu () =
  let program =
    Isa.Asm.assemble_exn "li r1, 100\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt"
  in
  let alloc = Mem.Frame.allocator ~page_size:platform.Platform.page_size in
  let aspace = Mem.Address_space.create alloc in
  Machine.Cpu.create ~rng:(Util.Rng.create ~seed:1L) ~program ~aspace ()

let end_point = { Parallaft.Exec_point.branches = 5; pc = 3 }

let make_replay () =
  Parallaft.Exec_point.start_replay ~targets:[ end_point ] ~cpu:(make_cpu ())

let fresh () = Seg.create ~id:0 ~checker:42

let recorded_seg () =
  let seg = fresh () in
  Seg.finish_recording seg ~end_point ~insn_delta:100 ~main_dirty:[||]
    ~snapshot:None;
  seg

let checking_seg () =
  let seg = recorded_seg () in
  Seg.begin_checking seg ~replay:(make_replay ()) ~pending_signals:[]
    ~launched_at_ns:7;
  seg

let done_seg () =
  let seg = checking_seg () in
  Seg.complete seg;
  seg

let expect_violation name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invariant_violation" name
  | exception Seg.Invariant_violation _ -> ()

(* ------------------------------------------------------------------ *)
(* Legal paths                                                          *)

let test_parallaft_path () =
  let seg = fresh () in
  Alcotest.(check bool) "starts recording" true
    (Seg.phase seg = Seg.Recording_p);
  Seg.finish_recording seg ~end_point ~insn_delta:100 ~main_dirty:[||]
    ~snapshot:None;
  Alcotest.(check bool) "awaiting launch" true
    (Seg.phase seg = Seg.Awaiting_launch_p);
  Alcotest.(check bool) "not launched before checking" true
    (Seg.launched_at seg = None);
  Seg.begin_checking seg ~replay:(make_replay ()) ~pending_signals:[]
    ~launched_at_ns:7;
  Alcotest.(check bool) "checking" true (Seg.phase seg = Seg.Checking_p);
  Alcotest.(check (option int)) "launch time" (Some 7) (Seg.launched_at seg);
  Seg.complete seg;
  Alcotest.(check bool) "done" true (Seg.is_done seg);
  Alcotest.(check bool) "history legal" true (Seg.legal_history (Seg.history seg));
  Alcotest.(check int) "four phases" 4 (List.length (Seg.history seg));
  Seg.check_invariants seg

let test_streaming_death_path () =
  (* A RAFT streaming checker that dies mid-record retires its segment
     straight from Recording. *)
  let seg = fresh () in
  Seg.start_streaming seg ~started_ns:3;
  Alcotest.(check bool) "still recording" true
    (Seg.phase seg = Seg.Recording_p);
  Alcotest.(check (option int)) "launched when streaming" (Some 3)
    (Seg.launched_at seg);
  Alcotest.(check bool) "has a cursor" true (Seg.cursor seg <> None);
  Seg.set_waiting seg true;
  Alcotest.(check bool) "waiting" true (Seg.waiting seg);
  Seg.set_waiting seg false;
  Seg.complete seg;
  Alcotest.(check bool) "history legal" true (Seg.legal_history (Seg.history seg));
  Seg.check_invariants seg

let test_streaming_cursor_inherited () =
  (* begin_checking must keep the streaming cursor (the checker already
     consumed a log prefix), not mint a fresh one. *)
  let seg = fresh () in
  Seg.start_streaming seg ~started_ns:3;
  let log = Seg.log seg in
  Parallaft.Rr_log.record log
    (Parallaft.Rr_log.Sys
       { call = Sim_os.Syscall.Getpid; in_data = None; result = 1; effects = [] });
  let cursor = Option.get (Seg.cursor seg) in
  ignore (Parallaft.Rr_log.next_interaction cursor);
  Seg.finish_recording seg ~end_point ~insn_delta:100 ~main_dirty:[||]
    ~snapshot:None;
  Seg.begin_checking seg ~replay:(make_replay ()) ~pending_signals:[]
    ~launched_at_ns:9;
  let c = Seg.checking seg in
  Alcotest.(check int) "consumed prefix not replayed again" 0
    (Parallaft.Rr_log.remaining_interactions c.Seg.cursor);
  Alcotest.(check (option int)) "streaming launch time kept" (Some 9)
    (Seg.launched_at seg)

(* ------------------------------------------------------------------ *)
(* Illegal transitions and out-of-state accesses                        *)

let test_illegal_transitions () =
  expect_violation "complete while recording (no streaming)" (fun () ->
      Seg.complete (fresh ()));
  expect_violation "complete before launch" (fun () ->
      Seg.complete (recorded_seg ()));
  expect_violation "complete twice" (fun () -> Seg.complete (done_seg ()));
  expect_violation "begin_checking while recording" (fun () ->
      Seg.begin_checking (fresh ()) ~replay:(make_replay ()) ~pending_signals:[]
        ~launched_at_ns:0);
  expect_violation "begin_checking twice" (fun () ->
      Seg.begin_checking (checking_seg ()) ~replay:(make_replay ())
        ~pending_signals:[] ~launched_at_ns:0);
  expect_violation "finish_recording twice" (fun () ->
      let seg = recorded_seg () in
      Seg.finish_recording seg ~end_point ~insn_delta:1 ~main_dirty:[||]
        ~snapshot:None);
  expect_violation "finish_recording after done" (fun () ->
      let seg = done_seg () in
      Seg.finish_recording seg ~end_point ~insn_delta:1 ~main_dirty:[||]
        ~snapshot:None);
  expect_violation "streaming started twice" (fun () ->
      let seg = fresh () in
      Seg.start_streaming seg ~started_ns:1;
      Seg.start_streaming seg ~started_ns:2);
  expect_violation "streaming after recording ended" (fun () ->
      Seg.start_streaming (recorded_seg ()) ~started_ns:1)

let test_out_of_state_accesses () =
  expect_violation "log after done" (fun () -> Seg.log (done_seg ()));
  expect_violation "recorded while recording" (fun () -> Seg.recorded (fresh ()));
  expect_violation "checking while awaiting launch" (fun () ->
      Seg.checking (recorded_seg ()));
  expect_violation "set_waiting without streaming" (fun () ->
      Seg.set_waiting (fresh ()) true);
  (* Total accessors answer in every state. *)
  Alcotest.(check bool) "no cursor before streaming/launch" true
    (Seg.cursor (fresh ()) = None);
  Alcotest.(check bool) "no snapshot when done" true
    (Seg.snapshot (done_seg ()) = None);
  Alcotest.(check bool) "not waiting without streaming" false
    (Seg.waiting (fresh ()))

let test_legal_transition_table () =
  let all = [ Seg.Recording_p; Seg.Awaiting_launch_p; Seg.Checking_p; Seg.Done_p ] in
  let legal =
    [
      (Seg.Recording_p, Seg.Awaiting_launch_p);
      (Seg.Awaiting_launch_p, Seg.Checking_p);
      (Seg.Checking_p, Seg.Done_p);
      (Seg.Recording_p, Seg.Done_p);
      (* Re-dispatch: a failed check returns to the launch queue on a
         spare checker (transient re-check / watchdog replacement). *)
      (Seg.Checking_p, Seg.Awaiting_launch_p);
    ]
  in
  List.iter
    (fun from ->
      List.iter
        (fun into ->
          Alcotest.(check bool)
            (Printf.sprintf "%s -> %s" (Seg.phase_to_string from)
               (Seg.phase_to_string into))
            (List.mem (from, into) legal)
            (Seg.legal_transition ~from ~into))
        all)
    all;
  Alcotest.(check bool) "history must start at recording" false
    (Seg.legal_history [ Seg.Checking_p; Seg.Done_p ])

(* ------------------------------------------------------------------ *)
(* Property: random workloads x modes x fault plans x recovery, with
   invariant checking on throughout. Every segment's history is legal,
   clean runs retire every segment, and the engine ends with zero live
   processes (no leaked checkers, snapshots or recovery points). *)

type scenario = {
  raft : bool;
  recovery : bool;
  fault : Fault.plan option;
  wl_seed : int;
  outer : int;
  io_every : int;
  store_every : int;
}

let gen_scenario =
  QCheck.Gen.(
    let* raft = bool in
    let* recovery = bool in
    let* with_fault = bool in
    let* fault_seg = 0 -- 2 in
    let* delay = 40 -- 120 in
    let* reg = 10 -- 13 in
    let* bit = 0 -- 12 in
    let* wl_seed = 0 -- 400 in
    let* outer = 4 -- 10 in
    let* io_every = 2 -- 5 in
    let* store_every = 0 -- 3 in
    let fault =
      if with_fault then
        Some
          (Fault.checker_register
             ~segment:(if raft then 0 else fault_seg)
             ~delay_instructions:delay ~reg ~bit)
      else None
    in
    return { raft; recovery; fault; wl_seed; outer; io_every; store_every })

let print_scenario s =
  Printf.sprintf
    "{mode=%s; recovery=%b; fault=%s; wl_seed=%d; outer=%d; io=%d; store=%d}"
    (if s.raft then "raft" else "parallaft")
    s.recovery
    (match s.fault with
    | None -> "none"
    | Some f ->
      Fault.to_string f)
    s.wl_seed s.outer s.io_every s.store_every

let run_scenario s =
  let program =
    Workloads.Codegen.generate ~name:"segprop"
      ~seed:(Int64.of_int (s.wl_seed + 1))
      ~page_size:platform.Platform.page_size
      {
        Workloads.Codegen.pattern =
          Workloads.Codegen.Chase { pages = 6; hot_pages = 3; cold_every = 2 };
        alu_per_mem = 3;
        store_every = s.store_every;
        outer_iters = s.outer;
        inner_iters = 30;
        io_every = s.io_every;
        gettime_every = 4;
        rdtsc_every = 0;
        mmap_churn = false;
      }
  in
  let base =
    if s.raft then Parallaft.Config.raft ~platform ()
    else Parallaft.Config.parallaft ~platform ~slice_period:15_000 ()
  in
  let config =
    {
      base with
      Parallaft.Config.check_invariants = true;
      recovery = s.recovery;
      fault_plan = s.fault;
    }
  in
  let captured = ref None in
  let r =
    Parallaft.Runtime.run_protected ~platform ~config ~program
      ~before_run:(fun eng coord -> captured := Some (eng, coord))
      ()
  in
  let eng, coord = Option.get !captured in
  (r, eng, coord)

let prop_scenario s =
  let r, eng, coord = run_scenario s in
  let histories = Parallaft.Coordinator.segment_histories coord in
  if histories = [] then QCheck.Test.fail_report "no segments recorded";
  List.iter
    (fun (id, hist) ->
      if not (Seg.legal_history hist) then
        QCheck.Test.fail_reportf "segment %d: illegal history [%s]" id
          (String.concat "; " (List.map Seg.phase_to_string hist)))
    histories;
  (if r.Parallaft.Runtime.detections = [] && not r.Parallaft.Runtime.aborted
   then begin
     if r.Parallaft.Runtime.exit_status <> Some 0 then
       QCheck.Test.fail_report "clean run did not exit 0";
     List.iter
       (fun (id, hist) ->
         match List.rev hist with
         | Seg.Done_p :: _ -> ()
         | _ ->
           QCheck.Test.fail_reportf "segment %d of a clean run not retired" id)
       histories
   end);
  let leaked = Sim_os.Engine.live_processes eng in
  if leaked <> 0 then
    QCheck.Test.fail_reportf "%d engine processes leaked at run end" leaked;
  true

let qcheck_pipeline_paths_and_no_leaks =
  QCheck.Test.make
    ~name:"random runs: legal segment paths, no pid leaks (invariants on)"
    ~count:30
    (QCheck.make ~print:print_scenario gen_scenario)
    prop_scenario

(* Directed streaming coverage: RAFT + recovery + fault is the branchiest
   path (streaming checker torn down mid-record, rollback, restart). *)
let test_raft_recovery_invariants () =
  let s =
    {
      raft = true;
      recovery = true;
      fault =
        Some
          (Fault.checker_register ~segment:0 ~delay_instructions:60 ~reg:13 ~bit:6);
      wl_seed = 7;
      outer = 8;
      io_every = 3;
      store_every = 2;
    }
  in
  let r, eng, coord = run_scenario s in
  Alcotest.(check int) "no leaked processes" 0
    (Sim_os.Engine.live_processes eng);
  Alcotest.(check bool) "all histories legal" true
    (List.for_all
       (fun (_, h) -> Seg.legal_history h)
       (Parallaft.Coordinator.segment_histories coord));
  Alcotest.(check bool) "run completed" true
    (r.Parallaft.Runtime.exit_status = Some 0 || r.Parallaft.Runtime.aborted)

(* {2 Faults during recovery (DESIGN.md §13)}

   Chaos layer: an engine tick murders random live checkers — including
   re-recorded ones mid-rollback and spares' owners mid-re-check — while
   an ordinary fault plan is ALSO driving rollbacks. Whatever interleaving
   results, the pipeline must neither corrupt its state machine nor leak
   processes nor hang: every history stays legal, the engine ends empty,
   and the run either completes or aborts loudly. *)

type chaos = {
  c_wl_seed : int;
  c_interval : int;  (** ns between murder attempts *)
  c_one_in : int;  (** kill with probability 1/c_one_in per tick *)
  c_recheck : bool;
  c_with_plan : bool;
}

let gen_chaos =
  QCheck.Gen.(
    let* c_wl_seed = 0 -- 200 in
    let* c_interval = 20_000 -- 120_000 in
    let* c_one_in = 1 -- 4 in
    let* c_recheck = bool in
    let* c_with_plan = bool in
    return { c_wl_seed; c_interval; c_one_in; c_recheck; c_with_plan })

let print_chaos c =
  Printf.sprintf "{wl_seed=%d; interval=%d; one_in=%d; recheck=%b; plan=%b}"
    c.c_wl_seed c.c_interval c.c_one_in c.c_recheck c.c_with_plan

let run_chaos c =
  let program =
    Workloads.Codegen.generate ~name:"chaos"
      ~seed:(Int64.of_int (c.c_wl_seed + 1))
      ~page_size:platform.Platform.page_size
      {
        Workloads.Codegen.pattern =
          Workloads.Codegen.Chase { pages = 6; hot_pages = 3; cold_every = 2 };
        alu_per_mem = 3;
        store_every = 2;
        outer_iters = 8;
        inner_iters = 30;
        io_every = 3;
        gettime_every = 4;
        rdtsc_every = 0;
        mmap_churn = false;
      }
  in
  let config =
    {
      (Parallaft.Config.parallaft ~platform ~slice_period:15_000 ()) with
      Parallaft.Config.check_invariants = true;
      recovery = true;
      recheck_on_mismatch = c.c_recheck;
      fault_plan =
        (if c.c_with_plan then
           Some
             (Fault.checker_register ~segment:1 ~delay_instructions:60 ~reg:13
                ~bit:6)
         else None);
    }
  in
  let rng = Util.Rng.create ~seed:(Int64.of_int (c.c_wl_seed + 99)) in
  let captured = ref None in
  let r =
    Parallaft.Runtime.run_protected ~platform ~config ~program
      ~before_run:(fun eng coord ->
        captured := Some (eng, coord);
        Sim_os.Engine.add_tick eng ~every_ns:c.c_interval (fun eng ->
            let main = Parallaft.Coordinator.main_pid coord in
            let victims =
              List.filter
                (fun p ->
                  p <> main
                  &&
                  match Sim_os.Engine.state eng p with
                  | Sim_os.Engine.Exited _ -> false
                  | Sim_os.Engine.Runnable | Sim_os.Engine.Stopped -> true)
                (Parallaft.Coordinator.live_pids coord)
            in
            if victims <> [] && Util.Rng.int rng c.c_one_in = 0 then
              Sim_os.Engine.kill eng
                (List.nth victims (Util.Rng.int rng (List.length victims)))))
      ()
  in
  let eng, coord = Option.get !captured in
  (r, eng, coord)

let prop_chaos c =
  let r, eng, coord = run_chaos c in
  List.iter
    (fun (id, hist) ->
      if not (Seg.legal_history hist) then
        QCheck.Test.fail_reportf "segment %d: illegal history [%s]" id
          (String.concat "; " (List.map Seg.phase_to_string hist)))
    (Parallaft.Coordinator.segment_histories coord);
  let leaked = Sim_os.Engine.live_processes eng in
  if leaked <> 0 then
    QCheck.Test.fail_reportf "%d engine processes leaked at run end" leaked;
  (* Loud terminal outcome — a run that neither finished nor aborted hit
     the engine's hang bound with the pipeline wedged. *)
  if not (r.Parallaft.Runtime.exit_status = Some 0 || r.Parallaft.Runtime.aborted)
  then QCheck.Test.fail_report "run neither completed nor aborted";
  true

let qcheck_chaos_during_recovery =
  QCheck.Test.make
    ~name:"checker murders during recovery: legal histories, no leaks, no hang"
    ~count:15
    (QCheck.make ~print:print_chaos gen_chaos)
    prop_chaos

let test_chaos_directed () =
  (* One pinned aggressive case (murder nearly every tick, fault plan and
     re-check both on) so the suite exercises the branchiest interleaving
     deterministically even if the generator drifts. *)
  ignore
    (prop_chaos
       {
         c_wl_seed = 3;
         c_interval = 25_000;
         c_one_in = 1;
         c_recheck = true;
         c_with_plan = true;
       })

let test_histories_disabled_without_flag () =
  let program = Workloads.Micro.getpid_loop ~iters:50 in
  let config = Parallaft.Config.parallaft ~platform ~slice_period:15_000 () in
  let config = { config with Parallaft.Config.check_invariants = false } in
  let captured = ref None in
  ignore
    (Parallaft.Runtime.run_protected ~platform ~config ~program
       ~before_run:(fun _ coord -> captured := Some coord)
       ());
  Alcotest.(check bool) "no history retention when invariants off" true
    (Parallaft.Coordinator.segment_histories (Option.get !captured) = [])

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "segment"
    [
      ( "state-machine",
        [
          tc "parallaft path" `Quick test_parallaft_path;
          tc "streaming death path" `Quick test_streaming_death_path;
          tc "streaming cursor inherited" `Quick test_streaming_cursor_inherited;
          tc "illegal transitions rejected" `Quick test_illegal_transitions;
          tc "out-of-state accesses rejected" `Quick test_out_of_state_accesses;
          tc "transition table" `Quick test_legal_transition_table;
        ] );
      ( "pipeline-properties",
        [
          QCheck_alcotest.to_alcotest qcheck_pipeline_paths_and_no_leaks;
          tc "raft recovery with invariants" `Quick test_raft_recovery_invariants;
          tc "histories gated on flag" `Quick test_histories_disabled_without_flag;
        ] );
      ( "fault-during-recovery",
        [
          QCheck_alcotest.to_alcotest qcheck_chaos_during_recovery;
          tc "directed chaos case" `Quick test_chaos_directed;
        ] );
    ]
