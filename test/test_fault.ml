(* Unit tests for the fault model (lib/fault): target taxonomy, CLI
   keyword parsing, plan validation and printing. The runtime-facing
   behavior of each target class is exercised end-to-end in
   test_parallaft; this file pins the pure description layer. *)

let plan_with target =
  { Fault.segment = 1; delay_instructions = 50; target; repeat = false }

let test_kind_roundtrip () =
  (* Every CLI keyword parses, and the built target prints back to the
     same keyword. *)
  List.iter
    (fun kw ->
      match Fault.target_kind_of_string kw with
      | Error k -> Alcotest.failf "keyword %s rejected (%s)" kw k
      | Ok build ->
        Alcotest.(check string)
          (kw ^ " roundtrips")
          kw
          (Fault.target_kind_to_string (build 3 4)))
    Fault.all_target_kinds

let test_unknown_kind_rejected () =
  match Fault.target_kind_of_string "cosmic-ray" with
  | Ok _ -> Alcotest.fail "unknown keyword accepted"
  | Error k -> Alcotest.(check string) "names the keyword" "cosmic-ray" k

let test_checker_register_constructor () =
  let p =
    Fault.checker_register ~segment:2 ~delay_instructions:70 ~reg:13 ~bit:6
  in
  Alcotest.(check int) "segment" 2 p.Fault.segment;
  Alcotest.(check int) "delay" 70 p.Fault.delay_instructions;
  Alcotest.(check bool) "transient" false p.Fault.repeat;
  match p.Fault.target with
  | Fault.Checker_register { reg = 13; bit = 6 } -> ()
  | _ -> Alcotest.fail "wrong target"

let test_side_classification () =
  let checker_side =
    [
      Fault.Checker_register { reg = 1; bit = 0 };
      Fault.Checker_memory_page { page_index = 0; bit = 0 };
      Fault.Runtime_fault Fault.Kill;
      Fault.Runtime_fault Fault.Stall;
    ]
  and main_side =
    [
      Fault.Main_register { reg = 1; bit = 0 };
      Fault.Main_memory_page { page_index = 0; bit = 0 };
    ]
  in
  List.iter
    (fun tg ->
      let p = plan_with tg in
      Alcotest.(check bool) "checker side" true (Fault.targets_checker p);
      Alcotest.(check bool) "not main side" false (Fault.targets_main p))
    checker_side;
  List.iter
    (fun tg ->
      let p = plan_with tg in
      Alcotest.(check bool) "main side" true (Fault.targets_main p);
      Alcotest.(check bool) "not checker side" false (Fault.targets_checker p))
    main_side

let check_invalid name p =
  match Fault.validate p with
  | Ok () -> Alcotest.fail (name ^ " accepted")
  | Error _ -> ()

let test_validate () =
  (match Fault.validate (plan_with (Fault.Checker_register { reg = 0; bit = 63 })) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "bit 63 rejected: %s" m);
  check_invalid "bit 64"
    (plan_with (Fault.Checker_register { reg = 0; bit = 64 }));
  check_invalid "negative bit"
    (plan_with (Fault.Main_register { reg = 0; bit = -1 }));
  check_invalid "bad register"
    (plan_with (Fault.Main_register { reg = Isa.Insn.num_regs; bit = 0 }));
  check_invalid "negative page"
    (plan_with (Fault.Checker_memory_page { page_index = -1; bit = 0 }));
  check_invalid "negative delay"
    {
      Fault.segment = 0;
      delay_instructions = -1;
      target = Fault.Runtime_fault Fault.Kill;
      repeat = false;
    };
  check_invalid "negative segment"
    {
      Fault.segment = -1;
      delay_instructions = 0;
      target = Fault.Runtime_fault Fault.Kill;
      repeat = false;
    }

let test_to_string_mentions_fields () =
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  let s =
    Fault.to_string
      {
        Fault.segment = 3;
        delay_instructions = 99;
        target = Fault.Main_memory_page { page_index = 7; bit = 5 };
        repeat = true;
      }
  in
  Alcotest.(check bool) ("mentions target kind: " ^ s) true
    (contains ~needle:"main-mem" s)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fault"
    [
      ( "model",
        [
          tc "kind keywords roundtrip" `Quick test_kind_roundtrip;
          tc "unknown keyword rejected" `Quick test_unknown_kind_rejected;
          tc "checker_register constructor" `Quick
            test_checker_register_constructor;
          tc "checker/main side classification" `Quick test_side_classification;
          tc "validation ranges" `Quick test_validate;
          tc "to_string names the target" `Quick test_to_string_mentions_fields;
        ] );
    ]
