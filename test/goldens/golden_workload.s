; Fixed golden workload for the refactor byte-identity checks (test/dune
; @golden alias, `make golden-check`).
;
; A small deterministic loop mixing syscalls (getpid), memory traffic
; (store/load round trips through the heap) and a final write of the
; accumulated checksums, so every detection mechanism has something to
; bite on:
;   - r13/r14 carry checksums that end up in registers, memory and the
;     program output; both accumulate linearly (no doubling, no
;     masking), so an injected bit flip keeps a permanent delta the
;     comparator always sees;
;   - r12 is the loop counter (flipping it desynchronizes the checker's
;     syscall stream, which even RAFT's syscall-only detection catches).
.zero 0x10000 4096
  li r12, 400        ; iterations
  li r13, 0          ; pid checksum
  li r14, 0          ; store/load round-trip checksum
  li r9, 0x10000     ; heap scratch buffer
loop:
  li r0, 9           ; getpid()
  syscall
  add r13, r13, r0
  store r13, r9, 0
  load r8, r9, 0
  add r14, r14, r8
  li r10, 0
  sub r12, r12, 1
  bne r12, r10, loop
  store r13, r9, 8
  store r14, r9, 16
  li r0, 1           ; write(1, heap+8, 16)
  li r1, 1
  li r2, 0x10008
  li r3, 16
  syscall
  li r0, 0           ; exit(0)
  li r1, 0
  syscall
