(* Tests for the observability library: ring-buffer semantics, histogram
   percentile math, zero-cost-when-disabled, byte-determinism of the
   Chrome trace export across equal-seed runs, presence of the key event
   kinds (segment/fork/check/compare/detection), JSON well-formedness of
   the exporter output, and the detection-report ordering contract. *)

let platform = Platform.testing

let busy_program ?(outer = 12) () =
  Workloads.Codegen.generate ~name:"busy" ~seed:11L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = outer;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 5;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let run_with_sink ?fault_plan ?(recovery = false) ?(recheck = false)
    ?(profile = false) ?(seed = 42L) () =
  let sink = Obs.Sink.create () in
  if profile then Obs.Profile.set_enabled sink.Obs.Sink.profile true;
  let config =
    {
      (Parallaft.Config.parallaft ~platform ~slice_period:20_000 ()) with
      Parallaft.Config.obs = Some sink;
      fault_plan;
      recovery;
      recheck_on_mismatch = recheck;
    }
  in
  let program = busy_program () in
  let r = Parallaft.Runtime.run_protected ~seed ~platform ~config ~program () in
  (r, sink)

(* {2 Trace ring buffer} *)

let test_ring_overwrites_oldest () =
  let t = Obs.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Trace.emit t ~ts_ns:(i * 10) ~track:Obs.Trace.Run
      ~phase:Obs.Trace.Instant
      (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Trace.length t);
  Alcotest.(check int) "two dropped" 2 (Obs.Trace.dropped t);
  let names = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events t) in
  Alcotest.(check (list string)) "oldest first, oldest two gone"
    [ "e3"; "e4"; "e5"; "e6" ] names

let test_disabled_trace_records_nothing () =
  let t = Obs.Trace.create ~capacity:8 () in
  Obs.Trace.set_enabled t false;
  Obs.Trace.emit t ~ts_ns:1 ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant "x";
  Alcotest.(check int) "no events" 0 (Obs.Trace.length t);
  Obs.Trace.set_enabled t true;
  Obs.Trace.emit t ~ts_ns:2 ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant "y";
  Alcotest.(check int) "re-enabled records" 1 (Obs.Trace.length t)

(* {2 Histogram percentiles} *)

let test_hist_percentiles () =
  let h = Obs.Metrics.Hist.create () in
  for i = 1 to 100 do
    Obs.Metrics.Hist.add h (float_of_int i)
  done;
  let check name expected got =
    Alcotest.(check (float 1e-9)) name expected got
  in
  check "p50 interpolates" 50.5 (Obs.Metrics.Hist.percentile h 50.);
  check "p90 interpolates" 90.1 (Obs.Metrics.Hist.percentile h 90.);
  check "p99 interpolates" 99.01 (Obs.Metrics.Hist.percentile h 99.);
  check "p0 is min" 1. (Obs.Metrics.Hist.percentile h 0.);
  check "p100 is max" 100. (Obs.Metrics.Hist.percentile h 100.);
  check "mean" 50.5 (Obs.Metrics.Hist.mean h);
  check "min" 1. (Obs.Metrics.Hist.min h);
  check "max" 100. (Obs.Metrics.Hist.max h);
  Alcotest.(check int) "count" 100 (Obs.Metrics.Hist.count h)

let test_hist_edge_cases () =
  let empty = Obs.Metrics.Hist.create () in
  Alcotest.(check (float 0.)) "empty percentile" 0.
    (Obs.Metrics.Hist.percentile empty 50.);
  let one = Obs.Metrics.Hist.create () in
  Obs.Metrics.Hist.add one 7.;
  Alcotest.(check (float 0.)) "singleton p50" 7.
    (Obs.Metrics.Hist.percentile one 50.);
  Alcotest.(check (float 0.)) "singleton p99" 7.
    (Obs.Metrics.Hist.percentile one 99.)

let test_metrics_text_names_quantiles () =
  let s = Obs.Sink.create () in
  for i = 1 to 1000 do
    Obs.Sink.observe s "lat" (float_of_int i)
  done;
  let text = Obs.Metrics.to_text s.Obs.Sink.metrics in
  List.iter
    (fun q ->
      Alcotest.(check bool) (q ^ " column present") true (contains ~needle:q text))
    [ "count="; "min="; "mean="; "p50="; "p90="; "p99="; "p99.9="; "max=" ];
  (* the tail quantiles are ordered: p99 <= p99.9 <= max *)
  match Obs.Metrics.hist s.Obs.Sink.metrics "lat" with
  | None -> Alcotest.fail "lat histogram missing"
  | Some h ->
    let p99 = Obs.Metrics.Hist.percentile h 99. in
    let p999 = Obs.Metrics.Hist.percentile h 99.9 in
    Alcotest.(check bool) "p99 <= p99.9" true (p99 <= p999);
    Alcotest.(check bool) "p99.9 <= max" true (p999 <= Obs.Metrics.Hist.max h)

(* {2 Disabled sink through a full run} *)

let test_disabled_sink_records_nothing () =
  let sink = Obs.Sink.create () in
  Obs.Sink.set_enabled sink false;
  let config =
    {
      (Parallaft.Config.parallaft ~platform ~slice_period:20_000 ()) with
      Parallaft.Config.obs = Some sink;
    }
  in
  let program = busy_program () in
  let _r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  Alcotest.(check int) "no trace events" 0
    (Obs.Trace.length sink.Obs.Sink.trace);
  Alcotest.(check int) "no histograms" 0
    (List.length (Obs.Metrics.histograms sink.Obs.Sink.metrics));
  Alcotest.(check int) "no counters" 0
    (List.length (Obs.Metrics.counters sink.Obs.Sink.metrics))

(* {2 Determinism and content} *)

let test_trace_deterministic () =
  let _, s1 = run_with_sink ~seed:7L () in
  let _, s2 = run_with_sink ~seed:7L () in
  let j1 = Obs.Export.chrome_json s1.Obs.Sink.trace in
  let j2 = Obs.Export.chrome_json s2.Obs.Sink.trace in
  Alcotest.(check bool) "trace is non-trivial"
    true
    (Obs.Trace.length s1.Obs.Sink.trace > 10);
  Alcotest.(check string) "equal seeds give byte-identical JSON" j1 j2;
  let t1 = Obs.Export.summary s1.Obs.Sink.trace in
  let t2 = Obs.Export.summary s2.Obs.Sink.trace in
  Alcotest.(check string) "summaries identical too" t1 t2

let event_names sink =
  List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events sink.Obs.Sink.trace)

let test_trace_contains_lifecycle_events () =
  let r, sink = run_with_sink () in
  Alcotest.(check int) "clean run" 0
    (List.length r.Parallaft.Runtime.detections);
  let names = event_names sink in
  let has n = List.mem n names in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " event present") true (has n))
    [ "segment"; "fork"; "check"; "replay.start"; "compare"; "slice";
      "sys.record"; "sys.replay"; "exit" ];
  (* the same names must survive export *)
  let json = Obs.Export.chrome_json sink.Obs.Sink.trace in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in JSON") true
        (contains ~needle:("\"name\":\"" ^ n ^ "\"") json))
    [ "segment"; "fork"; "compare" ];
  (* per-segment metrics accumulated *)
  (match Obs.Metrics.hist sink.Obs.Sink.metrics "checker.latency_ns" with
  | Some h -> Alcotest.(check bool) "latency observed" true
                (Obs.Metrics.Hist.count h > 0)
  | None -> Alcotest.fail "checker.latency_ns histogram missing")

let test_trace_contains_detection () =
  let fault_plan =
    Fault.checker_register ~segment:0 ~delay_instructions:50 ~reg:13 ~bit:7
  in
  let r, sink = run_with_sink ~fault_plan () in
  ignore r;
  let names = event_names sink in
  Alcotest.(check bool) "detection event present" true
    (List.mem "detection" names);
  Alcotest.(check bool) "detections counter bumped" true
    (Obs.Metrics.counter sink.Obs.Sink.metrics "detections" > 0)

(* {2 JSON well-formedness}

   No JSON library in the test environment, so validate the exporter's
   output with a minimal recursive-descent parser: good enough to catch
   unbalanced brackets, bad escapes, trailing commas and garbage. *)

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "%s at byte %d" msg !pos) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); fin := true
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
            | _ -> fail "bad \\u escape");
            advance ()
          done
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let fin = ref false in
        while not !fin do
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some '}' -> advance (); fin := true
          | _ -> fail "expected , or }"
        done
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let fin = ref false in
        while not !fin do
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some ']' -> advance (); fin := true
          | _ -> fail "expected , or ]"
        done
      end
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then pos := !pos + 4
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then pos := !pos + 5
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then pos := !pos + 4
      else fail "bad literal"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_chrome_json_is_valid_json () =
  let _, sink = run_with_sink () in
  let json = Obs.Export.chrome_json sink.Obs.Sink.trace in
  (match validate_json json with
  | () -> ()
  | exception Failure msg -> Alcotest.fail ("invalid JSON: " ^ msg));
  Alcotest.(check bool) "has traceEvents key" true
    (contains ~needle:"\"traceEvents\"" json)

(* Pin the exporter's exact bytes for one event of every phase kind,
   with sub-microsecond timestamps: the trace_event "ts" field is
   microseconds, so 5 ns must render as "0.005" (three-digit fraction),
   never "0.5". Any formatting drift — field order, padding, separators
   — breaks the committed trace goldens, so catch it here with a
   readable diff first. *)
let test_export_bytes_pinned () =
  let t = Obs.Trace.create ~capacity:16 () in
  Obs.Trace.emit t ~ts_ns:5 ~track:(Obs.Trace.Core 0) ~phase:Obs.Trace.Begin
    "record";
  Obs.Trace.emit t ~ts_ns:42 ~track:Obs.Trace.Run ~phase:Obs.Trace.Counter
    ~args:[ ("self_ns", Obs.Trace.Int 7) ]
    "profile.record";
  Obs.Trace.emit t ~ts_ns:999 ~track:(Obs.Trace.Core 0) ~phase:Obs.Trace.Instant
    "mark";
  Obs.Trace.emit t ~ts_ns:1005 ~track:(Obs.Trace.Core 0) ~phase:Obs.Trace.End
    "record";
  let expected =
    String.concat "\n"
      [
        "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"cores\"}},";
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\"args\":{\"name\":\"runtime\"}},";
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"core 0\"}},";
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\"args\":{\"name\":\"run\"}},";
        "{\"name\":\"record\",\"ph\":\"B\",\"ts\":0.005,\"pid\":0,\"tid\":0},";
        "{\"name\":\"profile.record\",\"ph\":\"C\",\"ts\":0.042,\"pid\":2,\"tid\":0,\"args\":{\"self_ns\":7}},";
        "{\"name\":\"mark\",\"ph\":\"i\",\"ts\":0.999,\"pid\":0,\"tid\":0,\"s\":\"t\"},";
        "{\"name\":\"record\",\"ph\":\"E\",\"ts\":1.005,\"pid\":0,\"tid\":0}";
        "]}";
        "";
      ]
  in
  Alcotest.(check string) "exporter bytes pinned" expected
    (Obs.Export.chrome_json t)

(* {2 Span balance under abort and rollback}

   Checkers torn down by recover/abort_run never reach finish_checker;
   the coordinator must still close their "check" (and the in-flight
   "segment") Begin spans, or Perfetto renders dangling spans. Walk the
   event stream per track and require strict Begin/End stack discipline
   with nothing left open at the end. *)

let assert_spans_balanced sink =
  let stacks : (Obs.Trace.track, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let stack =
        Option.value (Hashtbl.find_opt stacks e.Obs.Trace.track) ~default:[]
      in
      match e.Obs.Trace.phase with
      | Obs.Trace.Begin ->
        Hashtbl.replace stacks e.Obs.Trace.track (e.Obs.Trace.name :: stack)
      | Obs.Trace.End -> (
        match stack with
        | top :: rest when top = e.Obs.Trace.name ->
          Hashtbl.replace stacks e.Obs.Trace.track rest
        | _ -> Alcotest.fail ("unmatched End event: " ^ e.Obs.Trace.name))
      | Obs.Trace.Instant | Obs.Trace.Counter -> ())
    (Obs.Trace.events sink.Obs.Sink.trace);
  Hashtbl.iter
    (fun _ stack ->
      match stack with
      | [] -> ()
      | name :: _ -> Alcotest.fail ("dangling Begin span: " ^ name))
    stacks

let has_torn_down sink =
  List.exists
    (fun e ->
      List.exists
        (fun (k, v) -> k = "outcome" && v = Obs.Trace.Str "torn-down")
        e.Obs.Trace.args)
    (Obs.Trace.events sink.Obs.Sink.trace)

let teardown_fault_plan =
  Fault.checker_register ~segment:1 ~delay_instructions:60 ~reg:13 ~bit:6

let test_abort_closes_spans () =
  let r, sink = run_with_sink ~fault_plan:teardown_fault_plan () in
  Alcotest.(check bool) "run aborted" true r.Parallaft.Runtime.aborted;
  assert_spans_balanced sink;
  Alcotest.(check bool) "torn-down close emitted" true (has_torn_down sink)

let test_recovery_closes_spans () =
  let r, sink =
    run_with_sink ~fault_plan:teardown_fault_plan ~recovery:true ()
  in
  Alcotest.(check bool) "rolled back" true
    (r.Parallaft.Runtime.stats.Parallaft.Stats.recoveries >= 1);
  Alcotest.(check bool) "run not aborted" false r.Parallaft.Runtime.aborted;
  assert_spans_balanced sink;
  Alcotest.(check bool) "torn-down close emitted" true (has_torn_down sink)

let test_recheck_spans_balanced () =
  (* A re-dispatched check moves the segment onto the spare checker's
     track mid-flight: the dying checker's "check" Begin must close
     (outcome "re-dispatched: ...") before the spare opens its own, or
     the trace ends with a dangling span on the old track. *)
  let r, sink = run_with_sink ~fault_plan:teardown_fault_plan ~recheck:true () in
  Alcotest.(check bool) "re-check dispatched" true
    (r.Parallaft.Runtime.stats.Parallaft.Stats.rechecks >= 1);
  Alcotest.(check bool) "resolved transient, run completed" true
    (r.Parallaft.Runtime.stats.Parallaft.Stats.transient_faults >= 1
    && r.Parallaft.Runtime.exit_status = Some 0);
  assert_spans_balanced sink;
  let names = event_names sink in
  Alcotest.(check bool) "recheck event present" true (List.mem "recheck" names);
  Alcotest.(check bool) "transient resolution event present" true
    (List.mem "recheck.transient" names);
  Alcotest.(check bool) "re-dispatch closed the old span" true
    (List.exists
       (fun e ->
         e.Obs.Trace.name = "check"
         && e.Obs.Trace.phase = Obs.Trace.End
         && List.exists
              (fun (k, v) ->
                k = "outcome"
                &&
                match v with
                | Obs.Trace.Str s -> contains ~needle:"re-dispatched" s
                | _ -> false)
              e.Obs.Trace.args)
       (Obs.Trace.events sink.Obs.Sink.trace))

(* {2 Detection ordering contract} *)

let test_detections_oldest_first () =
  let st = Parallaft.Stats.create () in
  let o1 = Parallaft.Detection.Timeout_detected in
  let o2 = Parallaft.Detection.Exception_detected "boom" in
  Parallaft.Stats.record_detection st ~segment:1 o1;
  Parallaft.Stats.record_detection st ~segment:2 o2;
  (* storage is newest first... *)
  (match st.Parallaft.Stats.detections with
  | [ (2, _); (1, _) ] -> ()
  | _ -> Alcotest.fail "storage should be newest first");
  (* ...and the report accessor flips it exactly once *)
  match Parallaft.Stats.detections_oldest_first st with
  | [ (1, _); (2, _) ] -> ()
  | _ -> Alcotest.fail "detections_oldest_first should be chronological"

(* {2 Phase-attribution profiler} *)

let test_profile_disabled_is_noop () =
  let p = Obs.Profile.create () in
  Obs.Profile.enter p ~ts_ns:0 ~track:(Obs.Trace.Core 0) "record";
  Alcotest.(check bool) "leave returns None" true
    (Obs.Profile.leave p ~ts_ns:10 ~track:(Obs.Trace.Core 0) "record" = None);
  Alcotest.(check bool) "add_ns returns None" true
    (Obs.Profile.add_ns p ~tracks:[ Obs.Trace.Run ] "compare" 5 = None);
  Alcotest.(check int) "no phases recorded" 0
    (List.length (Obs.Profile.phases p))

let test_profile_self_time_nesting () =
  let p = Obs.Profile.create () in
  Obs.Profile.set_enabled p true;
  let core = Obs.Trace.Core 0 in
  Obs.Profile.enter p ~ts_ns:0 ~track:core ~segment:0 "record";
  Obs.Profile.enter p ~ts_ns:10 ~track:core "main_held";
  Alcotest.(check (option int)) "nested scope self" (Some 20)
    (Obs.Profile.leave p ~ts_ns:30 ~track:core "main_held");
  Alcotest.(check (option int)) "zero-width charge" (Some 5)
    (Obs.Profile.add_ns p ~tracks:[ core ] ~segment:0 "compare" 5);
  (* record's self excludes both the nested scope and the charge *)
  Alcotest.(check (option int)) "outer self = elapsed - children" (Some 75)
    (Obs.Profile.leave p ~ts_ns:100 ~track:core "record");
  let phases = Obs.Profile.phases p in
  let get n =
    match List.assoc_opt n phases with
    | Some s -> s
    | None -> Alcotest.fail ("missing phase " ^ n)
  in
  Alcotest.(check int) "record total is inclusive" 100 (get "record").Obs.Profile.total_ns;
  Alcotest.(check bool) "core scopes are wall phases" true
    ((get "record").Obs.Profile.wall && (get "main_held").Obs.Profile.wall);
  Alcotest.(check bool) "charges are work phases" false
    (get "compare").Obs.Profile.wall;
  Alcotest.(check int) "wall partition sums scope selves" 95
    (Obs.Profile.wall_attributed_ns p);
  Alcotest.(check bool) "segment attribution" true
    (Obs.Profile.per_segment p = [ (0, [ ("compare", 5); ("record", 75) ]) ])

let test_profile_close_all () =
  let p = Obs.Profile.create () in
  Obs.Profile.set_enabled p true;
  Obs.Profile.enter p ~ts_ns:0 ~track:(Obs.Trace.Core 0) "record";
  Obs.Profile.enter p ~ts_ns:5 ~track:(Obs.Trace.Proc 1) "replay";
  Obs.Profile.add_units p
    ~tracks:[ Obs.Trace.Proc 1; Obs.Trace.Core 0 ]
    ~decoded:3 ~insns:100 ~blocks:7;
  Obs.Profile.close_all p ~ts_ns:50;
  let phases = Obs.Profile.phases p in
  let self n =
    match List.assoc_opt n phases with
    | Some s -> s.Obs.Profile.self_ns
    | None -> -1
  in
  Alcotest.(check int) "record closed at teardown" 50 (self "record");
  Alcotest.(check int) "replay closed at teardown" 45 (self "replay");
  (match List.assoc_opt "replay" phases with
  | Some s ->
    Alcotest.(check int) "units credited to innermost scope" 100
      s.Obs.Profile.insns;
    Alcotest.(check int) "blocks too" 7 s.Obs.Profile.blocks;
    Alcotest.(check int) "decoded too" 3 s.Obs.Profile.decoded
  | None -> Alcotest.fail "replay phase missing");
  (* idempotent: nothing left open *)
  Obs.Profile.close_all p ~ts_ns:99;
  Alcotest.(check int) "second close_all changes nothing" 50 (self "record")

let charges_gen =
  QCheck.Gen.(
    list_size (0 -- 20)
      (triple
         (oneofl [ "record"; "replay"; "compare"; "fork" ])
         (0 -- 1000)
         (opt (0 -- 3))))

let profiler_of charges =
  let p = Obs.Profile.create () in
  Obs.Profile.set_enabled p true;
  List.iter
    (fun (name, ns, seg) ->
      ignore (Obs.Profile.add_ns p ~tracks:[ Obs.Trace.Run ] ?segment:seg name ns))
    charges;
  p

let profile_fingerprint p = (Obs.Profile.phases p, Obs.Profile.per_segment p)

let qcheck_profile_merge =
  QCheck.Test.make ~name:"profile merge is order-independent and associative"
    ~count:200
    (QCheck.make QCheck.Gen.(triple charges_gen charges_gen charges_gen))
    (fun (ca, cb, cc) ->
      let pa = profiler_of ca and pb = profiler_of cb and pc = profiler_of cc in
      let merged srcs =
        let d = Obs.Profile.create () in
        Obs.Profile.merge_into d srcs;
        d
      in
      let direct = merged [ pa; pb; pc ] in
      let permuted = merged [ pc; pa; pb ] in
      let nested = merged [ merged [ pa; pb ]; pc ] in
      profile_fingerprint direct = profile_fingerprint permuted
      && profile_fingerprint direct = profile_fingerprint nested)

(* {2 Profiler through a full run} *)

let test_profiled_run_attribution () =
  let r, sink = run_with_sink ~profile:true () in
  let p = sink.Obs.Sink.profile in
  let phases = Obs.Profile.phases p in
  Alcotest.(check bool) "phases recorded" true (phases <> []);
  let wall = r.Parallaft.Runtime.wall_ns in
  let attributed = Obs.Profile.wall_attributed_ns p in
  Alcotest.(check bool) "wall partition within run wall-time" true
    (attributed > 0 && attributed <= wall);
  (* the stats surface mirrors the profiler exactly *)
  Alcotest.(check bool) "stats profile rows match" true
    (List.map (fun (n, s) -> (n, s.Obs.Profile.self_ns)) phases
    = r.Parallaft.Runtime.stats.Parallaft.Stats.profile);
  (* per-segment attribution sums back to the aggregate for the phases
     whose every scope carries a segment *)
  let seg_sum name =
    List.fold_left
      (fun acc (_, rows) ->
        acc + (match List.assoc_opt name rows with Some n -> n | None -> 0))
      0 (Obs.Profile.per_segment p)
  in
  let agg name =
    match List.assoc_opt name phases with
    | Some s -> s.Obs.Profile.self_ns
    | None -> Alcotest.fail ("missing phase " ^ name)
  in
  List.iter
    (fun n ->
      Alcotest.(check int) (n ^ " per-segment sums to aggregate") (agg n)
        (seg_sum n))
    [ "record"; "replay" ];
  (* the hot-path unit counters attributed work to the record phase *)
  (match List.assoc_opt "record" phases with
  | Some s ->
    Alcotest.(check bool) "record retired instructions" true
      (s.Obs.Profile.insns > 0 && s.Obs.Profile.blocks > 0)
  | None -> Alcotest.fail "record phase missing");
  (* counter tracks land in the export and it stays valid JSON *)
  let json = Obs.Export.chrome_json sink.Obs.Sink.trace in
  (match validate_json json with
  | () -> ()
  | exception Failure m -> Alcotest.fail ("invalid JSON with profiling: " ^ m));
  Alcotest.(check bool) "profile counter track present" true
    (contains ~needle:"\"name\":\"profile.record\",\"ph\":\"C\"" json)

let test_profiled_run_deterministic () =
  let r1, s1 = run_with_sink ~profile:true ~seed:7L () in
  let r2, s2 = run_with_sink ~profile:true ~seed:7L () in
  Alcotest.(check string) "equal seeds give identical breakdowns"
    (Obs.Profile.to_table s1.Obs.Sink.profile
       ~wall_ns:r1.Parallaft.Runtime.wall_ns)
    (Obs.Profile.to_table s2.Obs.Sink.profile
       ~wall_ns:r2.Parallaft.Runtime.wall_ns)

let test_profile_off_leaves_run_untouched () =
  let r, sink = run_with_sink () in
  Alcotest.(check bool) "no profile.* events in trace" false
    (contains ~needle:"profile." (Obs.Export.chrome_json sink.Obs.Sink.trace));
  Alcotest.(check int) "no phases recorded" 0
    (List.length (Obs.Profile.phases sink.Obs.Sink.profile));
  Alcotest.(check bool) "no profile stats rows" true
    (r.Parallaft.Runtime.stats.Parallaft.Stats.profile = [])

(* {2 Sink merging (parallel fan-out support)} *)

let task_sink i =
  let s = Obs.Sink.create () in
  Obs.Sink.incr s "segments";
  Obs.Sink.add s (Printf.sprintf "task%d.only" i) i;
  Obs.Sink.observe s "latency_ns" (float_of_int (100 * (i + 1)));
  Obs.Sink.emit s ~ts_ns:(10 * i) ~track:(Obs.Trace.Proc i)
    ~phase:Obs.Trace.Instant
    (Printf.sprintf "task%d" i);
  s

let test_sink_merge_deterministic () =
  (* Merging per-task sinks in task order must be reproducible: two
     merges of equal task sinks give byte-identical traces and metric
     dumps, regardless of how the tasks themselves were scheduled. *)
  let merged () =
    let dst = Obs.Sink.create () in
    Obs.Sink.merge_into dst (List.init 3 task_sink);
    dst
  in
  let a = merged () and b = merged () in
  Alcotest.(check string) "traces identical"
    (Obs.Export.chrome_json a.Obs.Sink.trace)
    (Obs.Export.chrome_json b.Obs.Sink.trace);
  Alcotest.(check string) "metrics identical"
    (Obs.Metrics.to_text a.Obs.Sink.metrics)
    (Obs.Metrics.to_text b.Obs.Sink.metrics);
  (* Counters sum across sources; events append in task order. *)
  Alcotest.(check int) "counter summed" 3
    (Obs.Metrics.counter a.Obs.Sink.metrics "segments");
  Alcotest.(check int) "per-task counters kept" 2
    (Obs.Metrics.counter a.Obs.Sink.metrics "task2.only");
  let names =
    List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events a.Obs.Sink.trace)
  in
  Alcotest.(check (list string)) "events in task order"
    [ "task0"; "task1"; "task2" ] names;
  match Obs.Metrics.hist a.Obs.Sink.metrics "latency_ns" with
  | Some h ->
    Alcotest.(check int) "histogram observations re-added" 3
      (Obs.Metrics.Hist.count h);
    Alcotest.(check (float 1e-9)) "histogram sum" 600.0
      (Obs.Metrics.Hist.sum h)
  | None -> Alcotest.fail "merged histogram missing"

(* {2 Log quiet flag} *)

let test_log_quiet_flag () =
  let saved = Obs.Log.quiet () in
  Obs.Log.set_quiet true;
  Alcotest.(check bool) "quiet set" true (Obs.Log.quiet ());
  (* must not raise (and must not print, but that we can't observe here) *)
  Obs.Log.progress "suppressed %d" 42;
  Obs.Log.set_quiet false;
  Alcotest.(check bool) "quiet cleared" false (Obs.Log.quiet ());
  Obs.Log.set_quiet saved

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
          Alcotest.test_case "disabled trace records nothing" `Quick
            test_disabled_trace_records_nothing;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentile math" `Quick test_hist_percentiles;
          Alcotest.test_case "percentile edge cases" `Quick
            test_hist_edge_cases;
          Alcotest.test_case "text dump names its quantiles" `Quick
            test_metrics_text_names_quantiles;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "disabled sink records nothing" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "equal seeds give identical traces" `Quick
            test_trace_deterministic;
          Alcotest.test_case "lifecycle events present" `Quick
            test_trace_contains_lifecycle_events;
          Alcotest.test_case "fault injection yields detection event" `Quick
            test_trace_contains_detection;
          Alcotest.test_case "chrome export is valid JSON" `Quick
            test_chrome_json_is_valid_json;
          Alcotest.test_case "exporter bytes pinned" `Quick
            test_export_bytes_pinned;
        ] );
      ( "profile",
        [
          Alcotest.test_case "disabled profiler is a no-op" `Quick
            test_profile_disabled_is_noop;
          Alcotest.test_case "self-time excludes children" `Quick
            test_profile_self_time_nesting;
          Alcotest.test_case "close_all retires open scopes" `Quick
            test_profile_close_all;
          QCheck_alcotest.to_alcotest qcheck_profile_merge;
          Alcotest.test_case "full-run attribution adds up" `Quick
            test_profiled_run_attribution;
          Alcotest.test_case "profiled runs are deterministic" `Quick
            test_profiled_run_deterministic;
          Alcotest.test_case "profiling off leaves the run untouched" `Quick
            test_profile_off_leaves_run_untouched;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "abort closes open spans" `Quick
            test_abort_closes_spans;
          Alcotest.test_case "recovery closes open spans" `Quick
            test_recovery_closes_spans;
          Alcotest.test_case "re-dispatched check keeps spans balanced" `Quick
            test_recheck_spans_balanced;
        ] );
      ( "stats",
        [
          Alcotest.test_case "detections reported oldest first" `Quick
            test_detections_oldest_first;
        ] );
      ( "merge",
        [
          Alcotest.test_case "deterministic sink merge" `Quick
            test_sink_merge_deterministic;
        ] );
      ( "log",
        [ Alcotest.test_case "quiet flag" `Quick test_log_quiet_flag ] );
    ]
