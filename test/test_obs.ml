(* Tests for the observability library: ring-buffer semantics, histogram
   percentile math, zero-cost-when-disabled, byte-determinism of the
   Chrome trace export across equal-seed runs, presence of the key event
   kinds (segment/fork/check/compare/detection), JSON well-formedness of
   the exporter output, and the detection-report ordering contract. *)

let platform = Platform.testing

let busy_program ?(outer = 12) () =
  Workloads.Codegen.generate ~name:"busy" ~seed:11L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = outer;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 5;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let run_with_sink ?fault_plan ?(recovery = false) ?(recheck = false)
    ?(seed = 42L) () =
  let sink = Obs.Sink.create () in
  let config =
    {
      (Parallaft.Config.parallaft ~platform ~slice_period:20_000 ()) with
      Parallaft.Config.obs = Some sink;
      fault_plan;
      recovery;
      recheck_on_mismatch = recheck;
    }
  in
  let program = busy_program () in
  let r = Parallaft.Runtime.run_protected ~seed ~platform ~config ~program () in
  (r, sink)

(* {2 Trace ring buffer} *)

let test_ring_overwrites_oldest () =
  let t = Obs.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Trace.emit t ~ts_ns:(i * 10) ~track:Obs.Trace.Run
      ~phase:Obs.Trace.Instant
      (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Trace.length t);
  Alcotest.(check int) "two dropped" 2 (Obs.Trace.dropped t);
  let names = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events t) in
  Alcotest.(check (list string)) "oldest first, oldest two gone"
    [ "e3"; "e4"; "e5"; "e6" ] names

let test_disabled_trace_records_nothing () =
  let t = Obs.Trace.create ~capacity:8 () in
  Obs.Trace.set_enabled t false;
  Obs.Trace.emit t ~ts_ns:1 ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant "x";
  Alcotest.(check int) "no events" 0 (Obs.Trace.length t);
  Obs.Trace.set_enabled t true;
  Obs.Trace.emit t ~ts_ns:2 ~track:Obs.Trace.Run ~phase:Obs.Trace.Instant "y";
  Alcotest.(check int) "re-enabled records" 1 (Obs.Trace.length t)

(* {2 Histogram percentiles} *)

let test_hist_percentiles () =
  let h = Obs.Metrics.Hist.create () in
  for i = 1 to 100 do
    Obs.Metrics.Hist.add h (float_of_int i)
  done;
  let check name expected got =
    Alcotest.(check (float 1e-9)) name expected got
  in
  check "p50 interpolates" 50.5 (Obs.Metrics.Hist.percentile h 50.);
  check "p90 interpolates" 90.1 (Obs.Metrics.Hist.percentile h 90.);
  check "p99 interpolates" 99.01 (Obs.Metrics.Hist.percentile h 99.);
  check "p0 is min" 1. (Obs.Metrics.Hist.percentile h 0.);
  check "p100 is max" 100. (Obs.Metrics.Hist.percentile h 100.);
  check "mean" 50.5 (Obs.Metrics.Hist.mean h);
  check "min" 1. (Obs.Metrics.Hist.min h);
  check "max" 100. (Obs.Metrics.Hist.max h);
  Alcotest.(check int) "count" 100 (Obs.Metrics.Hist.count h)

let test_hist_edge_cases () =
  let empty = Obs.Metrics.Hist.create () in
  Alcotest.(check (float 0.)) "empty percentile" 0.
    (Obs.Metrics.Hist.percentile empty 50.);
  let one = Obs.Metrics.Hist.create () in
  Obs.Metrics.Hist.add one 7.;
  Alcotest.(check (float 0.)) "singleton p50" 7.
    (Obs.Metrics.Hist.percentile one 50.);
  Alcotest.(check (float 0.)) "singleton p99" 7.
    (Obs.Metrics.Hist.percentile one 99.)

(* {2 Disabled sink through a full run} *)

let test_disabled_sink_records_nothing () =
  let sink = Obs.Sink.create () in
  Obs.Sink.set_enabled sink false;
  let config =
    {
      (Parallaft.Config.parallaft ~platform ~slice_period:20_000 ()) with
      Parallaft.Config.obs = Some sink;
    }
  in
  let program = busy_program () in
  let _r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  Alcotest.(check int) "no trace events" 0
    (Obs.Trace.length sink.Obs.Sink.trace);
  Alcotest.(check int) "no histograms" 0
    (List.length (Obs.Metrics.histograms sink.Obs.Sink.metrics));
  Alcotest.(check int) "no counters" 0
    (List.length (Obs.Metrics.counters sink.Obs.Sink.metrics))

(* {2 Determinism and content} *)

let test_trace_deterministic () =
  let _, s1 = run_with_sink ~seed:7L () in
  let _, s2 = run_with_sink ~seed:7L () in
  let j1 = Obs.Export.chrome_json s1.Obs.Sink.trace in
  let j2 = Obs.Export.chrome_json s2.Obs.Sink.trace in
  Alcotest.(check bool) "trace is non-trivial"
    true
    (Obs.Trace.length s1.Obs.Sink.trace > 10);
  Alcotest.(check string) "equal seeds give byte-identical JSON" j1 j2;
  let t1 = Obs.Export.summary s1.Obs.Sink.trace in
  let t2 = Obs.Export.summary s2.Obs.Sink.trace in
  Alcotest.(check string) "summaries identical too" t1 t2

let event_names sink =
  List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events sink.Obs.Sink.trace)

let test_trace_contains_lifecycle_events () =
  let r, sink = run_with_sink () in
  Alcotest.(check int) "clean run" 0
    (List.length r.Parallaft.Runtime.detections);
  let names = event_names sink in
  let has n = List.mem n names in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " event present") true (has n))
    [ "segment"; "fork"; "check"; "replay.start"; "compare"; "slice";
      "sys.record"; "sys.replay"; "exit" ];
  (* the same names must survive export *)
  let json = Obs.Export.chrome_json sink.Obs.Sink.trace in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in JSON") true
        (contains ~needle:("\"name\":\"" ^ n ^ "\"") json))
    [ "segment"; "fork"; "compare" ];
  (* per-segment metrics accumulated *)
  (match Obs.Metrics.hist sink.Obs.Sink.metrics "checker.latency_ns" with
  | Some h -> Alcotest.(check bool) "latency observed" true
                (Obs.Metrics.Hist.count h > 0)
  | None -> Alcotest.fail "checker.latency_ns histogram missing")

let test_trace_contains_detection () =
  let fault_plan =
    Fault.checker_register ~segment:0 ~delay_instructions:50 ~reg:13 ~bit:7
  in
  let r, sink = run_with_sink ~fault_plan () in
  ignore r;
  let names = event_names sink in
  Alcotest.(check bool) "detection event present" true
    (List.mem "detection" names);
  Alcotest.(check bool) "detections counter bumped" true
    (Obs.Metrics.counter sink.Obs.Sink.metrics "detections" > 0)

(* {2 JSON well-formedness}

   No JSON library in the test environment, so validate the exporter's
   output with a minimal recursive-descent parser: good enough to catch
   unbalanced brackets, bad escapes, trailing commas and garbage. *)

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "%s at byte %d" msg !pos) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); fin := true
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
            | _ -> fail "bad \\u escape");
            advance ()
          done
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let fin = ref false in
        while not !fin do
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some '}' -> advance (); fin := true
          | _ -> fail "expected , or }"
        done
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let fin = ref false in
        while not !fin do
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some ']' -> advance (); fin := true
          | _ -> fail "expected , or ]"
        done
      end
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then pos := !pos + 4
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then pos := !pos + 5
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then pos := !pos + 4
      else fail "bad literal"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_chrome_json_is_valid_json () =
  let _, sink = run_with_sink () in
  let json = Obs.Export.chrome_json sink.Obs.Sink.trace in
  (match validate_json json with
  | () -> ()
  | exception Failure msg -> Alcotest.fail ("invalid JSON: " ^ msg));
  Alcotest.(check bool) "has traceEvents key" true
    (contains ~needle:"\"traceEvents\"" json)

(* {2 Span balance under abort and rollback}

   Checkers torn down by recover/abort_run never reach finish_checker;
   the coordinator must still close their "check" (and the in-flight
   "segment") Begin spans, or Perfetto renders dangling spans. Walk the
   event stream per track and require strict Begin/End stack discipline
   with nothing left open at the end. *)

let assert_spans_balanced sink =
  let stacks : (Obs.Trace.track, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let stack =
        Option.value (Hashtbl.find_opt stacks e.Obs.Trace.track) ~default:[]
      in
      match e.Obs.Trace.phase with
      | Obs.Trace.Begin ->
        Hashtbl.replace stacks e.Obs.Trace.track (e.Obs.Trace.name :: stack)
      | Obs.Trace.End -> (
        match stack with
        | top :: rest when top = e.Obs.Trace.name ->
          Hashtbl.replace stacks e.Obs.Trace.track rest
        | _ -> Alcotest.fail ("unmatched End event: " ^ e.Obs.Trace.name))
      | Obs.Trace.Instant | Obs.Trace.Counter -> ())
    (Obs.Trace.events sink.Obs.Sink.trace);
  Hashtbl.iter
    (fun _ stack ->
      match stack with
      | [] -> ()
      | name :: _ -> Alcotest.fail ("dangling Begin span: " ^ name))
    stacks

let has_torn_down sink =
  List.exists
    (fun e ->
      List.exists
        (fun (k, v) -> k = "outcome" && v = Obs.Trace.Str "torn-down")
        e.Obs.Trace.args)
    (Obs.Trace.events sink.Obs.Sink.trace)

let teardown_fault_plan =
  Fault.checker_register ~segment:1 ~delay_instructions:60 ~reg:13 ~bit:6

let test_abort_closes_spans () =
  let r, sink = run_with_sink ~fault_plan:teardown_fault_plan () in
  Alcotest.(check bool) "run aborted" true r.Parallaft.Runtime.aborted;
  assert_spans_balanced sink;
  Alcotest.(check bool) "torn-down close emitted" true (has_torn_down sink)

let test_recovery_closes_spans () =
  let r, sink =
    run_with_sink ~fault_plan:teardown_fault_plan ~recovery:true ()
  in
  Alcotest.(check bool) "rolled back" true
    (r.Parallaft.Runtime.stats.Parallaft.Stats.recoveries >= 1);
  Alcotest.(check bool) "run not aborted" false r.Parallaft.Runtime.aborted;
  assert_spans_balanced sink;
  Alcotest.(check bool) "torn-down close emitted" true (has_torn_down sink)

let test_recheck_spans_balanced () =
  (* A re-dispatched check moves the segment onto the spare checker's
     track mid-flight: the dying checker's "check" Begin must close
     (outcome "re-dispatched: ...") before the spare opens its own, or
     the trace ends with a dangling span on the old track. *)
  let r, sink = run_with_sink ~fault_plan:teardown_fault_plan ~recheck:true () in
  Alcotest.(check bool) "re-check dispatched" true
    (r.Parallaft.Runtime.stats.Parallaft.Stats.rechecks >= 1);
  Alcotest.(check bool) "resolved transient, run completed" true
    (r.Parallaft.Runtime.stats.Parallaft.Stats.transient_faults >= 1
    && r.Parallaft.Runtime.exit_status = Some 0);
  assert_spans_balanced sink;
  let names = event_names sink in
  Alcotest.(check bool) "recheck event present" true (List.mem "recheck" names);
  Alcotest.(check bool) "transient resolution event present" true
    (List.mem "recheck.transient" names);
  Alcotest.(check bool) "re-dispatch closed the old span" true
    (List.exists
       (fun e ->
         e.Obs.Trace.name = "check"
         && e.Obs.Trace.phase = Obs.Trace.End
         && List.exists
              (fun (k, v) ->
                k = "outcome"
                &&
                match v with
                | Obs.Trace.Str s -> contains ~needle:"re-dispatched" s
                | _ -> false)
              e.Obs.Trace.args)
       (Obs.Trace.events sink.Obs.Sink.trace))

(* {2 Detection ordering contract} *)

let test_detections_oldest_first () =
  let st = Parallaft.Stats.create () in
  let o1 = Parallaft.Detection.Timeout_detected in
  let o2 = Parallaft.Detection.Exception_detected "boom" in
  Parallaft.Stats.record_detection st ~segment:1 o1;
  Parallaft.Stats.record_detection st ~segment:2 o2;
  (* storage is newest first... *)
  (match st.Parallaft.Stats.detections with
  | [ (2, _); (1, _) ] -> ()
  | _ -> Alcotest.fail "storage should be newest first");
  (* ...and the report accessor flips it exactly once *)
  match Parallaft.Stats.detections_oldest_first st with
  | [ (1, _); (2, _) ] -> ()
  | _ -> Alcotest.fail "detections_oldest_first should be chronological"

(* {2 Sink merging (parallel fan-out support)} *)

let task_sink i =
  let s = Obs.Sink.create () in
  Obs.Sink.incr s "segments";
  Obs.Sink.add s (Printf.sprintf "task%d.only" i) i;
  Obs.Sink.observe s "latency_ns" (float_of_int (100 * (i + 1)));
  Obs.Sink.emit s ~ts_ns:(10 * i) ~track:(Obs.Trace.Proc i)
    ~phase:Obs.Trace.Instant
    (Printf.sprintf "task%d" i);
  s

let test_sink_merge_deterministic () =
  (* Merging per-task sinks in task order must be reproducible: two
     merges of equal task sinks give byte-identical traces and metric
     dumps, regardless of how the tasks themselves were scheduled. *)
  let merged () =
    let dst = Obs.Sink.create () in
    Obs.Sink.merge_into dst (List.init 3 task_sink);
    dst
  in
  let a = merged () and b = merged () in
  Alcotest.(check string) "traces identical"
    (Obs.Export.chrome_json a.Obs.Sink.trace)
    (Obs.Export.chrome_json b.Obs.Sink.trace);
  Alcotest.(check string) "metrics identical"
    (Obs.Metrics.to_text a.Obs.Sink.metrics)
    (Obs.Metrics.to_text b.Obs.Sink.metrics);
  (* Counters sum across sources; events append in task order. *)
  Alcotest.(check int) "counter summed" 3
    (Obs.Metrics.counter a.Obs.Sink.metrics "segments");
  Alcotest.(check int) "per-task counters kept" 2
    (Obs.Metrics.counter a.Obs.Sink.metrics "task2.only");
  let names =
    List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events a.Obs.Sink.trace)
  in
  Alcotest.(check (list string)) "events in task order"
    [ "task0"; "task1"; "task2" ] names;
  match Obs.Metrics.hist a.Obs.Sink.metrics "latency_ns" with
  | Some h ->
    Alcotest.(check int) "histogram observations re-added" 3
      (Obs.Metrics.Hist.count h);
    Alcotest.(check (float 1e-9)) "histogram sum" 600.0
      (Obs.Metrics.Hist.sum h)
  | None -> Alcotest.fail "merged histogram missing"

(* {2 Log quiet flag} *)

let test_log_quiet_flag () =
  let saved = Obs.Log.quiet () in
  Obs.Log.set_quiet true;
  Alcotest.(check bool) "quiet set" true (Obs.Log.quiet ());
  (* must not raise (and must not print, but that we can't observe here) *)
  Obs.Log.progress "suppressed %d" 42;
  Obs.Log.set_quiet false;
  Alcotest.(check bool) "quiet cleared" false (Obs.Log.quiet ());
  Obs.Log.set_quiet saved

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
          Alcotest.test_case "disabled trace records nothing" `Quick
            test_disabled_trace_records_nothing;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentile math" `Quick test_hist_percentiles;
          Alcotest.test_case "percentile edge cases" `Quick
            test_hist_edge_cases;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "disabled sink records nothing" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "equal seeds give identical traces" `Quick
            test_trace_deterministic;
          Alcotest.test_case "lifecycle events present" `Quick
            test_trace_contains_lifecycle_events;
          Alcotest.test_case "fault injection yields detection event" `Quick
            test_trace_contains_detection;
          Alcotest.test_case "chrome export is valid JSON" `Quick
            test_chrome_json_is_valid_json;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "abort closes open spans" `Quick
            test_abort_closes_spans;
          Alcotest.test_case "recovery closes open spans" `Quick
            test_recovery_closes_spans;
          Alcotest.test_case "re-dispatched check keeps spans balanced" `Quick
            test_recheck_spans_balanced;
        ] );
      ( "stats",
        [
          Alcotest.test_case "detections reported oldest first" `Quick
            test_detections_oldest_first;
        ] );
      ( "merge",
        [
          Alcotest.test_case "deterministic sink merge" `Quick
            test_sink_merge_deterministic;
        ] );
      ( "log",
        [ Alcotest.test_case "quiet flag" `Quick test_log_quiet_flag ] );
    ]
