let test_insn_classify () =
  Alcotest.(check bool) "branch is branch" true
    (Isa.Insn.is_branch (Isa.Insn.Jump 0));
  Alcotest.(check bool) "cond branch is branch" true
    (Isa.Insn.is_branch (Isa.Insn.Branch (Isa.Insn.Eq, 0, 1, 0)));
  Alcotest.(check bool) "jr is branch" true
    (Isa.Insn.is_branch (Isa.Insn.Jump_reg 3));
  Alcotest.(check bool) "alu is not branch" false
    (Isa.Insn.is_branch (Isa.Insn.Li (0, 1)));
  Alcotest.(check bool) "load is memory" true
    (Isa.Insn.is_memory (Isa.Insn.Load (0, 1, 0)));
  Alcotest.(check bool) "rdtsc is nondet" true
    (Isa.Insn.is_nondet (Isa.Insn.Rdtsc 0));
  Alcotest.(check bool) "rdcoreid is nondet" true
    (Isa.Insn.is_nondet (Isa.Insn.Rdcoreid 0))

let test_insn_writes_reg () =
  Alcotest.(check (option int)) "load writes rd" (Some 5)
    (Isa.Insn.writes_reg (Isa.Insn.Load (5, 1, 0)));
  Alcotest.(check (option int)) "store writes none" None
    (Isa.Insn.writes_reg (Isa.Insn.Store (5, 1, 0)))

let test_insn_check () =
  (match Isa.Insn.check (Isa.Insn.Li (99, 0)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad register accepted");
  match Isa.Insn.check (Isa.Insn.Alu (Isa.Insn.Shl, 0, 0, Isa.Insn.Imm 70)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad shift accepted"

let test_program_validation () =
  (try
     ignore (Isa.Program.create ~name:"bad" [| Isa.Insn.Jump 5 |]);
     Alcotest.fail "out-of-range target accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Isa.Program.create ~name:"empty" [||]);
     Alcotest.fail "empty program accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Isa.Program.create ~name:"bad-entry" ~entry:7 [| Isa.Insn.Halt |]);
    Alcotest.fail "bad entry accepted"
  with Invalid_argument _ -> ()

let test_program_initial_brk_default () =
  let data = [ { Isa.Program.base = 0x2000; bytes = Bytes.create 100 } ] in
  let p = Isa.Program.create ~name:"p" ~data [| Isa.Insn.Halt |] in
  Alcotest.(check bool) "brk above data" true
    (p.Isa.Program.initial_brk >= 0x2000 + 100)

let test_builder_backpatch () =
  let b = Isa.Builder.create () in
  let l = Isa.Builder.fresh_label b in
  Isa.Builder.jump b l;
  Isa.Builder.nop b;
  Isa.Builder.place b l;
  Isa.Builder.halt b;
  let p = Isa.Builder.build ~name:"t" b in
  (match p.Isa.Program.code.(0) with
  | Isa.Insn.Jump 2 -> ()
  | i -> Alcotest.failf "expected jmp 2, got %s" (Isa.Insn.to_string i))

let test_builder_unplaced_label () =
  let b = Isa.Builder.create () in
  let l = Isa.Builder.fresh_label b in
  Isa.Builder.jump b l;
  try
    ignore (Isa.Builder.build ~name:"t" b);
    Alcotest.fail "unplaced label accepted"
  with Invalid_argument _ -> ()

let test_builder_double_place () =
  let b = Isa.Builder.create () in
  let l = Isa.Builder.here b in
  try
    Isa.Builder.place b l;
    Alcotest.fail "double place accepted"
  with Invalid_argument _ -> ()

let test_builder_loop_structure () =
  let b = Isa.Builder.create () in
  let body_count = ref 0 in
  Isa.Builder.loop b ~count_reg:5 ~times:3 (fun () ->
      incr body_count;
      Isa.Builder.nop b);
  Isa.Builder.halt b;
  let p = Isa.Builder.build ~name:"loop" b in
  Alcotest.(check int) "body emitted once" 1 !body_count;
  Alcotest.(check bool) "program has instructions" true (Isa.Program.length p > 5)

let test_asm_roundtrip () =
  let src = {|
    .name demo
    start:
      li r1, 10
      add r2, r1, 5
      beq r1, r2, start
      store r2, r1, 8
      halt
  |} in
  let p = Isa.Asm.assemble_exn src in
  Alcotest.(check string) "name from directive" "demo" p.Isa.Program.name;
  Alcotest.(check int) "5 instructions" 5 (Isa.Program.length p);
  (* Disassemble and re-assemble: same instruction sequence. *)
  let listing = Isa.Program.disassemble p in
  let stripped =
    String.split_on_char '\n' listing
    |> List.filter_map (fun line ->
           match String.index_opt line ':' with
           | Some i -> Some (String.sub line (i + 1) (String.length line - i - 1))
           | None -> None)
    |> String.concat "\n"
  in
  (* Branch targets in disassembly are absolute indices; they parse as
     labels only if defined, so compare instruction-by-instruction via a
     second program assembled from builder-equivalent source instead. *)
  Alcotest.(check bool) "disassembly nonempty" true (String.length stripped > 0)

let test_asm_errors () =
  let expect_error src =
    match Isa.Asm.assemble src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad source: %s" src
  in
  expect_error "bogus r1, r2";
  expect_error "li r99, 1";
  expect_error "jmp nowhere";
  expect_error "li r1";
  expect_error "start:\nstart:\nhalt";
  expect_error ".data 0x0 \"unterminated";
  expect_error ".frobnicate 3"

let test_asm_comments_and_data () =
  let src =
    ".data 0x1000 \"ab\" ; trailing comment\n# full-line comment\nhalt\n"
  in
  let p = Isa.Asm.assemble_exn src in
  (match p.Isa.Program.data with
  | [ { Isa.Program.base = 0x1000; bytes } ] ->
    Alcotest.(check string) "data bytes" "ab" (Bytes.to_string bytes)
  | _ -> Alcotest.fail "data segment wrong");
  Alcotest.(check int) "one instruction" 1 (Isa.Program.length p)

let test_asm_negative_immediates () =
  let p = Isa.Asm.assemble_exn "li r1, -42\nadd r1, r1, -1\nhalt" in
  match p.Isa.Program.code.(0) with
  | Isa.Insn.Li (1, -42) -> ()
  | i -> Alcotest.failf "got %s" (Isa.Insn.to_string i)

(* Random programs assembled from their own disassembly where possible:
   generate via builder, check Program.create accepts, and spot-check
   to_string is parseable for non-branch instructions. *)
let gen_simple_insn =
  QCheck.Gen.(
    oneof
      [
        map2 (fun rd imm -> Isa.Insn.Li (rd, imm)) (0 -- 15) (0 -- 1000);
        map2 (fun rd rs -> Isa.Insn.Mov (rd, rs)) (0 -- 15) (0 -- 15);
        map3
          (fun rd rs imm -> Isa.Insn.Alu (Isa.Insn.Add, rd, rs, Isa.Insn.Imm imm))
          (0 -- 15) (0 -- 15) (0 -- 100);
        map2 (fun rd rb -> Isa.Insn.Load (rd, rb, 0)) (0 -- 15) (0 -- 15);
        return Isa.Insn.Nop;
      ])

(* encode/decode: every valid instruction round-trips through its word
   form (the patch_code syscall's wire format), and junk words decode to
   None rather than to a malformed instruction. *)
let gen_any_insn =
  QCheck.Gen.(
    let reg = 0 -- 15 in
    let alu_op =
      oneofl
        Isa.Insn.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr ]
    in
    let cond = oneofl Isa.Insn.[ Eq; Ne; Lt; Ge ] in
    oneof
      [
        (let* op = alu_op and* rd = reg and* rs1 = reg and* rs2 = reg in
         return (Isa.Insn.Alu (op, rd, rs1, Isa.Insn.Reg rs2)));
        (* immediate ALU: shift immediates are encodable only in 0..62
           (a register operand can still name 63 at runtime) *)
        (let* op = alu_op and* rd = reg and* rs1 = reg
         and* imm = -100_000 -- 100_000 in
         let imm =
           match op with
           | Isa.Insn.Shl | Isa.Insn.Shr -> abs imm mod 63
           | _ -> imm
         in
         return (Isa.Insn.Alu (op, rd, rs1, Isa.Insn.Imm imm)));
        map2 (fun rd imm -> Isa.Insn.Li (rd, imm)) reg (-1_000_000 -- 1_000_000);
        map2 (fun rd rs -> Isa.Insn.Mov (rd, rs)) reg reg;
        map3 (fun rd rb off -> Isa.Insn.Load (rd, rb, off)) reg reg (0 -- 100_000);
        map3 (fun rs rb off -> Isa.Insn.Store (rs, rb, off)) reg reg (0 -- 100_000);
        map3 (fun rd rb off -> Isa.Insn.Load8 (rd, rb, off)) reg reg (0 -- 100_000);
        map3 (fun rs rb off -> Isa.Insn.Store8 (rs, rb, off)) reg reg (0 -- 100_000);
        (let* c = cond and* rs1 = reg and* rs2 = reg and* t = 0 -- 100_000 in
         return (Isa.Insn.Branch (c, rs1, rs2, t)));
        map (fun t -> Isa.Insn.Jump t) (0 -- 100_000);
        map (fun rs -> Isa.Insn.Jump_reg rs) reg;
        return Isa.Insn.Syscall;
        map (fun r -> Isa.Insn.Rdtsc r) reg;
        map (fun r -> Isa.Insn.Rdcoreid r) reg;
        map (fun r -> Isa.Insn.Rdrand r) reg;
        return Isa.Insn.Nop;
        return Isa.Insn.Halt;
      ])

let qcheck_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips valid instructions"
    ~count:2000
    (QCheck.make ~print:Isa.Insn.to_string gen_any_insn)
    (fun insn ->
      match Isa.Insn.encode insn with
      | None -> false (* every generated instruction passes check *)
      | Some w -> Isa.Insn.decode w = Some insn)

let qcheck_decode_never_malformed =
  QCheck.Test.make ~name:"decode of arbitrary words is valid or None"
    ~count:2000 QCheck.int (fun w ->
      match Isa.Insn.decode w with
      | None -> true
      | Some insn -> Isa.Insn.check insn = Ok ())

let test_encode_rejects_invalid () =
  Alcotest.(check (option int)) "bad register refuses to encode" None
    (Isa.Insn.encode (Isa.Insn.Li (99, 0)));
  Alcotest.(check (option int)) "bad shift amount refuses to encode" None
    (Isa.Insn.encode (Isa.Insn.Alu (Isa.Insn.Shl, 0, 0, Isa.Insn.Imm 70)));
  Alcotest.(check (option int)) "all-ones word decodes to nothing" None
    (Option.map (fun _ -> 0) (Isa.Insn.decode (-1)))

let qcheck_disasm_reparse =
  QCheck.Test.make ~name:"disassembly of simple insns reparses" ~count:300
    (QCheck.make gen_simple_insn) (fun insn ->
      let src = Isa.Insn.to_string insn ^ "\nhalt" in
      match Isa.Asm.assemble src with
      | Ok p -> p.Isa.Program.code.(0) = insn
      | Error _ -> false)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "isa"
    [
      ( "insn",
        [
          tc "classification" `Quick test_insn_classify;
          tc "writes_reg" `Quick test_insn_writes_reg;
          tc "check rejects invalid" `Quick test_insn_check;
        ] );
      ( "program",
        [
          tc "validation" `Quick test_program_validation;
          tc "initial brk default" `Quick test_program_initial_brk_default;
        ] );
      ( "builder",
        [
          tc "backpatching" `Quick test_builder_backpatch;
          tc "unplaced label" `Quick test_builder_unplaced_label;
          tc "double place" `Quick test_builder_double_place;
          tc "loop" `Quick test_builder_loop_structure;
        ] );
      ( "asm",
        [
          tc "roundtrip" `Quick test_asm_roundtrip;
          tc "errors" `Quick test_asm_errors;
          tc "comments and data" `Quick test_asm_comments_and_data;
          tc "negative immediates" `Quick test_asm_negative_immediates;
          QCheck_alcotest.to_alcotest qcheck_disasm_reparse;
        ] );
      ( "encoding",
        [
          tc "encode rejects invalid" `Quick test_encode_rejects_invalid;
          QCheck_alcotest.to_alcotest qcheck_encode_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_decode_never_malformed;
        ] );
    ]
