(* Fault-injection demo (paper §5.6).

   Run with:  dune exec examples/fault_injection_demo.exe

   Injects single-event upsets — one bit flip in one register of a
   checker — at several points and shows how Parallaft classifies each:
   a flip in live data is caught by the segment-end state comparison
   (Detected), a flip in a pointer usually crashes the checker
   (Exception), a flip in a loop counter overruns the instruction budget
   (Timeout), and a flip in a dead register is overwritten before it can
   matter (Benign). *)

let platform = Platform.apple_m2

let inject ~label ~segment ~delay ~reg ~bit program =
  let config =
    {
      (Parallaft.Config.parallaft ~platform ()) with
      Parallaft.Config.fault_plan =
        Some (Fault.checker_register ~segment ~delay_instructions:delay ~reg ~bit);
    }
  in
  let r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  let outcome =
    match r.Parallaft.Runtime.stats.Parallaft.Stats.fi_outcome with
    | Some o -> Parallaft.Detection.outcome_to_string o
    | None -> "did not fire (checker finished first)"
  in
  Printf.printf "%-46s -> %s\n" label outcome

let () =
  let bench = Option.get (Workloads.Spec.find "mcf") in
  let program =
    List.hd
      (Workloads.Spec.programs bench ~page_size:platform.Platform.page_size
         ~scale:0.15)
  in
  print_endline "Injecting single bit flips into mcf's checkers:\n";
  (* r13 = the live checksum; r15 = the chase pointer; r11 = the inner
     loop counter; r14 = a recycled scratch register. *)
  inject ~label:"checksum register r13, bit 5 (live data)" ~segment:1 ~delay:2000
    ~reg:13 ~bit:5 program;
  inject ~label:"pointer register r15, bit 40 (wild address)" ~segment:1
    ~delay:2500 ~reg:15 ~bit:40 program;
  inject ~label:"loop counter r11, bit 28 (control flow)" ~segment:2 ~delay:3000
    ~reg:11 ~bit:28 program;
  inject ~label:"scratch register r14, bit 3 (dead value)" ~segment:1 ~delay:2200
    ~reg:14 ~bit:3 program;
  print_endline
    "\nEvery corrupting flip is caught before the next checkpoint: the\n\
     paper's guarantee is detection within (segment length) x (live\n\
     segments), with benign flips filtered out by the comparison."
