# Convenience entry points; `make ci` is what the harness runs.

.PHONY: all build test fmt-check smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting is advisory: the check runs only where ocamlformat is
# installed (it is not baked into the minimal CI image), so a missing
# binary skips rather than fails.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

# One traced run end to end: exercises --trace/--metrics outside the
# dune sandbox and leaves the artifacts in /tmp for inspection.
smoke: build
	dune exec -- parallaft --platform testing --workload getpid \
	  --period 3000 --trace /tmp/parallaft_trace.json \
	  --metrics /tmp/parallaft_metrics.txt
	@echo "trace: /tmp/parallaft_trace.json (open in ui.perfetto.dev)"

ci: build test fmt-check smoke

clean:
	dune clean
