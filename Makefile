# Convenience entry points; `make ci` is what the harness runs.

.PHONY: all build test fmt-check smoke parallel-smoke compare-smoke \
  fault-smoke fleet-smoke backend-chaos-smoke seglog-smoke bench-json \
  bench-smoke bench-gate \
  block-cache-smoke invariants golden-check ci clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting is advisory: the check runs only where ocamlformat is
# installed (it is not baked into the minimal CI image), so a missing
# binary skips rather than fails.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

# One traced run end to end: exercises --trace/--metrics outside the
# dune sandbox and leaves the artifacts in /tmp for inspection.
smoke: build
	dune exec -- parallaft --platform testing --workload getpid \
	  --period 3000 --trace /tmp/parallaft_trace.json \
	  --metrics /tmp/parallaft_metrics.txt
	@echo "trace: /tmp/parallaft_trace.json (open in ui.perfetto.dev)"

# The quick experiment suite on a 4-domain pool: exercises the parallel
# runner end to end (the determinism itself is pinned by test_parallel).
parallel-smoke: build
	PARALLAFT_QUICK=1 PARALLAFT_QUIET=1 PARALLAFT_SCALE=0.1 \
	  dune exec bin/experiments_main.exe -- -j 4 fig5

# Tier-1 again with the segment-pipeline debug invariants on
# (DESIGN.md §12): after every handled tracer event, state-machine
# legality plus the cross-structure sweep (cur/live/roles/scheduler/
# engine agreement). --force because the env var is invisible to dune's
# dependency tracking.
invariants: build
	PARALLAFT_INVARIANTS=1 dune runtest --force

# Byte-identity pin of the pipeline refactor: fixed-seed stats + Perfetto
# traces of four scenarios (Parallaft/RAFT x recovery off/on) diffed
# against the goldens committed under test/goldens/.
golden-check: build
	dune build @golden

# The comparator fast paths end to end: runs both comparator fixtures
# once and asserts the cold->warm accounting (identity skips happen,
# page_hash_hits > 0, a warm compare hashes at most half the cold
# compare's bytes). Exits nonzero on any regression.
compare-smoke: build
	PARALLAFT_QUICK=1 dune exec bench/main.exe -- --compare-smoke

# The fault model end to end: the full target x recovery grid (quick
# trial counts) on one benchmark, with run-structure invariants checked
# on every routed event. Asserts no silent data corruption anywhere and
# that both hardened responses (transient re-check, rollback recovery)
# actually triggered. Exits nonzero on any violation.
fault-smoke: build
	PARALLAFT_INVARIANTS=1 PARALLAFT_QUICK=1 dune exec bin/fault_smoke.exe

# Emit the versioned BENCH_*.json perf artifact (bechamel estimates +
# profiled phase breakdown + run metadata) into the repo root, at full
# sampling budget. Compare two artifacts with e.g.
#   dune exec bench/main.exe -- --against OLD.json NEW.json --threshold 5
bench-json: build
	dune exec bench/main.exe -- --json

# The perf-trajectory plumbing end to end on a quick sampling budget:
# emit the artifact, schema-check it, then push it through the
# regression gate against itself at threshold 0 — any nonzero delta or
# parse drift fails, so this pins the gate itself, not the (noisy,
# host-dependent) estimates.
bench-smoke: build
	PARALLAFT_QUICK=1 PARALLAFT_QUIET=1 dune exec bench/main.exe -- \
	  --json --out /tmp/parallaft_bench.json
	dune exec bench/main.exe -- --check /tmp/parallaft_bench.json
	dune exec bench/main.exe -- --against /tmp/parallaft_bench.json \
	  /tmp/parallaft_bench.json --threshold 0

# Perf-trajectory regression gate: fresh (quick-budget) bechamel run
# diffed against the committed baseline artifact (refreshed whenever a
# PR intentionally moves the numbers — last for the fleet rows). The
# generous threshold absorbs host and quick-mode noise — the gate is
# meant to catch order-of-magnitude interpreter regressions (e.g. the
# block cache silently disabled), not single-digit drift. Only
# regressions fail; improvements and added benches never do.
BENCH_BASELINE := BENCH_v1_f43843dd0c28.json
bench-gate: build
	PARALLAFT_QUICK=1 PARALLAFT_QUIET=1 dune exec bench/main.exe -- \
	  --against $(BENCH_BASELINE) --threshold 400

# The decoded-block cache observably on by default (hits > 0 on a real
# run) and observably off under --block-cache 0 (all rows zero).
block-cache-smoke: build
	dune build @block-cache

# Persistent segment logs end to end (DESIGN.md §17): record a quick
# run with --record-log, re-check it offline with parallaft-replay
# (must verify clean, exit 0) and assert the page compression actually
# compresses (ratio > 1.0 in the seglog.* stats rows). Then the other
# direction: a run with an injected checker fault (live exit 3) must
# also diverge offline (replay exit 3). Both legs run with the
# segment-pipeline invariants on.
SEGLOG_SMOKE_ARGS := --platform testing --workload 401.bzip2 --scale 0.05 --period 3000
seglog-smoke: build
	rm -rf /tmp/parallaft_seglog /tmp/parallaft_seglog_fault
	PARALLAFT_INVARIANTS=1 dune exec -- parallaft $(SEGLOG_SMOKE_ARGS) \
	  --record-log /tmp/parallaft_seglog > /tmp/parallaft_seglog_run.out
	awk '/^seglog.compression_ratio/ { r = $$2 } \
	  END { if (r == "" || r + 0 <= 1.0) \
	    { print "seglog compression ratio not > 1.0: " r; exit 1 } }' \
	  /tmp/parallaft_seglog_run.out
	PARALLAFT_INVARIANTS=1 dune exec -- parallaft-replay /tmp/parallaft_seglog
	sh -c 'PARALLAFT_INVARIANTS=1 dune exec -- parallaft $(SEGLOG_SMOKE_ARGS) \
	  --fault 3,60,6,6 --fault-target checker-mem \
	  --record-log /tmp/parallaft_seglog_fault \
	  > /tmp/parallaft_seglog_fault.out; test $$? -eq 3'
	sh -c 'PARALLAFT_INVARIANTS=1 dune exec -- parallaft-replay \
	  /tmp/parallaft_seglog_fault; test $$? -eq 3'

# Fleet mode end to end (DESIGN.md §16): a 4-tenant fleet on the shared
# core pool with every scheduling event swept by the fleet-scope
# invariants. Asserts all tenants complete, the work-stealing policy
# fired (steals > 0), consolidation beats four serial runs by >= 2x,
# per-tenant determinism vs the solo replay, and cross-tenant fault
# isolation (a persistent fault in one tenant leaves the others' state
# and recovery counters untouched). Exits nonzero on any violation.
fleet-smoke: build
	PARALLAFT_INVARIANTS=1 dune exec bin/fleet_smoke.exe

# The checker backends end to end (DESIGN.md §18), with the lease
# supervisor's exactly-once ledger swept on every routed event: a
# deferred-backend sanity run (identical observables to inline, every
# segment verified through the batch queue) and the remote chaos
# campaign at three fixed intensities. Asserts no silent data
# corruption, exactly-once verification, at least one re-dispatch per
# intensity, and zero leaked simulated pids. Exits nonzero on any
# violation.
backend-chaos-smoke: build
	PARALLAFT_INVARIANTS=1 dune exec bin/backend_chaos_smoke.exe

ci: build test golden-check invariants fmt-check smoke parallel-smoke compare-smoke fault-smoke fleet-smoke backend-chaos-smoke seglog-smoke bench-smoke bench-gate block-cache-smoke

clean:
	dune clean
