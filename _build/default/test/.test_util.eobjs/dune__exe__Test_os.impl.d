test/test_os.ml: Alcotest Isa List Platform Printf Sim_os
