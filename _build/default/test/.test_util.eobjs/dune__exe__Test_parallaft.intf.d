test/test_parallaft.mli:
