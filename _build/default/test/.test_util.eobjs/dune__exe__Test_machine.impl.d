test/test_machine.ml: Alcotest Int64 Isa List Machine Mem Printf QCheck QCheck_alcotest Util
