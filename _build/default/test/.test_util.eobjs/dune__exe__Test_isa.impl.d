test/test_isa.ml: Alcotest Array Bytes Isa List QCheck QCheck_alcotest String
