test/test_util.ml: Alcotest Float Gen List QCheck QCheck_alcotest String Util
