test/test_experiments.ml: Alcotest Experiments List Parallaft Platform String Unix Workloads
