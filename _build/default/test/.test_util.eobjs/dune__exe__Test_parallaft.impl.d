test/test_parallaft.ml: Alcotest Bytes Int64 Isa List Parallaft Platform Printf QCheck QCheck_alcotest Sim_os String Workloads
