test/test_hash.ml: Alcotest Bytes Char Ftr_hash Gen Printf QCheck QCheck_alcotest
