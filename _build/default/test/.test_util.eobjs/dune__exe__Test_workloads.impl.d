test/test_workloads.ml: Alcotest Bytes Isa List Mem Platform Sim_os String Workloads
