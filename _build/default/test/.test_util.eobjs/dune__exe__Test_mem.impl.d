test/test_mem.ml: Alcotest Bytes Gen List Mem QCheck QCheck_alcotest
