test/test_core_units.ml: Alcotest Int64 Isa List Machine Mem Parallaft Printf QCheck QCheck_alcotest Sim_os Util
