let hex = Printf.sprintf "%Lx"

(* Published XXH64 test vectors. *)
let test_xxh64_empty () =
  Alcotest.(check string) "xxh64(\"\")" "ef46db3751d8e999"
    (hex (Ftr_hash.Xxh64.hash (Bytes.of_string "")))

let test_xxh64_a () =
  Alcotest.(check string) "xxh64(\"a\")" "d24ec4f1a98c6e5b"
    (hex (Ftr_hash.Xxh64.hash (Bytes.of_string "a")))

let test_xxh64_abc () =
  Alcotest.(check string) "xxh64(\"abc\")" "44bc2cf5ad770999"
    (hex (Ftr_hash.Xxh64.hash (Bytes.of_string "abc")))

let test_xxh64_seeded_differs () =
  let b = Bytes.of_string "hello, world" in
  Alcotest.(check bool) "seed changes digest" true
    (Ftr_hash.Xxh64.hash ~seed:0L b <> Ftr_hash.Xxh64.hash ~seed:1L b)

let test_xxh64_long_input_stable () =
  (* Longer than one 32-byte stripe; pins the wide-input code path. *)
  let b = Bytes.init 1000 (fun i -> Char.chr (i land 0xFF)) in
  let h1 = Ftr_hash.Xxh64.hash b in
  let h2 = Ftr_hash.Xxh64.hash (Bytes.copy b) in
  Alcotest.(check int64) "pure function" h1 h2;
  Bytes.set b 500 'X';
  Alcotest.(check bool) "sensitive to one byte" true
    (Ftr_hash.Xxh64.hash b <> h1)

let test_xxh64_sub_matches_whole () =
  let b = Bytes.of_string "0123456789abcdef0123456789abcdef0123456789" in
  let whole = Ftr_hash.Xxh64.hash (Bytes.sub b 5 20) in
  let sub = Ftr_hash.Xxh64.hash_sub b ~pos:5 ~len:20 in
  Alcotest.(check int64) "hash_sub consistent" whole sub

let test_xxh64_sub_invalid () =
  let b = Bytes.create 10 in
  try
    ignore (Ftr_hash.Xxh64.hash_sub b ~pos:5 ~len:6);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_streaming_matches_oneshot () =
  let b = Bytes.init 777 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let st = Ftr_hash.Xxh64.init () in
  Ftr_hash.Xxh64.update st b ~pos:0 ~len:100;
  Ftr_hash.Xxh64.update st b ~pos:100 ~len:1;
  Ftr_hash.Xxh64.update st b ~pos:101 ~len:676;
  Alcotest.(check int64) "streamed = one-shot" (Ftr_hash.Xxh64.hash b)
    (Ftr_hash.Xxh64.digest st)

let test_streaming_empty () =
  let st = Ftr_hash.Xxh64.init () in
  Alcotest.(check int64) "empty stream" (Ftr_hash.Xxh64.hash Bytes.empty)
    (Ftr_hash.Xxh64.digest st)

let test_streaming_int64 () =
  let st1 = Ftr_hash.Xxh64.init () in
  Ftr_hash.Xxh64.update_int64 st1 0x0102030405060708L;
  let expect = Bytes.create 8 in
  Bytes.set_int64_le expect 0 0x0102030405060708L;
  Alcotest.(check int64) "int64 = 8 LE bytes" (Ftr_hash.Xxh64.hash expect)
    (Ftr_hash.Xxh64.digest st1)

let test_fnv_known () =
  (* FNV-1a 64 of "a" is the standard 0xaf63dc4c8601ec8c. *)
  Alcotest.(check string) "fnv1a(\"a\")" "af63dc4c8601ec8c"
    (hex (Ftr_hash.Fnv64.hash (Bytes.of_string "a")))

let test_fnv_sub () =
  let b = Bytes.of_string "xxhelloxx" in
  Alcotest.(check int64) "sub-range"
    (Ftr_hash.Fnv64.hash (Bytes.of_string "hello"))
    (Ftr_hash.Fnv64.hash_sub b ~pos:2 ~len:5)

let test_fnv_combine_order_sensitive () =
  let h0 = 0xCBF29CE484222325L in
  let a = Ftr_hash.Fnv64.combine (Ftr_hash.Fnv64.combine h0 1L) 2L in
  let b = Ftr_hash.Fnv64.combine (Ftr_hash.Fnv64.combine h0 2L) 1L in
  Alcotest.(check bool) "order matters" true (a <> b)

let qcheck_streaming_split =
  QCheck.Test.make ~name:"xxh64 streaming invariant under chunking" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 200)) (int_bound 200))
    (fun (s, cut) ->
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let cut = if n = 0 then 0 else cut mod (n + 1) in
      let st = Ftr_hash.Xxh64.init () in
      Ftr_hash.Xxh64.update st b ~pos:0 ~len:cut;
      Ftr_hash.Xxh64.update st b ~pos:cut ~len:(n - cut);
      Ftr_hash.Xxh64.digest st = Ftr_hash.Xxh64.hash b)

let qcheck_avalanche =
  QCheck.Test.make ~name:"xxh64 single-bit flips change the digest" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 100)) (pair small_nat small_nat))
    (fun (s, (byte_idx, bit)) ->
      let b = Bytes.of_string s in
      let i = byte_idx mod Bytes.length b in
      let bit = bit mod 8 in
      let h1 = Ftr_hash.Xxh64.hash b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      h1 <> Ftr_hash.Xxh64.hash b)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "hash"
    [
      ( "xxh64",
        [
          tc "vector: empty" `Quick test_xxh64_empty;
          tc "vector: a" `Quick test_xxh64_a;
          tc "vector: abc" `Quick test_xxh64_abc;
          tc "seeded" `Quick test_xxh64_seeded_differs;
          tc "long input" `Quick test_xxh64_long_input_stable;
          tc "hash_sub" `Quick test_xxh64_sub_matches_whole;
          tc "hash_sub invalid" `Quick test_xxh64_sub_invalid;
        ] );
      ( "streaming",
        [
          tc "matches one-shot" `Quick test_streaming_matches_oneshot;
          tc "empty" `Quick test_streaming_empty;
          tc "update_int64" `Quick test_streaming_int64;
          QCheck_alcotest.to_alcotest qcheck_streaming_split;
          QCheck_alcotest.to_alcotest qcheck_avalanche;
        ] );
      ( "fnv64",
        [
          tc "known vector" `Quick test_fnv_known;
          tc "sub-range" `Quick test_fnv_sub;
          tc "combine order" `Quick test_fnv_combine_order_sensitive;
        ] );
    ]
