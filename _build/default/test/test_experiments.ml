(* Smoke and property tests of the experiment harness. These run tiny
   configurations (testing platform or heavily scaled-down workloads) so
   the suite stays fast while still exercising the measurement paths. *)

let platform = Platform.testing

let tiny_bench =
  (* A 2-input pseudo-benchmark for measurement tests. *)
  {
    Workloads.Spec.name = "999.tiny";
    category = Workloads.Spec.Int_suite;
    inputs = 2;
    description = "test workload";
    base_outer = 12;
    spec =
      {
        Workloads.Codegen.pattern =
          Workloads.Codegen.Chase { pages = 8; hot_pages = 3; cold_every = 2 };
        alu_per_mem = 3;
        store_every = 2;
        outer_iters = 12;
        inner_iters = 30;
        io_every = 3;
        gettime_every = 0;
        rdtsc_every = 0;
        mmap_churn = false;
      };
  }

let test_baseline_metrics () =
  let m =
    Experiments.Measure.run_benchmark ~platform ~mode:Experiments.Measure.Baseline
      ~scale:1.0 tiny_bench
  in
  Alcotest.(check bool) "outputs ok" true m.Experiments.Measure.outputs_ok;
  Alcotest.(check bool) "wall positive" true (m.Experiments.Measure.wall_ns > 0.0);
  Alcotest.(check bool) "energy positive" true (m.Experiments.Measure.energy_j > 0.0);
  Alcotest.(check bool) "pss sampled" true (m.Experiments.Measure.mean_pss_bytes > 0.0);
  Alcotest.(check int) "no segments in baseline" 0 m.Experiments.Measure.segments

let test_protected_metrics () =
  let config = Parallaft.Config.parallaft ~platform ~slice_period:20_000 () in
  let m =
    Experiments.Measure.run_benchmark ~platform
      ~mode:(Experiments.Measure.Protected config) ~scale:1.0 tiny_bench
  in
  Alcotest.(check bool) "outputs ok" true m.Experiments.Measure.outputs_ok;
  Alcotest.(check int) "no detections" 0 m.Experiments.Measure.detections;
  Alcotest.(check bool) "sliced" true (m.Experiments.Measure.segments > 0);
  Alcotest.(check bool) "protected costs more" true
    (m.Experiments.Measure.wall_ns > 0.0)

let test_overhead_positive () =
  let baseline =
    Experiments.Measure.run_benchmark ~platform ~mode:Experiments.Measure.Baseline
      ~scale:1.0 tiny_bench
  in
  let config = Parallaft.Config.parallaft ~platform ~slice_period:20_000 () in
  let p =
    Experiments.Measure.run_benchmark ~platform
      ~mode:(Experiments.Measure.Protected config) ~scale:1.0 tiny_bench
  in
  Alcotest.(check bool) "overhead > 0" true
    (Experiments.Measure.overhead_pct ~baseline ~measured:p > 0.0)

let test_protected_memory_exceeds_baseline () =
  let baseline =
    Experiments.Measure.run_benchmark ~platform ~mode:Experiments.Measure.Baseline
      ~scale:1.0 tiny_bench
  in
  let config = Parallaft.Config.parallaft ~platform ~slice_period:20_000 () in
  let p =
    Experiments.Measure.run_benchmark ~platform
      ~mode:(Experiments.Measure.Protected config) ~scale:1.0 tiny_bench
  in
  Alcotest.(check bool) "replication costs memory" true
    (p.Experiments.Measure.mean_pss_bytes
    > baseline.Experiments.Measure.mean_pss_bytes)

let test_registry_complete () =
  let names = Experiments.Registry.names () in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " registered") true (List.mem expected names))
    [ "table1"; "table2"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
      "stress"; "intel"; "ablation"; "calibrate" ];
  Alcotest.(check bool) "unknown rejected" true (Experiments.Registry.find "fig99" = None);
  match Experiments.Registry.find "all" with
  | Some exps ->
    Alcotest.(check bool) "all excludes extensions" true
      (not
         (List.exists
            (fun e ->
              e.Experiments.Registry.name = "calibrate"
              || e.Experiments.Registry.name = "ablation")
            exps));
    Alcotest.(check int) "all runs 10 experiments" 10 (List.length exps)
  | None -> Alcotest.fail "all missing"

let test_suite_shortnames () =
  List.iter
    (fun b ->
      let short = Experiments.Suite.short_name b in
      Alcotest.(check bool)
        (b.Workloads.Spec.name ^ " short name has no number")
        true
        (not (String.contains short '.')))
    Workloads.Spec.all

let test_quick_set_subset () =
  let quick = Experiments.Suite.benchmarks ~quick:true in
  let full = Experiments.Suite.benchmarks ~quick:false in
  Alcotest.(check bool) "quick smaller" true (List.length quick < List.length full);
  Alcotest.(check int) "full is whole suite" 16 (List.length full);
  List.iter
    (fun b -> Alcotest.(check bool) "quick subset of full" true (List.mem b full))
    quick

let test_scale_env () =
  (* scale_from_env falls back to 1.0 on garbage. *)
  Unix.putenv "PARALLAFT_SCALE" "not-a-number";
  Alcotest.(check (float 0.0)) "garbage -> 1.0" 1.0 (Experiments.Measure.scale_from_env ());
  Unix.putenv "PARALLAFT_SCALE" "0.25";
  Alcotest.(check (float 0.0)) "valid parse" 0.25 (Experiments.Measure.scale_from_env ());
  Unix.putenv "PARALLAFT_SCALE" "-2";
  Alcotest.(check (float 0.0)) "negative -> 1.0" 1.0 (Experiments.Measure.scale_from_env ());
  Unix.putenv "PARALLAFT_SCALE" "1.0"

let test_breakdown_components_nonnegative () =
  let baseline =
    Experiments.Measure.run_benchmark ~platform ~mode:Experiments.Measure.Baseline
      ~scale:1.0 tiny_bench
  in
  let config = Parallaft.Config.parallaft ~platform ~slice_period:20_000 () in
  let p =
    Experiments.Measure.run_benchmark ~platform
      ~mode:(Experiments.Measure.Protected config) ~scale:1.0 tiny_bench
  in
  let b =
    Experiments.Exp_breakdown.of_row
      { Experiments.Suite.bench = tiny_bench; baseline; parallaft = p; raft = p }
  in
  Alcotest.(check bool) "components >= 0" true
    (b.Experiments.Exp_breakdown.fork_cow >= 0.0
    && b.Experiments.Exp_breakdown.contention >= 0.0
    && b.Experiments.Exp_breakdown.sync >= 0.0
    && b.Experiments.Exp_breakdown.runtime_work >= 0.0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "experiments"
    [
      ( "measure",
        [
          tc "baseline metrics" `Quick test_baseline_metrics;
          tc "protected metrics" `Quick test_protected_metrics;
          tc "overhead positive" `Quick test_overhead_positive;
          tc "memory exceeds baseline" `Quick test_protected_memory_exceeds_baseline;
          tc "breakdown non-negative" `Quick test_breakdown_components_nonnegative;
        ] );
      ( "registry",
        [
          tc "complete" `Quick test_registry_complete;
          tc "short names" `Quick test_suite_shortnames;
          tc "quick subset" `Quick test_quick_set_subset;
          tc "scale env" `Quick test_scale_env;
        ] );
    ]
