(* Tests of the workload generators: programs build, run to completion,
   behave deterministically, and have the advertised memory character. *)

let platform = Platform.testing
let page_size = platform.Platform.page_size

let run_program ?(seed = 3L) program =
  let eng = Sim_os.Engine.create ~platform ~seed () in
  let pid = Sim_os.Engine.spawn eng ~program ~core:0 () in
  Sim_os.Engine.run ~max_ns:2_000_000_000 eng;
  (eng, pid)

let exit_status eng pid =
  match Sim_os.Engine.state eng pid with
  | Sim_os.Engine.Exited s -> s
  | Sim_os.Engine.Runnable | Sim_os.Engine.Stopped ->
    Alcotest.fail "program did not finish"

let small_spec pattern =
  {
    Workloads.Codegen.pattern;
    alu_per_mem = 3;
    store_every = 2;
    outer_iters = 10;
    inner_iters = 30;
    io_every = 3;
    gettime_every = 5;
    rdtsc_every = 0;
    mmap_churn = false;
  }

let test_patterns_run_clean () =
  List.iter
    (fun (label, pattern) ->
      let program =
        Workloads.Codegen.generate ~name:label ~seed:1L ~page_size
          (small_spec pattern)
      in
      let eng, pid = run_program program in
      Alcotest.(check int) (label ^ " exits 0") 0 (exit_status eng pid);
      Alcotest.(check bool) (label ^ " wrote output") true
        (String.length (Sim_os.Engine.output eng) > 0))
    [
      ("chase", Workloads.Codegen.Chase { pages = 8; hot_pages = 4; cold_every = 2 });
      ("stream", Workloads.Codegen.Stream { pages = 6; write_frac_pct = 50; accesses_per_page = 8 });
      ("blocked", Workloads.Codegen.Blocked { pages = 3 });
    ]

let test_generator_deterministic () =
  let gen () =
    Workloads.Codegen.generate ~name:"d" ~seed:9L ~page_size
      (small_spec (Workloads.Codegen.Chase { pages = 8; hot_pages = 4; cold_every = 2 }))
  in
  let p1 = gen () and p2 = gen () in
  Alcotest.(check bool) "same code" true (p1.Isa.Program.code = p2.Isa.Program.code);
  let out p =
    let eng, _ = run_program p in
    Sim_os.Engine.output eng
  in
  Alcotest.(check string) "same output" (out p1) (out p2)

let test_seeds_change_data () =
  let gen seed =
    Workloads.Codegen.generate ~name:"s" ~seed ~page_size
      (small_spec (Workloads.Codegen.Chase { pages = 16; hot_pages = 4; cold_every = 2 }))
  in
  let p1 = gen 1L and p2 = gen 2L in
  Alcotest.(check bool) "different chase permutations" true
    (List.exists2
       (fun (a : Isa.Program.data_segment) (b : Isa.Program.data_segment) ->
         not (Bytes.equal a.bytes b.bytes))
       p1.Isa.Program.data p2.Isa.Program.data)

let test_mmap_churn_runs () =
  let program =
    Workloads.Codegen.generate ~name:"churn" ~seed:2L ~page_size
      { (small_spec (Workloads.Codegen.Blocked { pages = 2 })) with mmap_churn = true }
  in
  let eng, pid = run_program program in
  Alcotest.(check int) "exits 0" 0 (exit_status eng pid)

let test_generator_validation () =
  (try
     ignore
       (Workloads.Codegen.generate ~name:"bad" ~seed:1L ~page_size
          { (small_spec (Workloads.Codegen.Blocked { pages = 2 })) with outer_iters = 0 });
     Alcotest.fail "zero iterations accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Workloads.Codegen.generate ~name:"bad" ~seed:1L ~page_size
         (small_spec (Workloads.Codegen.Chase { pages = 1; hot_pages = 0; cold_every = 1 })));
    Alcotest.fail "1-page chase accepted"
  with Invalid_argument _ -> ()

let test_spec_registry () =
  Alcotest.(check int) "16 benchmarks" 16 (List.length Workloads.Spec.all);
  Alcotest.(check bool) "find by full name" true
    (Workloads.Spec.find "429.mcf" <> None);
  Alcotest.(check bool) "find by short name" true
    (Workloads.Spec.find "mcf" <> None);
  Alcotest.(check bool) "unknown name" true (Workloads.Spec.find "quake3" = None);
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b.Workloads.Spec.name ^ " has inputs")
        true
        (b.Workloads.Spec.inputs >= 1))
    Workloads.Spec.all

let test_spec_gcc_has_nine_inputs () =
  match Workloads.Spec.find "gcc" with
  | Some b -> Alcotest.(check int) "9 inputs" 9 b.Workloads.Spec.inputs
  | None -> Alcotest.fail "gcc missing"

let test_spec_programs_build_and_run () =
  (* Build every benchmark at a tiny scale and run the first input. *)
  List.iter
    (fun b ->
      let programs = Workloads.Spec.programs b ~page_size ~scale:0.02 in
      Alcotest.(check int)
        (b.Workloads.Spec.name ^ " program count")
        b.Workloads.Spec.inputs (List.length programs);
      match programs with
      | p :: _ ->
        let eng, pid = run_program p in
        Alcotest.(check int) (b.Workloads.Spec.name ^ " exits 0") 0 (exit_status eng pid)
      | [] -> Alcotest.fail "no programs")
    Workloads.Spec.all

let test_micro_getpid () =
  let eng, pid = run_program (Workloads.Micro.getpid_loop ~iters:100) in
  Alcotest.(check int) "exits 0" 0 (exit_status eng pid)

let test_micro_devzero () =
  let eng, pid =
    run_program (Workloads.Micro.devzero_reader ~block_bytes:4096 ~blocks:10)
  in
  Alcotest.(check int) "exits 0" 0 (exit_status eng pid)

let test_micro_sigusr1 () =
  let program = Workloads.Micro.sigusr1_spin ~handled:2 in
  let eng = Sim_os.Engine.create ~platform ~seed:4L () in
  let pid = Sim_os.Engine.spawn eng ~program ~core:0 () in
  Sim_os.Engine.add_tick eng ~every_ns:100_000 (fun eng ->
      match Sim_os.Engine.state eng pid with
      | Sim_os.Engine.Exited _ -> ()
      | Sim_os.Engine.Runnable | Sim_os.Engine.Stopped ->
        Sim_os.Engine.send_signal eng pid Sim_os.Sig_num.sigusr1);
  Sim_os.Engine.run ~max_ns:2_000_000_000 eng;
  Alcotest.(check int) "exits 0 after 2 signals" 0 (exit_status eng pid)

let test_micro_hello () =
  let eng, pid = run_program (Workloads.Micro.hello ()) in
  Alcotest.(check int) "exits 0" 0 (exit_status eng pid);
  Alcotest.(check bool) "greeting written" true
    (String.length (Sim_os.Engine.output eng) > 10)

let test_stream_dirties_many_pages () =
  (* A write-heavy stream must dirty most of its footprint. *)
  let pages = 10 in
  let program =
    Workloads.Codegen.generate ~name:"wstream" ~seed:5L ~page_size
      {
        (small_spec
           (Workloads.Codegen.Stream
              { pages; write_frac_pct = 75; accesses_per_page = 4 }))
        with
        outer_iters = 4;
        inner_iters = 40;
      }
  in
  let eng = Sim_os.Engine.create ~platform ~seed:1L () in
  let pid = Sim_os.Engine.spawn eng ~program ~core:0 () in
  (* Clear dirty bits shortly after start, then let it run and count. *)
  Sim_os.Engine.run ~max_ns:2_000_000_000 eng;
  ignore pid;
  let copies = Mem.Frame.copies (Sim_os.Engine.frame_allocator eng) in
  (* No forks happened, so no COW; instead validate via allocator totals. *)
  Alcotest.(check int) "no COW without forks" 0 copies

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workloads"
    [
      ( "codegen",
        [
          tc "all patterns run clean" `Quick test_patterns_run_clean;
          tc "deterministic" `Quick test_generator_deterministic;
          tc "seeds change data" `Quick test_seeds_change_data;
          tc "mmap churn" `Quick test_mmap_churn_runs;
          tc "validation" `Quick test_generator_validation;
          tc "write streams avoid COW without forks" `Quick test_stream_dirties_many_pages;
        ] );
      ( "spec",
        [
          tc "registry" `Quick test_spec_registry;
          tc "gcc inputs" `Quick test_spec_gcc_has_nine_inputs;
          tc "all benchmarks run" `Slow test_spec_programs_build_and_run;
        ] );
      ( "micro",
        [
          tc "getpid loop" `Quick test_micro_getpid;
          tc "/dev/zero reader" `Quick test_micro_devzero;
          tc "sigusr1 spin" `Quick test_micro_sigusr1;
          tc "hello" `Quick test_micro_hello;
        ] );
    ]
