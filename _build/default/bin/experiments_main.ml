(* Regenerate the paper's tables and figures. Usage:
     experiments_main [all | table1 | table2 | fig5 | fig6 | fig7 | fig8 |
                       fig9 | fig10 | stress | intel | calibrate]
   Environment: PARALLAFT_SCALE (workload scale, default 1.0),
   PARALLAFT_QUICK=1 (reduced benchmark sets). *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match Experiments.Registry.find which with
  | Some exps -> List.iter (fun e -> Experiments.Registry.run e) exps
  | None ->
    prerr_endline ("unknown experiment: " ^ which);
    prerr_endline ("known: " ^ String.concat " " (Experiments.Registry.names ()));
    exit 2
