examples/raft_vs_parallaft.mli:
