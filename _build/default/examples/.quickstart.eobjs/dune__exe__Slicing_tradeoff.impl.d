examples/slicing_tradeoff.ml: Experiments Float List Option Parallaft Platform Printf Workloads
