examples/quickstart.ml: List Option Parallaft Platform Printf String Util Workloads
