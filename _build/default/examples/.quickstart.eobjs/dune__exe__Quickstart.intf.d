examples/quickstart.mli:
