examples/fault_injection_demo.ml: List Option Parallaft Platform Printf Workloads
