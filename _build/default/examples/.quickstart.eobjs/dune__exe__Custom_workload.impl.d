examples/custom_workload.ml: Bytes Isa List Parallaft Platform Printf String
