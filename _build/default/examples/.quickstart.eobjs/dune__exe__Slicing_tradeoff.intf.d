examples/slicing_tradeoff.mli:
