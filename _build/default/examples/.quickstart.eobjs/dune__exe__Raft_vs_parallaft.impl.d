examples/raft_vs_parallaft.ml: Experiments List Option Parallaft Platform Printf Util Workloads
