(* Quickstart: protect a program with Parallaft.

   Run with:  dune exec examples/quickstart.exe

   The program is a small SPEC-like workload; we run it bare, then under
   the Parallaft runtime on the Apple M2 platform model, and show that
   the protected run produces the same output, at what cost, and what
   the runtime did (segments, checkpoints, comparisons). *)

let () =
  let platform = Platform.apple_m2 in

  (* A benchmark from the suite, scaled down so the demo is instant. *)
  let bench = Option.get (Workloads.Spec.find "sjeng") in
  let program =
    List.hd
      (Workloads.Spec.programs bench ~page_size:platform.Platform.page_size
         ~scale:0.1)
  in

  print_endline "== baseline (unprotected) ==";
  let b = Parallaft.Runtime.run_baseline ~platform ~program () in
  Printf.printf "wall time  %.3f ms\n" (float_of_int b.Parallaft.Runtime.wall_ns /. 1e6);
  Printf.printf "energy     %.3f mJ\n" (b.Parallaft.Runtime.energy_j *. 1e3);

  print_endline "\n== protected by Parallaft ==";
  let config = Parallaft.Config.parallaft ~platform () in
  let r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  Printf.printf "wall time  %.3f ms  (%.1f%% overhead)\n"
    (float_of_int r.Parallaft.Runtime.wall_ns /. 1e6)
    (Util.Stats.percentage_overhead
       ~baseline:(float_of_int b.Parallaft.Runtime.wall_ns)
       ~measured:(float_of_int r.Parallaft.Runtime.wall_ns));
  Printf.printf "energy     %.3f mJ  (%.1f%% overhead)\n"
    (r.Parallaft.Runtime.energy_j *. 1e3)
    (Util.Stats.percentage_overhead ~baseline:b.Parallaft.Runtime.energy_j
       ~measured:r.Parallaft.Runtime.energy_j);
  Printf.printf "output is %s\n"
    (if String.equal b.Parallaft.Runtime.output r.Parallaft.Runtime.output then
       "byte-identical to the baseline, written exactly once"
     else "DIFFERENT (this would be a bug)");

  print_endline "\n== what the runtime did ==";
  List.iter
    (fun (k, v) -> Printf.printf "  %-40s %s\n" k v)
    (Parallaft.Stats.to_assoc r.Parallaft.Runtime.stats);
  match r.Parallaft.Runtime.detections with
  | [] -> print_endline "\nNo divergence between main and checkers: the run is error-free."
  | ds ->
    List.iter
      (fun (seg, o) ->
        Printf.printf "\nDETECTED in segment %d: %s\n" seg
          (Parallaft.Detection.outcome_to_string o))
      ds
