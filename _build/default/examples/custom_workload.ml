(* Protecting a hand-written program.

   Run with:  dune exec examples/custom_workload.exe

   Parallaft protects unmodified binaries: here we write a program in the
   textual assembly syntax, assemble it, and run it under the runtime.
   The program deliberately uses everything that is hard about record and
   replay — an ASLR-randomized mmap, the nondeterministic rdtsc and
   rdcoreid instructions, gettime, and stdout writes — and folds every
   nondeterministic value into its output checksum, so any replay bug
   would surface as a state mismatch. *)

let source =
  {|
  ; sum the first 2000 squares, spiced with nondeterminism
  .name custom
  .zero 0x8000 8

    ; buf = mmap(0, 16 KiB, RW, PRIVATE|ANON)  -- lands at a random address
    li r0, 6
    li r1, 0
    li r2, 16384
    li r3, 3
    li r4, 3
    li r5, -1
    syscall
    mov r7, r0          ; keep the buffer address

    rdtsc r10           ; trapped + emulated + recorded by the runtime
    rdcoreid r11        ; would differ between big and little cores!
    add r13, r10, 0
    xor r13, r13, r11

    li r12, 2000
  loop:
    mul r10, r12, 1     ; r10 = i
    mul r10, r10, r10   ; i^2
    add r13, r13, r10
    store r13, r7, 0    ; touch the mmapped page
    sub r12, r12, 1
    li r9, 0
    bne r12, r9, loop

    li r0, 10           ; gettime -- nondeterministic syscall
    syscall
    xor r13, r13, r0

    ; write the 8-byte checksum to stdout
    li r9, 0x8000
    store r13, r9, 0
    li r0, 1
    li r1, 1
    li r2, 0x8000
    li r3, 8
    syscall

    li r0, 0            ; exit(0)
    li r1, 0
    syscall
|}

let () =
  let platform = Platform.apple_m2 in
  let program = Isa.Asm.assemble_exn ~name:"custom" source in
  Printf.printf "assembled %d instructions\n\n" (Isa.Program.length program);
  let config = Parallaft.Config.parallaft ~platform ~slice_period:20_000 () in
  let r = Parallaft.Runtime.run_protected ~platform ~config ~program () in
  Printf.printf "exit status: %s\n"
    (match r.Parallaft.Runtime.exit_status with
    | Some s -> string_of_int s
    | None -> "none");
  Printf.printf "segments:    %d (all compared)\n"
    r.Parallaft.Runtime.stats.Parallaft.Stats.segments_total;
  Printf.printf "rdtsc/rdcoreid replayed: %d,  syscalls replayed: %d\n"
    r.Parallaft.Runtime.stats.Parallaft.Stats.nondet_recorded
    r.Parallaft.Runtime.stats.Parallaft.Stats.syscalls_recorded;
  (match r.Parallaft.Runtime.detections with
  | [] ->
    print_endline
      "no divergence: the checker reproduced every nondeterministic value\n\
       (including the ASLR address, pinned with MAP_FIXED on replay)"
  | ds ->
    List.iter
      (fun (seg, o) ->
        Printf.printf "segment %d: %s\n" seg (Parallaft.Detection.outcome_to_string o))
      ds);
  let checksum =
    if String.length r.Parallaft.Runtime.output >= 8 then
      Bytes.get_int64_le (Bytes.of_string r.Parallaft.Runtime.output) 0
    else 0L
  in
  Printf.printf "program checksum: %Lx\n" checksum
