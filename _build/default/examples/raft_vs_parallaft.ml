(* RAFT vs Parallaft, side by side (the paper's Figure 1 in action).

   Run with:  dune exec examples/raft_vs_parallaft.exe

   RAFT duplicates the whole run onto a second big core and checks only
   syscalls; Parallaft slices the run into segments, checks each on a
   little core, and compares all modified state at every boundary. Same
   program, same platform model — compare where the time, energy and
   memory go. *)

let () =
  let platform = Platform.apple_m2 in
  let bench = Option.get (Workloads.Spec.find "milc") in
  let program =
    List.hd
      (Workloads.Spec.programs bench ~page_size:platform.Platform.page_size
         ~scale:0.4)
  in
  let baseline =
    Experiments.Measure.run_program ~platform ~mode:Experiments.Measure.Baseline
      program
  in
  let run name config =
    let m =
      Experiments.Measure.run_program ~platform
        ~mode:(Experiments.Measure.Protected config) program
    in
    [
      name;
      Printf.sprintf "%.1f%%"
        (Experiments.Measure.overhead_pct ~baseline ~measured:m);
      Printf.sprintf "%.1f%%"
        (Util.Stats.percentage_overhead ~baseline:baseline.Experiments.Measure.energy_j
           ~measured:m.Experiments.Measure.energy_j);
      Printf.sprintf "%.2fx"
        (Util.Stats.normalized
           ~baseline:baseline.Experiments.Measure.mean_pss_bytes
           ~measured:m.Experiments.Measure.mean_pss_bytes);
      string_of_int m.Experiments.Measure.segments;
      Printf.sprintf "%.0f%%" (100.0 *. m.Experiments.Measure.big_core_work_fraction);
    ]
  in
  Printf.printf "benchmark: %s, baseline %.2f ms / %.2f mJ\n\n"
    bench.Workloads.Spec.name
    (baseline.Experiments.Measure.wall_ns /. 1e6)
    (baseline.Experiments.Measure.energy_j *. 1e3);
  Util.Table.print
    ~header:[ "runtime"; "perf ovh"; "energy ovh"; "memory"; "segments"; "check on big" ]
    [
      run "RAFT" (Parallaft.Config.raft ~platform ());
      run "Parallaft" (Parallaft.Config.parallaft ~platform ());
    ];
  print_endline
    "\nRAFT's checker burns a big core for the whole run (~2x energy);\n\
     Parallaft spreads segment checking over the little cluster, paying a\n\
     little more memory (live checkpoints) for roughly half the energy\n\
     overhead at comparable performance."
