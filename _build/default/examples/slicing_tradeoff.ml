(* Slicing-period tradeoff (a miniature of the paper's Figure 9).

   Run with:  dune exec examples/slicing_tradeoff.exe

   Short segments checkpoint often (forking and COW on the critical
   path); long segments leave more checker work unfinished when the main
   process exits (last-checker sync). Somewhere in between sits a sweet
   spot — this demo sweeps the period for one benchmark and prints the
   two opposing components. *)

let () =
  let platform = Platform.apple_m2 in
  let bench = Option.get (Workloads.Spec.find "gcc") in
  let scale = 0.5 in
  let baseline =
    Experiments.Measure.run_benchmark ~platform ~mode:Experiments.Measure.Baseline
      ~scale bench
  in
  Printf.printf "benchmark: %s (baseline %.2f ms)\n\n" bench.Workloads.Spec.name
    (baseline.Experiments.Measure.wall_ns /. 1e6);
  Printf.printf "%10s  %12s  %12s  %10s\n" "period" "fork+COW %" "sync %" "total %";
  List.iter
    (fun (label, period) ->
      let config = Parallaft.Config.parallaft ~platform ~slice_period:period () in
      let p =
        Experiments.Measure.run_benchmark ~platform
          ~mode:(Experiments.Measure.Protected config) ~scale bench
      in
      let wall0 = baseline.Experiments.Measure.wall_ns in
      let pct x = Float.max 0.0 (100.0 *. x /. wall0) in
      Printf.printf "%10s  %12.1f  %12.1f  %10.1f\n" label
        (pct
           (p.Experiments.Measure.main_sys_ns
           -. baseline.Experiments.Measure.main_sys_ns))
        (pct (p.Experiments.Measure.wall_ns -. p.Experiments.Measure.main_wall_ns))
        (pct (p.Experiments.Measure.wall_ns -. wall0)))
    [ ("1B", 50_000); ("2B", 100_000); ("5B", 250_000); ("10B", 500_000);
      ("20B", 1_000_000) ];
  print_endline
    "\n(Periods use the paper's \"N billion cycles\" labels at the simulation's\n\
     documented cycle scale; see DESIGN.md.)"
