type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let default_align ncols = Left :: List.init (max 0 (ncols - 1)) (fun _ -> Right)

let render ?align ~header rows =
  let ncols = List.length header in
  let align = match align with Some a -> a | None -> default_align ncols in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let a = try List.nth align i with Failure _ -> Right in
          pad a widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let bar_of_width fill w = String.make (max 0 w) fill

let bar_chart ?(width = 50) ?(unit_label = "") series =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 series in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let v = Float.max 0.0 v in
      let w =
        if vmax <= 0.0 then 0
        else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf (pad Left label_w label);
      Buffer.add_string buf "  |";
      Buffer.add_string buf (bar_of_width '#' w);
      Buffer.add_string buf (Printf.sprintf " %.1f%s\n" v unit_label))
    series;
  Buffer.contents buf

let group_fills = [| '#'; '='; '%'; '+'; 'o'; '*' |]

let grouped_bar_chart ?(width = 50) ~group_labels rows =
  let ngroups = List.length group_labels in
  List.iter
    (fun (_, vs) ->
      if List.length vs <> ngroups then
        invalid_arg "Table.grouped_bar_chart: ragged rows")
    rows;
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      0.0 rows
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0
      (rows @ List.map (fun l -> (l, [])) [])
  in
  let legend =
    String.concat "   "
      (List.mapi
         (fun i l ->
           Printf.sprintf "%c = %s" group_fills.(i mod Array.length group_fills) l)
         group_labels)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf legend;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, vs) ->
      List.iteri
        (fun i v ->
          let v = Float.max 0.0 v in
          let w =
            if vmax <= 0.0 then 0
            else int_of_float (Float.round (v /. vmax *. float_of_int width))
          in
          let prefix = if i = 0 then pad Left label_w label else pad Left label_w "" in
          Buffer.add_string buf prefix;
          Buffer.add_string buf "  |";
          Buffer.add_string buf
            (bar_of_width group_fills.(i mod Array.length group_fills) w);
          Buffer.add_string buf (Printf.sprintf " %.1f\n" v))
        vs)
    rows;
  Buffer.contents buf

let stacked_bar_chart ?(width = 50) ~component_labels rows =
  let ncomp = List.length component_labels in
  List.iter
    (fun (_, vs) ->
      if List.length vs <> ncomp then
        invalid_arg "Table.stacked_bar_chart: ragged rows")
    rows;
  let total vs = List.fold_left (fun a v -> a +. Float.max 0.0 v) 0.0 vs in
  let vmax = List.fold_left (fun acc (_, vs) -> Float.max acc (total vs)) 0.0 rows in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let legend =
    String.concat "   "
      (List.mapi
         (fun i l ->
           Printf.sprintf "%c = %s" group_fills.(i mod Array.length group_fills) l)
         component_labels)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf legend;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, vs) ->
      Buffer.add_string buf (pad Left label_w label);
      Buffer.add_string buf "  |";
      List.iteri
        (fun i v ->
          let v = Float.max 0.0 v in
          let w =
            if vmax <= 0.0 then 0
            else int_of_float (Float.round (v /. vmax *. float_of_int width))
          in
          Buffer.add_string buf
            (bar_of_width group_fills.(i mod Array.length group_fills) w))
        vs;
      Buffer.add_string buf (Printf.sprintf " %.1f\n" (total vs)))
    rows;
  Buffer.contents buf
