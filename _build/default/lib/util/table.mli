(** Fixed-width ASCII tables and bar charts for the experiment harness.

    The harness prints every paper table/figure as text; these helpers keep
    the output aligned and readable without any external plotting
    dependency. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out under the header with columns
    sized to the widest cell. [align] gives per-column alignment and
    defaults to left for the first column and right for the rest, which
    suits "benchmark | number | number" tables. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by [print_string]. *)

val bar_chart :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** [bar_chart series] renders a horizontal ASCII bar chart, one row per
    [(label, value)], scaled so the largest value spans [width] (default
    50) characters. Negative values are clamped to zero. *)

val grouped_bar_chart :
  ?width:int ->
  group_labels:string list ->
  (string * float list) list ->
  string
(** [grouped_bar_chart ~group_labels rows] renders, for each [(label,
    values)] row, one bar per group (e.g. Parallaft vs RAFT side by side),
    sharing a common scale across the whole chart. [group_labels] names the
    bars within a group and must match the length of every [values]
    list. *)

val stacked_bar_chart :
  ?width:int ->
  component_labels:string list ->
  (string * float list) list ->
  string
(** [stacked_bar_chart ~component_labels rows] renders one stacked bar per
    row, each component drawn with a distinct fill character; used for the
    Figure 6 overhead breakdown. *)
