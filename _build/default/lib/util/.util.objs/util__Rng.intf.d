lib/util/rng.mli:
