lib/util/stats.mli:
