lib/util/table.mli:
