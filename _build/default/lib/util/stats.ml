let geomean xs =
  match xs with
  | [] -> 1.0
  | xs ->
    let n = List.length xs in
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentage_overhead ~baseline ~measured =
  if baseline <= 0.0 then invalid_arg "Stats.percentage_overhead: baseline <= 0";
  ((measured /. baseline) -. 1.0) *. 100.0

let normalized ~baseline ~measured =
  if baseline <= 0.0 then invalid_arg "Stats.normalized: baseline <= 0";
  measured /. baseline

let clampf ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
