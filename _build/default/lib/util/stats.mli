(** Small statistics helpers used by the evaluation harness. *)

val geomean : float list -> float
(** [geomean xs] is the geometric mean of [xs]. All elements must be
    positive; the empty list yields [1.0] (the neutral element), matching
    how the paper reports geometric-mean overheads over benchmark suites.

    @raise Invalid_argument if any element is non-positive. *)

val mean : float list -> float
(** [mean xs] is the arithmetic mean; [0.0] on the empty list. *)

val percentage_overhead : baseline:float -> measured:float -> float
(** [percentage_overhead ~baseline ~measured] is
    [(measured /. baseline -. 1.) *. 100.].

    @raise Invalid_argument if [baseline <= 0.]. *)

val normalized : baseline:float -> measured:float -> float
(** [normalized ~baseline ~measured] is [measured /. baseline].

    @raise Invalid_argument if [baseline <= 0.]. *)

val clampf : lo:float -> hi:float -> float -> float
(** [clampf ~lo ~hi x] clamps [x] to the closed interval. *)
