lib/machine/cpu.mli: Isa Mem Util
