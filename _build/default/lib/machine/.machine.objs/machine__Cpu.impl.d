lib/machine/cpu.ml: Array Hashtbl Isa Mem Util
