lib/mem/page_table.mli: Bytes Frame
