lib/mem/frame.ml: Bytes
