lib/mem/address_space.mli: Bytes Frame Page_table
