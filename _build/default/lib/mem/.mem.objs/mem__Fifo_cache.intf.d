lib/mem/fifo_cache.mli:
