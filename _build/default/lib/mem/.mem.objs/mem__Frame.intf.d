lib/mem/frame.mli: Bytes
