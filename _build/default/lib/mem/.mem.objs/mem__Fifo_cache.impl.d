lib/mem/fifo_cache.ml: Array Hashtbl
