lib/mem/address_space.ml: Bytes Char Frame Int64 Page_table
