lib/mem/page_table.ml: Frame Hashtbl List Option Printf
