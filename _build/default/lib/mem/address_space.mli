(** Byte-addressed view of a process page table.

    The interpreter performs all loads and stores through this module.
    Values are little-endian; a 64-bit access that straddles a page
    boundary is handled byte-wise (slow path).

    To avoid allocating a result record on every memory instruction, the
    two facts the timing model needs from an access are exposed as fields
    the accessors overwrite each time:
    - {!last_frame} — the physical frame id touched (cache-model key);
    - {!last_cow} — whether this store broke COW sharing (the machine
      charges the COW page-copy cost when it did).
    Both refer to the most recent access on this address space only. *)

type t

exception
  Segfault of {
    addr : int;
    write : bool;
  }
(** Byte-addressed counterpart of {!Page_table.Page_fault}. *)

val create : Frame.allocator -> t
val of_page_table : Page_table.t -> t
val page_table : t -> Page_table.t
val page_size : t -> int

val vpn_of_addr : t -> int -> int
val page_base : t -> int -> int
(** [page_base t addr] is the address of the first byte of [addr]'s page. *)

val last_frame : t -> int
val last_cow : t -> bool

val last_cow_old_frame : t -> int
(** The frame id the last COW retired from this address space (only
    meaningful immediately after a store with [last_cow = true]). *)

(** {2 Mapping} *)

val map_range : t -> addr:int -> len:int -> Page_table.protection -> unit
(** Map zero pages covering [\[addr, addr+len)]. Pages already mapped in
    the range are left untouched (mmap-over semantics are handled by the
    kernel, which unmaps first when required). [len = 0] is a no-op. *)

val unmap_range : t -> addr:int -> len:int -> unit
(** Unmap every mapped page intersecting the range. *)

val range_mapped : t -> addr:int -> len:int -> bool
(** True iff every byte of the range lies on a mapped page. *)

(** {2 Access (raise {!Segfault} on unmapped/read-only pages)} *)

val load64 : t -> int -> int
val store64 : t -> int -> int -> unit
val load8 : t -> int -> int
val store8 : t -> int -> int -> unit

val read_bytes : t -> addr:int -> len:int -> Bytes.t
(** Copy out [len] bytes (syscall argument capture). *)

val write_bytes : t -> addr:int -> Bytes.t -> int
(** Copy bytes in through the normal store path (syscall result replay);
    returns the number of COW page copies it caused. *)

val write_bytes_map : t -> addr:int -> Bytes.t -> unit
(** Loader path: like {!write_bytes} but maps missing pages read-write. *)

val fork : t -> t
