(* Figure 7: energy overhead of Parallaft and RAFT. Paper: Parallaft
   44.3% — about half of RAFT's 87.8% — with lbm the one benchmark where
   Parallaft costs more than RAFT (its checkers do ~half their work on
   big cores). *)

let run ~platform ~scale ~quick =
  let rows = Suite.get ~platform ~scale ~quick in
  let chart_rows =
    List.map
      (fun r ->
        ( Suite.short_name r.Suite.bench,
          [
            (Suite.energy_norm_parallaft r -. 1.0) *. 100.0;
            (Suite.energy_norm_raft r -. 1.0) *. 100.0;
          ] ))
      rows
    @ [
        ( "geomean",
          [
            Suite.geomean_overhead_pct Suite.energy_norm_parallaft rows;
            Suite.geomean_overhead_pct Suite.energy_norm_raft rows;
          ] );
      ]
  in
  print_string
    (Util.Table.grouped_bar_chart ~group_labels:[ "Parallaft"; "RAFT" ] chart_rows);
  Printf.printf
    "\nGeomean energy overhead: Parallaft %.1f%%, RAFT %.1f%% (paper: 44.3%% / 87.8%%)\n"
    (Suite.geomean_overhead_pct Suite.energy_norm_parallaft rows)
    (Suite.geomean_overhead_pct Suite.energy_norm_raft rows);
  (* The §5.2/§5.3 migration story: which benchmarks push checker work
     onto big cores. *)
  Printf.printf "\nChecker work done on big cores (migration, §4.5):\n";
  List.iter
    (fun r ->
      let frac = r.Suite.parallaft.Measure.big_core_work_fraction in
      if frac > 0.01 then
        Printf.printf "  %-12s %4.1f%%  (%d migrations)\n"
          (Suite.short_name r.Suite.bench)
          (100.0 *. frac) r.Suite.parallaft.Measure.migrations)
    rows
