(* Figure 5: performance overhead of Parallaft and RAFT, per benchmark
   plus geometric mean. Paper: Parallaft 15.9% vs RAFT 16.2%. *)

let run ~platform ~scale ~quick =
  let rows = Suite.get ~platform ~scale ~quick in
  let chart_rows =
    List.map
      (fun r ->
        ( Suite.short_name r.Suite.bench,
          [
            (Suite.perf_norm_parallaft r -. 1.0) *. 100.0;
            (Suite.perf_norm_raft r -. 1.0) *. 100.0;
          ] ))
      rows
    @ [
        ( "geomean",
          [
            Suite.geomean_overhead_pct Suite.perf_norm_parallaft rows;
            Suite.geomean_overhead_pct Suite.perf_norm_raft rows;
          ] );
      ]
  in
  print_string
    (Util.Table.grouped_bar_chart ~group_labels:[ "Parallaft"; "RAFT" ] chart_rows);
  Printf.printf
    "\nGeomean overhead: Parallaft %.1f%%, RAFT %.1f%% (paper: 15.9%% / 16.2%%)\n"
    (Suite.geomean_overhead_pct Suite.perf_norm_parallaft rows)
    (Suite.geomean_overhead_pct Suite.perf_norm_raft rows)
