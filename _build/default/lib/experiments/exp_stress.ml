(* Section 5.7: syscall and signal handling overhead, measured at the
   per-event scale. The benchmark sweep uses per-event tracer costs
   scaled down with the 1e-4 cycle scale; per-event stress ratios are a
   property of single events, so this experiment restores the real-scale
   ptrace stop cost (~4.4 us per stop). Paper: getpid 124.5x, 1 MiB
   /dev/zero reads 18.5x, SIGUSR1 storm 39.8x. *)

let stress_platform =
  {
    Platform.apple_m2 with
    Platform.tracer_stop_ns = 4400.0;
    syscall_record_ns_per_byte = 0.16;
  }

let protected_main_wall ~platform ~config ~program ?before_run () =
  let r = Parallaft.Runtime.run_protected ~platform ~config ~program ?before_run () in
  r.Parallaft.Runtime.stats.Parallaft.Stats.main_wall_ns

let slowdown ~program ?before_baseline ?before_protected () =
  let platform = stress_platform in
  let b =
    Parallaft.Runtime.run_baseline ~platform ~program ?before_run:before_baseline ()
  in
  let config =
    Parallaft.Config.parallaft ~platform ~slice_period:2_000_000 ()
  in
  let wall =
    protected_main_wall ~platform ~config ~program ?before_run:before_protected ()
  in
  wall /. float_of_int (max 1 b.Parallaft.Runtime.wall_ns)

(* The burst must land after the program has registered its handler
   (a pre-run burst would hit the default action and kill it), so it is
   sent on the first 25 us tick. *)
let burst_at_first_tick eng pid n =
  let sent = ref false in
  Sim_os.Engine.add_tick eng ~every_ns:25_000 (fun eng ->
      if not !sent then begin
        sent := true;
        for _ = 1 to n do
          Sim_os.Engine.send_signal eng pid Sim_os.Sig_num.sigusr1
        done
      end)

let signal_burst n =
  ( (fun eng pid -> burst_at_first_tick eng pid n),
    fun eng coord -> burst_at_first_tick eng (Parallaft.Coordinator.main_pid coord) n )

let run () =
  let getpid =
    slowdown ~program:(Workloads.Micro.getpid_loop ~iters:4000) ()
  in
  let devzero =
    slowdown
      ~program:(Workloads.Micro.devzero_reader ~block_bytes:(1 lsl 20) ~blocks:24)
      ()
  in
  let n_signals = 220 in
  let before_b, before_p = signal_burst n_signals in
  let sigusr1 =
    slowdown
      ~program:(Workloads.Micro.sigusr1_spin ~handled:n_signals)
      ~before_baseline:before_b ~before_protected:before_p ()
  in
  Util.Table.print
    ~header:[ "stress test"; "slowdown"; "paper" ]
    [
      [ "getpid loop"; Printf.sprintf "%.1fx" getpid; "124.5x" ];
      [ "1 MiB /dev/zero reads"; Printf.sprintf "%.1fx" devzero; "18.5x" ];
      [ "SIGUSR1 storm"; Printf.sprintf "%.1fx" sigusr1; "39.8x" ];
    ]
