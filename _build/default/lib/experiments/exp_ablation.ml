(* Ablations of the design decisions DESIGN.md §5 calls out. Not a paper
   figure — these quantify why Parallaft is built the way it is:

   A. Dirty-page tracking backend: soft-dirty vs map-count vs the naive
      full-memory comparison (bytes hashed per run explode without
      modified-page tracking — the §4.4 motivation).
   B. Checker scheduling: disabling big-core migration and DVFS pacing
      (checkers fall behind on memory-bound benchmarks, inflating
      last-checker sync; pacing off wastes little-core energy).
   C. Comparator hash function: XXH64 (the paper's family) vs FNV-1a. *)

let platform = Platform.apple_m2

let bench name =
  match Workloads.Spec.find name with
  | Some b -> b
  | None -> invalid_arg ("unknown benchmark " ^ name)

let measure ~config b ~scale =
  Measure.run_benchmark ~platform ~mode:(Measure.Protected config) ~scale b

let dirty_backend_ablation ~scale =
  (* libquantum writes ~10% of its large footprint per pass, so modified-
     page tracking saves most of the comparison work; a write-everything
     benchmark would mask the difference. *)
  print_endline "A. Dirty-page tracking backend (benchmark: 462.libquantum)";
  let b = bench "462.libquantum" in
  let baseline = Measure.run_benchmark ~platform ~mode:Measure.Baseline ~scale b in
  let rows =
    List.map
      (fun (label, backend) ->
        let config =
          { (Parallaft.Config.parallaft ~platform ()) with
            Parallaft.Config.dirty_backend = backend }
        in
        let r =
          Parallaft.Runtime.run_protected ~platform ~config
            ~program:
              (List.hd
                 (Workloads.Spec.programs b ~page_size:platform.Platform.page_size
                    ~scale))
            ()
        in
        [
          label;
          Printf.sprintf "%.1f"
            (Util.Stats.percentage_overhead ~baseline:baseline.Measure.wall_ns
               ~measured:(float_of_int r.Parallaft.Runtime.wall_ns));
          Printf.sprintf "%.1f MB"
            (float_of_int r.Parallaft.Runtime.stats.Parallaft.Stats.bytes_hashed
            /. 1e6);
          string_of_int (List.length r.Parallaft.Runtime.detections);
        ])
      [
        ("soft-dirty (x86_64 path)", Parallaft.Config.Soft_dirty);
        ("map-count (PAGEMAP_SCAN path)", Parallaft.Config.Map_count);
        ("full comparison (no tracking)", Parallaft.Config.Full_compare);
      ]
  in
  Util.Table.print
    ~header:[ "backend"; "perf overhead %"; "bytes hashed"; "false positives" ]
    rows;
  print_newline ()

let scheduling_ablation ~scale =
  print_endline "B. Checker scheduling and pacing (benchmark: 470.lbm)";
  let b = bench "470.lbm" in
  let baseline = Measure.run_benchmark ~platform ~mode:Measure.Baseline ~scale b in
  let rows =
    List.map
      (fun (label, migration, dvfs_pacing) ->
        let config =
          { (Parallaft.Config.parallaft ~platform ()) with
            Parallaft.Config.migration; dvfs_pacing }
        in
        let m = measure ~config b ~scale in
        [
          label;
          Printf.sprintf "%.1f" (Measure.overhead_pct ~baseline ~measured:m);
          Printf.sprintf "%.1f"
            (Util.Stats.percentage_overhead ~baseline:baseline.Measure.energy_j
               ~measured:m.Measure.energy_j);
          Printf.sprintf "%.1f"
            (100.0
            *. (m.Measure.wall_ns -. m.Measure.main_wall_ns)
            /. baseline.Measure.wall_ns);
          string_of_int m.Measure.migrations;
        ])
      [
        ("full (paper config)", true, true);
        ("no big-core migration", false, true);
        ("no DVFS pacing", true, false);
        ("neither", false, false);
      ]
  in
  Util.Table.print
    ~header:[ "scheduler"; "perf %"; "energy %"; "sync %"; "migrations" ]
    rows;
  print_endline
    "(An honest model finding: on lbm, disabling migration trades a large\n\
     last-checker-sync debt against big-L2 pollution from migrated\n\
     checkers, and the two roughly cancel in this cost model; the paper's\n\
     hardware sees a clearer win for migration.)";
  print_newline ();
  (* DVFS pacing matters on compute-bound benchmarks, where checkers keep
     up easily and the cluster can idle down. *)
  print_endline "B'. DVFS pacing on a compute-bound benchmark (458.sjeng)";
  let b = bench "458.sjeng" in
  let baseline = Measure.run_benchmark ~platform ~mode:Measure.Baseline ~scale b in
  let rows =
    List.map
      (fun (label, dvfs_pacing) ->
        let config =
          { (Parallaft.Config.parallaft ~platform ()) with
            Parallaft.Config.dvfs_pacing }
        in
        let m = measure ~config b ~scale in
        [
          label;
          Printf.sprintf "%.1f" (Measure.overhead_pct ~baseline ~measured:m);
          Printf.sprintf "%.1f"
            (Util.Stats.percentage_overhead ~baseline:baseline.Measure.energy_j
               ~measured:m.Measure.energy_j);
        ])
      [ ("pacing on (paper config)", true); ("little cores pinned to max", false) ]
  in
  Util.Table.print ~header:[ "pacer"; "perf %"; "energy %" ] rows;
  print_newline ()

let hasher_ablation ~scale =
  print_endline "C. Comparator hash function (benchmark: 433.milc)";
  let b = bench "433.milc" in
  let baseline = Measure.run_benchmark ~platform ~mode:Measure.Baseline ~scale b in
  let rows =
    List.map
      (fun (label, hasher) ->
        let config =
          { (Parallaft.Config.parallaft ~platform ()) with Parallaft.Config.hasher }
        in
        let m = measure ~config b ~scale in
        [
          label;
          Printf.sprintf "%.1f" (Measure.overhead_pct ~baseline ~measured:m);
          string_of_int m.Measure.detections;
        ])
      [
        ("XXH64 (paper's family)", Parallaft.Config.Xxh64_hash);
        ("FNV-1a 64", Parallaft.Config.Fnv64_hash);
      ]
  in
  Util.Table.print ~header:[ "hash"; "perf overhead %"; "false positives" ] rows;
  print_endline
    "(Simulated cost is identical by design — the host-side difference is\n\
     measured by bench/main.exe's stress:xxh64/fnv64 microbenchmarks; the\n\
     paper picks the xxHash family for exactly that throughput gap.)"

let run ~scale =
  dirty_backend_ablation ~scale;
  scheduling_ablation ~scale;
  hasher_ablation ~scale
